package probablecause_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
	"probablecause/internal/server"
	"probablecause/internal/store"
)

// TestPcservedStoreCrashRecovery extends the durability acceptance test to
// the tiered segment store: the daemon runs with -store.backend=tiered and
// aggressive flush/compaction thresholds, and each matrix case either
// SIGKILLs it mid-burst or arms a PCSTORE_CRASH chaos point so the engine
// hard-exits in the middle of a flush or compaction, on either side of the
// manifest commit. Recovery must then satisfy the same contract as the
// memory path:
//
//   - acked ⊆ replayed ⊆ sent, session by session,
//   - no device is enrolled twice across the memtable/segment boundary
//     (a flush that died after committing must not be replayed on top of
//     its own segment),
//   - the recovered database is byte-identical to an independent
//     in-process replay of the WAL over the same segment directory.
func TestPcservedStoreCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	cases := []struct {
		name       string
		crashPoint string // PCSTORE_CRASH value; empty = SIGKILL mid-burst
	}{
		{"sigkill", ""},
		{"flush-before-commit", "flush-before-commit"},
		{"flush-after-commit", "flush-after-commit"},
		{"compact-before-commit", "compact-before-commit"},
		{"compact-after-commit", "compact-after-commit"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) { runStoreCrashCase(t, tc.crashPoint) })
	}
}

func runStoreCrashCase(t *testing.T, crashPoint string) {
	const (
		nbits    = 2048
		sessions = 10
		perObs   = 8
		killAt   = 25
	)
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	storeDir := filepath.Join(walDir, "store")
	// Flush every 2 promotions and compact above 2 segments, so a 10-device
	// burst crosses every chaos point several times over.
	args := []string{
		"-wal.dir", walDir,
		"-store.backend", "tiered",
		"-store.flush-entries", "2",
		"-store.compact-segments", "2",
		"-enroll.minobs", "3", "-enroll.patience", "2",
	}
	storeCfg := store.Config{Backend: store.BackendTiered, Dir: storeDir, FlushEntries: 2, CompactSegments: 2}
	ecfg := server.EnrollConfig{
		Dir:         walDir,
		Accumulator: fingerprint.AccumulatorConfig{MinObservations: 3, StablePatience: 2},
	}
	var env []string
	if crashPoint != "" {
		env = []string{"PCSTORE_CRASH=" + crashPoint}
	}

	obsFor := func(i, trial int) *bitset.Set {
		es := bitset.New(nbits)
		for j := 0; j < 32; j++ {
			es.Set((i*389 + j*61) % nbits)
		}
		es.Set((i*97 + trial*131 + 7) % nbits)
		return es
	}

	base, cmd := startPcservedEnv(t, env, args...)

	var (
		totalAcked atomic.Int64
		killOnce   sync.Once
		wg         sync.WaitGroup
	)
	acked := make([]int, sessions)
	sent := make([]int, sessions)
	kill := func() { killOnce.Do(func() { cmd.Process.Signal(syscall.SIGKILL) }) }
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for trial := 0; trial < perObs; trial++ {
				body, _ := json.Marshal(map[string]any{
					"session":   fmt.Sprintf("sess-%d", i),
					"name":      fmt.Sprintf("device-%d", i),
					"len":       nbits,
					"positions": obsFor(i, trial).Positions(),
				})
				sent[i]++
				resp, err := http.Post(base+"/v1/enroll", "application/json", bytes.NewReader(body))
				if err != nil {
					return // the crash raced this request
				}
				ok := resp.StatusCode == http.StatusOK
				resp.Body.Close()
				if !ok {
					return
				}
				acked[i]++
				if crashPoint == "" && totalAcked.Add(1) >= killAt {
					kill()
				} else if crashPoint != "" {
					totalAcked.Add(1)
				}
			}
		}(i)
	}
	wg.Wait()
	if crashPoint != "" {
		// The chaos point must actually fire. Flush points die during the
		// burst's background auto-flushes; compaction points need the
		// segment count to cross the threshold, so keep promoting fresh
		// throwaway sessions (each promotion + forced /v1/snapshot lays
		// down another segment) until the armed exit triggers. The extra
		// records ride the same WAL, so the oracle fold below sees them too.
		deadline := time.Now().Add(15 * time.Second)
		for extra := 0; time.Now().Before(deadline); extra++ {
			alive := true
			for trial := 0; trial < 4 && alive; trial++ {
				body, _ := json.Marshal(map[string]any{
					"session":   fmt.Sprintf("extra-%d", extra),
					"name":      fmt.Sprintf("device-extra-%d", extra),
					"len":       nbits,
					"positions": obsFor(100+extra, trial).Positions(),
				})
				resp, err := http.Post(base+"/v1/enroll", "application/json", bytes.NewReader(body))
				if err != nil {
					alive = false
					break
				}
				resp.Body.Close()
			}
			if alive {
				if resp, err := http.Post(base+"/v1/snapshot", "application/json", nil); err == nil {
					resp.Body.Close()
				} else {
					alive = false
				}
			}
			if !alive {
				break // refused connection: the process is gone or going
			}
			time.Sleep(20 * time.Millisecond)
		}
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("chaos point %q never fired: daemon still alive after burst + forced checkpoints", crashPoint)
		}
	} else {
		kill()
		cmd.Wait()
	}
	if n := totalAcked.Load(); n == 0 {
		t.Fatal("no observation was acked before the crash")
	}

	// Independent in-process recovery over the same directories: open the
	// tiered store (committed segments + manifest watermark) and replay the
	// WAL suffix. This fold is the oracle the daemon must match.
	ref, err := server.BootDurable(nil, server.Config{Store: storeCfg}, ecfg)
	if err != nil {
		t.Fatalf("in-process recovery (%s): %v", crashPoint, err)
	}
	var refBytes bytes.Buffer
	if _, err := ref.DB().Export().WriteTo(&refBytes); err != nil {
		t.Fatal(err)
	}
	// No double enrollment across the memtable/segment boundary: each
	// device appears at most once among the live entries.
	seen := map[string]int{}
	for _, e := range ref.DB().ExportIDs() {
		seen[e.Name]++
		if seen[e.Name] > 1 {
			t.Errorf("device %q enrolled %d times after recovery", e.Name, seen[e.Name])
		}
	}
	refStates := make([]server.EnrollState, sessions)
	for i := range refStates {
		st, ok, err := ref.EnrollStatus(fmt.Sprintf("sess-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			refStates[i] = st
		}
	}
	ref.Close()

	// acked ⊆ replayed, session by session — with the tiered twist that a
	// promoted session's durable effect is its enrolled device, not its
	// observation counter: checkpoints truncate promoted sessions' WAL
	// records (only unconverged sessions pin the keep floor), so after a
	// compaction the counter legitimately undercounts. A device present in
	// the recovered database accounts for every acked observation of its
	// session; a session with no enrolled device must still hold all of its
	// acked records in the WAL.
	enrolled := make([]bool, sessions)
	for i := 0; i < sessions; i++ {
		enrolled[i] = seen[fmt.Sprintf("device-%d", i)] > 0
		got := refStates[i].Observations
		if got > sent[i] {
			t.Errorf("session %d: replayed %d observations but only %d were sent", i, got, sent[i])
		}
		if !enrolled[i] && got < acked[i] {
			t.Errorf("session %d: unpromoted, replayed %d observations, acked %d, sent %d", i, got, acked[i], sent[i])
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// Restart the daemon (chaos disarmed) on the same directories; its
	// served state must equal the oracle fold, and promoted devices must
	// still identify off the recovered segments.
	base2, cmd2 := startPcserved(t, args...)
	for i := 0; i < sessions; i++ {
		if !enrolled[i] {
			continue
		}
		body, _ := json.Marshal(map[string]any{"len": nbits, "positions": obsFor(i, 999).Positions()})
		resp, err := http.Post(base2+"/v1/identify", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var v struct {
			Match bool   `json:"match"`
			Name  string `json:"name"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !v.Match || v.Name != fmt.Sprintf("device-%d", i) {
			t.Errorf("promoted device-%d no longer identifies after recovery: %+v", i, v)
		}
	}
	// Graceful drain checkpoints the store; a fresh in-process boot over the
	// flushed segments must land on the oracle bytes again — byte-identical
	// recovery through flush, compaction, and replay.
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd2.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("pcserved exit after recovery: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("pcserved did not drain within 15s of SIGTERM")
	}
	third, err := server.BootDurable(nil, server.Config{Store: storeCfg}, ecfg)
	if err != nil {
		t.Fatalf("third boot: %v", err)
	}
	defer third.Close()
	var thirdBytes bytes.Buffer
	if _, err := third.DB().Export().WriteTo(&thirdBytes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(thirdBytes.Bytes(), refBytes.Bytes()) {
		t.Fatalf("checkpoint-then-replay boot diverged from the crash-replay oracle (%s)", crashPoint)
	}
}
