package probablecause_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIIdentifyVerdicts is the regression test for the identify verdict
// contract: exit 0 on an unambiguous match, 3 on no match, 4 when several
// registered devices are within threshold — and, with -json, one JSON object
// carrying the full verdict including the ambiguity flag (previously the
// ambiguous case was silently reported as a plain match).
func TestCLIIdentifyVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	pcause, _ := buildCLIs(t)
	dir := t.TempDir()

	exact := make([]byte, 4096)
	exactPath := filepath.Join(dir, "exact.bin")
	if err := os.WriteFile(exactPath, exact, 0o644); err != nil {
		t.Fatal(err)
	}
	write := func(name string, flips []int) string {
		data := make([]byte, len(exact))
		for _, p := range flips {
			data[p] ^= 1
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	// Twins: two devices sharing their volatile bits, so any output of one is
	// within threshold of both. A third, distinct device.
	core := []int{10, 50, 100, 200, 300, 400, 500, 600, 700, 800}
	other := []int{11, 51, 101, 201, 301, 401, 501, 601, 701, 801}
	t1 := write("t1.bin", append(core, 900))
	t2 := write("t2.bin", append(core, 901))
	probe := write("probe.bin", append(core, 902))
	o1 := write("o1.bin", append(other, 903))
	o2 := write("o2.bin", append(other, 904))
	stranger := write("stranger.bin", []int{7, 70, 700, 1700, 2700})

	fpTwin := filepath.Join(dir, "twin.fp")
	runCLI(t, pcause, "characterize", "-exact", exactPath, "-approx", t1+","+t2, "-o", fpTwin)
	fpOther := filepath.Join(dir, "other.fp")
	runCLI(t, pcause, "characterize", "-exact", exactPath, "-approx", o1+","+o2, "-o", fpOther)

	uniqueDB := filepath.Join(dir, "unique.pcdb")
	runCLI(t, pcause, "mkdb", "-o", uniqueDB, "twinA="+fpTwin, "other="+fpOther)
	twinDB := filepath.Join(dir, "twins.pcdb")
	runCLI(t, pcause, "mkdb", "-o", twinDB, "twinA="+fpTwin, "twinB="+fpTwin, "other="+fpOther)

	type verdict struct {
		Match     bool    `json:"match"`
		Ambiguous bool    `json:"ambiguous"`
		Matches   int     `json:"matches"`
		Name      string  `json:"name"`
		Distance  float64 `json:"distance"`
		Threshold float64 `json:"threshold"`
	}
	identify := func(db, approx string, extra ...string) (verdict, int) {
		t.Helper()
		args := append([]string{"identify", "-exact", exactPath, "-approx", approx, "-db", db, "-json"}, extra...)
		out, code := runCLIStatus(t, pcause, args...)
		var v verdict
		if err := json.Unmarshal([]byte(out), &v); err != nil {
			t.Fatalf("identify -json output %q: %v", out, err)
		}
		return v, code
	}

	// Unambiguous match: exit 0.
	if v, code := identify(uniqueDB, probe); code != 0 || !v.Match || v.Ambiguous || v.Name != "twinA" || v.Matches != 1 {
		t.Fatalf("unique match: exit %d, verdict %+v", code, v)
	}
	// No match: exit 3.
	if v, code := identify(uniqueDB, stranger); code != 3 || v.Match || v.Ambiguous {
		t.Fatalf("no match: exit %d, verdict %+v", code, v)
	}
	// Ambiguous: exit 4, verdict says so, and both the plain and -indexed
	// paths agree.
	for _, extra := range [][]string{nil, {"-indexed"}} {
		v, code := identify(twinDB, probe, extra...)
		if code != 4 || !v.Match || !v.Ambiguous || v.Matches < 2 {
			t.Fatalf("ambiguous (%v): exit %d, verdict %+v", extra, code, v)
		}
	}

	// The human-readable form carries the same verdicts.
	out, code := runCLIStatus(t, pcause, "identify", "-exact", exactPath, "-approx", probe, "-db", twinDB)
	if code != 4 || !strings.HasPrefix(out, "AMBIGUOUS") {
		t.Fatalf("text ambiguous: exit %d, %q", code, out)
	}
}
