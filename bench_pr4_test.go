// PR4 benches: the HTTP serving path on a 1000-entry database — per-request
// single-query dispatch against 64-query batch requests. On any core count
// (including CI's single-CPU runners) batching wins by amortizing the
// per-request HTTP exchange, JSON decode, and queue dispatch across the
// batch; BENCH_PR4.json records the measured ratio. Regenerate with
// BENCH_PR4=1 go test -run BenchPR4Snapshot.
package probablecause_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"probablecause/internal/server"
)

// serveFixture is the 1k-entry service under a real HTTP socket, plus
// pre-marshalled request bodies so client-side encoding stays out of the
// timed loop.
type serveFixture struct {
	srv      *httptest.Server
	client   *http.Client
	singles  [][]byte // one query per body
	batch    []byte   // serveBatchSize queries in one body
	expected []int    // chip index each single query must hit
}

const serveBatchSize = 64

func newServeFixture(b *testing.B) (*serveFixture, func()) {
	b.Helper()
	f := identifyDB(b)
	// Cache off: the bench measures dispatch cost, and a 16-query rotation
	// would otherwise degenerate into pure cache hits.
	svc, err := server.New(f.db, server.Config{Shards: 4, Workers: 1, CacheSize: 0})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	closeAll := func() { ts.Close(); svc.Close() }

	sf := &serveFixture{srv: ts, client: ts.Client()}
	type wireQuery struct {
		Len       int      `json:"len"`
		Positions []uint32 `json:"positions"`
	}
	wire := make([]wireQuery, len(f.queries))
	for qi, q := range f.queries {
		wire[qi] = wireQuery{Len: q.Len(), Positions: q.Positions()}
		blob, err := json.Marshal(wire[qi])
		if err != nil {
			b.Fatal(err)
		}
		sf.singles = append(sf.singles, blob)
		sf.expected = append(sf.expected, f.chips[qi])
	}
	batchQueries := make([]wireQuery, serveBatchSize)
	for i := range batchQueries {
		batchQueries[i] = wire[i%len(wire)]
	}
	sf.batch, err = json.Marshal(struct {
		Queries []wireQuery `json:"queries"`
	}{batchQueries})
	if err != nil {
		b.Fatal(err)
	}
	return sf, closeAll
}

func (sf *serveFixture) post(b *testing.B, path string, body []byte) []byte {
	b.Helper()
	resp, err := sf.client.Post(sf.srv.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("%s: %d %s", path, resp.StatusCode, out)
	}
	return out
}

// benchServeSingle times one identify query per HTTP request. Reported
// ns/op is ns per query.
func benchServeSingle(b *testing.B, sf *serveFixture) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qi := i % len(sf.singles)
		out := sf.post(b, "/v1/identify", sf.singles[qi])
		var v struct {
			Match bool `json:"match"`
			ID    int  `json:"id"`
		}
		if err := json.Unmarshal(out, &v); err != nil {
			b.Fatal(err)
		}
		if !v.Match || v.ID != sf.expected[qi] {
			b.Fatalf("query %d → %+v, want chip %d", qi, v, sf.expected[qi])
		}
	}
}

// benchServeBatch times serveBatchSize queries per HTTP request. Reported
// ns/op is ns per 64-query request; divide by serveBatchSize for ns per
// query.
func benchServeBatch(b *testing.B, sf *serveFixture) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := sf.post(b, "/v1/identify-batch", sf.batch)
		var resp struct {
			Results []struct {
				Match bool `json:"match"`
			} `json:"results"`
		}
		if err := json.Unmarshal(out, &resp); err != nil {
			b.Fatal(err)
		}
		if len(resp.Results) != serveBatchSize {
			b.Fatalf("batch returned %d results, want %d", len(resp.Results), serveBatchSize)
		}
		for j, r := range resp.Results {
			if !r.Match {
				b.Fatalf("batch result %d did not match", j)
			}
		}
	}
}

// BenchmarkServeIdentify is the serving-path comparison: single-query
// requests against 64-query batch requests over the same 1k-entry service.
func BenchmarkServeIdentify(b *testing.B) {
	sf, closeAll := newServeFixture(b)
	defer closeAll()
	b.Run("single-1k", func(b *testing.B) { benchServeSingle(b, sf) })
	b.Run(fmt.Sprintf("batch%d-1k", serveBatchSize), func(b *testing.B) { benchServeBatch(b, sf) })
}

// benchPR4 mirrors BENCH_PR4.json.
type benchPR4 struct {
	// SingleNsPerQuery is ns per query with one query per HTTP request.
	SingleNsPerQuery int64 `json:"single_ns_per_query"`
	// BatchNsPerQuery is ns per query with 64 queries per HTTP request.
	BatchNsPerQuery int64 `json:"batch_ns_per_query"`
	// ServeBatchSpeedup is single ÷ batch — the machine-independent ratio
	// the snapshot exists to record (> 1 means batching beats per-request
	// dispatch).
	ServeBatchSpeedup float64 `json:"serve_batch_speedup"`
}

// TestBenchPR4Snapshot measures the serving benches and rewrites
// BENCH_PR4.json. Gated by BENCH_PR4=1 (costs benchmark seconds); it fails
// outright if batching does not beat serial per-request dispatch.
func TestBenchPR4Snapshot(t *testing.T) {
	if os.Getenv("BENCH_PR4") != "1" {
		t.Skip("set BENCH_PR4=1 to remeasure the serving benches and rewrite BENCH_PR4.json")
	}
	var (
		sf       *serveFixture
		closeAll func()
	)
	testing.Benchmark(func(b *testing.B) {
		if sf == nil {
			sf, closeAll = newServeFixture(b)
		}
	})
	defer closeAll()
	single := testing.Benchmark(func(b *testing.B) { benchServeSingle(b, sf) })
	batch := testing.Benchmark(func(b *testing.B) { benchServeBatch(b, sf) })

	snap := benchPR4{
		SingleNsPerQuery: single.NsPerOp(),
		BatchNsPerQuery:  batch.NsPerOp() / serveBatchSize,
	}
	snap.ServeBatchSpeedup = float64(snap.SingleNsPerQuery) / float64(snap.BatchNsPerQuery)
	t.Logf("serve identify: single %d ns/query, batch-%d %d ns/query → %.1fx",
		snap.SingleNsPerQuery, serveBatchSize, snap.BatchNsPerQuery, snap.ServeBatchSpeedup)
	if snap.ServeBatchSpeedup <= 1 {
		t.Fatalf("batched serving (%d ns/query) does not beat per-request dispatch (%d ns/query)",
			snap.BatchNsPerQuery, snap.SingleNsPerQuery)
	}
	blob, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR4.json", append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
