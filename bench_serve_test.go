// Serving-path benchmarks: identify latency distribution and throughput
// through the full HTTP stack, with and without request-scoped
// observability. TestWriteBenchServe (BENCH_SERVE_WRITE=1) records the
// BENCH_SERVE.json snapshot; TestBenchServeSmoke (BENCH_SMOKE=1) guards
// the machine-independent observability-overhead ratio recorded there.
package probablecause_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
	"probablecause/internal/obs"
	"probablecause/internal/server"
)

const serveBenchBits = 4096

// serveBenchDB builds a deterministic fixture fleet: 256 devices with
// 48-cell fingerprints over a 4096-bit page.
func serveBenchDB() *fingerprint.DB {
	db := fingerprint.NewDB(fingerprint.DefaultThreshold)
	for i := 0; i < 256; i++ {
		fp := bitset.New(serveBenchBits)
		for j := 0; j < 48; j++ {
			fp.Set((i*389 + j*61) % serveBenchBits)
		}
		db.Add(fmt.Sprintf("dev%03d", i), fp)
	}
	return db
}

// serveBenchBodies pre-marshals noisy queries (device fingerprint plus two
// flipped cells) so the measured loop is pure serving.
func serveBenchBodies(n int) [][]byte {
	db := serveBenchDB()
	bodies := make([][]byte, n)
	for i := range bodies {
		fp, _ := db.Get(fmt.Sprintf("dev%03d", i%256))
		es := fp.Clone()
		es.Set((i * 7) % serveBenchBits)
		es.Set((i*13 + 1) % serveBenchBits)
		blob, err := json.Marshal(map[string]any{"len": serveBenchBits, "positions": es.Positions()})
		if err != nil {
			panic(err)
		}
		bodies[i] = blob
	}
	return bodies
}

func serveBenchService(tb testing.TB, cfg server.Config) (*server.Service, http.Handler) {
	tb.Helper()
	s, err := server.New(serveBenchDB(), cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(s.Close)
	return s, s.Handler()
}

func identifyOnce(tb testing.TB, h http.Handler, body []byte) {
	req := httptest.NewRequest("POST", "/v1/identify", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		tb.Fatalf("identify: %d %s", w.Code, w.Body.Bytes())
	}
}

// BenchmarkServeObservability prices the instrumentation: the same
// identify path with everything off against tracing, RED, SLO tracking,
// and slow-request retention all on.
func BenchmarkServeObservability(b *testing.B) {
	bodies := serveBenchBodies(256)
	b.Run("off", func(b *testing.B) {
		_, h := serveBenchService(b, server.Config{Shards: 4, Workers: 4})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			identifyOnce(b, h, bodies[i%len(bodies)])
		}
	})
	b.Run("on", func(b *testing.B) {
		obs.Enable()
		defer obs.Disable()
		objectives, err := obs.ParseObjectives("identify:p99<50ms")
		if err != nil {
			b.Fatal(err)
		}
		_, h := serveBenchService(b, server.Config{
			Shards: 4, Workers: 4,
			SLO:          obs.SLOConfig{Objectives: objectives},
			SlowRequests: 16,
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			identifyOnce(b, h, bodies[i%len(bodies)])
		}
	})
}

// serveLoad drives reqs sequential identifies and returns sorted latencies.
func serveLoad(tb testing.TB, h http.Handler, reqs int) []time.Duration {
	bodies := serveBenchBodies(256)
	lat := make([]time.Duration, reqs)
	for i := 0; i < reqs; i++ {
		t0 := time.Now()
		identifyOnce(tb, h, bodies[i%len(bodies)])
		lat[i] = time.Since(t0)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat
}

// serveThroughput hammers the handler from c goroutines for d and returns
// requests per second.
func serveThroughput(tb testing.TB, h http.Handler, c int, d time.Duration) float64 {
	bodies := serveBenchBodies(256)
	var n atomic.Int64
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for g := 0; g < c; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; time.Now().Before(deadline); i += c {
				identifyOnce(tb, h, bodies[i%len(bodies)])
				n.Add(1)
			}
		}(g)
	}
	wg.Wait()
	return float64(n.Load()) / d.Seconds()
}

// benchServeSnapshot mirrors BENCH_SERVE.json.
type benchServeSnapshot struct {
	Comment          string  `json:"_comment"`
	IdentifyP50US    float64 `json:"identify_p50_us"`
	IdentifyP99US    float64 `json:"identify_p99_us"`
	ThroughputRPS    float64 `json:"throughput_rps"`
	ObsOverheadRatio float64 `json:"obs_overhead_ratio"`
}

func measureServe(t *testing.T) benchServeSnapshot {
	t.Helper()
	const reqs = 3000
	_, plainH := serveBenchService(t, server.Config{Shards: 4, Workers: 4})
	plain := serveLoad(t, plainH, reqs)

	obs.Enable()
	defer obs.Disable()
	objectives, err := obs.ParseObjectives("identify:p99<50ms")
	if err != nil {
		t.Fatal(err)
	}
	_, obsH := serveBenchService(t, server.Config{
		Shards: 4, Workers: 4,
		SLO:          obs.SLOConfig{Objectives: objectives},
		SlowRequests: 16,
	})
	observed := serveLoad(t, obsH, reqs)
	rps := serveThroughput(t, obsH, 8, 500*time.Millisecond)

	p := func(lat []time.Duration, q float64) time.Duration { return lat[int(q*float64(len(lat)-1))] }
	return benchServeSnapshot{
		IdentifyP50US:    float64(p(observed, 0.50).Nanoseconds()) / 1e3,
		IdentifyP99US:    float64(p(observed, 0.99).Nanoseconds()) / 1e3,
		ThroughputRPS:    rps,
		ObsOverheadRatio: float64(p(observed, 0.50)) / float64(p(plain, 0.50)),
	}
}

// TestWriteBenchServe records the serving snapshot. Gated: it overwrites a
// committed artifact.
//
//	BENCH_SERVE_WRITE=1 go test -run TestWriteBenchServe .
func TestWriteBenchServe(t *testing.T) {
	if os.Getenv("BENCH_SERVE_WRITE") != "1" {
		t.Skip("set BENCH_SERVE_WRITE=1 to rewrite BENCH_SERVE.json")
	}
	snap := measureServe(t)
	snap.Comment = "Serving-path snapshot recorded by TestWriteBenchServe (BENCH_SERVE_WRITE=1): fully-observed /v1/identify latency percentiles and 8-client throughput on the recording machine (informational), plus obs_overhead_ratio — observed p50 over uninstrumented p50, machine-independent — which TestBenchServeSmoke guards with 2x slack."
	blob, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_SERVE.json", append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("recorded %+v", snap)
}

// TestBenchServeSmoke guards the observability cost: the observed-over-
// plain p50 ratio must stay within 2x of the recorded snapshot (absolute
// latencies and throughput are logged, not compared — they track runner
// speed). Gated by BENCH_SMOKE=1 like TestBenchSmoke.
func TestBenchServeSmoke(t *testing.T) {
	if os.Getenv("BENCH_SMOKE") != "1" {
		t.Skip("set BENCH_SMOKE=1 to run the serving bench smoke")
	}
	data, err := os.ReadFile("BENCH_SERVE.json")
	if err != nil {
		t.Fatal(err)
	}
	var base benchServeSnapshot
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	snap := measureServe(t)
	t.Logf("identify p50 %.0fµs p99 %.0fµs, %.0f req/s, obs overhead %.2fx (baseline %.2fx)",
		snap.IdentifyP50US, snap.IdentifyP99US, snap.ThroughputRPS, snap.ObsOverheadRatio, base.ObsOverheadRatio)
	if snap.ObsOverheadRatio > base.ObsOverheadRatio*2 {
		t.Errorf("observability overhead %.2fx regressed >2x vs recorded %.2fx",
			snap.ObsOverheadRatio, base.ObsOverheadRatio)
	}
}
