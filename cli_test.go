package probablecause_test

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLIs compiles both binaries once per test run.
func buildCLIs(t *testing.T) (pcause, pcexperiments string) {
	t.Helper()
	dir := t.TempDir()
	pcause = filepath.Join(dir, "pcause")
	pcexperiments = filepath.Join(dir, "pcexperiments")
	for bin, pkg := range map[string]string{pcause: "./cmd/pcause", pcexperiments: "./cmd/pcexperiments"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}
	return pcause, pcexperiments
}

func runCLI(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, code := runCLIStatus(t, bin, args...)
	if code != 0 {
		t.Fatalf("%s %s: exit %d\n%s", filepath.Base(bin), strings.Join(args, " "), code, out)
	}
	return out
}

// runCLIStatus runs the command and returns its combined output and exit
// code — for commands whose exit code is part of the contract (identify's
// verdict codes).
func runCLIStatus(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
		}
		return string(out), ee.ExitCode()
	}
	return string(out), 0
}

func TestCLIFullAttackWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	pcause, _ := buildCLIs(t)
	dir := t.TempDir()

	// Craft exact data and three outputs: two from "device A" (shared error
	// bytes), one from "device B".
	exact := make([]byte, 4096)
	write := func(name string, flips []int) string {
		data := make([]byte, len(exact))
		for _, p := range flips {
			data[p] ^= 1
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	exactPath := filepath.Join(dir, "exact.bin")
	if err := os.WriteFile(exactPath, exact, 0o644); err != nil {
		t.Fatal(err)
	}
	coreA := []int{10, 50, 100, 200, 300, 400, 500, 600, 700, 800}
	coreB := []int{11, 51, 101, 201, 301, 401, 501, 601, 701, 801}
	a1 := write("a1.bin", append(coreA, 900))
	a2 := write("a2.bin", append(coreA, 901))
	a3 := write("a3.bin", append(coreA, 902))
	b1 := write("b1.bin", append(coreB, 903))

	fp := filepath.Join(dir, "fpA.bin")
	out := runCLI(t, pcause, "characterize", "-exact", exactPath, "-approx", a1+","+a2, "-o", fp)
	if !strings.Contains(out, "10 volatile bits") {
		t.Fatalf("characterize output: %s", out)
	}

	db := filepath.Join(dir, "fleet.pcdb")
	runCLI(t, pcause, "mkdb", "-o", db, "deviceA="+fp)

	if out := runCLI(t, pcause, "identify", "-exact", exactPath, "-approx", a3, "-db", db); !strings.Contains(out, "MATCH deviceA") {
		t.Fatalf("identify (same device): %s", out)
	}
	if out, code := runCLIStatus(t, pcause, "identify", "-exact", exactPath, "-approx", b1, "-db", db); !strings.Contains(out, "no match") || code != 3 {
		t.Fatalf("identify (other device): exit %d, %s", code, out)
	}

	out = runCLI(t, pcause, "cluster", "-exact", exactPath, "-approx", strings.Join([]string{a1, a2, a3, b1}, ","))
	if !strings.Contains(out, "2 suspected device(s)") {
		t.Fatalf("cluster output: %s", out)
	}
}

func TestCLIStitchWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	pcause, _ := buildCLIs(t)
	dir := t.TempDir()
	samples := filepath.Join(dir, "samples.jsonl")
	dbPath := filepath.Join(dir, "db.pcst")

	runCLI(t, pcause, "gensamples", "-o", samples, "-memory", "256", "-pages", "8", "-n", "300")
	out := runCLI(t, pcause, "stitch", "-in", samples, "-progress", "0", "-save", dbPath)
	if !strings.Contains(out, "1 suspected machine(s)") {
		t.Fatalf("stitch did not converge: %s", out)
	}
	// Resume from the saved archive with fresh samples of the same machine.
	more := filepath.Join(dir, "more.jsonl")
	runCLI(t, pcause, "gensamples", "-o", more, "-memory", "256", "-pages", "8", "-n", "50")
	out = runCLI(t, pcause, "stitch", "-in", more, "-progress", "0", "-load", dbPath)
	if !strings.Contains(out, "resumed database") || !strings.Contains(out, "1 suspected machine(s)") {
		t.Fatalf("resumed stitch: %s", out)
	}
}

func TestCLIHelp(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	pcause, _ := buildCLIs(t)
	out := runCLI(t, pcause, "help")
	for _, cmd := range []string{"characterize", "identify", "cluster", "mkdb", "gensamples", "stitch", "demo"} {
		if !strings.Contains(out, cmd) {
			t.Errorf("help output missing %q:\n%s", cmd, out)
		}
	}
	// Subcommand -h must print that command's own synopsis and flags, not
	// the generic one-liner, and exit 0.
	out = runCLI(t, pcause, "stitch", "-h")
	if !strings.Contains(out, "usage: pcause stitch") || !strings.Contains(out, "-obs.report") {
		t.Errorf("stitch -h output wrong:\n%s", out)
	}
	// Unknown commands still exit 2.
	cmd := exec.Command(pcause, "frobnicate")
	if err := cmd.Run(); err == nil {
		t.Error("unknown command exited 0")
	} else if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Errorf("unknown command exit: %v, want code 2", err)
	}
}

func TestCLIObsReport(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	pcause, _ := buildCLIs(t)
	dir := t.TempDir()
	samples := filepath.Join(dir, "samples.jsonl")
	report := filepath.Join(dir, "report.json")
	trace := filepath.Join(dir, "trace.json")

	runCLI(t, pcause, "gensamples", "-o", samples, "-memory", "256", "-pages", "8", "-n", "200")
	runCLI(t, pcause, "stitch", "-in", samples, "-progress", "0", "-obs.report", report, "-obs.trace", trace)

	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters   map[string]int64            `json:"counters"`
		Gauges     map[string]int64            `json:"gauges"`
		Histograms map[string]map[string]int64 `json:"histograms"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, data)
	}
	// The acceptance surface: cluster count, pages covered, verify count,
	// and distance percentiles must all be present and plausible.
	if got := snap.Gauges["stitch.clusters"]; got < 1 {
		t.Errorf("stitch.clusters = %d, want ≥ 1", got)
	}
	if got := snap.Gauges["stitch.covered_pages"]; got < 8 {
		t.Errorf("stitch.covered_pages = %d, want ≥ 8", got)
	}
	if got := snap.Counters["stitch.verify.calls"]; got < 1 {
		t.Errorf("stitch.verify.calls = %d, want ≥ 1", got)
	}
	if got := snap.Counters["stitch.samples"]; got != 200 {
		t.Errorf("stitch.samples = %d, want 200", got)
	}
	h, ok := snap.Histograms["fingerprint.sparse_distance.nanos"]
	if !ok {
		t.Fatal("report missing fingerprint.sparse_distance.nanos histogram")
	}
	if h["count"] < 1 || h["p50"] < 1 || h["p99"] < h["p50"] {
		t.Errorf("distance histogram implausible: %+v", h)
	}
	traceData, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(traceData, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Error("trace contains no spans")
	}
}

func TestCLIDemoAndExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	pcause, pcexperiments := buildCLIs(t)
	if out := runCLI(t, pcause, "demo"); !strings.Contains(out, "identified as chip0") {
		t.Fatalf("demo: %s", out)
	}
	dir := t.TempDir()
	out := runCLI(t, pcexperiments, "-run", "table1", "-out", dir)
	if !strings.Contains(out, "8.69e+795") {
		t.Fatalf("table1: %s", out)
	}
	out = runCLI(t, pcexperiments, "-run", "fig10", "-scale", "small", "-out", dir)
	if !strings.Contains(out, "Figure 10") {
		t.Fatalf("fig10: %s", out)
	}
}

func TestCLIProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "pcprofile")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/pcprofile").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	outDir := t.TempDir()
	out := runCLI(t, bin, "-small", "-out", outDir, "-trials", "4")
	if !strings.Contains(out, "done") {
		t.Fatalf("pcprofile output: %s", out)
	}
	for _, f := range []string{"decay_curve.csv", "row_lifetimes.csv", "stability.csv"} {
		data, err := os.ReadFile(filepath.Join(outDir, f))
		if err != nil {
			t.Fatal(err)
		}
		if len(strings.Split(string(data), "\n")) < 3 {
			t.Fatalf("%s too short", f)
		}
	}
}
