// Integration tests: full attack pipelines across module boundaries, plus a
// ground-truth oracle for the stitcher.
package probablecause_test

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"probablecause/internal/approx"
	"probablecause/internal/bitset"
	"probablecause/internal/dram"
	"probablecause/internal/drammodel"
	"probablecause/internal/errloc"
	"probablecause/internal/fingerprint"
	"probablecause/internal/osmodel"
	"probablecause/internal/prng"
	"probablecause/internal/stitch"
	"probablecause/internal/workload"
)

// testGeometry is an 8 KB chip: large enough for meaningful statistics,
// small enough for fast integration tests.
var testGeometry = dram.Geometry{Rows: 64, Cols: 256, BitsPerWord: 4, DefaultStripe: 2}

func newMemory(t *testing.T, seed uint64, accuracy float64) *approx.Memory {
	t.Helper()
	cfg := dram.KM41464A(seed)
	cfg.Geometry = testGeometry
	chip, err := dram.NewChip(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := approx.New(chip, accuracy)
	if err != nil {
		t.Fatal(err)
	}
	return mem
}

// TestSupplyChainPipeline drives the complete scenario-(a) attack: physical
// characterization, database persistence, then identification of outputs
// captured under shifted operating conditions.
func TestSupplyChainPipeline(t *testing.T) {
	const fleet = 3
	db := fingerprint.NewDB(fingerprint.DefaultThreshold)
	mems := make([]*approx.Memory, fleet)
	for i := range mems {
		mems[i] = newMemory(t, uint64(1000+i*37), 0.99)
		a1, exact, err := mems[i].WorstCaseOutput()
		if err != nil {
			t.Fatal(err)
		}
		a2, _, err := mems[i].WorstCaseOutput()
		if err != nil {
			t.Fatal(err)
		}
		fp, err := fingerprint.Characterize(exact, a1, a2)
		if err != nil {
			t.Fatal(err)
		}
		db.Add(fmt.Sprintf("module-%d", i), fp)
	}

	// Persist and reload the database — the attacker's archive.
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := fingerprint.ReadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}

	for i, mem := range mems {
		mem.Chip().SetTemperature(55)
		if err := mem.SetAccuracy(0.93); err != nil {
			t.Fatal(err)
		}
		a, exact, err := mem.WorstCaseOutput()
		if err != nil {
			t.Fatal(err)
		}
		es, err := fingerprint.ErrorString(a, exact)
		if err != nil {
			t.Fatal(err)
		}
		name, idx, ok := loaded.Identify(es)
		if !ok || idx != i {
			t.Fatalf("output of module-%d identified as (%q, %d, %v)", i, name, idx, ok)
		}
	}
}

// TestEavesdropperPipeline drives the complete scenario-(b) attack through
// workload → osmodel → stitch and checks convergence plus ground truth: all
// samples really came from one machine.
func TestEavesdropperPipeline(t *testing.T) {
	model := drammodel.New(42)
	mem, err := osmodel.NewMemory(128, 7)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewSampleSource(model, mem, 0.01, 8)
	if err != nil {
		t.Fatal(err)
	}
	st, err := stitch.New(stitch.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		sample, _, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Add(sample); err != nil {
			t.Fatal(err)
		}
	}
	if st.Count() != 1 {
		t.Fatalf("one machine's outputs formed %d clusters", st.Count())
	}
	if st.LargestCluster() > 128 {
		t.Fatalf("cluster spans %d pages, memory only has 128", st.LargestCluster())
	}
}

// TestTwoVictimsStayDistinct interleaves published outputs from two
// machines; the stitcher must converge to exactly two clusters.
func TestTwoVictimsStayDistinct(t *testing.T) {
	type victim struct{ src *workload.SampleSource }
	var victims []victim
	for i := 0; i < 2; i++ {
		model := drammodel.New(uint64(100 + i))
		mem, err := osmodel.NewMemory(128, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		src, err := workload.NewSampleSource(model, mem, 0.01, 8)
		if err != nil {
			t.Fatal(err)
		}
		victims = append(victims, victim{src: src})
	}
	st, err := stitch.New(stitch.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		sample, _, err := victims[i%2].src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Add(sample); err != nil {
			t.Fatal(err)
		}
	}
	if st.Count() != 2 {
		t.Fatalf("two machines' outputs formed %d clusters, want 2", st.Count())
	}
}

// TestStitcherMatchesIntervalOracle: with the noise-free model and
// single-page overlap acceptance, the stitcher's cluster count must exactly
// equal the number of connected components of the interval-overlap graph —
// a pure union-find oracle over the hidden placements.
func TestStitcherMatchesIntervalOracle(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		samples := int(n%40) + 2
		model := drammodel.New(seed)
		model.BandSigma = 0 // noise-free: page matches are exact
		mem, err := osmodel.NewMemory(256, seed^0xFACE)
		if err != nil {
			return false
		}
		st, err := stitch.New(stitch.Config{})
		if err != nil {
			return false
		}

		// Oracle union-find over sample indices.
		parent := make([]int, samples)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			if parent[x] != x {
				parent[x] = find(parent[x])
			}
			return parent[x]
		}
		var placements [][2]int // [start, end)

		for i := 0; i < samples; i++ {
			pl, err := mem.Place(8)
			if err != nil {
				return false
			}
			pages := make([]bitset.Sparse, 8)
			for j, phys := range pl.Phys {
				fp, err := model.PageErrors(uint64(phys), 0.01, uint64(i))
				if err != nil {
					return false
				}
				pages[j] = fp
			}
			if _, err := st.Add(stitch.Sample{Pages: pages}); err != nil {
				return false
			}
			s, e := pl.Phys[0], pl.Phys[0]+8
			for j, p := range placements {
				if s < p[1] && p[0] < e { // intervals overlap
					parent[find(i)] = find(j)
				}
			}
			placements = append(placements, [2]int{s, e})
		}
		components := 0
		for i := range parent {
			if find(i) == i {
				components++
			}
		}
		return st.Count() == components
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestErrorLocalizationPipeline: attacker identifies an image output whose
// exact version it reconstructed via the public input.
func TestErrorLocalizationPipeline(t *testing.T) {
	mem := newMemory(t, 77, 0.99)
	job := workload.NewBinaryImageJob(64, 64, 5, 64)

	// Characterize the image region with chosen inputs.
	a1, exact, err := mem.WorstCaseOutput()
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := mem.WorstCaseOutput()
	if err != nil {
		t.Fatal(err)
	}
	n := 64 * 64
	fp, err := fingerprint.Characterize(exact[:n], a1[:n], a2[:n])
	if err != nil {
		t.Fatal(err)
	}
	db := fingerprint.NewDB(fingerprint.DefaultThreshold)
	db.Add("victim", fp)

	out, err := job.RunApprox(mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	recomputed := errloc.RecomputeExact(job.Input).Threshold(64)
	es, err := errloc.EstimateErrors(out, recomputed)
	if err != nil {
		t.Fatal(err)
	}
	if name, _, ok := db.Identify(es); !ok || name != "victim" {
		t.Fatalf("localized output not identified: (%q, %v)", name, ok)
	}
}

// TestChargedFractionStitching: with realistic application data only ~half
// the volatile cells are visible per output; stitching still works once the
// threshold accounts for the reduced overlap (an extension beyond the
// paper's worst-case assumption).
func TestChargedFractionStitching(t *testing.T) {
	model := drammodel.New(88)
	model.ChargedFraction = 0.5
	mem, err := osmodel.NewMemory(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewSampleSource(model, mem, 0.01, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Two same-page observations now share only ~50% of visible errors each
	// way: expected distance ≈ 0.5. Raise the threshold; between-class
	// distance stays ≈ 0.99 so the gap survives.
	// Intersection refinement would erase the fingerprint under partial
	// visibility (each observation exposes a different half); accumulate
	// with union instead. The default LSH banding is tuned for ~96 %
	// same-page similarity and misses the ~33 % similarity of half-charged
	// views, so match by exhaustive scan (the memory is tiny).
	st, err := stitch.New(stitch.Config{Threshold: 0.75, Refine: stitch.RefineUnion, Brute: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		sample, _, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Add(sample); err != nil {
			t.Fatal(err)
		}
	}
	if st.Count() != 1 {
		t.Fatalf("half-charged stitching left %d clusters", st.Count())
	}
}

// TestDeterministicEndToEnd: the same seeds produce byte-identical attack
// outcomes — the property every experiment's reproducibility rests on.
func TestDeterministicEndToEnd(t *testing.T) {
	run := func() string {
		mem := newMemory(t, 4242, 0.97)
		a, exact, err := mem.WorstCaseOutput()
		if err != nil {
			t.Fatal(err)
		}
		es, err := fingerprint.ErrorString(a, exact)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%d:%v", es.Count(), es.Positions()[:10])
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic pipeline: %s vs %s", a, b)
	}
}

// TestPRNGStreamsIndependent guards against accidental stream aliasing
// between chips built from related seeds.
func TestPRNGStreamsIndependent(t *testing.T) {
	a := prng.New(prng.Hash(1, 2))
	b := prng.New(prng.Hash(2, 1))
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("%d collisions between hash-derived streams", same)
	}
}
