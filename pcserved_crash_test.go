package probablecause_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
	"probablecause/internal/samplefile"
	"probablecause/internal/server"
)

// TestPcservedCrashRecovery is the durability acceptance test: kill -9
// the daemon in the middle of a concurrent /v1/enroll burst, restart it
// on the same WAL directory, and require that
//
//   - every acknowledged observation survived (acked ⊆ replayed),
//   - nothing was invented (replayed ⊆ sent),
//   - the recovered database is byte-identical to an independent
//     in-process replay of the same WAL — the state is a deterministic
//     function of the log, not of who folds it.
func TestPcservedCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	const (
		nbits    = 2048
		sessions = 10
		perObs   = 8
		killAt   = 25 // SIGKILL once this many observations are acked
	)
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	walArgs := []string{"-wal.dir", walDir, "-enroll.minobs", "3", "-enroll.patience", "2"}
	ecfg := server.EnrollConfig{
		Dir:         walDir,
		Accumulator: fingerprint.AccumulatorConfig{MinObservations: 3, StablePatience: 2},
	}

	obsFor := func(i, trial int) *bitset.Set {
		es := bitset.New(nbits)
		for j := 0; j < 32; j++ {
			es.Set((i*389 + j*61) % nbits)
		}
		es.Set((i*97 + trial*131 + 7) % nbits) // per-trial noise
		return es
	}

	base, cmd := startPcserved(t, walArgs...)

	// Concurrent enrollment burst, killed mid-flight. Each session sends
	// its observations in order and stops at the first failed request, so
	// per session: acked count ≤ replayed count ≤ sent count.
	var (
		totalAcked atomic.Int64
		killOnce   sync.Once
		wg         sync.WaitGroup
	)
	acked := make([]int, sessions)
	sent := make([]int, sessions)
	kill := func() {
		killOnce.Do(func() {
			cmd.Process.Signal(syscall.SIGKILL)
		})
	}
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for trial := 0; trial < perObs; trial++ {
				body, _ := json.Marshal(map[string]any{
					"session":   fmt.Sprintf("sess-%d", i),
					"name":      fmt.Sprintf("device-%d", i),
					"len":       nbits,
					"positions": obsFor(i, trial).Positions(),
				})
				sent[i]++
				resp, err := http.Post(base+"/v1/enroll", "application/json", bytes.NewReader(body))
				if err != nil {
					return // the kill raced this request; it may or may not be durable
				}
				ok := resp.StatusCode == http.StatusOK
				resp.Body.Close()
				if !ok {
					return
				}
				acked[i]++
				if totalAcked.Add(1) >= killAt {
					kill()
				}
			}
		}(i)
	}
	wg.Wait()
	kill() // burst finished before the threshold — kill now, recovery still runs
	cmd.Wait()
	if n := totalAcked.Load(); n == 0 {
		t.Fatal("no observation was acked before the kill")
	}

	// Independent in-process recovery: replay the WAL the daemon left
	// behind and capture the fold it deterministically produces.
	ref, err := server.BootDurable(nil, server.Config{}, ecfg)
	if err != nil {
		t.Fatalf("in-process recovery: %v", err)
	}
	var refBytes bytes.Buffer
	if _, err := ref.DB().Export().WriteTo(&refBytes); err != nil {
		t.Fatal(err)
	}
	refStates := make([]server.EnrollState, sessions)
	for i := range refStates {
		st, ok, err := ref.EnrollStatus(fmt.Sprintf("sess-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			refStates[i] = st
		}
	}
	ref.Close()

	// acked ⊆ replayed ⊆ sent, session by session.
	for i := 0; i < sessions; i++ {
		got := refStates[i].Observations
		if got < acked[i] || got > sent[i] {
			t.Errorf("session %d: replayed %d observations, acked %d, sent %d", i, got, acked[i], sent[i])
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// Restart the daemon on the same directory and snapshot its state;
	// the checkpoint database must match the in-process replay byte for
	// byte, and every acked-promoted device must still identify.
	base2, cmd2 := startPcserved(t, walArgs...)
	resp, err := http.Post(base2+"/v1/snapshot", "application/json", nil)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot after recovery: %v %d", err, resp.StatusCode)
	}
	resp.Body.Close()
	ckdb, _, ok, err := samplefile.LoadCheckpoint(walDir)
	if err != nil || !ok {
		t.Fatalf("loading recovery checkpoint: ok=%v err=%v", ok, err)
	}
	var ckBytes bytes.Buffer
	if _, err := ckdb.WriteTo(&ckBytes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckBytes.Bytes(), refBytes.Bytes()) {
		t.Fatal("recovered daemon state is not byte-identical to the independent WAL replay")
	}
	for i := 0; i < sessions; i++ {
		if !refStates[i].Promoted {
			continue
		}
		body, _ := json.Marshal(map[string]any{"len": nbits, "positions": obsFor(i, 999).Positions()})
		resp, err := http.Post(base2+"/v1/identify", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var v struct {
			Match bool   `json:"match"`
			Name  string `json:"name"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !v.Match || v.Name != fmt.Sprintf("device-%d", i) {
			t.Errorf("promoted device-%d no longer identifies after recovery: %+v", i, v)
		}
	}

	// Graceful shutdown checkpoints + compacts; a third boot must load the
	// checkpoint and land on the same bytes again (replay idempotence
	// through the graceful path).
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd2.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("pcserved exit after recovery: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("pcserved did not drain within 15s of SIGTERM")
	}
	third, err := server.BootDurable(nil, server.Config{}, ecfg)
	if err != nil {
		t.Fatalf("third boot: %v", err)
	}
	defer third.Close()
	var thirdBytes bytes.Buffer
	if _, err := third.DB().Export().WriteTo(&thirdBytes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(thirdBytes.Bytes(), refBytes.Bytes()) {
		t.Fatal("checkpoint-then-replay boot diverged from the crash-replay state")
	}
}
