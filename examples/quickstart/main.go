// Quickstart: store an image in an approximate DRAM, watch the error
// pattern appear, fingerprint the chip, and identify a later output.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"probablecause/internal/approx"
	"probablecause/internal/dram"
	"probablecause/internal/fingerprint"
	"probablecause/internal/workload"
)

func main() {
	// 1. "Manufacture" a chip. The seed is the silicon: same seed, same
	// process variation, same fingerprint.
	chip, err := dram.NewChip(dram.KM41464A(0xC0FFEE))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Run it as approximate memory at 99% accuracy: the controller
	// calibrates a refresh interval at which 1% of worst-case bits decay.
	mem, err := approx.New(chip, 0.99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated refresh interval: %.2fs at %.0f°C\n",
		mem.RefreshInterval(), chip.Temperature())

	// 3. The victim's program: edge-detect a photo, output buffer in
	// approximate memory.
	job := workload.NewBinaryImageJob(160, 120, 42, 64)
	out, err := job.RunApprox(mem, 0)
	if err != nil {
		log.Fatal(err)
	}
	pixErrs, err := out.DiffCount(job.Exact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published image has %d corrupted pixels of %d\n", pixErrs, len(out.Pix))

	// 4. The attacker characterizes the chip from two captured outputs
	// (Algorithm 1: intersect the error strings).
	a1, exact, err := mem.WorstCaseOutput()
	if err != nil {
		log.Fatal(err)
	}
	a2, _, err := mem.WorstCaseOutput()
	if err != nil {
		log.Fatal(err)
	}
	fp, err := fingerprint.Characterize(exact, a1, a2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fingerprint: %d reliably volatile cells\n", fp.Count())

	// 5. A year later the victim publishes another output — different
	// temperature, different approximation level. Identify it (Algorithms
	// 2-3).
	if err := mem.SetTemperature(55); err != nil {
		log.Fatal(err)
	}
	if err := mem.SetAccuracy(0.95); err != nil {
		log.Fatal(err)
	}
	a3, exact3, err := mem.WorstCaseOutput()
	if err != nil {
		log.Fatal(err)
	}
	es, err := fingerprint.ErrorString(a3, exact3)
	if err != nil {
		log.Fatal(err)
	}
	d := fingerprint.Distance(es, fp)
	fmt.Printf("distance of new output (55°C, 95%%) to fingerprint: %.4f\n", d)
	if d < fingerprint.DefaultThreshold {
		fmt.Println("→ identified: the output came from this machine")
	} else {
		fmt.Println("→ not identified")
	}
}
