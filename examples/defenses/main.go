// Defense evaluation (paper §8.2): what does it cost to hide from Probable
// Cause? This example pits the three discussed defenses against the attack:
//
//   - noise addition — flip output bits at increasing rates and watch when
//     identification finally fails (and what it does to output quality);
//   - data segregation — route a fraction of outputs through exact memory;
//   - page-level ASLR — scatter output pages so stitching cannot align.
//
// Run with: go run ./examples/defenses
package main

import (
	"fmt"
	"log"

	"probablecause/internal/defense"
	"probablecause/internal/drammodel"
	"probablecause/internal/fingerprint"
	"probablecause/internal/osmodel"
	"probablecause/internal/prng"
	"probablecause/internal/stitch"
	"probablecause/internal/workload"
)

func main() {
	noiseAddition()
	segregation()
	pageASLR()
}

func noiseAddition() {
	fmt.Println("— noise addition (§8.2.2) —")
	const pageBits = 32768
	m := drammodel.New(0xDEF1)
	vs, err := m.VolatileSet(0, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fp := vs.Dense(pageBits)
	rng := prng.New(0xA5)

	fmt.Println("noise rate  distance to own fingerprint  identified?  output-quality cost")
	for _, rate := range []float64{0, 0.001, 0.01, 0.05, 0.1, 0.3} {
		errs, err := m.PageErrors(0, 0.01, 99)
		if err != nil {
			log.Fatal(err)
		}
		noisy, err := defense.FlipNoiseSparse(errs, pageBits, rate, rng)
		if err != nil {
			log.Fatal(err)
		}
		d := fingerprint.Distance(noisy.Dense(pageBits), fp)
		verdict := "yes"
		if d >= fingerprint.DefaultThreshold {
			verdict = "no"
		}
		fmt.Printf("%9g  %27.4f  %-11s  %.0f× the approximation's own error\n",
			rate, d, verdict, rate/0.01)
	}
	fmt.Println("→ defeating identification costs tens of times the error budget the")
	fmt.Println("  approximation saved in the first place; noise only slows the attacker.")
	fmt.Println()
}

func segregation() {
	fmt.Println("— data segregation (§8.2.1) —")
	rng := prng.New(0xB6)
	for _, frac := range []float64{0, 0.5, 0.9, 1.0} {
		pol := defense.Segregation{SensitiveFraction: frac}
		exposed := 0
		const outputs = 1000
		for i := 0; i < outputs; i++ {
			if pol.Exposed(rng) {
				exposed++
			}
		}
		fmt.Printf("sensitive fraction %.0f%%: %4d of %d outputs still fingerprintable\n",
			frac*100, exposed, outputs)
	}
	fmt.Println("→ protection requires the user to correctly label every sensitive output,")
	fmt.Println("  gives no backward secrecy, and wastes the segregated memory.")
	fmt.Println()
}

func pageASLR() {
	fmt.Println("— page-level ASLR (§8.2.3) —")
	const (
		memoryPages = 1024
		samplePages = 10
		samples     = 150
	)
	for _, scattered := range []bool{false, true} {
		victim := drammodel.New(0xC3)
		mem, err := osmodel.NewMemory(memoryPages, 0x10)
		if err != nil {
			log.Fatal(err)
		}
		var placer osmodel.Placer = mem
		if scattered {
			placer = osmodel.Scattered{Memory: mem}
		}
		src, err := workload.NewSampleSource(victim, placer, 0.01, samplePages)
		if err != nil {
			log.Fatal(err)
		}
		st, err := stitch.New(stitch.Config{MinOverlap: 2})
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < samples; i++ {
			sample, _, err := src.Next()
			if err != nil {
				log.Fatal(err)
			}
			if _, err := st.Add(sample); err != nil {
				log.Fatal(err)
			}
		}
		mode := "contiguous placement (commodity OS)"
		if scattered {
			mode = "scattered placement (page-level ASLR)"
		}
		fmt.Printf("%s: %d samples → %d suspected machine(s)\n", mode, samples, st.Count())
	}
	fmt.Println("→ scattering removes the contiguity the stitcher aligns on, at the cost of")
	fmt.Println("  significant memory-management overhead (the paper's assessment).")
}
