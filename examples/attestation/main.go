// Attestation: the intentional use of the physics Probable Cause exploits
// (paper §9.1). The same decay ordering that deanonymizes users also serves
// as a Physical Unclonable Function: a verifier enrolls a device's decay
// pattern once and can later authenticate the device and derive a
// device-bound key — no stored secrets, the silicon *is* the secret.
//
// The dual use is the paper's point: approximate memory performs this
// attestation unintentionally, for anyone who looks.
//
// Run with: go run ./examples/attestation
package main

import (
	"fmt"
	"log"

	"probablecause/internal/approx"
	"probablecause/internal/dram"
	"probablecause/internal/puf"
)

func main() {
	mkMem := func(seed uint64) *approx.Memory {
		chip, err := dram.NewChip(dram.KM41464A(seed))
		if err != nil {
			log.Fatal(err)
		}
		mem, err := approx.New(chip, 0.97)
		if err != nil {
			log.Fatal(err)
		}
		return mem
	}
	device := mkMem(0xA77E57)
	impostor := mkMem(0xBAD)

	// Enrollment: the verifier measures one 4 KB region three times.
	region := puf.Region{Addr: 0, Len: 4096}
	enrollment, err := puf.Enroll(device, region, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enrolled device: %d-bit decay reference for region [%d, %d)\n",
		enrollment.Reference.Count(), region.Addr, region.Addr+region.Len)

	// Authentication, including under a temperature shift.
	for _, temp := range []float64{40, 60} {
		if err := device.SetTemperature(temp); err != nil {
			log.Fatal(err)
		}
		ok, d, err := enrollment.Authenticate(device)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("genuine device @ %.0f°C: authenticated=%v (distance %.4f)\n", temp, ok, d)
	}
	ok, d, err := enrollment.Authenticate(impostor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("impostor device:        authenticated=%v (distance %.4f)\n", ok, d)

	// Device-bound key material.
	key := enrollment.Key(32)
	fmt.Printf("device-bound key: %x...\n", key[:8])
	fmt.Println("\n(the attack in the other examples performs this exact measurement —")
	fmt.Println(" without the device owner's consent; that asymmetry is the paper's thesis)")
}
