// Eavesdropping attack (paper §3 scenario b, §7.6): the attacker never
// touches the hardware. It scrapes the victim's published approximate
// outputs (10 MB photos, scaled down here) and stitches their page-level
// fingerprints into a whole-memory fingerprint, watching the number of
// suspected machines collapse toward one.
//
// Run with: go run ./examples/eavesdropper
package main

import (
	"fmt"
	"log"

	"probablecause/internal/drammodel"
	"probablecause/internal/osmodel"
	"probablecause/internal/stitch"
	"probablecause/internal/workload"
)

func main() {
	const (
		memoryPages = 4096 // 16 MB victim memory (scaled-down 1 GB)
		samplePages = 40   // keeps the paper's ~102:1 memory:sample ratio
		samples     = 1200
	)

	// The victim machine, known only to the simulator.
	victim := drammodel.New(0xE5D1)
	// Uniform contiguous placement — the paper's §7.6 model. (The
	// allocator-backed osmodel.System is more faithful and slows
	// convergence; see the allocator-realism experiment.)
	mem, err := osmodel.NewMemory(memoryPages, 0xBA5E)
	if err != nil {
		log.Fatal(err)
	}
	src, err := workload.NewSampleSource(victim, mem, 0.01, samplePages)
	if err != nil {
		log.Fatal(err)
	}

	// The attacker's stitcher.
	st, err := stitch.New(stitch.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("victim: %d-page memory; each published output spans %d pages\n\n",
		memoryPages, samplePages)
	fmt.Println("samples  suspected machines  fingerprinted pages")
	for i := 1; i <= samples; i++ {
		sample, _, err := src.Next()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := st.Add(sample); err != nil {
			log.Fatal(err)
		}
		if i%100 == 0 || i == 1 {
			fmt.Printf("%7d  %18d  %19d\n", i, st.Count(), st.CoveredPages())
		}
	}

	fmt.Printf("\nfinal: %d suspected machine(s); largest stitched fingerprint covers %d pages (%.0f%% of memory)\n",
		st.Count(), st.LargestCluster(), 100*float64(st.LargestCluster())/memoryPages)
	if st.Count() == 1 {
		fmt.Println("→ every published output is now attributable to one machine")
	}
}
