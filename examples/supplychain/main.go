// Supply-chain attack (paper §3, scenario a): the attacker intercepts
// DRAM modules between the manufacturer and the users, fingerprints each
// completely, and later deanonymizes any approximate output any of those
// machines publishes — across temperatures and approximation levels.
//
// Run with: go run ./examples/supplychain
package main

import (
	"fmt"
	"log"

	"probablecause/internal/approx"
	"probablecause/internal/dram"
	"probablecause/internal/fingerprint"
)

const fleet = 6

func main() {
	fmt.Printf("intercepting %d DRAM modules in the supply chain...\n\n", fleet)

	// Phase 1: with physical possession, the attacker characterizes each
	// module with chosen worst-case inputs (the strongest characterization).
	mems := make([]*approx.Memory, fleet)
	db := fingerprint.NewDB(fingerprint.DefaultThreshold)
	for i := range mems {
		chip, err := dram.NewChip(dram.KM41464A(uint64(0x5C41 + i*977)))
		if err != nil {
			log.Fatal(err)
		}
		mem, err := approx.New(chip, 0.99)
		if err != nil {
			log.Fatal(err)
		}
		mems[i] = mem
		var outs [][]byte
		var exact []byte
		for trial := 0; trial < 3; trial++ {
			a, e, err := mem.WorstCaseOutput()
			if err != nil {
				log.Fatal(err)
			}
			outs, exact = append(outs, a), e
		}
		fp, err := fingerprint.Characterize(exact, outs...)
		if err != nil {
			log.Fatal(err)
		}
		db.Add(fmt.Sprintf("module-%d", i), fp)
		fmt.Printf("module-%d fingerprinted: %d volatile bits\n", i, fp.Count())
	}

	// Phase 2: the modules ship to users. Months later, anonymous
	// approximate outputs appear on a forum — different operating
	// conditions, posted through Tor, metadata stripped. Only the error
	// pattern remains.
	fmt.Println("\nanonymous outputs appear; attacker runs identification:")
	conditions := []struct {
		temp float64
		acc  float64
	}{{45, 0.99}, {60, 0.95}, {40, 0.90}}

	correct, total := 0, 0
	for i, mem := range mems {
		for _, c := range conditions {
			mem.Chip().SetTemperature(c.temp)
			if err := mem.SetAccuracy(c.acc); err != nil {
				log.Fatal(err)
			}
			a, e, err := mem.WorstCaseOutput()
			if err != nil {
				log.Fatal(err)
			}
			es, err := fingerprint.ErrorString(a, e)
			if err != nil {
				log.Fatal(err)
			}
			name, idx, ok := db.Identify(es)
			total++
			status := "UNIDENTIFIED"
			if ok {
				status = "identified as " + name
				if idx == i {
					correct++
				}
			}
			fmt.Printf("output (true module-%d, %.0f°C, %.0f%%): %s\n",
				i, c.temp, c.acc*100, status)
		}
	}
	fmt.Printf("\n%d/%d outputs correctly attributed (paper: 100%%)\n", correct, total)
}
