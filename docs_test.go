package probablecause_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestPackageComments is the docs lint: every package under internal/ and
// cmd/ must carry a package (godoc) comment. The architecture documents
// lean on those comments being present and current; a package without one
// is invisible to `go doc` and to the next reader.
func TestPackageComments(t *testing.T) {
	roots := []string{"internal", "cmd"}
	var missing []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil || !d.IsDir() || strings.HasPrefix(d.Name(), ".") {
				return err
			}
			fset := token.NewFileSet()
			pkgs, err := parser.ParseDir(fset, path, func(fi os.FileInfo) bool {
				return !strings.HasSuffix(fi.Name(), "_test.go")
			}, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				return err
			}
			for name, pkg := range pkgs {
				documented := false
				for _, f := range pkg.Files {
					if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
						documented = true
						break
					}
				}
				if !documented {
					missing = append(missing, path+" (package "+name+")")
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Errorf("package missing a package comment: %s", m)
	}
}

// TestFileComments tightens the lint for the packages that grew past a
// handful of files: every non-test source file in internal/cluster and
// internal/store must open with a file-top comment saying what lives in
// it. The package comment alone stopped being a map once these packages
// split across replication, routing, partitioning, and storage tiers.
func TestFileComments(t *testing.T) {
	for _, dir := range []string{
		filepath.Join("internal", "cluster"),
		filepath.Join("internal", "store"),
	} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Fatal(err)
			}
			if f.Doc == nil || strings.TrimSpace(f.Doc.Text()) == "" {
				t.Errorf("%s: missing a file-top comment above the package clause", path)
			}
		}
	}
}

// docFlagToken matches a backticked flag mention in a markdown doc:
// `-wal.dir`, `-repl.min-isr N`, `-mode=follower`. The captured group is
// the flag name alone.
var docFlagToken = regexp.MustCompile("`-([a-z][a-z0-9.-]*[a-z0-9])(?:[=* ][^`]*)?`")

// goFlagReg matches a flag registration in Go source: fs.String("name",
// or fs.BoolVar(&opt, "name", in any of the stdlib flag kinds.
var goFlagReg = regexp.MustCompile(`\.(?:String|Bool|Int|Int64|Uint|Uint64|Float64|Duration)(?:Var)?\((?:&[\w.\[\]]+,\s*)?"([a-z][a-z0-9.-]*)"`)

// TestFlagDocDrift is the grep-based doc-drift lint: every flag the
// operator docs mention must still be registered by a binary. Removing
// or renaming a pcserved flag without updating OPERATIONS.md or
// CLUSTER.md fails here, not in an operator's incident.
func TestFlagDocDrift(t *testing.T) {
	registered := map[string]bool{}
	sources, err := filepath.Glob(filepath.Join("cmd", "*", "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	sources = append(sources, filepath.Join("internal", "obs", "flags.go"))
	for _, src := range sources {
		blob, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range goFlagReg.FindAllStringSubmatch(string(blob), -1) {
			registered[m[1]] = true
		}
	}
	if len(registered) < 20 {
		t.Fatalf("found only %d registered flags — the registration regexp has drifted", len(registered))
	}
	// Doc tokens that are deliberately not single flag names.
	exceptions := map[string]bool{
		"obs.": true, // the `-obs.*` family shorthand
		"race": true, // the go test flag, mentioned when citing test evidence
	}
	for _, doc := range []string{"OPERATIONS.md", "CLUSTER.md"} {
		blob, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range docFlagToken.FindAllStringSubmatch(string(blob), -1) {
			name := m[1]
			if registered[name] || exceptions[name] || registered[strings.TrimSuffix(name, ".")] {
				continue
			}
			t.Errorf("%s documents flag -%s, which no binary registers", doc, name)
		}
	}
}

// TestDocsExist keeps the documentation set itself from silently
// disappearing: these files are cross-linked from the README and from each
// other, and CI regenerates nothing — a dangling link is a broken doc.
func TestDocsExist(t *testing.T) {
	for _, name := range []string{
		"README.md", "ARCHITECTURE.md", "OPERATIONS.md", "DESIGN.md", "EXPERIMENTS.md", "CLUSTER.md",
	} {
		st, err := os.Stat(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}
