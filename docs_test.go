package probablecause_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestPackageComments is the docs lint: every package under internal/ and
// cmd/ must carry a package (godoc) comment. The architecture documents
// lean on those comments being present and current; a package without one
// is invisible to `go doc` and to the next reader.
func TestPackageComments(t *testing.T) {
	roots := []string{"internal", "cmd"}
	var missing []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil || !d.IsDir() || strings.HasPrefix(d.Name(), ".") {
				return err
			}
			fset := token.NewFileSet()
			pkgs, err := parser.ParseDir(fset, path, func(fi os.FileInfo) bool {
				return !strings.HasSuffix(fi.Name(), "_test.go")
			}, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				return err
			}
			for name, pkg := range pkgs {
				documented := false
				for _, f := range pkg.Files {
					if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
						documented = true
						break
					}
				}
				if !documented {
					missing = append(missing, path+" (package "+name+")")
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Errorf("package missing a package comment: %s", m)
	}
}

// TestDocsExist keeps the documentation set itself from silently
// disappearing: these files are cross-linked from the README and from each
// other, and CI regenerates nothing — a dangling link is a broken doc.
func TestDocsExist(t *testing.T) {
	for _, name := range []string{
		"README.md", "ARCHITECTURE.md", "OPERATIONS.md", "DESIGN.md", "EXPERIMENTS.md",
	} {
		st, err := os.Stat(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}
