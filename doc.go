// Package probablecause is a from-scratch reproduction of "Probable Cause:
// The Deanonymizing Effects of Approximate DRAM" (Rahmati, Hicks, Holcomb,
// Fu — ISCA 2015).
//
// The paper shows that the error pattern an approximate DRAM imprints on its
// outputs is a device fingerprint: cell decay order is fixed by
// manufacturing variation and survives changes in temperature and level of
// approximation. This repository rebuilds the entire system in Go with no
// external dependencies:
//
//   - a cell-level DRAM decay simulator standing in for the paper's hardware
//     platform (internal/dram, internal/dist),
//   - the approximate-memory controller (internal/approx),
//   - the fingerprinting algorithms of §5 (internal/fingerprint),
//   - the fingerprint-stitching attack of §4 at scale
//     (internal/stitch, internal/minhash, internal/drammodel,
//     internal/osmodel),
//   - the analytical model of §7.1 (internal/analysis),
//   - the defenses of §8.2 and error localization of §8.3
//     (internal/defense, internal/errloc),
//   - and one experiment driver per table and figure
//     (internal/experiment, cmd/pcexperiments).
//
// See README.md for a walkthrough, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate each experiment under `go test -bench`.
package probablecause
