// Command pcprofile is the platform-characterization rig (§6): it profiles a
// simulated DRAM chip the way the paper's MSP430 harness profiles real
// silicon, and emits the measurements as CSV.
//
//	pcprofile -seed 0xC0FFEE -out results
//
// Outputs:
//
//	decay_curve.csv    worst-case error rate vs refresh interval per temperature
//	row_lifetimes.csv  per-row time of first worst-case failure (RAIDR's input)
//	stability.csv      per-trial error count and pairwise stability at 99 %
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"probablecause/internal/approx"
	"probablecause/internal/bitset"
	"probablecause/internal/dram"
	"probablecause/internal/fingerprint"
	"probablecause/internal/obs"
	"probablecause/internal/pool"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pcprofile:", err)
		os.Exit(1)
	}
}

// run is the single exit path: every failure returns here so the deferred
// obsFinish flushes -obs.trace/-obs.report output before the process dies.
func run(args []string) (err error) {
	fs := flag.NewFlagSet("pcprofile", flag.ContinueOnError)
	seed := fs.Uint64("seed", 0xC0FFEE, "chip seed (the silicon identity)")
	out := fs.String("out", "results", "output directory")
	small := fs.Bool("small", false, "profile an 8 KB window instead of the full 32 KB chip")
	ddr2 := fs.Bool("ddr2", false, "profile the DDR2 preset instead of the KM41464A")
	trials := fs.Int("trials", 10, "stability trials at 99% accuracy")
	workers := fs.Int("workers", 1, "worker pool size for the row-lifetime sweep (0 = one per CPU); output is identical for any value")
	obsOpts := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	obsFinish, err := obsOpts.Activate()
	if err != nil {
		return err
	}
	defer func() {
		if ferr := obsFinish(); ferr != nil && err == nil {
			err = ferr
		}
	}()

	cfg := dram.KM41464A(*seed)
	if *ddr2 {
		cfg = dram.DDR2(*seed)
	}
	if *small {
		cfg.Geometry = dram.Geometry{Rows: 64, Cols: 256, BitsPerWord: 4, DefaultStripe: 2}
		if *ddr2 {
			cfg.Geometry = dram.Geometry{Rows: 128, Cols: 512, BitsPerWord: 1, DefaultStripe: 4}
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	chip, err := dram.NewChip(cfg)
	if err != nil {
		return err
	}
	bits := cfg.Geometry.Bits()
	fmt.Printf("profiling %d-byte chip (seed %#x)\n", cfg.Geometry.Bytes(), *seed)

	// Decay curve: worst-case error rate vs interval, per temperature.
	var curve strings.Builder
	curve.WriteString("temp_c,interval_s,error_rate\n")
	for _, temp := range []float64{40, 50, 60} {
		chip.SetTemperature(temp)
		if err := chip.Write(0, chip.WorstCaseData()); err != nil {
			return err
		}
		for f := 0.5; f <= 20; f *= 1.25 {
			// Scale the interval with temperature so each curve spans the
			// same error range.
			iv := f * chipScale(temp)
			rate := float64(chip.DecayCountWithin(iv)) / float64(bits)
			fmt.Fprintf(&curve, "%.0f,%.4f,%.6f\n", temp, iv, rate)
		}
	}
	if err := writeFile(*out, "decay_curve.csv", curve.String()); err != nil {
		return err
	}

	// Row lifetimes.
	chip.SetTemperature(cfg.RefTempC)
	ra, err := approx.NewRowAware(chip, 1.0)
	if err != nil {
		return err
	}
	// RowInterval is a pure per-row read, so the sweep fans out; the CSV is
	// assembled serially in row order and is identical for any worker count.
	vals := make([]float64, cfg.Geometry.Rows)
	pool.Map(pool.Workers(*workers), cfg.Geometry.Rows, func(r int) {
		vals[r] = ra.RowInterval(r)
	})
	var rows strings.Builder
	rows.WriteString("row,first_failure_s\n")
	for r, v := range vals {
		fmt.Fprintf(&rows, "%d,%.4f\n", r, v)
	}
	if err := writeFile(*out, "row_lifetimes.csv", rows.String()); err != nil {
		return err
	}

	// Stability at 99%.
	mem, err := approx.New(chip, 0.99)
	if err != nil {
		return err
	}
	var stab strings.Builder
	stab.WriteString("trial,errors,stable_vs_first\n")
	var first *bitset.Set
	for t := 0; t < *trials; t++ {
		a, e, err := mem.WorstCaseOutput()
		if err != nil {
			return err
		}
		es, err := fingerprint.ErrorString(a, e)
		if err != nil {
			return err
		}
		overlap := 1.0
		if first == nil {
			first = es
		} else {
			overlap = float64(first.AndCount(es)) / float64(first.Count())
		}
		fmt.Fprintf(&stab, "%d,%d,%.4f\n", t, es.Count(), overlap)
	}
	if err := writeFile(*out, "stability.csv", stab.String()); err != nil {
		return err
	}
	fmt.Println("done")
	return nil
}

// chipScale approximates the retention scaling at a temperature so the decay
// sweep covers comparable error ranges per curve.
func chipScale(tempC float64) float64 {
	scale := 1.0
	for t := 40.0; t < tempC; t += 10 {
		scale /= 2
	}
	return scale
}

func writeFile(dir, name, content string) error {
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, len(content))
	return nil
}
