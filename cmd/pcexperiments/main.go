// Command pcexperiments regenerates every table and figure of the paper's
// evaluation on the simulated platform.
//
// Usage:
//
//	pcexperiments [-run all|fig5|fig7|fig8|fig9|fig10|fig11|fig13|table1|table2|ddr2|defenses|
//	               errloc|crossmech|scramble|refreshschemes|allocator|collisions|threshold|
//	               modelcheck|energy|apps|eccdefense|ablations]
//	              [-scale small|default|paper] [-out DIR] [-scattered]
//
// Results are printed to stdout; CSV series and PGM images are written to
// the output directory (default ./results).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"probablecause/internal/experiment"
	"probablecause/internal/obs"
)

func main() {
	run := flag.String("run", "all", "experiment to run (all, fig5, fig7, fig8, fig9, fig10, fig11, fig13, table1, table2, ddr2, defenses, errloc, crossmech, scramble, refreshschemes, allocator, collisions, threshold, modelcheck, energy, apps, eccdefense, coldboot, ablations)")
	scale := flag.String("scale", "default", "experiment scale: small, default, or paper")
	out := flag.String("out", "results", "output directory for CSV/PGM artifacts")
	scattered := flag.Bool("scattered", false, "fig13: use page-level-ASLR (scattered) placement")
	obsOpts := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	obsFinish, err := obsOpts.Activate()
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := obsFinish(); err != nil {
			fatal(err)
		}
	}()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	want := func(name string) bool { return *run == "all" || *run == name }
	start := time.Now()

	var corpus *experiment.Corpus
	needCorpus := want("fig7") || want("fig9") || want("fig11") || want("threshold")
	if needCorpus {
		params := experiment.DefaultCorpusParams()
		if *scale == "small" {
			params = experiment.SmallCorpusParams()
		}
		fmt.Printf("building %d-chip corpus (%d KB each)...\n",
			params.Chips, params.Geometry.Bytes()/1024)
		var err error
		corpus, err = experiment.BuildCorpus(params)
		if err != nil {
			fatal(err)
		}
	}

	if want("fig5") {
		p := experiment.DefaultFig5Params()
		if *scale == "small" {
			p = experiment.SmallFig5Params()
		}
		r, err := experiment.RunFig5(p)
		if err != nil {
			fatal(err)
		}
		section(r.Render())
		for name, data := range r.PGMs() {
			writeFile(*out, name, data)
		}
	}
	if want("fig7") {
		r := experiment.RunFig7(corpus)
		section(r.Render())
		writeFile(*out, "fig7.csv", []byte(r.CSV()))
	}
	if want("fig8") {
		p := experiment.DefaultFig8Params()
		if *scale == "small" {
			p = experiment.SmallFig8Params()
		}
		r, err := experiment.RunFig8(p)
		if err != nil {
			fatal(err)
		}
		section(r.Render())
		writeFile(*out, "fig8.csv", []byte(r.CSV()))
	}
	if want("fig9") {
		r := experiment.RunFig9(corpus)
		section(r.Render())
		writeFile(*out, "fig9.csv", []byte(r.GroupedDistances.CSV()))
	}
	if want("fig10") {
		p := experiment.DefaultFig10Params()
		if *scale == "small" {
			p = experiment.SmallFig10Params()
		}
		r, err := experiment.RunFig10(p)
		if err != nil {
			fatal(err)
		}
		section(r.Render())
	}
	if want("fig11") {
		r := experiment.RunFig11(corpus)
		section(r.Render())
		writeFile(*out, "fig11.csv", []byte(r.GroupedDistances.CSV()))
	}
	if want("threshold") {
		r, err := experiment.RunThresholdSweep(corpus, experiment.DefaultThresholdSweep())
		if err != nil {
			fatal(err)
		}
		section(r.Render())
	}
	if want("fig13") {
		p := experiment.DefaultFig13Params()
		switch *scale {
		case "small":
			p = experiment.SmallFig13Params()
		case "paper":
			p = experiment.PaperScaleFig13Params()
		}
		p.Scattered = *scattered
		if *scattered {
			p.MinOverlap = 2
		}
		r, err := experiment.RunFig13(p)
		if err != nil {
			fatal(err)
		}
		section(r.Render())
		writeFile(*out, "fig13.csv", []byte(r.CSV()))
	}
	if want("table1") {
		r, err := experiment.RunTable1(experiment.DefaultTable1Params())
		if err != nil {
			fatal(err)
		}
		section(r.Render())
	}
	if want("table2") {
		r, err := experiment.RunTable2(experiment.DefaultTable2Params())
		if err != nil {
			fatal(err)
		}
		section(r.Render())
	}
	if want("ddr2") {
		p := experiment.DefaultDDR2Params()
		if *scale == "small" {
			p = experiment.SmallDDR2Params()
		}
		r, err := experiment.RunDDR2(p)
		if err != nil {
			fatal(err)
		}
		section(r.Render())
	}
	if want("defenses") {
		p := experiment.DefaultDefensesParams()
		if *scale == "small" {
			p = experiment.SmallDefensesParams()
		}
		r, err := experiment.RunDefenses(p)
		if err != nil {
			fatal(err)
		}
		section(r.Render())
	}
	if want("errloc") {
		p := experiment.DefaultErrLocParams()
		if *scale == "small" {
			p = experiment.SmallErrLocParams()
		}
		r, err := experiment.RunErrLoc(p)
		if err != nil {
			fatal(err)
		}
		section(r.Render())
	}
	if want("crossmech") {
		p := experiment.DefaultCrossMechParams()
		if *scale == "small" {
			p = experiment.SmallCrossMechParams()
		}
		r, err := experiment.RunCrossMechanism(p)
		if err != nil {
			fatal(err)
		}
		section(r.Render())
	}
	if want("scramble") {
		p := experiment.DefaultScrambleParams()
		if *scale == "small" {
			p = experiment.SmallScrambleParams()
		}
		r, err := experiment.RunScrambling(p)
		if err != nil {
			fatal(err)
		}
		section(r.Render())
	}
	if want("refreshschemes") {
		r, err := experiment.RunRefreshSchemes(experiment.DefaultRefreshSchemesParams())
		if err != nil {
			fatal(err)
		}
		section(r.Render())
	}
	if want("allocator") {
		p := experiment.DefaultAllocatorParams()
		if *scale == "small" {
			p = experiment.SmallAllocatorParams()
		}
		r, err := experiment.RunAllocatorComparison(p)
		if err != nil {
			fatal(err)
		}
		section(r.Render())
	}
	if want("collisions") {
		p := experiment.DefaultCollisionParams()
		if *scale == "small" {
			p = experiment.SmallCollisionParams()
		}
		r, err := experiment.RunCollisions(p)
		if err != nil {
			fatal(err)
		}
		section(r.Render())
	}
	if want("modelcheck") {
		r, err := experiment.RunModelCheck(experiment.DefaultModelCheckParams())
		if err != nil {
			fatal(err)
		}
		section(r.Render())
	}
	if want("energy") {
		p := experiment.DefaultEnergyParams()
		if *scale == "small" {
			p = experiment.SmallEnergyParams()
		}
		r, err := experiment.RunEnergyPrivacy(p)
		if err != nil {
			fatal(err)
		}
		section(r.Render())
	}
	if want("apps") {
		p := experiment.DefaultAppsParams()
		if *scale == "small" {
			p = experiment.SmallAppsParams()
		}
		r, err := experiment.RunApps(p)
		if err != nil {
			fatal(err)
		}
		section(r.Render())
	}
	if want("eccdefense") {
		p := experiment.DefaultECCParams()
		if *scale == "small" {
			p = experiment.SmallECCParams()
		}
		r, err := experiment.RunECCDefense(p)
		if err != nil {
			fatal(err)
		}
		section(r.Render())
	}
	if want("coldboot") {
		r, err := experiment.RunColdBoot(experiment.DefaultColdBootParams())
		if err != nil {
			fatal(err)
		}
		section(r.Render())
	}
	if want("ablations") {
		r1, err := experiment.RunAblationHamming(10, 32768, 0xAB1)
		if err != nil {
			fatal(err)
		}
		section(r1.Render())
		r2, err := experiment.RunAblationIntersect(21, 32768, 0xAB2)
		if err != nil {
			fatal(err)
		}
		section(r2.Render())
	}

	fmt.Printf("done in %v; artifacts in %s\n", time.Since(start).Round(time.Millisecond), *out)
}

func section(s string) {
	fmt.Println(strings.Repeat("=", 78))
	fmt.Println(s)
}

func writeFile(dir, name string, data []byte) {
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcexperiments:", err)
	os.Exit(1)
}
