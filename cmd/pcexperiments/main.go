// Command pcexperiments regenerates every table and figure of the paper's
// evaluation on the simulated platform, under a resilient, resumable
// runner (internal/runner): each experiment runs with optional timeout,
// panic recovery, and transient-failure retry, and the suite checkpoints a
// manifest into the output directory so an interrupted run can be resumed
// with -resume, rerunning only incomplete experiments.
//
// Usage:
//
//	pcexperiments [-run all|NAME[,NAME...]] [-scale small|default|paper]
//	              [-out DIR] [-scattered] [-resume] [-timeout DUR]
//	              [-retries N] [-faults PLAN] [-fault.seed SEED]
//
// Experiment names: fig5 fig7 fig8 fig9 fig10 fig11 fig13 fig13stream
// table1 table2 ddr2 defenses errloc crossmech scramble refreshschemes allocator
// collisions threshold modelcheck energy apps eccdefense coldboot
// ablations.
//
// -faults installs a deterministic fault-injection plan (internal/faults)
// for chaos runs, e.g. -faults dram=0.0001,latency=1ms; transient DRAM
// faults injected this way are absorbed by the runner's retry policy.
//
// Results are printed to stdout; CSV series and PGM images are written to
// the output directory (default ./results) alongside the checkpoint
// manifest.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"probablecause/internal/dram"
	"probablecause/internal/experiment"
	"probablecause/internal/faults"
	"probablecause/internal/obs"
	"probablecause/internal/pool"
	"probablecause/internal/runner"
)

func main() {
	// The single exit path: every error funnels through run's return value
	// so the deferred obs finish (report/trace flush) always executes
	// before the process decides its exit code.
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pcexperiments:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("pcexperiments", flag.ExitOnError)
	runSel := fs.String("run", "all", "experiments to run: all, or a comma-separated list of names")
	scale := fs.String("scale", "default", "experiment scale: small, default, or paper")
	out := fs.String("out", "results", "output directory for CSV/PGM artifacts and the checkpoint manifest")
	scattered := fs.Bool("scattered", false, "fig13: use page-level-ASLR (scattered) placement")
	workers := fs.Int("workers", 1, "worker pool size inside each experiment (0 = one per CPU); any value produces identical results")
	resume := fs.Bool("resume", false, "skip experiments the manifest in -out already records as done")
	timeout := fs.Duration("timeout", 0, "per-experiment timeout (0 = unbounded)")
	retries := fs.Int("retries", 2, "extra attempts for experiments failing with transient errors")
	faultSpec := fs.String("faults", "", "fault-injection plan, e.g. dram=0.0001,latency=1ms (chaos testing)")
	faultSeed := fs.Uint64("fault.seed", 0xFA17, "seed of the fault plan's decision stream")
	obsOpts := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	obsFinish, err := obsOpts.Activate()
	if err != nil {
		return err
	}
	defer func() {
		if ferr := obsFinish(); err == nil {
			err = ferr
		}
	}()

	plan, err := faults.ParsePlan(*faultSpec, *faultSeed)
	if err != nil {
		return err
	}
	if plan.Active() {
		inj := faults.NewInjector(plan)
		dram.SetDefaultFaultHook(inj.ChipHook())
		defer dram.SetDefaultFaultHook(nil)
		fmt.Printf("fault injection active: %s (seed %#x)\n", plan, *faultSeed)
	}

	specs, err := suite(*runSel, *scale, *scattered, pool.Workers(*workers))
	if err != nil {
		return err
	}

	// ^C / SIGTERM cancels the suite context; the runner checkpoints after
	// every experiment, so the interrupted run resumes with -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	cfg := runner.Config{
		OutDir:  *out,
		Timeout: *timeout,
		Retries: *retries,
		Resume:  *resume,
		Seed:    *faultSeed,
		// The manifest pins the parameters that determine artifact
		// content; -run is deliberately absent so partial runs of the same
		// configuration share one checkpoint.
		Meta: map[string]string{
			"scale":     *scale,
			"scattered": strconv.FormatBool(*scattered),
			"faults":    plan.String(),
		},
	}
	summary, rerr := runner.Run(ctx, cfg, specs)
	if summary != nil && len(summary.Results) > 0 {
		fmt.Println(strings.Repeat("=", 78))
		fmt.Println(summary)
	}
	if rerr != nil {
		return rerr
	}
	if failed := summary.Failed(); len(failed) > 0 {
		return fmt.Errorf("%d of %d experiment(s) failed; rerun with -resume to retry only those",
			len(failed), len(summary.Results))
	}
	fmt.Printf("done in %v; artifacts in %s\n", time.Since(start).Round(time.Millisecond), *out)
	return nil
}

// suite resolves the -run selection against the full experiment registry.
func suite(sel, scale string, scattered bool, workers int) ([]runner.Spec, error) {
	all := specs(scale, scattered, workers)
	if sel == "" || sel == "all" {
		return all, nil
	}
	want := make(map[string]bool)
	for _, name := range strings.Split(sel, ",") {
		want[strings.TrimSpace(name)] = true
	}
	var out []runner.Spec
	for _, s := range all {
		if want[s.Name] {
			out = append(out, s)
			delete(want, s.Name)
		}
	}
	if len(want) > 0 {
		var unknown, known []string
		for name := range want {
			unknown = append(unknown, name)
		}
		for _, s := range all {
			known = append(known, s.Name)
		}
		return nil, fmt.Errorf("unknown experiment(s) %s; known: %s",
			strings.Join(unknown, ","), strings.Join(known, " "))
	}
	return out, nil
}

// corpusBox lazily builds the shared identification corpus used by fig7,
// fig9, fig11, and threshold. Errors are not cached: a transiently-failed
// build (fault injection reaches chip construction reads) is retried on
// the next experiment attempt.
type corpusBox struct {
	scale string
	mu    sync.Mutex
	c     *experiment.Corpus
}

func (b *corpusBox) get(rc *runner.RunContext) (*experiment.Corpus, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.c != nil {
		return b.c, nil
	}
	params := experiment.DefaultCorpusParams()
	if b.scale == "small" {
		params = experiment.SmallCorpusParams()
	}
	rc.Printf("building %d-chip corpus (%d KB each)...\n",
		params.Chips, params.Geometry.Bytes()/1024)
	c, err := experiment.BuildCorpus(params)
	if err != nil {
		return nil, err
	}
	b.c = c
	return c, nil
}

// specs is the experiment registry, in the order the original script ran
// them. Each body reports through the RunContext so output and artifacts
// stay attributable (and suppressible) per attempt.
func specs(scale string, scattered bool, workers int) []runner.Spec {
	small := scale == "small"
	corpus := &corpusBox{scale: scale}
	return []runner.Spec{
		{Name: "fig5", Run: func(ctx context.Context, rc *runner.RunContext) error {
			p := experiment.DefaultFig5Params()
			if small {
				p = experiment.SmallFig5Params()
			}
			r, err := experiment.RunFig5(p)
			if err != nil {
				return err
			}
			rc.Section(r.Render())
			for name, data := range r.PGMs() {
				if err := rc.WriteArtifact(name, data); err != nil {
					return err
				}
			}
			return nil
		}},
		{Name: "fig7", Run: func(ctx context.Context, rc *runner.RunContext) error {
			c, err := corpus.get(rc)
			if err != nil {
				return err
			}
			r := experiment.RunFig7(c, workers)
			rc.Section(r.Render())
			return rc.WriteArtifact("fig7.csv", []byte(r.CSV()))
		}},
		{Name: "fig8", Run: func(ctx context.Context, rc *runner.RunContext) error {
			p := experiment.DefaultFig8Params()
			if small {
				p = experiment.SmallFig8Params()
			}
			r, err := experiment.RunFig8(p)
			if err != nil {
				return err
			}
			rc.Section(r.Render())
			return rc.WriteArtifact("fig8.csv", []byte(r.CSV()))
		}},
		{Name: "fig9", Run: func(ctx context.Context, rc *runner.RunContext) error {
			c, err := corpus.get(rc)
			if err != nil {
				return err
			}
			r := experiment.RunFig9(c, workers)
			rc.Section(r.Render())
			return rc.WriteArtifact("fig9.csv", []byte(r.GroupedDistances.CSV()))
		}},
		{Name: "fig10", Run: func(ctx context.Context, rc *runner.RunContext) error {
			p := experiment.DefaultFig10Params()
			if small {
				p = experiment.SmallFig10Params()
			}
			r, err := experiment.RunFig10(p)
			if err != nil {
				return err
			}
			rc.Section(r.Render())
			return nil
		}},
		{Name: "fig11", Run: func(ctx context.Context, rc *runner.RunContext) error {
			c, err := corpus.get(rc)
			if err != nil {
				return err
			}
			r := experiment.RunFig11(c, workers)
			rc.Section(r.Render())
			return rc.WriteArtifact("fig11.csv", []byte(r.GroupedDistances.CSV()))
		}},
		{Name: "threshold", Run: func(ctx context.Context, rc *runner.RunContext) error {
			c, err := corpus.get(rc)
			if err != nil {
				return err
			}
			r, err := experiment.RunThresholdSweep(c, experiment.DefaultThresholdSweep(), workers)
			if err != nil {
				return err
			}
			rc.Section(r.Render())
			return nil
		}},
		{Name: "fig13", Run: func(ctx context.Context, rc *runner.RunContext) error {
			p := experiment.DefaultFig13Params()
			switch scale {
			case "small":
				p = experiment.SmallFig13Params()
			case "paper":
				p = experiment.PaperScaleFig13Params()
			}
			p.Scattered = scattered
			p.Workers = workers
			if scattered {
				p.MinOverlap = 2
			}
			r, err := experiment.RunFig13(p)
			if err != nil {
				return err
			}
			rc.Section(r.Render())
			return rc.WriteArtifact("fig13.csv", []byte(r.CSV()))
		}},
		{Name: "fig13stream", Run: func(ctx context.Context, rc *runner.RunContext) error {
			p := experiment.DefaultFig13StreamParams()
			if small {
				p = experiment.SmallFig13StreamParams()
			}
			p.Workers = workers
			r, err := experiment.RunFig13Streaming(p)
			if err != nil {
				return err
			}
			rc.Section(r.Render())
			return rc.WriteArtifact("fig13stream.csv", []byte(r.CSV()))
		}},
		{Name: "table1", Run: func(ctx context.Context, rc *runner.RunContext) error {
			r, err := experiment.RunTable1(experiment.DefaultTable1Params())
			if err != nil {
				return err
			}
			rc.Section(r.Render())
			return nil
		}},
		{Name: "table2", Run: func(ctx context.Context, rc *runner.RunContext) error {
			r, err := experiment.RunTable2(experiment.DefaultTable2Params())
			if err != nil {
				return err
			}
			rc.Section(r.Render())
			return nil
		}},
		{Name: "ddr2", Run: func(ctx context.Context, rc *runner.RunContext) error {
			p := experiment.DefaultDDR2Params()
			if small {
				p = experiment.SmallDDR2Params()
			}
			r, err := experiment.RunDDR2(p)
			if err != nil {
				return err
			}
			rc.Section(r.Render())
			return nil
		}},
		{Name: "defenses", Run: func(ctx context.Context, rc *runner.RunContext) error {
			p := experiment.DefaultDefensesParams()
			if small {
				p = experiment.SmallDefensesParams()
			}
			r, err := experiment.RunDefenses(p)
			if err != nil {
				return err
			}
			rc.Section(r.Render())
			return nil
		}},
		{Name: "errloc", Run: func(ctx context.Context, rc *runner.RunContext) error {
			p := experiment.DefaultErrLocParams()
			if small {
				p = experiment.SmallErrLocParams()
			}
			r, err := experiment.RunErrLoc(p)
			if err != nil {
				return err
			}
			rc.Section(r.Render())
			return nil
		}},
		{Name: "crossmech", Run: func(ctx context.Context, rc *runner.RunContext) error {
			p := experiment.DefaultCrossMechParams()
			if small {
				p = experiment.SmallCrossMechParams()
			}
			r, err := experiment.RunCrossMechanism(p)
			if err != nil {
				return err
			}
			rc.Section(r.Render())
			return nil
		}},
		{Name: "scramble", Run: func(ctx context.Context, rc *runner.RunContext) error {
			p := experiment.DefaultScrambleParams()
			if small {
				p = experiment.SmallScrambleParams()
			}
			r, err := experiment.RunScrambling(p)
			if err != nil {
				return err
			}
			rc.Section(r.Render())
			return nil
		}},
		{Name: "refreshschemes", Run: func(ctx context.Context, rc *runner.RunContext) error {
			r, err := experiment.RunRefreshSchemes(experiment.DefaultRefreshSchemesParams())
			if err != nil {
				return err
			}
			rc.Section(r.Render())
			return nil
		}},
		{Name: "allocator", Run: func(ctx context.Context, rc *runner.RunContext) error {
			p := experiment.DefaultAllocatorParams()
			if small {
				p = experiment.SmallAllocatorParams()
			}
			r, err := experiment.RunAllocatorComparison(p)
			if err != nil {
				return err
			}
			rc.Section(r.Render())
			return nil
		}},
		{Name: "collisions", Run: func(ctx context.Context, rc *runner.RunContext) error {
			p := experiment.DefaultCollisionParams()
			if small {
				p = experiment.SmallCollisionParams()
			}
			p.Workers = workers
			r, err := experiment.RunCollisions(p)
			if err != nil {
				return err
			}
			rc.Section(r.Render())
			return nil
		}},
		{Name: "modelcheck", Run: func(ctx context.Context, rc *runner.RunContext) error {
			r, err := experiment.RunModelCheck(experiment.DefaultModelCheckParams())
			if err != nil {
				return err
			}
			rc.Section(r.Render())
			return nil
		}},
		{Name: "energy", Run: func(ctx context.Context, rc *runner.RunContext) error {
			p := experiment.DefaultEnergyParams()
			if small {
				p = experiment.SmallEnergyParams()
			}
			r, err := experiment.RunEnergyPrivacy(p)
			if err != nil {
				return err
			}
			rc.Section(r.Render())
			return nil
		}},
		{Name: "apps", Run: func(ctx context.Context, rc *runner.RunContext) error {
			p := experiment.DefaultAppsParams()
			if small {
				p = experiment.SmallAppsParams()
			}
			r, err := experiment.RunApps(p)
			if err != nil {
				return err
			}
			rc.Section(r.Render())
			return nil
		}},
		{Name: "eccdefense", Run: func(ctx context.Context, rc *runner.RunContext) error {
			p := experiment.DefaultECCParams()
			if small {
				p = experiment.SmallECCParams()
			}
			r, err := experiment.RunECCDefense(p)
			if err != nil {
				return err
			}
			rc.Section(r.Render())
			return nil
		}},
		{Name: "coldboot", Run: func(ctx context.Context, rc *runner.RunContext) error {
			r, err := experiment.RunColdBoot(experiment.DefaultColdBootParams())
			if err != nil {
				return err
			}
			rc.Section(r.Render())
			return nil
		}},
		{Name: "scale", Run: func(ctx context.Context, rc *runner.RunContext) error {
			p := experiment.DefaultScaleParams()
			if small {
				p = experiment.SmallScaleParams()
			}
			p.Workers = workers
			r, err := experiment.RunScale(p)
			if err != nil {
				return err
			}
			rc.Section(r.Render())
			return rc.WriteArtifact("scale_verdicts.csv", r.CSV())
		}},
		{Name: "scale1m", Run: func(ctx context.Context, rc *runner.RunContext) error {
			p := experiment.DefaultScale1MParams()
			if small {
				p = experiment.SmallScale1MParams()
			}
			p.Workers = workers
			r, err := experiment.RunScale1M(p)
			if err != nil {
				return err
			}
			rc.Section(r.Render())
			return nil
		}},
		{Name: "ablations", Run: func(ctx context.Context, rc *runner.RunContext) error {
			r1, err := experiment.RunAblationHamming(10, 32768, 0xAB1)
			if err != nil {
				return err
			}
			rc.Section(r1.Render())
			r2, err := experiment.RunAblationIntersect(21, 32768, 0xAB2)
			if err != nil {
				return err
			}
			rc.Section(r2.Render())
			return nil
		}},
	}
}
