// Command pcserved serves the fingerprint identification engine over
// HTTP/JSON: load a fingerprint database, answer "which registered device
// produced this approximate output?" at fleet scale.
//
//	pcserved -db DB[,DB...] [-snapshot FILE] [-wal.dir DIR] [-addr HOST:PORT] [flags]
//	pcserved -mode=follower -wal.dir DIR -repl.primary URL [flags]
//	pcserved -mode=router -router.backends URL[,URL...] [flags]
//	pcserved -wal.verify -wal.dir DIR
//
// The serving path layers micro-batching, an N-way sharded database, and an
// LRU verdict cache over the parallel identification engine; see
// internal/server. On SIGINT/SIGTERM the server drains in-flight requests
// and, when -snapshot is set, saves the (possibly mutated) database
// atomically before exiting — restart with the same -snapshot to resume.
//
// With -wal.dir, durable streaming enrollment is enabled: every
// /v1/enroll observation is appended to a write-ahead log before it is
// acknowledged, converged fingerprints are promoted into the database,
// and boot replays the log over the last checkpoint — a kill -9 at any
// point loses nothing that was acked. Graceful shutdown checkpoints the
// database with its WAL watermark and compacts the log.
//
// Cluster modes (see internal/cluster and docs/OPERATIONS.md):
//
//   - The default mode serves standalone, or as the replication primary
//     when -wal.dir is set: followers pull /v1/repl/stream, and with
//     -repl.min-isr N each enrollment ack waits for N follower acks.
//   - -mode=follower replays the primary's WAL stream into a local,
//     byte-identical copy; an empty -wal.dir bootstraps from the
//     primary's snapshot first. Followers serve reads and refuse
//     mutations; /readyz stays 503 until caught up.
//   - -mode=router spreads identify reads across healthy replicas,
//     forwards mutations to the primary, and promotes the most-caught-up
//     follower when the primary dies.
//   - -mode=router with -partitions runs the scatter-gather coordinator
//     for a partitioned cluster (see CLUSTER.md): identify fans out to
//     every partition and the verdicts merge back byte-identically to a
//     single-node scan; enrollment routes to the partition owning the
//     device name. Serving nodes in a partitioned cluster take the same
//     -partitions spec plus -partition.self=NAME so they refuse
//     misdirected mutations (421) and report globally-unique entry ids.
//   - -wal.verify walks the WAL segments offline, validating checksums
//     and sequence continuity, classifying a torn tail (normal after a
//     crash) vs interior corruption (exit 1), and exits.
//
// Tiered storage (-store.backend=tiered, see docs/OPERATIONS.md): the
// database moves behind mmap'd immutable segment files in -store.dir
// (default <wal.dir>/store). Enrollments land in an in-RAM memtable that
// flushes to a new segment once it crosses -store.flush-entries (and at
// every checkpoint); segments compact once more than
// -store.compact-segments accumulate. Identify queries stream straight
// off the mappings, so resident memory stays bounded by the memtable,
// not the corpus. -store.verify deep-checks every committed segment
// offline and exits — the triage mode for corruption refusals at boot.
//
// API:
//
//	POST   /v1/identify           {"len":N,"positions":[...]} → verdict
//	POST   /v1/identify-batch     {"queries":[...]} → verdicts
//	POST   /v1/characterize       intersect outputs; optionally register
//	POST   /v1/enroll             durably fold one observation into a session
//	GET    /v1/enroll/{id}/status enrollment session progress
//	POST   /v1/snapshot           checkpoint the database + compact the WAL
//	GET    /v1/db                 serving stats
//	POST   /v1/db                 register a fingerprint
//	DELETE /v1/db?name=N         remove a fingerprint
//	GET    /v1/cluster/topology  partition map + per-backend view (scatter router)
//	GET    /v1/repl/status       replication role, positions, quorum view
//	GET    /v1/repl/stream       WAL records from ?from= (follower pull)
//	GET    /v1/repl/snapshot     bootstrap image (db + watermark/floor)
//	POST   /v1/repl/promote      follower → primary (failover)
//	POST   /v1/repl/follow       re-point this follower at a new primary
//	GET    /healthz              liveness (degraded on critical SLO burn)
//	GET    /readyz               readiness (503 until replay/catch-up done)
//	GET    /metrics              obs metrics (Prometheus; ?format=json)
//	GET    /slo                  SLO burn-rate report (-slo objectives)
//	GET    /debug/slowest        span trees of the slowest requests (-slow)
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"probablecause/internal/bitset"
	"probablecause/internal/cluster"
	"probablecause/internal/faults"
	"probablecause/internal/fingerprint"
	"probablecause/internal/obs"
	"probablecause/internal/retry"
	"probablecause/internal/samplefile"
	"probablecause/internal/server"
	"probablecause/internal/store"
	"probablecause/internal/wal"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pcserved:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("pcserved", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: pcserved [-db DB[,DB...]] [-snapshot FILE] [-addr HOST:PORT] [flags]\n\nFlags:\n")
		fs.PrintDefaults()
	}
	addr := fs.String("addr", "127.0.0.1:8437", "listen address")
	dbList := fs.String("db", "", "comma-separated fingerprint databases or raw fingerprints to seed from")
	snapshot := fs.String("snapshot", "", "database snapshot: loaded at startup when present, saved atomically on shutdown")
	threshold := fs.Float64("threshold", 0, "match threshold (0: take it from the seed database)")
	shards := fs.Int("shards", 0, fmt.Sprintf("database shard count (0: %d)", fingerprint.DefaultShards))
	plain := fs.Bool("plain", false, "disable the per-shard LSH indexes (dense-scan shards)")
	sliced := fs.Bool("sliced", false, "bit-sliced per-shard verification (block kernel + pruned fallback scans)")
	probes := fs.Bool("probes", false, "multi-probe LSH candidate expansion (near-miss buckets)")
	workers := fs.Int("workers", 0, "identification worker pool size (0: one per CPU)")
	batchWindow := fs.Duration("batch.window", 500*time.Microsecond, "micro-batching coalescing window (0: dispatch immediately)")
	maxBatch := fs.Int("batch.max", 0, fmt.Sprintf("max identify queries per dispatch (0: %d)", server.DefaultMaxBatch))
	queue := fs.Int("queue", 0, fmt.Sprintf("identify queue depth; overflow is shed with 429 (0: %d)", server.DefaultQueueDepth))
	cacheSize := fs.Int("cache", 4096, "verdict cache capacity (0: caching off)")
	timeout := fs.Duration("timeout", 0, fmt.Sprintf("per-request verdict timeout (0: %s)", server.DefaultRequestTimeout))
	maxBody := fs.Int64("maxbody", 0, fmt.Sprintf("request body cap in bytes (0: %d)", int64(server.DefaultMaxBodyBytes)))
	faultSpec := fs.String("faults", "", "chaos: fault plan for request ingest, e.g. readerr=0.01,latency=2ms")
	faultSeed := fs.Uint64("fault.seed", 0xFA17, "fault-injection seed for -faults")
	walDir := fs.String("wal.dir", "", "durable enrollment directory (WAL segments + checkpoints); enables /v1/enroll")
	walFsync := fs.String("wal.fsync", "batch", "WAL fsync policy: batch (group commit), always, or off")
	walSegment := fs.Int64("wal.segment", 0, "WAL segment rotation size in bytes (0: 64 MiB)")
	walBatch := fs.Duration("wal.batch", 0, "extra group-commit coalescing window (0: natural batching)")
	enrollMax := fs.Int("enroll.max", 0, fmt.Sprintf("max live enrollment sessions (0: %d)", server.DefaultMaxSessions))
	enrollMinObs := fs.Int("enroll.minobs", 0, fmt.Sprintf("observations before an enrollment may converge (0: %d)", fingerprint.DefaultMinObservations))
	enrollPatience := fs.Int("enroll.patience", 0, fmt.Sprintf("unchanged observations that declare convergence (0: %d)", fingerprint.DefaultStablePatience))
	enrollQuota := fs.Float64("enroll.quota", 0, "per-cell failure-rate quota in (0,1); 0 or 1 is pure intersection")
	sloSpec := fs.String("slo", "", "SLO objectives for /slo, e.g. identify:p99<50ms,identify:err<1%")
	slowK := fs.Int("slow", 0, fmt.Sprintf("slow-request retention for /debug/slowest (0: %d, negative: off)", obs.DefaultSlowRing))
	mode := fs.String("mode", "serve", "process role: serve (standalone or primary), follower, or router")
	walVerify := fs.Bool("wal.verify", false, "offline: verify WAL segments in -wal.dir, report torn tail vs interior corruption, and exit")
	storeBackend := fs.String("store.backend", "", fmt.Sprintf("storage backend: %q (default) or %q (mmap'd segment files)", store.BackendMemory, store.BackendTiered))
	storeDir := fs.String("store.dir", "", "tiered store directory (default: <wal.dir>/store)")
	storeFlush := fs.Int("store.flush-entries", 0, fmt.Sprintf("memtable entries that trigger a segment flush (0: %d)", store.DefaultFlushEntries))
	storeCompact := fs.Int("store.compact-segments", 0, fmt.Sprintf("segment count above which checkpoints compact (0: %d)", store.DefaultCompactSegments))
	storeVerify := fs.Bool("store.verify", false, "offline: deep-verify every committed segment in -store.dir, and exit")
	clusterID := fs.String("cluster.id", "", "node identity in replication acks and status (default: the listen address)")
	minISR := fs.Int("repl.min-isr", 0, "follower acks required before an enrollment is acknowledged (0: ack on local durability alone)")
	replPrimary := fs.String("repl.primary", "", "follower mode: the primary's base URL to pull the WAL stream from")
	replInterval := fs.Duration("repl.interval", 0, fmt.Sprintf("follower poll pacing when caught up (0: %s)", cluster.DefaultPullInterval))
	routerBackends := fs.String("router.backends", "", "router mode: comma-separated cluster node base URLs")
	routerProbe := fs.Duration("router.probe", 0, fmt.Sprintf("router health/role probe interval (0: %s)", cluster.DefaultProbeInterval))
	routerFailover := fs.Int("router.failover-after", 0, fmt.Sprintf("consecutive failed primary probes that trigger failover (0: %d)", cluster.DefaultFailoverAfter))
	routerRetries := fs.Int("router.retries", 0, fmt.Sprintf("proxy attempts per read (0: %d)", cluster.DefaultReadAttempts))
	partitions := fs.String("partitions", "", "partition map spec p0=url|url,p1=url|url — scatter-gather router mode, or (with -partition.self) a partition-scoped serving node")
	partitionSelf := fs.String("partition.self", "", "the partition in the -partitions map this serving node belongs to")
	obsOpts := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *walVerify {
		if *walDir == "" {
			return errors.New("-wal.verify needs -wal.dir")
		}
		return runWalVerify(*walDir)
	}
	if *storeDir == "" && *walDir != "" {
		*storeDir = filepath.Join(*walDir, "store")
	}
	if *storeVerify {
		if *storeDir == "" {
			return errors.New("-store.verify needs -store.dir (or -wal.dir)")
		}
		return runStoreVerify(*storeDir)
	}
	if *storeBackend == store.BackendTiered {
		if *walDir == "" {
			return errors.New("-store.backend=tiered needs -wal.dir (the WAL is the memtable's durability)")
		}
	} else if *storeBackend != "" && *storeBackend != store.BackendMemory {
		return fmt.Errorf("unknown -store.backend %q (want %q or %q)", *storeBackend, store.BackendMemory, store.BackendTiered)
	}
	if *mode == "router" {
		if *partitions != "" {
			return runScatterRouter(*addr, *partitions, *routerProbe, *routerFailover, *routerRetries, obsOpts)
		}
		return runRouter(*addr, *routerBackends, *routerProbe, *routerFailover, *routerRetries, obsOpts)
	}
	if *mode != "serve" && *mode != "follower" {
		return fmt.Errorf("unknown -mode %q (serve, follower, or router)", *mode)
	}
	// A serving node in a partitioned cluster derives its ownership
	// predicate and global id namespace from the shared partition map.
	var partCfg server.PartitionConfig
	if *partitions != "" || *partitionSelf != "" {
		if *partitions == "" || *partitionSelf == "" {
			return errors.New("partitioned serving needs both -partitions and -partition.self")
		}
		pmap, err := cluster.ParsePartitions(*partitions)
		if err != nil {
			return err
		}
		ord := pmap.Ordinal(*partitionSelf)
		if ord < 0 {
			return fmt.Errorf("-partition.self %q is not in the -partitions map", *partitionSelf)
		}
		partCfg = server.PartitionConfig{
			Name: *partitionSelf,
			NS:   pmap.Namespace(ord),
			Owns: pmap.OwnsFunc(ord),
		}
	}
	if *mode == "follower" {
		if *walDir == "" {
			return errors.New("follower mode needs -wal.dir")
		}
		if *replPrimary == "" {
			return errors.New("follower mode needs -repl.primary")
		}
	}

	// Serving runs are usually launched by a harness, not a shell: honor the
	// OBS_REPORT environment hook (the bench suite's convention) as the
	// default for -obs.report so a graceful SIGTERM drain always leaves a
	// metrics artifact.
	if obsOpts.Report == "" {
		obsOpts.Report = os.Getenv("OBS_REPORT")
	}
	objectives, err := obs.ParseObjectives(*sloSpec)
	if err != nil {
		return err
	}
	plan, err := faults.ParsePlan(*faultSpec, *faultSeed)
	if err != nil {
		return err
	}
	finish, err := obsOpts.Activate()
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); err == nil {
			err = ferr
		}
	}()
	// SLO tracking and slow-request retention ride the request-scoped
	// instrumentation, which is off by default; asking for either is an
	// explicit observability opt-in.
	if len(objectives) > 0 || *slowK > 0 {
		obs.Enable()
	}

	seed, err := loadSeed(*dbList, *snapshot, *threshold)
	if err != nil {
		return err
	}

	cfg := server.Config{
		Threshold:      *threshold,
		Shards:         *shards,
		Plain:          *plain,
		Sliced:         *sliced,
		Probes:         *probes,
		Workers:        *workers,
		BatchWindow:    *batchWindow,
		MaxBatch:       *maxBatch,
		QueueDepth:     *queue,
		CacheSize:      *cacheSize,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		FaultPlan:      plan,
		SLO:            obs.SLOConfig{Objectives: objectives},
		SlowRequests:   *slowK,
		Store: store.Config{
			Backend:         *storeBackend,
			Dir:             *storeDir,
			FlushEntries:    *storeFlush,
			CompactSegments: *storeCompact,
			// Storage chaos hook: the crash-recovery matrix sets PCSTORE_CRASH
			// to a flush/compaction step name and the engine hard-exits there.
			CrashPoint: os.Getenv("PCSTORE_CRASH"),
		},
		Partition: partCfg,
	}
	var svc *server.Service
	if *walDir != "" {
		fsyncMode, err := wal.ParseFsyncMode(*walFsync)
		if err != nil {
			return err
		}
		// A follower with an empty durable dir seeds itself from the
		// primary's snapshot: the exported database lands as a local
		// checkpoint, and the local WAL starts at the snapshot's replay
		// floor so replicated records keep the primary's sequence numbers.
		startSeq := uint64(0)
		if *mode == "follower" {
			fresh, err := durableDirFresh(*walDir, *storeDir)
			if err != nil {
				return err
			}
			if fresh && *storeBackend == store.BackendTiered {
				// Tiered followers bootstrap by shipping the primary's
				// immutable segment files — no monolithic export on either
				// side; BootDurable then recovers from the landed manifest.
				meta, err := cluster.BootstrapFollowerSegments(context.Background(), *storeDir, *replPrimary, nil)
				if err != nil {
					return fmt.Errorf("bootstrapping segments from %s: %w", *replPrimary, err)
				}
				startSeq = meta.Floor
				fmt.Printf("pcserved: bootstrapped segments from %s (watermark %d, floor %d)\n",
					*replPrimary, meta.Watermark, meta.Floor)
			} else if fresh {
				meta, err := cluster.BootstrapFollower(context.Background(), *walDir, *replPrimary, nil)
				if err != nil {
					return fmt.Errorf("bootstrapping from %s: %w", *replPrimary, err)
				}
				startSeq = meta.Floor
				fmt.Printf("pcserved: bootstrapped %d entries from %s (watermark %d, floor %d)\n",
					meta.Entries, *replPrimary, meta.Watermark, meta.Floor)
			}
		}
		// The committed checkpoint in -wal.dir (when one exists) overrides
		// the seed, and the surviving WAL records replay on top: recovery.
		svc, err = server.BootDurable(seed, cfg, server.EnrollConfig{
			Dir: *walDir,
			WAL: wal.Options{SegmentBytes: *walSegment, Fsync: fsyncMode, BatchWindow: *walBatch, StartSeq: startSeq},
			Accumulator: fingerprint.AccumulatorConfig{
				Quota:           *enrollQuota,
				MinObservations: *enrollMinObs,
				StablePatience:  *enrollPatience,
			},
			MaxSessions: *enrollMax,
		})
		if err != nil {
			return err
		}
		es := svc.EnrollStats()
		fmt.Printf("pcserved: recovered WAL to seq %d (%d open sessions)\n", es.AppliedSeq, es.Sessions)
	} else if svc, err = server.New(seed, cfg); err != nil {
		return err
	}

	// With a WAL the node joins the replication surface: /v1/repl/*
	// endpoints mount over the service API, and the role machinery
	// (commit tracker or stream puller) starts per -mode.
	handler := svc.Handler()
	var node *cluster.Node
	if *walDir != "" {
		id := *clusterID
		if id == "" {
			id = *addr
		}
		node = cluster.NewNode(svc, cluster.NodeConfig{
			ID:     id,
			MinISR: *minISR,
			Pull: cluster.PullConfig{
				Interval: *replInterval,
				Retry:    retry.Policy{BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second},
			},
		})
		if *mode == "follower" {
			if err := node.StartFollower(*replPrimary); err != nil {
				return err
			}
			fmt.Printf("pcserved: following %s\n", *replPrimary)
		} else {
			node.StartPrimary()
		}
		defer node.Close()
		handler = node.Handler()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	st := svc.DB().Stats()
	fmt.Printf("pcserved: listening on %s (%d entries, %d shards)\n", ln.Addr(), st.Entries, len(st.PerShard))

	httpSrv := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-stop:
		fmt.Printf("pcserved: %s, draining\n", sig)
	case err := <-serveErr:
		return err
	}

	// Graceful drain: stop accepting, finish in-flight HTTP exchanges, then
	// drain the identify queue so every admitted query gets its verdict.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("draining: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// Checkpoint before Close: compaction needs the WAL still open.
	if *walDir != "" {
		meta, err := svc.Checkpoint()
		if err != nil {
			return err
		}
		fmt.Printf("pcserved: checkpointed %d entries at watermark %d\n", meta.Entries, meta.Watermark)
	}
	svc.Close()

	if *snapshot != "" {
		db := svc.DB().Export()
		if err := samplefile.SaveDB(*snapshot, db); err != nil {
			return err
		}
		fmt.Printf("pcserved: saved %d entries to %s\n", db.Len(), *snapshot)
	}
	if obsOpts.Report != "" {
		// The deferred obs finish writes the file; announce it so drain logs
		// point at the artifact.
		fmt.Printf("pcserved: writing metrics snapshot to %s\n", obsOpts.Report)
	}
	return nil
}

// runWalVerify walks the WAL segments offline and reports their health:
// exit 0 for a clean log or a torn tail (the expected shape after a
// crash — recovery truncates it), exit 1 for interior corruption or a
// sequence gap, which recovery would refuse to replay.
func runWalVerify(dir string) error {
	rep, err := wal.Verify(dir)
	if err != nil {
		return err
	}
	fmt.Print(rep.String())
	if rep.Corrupt {
		return errors.New("interior corruption: this log will not replay; restore from a checkpoint + re-replicate")
	}
	return nil
}

// durableDirFresh reports whether the durable directories hold no state yet
// — no committed checkpoint, no WAL segments, and no tiered-store manifest —
// i.e. snapshot bootstrap is required before following.
func durableDirFresh(dir, storeDir string) (bool, error) {
	if _, _, ok, err := samplefile.LoadCheckpoint(dir); err != nil {
		return false, err
	} else if ok {
		return false, nil
	}
	if storeDir != "" {
		if _, err := os.Stat(filepath.Join(storeDir, store.ManifestFile)); err == nil {
			return false, nil
		} else if !errors.Is(err, os.ErrNotExist) {
			return false, err
		}
	}
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil {
		return false, err
	}
	return len(segs) == 0, nil
}

// runStoreVerify deep-checks every committed segment in a tiered store
// directory offline: manifest parse, structural and checksum validation, and
// the log-vs-columnar cross-check. Exit 0 means the store will load; exit 1
// names every failing segment — restore those files from a replica (the
// segment-shipping bootstrap) or re-flush from the WAL.
func runStoreVerify(dir string) error {
	if err := store.VerifyDir(dir); err != nil {
		return err
	}
	fmt.Printf("pcserved: store %s verified clean\n", dir)
	return nil
}

// runRouter serves the routing tier: reads spread across healthy
// replicas, mutations to the primary, failover on primary death.
func runRouter(addr, backendList string, probe time.Duration, failoverAfter, retries int, obsOpts *obs.Options) (err error) {
	if backendList == "" {
		return errors.New("router mode needs -router.backends")
	}
	finish, err := obsOpts.Activate()
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); err == nil {
			err = ferr
		}
	}()
	router, err := cluster.NewRouter(cluster.RouterConfig{
		Backends:      strings.Split(backendList, ","),
		ProbeInterval: probe,
		FailoverAfter: failoverAfter,
		Retry:         retry.Policy{MaxAttempts: retries},
	})
	if err != nil {
		return err
	}
	defer router.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("pcserved: router listening on %s (%d backends)\n", ln.Addr(), len(strings.Split(backendList, ",")))
	httpSrv := &http.Server{Handler: router.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-stop:
		fmt.Printf("pcserved: %s, draining\n", sig)
	case err := <-serveErr:
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("draining: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// runScatterRouter serves the partitioned cluster's front door: identify
// fans out to every partition and merges, keyed mutations route to the
// owning partition, /v1/cluster/topology exposes the whole shape.
func runScatterRouter(addr, spec string, probe time.Duration, failoverAfter, retries int, obsOpts *obs.Options) (err error) {
	pmap, err := cluster.ParsePartitions(spec)
	if err != nil {
		return err
	}
	finish, err := obsOpts.Activate()
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); err == nil {
			err = ferr
		}
	}()
	sr, err := cluster.NewScatterRouter(cluster.ScatterConfig{
		Map: pmap,
		Router: cluster.RouterConfig{
			ProbeInterval: probe,
			FailoverAfter: failoverAfter,
			Retry:         retry.Policy{MaxAttempts: retries},
		},
	})
	if err != nil {
		return err
	}
	defer sr.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("pcserved: scatter router listening on %s (%d partitions)\n", ln.Addr(), pmap.Len())
	httpSrv := &http.Server{Handler: sr.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-stop:
		fmt.Printf("pcserved: %s, draining\n", sig)
	case err := <-serveErr:
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("draining: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// loadSeed assembles the startup database: the snapshot when it exists
// (restart path), else the -db file list (first-boot path), else an empty
// start. Like pcause identify, each -db file may be a whole PCDB01 database
// or a single raw fingerprint, detected by magic.
func loadSeed(dbList, snapshot string, threshold float64) (*fingerprint.DB, error) {
	if snapshot != "" {
		if _, err := os.Stat(snapshot); err == nil {
			return samplefile.LoadDB(snapshot)
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
	if dbList == "" {
		return nil, nil
	}
	if threshold == 0 {
		threshold = fingerprint.DefaultThreshold
	}
	db := fingerprint.NewDB(threshold)
	for _, name := range strings.Split(dbList, ",") {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		if bytes.HasPrefix(data, []byte("PCDB01")) {
			sub, err := fingerprint.ReadDB(bytes.NewReader(data))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			for _, e := range sub.Entries() {
				db.Add(e.Name, e.FP)
			}
			continue
		}
		var fp bitset.Set
		if err := fp.UnmarshalBinary(data); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		db.Add(filepath.Base(name), &fp)
	}
	return db, nil
}
