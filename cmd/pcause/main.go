// Command pcause is the attacker's toolbox: it characterizes approximate
// memories from captured outputs, identifies which known device produced an
// output, and clusters outputs from unknown devices.
//
// Subcommands:
//
//	pcause characterize -exact FILE -approx FILE[,FILE...] -o FP
//	    Build a device fingerprint (Algorithm 1) and write it to FP.
//	pcause identify -exact FILE -approx FILE -db FP[,FP...]
//	    Match one approximate output against a fingerprint database
//	    (Algorithms 2 and 3).
//	pcause cluster -exact FILE -approx FILE[,FILE...]
//	    Group approximate outputs by originating device (Algorithm 4).
//	pcause mkdb -o DB name=FP [name=FP...]
//	    Bundle named fingerprints into one database file.
//	pcause gensamples -o FILE [-buddy|-scattered] [-corrupt SPEC]
//	    Simulate a victim publishing outputs; write a JSON-lines sample file,
//	    optionally corrupted under a fault-injection plan.
//	pcause stitch -in FILE [-lenient] [-save DB] [-load DB]
//	    Run the whole-memory stitching attack (§4) over a sample file.
//	pcause demo
//	    Run a self-contained demonstration on two simulated chips.
//
// Exact and approximate files are raw byte images of the same length; the
// fingerprint file format is the bitset binary encoding.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"probablecause/internal/approx"
	"probablecause/internal/bitset"
	"probablecause/internal/dram"
	"probablecause/internal/drammodel"
	"probablecause/internal/faults"
	"probablecause/internal/fingerprint"
	"probablecause/internal/obs"
	"probablecause/internal/osmodel"
	"probablecause/internal/pool"
	"probablecause/internal/samplefile"
	"probablecause/internal/stitch"
	"probablecause/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "characterize":
		err = cmdCharacterize(os.Args[2:])
	case "identify":
		err = cmdIdentify(os.Args[2:])
	case "cluster":
		err = cmdCluster(os.Args[2:])
	case "mkdb":
		err = cmdMkdb(os.Args[2:])
	case "gensamples":
		err = cmdGensamples(os.Args[2:])
	case "stitch":
		err = cmdStitch(os.Args[2:])
	case "demo":
		err = cmdDemo(os.Args[2:])
	case "help", "-h", "--help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "pcause: unknown command %q\n\n", os.Args[1])
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		var st *statusError
		if errors.As(err, &st) {
			os.Exit(st.code)
		}
		fmt.Fprintln(os.Stderr, "pcause:", err)
		os.Exit(1)
	}
}

// statusError carries a verdict exit code out of a subcommand without
// printing anything beyond what the command already wrote: identify exits 0
// on an unambiguous match, identifyExitNoMatch when nothing is within
// threshold, and identifyExitAmbiguous when several entries are — so scripts
// can branch on the verdict without parsing output.
type statusError struct{ code int }

func (e *statusError) Error() string { return fmt.Sprintf("exit status %d", e.code) }

// Identify verdict exit codes.
const (
	identifyExitNoMatch   = 3
	identifyExitAmbiguous = 4
)

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: pcause <command> [flags]

Commands:
  characterize  build a device fingerprint from captured outputs (Algorithm 1)
  identify      match one output against a fingerprint database (Algorithms 2, 3)
  cluster       group outputs by originating device (Algorithm 4)
  mkdb          bundle named fingerprints into one database file
  gensamples    simulate a victim publishing outputs to a sample file
  stitch        run the whole-memory stitching attack (§4) over a sample file
  demo          self-contained demonstration on two simulated chips

Run 'pcause <command> -h' for the command's flags. Every command accepts the
-obs.* observability flags (metrics report, debug server, trace log).
`)
}

// newFlagSet builds a subcommand FlagSet whose -h output shows the command's
// own synopsis and flags (not the generic one-liner), with the -obs.* family
// installed.
func newFlagSet(name, synopsis string) (*flag.FlagSet, *obs.Options) {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: pcause %s\n\nFlags:\n", synopsis)
		fs.PrintDefaults()
	}
	return fs, obs.AddFlags(fs)
}

func readFiles(list string) ([][]byte, error) {
	var out [][]byte
	for _, name := range strings.Split(list, ",") {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		out = append(out, data)
	}
	return out, nil
}

func cmdCharacterize(args []string) (err error) {
	fs, obsOpts := newFlagSet("characterize", "characterize -exact FILE -approx FILE[,FILE...] [-o FP]")
	exactPath := fs.String("exact", "", "exact data file")
	approxList := fs.String("approx", "", "comma-separated approximate output files")
	outPath := fs.String("o", "fingerprint.bin", "output fingerprint file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *exactPath == "" || *approxList == "" {
		return fmt.Errorf("characterize requires -exact and -approx")
	}
	finish, err := obsOpts.Activate()
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); err == nil {
			err = ferr
		}
	}()
	exact, err := os.ReadFile(*exactPath)
	if err != nil {
		return err
	}
	approxes, err := readFiles(*approxList)
	if err != nil {
		return err
	}
	fp, err := fingerprint.Characterize(exact, approxes...)
	if err != nil {
		return err
	}
	data, err := fp.MarshalBinary()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("fingerprint: %d volatile bits from %d outputs → %s\n",
		fp.Count(), len(approxes), *outPath)
	return nil
}

func cmdIdentify(args []string) (err error) {
	fs, obsOpts := newFlagSet("identify", "identify -exact FILE -approx FILE -db FP[,FP...] [-threshold T] [-indexed] [-json]")
	exactPath := fs.String("exact", "", "exact data file")
	approxPath := fs.String("approx", "", "approximate output file")
	dbList := fs.String("db", "", "comma-separated fingerprint files")
	threshold := fs.Float64("threshold", fingerprint.DefaultThreshold, "match threshold")
	indexed := fs.Bool("indexed", false, "use the LSH-indexed lookup (sublinear in database size; identical results)")
	sliced := fs.Bool("sliced", false, "use the bit-sliced lookup (block kernel + pruned fallback; identical results)")
	asJSON := fs.Bool("json", false, "emit the verdict as one JSON object")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *exactPath == "" || *approxPath == "" || *dbList == "" {
		return fmt.Errorf("identify requires -exact, -approx and -db")
	}
	finish, err := obsOpts.Activate()
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); err == nil {
			err = ferr
		}
	}()
	exact, err := os.ReadFile(*exactPath)
	if err != nil {
		return err
	}
	approxData, err := os.ReadFile(*approxPath)
	if err != nil {
		return err
	}
	es, err := fingerprint.ErrorString(approxData, exact)
	if err != nil {
		return err
	}
	db := fingerprint.NewDB(*threshold)
	for _, name := range strings.Split(*dbList, ",") {
		data, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		// A file may be a whole fingerprint database (pcause mkdb) or a
		// single raw fingerprint (pcause characterize); detect by magic.
		if bytes.HasPrefix(data, []byte("PCDB01")) {
			sub, err := fingerprint.ReadDB(bytes.NewReader(data))
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			for _, e := range sub.Entries() {
				db.Add(e.Name, e.FP)
			}
			continue
		}
		var fp bitset.Set
		if err := fp.UnmarshalBinary(data); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		db.Add(filepath.Base(name), &fp)
	}
	var ident fingerprint.Identifier = db
	switch {
	case *sliced:
		sx, err := fingerprint.SliceDB(db, fingerprint.SlicedConfig{})
		if err != nil {
			return err
		}
		ident = sx
	case *indexed:
		ix, err := fingerprint.IndexDB(db, fingerprint.IndexedConfig{})
		if err != nil {
			return err
		}
		ident = ix
	}
	v := ident.Decide(es)
	if *asJSON {
		blob, err := json.Marshal(struct {
			Match     bool    `json:"match"`
			Ambiguous bool    `json:"ambiguous"`
			Matches   int     `json:"matches"`
			Name      string  `json:"name"`
			Distance  float64 `json:"distance"`
			Threshold float64 `json:"threshold"`
		}{v.OK(), v.Ambiguous(), v.Matches, v.Name, v.Distance, *threshold})
		if err != nil {
			return err
		}
		fmt.Println(string(blob))
	}
	switch {
	case v.Ambiguous():
		// An ambiguous identification is a distinct verdict (Algorithm 3
		// returns "ambiguous", not the best guess): more than one registered
		// device is within threshold, so naming one would be a coin flip.
		if !*asJSON {
			fmt.Printf("AMBIGUOUS %d devices within threshold %g (best %s at distance %.4f)\n",
				v.Matches, *threshold, v.Name, v.Distance)
		}
		return &statusError{code: identifyExitAmbiguous}
	case v.OK():
		if !*asJSON {
			fmt.Printf("MATCH %s (distance %.4f, threshold %g)\n", v.Name, v.Distance, *threshold)
		}
		return nil
	default:
		if !*asJSON {
			fmt.Printf("no match (best %s at distance %.4f, threshold %g)\n", v.Name, v.Distance, *threshold)
		}
		return &statusError{code: identifyExitNoMatch}
	}
}

func cmdCluster(args []string) (err error) {
	fs, obsOpts := newFlagSet("cluster", "cluster -exact FILE -approx FILE[,FILE...] [-threshold T]")
	exactPath := fs.String("exact", "", "exact data file")
	approxList := fs.String("approx", "", "comma-separated approximate output files")
	threshold := fs.Float64("threshold", fingerprint.DefaultThreshold, "match threshold")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *exactPath == "" || *approxList == "" {
		return fmt.Errorf("cluster requires -exact and -approx")
	}
	finish, err := obsOpts.Activate()
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); err == nil {
			err = ferr
		}
	}()
	exact, err := os.ReadFile(*exactPath)
	if err != nil {
		return err
	}
	approxes, err := readFiles(*approxList)
	if err != nil {
		return err
	}
	cl := fingerprint.NewClusterer(*threshold)
	names := strings.Split(*approxList, ",")
	for i, a := range approxes {
		es, err := fingerprint.ErrorString(a, exact)
		if err != nil {
			return fmt.Errorf("%s: %w", names[i], err)
		}
		fmt.Printf("%s → cluster %d\n", names[i], cl.Add(es))
	}
	fmt.Printf("%d outputs, %d suspected device(s)\n", len(approxes), cl.Count())
	return nil
}

// cmdMkdb bundles named fingerprints into one database file:
//
//	pcause mkdb -o fleet.pcdb chipA=fpA.bin chipB=fpB.bin
func cmdMkdb(args []string) (err error) {
	fs, obsOpts := newFlagSet("mkdb", "mkdb [-o DB] name=FP [name=FP...]")
	outPath := fs.String("o", "fingerprints.pcdb", "output database file")
	threshold := fs.Float64("threshold", fingerprint.DefaultThreshold, "match threshold stored in the database")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("mkdb requires name=fingerprint.bin arguments")
	}
	finish, err := obsOpts.Activate()
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); err == nil {
			err = ferr
		}
	}()
	db := fingerprint.NewDB(*threshold)
	for _, arg := range fs.Args() {
		name, file, ok := strings.Cut(arg, "=")
		if !ok {
			return fmt.Errorf("argument %q is not name=file", arg)
		}
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		var fp bitset.Set
		if err := fp.UnmarshalBinary(data); err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		db.Add(name, &fp)
	}
	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	if _, err := db.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d fingerprints to %s\n", db.Len(), *outPath)
	return nil
}

// cmdGensamples simulates a victim system publishing approximate outputs
// and writes them as a JSON-lines sample file for the stitch subcommand.
func cmdGensamples(args []string) (err error) {
	fs, obsOpts := newFlagSet("gensamples", "gensamples [-o FILE] [-buddy|-scattered] [-memory N] [-pages N] [-n N] [-corrupt SPEC]")
	outPath := fs.String("o", "samples.jsonl", "output sample file")
	memPages := fs.Int("memory", 4096, "victim physical memory in pages (power of two for -buddy)")
	samplePages := fs.Int("pages", 40, "pages per published output")
	count := fs.Int("n", 500, "number of outputs to publish")
	errRate := fs.Float64("err", 0.01, "approximation error rate")
	seed := fs.Uint64("seed", 0x6E5A, "victim system seed")
	buddy := fs.Bool("buddy", false, "use the buddy-allocator placement model")
	scattered := fs.Bool("scattered", false, "use page-level-ASLR placement (defense)")
	corrupt := fs.String("corrupt", "", "fault plan for a corrupted corpus, e.g. bitflip=0.01,drop=0.005,line=0.02")
	corruptSeed := fs.Uint64("corrupt.seed", 0xFA17, "fault-injection seed for -corrupt")
	if err := fs.Parse(args); err != nil {
		return err
	}
	plan, err := faults.ParsePlan(*corrupt, *corruptSeed)
	if err != nil {
		return err
	}
	finish, err := obsOpts.Activate()
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); err == nil {
			err = ferr
		}
	}()
	model := drammodel.New(*seed)
	var placer osmodel.Placer
	switch {
	case *buddy:
		sys, err := osmodel.NewSystem(*memPages, *seed^0xB0DD)
		if err != nil {
			return err
		}
		placer = sys
	case *scattered:
		mem, err := osmodel.NewMemory(*memPages, *seed^0xA5)
		if err != nil {
			return err
		}
		placer = osmodel.Scattered{Memory: mem}
	default:
		mem, err := osmodel.NewMemory(*memPages, *seed^0xA5)
		if err != nil {
			return err
		}
		placer = mem
	}
	src, err := workload.NewSampleSource(model, placer, *errRate, *samplePages)
	if err != nil {
		return err
	}
	inj := faults.NewInjector(plan)
	samples := make([]stitch.Sample, 0, *count)
	badPages := 0
	for i := 0; i < *count; i++ {
		s, _, err := src.Next()
		if err != nil {
			return err
		}
		if plan.Active() {
			var n int
			s, n = inj.CorruptSample(s, dram.PageBits)
			badPages += n
		}
		samples = append(samples, s)
	}
	var buf bytes.Buffer
	if err := samplefile.Write(&buf, samples); err != nil {
		return err
	}
	doc := buf.Bytes()
	badLines := 0
	if plan.Line > 0 {
		doc, badLines = inj.CorruptJSONLines(doc)
	}
	if err := os.WriteFile(*outPath, doc, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d samples (%d pages each) to %s\n", *count, *samplePages, *outPath)
	if plan.Active() {
		fmt.Printf("faults (%s): corrupted %d pages, mangled %d lines\n", plan, badPages, badLines)
	}
	return nil
}

// cmdStitch runs the whole-memory fingerprint-stitching attack over a sample
// file, reporting the suspected-machine count as samples accumulate.
func cmdStitch(args []string) (err error) {
	fs, obsOpts := newFlagSet("stitch", "stitch -in FILE [-lenient] [-save DB] [-load DB] [-threshold T] [-overlap N] [-workers N]")
	inPath := fs.String("in", "samples.jsonl", "sample file (JSON lines)")
	threshold := fs.Float64("threshold", fingerprint.DefaultThreshold, "page match threshold")
	minOverlap := fs.Int("overlap", 1, "pages that must align to merge")
	workers := fs.Int("workers", 1, "worker pool size for signing/verification (0 = one per CPU); any value produces identical clusters")
	every := fs.Int("progress", 100, "print progress every N samples")
	loadPath := fs.String("load", "", "resume from a previously saved database")
	savePath := fs.String("save", "", "save the database when done")
	lenient := fs.Bool("lenient", false, "tolerate corrupt captures: skip malformed lines and reject outlier pages instead of aborting")
	if err := fs.Parse(args); err != nil {
		return err
	}
	finish, err := obsOpts.Activate()
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); err == nil {
			err = ferr
		}
	}()
	f, err := os.Open(*inPath)
	if err != nil {
		return err
	}
	defer f.Close()
	cfg := stitch.Config{Threshold: *threshold, MinOverlap: *minOverlap, Workers: pool.Workers(*workers)}
	if *lenient {
		cfg.MaxBitPos = dram.PageBits
		cfg.OutlierFactor = 8
	}
	var st *stitch.Stitcher
	if *loadPath != "" {
		db, err := os.Open(*loadPath)
		if err != nil {
			return err
		}
		st, err = stitch.Load(db, cfg)
		db.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", *loadPath, err)
		}
		fmt.Printf("resumed database: %d cluster(s), %d pages\n", st.Count(), st.CoveredPages())
	} else if st, err = stitch.New(cfg); err != nil {
		return err
	}
	r := samplefile.NewReader(f)
	r.SetLenient(*lenient)
	n, rejected := 0, 0
	for {
		s, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if _, err := st.Add(s); err != nil {
			if *lenient && errors.Is(err, stitch.ErrSampleRejected) {
				rejected++
				continue
			}
			return err
		}
		n++
		if *every > 0 && n%*every == 0 {
			fmt.Printf("%6d samples → %d suspected machine(s), %d pages fingerprinted\n",
				n, st.Count(), st.CoveredPages())
		}
	}
	fmt.Printf("final: %d samples → %d suspected machine(s); largest fingerprint %d pages\n",
		n, st.Count(), st.LargestCluster())
	if *lenient && (r.Skipped() > 0 || rejected > 0 || st.RejectedPages() > 0) {
		fmt.Printf("lenient: skipped %d malformed line(s), rejected %d sample(s) and %d outlier page(s)\n",
			r.Skipped(), rejected, st.RejectedPages())
	}
	if *savePath != "" {
		out, err := os.Create(*savePath)
		if err != nil {
			return err
		}
		if _, err := st.WriteTo(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Printf("database saved to %s\n", *savePath)
	}
	return nil
}

func cmdDemo(args []string) (err error) {
	fs, obsOpts := newFlagSet("demo", "demo [-accuracy A]")
	accuracy := fs.Float64("accuracy", 0.99, "approximate-memory accuracy")
	if err := fs.Parse(args); err != nil {
		return err
	}
	finish, err := obsOpts.Activate()
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); err == nil {
			err = ferr
		}
	}()
	fmt.Println("Probable Cause demo: two simulated 32 KB KM41464A chips")
	fmt.Printf("approximate memory at %.0f%% accuracy\n\n", *accuracy*100)

	mems := make([]*approx.Memory, 2)
	for i := range mems {
		chip, err := dram.NewChip(dram.KM41464A(uint64(0xD301 + i)))
		if err != nil {
			return err
		}
		if mems[i], err = approx.New(chip, *accuracy); err != nil {
			return err
		}
	}

	db := fingerprint.NewDB(fingerprint.DefaultThreshold)
	for i, mem := range mems {
		a1, exact, err := mem.WorstCaseOutput()
		if err != nil {
			return err
		}
		a2, _, err := mem.WorstCaseOutput()
		if err != nil {
			return err
		}
		fp, err := fingerprint.Characterize(exact, a1, a2)
		if err != nil {
			return err
		}
		db.Add(fmt.Sprintf("chip%d", i), fp)
		fmt.Printf("characterized chip%d: %d volatile bits\n", i, fp.Count())
	}

	fmt.Println("\nvictim publishes fresh outputs; attacker identifies them:")
	for i, mem := range mems {
		a, exact, err := mem.WorstCaseOutput()
		if err != nil {
			return err
		}
		es, err := fingerprint.ErrorString(a, exact)
		if err != nil {
			return err
		}
		name, _, dist := db.IdentifyBest(es)
		fmt.Printf("output from chip%d → identified as %s (distance %.4f)\n", i, name, dist)
	}
	return nil
}
