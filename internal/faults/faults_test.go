package faults

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"probablecause/internal/bitset"
	"probablecause/internal/stitch"
)

func TestParsePlanRoundTrip(t *testing.T) {
	spec := "bitflip=0.01,drop=0.005,dup=0.002,line=0.1,readerr=0.001,writeerr=0.002,dram=0.0005,latency=1ms"
	p, err := ParsePlan(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	if p.BitFlip != 0.01 || p.DropPage != 0.005 || p.DupPage != 0.002 ||
		p.Line != 0.1 || p.ReadErr != 0.001 || p.WriteErr != 0.002 ||
		p.DRAM != 0.0005 || p.Latency != time.Millisecond {
		t.Fatalf("parsed plan %+v does not match spec", p)
	}
	if !p.Active() {
		t.Fatal("plan with rates should be active")
	}
	reparsed, err := ParsePlan(p.String(), 42)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if reparsed != p {
		t.Fatalf("round trip mismatch: %+v vs %+v", reparsed, p)
	}
}

func TestParsePlanRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{"bogus=0.1", "bitflip=2", "bitflip=-1", "bitflip", "latency=-1s", "latency=xyz"} {
		if _, err := ParsePlan(spec, 1); err == nil {
			t.Errorf("spec %q: expected error", spec)
		}
	}
	p, err := ParsePlan("", 1)
	if err != nil || p.Active() {
		t.Fatalf("empty spec should give inactive plan, got %+v, %v", p, err)
	}
	if got := p.String(); got != "none" {
		t.Fatalf("inactive plan renders %q", got)
	}
}

func TestTransientClassification(t *testing.T) {
	base := errors.New("disk on fire")
	if IsTransient(base) {
		t.Fatal("plain error must not be transient")
	}
	tr := Transient(base)
	if !IsTransient(tr) {
		t.Fatal("Transient(err) must be transient")
	}
	if !errors.Is(tr, base) {
		t.Fatal("transient wrapper must preserve the cause chain")
	}
	// Classification survives further wrapping, as errors cross package
	// boundaries with fmt.Errorf("...: %w", err).
	wrapped := fmt.Errorf("samplefile: line 3: %w", tr)
	if !IsTransient(wrapped) {
		t.Fatal("transient classification lost through wrapping")
	}
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) must be nil")
	}
}

func testSample(pages, bitsPerPage int) stitch.Sample {
	s := stitch.Sample{Pages: make([]bitset.Sparse, pages)}
	for i := range s.Pages {
		pos := make([]uint32, 0, bitsPerPage)
		for k := 0; k < bitsPerPage; k++ {
			pos = append(pos, uint32(7*i+97*k)%32768)
		}
		s.Pages[i] = bitset.NewSparse(pos)
	}
	return s
}

func TestCorruptSampleDeterministic(t *testing.T) {
	plan := Plan{Seed: 0xC4A05, BitFlip: 0.3, DropPage: 0.2, DupPage: 0.2}
	s := testSample(64, 40)
	a, na := NewInjector(plan).CorruptSample(s, 32768)
	b, nb := NewInjector(plan).CorruptSample(s, 32768)
	if na != nb {
		t.Fatalf("fault counts differ: %d vs %d", na, nb)
	}
	if na == 0 {
		t.Fatal("expected faults at these rates")
	}
	for i := range a.Pages {
		if !a.Pages[i].Equal(b.Pages[i]) {
			t.Fatalf("page %d differs between identically-seeded runs", i)
		}
	}
	// The input must never be mutated.
	orig := testSample(64, 40)
	for i := range s.Pages {
		if !s.Pages[i].Equal(orig.Pages[i]) {
			t.Fatalf("CorruptSample mutated its input at page %d", i)
		}
	}
	// A different seed must corrupt differently.
	c, _ := NewInjector(Plan{Seed: 0x0DD, BitFlip: 0.3, DropPage: 0.2, DupPage: 0.2}).CorruptSample(s, 32768)
	same := true
	for i := range a.Pages {
		if !a.Pages[i].Equal(c.Pages[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical corruption")
	}
}

func TestCorruptSampleRateExtremes(t *testing.T) {
	s := testSample(32, 20)
	if _, n := NewInjector(Plan{Seed: 1}).CorruptSample(s, 32768); n != 0 {
		t.Fatalf("zero plan faulted %d pages", n)
	}
	got, n := NewInjector(Plan{Seed: 1, DropPage: 1}).CorruptSample(s, 32768)
	if n != len(s.Pages) {
		t.Fatalf("drop=1 faulted %d of %d pages", n, len(s.Pages))
	}
	for i, p := range got.Pages {
		if p.Card() != 0 {
			t.Fatalf("page %d not dropped", i)
		}
	}
}

func TestCorruptLineProducesRejectableLines(t *testing.T) {
	in := NewInjector(Plan{Seed: 0x11E, Line: 1})
	line := []byte(`[[1,2,3],[4,5],[6]]`)
	sawMode := map[string]bool{}
	for i := 0; i < 64; i++ {
		out, hit := in.CorruptLine(line)
		if !hit {
			t.Fatal("line=1 must corrupt every line")
		}
		if bytes.Equal(out, line) {
			t.Fatal("corrupted line identical to input")
		}
		var pages [][]uint32
		if json.Unmarshal(out, &pages) == nil {
			t.Fatalf("corrupted line still parses as a sample: %q", out)
		}
		if json.Valid(out) {
			sawMode["wrongshape"] = true
		} else if out[0] == '[' {
			sawMode["truncate"] = true
		} else {
			sawMode["garbage"] = true
		}
	}
	for _, m := range []string{"truncate", "garbage", "wrongshape"} {
		if !sawMode[m] {
			t.Errorf("corruption mode %s never exercised", m)
		}
	}
}

func TestCorruptJSONLinesCountsAndPreservesSurvivors(t *testing.T) {
	doc := []byte("[[1,2]]\n[[3]]\n\n[[4,5,6]]\n")
	in := NewInjector(Plan{Seed: 9, Line: 0})
	out, n := in.CorruptJSONLines(doc)
	if n != 0 || !bytes.Equal(out, doc) {
		t.Fatalf("zero-rate corruption changed the document (%d lines)", n)
	}
	out, n = NewInjector(Plan{Seed: 9, Line: 1}).CorruptJSONLines(doc)
	if n != 3 {
		t.Fatalf("line=1 corrupted %d of 3 non-blank lines", n)
	}
	if lines := bytes.Count(out, []byte("\n")); lines != bytes.Count(doc, []byte("\n")) {
		t.Fatalf("corruption changed the line structure: %d newlines", lines)
	}
}

func TestFlakyReaderAndWriter(t *testing.T) {
	in := NewInjector(Plan{Seed: 3, ReadErr: 1, WriteErr: 1})
	if _, err := in.Reader(strings.NewReader("data")).Read(make([]byte, 4)); !IsTransient(err) {
		t.Fatalf("readerr=1: got %v, want transient", err)
	}
	if _, err := in.Writer(io.Discard).Write([]byte("data")); !IsTransient(err) {
		t.Fatalf("writeerr=1: got %v, want transient", err)
	}

	// At rate 0 the stream must be byte-identical.
	clean := NewInjector(Plan{Seed: 3})
	got, err := io.ReadAll(clean.Reader(strings.NewReader("hello world")))
	if err != nil || string(got) != "hello world" {
		t.Fatalf("clean read: %q, %v", got, err)
	}
	var buf bytes.Buffer
	if _, err := clean.Writer(&buf).Write([]byte("hello")); err != nil || buf.String() != "hello" {
		t.Fatalf("clean write: %q, %v", buf.String(), err)
	}
}

func TestChipHookTransientAndLatency(t *testing.T) {
	slept := 0
	in := NewInjector(Plan{Seed: 5, DRAM: 1, Latency: time.Microsecond})
	in.sleep = func(time.Duration) { slept++ }
	hook := in.ChipHook()
	err := hook("read", 0, 64)
	if !IsTransient(err) || !errors.Is(err, ErrInjected) {
		t.Fatalf("dram=1 hook returned %v", err)
	}
	if slept != 1 {
		t.Fatalf("latency injected %d times, want 1", slept)
	}
	ok := NewInjector(Plan{Seed: 5}).ChipHook()
	if err := ok("read", 0, 64); err != nil {
		t.Fatalf("zero plan hook returned %v", err)
	}
}
