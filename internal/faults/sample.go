package faults

import (
	"bytes"

	"probablecause/internal/bitset"
	"probablecause/internal/stitch"
)

// CorruptSample applies the plan's page-level data faults to a sample and
// returns the corrupted copy (the input is never mutated) plus the number
// of pages faulted. pageBits bounds the spurious positions a bit-flip fault
// may invent; flipped positions are drawn from [0, 2·pageBits) so roughly
// half the invented positions fall outside the page — exactly the
// corruption the stitcher's MaxBitPos sanitizer exists to reject.
func (in *Injector) CorruptSample(s stitch.Sample, pageBits int) (stitch.Sample, int) {
	if pageBits <= 0 {
		pageBits = 1
	}
	out := stitch.Sample{Pages: make([]bitset.Sparse, len(s.Pages))}
	faulted := 0
	for i, p := range s.Pages {
		out.Pages[i] = p
		switch {
		case in.hit(in.plan.DropPage):
			out.Pages[i] = nil
			faulted++
			if cOn() {
				cDropPage.Inc()
			}
		case i > 0 && in.hit(in.plan.DupPage):
			out.Pages[i] = out.Pages[i-1].Clone()
			faulted++
			if cOn() {
				cDupPage.Inc()
			}
		default:
			if u, h := in.draw2(); u < in.plan.BitFlip {
				out.Pages[i] = flipBits(p, pageBits, h)
				faulted++
				if cOn() {
					cBitFlip.Inc()
				}
			}
		}
	}
	return out, faulted
}

// hit burns one decision draw against rate.
func (in *Injector) hit(rate float64) bool {
	if rate <= 0 {
		// Still burn the draw so the number of draws per opportunity does
		// not depend on which rates are enabled; disabling one fault kind
		// leaves the others' decision variates in place.
		in.n.Add(1)
		return false
	}
	return in.draw() < rate
}

// flipBits corrupts a page fingerprint: it removes roughly a third of the
// true positions and invents the same number of spurious ones (drawn from
// [0, 2·pageBits), i.e. half plausible, half out of range), plus a burst of
// extra noise positions so corrupted pages are also density outliers.
func flipBits(p bitset.Sparse, pageBits int, h uint64) bitset.Sparse {
	burst := 8 + int(h%8)
	out := make([]uint32, 0, len(p)+burst)
	st := h
	for _, pos := range p {
		if splitDraw(&st)%3 == 0 {
			continue // drop this true position
		}
		out = append(out, pos)
	}
	invented := len(p)/3 + burst
	for k := 0; k < invented; k++ {
		out = append(out, uint32(splitDraw(&st)%uint64(2*pageBits)))
	}
	return bitset.NewSparse(sortedU32(out))
}

// splitDraw is a tiny SplitMix64 step for fault shaping.
func splitDraw(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// CorruptLine applies the plan's line fault to one encoded JSON sample line
// (without its trailing newline). It returns the possibly-mangled line and
// whether a fault fired. The three corruption modes cover the malformed
// inputs a scraper realistically emits: a truncated line (partial write), a
// line of non-JSON garbage, and well-formed JSON of the wrong shape.
func (in *Injector) CorruptLine(line []byte) ([]byte, bool) {
	u, h := in.draw2()
	if in.plan.Line <= 0 || u >= in.plan.Line {
		return line, false
	}
	if cOn() {
		cLine.Inc()
	}
	switch h % 3 {
	case 0: // truncate to a proper prefix (an unclosed JSON array)
		cut := 1 + int(h>>2)%maxInt(len(line)-1, 1)
		return line[:cut:cut], true
	case 1: // non-JSON garbage bytes
		g := make([]byte, 8+h%24)
		st := h
		for i := range g {
			g[i] = byte(0x80 | splitDraw(&st)&0x7F) // high bit set: never valid JSON
		}
		return g, true
	default: // valid JSON, wrong shape
		return []byte(`{"pages":"corrupt"}`), true
	}
}

// CorruptJSONLines applies CorruptLine to every line of a JSON-lines
// document, returning the corrupted document and how many lines were
// mangled. Blank lines are passed through without burning a decision, so
// line numbering of faults matches sample numbering.
func (in *Injector) CorruptJSONLines(doc []byte) ([]byte, int) {
	lines := bytes.Split(doc, []byte("\n"))
	corrupted := 0
	for i, line := range lines {
		if len(line) == 0 {
			continue
		}
		out, hit := in.CorruptLine(line)
		if hit {
			lines[i] = out
			corrupted++
		}
	}
	return bytes.Join(lines, []byte("\n")), corrupted
}

// ChipHook returns a dram fault hook implementing the plan's transient DRAM
// read faults and latency; install it with (*dram.Chip).SetFaultHook or
// dram.SetDefaultFaultHook. The hook's error is transient: a retried read
// advances the decision stream and will (at any realistic rate) succeed.
func (in *Injector) ChipHook() func(op string, addr, n int) error {
	return func(op string, addr, n int) error {
		in.lag()
		if in.hit(in.plan.DRAM) {
			if cOn() {
				cDRAMErr.Inc()
			}
			return Transient(errInjectedOp("dram " + op))
		}
		return nil
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
