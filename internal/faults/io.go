package faults

import "io"

// Reader wraps r so that every Read first pays the plan's latency and may
// fail with a transient injected error at the plan's ReadErr rate. The
// wrapped stream is otherwise byte-identical: a failed call consumes no
// input, so a caller that retries (or a scanner whose owner retries the
// whole open) sees exactly the underlying data.
func (in *Injector) Reader(r io.Reader) io.Reader {
	return &flakyReader{r: r, in: in}
}

type flakyReader struct {
	r  io.Reader
	in *Injector
}

func (f *flakyReader) Read(p []byte) (int, error) {
	f.in.lag()
	if f.in.hit(f.in.plan.ReadErr) {
		if cOn() {
			cReadErr.Inc()
		}
		return 0, Transient(errInjectedOp("read"))
	}
	return f.r.Read(p)
}

// Writer wraps w symmetrically to Reader: per-call latency plus transient
// failures at the WriteErr rate. A failed call writes nothing (the fault
// fires before the underlying write), modelling an atomic-at-the-syscall
// flaky disk rather than a torn write; torn data is the job of the
// line-corruption faults.
func (in *Injector) Writer(w io.Writer) io.Writer {
	return &flakyWriter{w: w, in: in}
}

type flakyWriter struct {
	w  io.Writer
	in *Injector
}

func (f *flakyWriter) Write(p []byte) (int, error) {
	f.in.lag()
	if f.in.hit(f.in.plan.WriteErr) {
		if cOn() {
			cWriteErr.Inc()
		}
		return 0, Transient(errInjectedOp("write"))
	}
	return f.w.Write(p)
}
