// Package faults is the deterministic fault-injection substrate behind the
// repository's chaos testing. Probable Cause's core claim is that
// fingerprints survive noise (§4–5): identification works on outputs that
// are error-ridden, partial, and adversarially scrambled. The pipeline that
// reproduces that claim must therefore itself survive noise — malformed
// sample lines, corrupted captures, flaky storage, slow devices — without
// panicking or silently producing wrong answers.
//
// The package provides composable, seeded fault plans. A Plan declares the
// fault mix (what kinds, at what rates); an Injector executes the plan
// against a deterministic pseudo-random decision stream, so a chaos run is
// exactly reproducible from its seed. Faults fall into two classes:
//
//   - Data corruption: sample bit flips, dropped and duplicated pages
//     (CorruptSample), and JSON-line mangling — truncation, garbage bytes,
//     wrong-shape JSON (CorruptLine, CorruptJSONLines). These model a
//     scraper emitting damaged captures; the pipeline must skip or sanitize
//     them (samplefile lenient mode, stitch outlier rejection).
//   - Transient operational faults: injected I/O errors from wrapped
//     io.Reader/io.Writer values, injected latency, and transient DRAM read
//     faults via ChipHook. These model flaky storage and busy devices; the
//     pipeline must classify them as retryable (IsTransient) and retry with
//     backoff (internal/runner).
//
// Every injected fault is counted through the internal/obs registry under
// faults.injected.* so chaos runs can assert exactly what was exercised.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"probablecause/internal/obs"
	"probablecause/internal/prng"
)

// Fault-injection metrics: one counter per fault kind, so a chaos run can
// assert from an -obs.report snapshot exactly which faults fired.
var (
	cBitFlip   = obs.C("faults.injected.bitflip")
	cDropPage  = obs.C("faults.injected.droppage")
	cDupPage   = obs.C("faults.injected.duppage")
	cLine      = obs.C("faults.injected.line")
	cReadErr   = obs.C("faults.injected.readerr")
	cWriteErr  = obs.C("faults.injected.writeerr")
	cDRAMErr   = obs.C("faults.injected.dram")
	cLatency   = obs.C("faults.injected.latency")
	cRPCErr    = obs.C("faults.injected.rpc")
	cFrameDrop = obs.C("faults.injected.framedrop")
	cFrameDup  = obs.C("faults.injected.framedup")
)

// ErrInjected is the root cause of every operational fault this package
// injects. It is always wrapped in a transient marker, so
// IsTransient(err) is true for any error originating here.
var ErrInjected = errors.New("faults: injected fault")

// transientError marks an error as fault-classified-transient: the
// operation failed for a reason that a retry may not reproduce (flaky I/O,
// busy device, injected chaos). The runner's retry policy keys off this
// classification via IsTransient.
type transientError struct{ err error }

func (e *transientError) Error() string { return "transient: " + e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so IsTransient reports true for it. A nil err returns
// nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (or anything it wraps) was classified
// transient. Non-transient failures — malformed input, invalid parameters,
// logic errors — must not be retried: they will fail identically forever.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// Plan declares a fault mix. All rates are probabilities in [0,1] evaluated
// independently per opportunity (per page, per line, per I/O call, per DRAM
// read). The zero Plan injects nothing.
type Plan struct {
	// Seed drives the deterministic decision stream; two injectors built
	// from identical plans corrupt identically.
	Seed uint64

	// BitFlip is the per-page probability that a page's fingerprint gets
	// error bits flipped: some true positions removed, some spurious
	// positions added (possibly out of page range — the sanitizer's job).
	BitFlip float64
	// DropPage is the per-page probability the page is lost (replaced by an
	// empty observation).
	DropPage float64
	// DupPage is the per-page probability the page is overwritten with a
	// duplicate of the preceding page — a torn or repeated capture.
	DupPage float64
	// Line is the per-line probability that an encoded JSON sample line is
	// mangled (truncated, overwritten with garbage, or replaced by JSON of
	// the wrong shape).
	Line float64
	// ReadErr / WriteErr are the per-call probabilities that a wrapped
	// Reader/Writer returns a transient error instead of performing the
	// operation.
	ReadErr  float64
	WriteErr float64
	// DRAM is the per-Read probability that a chip fault hook built with
	// ChipHook fails the read with a transient error.
	DRAM float64
	// RPC is the per-call probability that a wrapped HTTP transport
	// (RoundTripper) fails the request with a transient error before it
	// reaches the network — a dropped connection, from the caller's view.
	RPC float64
	// FrameDrop / FrameDup are per-frame probabilities that a replication
	// frame batch is dropped (the follower re-requests it) or delivered
	// twice (the follower must deduplicate by sequence). Consumed by the
	// cluster replication client via FrameFate.
	FrameDrop float64
	FrameDup  float64
	// Latency is sleep injected into every wrapped I/O call and every DRAM
	// hook invocation, modelling slow devices. Zero injects none.
	Latency time.Duration
}

// planFields maps spec keys to rate fields, shared by ParsePlan and String.
var planFields = []struct {
	key string
	get func(*Plan) *float64
}{
	{"bitflip", func(p *Plan) *float64 { return &p.BitFlip }},
	{"drop", func(p *Plan) *float64 { return &p.DropPage }},
	{"dup", func(p *Plan) *float64 { return &p.DupPage }},
	{"line", func(p *Plan) *float64 { return &p.Line }},
	{"readerr", func(p *Plan) *float64 { return &p.ReadErr }},
	{"writeerr", func(p *Plan) *float64 { return &p.WriteErr }},
	{"dram", func(p *Plan) *float64 { return &p.DRAM }},
	{"rpc", func(p *Plan) *float64 { return &p.RPC }},
	{"framedrop", func(p *Plan) *float64 { return &p.FrameDrop }},
	{"framedup", func(p *Plan) *float64 { return &p.FrameDup }},
}

// ParsePlan parses a comma-separated fault spec, e.g.
//
//	bitflip=0.01,drop=0.005,dup=0.002,line=0.01,readerr=0.001,dram=0.0005,latency=1ms
//
// Recognized keys: bitflip, drop, dup, line, readerr, writeerr, dram, rpc,
// framedrop, framedup (rates in [0,1]) and latency (a time.Duration). An
// empty spec is the zero plan.
func ParsePlan(spec string, seed uint64) (Plan, error) {
	p := Plan{Seed: seed}
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return Plan{}, fmt.Errorf("faults: spec entry %q is not key=value", part)
		}
		if key == "latency" {
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return Plan{}, fmt.Errorf("faults: bad latency %q", val)
			}
			p.Latency = d
			continue
		}
		rate, err := strconv.ParseFloat(val, 64)
		if err != nil || rate < 0 || rate > 1 {
			return Plan{}, fmt.Errorf("faults: rate %q for %s outside [0,1]", val, key)
		}
		found := false
		for _, f := range planFields {
			if f.key == key {
				*f.get(&p) = rate
				found = true
				break
			}
		}
		if !found {
			return Plan{}, fmt.Errorf("faults: unknown fault kind %q", key)
		}
	}
	return p, nil
}

// String renders the plan in ParsePlan syntax (active faults only).
func (p Plan) String() string {
	var parts []string
	for _, f := range planFields {
		if r := *f.get(&p); r > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", f.key, r))
		}
	}
	if p.Latency > 0 {
		parts = append(parts, "latency="+p.Latency.String())
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// Active reports whether the plan injects any fault at all.
func (p Plan) Active() bool {
	for _, f := range planFields {
		if *f.get(&p) > 0 {
			return true
		}
	}
	return p.Latency > 0
}

// Injector executes a Plan against a deterministic decision stream. Each
// fault decision consumes one draw from a counter-mode PRF over the plan
// seed, so the full fault sequence is a pure function of (Plan, call
// order). The counter is atomic: concurrent use is safe, though then the
// interleaving — and hence exact fault placement — follows the runtime
// schedule rather than program order.
type Injector struct {
	plan Plan
	n    atomic.Uint64
	// sleep is swapped out by tests so latency plans don't slow the suite.
	sleep func(time.Duration)
}

// NewInjector returns an injector for the plan.
func NewInjector(plan Plan) *Injector {
	return &Injector{plan: plan, sleep: time.Sleep}
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// draw returns the next uniform [0,1) decision variate.
func (in *Injector) draw() float64 {
	return prng.Uniform01(prng.Hash(in.plan.Seed, in.n.Add(1)))
}

// draw2 returns the next decision variate plus a raw hash for shaping the
// fault (which bits to flip, where to truncate) without burning a second
// decision draw.
func (in *Injector) draw2() (float64, uint64) {
	n := in.n.Add(1)
	return prng.Uniform01(prng.Hash(in.plan.Seed, n)), prng.Hash(in.plan.Seed, n, 0x5A17)
}

// Decisions returns how many fault decisions the injector has made — a
// cheap way for tests to assert determinism (equal plans + equal call
// sequences ⇒ equal decision counts and outcomes).
func (in *Injector) Decisions() uint64 { return in.n.Load() }

// lag injects the plan's latency, if any.
func (in *Injector) lag() {
	if in.plan.Latency > 0 {
		if obs.On() {
			cLatency.Inc()
		}
		in.sleep(in.plan.Latency)
	}
}

// sortedU32 sorts positions in place and returns them (helper for fault
// shaping, which must emit the samplefile's ascending-position encoding).
func sortedU32(v []uint32) []uint32 {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	return v
}

// cOn aliases obs.On for the fault sites.
func cOn() bool { return obs.On() }

// errInjectedOp builds the ErrInjected-rooted cause for an operational
// fault, naming the operation that was failed.
func errInjectedOp(op string) error {
	return fmt.Errorf("%w: %s", ErrInjected, op)
}
