package faults

import "net/http"

// RoundTripper wraps rt so every request first pays the plan's latency
// and may fail with a transient injected error at the RPC rate before
// touching the network — from the caller's perspective, a connection
// that dropped mid-dial. The cluster router and replication client run
// their HTTP clients through this wrapper in chaos tests, so retry,
// hedging, and failover logic is exercised against a deterministic
// failure stream rather than real network weather.
func (in *Injector) RoundTripper(rt http.RoundTripper) http.RoundTripper {
	if rt == nil {
		rt = http.DefaultTransport
	}
	return &flakyTransport{rt: rt, in: in}
}

type flakyTransport struct {
	rt http.RoundTripper
	in *Injector
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.in.lag()
	if f.in.hit(f.in.plan.RPC) {
		if cOn() {
			cRPCErr.Inc()
		}
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, Transient(errInjectedOp("rpc " + req.URL.Path))
	}
	return f.rt.RoundTrip(req)
}

// FrameFate is the fault decision for one replication frame batch.
type FrameFate int

const (
	// FrameDeliver: apply the frame once (the no-fault outcome).
	FrameDeliver FrameFate = iota
	// FrameDrop: discard the frame; the follower's next pull re-requests
	// the same range, modelling a lost response.
	FrameDrop
	// FrameDup: apply the frame twice; the second application must be
	// deduplicated by sequence number, modelling a retransmitted response.
	FrameDup
)

// FrameFate draws the fate of one replication frame from the plan's
// FrameDrop/FrameDup rates (drop wins when both fire). Callers apply,
// skip, or double-apply the frame accordingly; the decision stream is
// deterministic in (Plan, call order) like every other fault here.
func (in *Injector) FrameFate() FrameFate {
	if in.hit(in.plan.FrameDrop) {
		if cOn() {
			cFrameDrop.Inc()
		}
		return FrameDrop
	}
	if in.hit(in.plan.FrameDup) {
		if cOn() {
			cFrameDup.Inc()
		}
		return FrameDup
	}
	return FrameDeliver
}
