package bitset

import (
	"math/bits"
	"testing"
)

// FuzzUnmarshalBinary: the dense-set decoder must never panic and anything
// it accepts must survive a marshal round trip.
func FuzzUnmarshalBinary(f *testing.F) {
	good, _ := FromPositions(100, []uint32{1, 50, 99}).MarshalBinary()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Set
		if err := s.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted set failed: %v", err)
		}
		var again Set
		if err := again.UnmarshalBinary(out); err != nil {
			t.Fatalf("round trip decode failed: %v", err)
		}
		if !again.Equal(&s) {
			t.Fatal("round trip changed the set")
		}
	})
}

// FuzzCachedCard drives a random operation sequence through two sets and
// asserts the cached cardinality stays equal to a fresh popcount after every
// step. The program is the fuzz input: each byte pair is (opcode, operand).
// This is the invariant the whole Distance fast path rests on — a stale
// cache silently mis-ranks fingerprints instead of crashing, so only an
// explicit recount can catch it.
func FuzzCachedCard(f *testing.F) {
	f.Add([]byte{0, 10, 1, 10, 2, 0, 3, 0, 4, 0, 5, 0, 6, 0, 7, 0})
	f.Add([]byte{0, 1, 0, 1, 1, 1, 6, 0, 0, 200})
	f.Fuzz(func(t *testing.T, program []byte) {
		const n = 192
		s, o := New(n), New(n)
		// Give the second operand some content so binary ops do work.
		for i := 0; i < n; i += 7 {
			o.Set(i)
		}
		verify := func(set *Set, op string) {
			c := 0
			for _, w := range set.words {
				c += bits.OnesCount64(w)
			}
			if set.Count() != c {
				t.Fatalf("after %s: cached %d != recount %d", op, set.Count(), c)
			}
		}
		for i := 0; i+1 < len(program); i += 2 {
			op, arg := program[i]%8, int(program[i+1])%n
			switch op {
			case 0:
				s.Set(arg)
			case 1:
				s.Clear(arg)
			case 2:
				s.And(o)
			case 3:
				s.Or(o)
			case 4:
				s.Xor(o)
			case 5:
				s.AndNot(o)
			case 6:
				s.Reset()
			case 7:
				o.Set(arg) // mutate the operand too
			}
			verify(s, "s-op")
			verify(o, "o-op")
			minC, maxC, diff := MinCardAndNotCount(s, o)
			a, b := s, o
			if a.Count() > b.Count() {
				a, b = b, a
			}
			if minC != a.Count() || maxC != b.Count() || diff != a.AndNotCount(b) {
				t.Fatalf("fused kernel diverged: (%d,%d,%d) vs (%d,%d,%d)",
					minC, maxC, diff, a.Count(), b.Count(), a.AndNotCount(b))
			}
		}
	})
}

// FuzzSlicedKernel: the bit-sliced block kernel must return byte-identical
// (minCard, maxCard, diff) triples to the scalar MinCardAndNotCount on
// random shapes. The fuzz input encodes the geometry and the bit content:
// byte 0 picks the bit length, byte 1 the block width, byte 2 the query
// density knob, and the rest seeds entry/query bits, so the corpus explores
// partial tail blocks, non-word-aligned lengths, empty sets, and both
// cardinality orientations.
func FuzzSlicedKernel(f *testing.F) {
	f.Add([]byte{100, 3, 8, 1, 2, 3})
	f.Add([]byte{255, 64, 0})
	f.Add([]byte{1, 1, 255, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		nbits := int(data[0])%700 + 1
		width := int(data[1])%9 + 1
		qmod := int(data[2])%7 + 2
		arena := NewSlicedArena(nbits, width)
		var sets []*Set
		// Derive entries from the remaining bytes: byte k drives the stride
		// pattern of entry k, so shapes vary from empty to near-full.
		for k, b := range data[3:] {
			if k >= 2*width+1 {
				break
			}
			s := New(nbits)
			if stride := int(b) % 17; stride > 0 {
				for i := k % stride; i < nbits; i += stride {
					s.Set(i)
				}
			}
			sets = append(sets, s)
			arena.Add(s)
		}
		if len(sets) == 0 {
			return
		}
		q := New(nbits)
		for i := 0; i < nbits; i += qmod {
			q.Set(i)
		}
		var dst []KernelResult
		for bi := 0; bi < arena.NumBlocks(); bi++ {
			blk := arena.Block(bi)
			dst = blk.MinCardAndNotCounts(q, dst)
			bound := blk.UnionAndCount(q)
			for j, r := range dst {
				g := bi*width + j
				minC, maxC, diff := MinCardAndNotCount(sets[g], q)
				if r.MinCard != minC || r.MaxCard != maxC || r.Diff != diff {
					t.Fatalf("entry %d: kernel (%d,%d,%d) != scalar (%d,%d,%d)",
						g, r.MinCard, r.MaxCard, r.Diff, minC, maxC, diff)
				}
				if inter := sets[g].AndCount(q); inter > bound {
					t.Fatalf("entry %d: intersection %d exceeds union bound %d", g, inter, bound)
				}
			}
		}
	})
}

// FuzzUnmarshalSparse: same contract for the sparse decoder, which must
// also enforce strictly increasing positions.
func FuzzUnmarshalSparse(f *testing.F) {
	good, _ := NewSparse([]uint32{3, 7, 1000}).MarshalBinary()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{2, 0, 0, 0, 5, 0, 0, 0, 5, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalSparse(data)
		if err != nil {
			return
		}
		for i := 1; i < len(s); i++ {
			if s[i] <= s[i-1] {
				t.Fatal("accepted non-increasing positions")
			}
		}
		out, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		again, err := UnmarshalSparse(out)
		if err != nil || !again.Equal(s) {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
