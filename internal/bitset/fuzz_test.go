package bitset

import "testing"

// FuzzUnmarshalBinary: the dense-set decoder must never panic and anything
// it accepts must survive a marshal round trip.
func FuzzUnmarshalBinary(f *testing.F) {
	good, _ := FromPositions(100, []uint32{1, 50, 99}).MarshalBinary()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Set
		if err := s.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted set failed: %v", err)
		}
		var again Set
		if err := again.UnmarshalBinary(out); err != nil {
			t.Fatalf("round trip decode failed: %v", err)
		}
		if !again.Equal(&s) {
			t.Fatal("round trip changed the set")
		}
	})
}

// FuzzUnmarshalSparse: same contract for the sparse decoder, which must
// also enforce strictly increasing positions.
func FuzzUnmarshalSparse(f *testing.F) {
	good, _ := NewSparse([]uint32{3, 7, 1000}).MarshalBinary()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{2, 0, 0, 0, 5, 0, 0, 0, 5, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalSparse(data)
		if err != nil {
			return
		}
		for i := 1; i < len(s); i++ {
			if s[i] <= s[i-1] {
				t.Fatal("accepted non-increasing positions")
			}
		}
		out, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		again, err := UnmarshalSparse(out)
		if err != nil || !again.Equal(s) {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
