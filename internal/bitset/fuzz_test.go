package bitset

import (
	"math/bits"
	"testing"
)

// FuzzUnmarshalBinary: the dense-set decoder must never panic and anything
// it accepts must survive a marshal round trip.
func FuzzUnmarshalBinary(f *testing.F) {
	good, _ := FromPositions(100, []uint32{1, 50, 99}).MarshalBinary()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Set
		if err := s.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted set failed: %v", err)
		}
		var again Set
		if err := again.UnmarshalBinary(out); err != nil {
			t.Fatalf("round trip decode failed: %v", err)
		}
		if !again.Equal(&s) {
			t.Fatal("round trip changed the set")
		}
	})
}

// FuzzCachedCard drives a random operation sequence through two sets and
// asserts the cached cardinality stays equal to a fresh popcount after every
// step. The program is the fuzz input: each byte pair is (opcode, operand).
// This is the invariant the whole Distance fast path rests on — a stale
// cache silently mis-ranks fingerprints instead of crashing, so only an
// explicit recount can catch it.
func FuzzCachedCard(f *testing.F) {
	f.Add([]byte{0, 10, 1, 10, 2, 0, 3, 0, 4, 0, 5, 0, 6, 0, 7, 0})
	f.Add([]byte{0, 1, 0, 1, 1, 1, 6, 0, 0, 200})
	f.Fuzz(func(t *testing.T, program []byte) {
		const n = 192
		s, o := New(n), New(n)
		// Give the second operand some content so binary ops do work.
		for i := 0; i < n; i += 7 {
			o.Set(i)
		}
		verify := func(set *Set, op string) {
			c := 0
			for _, w := range set.words {
				c += bits.OnesCount64(w)
			}
			if set.Count() != c {
				t.Fatalf("after %s: cached %d != recount %d", op, set.Count(), c)
			}
		}
		for i := 0; i+1 < len(program); i += 2 {
			op, arg := program[i]%8, int(program[i+1])%n
			switch op {
			case 0:
				s.Set(arg)
			case 1:
				s.Clear(arg)
			case 2:
				s.And(o)
			case 3:
				s.Or(o)
			case 4:
				s.Xor(o)
			case 5:
				s.AndNot(o)
			case 6:
				s.Reset()
			case 7:
				o.Set(arg) // mutate the operand too
			}
			verify(s, "s-op")
			verify(o, "o-op")
			minC, maxC, diff := MinCardAndNotCount(s, o)
			a, b := s, o
			if a.Count() > b.Count() {
				a, b = b, a
			}
			if minC != a.Count() || maxC != b.Count() || diff != a.AndNotCount(b) {
				t.Fatalf("fused kernel diverged: (%d,%d,%d) vs (%d,%d,%d)",
					minC, maxC, diff, a.Count(), b.Count(), a.AndNotCount(b))
			}
		}
	})
}

// FuzzUnmarshalSparse: same contract for the sparse decoder, which must
// also enforce strictly increasing positions.
func FuzzUnmarshalSparse(f *testing.F) {
	good, _ := NewSparse([]uint32{3, 7, 1000}).MarshalBinary()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{2, 0, 0, 0, 5, 0, 0, 0, 5, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalSparse(data)
		if err != nil {
			return
		}
		for i := 1; i < len(s); i++ {
			if s[i] <= s[i-1] {
				t.Fatal("accepted non-increasing positions")
			}
		}
		out, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		again, err := UnmarshalSparse(out)
		if err != nil || !again.Equal(s) {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
