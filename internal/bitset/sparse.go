package bitset

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Sparse is a set of bit positions stored as a sorted slice of uint32. It is
// the memory-efficient representation used by the stitching attack, where the
// fingerprint database scales with the size of the fingerprinted memory (§4:
// "it is possible to reduce the storage requirement by only tracking the fast
// decaying bits of memory (approximately, 1% of the bits)").
//
// The zero value is an empty set. All operations keep positions sorted and
// deduplicated.
type Sparse []uint32

// NewSparse returns a Sparse set from possibly unsorted, possibly duplicated
// positions. The input slice is not retained.
func NewSparse(positions []uint32) Sparse {
	s := make(Sparse, len(positions))
	copy(s, positions)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return dedup(s)
}

func dedup(s Sparse) Sparse {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// Card returns the number of positions in the set.
func (s Sparse) Card() int { return len(s) }

// Contains reports whether position p is in the set.
func (s Sparse) Contains(p uint32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= p })
	return i < len(s) && s[i] == p
}

// Clone returns a copy of s.
func (s Sparse) Clone() Sparse {
	c := make(Sparse, len(s))
	copy(c, s)
	return c
}

// Intersect returns s ∩ o as a new set.
func (s Sparse) Intersect(o Sparse) Sparse {
	out := make(Sparse, 0, min(len(s), len(o)))
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] < o[j]:
			i++
		case s[i] > o[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Union returns s ∪ o as a new set.
func (s Sparse) Union(o Sparse) Sparse {
	out := make(Sparse, 0, len(s)+len(o))
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] < o[j]:
			out = append(out, s[i])
			i++
		case s[i] > o[j]:
			out = append(out, o[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, o[j:]...)
	return out
}

// IntersectCount returns |s ∩ o| without allocating.
func (s Sparse) IntersectCount(o Sparse) int {
	c, i, j := 0, 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] < o[j]:
			i++
		case s[i] > o[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// DiffCount returns |s \ o| without allocating.
func (s Sparse) DiffCount(o Sparse) int {
	return len(s) - s.IntersectCount(o)
}

// IsSubset reports whether every position of s is in o.
func (s Sparse) IsSubset(o Sparse) bool {
	return s.IntersectCount(o) == len(s)
}

// Equal reports whether s and o contain exactly the same positions.
func (s Sparse) Equal(o Sparse) bool {
	if len(s) != len(o) {
		return false
	}
	for i, v := range s {
		if v != o[i] {
			return false
		}
	}
	return true
}

// Dense converts s to a dense Set of length n.
func (s Sparse) Dense(n int) *Set {
	return FromPositions(n, s)
}

// MarshalBinary encodes the set as a varint-free fixed layout: a 4-byte
// little-endian count followed by 4-byte little-endian positions.
func (s Sparse) MarshalBinary() ([]byte, error) {
	out := make([]byte, 4+4*len(s))
	binary.LittleEndian.PutUint32(out, uint32(len(s)))
	for i, p := range s {
		binary.LittleEndian.PutUint32(out[4+4*i:], p)
	}
	return out, nil
}

// UnmarshalSparse decodes data produced by Sparse.MarshalBinary.
func UnmarshalSparse(data []byte) (Sparse, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("bitset: truncated sparse header (%d bytes)", len(data))
	}
	n := int(binary.LittleEndian.Uint32(data))
	if len(data) != 4+4*n {
		return nil, fmt.Errorf("bitset: want %d sparse payload bytes, have %d", 4*n, len(data)-4)
	}
	s := make(Sparse, n)
	for i := range s {
		s[i] = binary.LittleEndian.Uint32(data[4+4*i:])
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return nil, fmt.Errorf("bitset: sparse positions not strictly increasing at %d", i)
		}
	}
	return s, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
