package bitset

import (
	"math/bits"
	"testing"
)

// recountWords is the reference cardinality: a fresh popcount over the words,
// bypassing the cache the production Count() serves from.
func recountWords(s *Set) int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

func checkCard(t *testing.T, s *Set, ctx string) {
	t.Helper()
	if got, want := s.Count(), recountWords(s); got != want {
		t.Fatalf("%s: cached Count() = %d, recount = %d", ctx, got, want)
	}
}

func TestCachedCardIncremental(t *testing.T) {
	s := New(200)
	checkCard(t, s, "fresh")
	s.Set(0)
	s.Set(0) // idempotent: card must not double-count
	s.Set(63)
	s.Set(64)
	s.Set(199)
	checkCard(t, s, "after sets")
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
	s.Clear(63)
	s.Clear(63) // idempotent
	checkCard(t, s, "after clears")
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	s.Reset()
	checkCard(t, s, "after reset")
	if s.Count() != 0 {
		t.Fatalf("Count after Reset = %d", s.Count())
	}
}

func TestCachedCardBulkOps(t *testing.T) {
	a := FromPositions(256, []uint32{1, 5, 64, 100, 255})
	b := FromPositions(256, []uint32{5, 64, 128, 254})
	for _, tc := range []struct {
		name string
		op   func(x, y *Set) *Set
	}{
		{"and", (*Set).And},
		{"or", (*Set).Or},
		{"xor", (*Set).Xor},
		{"andnot", (*Set).AndNot},
	} {
		x := a.Clone()
		tc.op(x, b)
		checkCard(t, x, tc.name)
	}
	checkCard(t, a.Clone(), "clone")
}

func TestCachedCardLoadPaths(t *testing.T) {
	s := FromBytes([]byte{0xFF, 0x00, 0x81, 0xAA, 0x01})
	checkCard(t, s, "FromBytes")
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var u Set
	if err := u.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	checkCard(t, &u, "UnmarshalBinary")
	if u.Count() != s.Count() {
		t.Fatalf("round-trip count %d != %d", u.Count(), s.Count())
	}
}

func TestMinCardAndNotCount(t *testing.T) {
	fp := FromPositions(128, []uint32{1, 2, 3, 70})
	es := FromPositions(128, []uint32{1, 2, 3, 4, 5, 6, 7, 8})
	minC, maxC, diff := MinCardAndNotCount(fp, es)
	if minC != 4 || maxC != 8 {
		t.Fatalf("cards = (%d, %d), want (4, 8)", minC, maxC)
	}
	if diff != 1 { // position 70 is the only fp bit missing from es
		t.Fatalf("diff = %d, want 1", diff)
	}
	// Symmetric usage: the smaller side is picked regardless of argument order.
	minC2, maxC2, diff2 := MinCardAndNotCount(es, fp)
	if minC2 != minC || maxC2 != maxC || diff2 != diff {
		t.Fatalf("order sensitivity: (%d,%d,%d) vs (%d,%d,%d)", minC2, maxC2, diff2, minC, maxC, diff)
	}
	// Ties keep the first argument as the fingerprint.
	x := FromPositions(64, []uint32{0, 1})
	y := FromPositions(64, []uint32{1, 2})
	if _, _, d := MinCardAndNotCount(x, y); d != 1 {
		t.Fatalf("tie diff = %d, want |x \\ y| = 1", d)
	}
}

func TestMinCardAndNotCountMatchesNaive(t *testing.T) {
	a := FromPositions(512, []uint32{0, 63, 64, 65, 200, 301, 302, 511})
	b := FromPositions(512, []uint32{63, 65, 300, 301, 500})
	small, large := b, a
	minC, maxC, diff := MinCardAndNotCount(a, b)
	if minC != small.Count() || maxC != large.Count() || diff != small.AndNotCount(large) {
		t.Fatalf("fused (%d,%d,%d) != naive (%d,%d,%d)",
			minC, maxC, diff, small.Count(), large.Count(), small.AndNotCount(large))
	}
}
