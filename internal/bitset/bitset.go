// Package bitset provides the dense and sparse bit-set representations that
// underlie error strings and fingerprints throughout Probable Cause.
//
// A fingerprint is fundamentally a set of bit positions (the positions of the
// most volatile DRAM cells). Two representations are provided:
//
//   - Set: a dense bitmap backed by uint64 words. Used for whole-page error
//     strings where roughly 1% of bits are set and positions are compared,
//     intersected, and counted constantly.
//   - Sparse (sparse.go): a sorted slice of uint32 positions. Used by the
//     stitching attack where millions of page fingerprints must be held at
//     once and density is low.
//
// Both representations are deliberately allocation-conscious: the identify
// and cluster hot loops call Distance millions of times in the large
// experiments.
package bitset

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

const wordBits = 64

// Set is a fixed-size dense bit set. The zero value is an empty set of
// length zero; use New to create a set of a given length.
//
// The set caches its own cardinality: every mutator maintains card
// incrementally (Set/Clear) or fuses the popcount into the word loop it
// already runs (And/Or/Xor/AndNot), so Count is O(1). Distance — the hottest
// call in the system — depends on this: it needs both operand weights before
// it touches a single word.
type Set struct {
	words []uint64
	n     int // number of valid bits
	card  int // cached number of set bits; invariant: card == recount(words)
}

// New returns a Set holding n bits, all zero.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative length")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromPositions returns a Set of length n with the given bit positions set.
// Positions outside [0, n) cause a panic, mirroring slice indexing.
func FromPositions(n int, positions []uint32) *Set {
	s := New(n)
	for _, p := range positions {
		s.Set(int(p))
	}
	return s
}

// FromWords returns a Set of length n backed by a copy of the given words
// (the storage layer materializes entries from mmap'd word arrays this way).
// Bits at and beyond n must be zero; the cardinality is recounted once.
func FromWords(n int, words []uint64) *Set {
	if n < 0 || len(words) != (n+wordBits-1)/wordBits {
		panic(fmt.Sprintf("bitset: %d words for %d bits", len(words), n))
	}
	s := &Set{words: make([]uint64, len(words)), n: n}
	copy(s.words, words)
	s.recount()
	return s
}

// Len returns the number of bits the set holds (set or unset).
func (s *Set) Len() int { return s.n }

// Set sets bit i to 1.
func (s *Set) Set(i int) {
	s.check(i)
	w, mask := i/wordBits, uint64(1)<<uint(i%wordBits)
	if s.words[w]&mask == 0 {
		s.words[w] |= mask
		s.card++
	}
}

// Clear sets bit i to 0.
func (s *Set) Clear(i int) {
	s.check(i)
	w, mask := i/wordBits, uint64(1)<<uint(i%wordBits)
	if s.words[w]&mask != 0 {
		s.words[w] &^= mask
		s.card--
	}
}

// Get reports whether bit i is set.
func (s *Set) Get(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Count returns the number of set bits (the Hamming weight). It reads the
// cached cardinality and costs O(1).
func (s *Set) Count() int { return s.card }

// recount recomputes the cached cardinality from the words. Only bulk loads
// (FromBytes, UnmarshalBinary) need it; every other mutator maintains card
// incrementally.
func (s *Set) recount() {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	s.card = c
}

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n, card: s.card}
	copy(c.words, s.words)
	return c
}

// Reset clears every bit without reallocating.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.card = 0
}

func (s *Set) sameShape(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: length mismatch %d != %d", s.n, o.n))
	}
}

// And sets s = s ∩ o and returns s. The cardinality update is fused into the
// word loop the operation already runs.
func (s *Set) And(o *Set) *Set {
	s.sameShape(o)
	c := 0
	for i := range s.words {
		s.words[i] &= o.words[i]
		c += bits.OnesCount64(s.words[i])
	}
	s.card = c
	return s
}

// Or sets s = s ∪ o and returns s.
func (s *Set) Or(o *Set) *Set {
	s.sameShape(o)
	c := 0
	for i := range s.words {
		s.words[i] |= o.words[i]
		c += bits.OnesCount64(s.words[i])
	}
	s.card = c
	return s
}

// Xor sets s = s ⊕ o and returns s. XOR of an approximate output against the
// exact data yields the error string (Algorithm 1, line 2).
func (s *Set) Xor(o *Set) *Set {
	s.sameShape(o)
	c := 0
	for i := range s.words {
		s.words[i] ^= o.words[i]
		c += bits.OnesCount64(s.words[i])
	}
	s.card = c
	return s
}

// AndNot sets s = s \ o and returns s.
func (s *Set) AndNot(o *Set) *Set {
	s.sameShape(o)
	c := 0
	for i := range s.words {
		s.words[i] &^= o.words[i]
		c += bits.OnesCount64(s.words[i])
	}
	s.card = c
	return s
}

// AndCount returns |s ∩ o| without modifying either set.
func (s *Set) AndCount(o *Set) int {
	s.sameShape(o)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & o.words[i])
	}
	return c
}

// AndNotCount returns |s \ o| without modifying either set. This is the
// numerator of the modified Jaccard distance (Algorithm 3): the number of
// fingerprint bits absent from the error string.
func (s *Set) AndNotCount(o *Set) int {
	s.sameShape(o)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w &^ o.words[i])
	}
	return c
}

// MinCardAndNotCount is the fused kernel behind the Distance hot loop
// (Algorithm 3). Following the paper's footnote, whichever of s and o has
// fewer set bits plays the fingerprint role; the kernel picks that side with
// two O(1) cached-cardinality reads and computes |small \ large| in a single
// pass over the words. It returns the smaller and larger cardinalities and
// the difference count. When the cardinalities tie, s is the fingerprint, so
// callers that pass (fp, errorString) keep the paper's orientation.
func MinCardAndNotCount(s, o *Set) (minCard, maxCard, diff int) {
	s.sameShape(o)
	a, b := s, o
	if a.card > b.card {
		a, b = b, a
	}
	c := 0
	for i, w := range a.words {
		c += bits.OnesCount64(w &^ b.words[i])
	}
	return a.card, b.card, c
}

// XorCount returns the Hamming distance |s ⊕ o| without modifying either set.
func (s *Set) XorCount(o *Set) int {
	s.sameShape(o)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w ^ o.words[i])
	}
	return c
}

// OrCount returns |s ∪ o| without modifying either set.
func (s *Set) OrCount(o *Set) int {
	s.sameShape(o)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w | o.words[i])
	}
	return c
}

// Equal reports whether s and o have identical length and contents.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// IsSubset reports whether every set bit of s is also set in o.
func (s *Set) IsSubset(o *Set) bool {
	s.sameShape(o)
	for i, w := range s.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn with the index of every set bit in ascending order. If fn
// returns false iteration stops early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Positions returns the indices of all set bits in ascending order.
func (s *Set) Positions() []uint32 {
	out := make([]uint32, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, uint32(i))
		return true
	})
	return out
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// MarshalBinary encodes the set as an 8-byte little-endian length followed by
// the packed words. It implements encoding.BinaryMarshaler.
func (s *Set) MarshalBinary() ([]byte, error) {
	out := make([]byte, 8+8*len(s.words))
	binary.LittleEndian.PutUint64(out, uint64(s.n))
	for i, w := range s.words {
		binary.LittleEndian.PutUint64(out[8+8*i:], w)
	}
	return out, nil
}

// UnmarshalBinary decodes data produced by MarshalBinary. It implements
// encoding.BinaryUnmarshaler.
func (s *Set) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("bitset: truncated header (%d bytes)", len(data))
	}
	n := int(binary.LittleEndian.Uint64(data))
	if n < 0 {
		return fmt.Errorf("bitset: negative length %d", n)
	}
	nw := (n + wordBits - 1) / wordBits
	if len(data) != 8+8*nw {
		return fmt.Errorf("bitset: want %d payload bytes, have %d", 8*nw, len(data)-8)
	}
	s.n = n
	s.words = make([]uint64, nw)
	for i := range s.words {
		s.words[i] = binary.LittleEndian.Uint64(data[8+8*i:])
	}
	// Defensive: clear any bits past n so invariants hold on crafted input.
	s.trim()
	s.recount()
	return nil
}

// trim zeroes the bits of the final word beyond n.
func (s *Set) trim() {
	if r := s.n % wordBits; r != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(r)) - 1
	}
}

// FromBytes interprets data as a little-endian bit string of len(data)*8
// bits: bit i of the set is bit (i%8) of data[i/8]. This is how memory
// contents become bit sets.
func FromBytes(data []byte) *Set {
	s := New(len(data) * 8)
	for i := 0; i+8 <= len(data); i += 8 {
		s.words[i/8] = binary.LittleEndian.Uint64(data[i:])
	}
	for i := len(data) &^ 7; i < len(data); i++ {
		s.words[i/8] |= uint64(data[i]) << uint(8*(i%8))
	}
	s.recount()
	return s
}

// Bytes returns the set packed as a little-endian byte string. It panics if
// the length is not a multiple of 8 bits.
func (s *Set) Bytes() []byte {
	if s.n%8 != 0 {
		panic("bitset: Bytes requires a byte-aligned length")
	}
	out := make([]byte, s.n/8)
	for i := 0; i < len(out); i++ {
		out[i] = byte(s.words[i/8] >> uint(8*(i%8)))
	}
	return out
}

// String renders small sets as a 0/1 string and large sets as a summary.
func (s *Set) String() string {
	if s.n <= 128 {
		buf := make([]byte, s.n)
		for i := 0; i < s.n; i++ {
			if s.Get(i) {
				buf[i] = '1'
			} else {
				buf[i] = '0'
			}
		}
		return string(buf)
	}
	return fmt.Sprintf("bitset(len=%d, count=%d)", s.n, s.Count())
}
