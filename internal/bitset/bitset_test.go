package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	if s.Count() != 0 {
		t.Fatalf("Count of fresh set = %d, want 0", s.Count())
	}
	for i := 0; i < 100; i++ {
		if s.Get(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetClear(t *testing.T) {
	s := New(130) // spans three words
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Set(i)
		if !s.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Clear(64)
	if s.Get(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			s.Get(i)
		}()
	}
}

func TestBooleanOps(t *testing.T) {
	a := FromPositions(200, []uint32{1, 5, 70, 130, 199})
	b := FromPositions(200, []uint32{5, 6, 70, 131})

	and := a.Clone().And(b)
	if got := and.Positions(); len(got) != 2 || got[0] != 5 || got[1] != 70 {
		t.Fatalf("And positions = %v, want [5 70]", got)
	}
	or := a.Clone().Or(b)
	if or.Count() != 7 {
		t.Fatalf("Or count = %d, want 7", or.Count())
	}
	xor := a.Clone().Xor(b)
	if xor.Count() != 5 {
		t.Fatalf("Xor count = %d, want 5", xor.Count())
	}
	diff := a.Clone().AndNot(b)
	if got := diff.Positions(); len(got) != 3 {
		t.Fatalf("AndNot positions = %v, want 3 entries", got)
	}
}

func TestCountingOpsMatchMutatingOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		a, b := New(n), New(n)
		for i := 0; i < n/3; i++ {
			a.Set(rng.Intn(n))
			b.Set(rng.Intn(n))
		}
		if got, want := a.AndCount(b), a.Clone().And(b).Count(); got != want {
			t.Fatalf("AndCount = %d, want %d", got, want)
		}
		if got, want := a.AndNotCount(b), a.Clone().AndNot(b).Count(); got != want {
			t.Fatalf("AndNotCount = %d, want %d", got, want)
		}
		if got, want := a.XorCount(b), a.Clone().Xor(b).Count(); got != want {
			t.Fatalf("XorCount = %d, want %d", got, want)
		}
		if got, want := a.OrCount(b), a.Clone().Or(b).Count(); got != want {
			t.Fatalf("OrCount = %d, want %d", got, want)
		}
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched lengths did not panic")
		}
	}()
	a.And(b)
}

func TestIsSubset(t *testing.T) {
	a := FromPositions(100, []uint32{3, 50})
	b := FromPositions(100, []uint32{3, 50, 99})
	if !a.IsSubset(b) {
		t.Fatal("a should be subset of b")
	}
	if b.IsSubset(a) {
		t.Fatal("b should not be subset of a")
	}
	if !a.IsSubset(a) {
		t.Fatal("a should be subset of itself")
	}
}

func TestForEachOrderAndEarlyStop(t *testing.T) {
	s := FromPositions(300, []uint32{2, 64, 65, 200, 299})
	var got []int
	s.ForEach(func(i int) bool {
		got = append(got, i)
		return true
	})
	want := []int{2, 64, 65, 200, 299}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
	count := 0
	s.ForEach(func(i int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d bits, want 2", count)
	}
}

func TestNextSet(t *testing.T) {
	s := FromPositions(300, []uint32{2, 64, 299})
	cases := []struct{ from, want int }{
		{0, 2}, {2, 2}, {3, 64}, {65, 299}, {299, 299}, {300, -1}, {-5, 2},
	}
	for _, c := range cases {
		if got := s.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := New(10).NextSet(0); got != -1 {
		t.Errorf("NextSet on empty = %d, want -1", got)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		s := New(n)
		for i := 0; i < n; i += 7 {
			s.Set(i)
		}
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("MarshalBinary: %v", err)
		}
		var got Set
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("UnmarshalBinary: %v", err)
		}
		if !got.Equal(s) {
			t.Fatalf("round trip mismatch for n=%d", n)
		}
	}
}

func TestUnmarshalRejectsBadData(t *testing.T) {
	var s Set
	if err := s.UnmarshalBinary([]byte{1, 2}); err == nil {
		t.Fatal("truncated header accepted")
	}
	if err := s.UnmarshalBinary([]byte{200, 0, 0, 0, 0, 0, 0, 0, 1}); err == nil {
		t.Fatal("bad payload length accepted")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	data := []byte{0x00, 0xFF, 0x5A, 0x01, 0x80, 0x33, 0x7E, 0xAA, 0x55, 0x12, 0x34}
	s := FromBytes(data)
	if s.Len() != len(data)*8 {
		t.Fatalf("Len = %d, want %d", s.Len(), len(data)*8)
	}
	// bit 0 of byte 1 (0xFF) is position 8.
	if !s.Get(8) || s.Get(0) {
		t.Fatal("bit layout wrong")
	}
	got := s.Bytes()
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("Bytes()[%d] = %#x, want %#x", i, got[i], data[i])
		}
	}
}

func TestBytesUnalignedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bytes on unaligned length did not panic")
		}
	}()
	New(9).Bytes()
}

func TestXorIsErrorString(t *testing.T) {
	exact := []byte{0xAB, 0xCD, 0x00, 0xFF}
	approx := []byte{0xAB, 0xCD, 0x01, 0x7F}
	es := FromBytes(approx).Xor(FromBytes(exact))
	pos := es.Positions()
	if len(pos) != 2 || pos[0] != 16 || pos[1] != 31 {
		t.Fatalf("error string positions = %v, want [16 31]", pos)
	}
}

func TestString(t *testing.T) {
	s := FromPositions(4, []uint32{1, 3})
	if got := s.String(); got != "0101" {
		t.Fatalf("String = %q, want 0101", got)
	}
	big := New(1000)
	big.Set(3)
	if got := big.String(); got != "bitset(len=1000, count=1)" {
		t.Fatalf("String = %q", got)
	}
}

// Property: And is intersection — a bit is set in the result iff set in both.
func TestQuickAndSemantics(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		const n = 1 << 16
		a, b := New(n), New(n)
		for _, x := range xs {
			a.Set(int(x))
		}
		for _, y := range ys {
			b.Set(int(y))
		}
		r := a.Clone().And(b)
		for _, x := range xs {
			if r.Get(int(x)) != (a.Get(int(x)) && b.Get(int(x))) {
				return false
			}
		}
		return r.Count() == a.AndCount(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Xor with self is empty; Xor is involutive.
func TestQuickXorInvolution(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		const n = 1 << 16
		a, b := New(n), New(n)
		for _, x := range xs {
			a.Set(int(x))
		}
		for _, y := range ys {
			b.Set(int(y))
		}
		if a.Clone().Xor(a).Count() != 0 {
			return false
		}
		return a.Clone().Xor(b).Xor(b).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: inclusion–exclusion |a|+|b| = |a∪b|+|a∩b|.
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		const n = 1 << 16
		a, b := New(n), New(n)
		for _, x := range xs {
			a.Set(int(x))
		}
		for _, y := range ys {
			b.Set(int(y))
		}
		return a.Count()+b.Count() == a.OrCount(b)+a.AndCount(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: marshal/unmarshal is the identity.
func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(xs []uint16) bool {
		const n = 1 << 16
		a := New(n)
		for _, x := range xs {
			a.Set(int(x))
		}
		data, err := a.MarshalBinary()
		if err != nil {
			return false
		}
		var got Set
		if err := got.UnmarshalBinary(data); err != nil {
			return false
		}
		return got.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
