package bitset

import (
	"testing"
	"testing/quick"
)

func TestNewSparseSortsAndDedups(t *testing.T) {
	s := NewSparse([]uint32{9, 3, 3, 1, 9, 9})
	want := Sparse{1, 3, 9}
	if !s.Equal(want) {
		t.Fatalf("NewSparse = %v, want %v", s, want)
	}
	if s.Card() != 3 {
		t.Fatalf("Card = %d, want 3", s.Card())
	}
}

func TestSparseContains(t *testing.T) {
	s := NewSparse([]uint32{2, 4, 8})
	for _, p := range []uint32{2, 4, 8} {
		if !s.Contains(p) {
			t.Errorf("Contains(%d) = false", p)
		}
	}
	for _, p := range []uint32{0, 3, 9} {
		if s.Contains(p) {
			t.Errorf("Contains(%d) = true", p)
		}
	}
	if Sparse(nil).Contains(1) {
		t.Error("empty set contains 1")
	}
}

func TestSparseSetOps(t *testing.T) {
	a := NewSparse([]uint32{1, 3, 5, 7})
	b := NewSparse([]uint32{3, 4, 7, 10})
	if got := a.Intersect(b); !got.Equal(Sparse{3, 7}) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := a.Union(b); !got.Equal(Sparse{1, 3, 4, 5, 7, 10}) {
		t.Fatalf("Union = %v", got)
	}
	if got := a.IntersectCount(b); got != 2 {
		t.Fatalf("IntersectCount = %d, want 2", got)
	}
	if got := a.DiffCount(b); got != 2 {
		t.Fatalf("DiffCount = %d, want 2", got)
	}
	if !(Sparse{3, 7}).IsSubset(a) {
		t.Fatal("subset check failed")
	}
	if a.IsSubset(b) {
		t.Fatal("a is not a subset of b")
	}
}

func TestSparseEmptyOps(t *testing.T) {
	var e Sparse
	a := NewSparse([]uint32{1, 2})
	if got := e.Intersect(a); got.Card() != 0 {
		t.Fatalf("empty Intersect = %v", got)
	}
	if got := e.Union(a); !got.Equal(a) {
		t.Fatalf("empty Union = %v", got)
	}
	if !e.IsSubset(a) || !e.IsSubset(e) {
		t.Fatal("empty set must be subset of everything")
	}
}

func TestSparseDense(t *testing.T) {
	s := NewSparse([]uint32{0, 64, 100})
	d := s.Dense(128)
	if d.Count() != 3 || !d.Get(64) {
		t.Fatalf("Dense conversion wrong: %v", d)
	}
}

func TestSparseMarshalRoundTrip(t *testing.T) {
	s := NewSparse([]uint32{5, 10, 4000000000})
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSparse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Fatalf("round trip = %v, want %v", got, s)
	}
}

func TestUnmarshalSparseRejectsBadData(t *testing.T) {
	if _, err := UnmarshalSparse([]byte{1}); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, err := UnmarshalSparse([]byte{2, 0, 0, 0, 1, 0, 0, 0}); err == nil {
		t.Fatal("short payload accepted")
	}
	// Count 2, positions [5,5]: not strictly increasing.
	bad := []byte{2, 0, 0, 0, 5, 0, 0, 0, 5, 0, 0, 0}
	if _, err := UnmarshalSparse(bad); err == nil {
		t.Fatal("non-increasing positions accepted")
	}
}

// Property: sparse ops agree with dense ops.
func TestQuickSparseMatchesDense(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		const n = 1 << 16
		xp := make([]uint32, len(xs))
		for i, x := range xs {
			xp[i] = uint32(x)
		}
		yp := make([]uint32, len(ys))
		for i, y := range ys {
			yp[i] = uint32(y)
		}
		sa, sb := NewSparse(xp), NewSparse(yp)
		da, db := sa.Dense(n), sb.Dense(n)
		if sa.IntersectCount(sb) != da.AndCount(db) {
			return false
		}
		if sa.Union(sb).Card() != da.OrCount(db) {
			return false
		}
		return sa.DiffCount(sb) == da.AndNotCount(db)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Union is commutative and Intersect distributes size-wise.
func TestQuickSparseAlgebra(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		xp := make([]uint32, len(xs))
		for i, x := range xs {
			xp[i] = uint32(x)
		}
		yp := make([]uint32, len(ys))
		for i, y := range ys {
			yp[i] = uint32(y)
		}
		a, b := NewSparse(xp), NewSparse(yp)
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			return false
		}
		return a.Card()+b.Card() == a.Union(b).Card()+a.IntersectCount(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
