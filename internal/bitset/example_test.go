package bitset_test

import (
	"fmt"

	"probablecause/internal/bitset"
)

// ExampleSet_Xor derives an error string: XOR of an approximate output
// against the exact data.
func ExampleSet_Xor() {
	exact := bitset.FromBytes([]byte{0xFF, 0x00})
	approx := bitset.FromBytes([]byte{0xFD, 0x04})
	errors := approx.Xor(exact)
	fmt.Println(errors.Positions())
	// Output:
	// [1 10]
}

// ExampleSparse shows the compact fingerprint representation used by the
// stitching attack.
func ExampleSparse() {
	a := bitset.NewSparse([]uint32{9, 3, 3, 1})
	b := bitset.NewSparse([]uint32{3, 9, 20})
	fmt.Println("a:", a)
	fmt.Println("a∩b:", a.Intersect(b))
	fmt.Println("|a\\b|:", a.DiffCount(b))
	// Output:
	// a: [1 3 9]
	// a∩b: [3 9]
	// |a\b|: 1
}
