package bitset

import (
	"fmt"
	"math/bits"
)

// This file is the band-major bit-sliced verification layout behind the
// identification hot loop (PR 8). The scalar kernel — MinCardAndNotCount —
// streams ONE fingerprint's words per call, so verifying a large candidate
// set (or running the verified fallback scan at 100k+ entries) pays a
// pointer chase and a fresh pass over the query per candidate. The sliced
// layout transposes a block of B fingerprints so word w of all B entries is
// adjacent in memory: one sweep of the query's words then verifies the whole
// block with sequential loads, each query word loaded once per block instead
// of once per entry.
//
// The kernel leans on a set identity that makes it orientation-free: for any
// sets a, b,
//
//	|a \ b| = |a| − |a ∩ b|
//
// so whichever operand plays the fingerprint role (the smaller one, per the
// paper's footnote), the difference count follows from the cached
// cardinalities and the INTERSECTION count alone. The block kernel therefore
// needs only AND+popcount per word pair — no per-entry role branch — and
// still reproduces MinCardAndNotCount's (minCard, maxCard, diff) triple
// bit-for-bit (the fuzz test in fuzz_test.go holds it to that).
//
// Each block additionally caches the OR-union of its member words and its
// minimum member cardinality. |q ∩ e| ≤ |q ∩ (e₁∪…∪e_B)| for every member e,
// so one sweep over the union upper-bounds every member's intersection at
// once — the cardinality-bound prune the identification layer uses to skip
// whole blocks whose modified-Jaccard threshold is provably unreachable
// (see fingerprint.SlicedDB for the inequality).

// DefaultSlicedEntries is the block width B a zero value selects: wide
// enough that the union prune amortizes its sweep over many entries (the
// prune pass touches 1/B of the words a full scan would), narrow enough
// that at the ~1 % fingerprint densities the corpus produces the union stays
// sparse (≈ 1−(1−0.01)^64 ≈ 47 % occupancy) and the bound keeps separating
// non-matching blocks from the threshold.
const DefaultSlicedEntries = 64

// KernelResult is one entry's verification outcome: exactly the values
// MinCardAndNotCount(entry, query) returns.
type KernelResult struct {
	MinCard int // the smaller of the entry and query cardinalities
	MaxCard int // the larger
	Diff    int // |smaller \ larger|
}

// SlicedBlock packs up to B fingerprints of a common length in word-
// interleaved (band-major) order: words[w*B + j] is word w of entry j. The
// zero value is not usable; construct through a SlicedArena (or
// newSlicedBlock in tests).
type SlicedBlock struct {
	b       int      // block width B (entry capacity)
	n       int      // entries used
	nbits   int      // bits per entry
	wordsPW int      // words per entry
	words   []uint64 // wordsPW*b, interleaved: words[w*b + j]
	union   []uint64 // wordsPW: OR of the member entries' words
	cards   []int    // per-entry cached cardinality
	minCard int      // min of cards[0:n]; 0 when empty
}

// NewSlicedBlock returns an empty block of width b for nbits-bit entries.
// External packers (the segment writer in internal/store) use it to build
// the interleaved layout once, then persist Words/Union verbatim.
func NewSlicedBlock(nbits, b int) *SlicedBlock { return newSlicedBlock(nbits, b) }

// ViewSlicedBlock wraps externally owned storage — typically sections of an
// mmap'd segment file — as a read-only SlicedBlock: words is the
// word-interleaved array (words[w*b + j], len wordsPerEntry*b), union the
// OR-union words (len wordsPerEntry), cards the n per-entry cardinalities.
// The slices are aliased, not copied, so the block reads straight from the
// mapping; Add on a view panics by way of the full-block check when n == b,
// and must not be called otherwise.
func ViewSlicedBlock(nbits, b, n int, words, union []uint64, cards []int) *SlicedBlock {
	if nbits < 0 || b <= 0 || n < 0 || n > b {
		panic(fmt.Sprintf("bitset: sliced view shape nbits=%d B=%d n=%d", nbits, b, n))
	}
	wpw := (nbits + wordBits - 1) / wordBits
	if len(words) != wpw*b || len(union) != wpw || len(cards) != n {
		panic(fmt.Sprintf("bitset: sliced view lengths words=%d union=%d cards=%d (want %d, %d, %d)",
			len(words), len(union), len(cards), wpw*b, wpw, n))
	}
	blk := &SlicedBlock{b: b, n: n, nbits: nbits, wordsPW: wpw, words: words, union: union, cards: cards}
	for j, c := range cards {
		if j == 0 || c < blk.minCard {
			blk.minCard = c
		}
	}
	return blk
}

func newSlicedBlock(nbits, b int) *SlicedBlock {
	if nbits < 0 || b <= 0 {
		panic(fmt.Sprintf("bitset: sliced block shape nbits=%d B=%d", nbits, b))
	}
	wpw := (nbits + wordBits - 1) / wordBits
	return &SlicedBlock{
		b:       b,
		nbits:   nbits,
		wordsPW: wpw,
		words:   make([]uint64, wpw*b),
		union:   make([]uint64, wpw),
		cards:   make([]int, 0, b),
	}
}

// Len returns the number of entries packed into the block.
func (blk *SlicedBlock) Len() int { return blk.n }

// Cap returns the block width B.
func (blk *SlicedBlock) Cap() int { return blk.b }

// Card returns the cached cardinality of entry j.
func (blk *SlicedBlock) Card(j int) int { return blk.cards[j] }

// MinCard returns the minimum cardinality across the packed entries, or 0
// for an empty block.
func (blk *SlicedBlock) MinCard() int { return blk.minCard }

// Add scatters one fingerprint into the next free slot and returns the slot
// index. It panics when the block is full or the lengths mismatch.
func (blk *SlicedBlock) Add(s *Set) int {
	if blk.n >= blk.b {
		panic("bitset: sliced block full")
	}
	if s.n != blk.nbits {
		panic(fmt.Sprintf("bitset: sliced length mismatch %d != %d", s.n, blk.nbits))
	}
	j := blk.n
	for w, sw := range s.words {
		blk.words[w*blk.b+j] = sw
		blk.union[w] |= sw
	}
	if blk.n == 0 || s.card < blk.minCard {
		blk.minCard = s.card
	}
	blk.cards = append(blk.cards, s.card)
	blk.n++
	return j
}

// UnionAndCount returns |q ∩ (e₁ ∪ … ∪ e_n)| — an upper bound on
// |q ∩ e_j| for every member j, computed in one pass over the block union.
func (blk *SlicedBlock) UnionAndCount(q *Set) int {
	blk.checkQuery(q)
	c := 0
	for w, uw := range blk.union {
		c += bits.OnesCount64(uw & q.words[w])
	}
	return c
}

// MinCardAndNotCounts runs the fused Algorithm 3 kernel for every packed
// entry in one sweep over the query's words: dst[j] holds exactly what
// MinCardAndNotCount(entry_j, q) returns. dst is reused when it has
// capacity; the returned slice has length Len().
func (blk *SlicedBlock) MinCardAndNotCounts(q *Set, dst []KernelResult) []KernelResult {
	blk.checkQuery(q)
	if cap(dst) < blk.n {
		dst = make([]KernelResult, blk.n)
	}
	dst = dst[:blk.n]
	for j := range dst {
		dst[j] = KernelResult{}
	}
	// Accumulate |entry_j ∩ q| into Diff; the finalize loop below converts
	// it to the difference count via |a \ b| = |a| − |a ∩ b|.
	for w := 0; w < blk.wordsPW; w++ {
		qw := q.words[w]
		if qw == 0 {
			continue // sparse queries: a zero query word intersects nothing
		}
		row := blk.words[w*blk.b : w*blk.b+blk.n]
		for j, ew := range row {
			dst[j].Diff += bits.OnesCount64(ew & qw)
		}
	}
	qc := q.card
	for j := range dst {
		ec, inter := blk.cards[j], dst[j].Diff
		if ec <= qc {
			dst[j] = KernelResult{MinCard: ec, MaxCard: qc, Diff: ec - inter}
		} else {
			dst[j] = KernelResult{MinCard: qc, MaxCard: ec, Diff: qc - inter}
		}
	}
	return dst
}

// MinCardAndNotCountOne runs the fused kernel for the single packed entry j —
// the triple MinCardAndNotCount(entry_j, q) returns — reading only entry j's
// column of the interleaved words. Candidate verification over an mmap'd
// segment uses it: LSH candidates are few and scattered, so sweeping the
// whole block for one entry would waste the layout's bandwidth.
func (blk *SlicedBlock) MinCardAndNotCountOne(q *Set, j int) KernelResult {
	blk.checkQuery(q)
	if j < 0 || j >= blk.n {
		panic(fmt.Sprintf("bitset: sliced entry %d out of range [0,%d)", j, blk.n))
	}
	inter := 0
	for w := 0; w < blk.wordsPW; w++ {
		if qw := q.words[w]; qw != 0 {
			inter += bits.OnesCount64(blk.words[w*blk.b+j] & qw)
		}
	}
	ec, qc := blk.cards[j], q.card
	if ec <= qc {
		return KernelResult{MinCard: ec, MaxCard: qc, Diff: ec - inter}
	}
	return KernelResult{MinCard: qc, MaxCard: ec, Diff: qc - inter}
}

// Words returns the word-interleaved backing array (shared, not copied):
// words[w*Cap() + j] is word w of entry j. Segment writers persist it.
func (blk *SlicedBlock) Words() []uint64 { return blk.words }

// Union returns the OR-union words (shared, not copied).
func (blk *SlicedBlock) Union() []uint64 { return blk.union }

func (blk *SlicedBlock) checkQuery(q *Set) {
	if q.n != blk.nbits {
		panic(fmt.Sprintf("bitset: sliced query length %d != %d", q.n, blk.nbits))
	}
}

// SlicedArena is an append-only sequence of SlicedBlocks holding
// fingerprints in add order: global entry i lives in block i/B, slot i%B.
// It is the sliced mirror of a fingerprint database's entry slice.
type SlicedArena struct {
	nbits  int
	per    int // entries per block (B)
	count  int
	blocks []*SlicedBlock
}

// NewSlicedArena returns an empty arena for nbits-bit fingerprints packed
// blockEntries per block (0 selects DefaultSlicedEntries).
func NewSlicedArena(nbits, blockEntries int) *SlicedArena {
	if blockEntries <= 0 {
		blockEntries = DefaultSlicedEntries
	}
	return &SlicedArena{nbits: nbits, per: blockEntries}
}

// Len returns the number of fingerprints packed.
func (a *SlicedArena) Len() int { return a.count }

// BlockEntries returns the block width B.
func (a *SlicedArena) BlockEntries() int { return a.per }

// NumBlocks returns the number of blocks (the last may be partial).
func (a *SlicedArena) NumBlocks() int { return len(a.blocks) }

// Block returns block i; entry j of that block is global index i*BlockEntries+j.
func (a *SlicedArena) Block(i int) *SlicedBlock { return a.blocks[i] }

// Add packs one fingerprint and returns its global index. The first Add
// pins the arena's bit length when it was constructed with nbits 0.
func (a *SlicedArena) Add(s *Set) int {
	if a.count == 0 && a.nbits == 0 {
		a.nbits = s.Len()
	}
	if len(a.blocks) == 0 || a.blocks[len(a.blocks)-1].n >= a.per {
		a.blocks = append(a.blocks, newSlicedBlock(a.nbits, a.per))
	}
	a.blocks[len(a.blocks)-1].Add(s)
	i := a.count
	a.count++
	return i
}
