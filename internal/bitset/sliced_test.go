package bitset

import (
	"testing"

	"probablecause/internal/prng"
)

// randomSet builds a set of n bits with roughly density*n bits set, as a pure
// function of seed.
func randomSet(n int, density float64, seed uint64) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if prng.Uniform01(prng.Hash(seed, uint64(i))) < density {
			s.Set(i)
		}
	}
	return s
}

// TestSlicedKernelMatchesScalar: the block kernel must return exactly the
// triple the scalar fused kernel returns, per entry, across densities that
// exercise both orientations (entry smaller and entry larger than the query).
func TestSlicedKernelMatchesScalar(t *testing.T) {
	const n = 1000 // deliberately not word-aligned
	for _, width := range []int{1, 3, DefaultSlicedEntries} {
		arena := NewSlicedArena(n, width)
		var sets []*Set
		densities := []float64{0, 0.001, 0.01, 0.2, 0.9, 1}
		for i := 0; i < 2*width+3; i++ {
			s := randomSet(n, densities[i%len(densities)], 0xB10C+uint64(i))
			sets = append(sets, s)
			arena.Add(s)
		}
		queries := []*Set{
			New(n), // empty
			randomSet(n, 0.01, 0x51),
			randomSet(n, 0.5, 0x52),
			sets[0].Clone(), // exact duplicate of an entry
		}
		var dst []KernelResult
		for qi, q := range queries {
			for bi := 0; bi < arena.NumBlocks(); bi++ {
				blk := arena.Block(bi)
				dst = blk.MinCardAndNotCounts(q, dst)
				for j, r := range dst {
					g := bi*width + j
					minC, maxC, diff := MinCardAndNotCount(sets[g], q)
					if r.MinCard != minC || r.MaxCard != maxC || r.Diff != diff {
						t.Fatalf("width=%d query=%d entry=%d: kernel (%d,%d,%d) != scalar (%d,%d,%d)",
							width, qi, g, r.MinCard, r.MaxCard, r.Diff, minC, maxC, diff)
					}
				}
			}
		}
	}
}

// TestSlicedUnionBound: the block union intersection must upper-bound every
// member's intersection with the query — the inequality the prune rests on.
func TestSlicedUnionBound(t *testing.T) {
	const n = 512
	arena := NewSlicedArena(n, 8)
	var sets []*Set
	for i := 0; i < 20; i++ {
		s := randomSet(n, 0.05, 0xDEAD+uint64(i))
		sets = append(sets, s)
		arena.Add(s)
	}
	q := randomSet(n, 0.1, 0xF00D)
	for bi := 0; bi < arena.NumBlocks(); bi++ {
		blk := arena.Block(bi)
		bound := blk.UnionAndCount(q)
		for j := 0; j < blk.Len(); j++ {
			g := bi*8 + j
			if inter := sets[g].AndCount(q); inter > bound {
				t.Fatalf("entry %d: |q∩e| = %d exceeds union bound %d", g, inter, bound)
			}
		}
	}
}

// TestSlicedArenaBookkeeping: indices, block shapes, and cached cards.
func TestSlicedArenaBookkeeping(t *testing.T) {
	arena := NewSlicedArena(0, 4) // length pinned by first Add
	for i := 0; i < 10; i++ {
		s := randomSet(256, 0.1, uint64(i))
		if got := arena.Add(s); got != i {
			t.Fatalf("Add returned %d, want %d", got, i)
		}
		bi, j := i/4, i%4
		blk := arena.Block(bi)
		if blk.Card(j) != s.Count() {
			t.Fatalf("entry %d: cached card %d != %d", i, blk.Card(j), s.Count())
		}
	}
	if arena.Len() != 10 || arena.NumBlocks() != 3 {
		t.Fatalf("arena holds %d entries in %d blocks, want 10 in 3", arena.Len(), arena.NumBlocks())
	}
	if last := arena.Block(2); last.Len() != 2 || last.Cap() != 4 {
		t.Fatalf("tail block len=%d cap=%d, want 2,4", last.Len(), last.Cap())
	}
	min := arena.Block(0).Card(0)
	for j := 1; j < 4; j++ {
		if c := arena.Block(0).Card(j); c < min {
			min = c
		}
	}
	if arena.Block(0).MinCard() != min {
		t.Fatalf("block min card %d, want %d", arena.Block(0).MinCard(), min)
	}
}

// TestSlicedShapePanics: mismatched lengths and overfull blocks must panic
// exactly like the dense Set's sameShape discipline.
func TestSlicedShapePanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	blk := newSlicedBlock(128, 2)
	blk.Add(New(128))
	expectPanic("length-mismatched Add", func() { blk.Add(New(64)) })
	expectPanic("length-mismatched kernel", func() { blk.MinCardAndNotCounts(New(64), nil) })
	expectPanic("length-mismatched union", func() { blk.UnionAndCount(New(64)) })
	blk.Add(New(128))
	expectPanic("overfull Add", func() { blk.Add(New(128)) })
}
