// Package imaging is the stand-in for the paper's image workload: the CImg
// gradient edge-detection program whose approximate outputs drive the
// end-to-end experiment (§7.6, Figure 12), and the 200×154 black-and-white
// test image of Figure 5.
//
// It provides a minimal grayscale image type, binary PGM (P5) encode/decode
// for inspecting results on disk, deterministic synthetic test images, and a
// Sobel gradient edge detector.
package imaging

import (
	"fmt"

	"probablecause/internal/prng"
)

// Image is an 8-bit grayscale image in row-major order.
type Image struct {
	W, H int
	Pix  []uint8
}

// New returns a black image of the given size. It panics on non-positive
// dimensions.
func New(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: bad dimensions %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y); coordinates outside the image clamp to the
// border (convenient for convolution kernels).
func (im *Image) At(x, y int) uint8 {
	if x < 0 {
		x = 0
	}
	if x >= im.W {
		x = im.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= im.H {
		y = im.H - 1
	}
	return im.Pix[y*im.W+x]
}

// Set writes the pixel at (x, y); out-of-range coordinates are ignored.
func (im *Image) Set(x, y int, v uint8) {
	if x < 0 || x >= im.W || y < 0 || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = v
}

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	c := New(im.W, im.H)
	copy(c.Pix, im.Pix)
	return c
}

// Bytes returns the raw pixel buffer — the data that gets stored in
// (approximate) memory.
func (im *Image) Bytes() []byte { return im.Pix }

// FromBytes wraps a pixel buffer read back from memory as an image.
func FromBytes(w, h int, data []byte) (*Image, error) {
	if len(data) != w*h {
		return nil, fmt.Errorf("imaging: %d bytes for %dx%d image", len(data), w, h)
	}
	return &Image{W: w, H: h, Pix: data}, nil
}

// DiffCount returns the number of differing pixels between two same-sized
// images.
func (im *Image) DiffCount(o *Image) (int, error) {
	if im.W != o.W || im.H != o.H {
		return 0, fmt.Errorf("imaging: size mismatch %dx%d vs %dx%d", im.W, im.H, o.W, o.H)
	}
	n := 0
	for i := range im.Pix {
		if im.Pix[i] != o.Pix[i] {
			n++
		}
	}
	return n, nil
}

// EncodePGM serializes the image as binary PGM (P5).
func (im *Image) EncodePGM() []byte {
	header := fmt.Sprintf("P5\n%d %d\n255\n", im.W, im.H)
	out := make([]byte, 0, len(header)+len(im.Pix))
	out = append(out, header...)
	return append(out, im.Pix...)
}

// DecodePGM parses a binary PGM (P5) image with maxval ≤ 255. Comment lines
// (#) in the header are honored.
func DecodePGM(data []byte) (*Image, error) {
	pos := 0
	token := func() (string, error) {
		// Skip whitespace and comments.
		for pos < len(data) {
			c := data[pos]
			if c == '#' {
				for pos < len(data) && data[pos] != '\n' {
					pos++
				}
				continue
			}
			if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
				pos++
				continue
			}
			break
		}
		start := pos
		for pos < len(data) {
			c := data[pos]
			if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '#' {
				break
			}
			pos++
		}
		if start == pos {
			return "", fmt.Errorf("imaging: truncated PGM header")
		}
		return string(data[start:pos]), nil
	}
	magic, err := token()
	if err != nil {
		return nil, err
	}
	if magic != "P5" {
		return nil, fmt.Errorf("imaging: not a binary PGM (magic %q)", magic)
	}
	var w, h, maxv int
	for _, dst := range []*int{&w, &h, &maxv} {
		t, err := token()
		if err != nil {
			return nil, err
		}
		if _, err := fmt.Sscanf(t, "%d", dst); err != nil {
			return nil, fmt.Errorf("imaging: bad PGM header field %q", t)
		}
	}
	if w <= 0 || h <= 0 || maxv <= 0 || maxv > 255 {
		return nil, fmt.Errorf("imaging: unsupported PGM %dx%d maxval %d", w, h, maxv)
	}
	pos++ // single whitespace after maxval
	if len(data)-pos < w*h {
		return nil, fmt.Errorf("imaging: PGM payload truncated: %d of %d bytes", len(data)-pos, w*h)
	}
	im := New(w, h)
	copy(im.Pix, data[pos:pos+w*h])
	return im, nil
}

// Synthetic renders a deterministic grayscale test scene — a gradient
// background with circles and rectangles — the kind of structured content
// the paper's sample photo provides (Figure 12).
func Synthetic(w, h int, seed uint64) *Image {
	im := New(w, h)
	rng := prng.New(prng.Hash(seed, 0x1A6))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Pix[y*w+x] = uint8(64 + (128*x)/w + (32*y)/h)
		}
	}
	// Rectangles.
	for i := 0; i < 4; i++ {
		x0, y0 := rng.Intn(w), rng.Intn(h)
		rw, rh := 4+rng.Intn(w/3), 4+rng.Intn(h/3)
		v := uint8(rng.Intn(256))
		for y := y0; y < y0+rh && y < h; y++ {
			for x := x0; x < x0+rw && x < w; x++ {
				im.Pix[y*w+x] = v
			}
		}
	}
	// Circles.
	for i := 0; i < 4; i++ {
		cx, cy := rng.Intn(w), rng.Intn(h)
		r := 3 + rng.Intn(min(w, h)/4)
		v := uint8(rng.Intn(256))
		for y := cy - r; y <= cy+r; y++ {
			for x := cx - r; x <= cx+r; x++ {
				dx, dy := x-cx, y-cy
				if dx*dx+dy*dy <= r*r {
					im.Set(x, y, v)
				}
			}
		}
	}
	return im
}

// SobelEdges returns the Sobel gradient magnitude of the image — the
// edge-detection output the victim publishes in the end-to-end experiment.
func SobelEdges(im *Image) *Image {
	out := New(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			gx := -int(im.At(x-1, y-1)) + int(im.At(x+1, y-1)) +
				-2*int(im.At(x-1, y)) + 2*int(im.At(x+1, y)) +
				-int(im.At(x-1, y+1)) + int(im.At(x+1, y+1))
			gy := -int(im.At(x-1, y-1)) - 2*int(im.At(x, y-1)) - int(im.At(x+1, y-1)) +
				int(im.At(x-1, y+1)) + 2*int(im.At(x, y+1)) + int(im.At(x+1, y+1))
			if gx < 0 {
				gx = -gx
			}
			if gy < 0 {
				gy = -gy
			}
			m := (gx + gy) / 2
			if m > 255 {
				m = 255
			}
			out.Pix[y*im.W+x] = uint8(m)
		}
	}
	return out
}

// Threshold returns a black/white image: 255 where the pixel is ≥ level,
// else 0. Figure 5 uses a black-and-white image.
func (im *Image) Threshold(level uint8) *Image {
	out := New(im.W, im.H)
	for i, p := range im.Pix {
		if p >= level {
			out.Pix[i] = 255
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
