package imaging

import (
	"bytes"
	"testing"
)

func TestNewAndAccess(t *testing.T) {
	im := New(10, 5)
	im.Set(3, 2, 200)
	if im.At(3, 2) != 200 {
		t.Fatal("Set/At roundtrip failed")
	}
	// Clamped reads.
	im.Set(0, 0, 7)
	im.Set(9, 4, 9)
	if im.At(-5, -5) != 7 || im.At(100, 100) != 9 {
		t.Fatal("border clamping wrong")
	}
	// Out-of-range writes ignored.
	im.Set(-1, 0, 99)
	im.Set(10, 0, 99)
	if im.At(0, 0) != 7 {
		t.Fatal("out-of-range Set corrupted image")
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 5) did not panic")
		}
	}()
	New(0, 5)
}

func TestBytesRoundTrip(t *testing.T) {
	im := Synthetic(20, 10, 1)
	got, err := FromBytes(20, 10, im.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := got.DiffCount(im); d != 0 {
		t.Fatalf("round trip differs in %d pixels", d)
	}
	if _, err := FromBytes(5, 5, make([]byte, 10)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestDiffCount(t *testing.T) {
	a := New(4, 4)
	b := New(4, 4)
	b.Set(1, 1, 255)
	b.Set(2, 3, 1)
	if d, err := a.DiffCount(b); err != nil || d != 2 {
		t.Fatalf("DiffCount = %d, %v", d, err)
	}
	if _, err := a.DiffCount(New(5, 4)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestPGMRoundTrip(t *testing.T) {
	im := Synthetic(33, 17, 2)
	enc := im.EncodePGM()
	if !bytes.HasPrefix(enc, []byte("P5\n33 17\n255\n")) {
		t.Fatalf("header = %q", enc[:16])
	}
	dec, err := DecodePGM(enc)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := dec.DiffCount(im); d != 0 {
		t.Fatalf("PGM round trip differs in %d pixels", d)
	}
}

func TestDecodePGMWithComments(t *testing.T) {
	data := append([]byte("P5\n# a comment\n2 2\n# another\n255\n"), 1, 2, 3, 4)
	im, err := DecodePGM(data)
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 2 || im.H != 2 || im.Pix[3] != 4 {
		t.Fatalf("decoded %+v", im)
	}
}

func TestDecodePGMErrors(t *testing.T) {
	cases := [][]byte{
		[]byte("P6\n2 2\n255\n....xxxx...."), // wrong magic
		[]byte("P5\n2 2\n255\n" + "ab"),      // truncated payload
		[]byte("P5\n0 2\n255\n"),             // zero width
		[]byte("P5\n2 2\n70000\n" + "abcd"),  // maxval too large
		[]byte("P5"),                         // truncated header
		[]byte("P5\nx 2\n255\n" + "abcd"),    // non-numeric
	}
	for i, c := range cases {
		if _, err := DecodePGM(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(50, 40, 7)
	b := Synthetic(50, 40, 7)
	if d, _ := a.DiffCount(b); d != 0 {
		t.Fatal("Synthetic is not deterministic")
	}
	c := Synthetic(50, 40, 8)
	if d, _ := a.DiffCount(c); d == 0 {
		t.Fatal("different seeds produced identical scenes")
	}
}

func TestSobelFlatImageIsBlack(t *testing.T) {
	im := New(16, 16)
	for i := range im.Pix {
		im.Pix[i] = 100
	}
	edges := SobelEdges(im)
	for i, p := range edges.Pix {
		if p != 0 {
			t.Fatalf("edge response %d at flat pixel %d", p, i)
		}
	}
}

func TestSobelDetectsStep(t *testing.T) {
	im := New(16, 16)
	for y := 0; y < 16; y++ {
		for x := 8; x < 16; x++ {
			im.Set(x, y, 255)
		}
	}
	edges := SobelEdges(im)
	// Strong response on the step columns (7 and 8), none far away.
	if edges.At(7, 8) == 0 || edges.At(8, 8) == 0 {
		t.Fatal("no edge response at the step")
	}
	if edges.At(2, 8) != 0 || edges.At(13, 8) != 0 {
		t.Fatal("edge response far from the step")
	}
}

func TestThreshold(t *testing.T) {
	im := New(4, 1)
	im.Pix = []uint8{0, 99, 100, 255}
	bw := im.Threshold(100)
	want := []uint8{0, 0, 255, 255}
	for i := range want {
		if bw.Pix[i] != want[i] {
			t.Fatalf("threshold = %v, want %v", bw.Pix, want)
		}
	}
}

func TestFigure5ImageShape(t *testing.T) {
	// The paper's Figure 5 image: 200×154 black and white.
	im := Synthetic(200, 154, 5).Threshold(128)
	if len(im.Bytes()) != 200*154 {
		t.Fatalf("buffer = %d bytes", len(im.Bytes()))
	}
	black, white := 0, 0
	for _, p := range im.Pix {
		switch p {
		case 0:
			black++
		case 255:
			white++
		default:
			t.Fatal("threshold produced gray pixel")
		}
	}
	if black == 0 || white == 0 {
		t.Fatal("degenerate black/white image")
	}
}
