package imaging

import "testing"

// FuzzDecodePGM exercises the PGM parser with arbitrary input: it must
// never panic, and any image it accepts must re-encode/re-decode to itself.
func FuzzDecodePGM(f *testing.F) {
	f.Add([]byte("P5\n2 2\n255\n\x01\x02\x03\x04"))
	f.Add([]byte("P5\n# comment\n1 1\n255\n\x00"))
	f.Add([]byte("P6\n2 2\n255\nxxxx"))
	f.Add([]byte("P5"))
	f.Add([]byte("P5\n0 0\n255\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := DecodePGM(data)
		if err != nil {
			return
		}
		if im.W <= 0 || im.H <= 0 || len(im.Pix) != im.W*im.H {
			t.Fatalf("accepted malformed image %dx%d with %d pixels", im.W, im.H, len(im.Pix))
		}
		round, err := DecodePGM(im.EncodePGM())
		if err != nil {
			t.Fatalf("re-decode of accepted image failed: %v", err)
		}
		if d, _ := round.DiffCount(im); d != 0 {
			t.Fatalf("re-decode differs in %d pixels", d)
		}
	})
}
