package imaging_test

import (
	"fmt"

	"probablecause/internal/imaging"
)

// Example runs the victim pipeline of §7.6: synthesize a photo, edge-detect
// it, and serialize it for storage in (approximate) memory.
func Example() {
	photo := imaging.Synthetic(200, 154, 7)
	edges := imaging.SobelEdges(photo).Threshold(64)
	fmt.Println("buffer bytes:", len(edges.Bytes()))
	pgm := edges.EncodePGM()
	back, err := imaging.DecodePGM(pgm)
	if err != nil {
		panic(err)
	}
	d, _ := back.DiffCount(edges)
	fmt.Println("PGM round-trip pixel diffs:", d)
	// Output:
	// buffer bytes: 30800
	// PGM round-trip pixel diffs: 0
}
