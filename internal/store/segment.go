// segment.go: the immutable PCSEG01 segment file — columnar encoding,
// CRC-rooted load-time verification, and the per-segment query kernels.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync/atomic"
	"unsafe"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
	"probablecause/internal/minhash"
	"probablecause/internal/samplefile"
)

// Segment file format PCSEG01 — one immutable flush of the memtable.
//
//	header   (44 B): magic "PCSEG01\n", version, nbits, blockEntries,
//	                 LSH scheme (bands, rows, probes, seed), header CRC
//	entry log       : per-entry records [u32 len | u32 crc32(payload) | payload],
//	                 payload = u64 id, u32 nPos, nPos×u32 positions,
//	                 u16 nameLen, name — the durable truth, salvageable
//	                 record by record like a WAL segment
//	columnar        : 8-aligned accelerator sections served straight from the
//	                 mmap — ids, cardinalities, name table, name-sorted
//	                 permutation, band-major sliced blocks (union + words),
//	                 and the sorted (LSH key, entry) pairs
//	footer   (56 B): magic "PCSEGFTR", logEnd, colStart, id range, counts,
//	                 columnar CRC, footer CRC
//
// The footer is the integrity root: Load trusts the columnar sections only
// after the footer and columnar CRCs check out, and still walks the entry
// log's record CRCs so interior corruption is refused with its offset
// (CorruptError) rather than served. A file with no valid footer is treated
// as torn: the longest valid prefix of log records is salvaged into
// heap-backed sections and the tail is ignored — the same
// truncate-vs-refuse split the WAL's fuzz contract pins.

const (
	segMagic    = "PCSEG01\n"
	segFtrMagic = "PCSEGFTR"
	segVersion  = 1
	headerSize  = 44
	footerSize  = 56
	recHdrSize  = 8 // u32 len + u32 crc
)

// CorruptError reports interior segment corruption: a record whose checksum
// fails inside the region the committed footer covers, at Offset bytes into
// the file. Torn tails (no valid footer) are salvaged, not refused; see the
// package comment in this file.
type CorruptError struct {
	Path   string
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: segment %s corrupt at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// colData is the in-memory form of the columnar sections — what the writer
// serializes, what a torn-tail salvage rebuilds, and what a footer-backed
// Load views straight off the mapping.
type colData struct {
	ids      []uint64
	cards    []int
	nameOffs []uint32 // count+1 offsets into nameBlob
	nameBlob []byte
	perm     []uint32 // entry positions sorted by (name, position)
	blocks   []*bitset.SlicedBlock
	lshKeys  []uint64 // sorted, parallel to lshIdx
	lshIdx   []uint32
}

// entryKeys returns the LSH keys a fingerprint is indexed (and queried)
// under: the probe key set when multi-probe is on, the plain band keys
// otherwise — matching minhash.Index's symmetric use of the same key set on
// both sides.
func entryKeys(scheme minhash.Scheme, probes bool, fp *bitset.Set) []uint64 {
	sig := scheme.Sign(bitset.Sparse(fp.Positions()))
	if probes {
		return scheme.ProbeKeys(sig)
	}
	return scheme.BandKeys(sig)
}

type keyPair struct {
	key uint64
	idx uint32
}

// buildColumnar packs entries (ascending ids, one shared bit length) into
// columnar form.
func buildColumnar(entries []fingerprint.IDEntry, scheme minhash.Scheme, probes bool, nbits, blockEntries int) *colData {
	n := len(entries)
	c := &colData{
		ids:      make([]uint64, n),
		cards:    make([]int, n),
		nameOffs: make([]uint32, n+1),
		perm:     make([]uint32, n),
	}
	var pairs []keyPair
	for i, e := range entries {
		c.ids[i] = uint64(e.ID)
		c.cards[i] = e.FP.Count()
		c.nameBlob = append(c.nameBlob, e.Name...)
		c.nameOffs[i+1] = uint32(len(c.nameBlob))
		c.perm[i] = uint32(i)
		if len(c.blocks) == 0 || c.blocks[len(c.blocks)-1].Len() >= blockEntries {
			c.blocks = append(c.blocks, bitset.NewSlicedBlock(nbits, blockEntries))
		}
		c.blocks[len(c.blocks)-1].Add(e.FP)
		for _, k := range entryKeys(scheme, probes, e.FP) {
			pairs = append(pairs, keyPair{key: k, idx: uint32(i)})
		}
	}
	sort.Slice(c.perm, func(a, b int) bool {
		pa, pb := c.perm[a], c.perm[b]
		na, nb := c.name(int(pa)), c.name(int(pb))
		if na != nb {
			return na < nb
		}
		return pa < pb
	})
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].key != pairs[b].key {
			return pairs[a].key < pairs[b].key
		}
		return pairs[a].idx < pairs[b].idx
	})
	c.lshKeys = make([]uint64, len(pairs))
	c.lshIdx = make([]uint32, len(pairs))
	for i, p := range pairs {
		c.lshKeys[i], c.lshIdx[i] = p.key, p.idx
	}
	return c
}

func (c *colData) name(pos int) string {
	return string(c.nameBlob[c.nameOffs[pos]:c.nameOffs[pos+1]])
}

// WriteSegment writes entries (ascending add-order ids, one shared bit
// length) as a PCSEG01 segment at path, atomically (temp-fsync-rename).
func WriteSegment(path string, entries []fingerprint.IDEntry, scheme minhash.Scheme, probes bool, blockEntries int) error {
	if len(entries) == 0 {
		return fmt.Errorf("store: refusing to write empty segment %s", path)
	}
	if blockEntries <= 0 {
		blockEntries = bitset.DefaultSlicedEntries
	}
	nbits := entries[0].FP.Len()
	for _, e := range entries {
		if e.FP.Len() != nbits {
			return fmt.Errorf("store: segment needs one bit length, have %d and %d", nbits, e.FP.Len())
		}
	}
	col := buildColumnar(entries, scheme, probes, nbits, blockEntries)
	return samplefile.WriteAtomic(path, func(w io.Writer) error {
		return writeSegmentTo(w, entries, col, scheme, probes, nbits, blockEntries)
	})
}

func writeSegmentTo(w io.Writer, entries []fingerprint.IDEntry, col *colData, scheme minhash.Scheme, probes bool, nbits, blockEntries int) error {
	bw := &countWriter{w: w}
	// Header.
	hdr := make([]byte, headerSize)
	copy(hdr, segMagic)
	le := binary.LittleEndian
	le.PutUint32(hdr[8:], segVersion)
	le.PutUint32(hdr[12:], uint32(nbits))
	le.PutUint32(hdr[16:], uint32(blockEntries))
	le.PutUint32(hdr[20:], uint32(scheme.Bands))
	le.PutUint32(hdr[24:], uint32(scheme.Rows))
	pv := uint32(0)
	if probes {
		pv = 1
	}
	le.PutUint32(hdr[28:], pv)
	le.PutUint64(hdr[32:], scheme.Seed)
	le.PutUint32(hdr[40:], crc32.ChecksumIEEE(hdr[:40]))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	// Entry log.
	var rec []byte
	for _, e := range entries {
		pos := e.FP.Positions()
		need := 8 + 4 + 4*len(pos) + 2 + len(e.Name)
		rec = rec[:0]
		rec = le.AppendUint64(rec, uint64(e.ID))
		rec = le.AppendUint32(rec, uint32(len(pos)))
		for _, p := range pos {
			rec = le.AppendUint32(rec, p)
		}
		rec = le.AppendUint16(rec, uint16(len(e.Name)))
		rec = append(rec, e.Name...)
		if len(rec) != need {
			return fmt.Errorf("store: record size bookkeeping off: %d != %d", len(rec), need)
		}
		var rh [recHdrSize]byte
		le.PutUint32(rh[0:], uint32(len(rec)))
		le.PutUint32(rh[4:], crc32.ChecksumIEEE(rec))
		if _, err := bw.Write(rh[:]); err != nil {
			return err
		}
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	logEnd := bw.n
	if err := bw.pad8(); err != nil {
		return err
	}
	colStart := bw.n
	// Columnar sections, CRC'd as written.
	cw := &crcWriter{w: bw}
	if err := cw.u64s(col.ids); err != nil {
		return err
	}
	cards32 := make([]uint32, len(col.cards))
	for i, c := range col.cards {
		cards32[i] = uint32(c)
	}
	if err := cw.u32sPadded(cards32); err != nil {
		return err
	}
	if err := cw.u32sPadded(col.nameOffs); err != nil {
		return err
	}
	if err := cw.bytesPadded(col.nameBlob); err != nil {
		return err
	}
	if err := cw.u32sPadded(col.perm); err != nil {
		return err
	}
	for _, blk := range col.blocks {
		if err := cw.u64s(blk.Union()); err != nil {
			return err
		}
		if err := cw.u64s(blk.Words()); err != nil {
			return err
		}
	}
	if err := cw.u64s(col.lshKeys); err != nil {
		return err
	}
	if err := cw.u32sPadded(col.lshIdx); err != nil {
		return err
	}
	// Footer.
	ftr := make([]byte, footerSize)
	copy(ftr, segFtrMagic)
	le.PutUint64(ftr[8:], uint64(logEnd))
	le.PutUint64(ftr[16:], uint64(colStart))
	le.PutUint64(ftr[24:], col.ids[0])
	le.PutUint64(ftr[32:], col.ids[len(col.ids)-1])
	le.PutUint32(ftr[40:], uint32(len(entries)))
	le.PutUint32(ftr[44:], uint32(len(col.lshKeys)))
	le.PutUint32(ftr[48:], cw.crc)
	le.PutUint32(ftr[52:], crc32.ChecksumIEEE(ftr[:52]))
	_, err := bw.Write(ftr)
	return err
}

// countWriter tracks the byte offset so section boundaries land 8-aligned.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

var zeros [8]byte

func (c *countWriter) pad8() error {
	if r := c.n % 8; r != 0 {
		_, err := c.Write(zeros[:8-r])
		return err
	}
	return nil
}

// crcWriter serializes columnar sections while accumulating their CRC.
type crcWriter struct {
	w   *countWriter
	crc uint32
	buf []byte
}

func (c *crcWriter) raw(b []byte) error {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, b)
	_, err := c.w.Write(b)
	return err
}

func (c *crcWriter) u64s(v []uint64) error {
	c.buf = c.buf[:0]
	for _, x := range v {
		c.buf = binary.LittleEndian.AppendUint64(c.buf, x)
	}
	return c.raw(c.buf)
}

func (c *crcWriter) u32sPadded(v []uint32) error {
	c.buf = c.buf[:0]
	for _, x := range v {
		c.buf = binary.LittleEndian.AppendUint32(c.buf, x)
	}
	if len(v)%2 == 1 {
		c.buf = append(c.buf, 0, 0, 0, 0)
	}
	return c.raw(c.buf)
}

func (c *crcWriter) bytesPadded(b []byte) error {
	if err := c.raw(b); err != nil {
		return err
	}
	if r := len(b) % 8; r != 0 {
		return c.raw(zeros[:8-r])
	}
	return nil
}

// Segment is one loaded PCSEG01 file: columnar views (mmap-backed on the
// fast path, heap-backed after a salvage) plus the tombstone flags its
// owning Tiered engine maintains under its mutex.
type Segment struct {
	path         string
	m            *mapping
	nbits        int
	blockEntries int
	scheme       minhash.Scheme
	probes       bool
	count        int
	minID, maxID uint64
	salvaged     bool

	col    *colData
	cards  []int // shared backing for the per-block ViewSlicedBlock cards
	blocks []*bitset.SlicedBlock

	// dead flags entries tombstoned by Remove; guarded by the owning
	// engine's mutex (a Segment alone is immutable).
	dead      []bool
	deadCount int

	// refs keeps the mapping alive while replication snapshots stream the
	// file; compaction defers deletion until the count drops to zero.
	refs atomic.Int32
}

// LoadSegment opens a PCSEG01 file. With a committed footer the columnar
// sections are mmap'd views and every entry-log record's CRC is verified —
// a failed record is refused as *CorruptError with its offset. Without a
// valid footer the file is treated as torn: the longest valid prefix of log
// records is rebuilt into heap-backed sections (Salvaged reports this) and
// the tail is dropped, mirroring the WAL's torn-tail rule.
func LoadSegment(path string) (*Segment, error) {
	m, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	seg, err := parseSegment(path, m)
	if err != nil {
		m.Close()
		return nil, err
	}
	return seg, nil
}

func parseSegment(path string, m *mapping) (*Segment, error) {
	data := m.data
	le := binary.LittleEndian
	if len(data) < headerSize {
		return nil, &CorruptError{Path: path, Offset: 0, Reason: fmt.Sprintf("file of %d bytes is shorter than the %d-byte header", len(data), headerSize)}
	}
	if string(data[:8]) != segMagic {
		return nil, &CorruptError{Path: path, Offset: 0, Reason: "bad magic"}
	}
	if got, want := le.Uint32(data[40:]), crc32.ChecksumIEEE(data[:40]); got != want {
		return nil, &CorruptError{Path: path, Offset: 40, Reason: "header checksum mismatch"}
	}
	if v := le.Uint32(data[8:]); v != segVersion {
		return nil, fmt.Errorf("store: segment %s has unsupported version %d", path, v)
	}
	seg := &Segment{
		path:         path,
		m:            m,
		nbits:        int(le.Uint32(data[12:])),
		blockEntries: int(le.Uint32(data[16:])),
		scheme: minhash.Scheme{
			Bands: int(le.Uint32(data[20:])),
			Rows:  int(le.Uint32(data[24:])),
			Seed:  le.Uint64(data[32:]),
		},
		probes: le.Uint32(data[28:]) == 1,
	}
	if seg.blockEntries <= 0 {
		return nil, &CorruptError{Path: path, Offset: 16, Reason: "zero block width"}
	}
	if ftr, ok := seg.validFooter(data); ok {
		if err := seg.loadCommitted(data, ftr); err != nil {
			return nil, err
		}
		return seg, nil
	}
	if err := seg.salvage(data); err != nil {
		return nil, err
	}
	return seg, nil
}

type footer struct {
	logEnd, colStart int64
	minID, maxID     uint64
	count, nKeys     int
	colCRC           uint32
}

// validFooter decodes and checks the footer; ok=false means torn (salvage),
// never corruption — a file that lost its footer is by definition missing
// its commit point.
func (seg *Segment) validFooter(data []byte) (footer, bool) {
	le := binary.LittleEndian
	if len(data) < headerSize+footerSize {
		return footer{}, false
	}
	f := data[len(data)-footerSize:]
	if string(f[:8]) != segFtrMagic {
		return footer{}, false
	}
	if le.Uint32(f[52:]) != crc32.ChecksumIEEE(f[:52]) {
		return footer{}, false
	}
	ftr := footer{
		logEnd:   int64(le.Uint64(f[8:])),
		colStart: int64(le.Uint64(f[16:])),
		minID:    le.Uint64(f[24:]),
		maxID:    le.Uint64(f[32:]),
		count:    int(le.Uint32(f[40:])),
		nKeys:    int(le.Uint32(f[44:])),
		colCRC:   le.Uint32(f[48:]),
	}
	if ftr.logEnd < headerSize || ftr.colStart < ftr.logEnd ||
		ftr.colStart%8 != 0 || ftr.colStart > int64(len(data)-footerSize) || ftr.count <= 0 {
		return footer{}, false
	}
	if crc32.ChecksumIEEE(data[ftr.colStart:int64(len(data)-footerSize)]) != ftr.colCRC {
		return footer{}, false
	}
	return ftr, true
}

// loadCommitted wires the columnar views off the mapping and walks the
// entry log verifying record CRCs (interior corruption is refused here).
func (seg *Segment) loadCommitted(data []byte, ftr footer) error {
	// Log walk: counts and checksums only, no materialization.
	off := int64(headerSize)
	le := binary.LittleEndian
	for i := 0; i < ftr.count; i++ {
		if off+recHdrSize > ftr.logEnd {
			return &CorruptError{Path: seg.path, Offset: off, Reason: fmt.Sprintf("log ends after %d of %d records", i, ftr.count)}
		}
		n := int64(le.Uint32(data[off:]))
		want := le.Uint32(data[off+4:])
		if off+recHdrSize+n > ftr.logEnd {
			return &CorruptError{Path: seg.path, Offset: off, Reason: "record overruns the committed log"}
		}
		if crc32.ChecksumIEEE(data[off+recHdrSize:off+recHdrSize+n]) != want {
			return &CorruptError{Path: seg.path, Offset: off, Reason: fmt.Sprintf("record %d checksum mismatch", i)}
		}
		off += recHdrSize + n
	}
	if off != ftr.logEnd {
		return &CorruptError{Path: seg.path, Offset: off, Reason: "trailing bytes inside the committed log"}
	}
	seg.count, seg.minID, seg.maxID = ftr.count, ftr.minID, ftr.maxID
	n := ftr.count
	wpw := (seg.nbits + 63) / 64
	b := seg.blockEntries
	nBlocks := (n + b - 1) / b
	// Section walk; every offset is 8-aligned by construction.
	o := ftr.colStart
	next := func(size int64) ([]byte, error) {
		if o+size > int64(len(data))-footerSize {
			return nil, &CorruptError{Path: seg.path, Offset: o, Reason: "columnar section overruns the file"}
		}
		s := data[o : o+size]
		o += size
		return s, nil
	}
	pad8 := func(n int64) int64 { return (n + 7) &^ 7 }
	idsB, err := next(int64(n) * 8)
	if err != nil {
		return err
	}
	cardsB, err := next(pad8(int64(n) * 4))
	if err != nil {
		return err
	}
	offsB, err := next(pad8(int64(n+1) * 4))
	if err != nil {
		return err
	}
	offs := u32view(offsB)[:n+1]
	blobB, err := next(pad8(int64(offs[n])))
	if err != nil {
		return err
	}
	permB, err := next(pad8(int64(n) * 4))
	if err != nil {
		return err
	}
	blocksB, err := next(int64(nBlocks) * int64(wpw*(b+1)) * 8)
	if err != nil {
		return err
	}
	keysB, err := next(int64(ftr.nKeys) * 8)
	if err != nil {
		return err
	}
	idxB, err := next(pad8(int64(ftr.nKeys) * 4))
	if err != nil {
		return err
	}
	if o != int64(len(data))-footerSize {
		return &CorruptError{Path: seg.path, Offset: o, Reason: "columnar sections do not fill the file"}
	}
	cards32 := u32view(cardsB)[:n]
	seg.cards = make([]int, n)
	for i, c := range cards32 {
		seg.cards[i] = int(c)
	}
	seg.col = &colData{
		ids:      u64view(idsB),
		cards:    seg.cards,
		nameOffs: offs,
		nameBlob: blobB[:offs[n]],
		perm:     u32view(permB)[:n],
		lshKeys:  u64view(keysB),
		lshIdx:   u32view(idxB)[:ftr.nKeys],
	}
	blockWords := u64view(blocksB)
	seg.blocks = make([]*bitset.SlicedBlock, nBlocks)
	for bi := 0; bi < nBlocks; bi++ {
		base := bi * wpw * (b + 1)
		union := blockWords[base : base+wpw]
		words := blockWords[base+wpw : base+wpw*(b+1)]
		cnt := b
		if bi == nBlocks-1 {
			cnt = n - bi*b
		}
		seg.blocks[bi] = bitset.ViewSlicedBlock(seg.nbits, b, cnt, words, union, seg.cards[bi*b:bi*b+cnt])
	}
	seg.dead = make([]bool, n)
	return nil
}

// salvage parses the longest valid prefix of the entry log and rebuilds the
// columnar sections in heap.
func (seg *Segment) salvage(data []byte) error {
	le := binary.LittleEndian
	var entries []fingerprint.IDEntry
	off := int64(headerSize)
	for {
		if off+recHdrSize > int64(len(data)) {
			break
		}
		n := int64(le.Uint32(data[off:]))
		want := le.Uint32(data[off+4:])
		if off+recHdrSize+n > int64(len(data)) {
			break
		}
		payload := data[off+recHdrSize : off+recHdrSize+n]
		if crc32.ChecksumIEEE(payload) != want {
			break
		}
		e, err := decodeRecord(payload, seg.nbits)
		if err != nil {
			break
		}
		entries = append(entries, e)
		off += recHdrSize + n
	}
	seg.salvaged = true
	seg.count = len(entries)
	if len(entries) == 0 {
		seg.col = &colData{nameOffs: []uint32{0}}
		return nil
	}
	seg.col = buildColumnar(entries, seg.scheme, seg.probes, seg.nbits, seg.blockEntries)
	seg.cards = seg.col.cards
	seg.blocks = seg.col.blocks
	seg.minID = seg.col.ids[0]
	seg.maxID = seg.col.ids[len(seg.col.ids)-1]
	seg.dead = make([]bool, seg.count)
	return nil
}

func decodeRecord(p []byte, nbits int) (fingerprint.IDEntry, error) {
	le := binary.LittleEndian
	if len(p) < 12 {
		return fingerprint.IDEntry{}, fmt.Errorf("short record")
	}
	id := le.Uint64(p)
	nPos := int(le.Uint32(p[8:]))
	if len(p) < 12+4*nPos+2 {
		return fingerprint.IDEntry{}, fmt.Errorf("truncated positions")
	}
	pos := make([]uint32, nPos)
	for i := range pos {
		pos[i] = le.Uint32(p[12+4*i:])
		if int(pos[i]) >= nbits {
			return fingerprint.IDEntry{}, fmt.Errorf("position %d out of %d bits", pos[i], nbits)
		}
	}
	o := 12 + 4*nPos
	nameLen := int(le.Uint16(p[o:]))
	if len(p) != o+2+nameLen {
		return fingerprint.IDEntry{}, fmt.Errorf("record length mismatch")
	}
	name := string(p[o+2 : o+2+nameLen])
	return fingerprint.IDEntry{ID: int(id), Name: name, FP: bitset.FromPositions(nbits, pos)}, nil
}

// Salvaged reports whether the segment was recovered from a torn file
// (heap-backed, possibly missing a tail of entries).
func (seg *Segment) Salvaged() bool { return seg.salvaged }

// Len counts entries including tombstoned ones; Live subtracts them.
func (seg *Segment) Len() int  { return seg.count }
func (seg *Segment) Live() int { return seg.count - seg.deadCount }

// Bits reports the fingerprint length every entry in this segment shares.
func (seg *Segment) Bits() int { return seg.nbits }

// Name returns entry pos's name (allocates the string on demand — verdicts
// materialize one name, not the table).
func (seg *Segment) Name(pos int) string { return seg.col.name(pos) }

// ID returns entry pos's add-order id.
func (seg *Segment) ID(pos int) int { return int(seg.col.ids[pos]) }

// FP materializes entry pos's fingerprint as a dense heap Set (exports and
// snapshots only — the query path never calls it).
func (seg *Segment) FP(pos int) *bitset.Set {
	blk := seg.blocks[pos/seg.blockEntries]
	j := pos % seg.blockEntries
	words := make([]uint64, (seg.nbits+63)/64)
	bw := blk.Words()
	for w := range words {
		words[w] = bw[w*blk.Cap()+j]
	}
	return bitset.FromWords(seg.nbits, words)
}

// Retain pins the segment (and its mapping) for a streaming reader;
// Release undoes it. The owning engine deletes a compacted-away segment's
// file only when the count returns to zero.
func (seg *Segment) Retain()  { seg.refs.Add(1) }
func (seg *Segment) Release() { seg.refs.Add(-1) }

func (seg *Segment) retained() bool { return seg.refs.Load() > 0 }

// Close releases the mapping.
func (seg *Segment) Close() error {
	if seg.m != nil {
		return seg.m.Close()
	}
	return nil
}

// kill tombstones entry pos (engine mutex held).
func (seg *Segment) kill(pos int) {
	if !seg.dead[pos] {
		seg.dead[pos] = true
		seg.deadCount++
	}
}

// findName returns the position of the earliest-added live entry under name,
// by binary search over the name-sorted permutation (equal names tie-break
// by position, i.e. by id).
func (seg *Segment) findName(name string) (int, bool) {
	perm := seg.col.perm
	lo := sort.Search(len(perm), func(i int) bool { return seg.col.name(int(perm[i])) >= name })
	for ; lo < len(perm); lo++ {
		pos := int(perm[lo])
		if seg.col.name(pos) != name {
			break
		}
		if !seg.dead[pos] {
			return pos, true
		}
	}
	return 0, false
}

// candidates returns the live entry positions colliding with the query in at
// least one LSH key, ascending and deduplicated.
func (seg *Segment) candidates(q *bitset.Set) []int {
	var out []int
	for _, k := range entryKeys(seg.scheme, seg.probes, q) {
		keys := seg.col.lshKeys
		i := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
		for ; i < len(keys) && keys[i] == k; i++ {
			out = append(out, int(seg.col.lshIdx[i]))
		}
	}
	sort.Ints(out)
	w := 0
	for i, p := range out {
		if i > 0 && p == out[w-1] {
			continue
		}
		out[w] = p
		w++
	}
	return out[:w]
}

// kernelAt runs the fused Algorithm 3 kernel for entry pos against q,
// reading only that entry's column of the mmap'd block.
func (seg *Segment) kernelAt(q *bitset.Set, pos int) bitset.KernelResult {
	return seg.blocks[pos/seg.blockEntries].MinCardAndNotCountOne(q, pos%seg.blockEntries)
}

// pruned replicates fingerprint.SlicedDB's cardinality-bound block prune
// (sound for first-match only; see that type's derivation).
func (seg *Segment) prunedBlock(blk *bitset.SlicedBlock, q *bitset.Set, qc int, threshold float64) bool {
	if qc == 0 {
		return false
	}
	cLow := blk.MinCard()
	if qc < cLow {
		cLow = qc
	}
	tUp := threshold * (1 + 1e-9)
	return float64(cLow)*(1-tUp) >= float64(blk.UnionAndCount(q))
}

// firstMatch is Algorithm 2 over the segment: LSH candidates in id order
// first (plain=false), then the pruned block sweep — the first live entry
// under the threshold, as (name, add-order id).
func (seg *Segment) firstMatch(q *bitset.Set, threshold float64, plain bool) (string, int, bool) {
	if !plain {
		for _, pos := range seg.candidates(q) {
			if seg.dead[pos] {
				continue
			}
			if fingerprint.KernelDistance(seg.kernelAt(q, pos)) < threshold {
				return seg.col.name(pos), int(seg.col.ids[pos]), true
			}
		}
	}
	qc := q.Count()
	b := seg.blockEntries
	var dst []bitset.KernelResult
	for bi, blk := range seg.blocks {
		if seg.prunedBlock(blk, q, qc, threshold) {
			continue
		}
		dst = blk.MinCardAndNotCounts(q, dst)
		for j, r := range dst {
			pos := bi*b + j
			if seg.dead[pos] {
				continue
			}
			if fingerprint.KernelDistance(r) < threshold {
				return seg.col.name(pos), int(seg.col.ids[pos]), true
			}
		}
	}
	return "", -1, false
}

// decideRaw is the full decision over the segment. With plain=true it is an
// exact unpruned sweep (Matches counts every live sub-threshold entry —
// byte-identical to a dense scan). Otherwise candidates answer first and the
// sweep is the fallback, inheriting IndexedDB's candidates-only Matches
// caveat. Index carries the add-order id.
func (seg *Segment) decideRaw(q *bitset.Set, threshold float64, plain bool) fingerprint.Verdict {
	v := fingerprint.Verdict{Index: -1, Distance: 2}
	if !plain {
		for _, pos := range seg.candidates(q) {
			if seg.dead[pos] {
				continue
			}
			d := fingerprint.KernelDistance(seg.kernelAt(q, pos))
			if d < threshold {
				v.Matches++
			}
			if d < v.Distance {
				v.Name, v.Index, v.Distance = seg.col.name(pos), int(seg.col.ids[pos]), d
			}
		}
		if v.Matches > 0 {
			return v
		}
		v = fingerprint.Verdict{Index: -1, Distance: 2}
	}
	b := seg.blockEntries
	var dst []bitset.KernelResult
	for bi, blk := range seg.blocks {
		dst = blk.MinCardAndNotCounts(q, dst)
		for j, r := range dst {
			pos := bi*b + j
			if seg.dead[pos] {
				continue
			}
			d := fingerprint.KernelDistance(r)
			if d < threshold {
				v.Matches++
			}
			if d < v.Distance {
				v.Name, v.Index, v.Distance = seg.col.name(pos), int(seg.col.ids[pos]), d
			}
		}
	}
	return v
}

// exportLive appends the live entries (materialized) in id order.
func (seg *Segment) exportLive(dst []fingerprint.IDEntry) []fingerprint.IDEntry {
	for pos := 0; pos < seg.count; pos++ {
		if seg.dead[pos] {
			continue
		}
		dst = append(dst, fingerprint.IDEntry{ID: int(seg.col.ids[pos]), Name: seg.col.name(pos), FP: seg.FP(pos)})
	}
	return dst
}

// VerifySegment deep-checks a segment file: Load's structural and checksum
// validation plus a log-vs-columnar cross-check (every record's id, name,
// cardinality, and bits must match the columnar sections the queries serve
// from). A salvaged (torn) file fails verification — triage should see it.
func VerifySegment(path string) error {
	seg, err := LoadSegment(path)
	if err != nil {
		return err
	}
	defer seg.Close()
	if seg.Salvaged() {
		return fmt.Errorf("store: segment %s has no committed footer (torn tail, %d salvageable entries)", path, seg.count)
	}
	m, err := mapFile(path)
	if err != nil {
		return err
	}
	defer m.Close()
	le := binary.LittleEndian
	off := int64(headerSize)
	for pos := 0; pos < seg.count; pos++ {
		n := int64(le.Uint32(m.data[off:]))
		e, err := decodeRecord(m.data[off+recHdrSize:off+recHdrSize+n], seg.nbits)
		if err != nil {
			return &CorruptError{Path: path, Offset: off, Reason: err.Error()}
		}
		if e.ID != seg.ID(pos) || e.Name != seg.Name(pos) || e.FP.Count() != seg.cards[pos] || !e.FP.Equal(seg.FP(pos)) {
			return &CorruptError{Path: path, Offset: off, Reason: fmt.Sprintf("entry %d diverges between log and columnar sections", pos)}
		}
		off += recHdrSize + n
	}
	// The columnar kernel must agree with the scalar one on a live entry.
	for pos := 0; pos < seg.count; pos += 1 + seg.count/64 {
		fp := seg.FP(pos)
		r := seg.kernelAt(fp, pos)
		if r.Diff != 0 || r.MinCard != fp.Count() {
			return &CorruptError{Path: path, Offset: 0, Reason: fmt.Sprintf("self-distance of entry %d is not zero", pos)}
		}
	}
	return nil
}

// u64view reinterprets an 8-aligned little-endian byte section as []uint64
// without copying; on a big-endian or misaligned platform it decodes into a
// fresh slice instead.
func u64view(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}

func u32view(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()
