//go:build !unix

// mmap_other.go: the non-unix mapping fallback — the file read into
// memory behind the same surface, correct but not RAM-bounded.
package store

import "os"

// mapping is the non-unix fallback: the whole file read into memory. Same
// surface as the real mmap in mmap_unix.go, without the demand paging — the
// tiered engine stays correct, just not RAM-bounded, on platforms without
// syscall.Mmap.
type mapping struct {
	data   []byte
	mapped bool
}

func mapFile(path string) (*mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &mapping{data: data}, nil
}

func (m *mapping) Close() error {
	m.data = nil
	return nil
}
