// tiered.go: the LSM-shaped durable backend — an in-RAM memtable over
// mmap'd immutable segments, with manifest-committed checkpoints and
// threshold-triggered compaction.
package store

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
	"probablecause/internal/minhash"
	"probablecause/internal/obs"
	"probablecause/internal/pool"
)

// Tiered is the LSM-shaped storage backend: an in-RAM memtable (a
// fingerprint.ShardedDB) for fresh enrollments, plus a sequence of immutable
// mmap'd segment files with non-overlapping ascending add-order id ranges.
// Checkpoint flushes the memtable to a new segment and commits the manifest;
// compaction merges adjacent segments (dropping tombstones) once the count
// crosses Config.CompactSegments.
//
// Id discipline — the heart of the equivalence contract: a global id is
// memBase + the memtable's local add-order id, and memBase advances by the
// number of Adds the flushed memtable absorbed (not its live count), so ids
// are a pure function of the Add sequence, independent of flush and
// compaction timing. Segments always hold strictly older ids than the
// memtable; earliest-added semantics (Get, Remove) therefore scan segments
// first, in order.
//
// Locking: t.mu guards the tier topology (memtable pointer, segment list,
// tombstone flags). Queries hold it in read mode for their whole scan —
// segment kill flags are only written under the write lock — while the
// memtable's own internal sharded locks handle concurrent access beneath it.
type Tiered struct {
	cfg    Config
	dbCfg  DBConfig
	scheme minhash.Scheme

	mu        sync.RWMutex
	mem       *fingerprint.ShardedDB
	memBase   int // global id of memtable-local id 0
	memAdds   int // Adds absorbed by the current memtable
	segs      []*Segment
	tomb      map[int]bool // segment-entry ids removed (persisted at next commit)
	watermark uint64
	nextSeg   int        // next segment file sequence number
	grave     []*Segment // compacted-away segments awaiting refcount-zero deletion

	gen      atomic.Int64
	flushReq atomic.Bool // set by NeedsFlush consumers scheduling a checkpoint
}

// segmentPattern matches the segment files the engine owns in its directory.
const segmentPattern = "seg-*.pcseg"

func segmentName(seq int) string { return fmt.Sprintf("seg-%06d.pcseg", seq) }

// OpenTiered recovers (or initializes) a tiered backend in cfg.Dir: the
// manifest names the committed segments, each is loaded and its tombstones
// applied, and any segment file the manifest does not reference — a flush or
// compaction that crashed before its commit — is swept.
func OpenTiered(cfg Config, dbCfg DBConfig) (*Tiered, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("store: tiered backend needs a directory")
	}
	if cfg.FlushEntries <= 0 {
		cfg.FlushEntries = DefaultFlushEntries
	}
	if cfg.CompactSegments <= 0 {
		cfg.CompactSegments = DefaultCompactSegments
	}
	if err := os.MkdirAll(cfg.Dir, 0o777); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", cfg.Dir, err)
	}
	man, _, err := loadManifest(cfg.Dir)
	if err != nil {
		return nil, err
	}
	mem, err := dbCfg.newShardedDB()
	if err != nil {
		return nil, err
	}
	t := &Tiered{
		cfg: cfg, dbCfg: dbCfg, scheme: minhash.DefaultScheme,
		mem: mem, memBase: man.NextID, watermark: man.Watermark,
		tomb: make(map[int]bool),
	}
	for _, id := range man.Tombstones {
		t.tomb[id] = true
	}
	committed := make(map[string]bool, len(man.Segments))
	for _, name := range man.Segments {
		committed[name] = true
		seg, err := LoadSegment(filepath.Join(cfg.Dir, name))
		if err != nil {
			return nil, fmt.Errorf("store: loading committed segment %s (run -store.verify to triage): %w", name, err)
		}
		if seg.Salvaged() {
			// A committed segment losing its footer is not a clean shutdown
			// artifact — refuse and point at triage rather than silently
			// serving a prefix.
			seg.Close()
			return nil, fmt.Errorf("store: committed segment %s is torn (%d salvageable entries); run -store.verify and restore from a replica", name, seg.Len())
		}
		for pos := 0; pos < seg.Len(); pos++ {
			if t.tomb[seg.ID(pos)] {
				seg.kill(pos)
			}
		}
		t.segs = append(t.segs, seg)
		if seq, ok := segSeq(name); ok && seq >= t.nextSeg {
			t.nextSeg = seq + 1
		}
	}
	// Orphan sweep: segment files written by a flush/compaction that crashed
	// before its manifest commit.
	if matches, err := filepath.Glob(filepath.Join(cfg.Dir, segmentPattern)); err == nil {
		for _, p := range matches {
			if !committed[filepath.Base(p)] {
				os.Remove(p)
			}
		}
	}
	return t, nil
}

func segSeq(name string) (int, bool) {
	var seq int
	if _, err := fmt.Sscanf(name, "seg-%d.pcseg", &seq); err != nil || !strings.HasSuffix(name, ".pcseg") {
		return 0, false
	}
	return seq, true
}

// Watermark returns the WAL sequence recovered from the manifest.
func (t *Tiered) Watermark() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.watermark
}

// SegmentCount reports the committed segment count (tests, stats).
func (t *Tiered) SegmentCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.segs)
}

// Add registers a fingerprint in the memtable and returns its global
// add-order id.
func (t *Tiered) Add(name string, fp *bitset.Set) int {
	t.mu.Lock()
	local := t.mem.Add(name, fp)
	id := t.memBase + local
	if local+1 > t.memAdds {
		t.memAdds = local + 1
	}
	t.gen.Add(1)
	t.mu.Unlock()
	return id
}

// Remove tombstones the earliest-added live entry under name: flushed
// segments hold strictly older ids than the memtable, so they are scanned
// first, in order. A segment tombstone becomes durable at the next manifest
// commit (Checkpoint); until then a crash loses it — the same durability the
// in-memory backend's WAL replay gives Removes.
func (t *Tiered) Remove(name string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, seg := range t.segs {
		if pos, ok := seg.findName(name); ok {
			seg.kill(pos)
			t.tomb[seg.ID(pos)] = true
			t.gen.Add(1)
			return true
		}
	}
	if t.mem.Remove(name) {
		t.gen.Add(1)
		return true
	}
	return false
}

// Get returns the earliest-added live fingerprint under name.
func (t *Tiered) Get(name string) (*bitset.Set, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, seg := range t.segs {
		if pos, ok := seg.findName(name); ok {
			return seg.FP(pos), true
		}
	}
	return t.mem.Get(name)
}

// Len counts live entries across all tiers.
func (t *Tiered) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.lenLocked()
}

func (t *Tiered) lenLocked() int {
	n := t.mem.Len()
	for _, seg := range t.segs {
		n += seg.Live()
	}
	return n
}

// Generation counts logical mutations; flush and compaction preserve logical
// content and do not advance it, so cached verdicts stay valid across them.
func (t *Tiered) Generation() int64 { return t.gen.Load() }

// Stats reports the live total plus the memtable's shard distribution.
func (t *Tiered) Stats() fingerprint.ShardStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	st := t.mem.Stats()
	st.Entries = t.lenLocked()
	return st
}

// NeedsFlush reports whether the memtable has crossed the flush threshold.
func (t *Tiered) NeedsFlush() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.mem.Len() >= t.cfg.FlushEntries
}

// TryStartFlush is a CAS guard so only one goroutine schedules a checkpoint
// at a time; EndFlush releases it.
func (t *Tiered) TryStartFlush() bool { return t.flushReq.CompareAndSwap(false, true) }
func (t *Tiered) EndFlush()           { t.flushReq.Store(false) }

// Identify implements Algorithm 2 across the tiers: every tier reports its
// first match and the minimum global id wins — exactly the in-memory
// ShardedDB's cross-shard rule lifted to memtable+segments.
func (t *Tiered) Identify(errorString *bitset.Set) (name string, index int, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	index = -1
	for _, seg := range t.segs {
		n, id, hit := seg.firstMatch(errorString, t.dbCfg.Threshold, t.dbCfg.Plain)
		if hit && (index < 0 || id < index) {
			name, index = n, id
		}
	}
	if n, local, hit := t.mem.FirstMatch(errorString); hit {
		if id := t.memBase + local; index < 0 || id < index {
			name, index = n, id
		}
	}
	return name, index, index >= 0
}

// IdentifyBest returns the minimum-distance entry across the tiers.
func (t *Tiered) IdentifyBest(errorString *bitset.Set) (name string, index int, dist float64) {
	v := t.Decide(errorString)
	return v.Name, v.Index, v.Distance
}

// Decide merges the memtable's verdict with every segment's through
// fingerprint.MergeVerdict — the same (distance, id)-lexicographic rule the
// sharded scan uses, so flush timing can never change an answer. With
// DBConfig.Plain every tier sweeps densely and the Matches count is exact;
// indexed tiers inherit the candidates-only caveat.
func (t *Tiered) Decide(errorString *bitset.Set) fingerprint.Verdict {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.decideLocked(errorString)
}

func (t *Tiered) decideLocked(errorString *bitset.Set) fingerprint.Verdict {
	v := fingerprint.Verdict{Index: -1, Distance: 2}
	for _, seg := range t.segs {
		fingerprint.MergeVerdict(&v, seg.decideRaw(errorString, t.dbCfg.Threshold, t.dbCfg.Plain))
	}
	mv := t.mem.DecideRaw(errorString)
	if mv.Index >= 0 {
		mv.Index += t.memBase
	}
	fingerprint.MergeVerdict(&v, mv)
	return v
}

// DecideCtx is Decide under a request span: one store.decide child records
// the tier fan-out; the verdict is identical to Decide's.
func (t *Tiered) DecideCtx(ctx context.Context, errorString *bitset.Set) fingerprint.Verdict {
	parent := obs.SpanFrom(ctx)
	if parent == nil {
		return t.Decide(errorString)
	}
	sp := parent.Child("store.decide")
	t.mu.RLock()
	sp.SetAttr("segments", len(t.segs))
	v := t.decideLocked(errorString)
	t.mu.RUnlock()
	sp.End()
	return v
}

// ParallelIdentify runs Identify across a bounded worker pool; see
// fingerprint.DB.ParallelIdentify for the determinism contract.
func (t *Tiered) ParallelIdentify(errorStrings []*bitset.Set, workers int) []fingerprint.Match {
	out := make([]fingerprint.Match, len(errorStrings))
	pool.Map(workers, len(errorStrings), func(i int) {
		name, idx, ok := t.Identify(errorStrings[i])
		out[i] = fingerprint.Match{Name: name, Index: idx, OK: ok}
	})
	return out
}

// ParallelDecide runs Decide across a bounded worker pool.
func (t *Tiered) ParallelDecide(errorStrings []*bitset.Set, workers int) []fingerprint.Verdict {
	out := make([]fingerprint.Verdict, len(errorStrings))
	pool.Map(workers, len(errorStrings), func(i int) {
		out[i] = t.Decide(errorStrings[i])
	})
	return out
}

// ParallelDecideCtx is ParallelDecide with per-query trace contexts.
func (t *Tiered) ParallelDecideCtx(ctxs []context.Context, errorStrings []*bitset.Set, workers int) []fingerprint.Verdict {
	out := make([]fingerprint.Verdict, len(errorStrings))
	pool.Map(workers, len(errorStrings), func(i int) {
		ctx := context.Background()
		if i < len(ctxs) && ctxs[i] != nil {
			ctx = ctxs[i]
		}
		out[i] = t.DecideCtx(ctx, errorStrings[i])
	})
	return out
}

// ExportIDs returns the live entries with their global ids, in id order —
// segments are already ascending and disjoint, and the memtable's ids all
// sit above them.
func (t *Tiered) ExportIDs() []fingerprint.IDEntry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.exportLocked()
}

func (t *Tiered) exportLocked() []fingerprint.IDEntry {
	var out []fingerprint.IDEntry
	for _, seg := range t.segs {
		out = seg.exportLive(out)
	}
	for _, e := range t.mem.ExportIDs() {
		e.ID += t.memBase
		out = append(out, e)
	}
	return out
}

// Export reassembles a plain DB of the live entries in add order.
func (t *Tiered) Export() *fingerprint.DB {
	db := fingerprint.NewDB(t.dbCfg.Threshold)
	for _, e := range t.ExportIDs() {
		db.Add(e.Name, e.FP)
	}
	return db
}

// Checkpoint flushes the memtable to a new segment and commits the manifest
// carrying the given WAL watermark; when the committed segment count then
// exceeds Config.CompactSegments, adjacent segments are merged until it does
// not. The serving layer calls this under its enrollment lock with the
// watermark captured there, so flushed state and watermark always agree.
func (t *Tiered) Checkpoint(watermark uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.flushLocked(watermark); err != nil {
		return err
	}
	for len(t.segs) > t.cfg.CompactSegments {
		if err := t.compactOnceLocked(); err != nil {
			return err
		}
	}
	t.sweepGraveLocked()
	return nil
}

// Flush is Checkpoint for callers without a WAL (experiments, tests): the
// current watermark is carried forward unchanged.
func (t *Tiered) Flush() error {
	t.mu.Lock()
	wm := t.watermark
	t.mu.Unlock()
	return t.Checkpoint(wm)
}

func (t *Tiered) flushLocked(watermark uint64) error {
	entries := t.mem.ExportIDs()
	for i := range entries {
		entries[i].ID += t.memBase
	}
	newSegs := t.segs
	var newFile string
	if len(entries) > 0 {
		newFile = segmentName(t.nextSeg)
		path := filepath.Join(t.cfg.Dir, newFile)
		if err := WriteSegment(path, entries, t.scheme, t.dbCfg.Probes, t.dbCfg.BlockEntries); err != nil {
			return err
		}
		t.crash("flush-before-commit")
		seg, err := LoadSegment(path)
		if err != nil {
			return fmt.Errorf("store: reopening flushed segment: %w", err)
		}
		newSegs = append(append([]*Segment(nil), t.segs...), seg)
	}
	man := t.manifestFor(newSegs, watermark, t.memBase+t.memAdds)
	if err := commitManifest(t.cfg.Dir, man); err != nil {
		return err
	}
	t.crash("flush-after-commit")
	// Committed: swap in the new tier topology and reset the memtable.
	t.segs = newSegs
	t.watermark = watermark
	t.memBase += t.memAdds
	t.memAdds = 0
	if len(entries) > 0 {
		t.nextSeg++
	}
	mem, err := t.dbCfg.newShardedDB()
	if err != nil {
		return err
	}
	t.mem = mem
	// Memtable tombstones flushed away (ExportIDs skipped them); segment
	// tombstones are now persisted in the manifest.
	return nil
}

// compactOnceLocked merges the adjacent segment pair with the smallest
// combined live count — bounded memory per merge, LSM-style — dropping
// tombstoned entries. The merged file is committed via the manifest; the
// replaced segments join the graveyard until their refcounts drain.
func (t *Tiered) compactOnceLocked() error {
	if len(t.segs) < 2 {
		return nil
	}
	best, bestLive := 0, -1
	for i := 0; i+1 < len(t.segs); i++ {
		live := t.segs[i].Live() + t.segs[i+1].Live()
		if bestLive < 0 || live < bestLive {
			best, bestLive = i, live
		}
	}
	a, b := t.segs[best], t.segs[best+1]
	var entries []fingerprint.IDEntry
	entries = a.exportLive(entries)
	entries = b.exportLive(entries)
	var merged *Segment
	newFile := segmentName(t.nextSeg)
	if len(entries) > 0 {
		path := filepath.Join(t.cfg.Dir, newFile)
		if err := WriteSegment(path, entries, t.scheme, t.dbCfg.Probes, t.dbCfg.BlockEntries); err != nil {
			return err
		}
		t.crash("compact-before-commit")
		var err error
		merged, err = LoadSegment(path)
		if err != nil {
			return fmt.Errorf("store: reopening compacted segment: %w", err)
		}
	}
	newSegs := append([]*Segment(nil), t.segs[:best]...)
	if merged != nil {
		newSegs = append(newSegs, merged)
	}
	newSegs = append(newSegs, t.segs[best+2:]...)
	// The merged segments' tombstones are physically gone; drop them from
	// the persisted set.
	for _, seg := range [2]*Segment{a, b} {
		for pos := 0; pos < seg.Len(); pos++ {
			if seg.dead[pos] {
				delete(t.tomb, seg.ID(pos))
			}
		}
	}
	if err := commitManifest(t.cfg.Dir, t.manifestFor(newSegs, t.watermark, t.memBase+t.memAdds)); err != nil {
		return err
	}
	t.crash("compact-after-commit")
	t.segs = newSegs
	t.nextSeg++
	t.grave = append(t.grave, a, b)
	return nil
}

func (t *Tiered) manifestFor(segs []*Segment, watermark uint64, nextID int) manifest {
	man := manifest{Version: manifestVersion, Watermark: watermark, NextID: nextID}
	for _, seg := range segs {
		man.Segments = append(man.Segments, filepath.Base(seg.path))
	}
	// Persist only tombstones that still point into a listed segment.
	for id := range t.tomb {
		man.Tombstones = append(man.Tombstones, id)
	}
	sort.Ints(man.Tombstones)
	return man
}

// sweepGraveLocked deletes compacted-away segment files whose streaming
// readers have all released them.
func (t *Tiered) sweepGraveLocked() {
	kept := t.grave[:0]
	for _, seg := range t.grave {
		if seg.retained() {
			kept = append(kept, seg)
			continue
		}
		seg.Close()
		os.Remove(seg.path)
	}
	t.grave = kept
}

// FPBits reports the fingerprint length (bits) of the stored entries, 0 when
// the store is empty — the serving layer pins its query-length check to it
// after recovery, without materializing any entry.
func (t *Tiered) FPBits() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.segs) > 0 {
		return t.segs[0].Bits()
	}
	if e := t.mem.ExportIDs(); len(e) > 0 {
		return e[0].FP.Len()
	}
	return 0
}

// SnapshotFiles pins the committed segment set for a streaming bootstrap:
// every segment is refcount-retained (the graveyard will not delete it while
// a stream is in flight) and the manifest naming exactly this set is
// serialized under the same lock, so the shipped files and the shipped
// manifest always agree. Call release when the stream completes.
func (t *Tiered) SnapshotFiles() (manifestBytes []byte, paths []string, watermark uint64, release func(), err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	man := t.manifestFor(t.segs, t.watermark, t.memBase+t.memAdds)
	blob, err := json.Marshal(man)
	if err != nil {
		return nil, nil, 0, nil, fmt.Errorf("store: encoding snapshot manifest: %w", err)
	}
	segs := append([]*Segment(nil), t.segs...)
	for _, seg := range segs {
		seg.Retain()
		paths = append(paths, seg.path)
	}
	release = func() {
		for _, seg := range segs {
			seg.Release()
		}
		t.mu.Lock()
		t.sweepGraveLocked()
		t.mu.Unlock()
	}
	return append(blob, '\n'), paths, t.watermark, release, nil
}

// crash hard-exits the process at a named chaos point (Config.CrashPoint,
// wired from the PCSTORE_CRASH environment variable by pcserved) — the
// storage chaos hook the crash-recovery matrix drives. Exit code 137 mirrors
// a SIGKILL so the harness treats both kill modes alike.
func (t *Tiered) crash(point string) {
	if t.cfg.CrashPoint != "" && t.cfg.CrashPoint == point {
		fmt.Fprintf(os.Stderr, "store: crash point %s\n", point)
		os.Exit(137)
	}
}

// Close releases every mapping. The engine does not flush on Close — the
// serving layer checkpoints explicitly on drain, and an unflushed memtable
// is recovered from the WAL.
func (t *Tiered) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var first error
	for _, seg := range append(t.segs, t.grave...) {
		if err := seg.Close(); err != nil && first == nil {
			first = err
		}
	}
	t.segs, t.grave = nil, nil
	return first
}

// VerifyDir deep-checks every committed segment in a tiered store directory
// (the -store.verify offline triage mode): manifest parse, per-segment
// structural and checksum validation, and the log-vs-columnar cross-check.
// It returns a joined error naming every failing segment.
func VerifyDir(dir string) error {
	man, ok, err := loadManifest(dir)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("store: %s has no manifest", dir)
	}
	var errs []string
	for _, name := range man.Segments {
		if err := VerifySegment(filepath.Join(dir, name)); err != nil {
			errs = append(errs, err.Error())
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("store: %d of %d segments failed verification:\n  %s",
			len(errs), len(man.Segments), strings.Join(errs, "\n  "))
	}
	return nil
}

var _ DurableBackend = (*Tiered)(nil)
