package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
	"probablecause/internal/minhash"
	"probablecause/internal/prng"
)

// testFP builds a deterministic ~density-dense fingerprint.
func testFP(seed uint64, nbits, ones int) *bitset.Set {
	src := prng.New(seed)
	pos := make([]uint32, 0, ones)
	seen := make(map[int]bool, ones)
	for len(pos) < ones {
		p := src.Intn(nbits)
		if seen[p] {
			continue
		}
		seen[p] = true
		pos = append(pos, uint32(p))
	}
	return bitset.FromPositions(nbits, pos)
}

// noisy flips a few of fp's set bits off and a few clear bits on —
// a same-device error string within the threshold.
func noisy(fp *bitset.Set, seed uint64, drop int) *bitset.Set {
	src := prng.New(seed ^ 0xD5A7)
	out := fp.Clone()
	pos := fp.Positions()
	for i := 0; i < drop && i < len(pos); i++ {
		out.Clear(int(pos[src.Intn(len(pos))]))
	}
	return out
}

func testEntries(n, nbits int) []fingerprint.IDEntry {
	entries := make([]fingerprint.IDEntry, n)
	for i := range entries {
		entries[i] = fingerprint.IDEntry{
			ID:   i*3 + 7, // non-dense ids: segments must carry them verbatim
			Name: fmt.Sprintf("dev%03d", i),
			FP:   testFP(uint64(i)+0xBEEF, nbits, 40),
		}
	}
	return entries
}

func writeTestSegment(t *testing.T, entries []fingerprint.IDEntry, probes bool) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "seg-000000.pcseg")
	if err := WriteSegment(path, entries, minhash.DefaultScheme, probes, 8); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSegmentRoundTrip: write → load → every entry's id, name, and bits
// survive, lookups and verdicts agree with a plain DB over the same entries.
func TestSegmentRoundTrip(t *testing.T) {
	const n, nbits = 50, 2048
	entries := testEntries(n, nbits)
	for _, probes := range []bool{false, true} {
		path := writeTestSegment(t, entries, probes)
		seg, err := LoadSegment(path)
		if err != nil {
			t.Fatal(err)
		}
		if seg.Salvaged() {
			t.Fatal("clean segment reported salvaged")
		}
		if seg.Len() != n {
			t.Fatalf("Len = %d, want %d", seg.Len(), n)
		}
		for i, e := range entries {
			if seg.ID(i) != e.ID || seg.Name(i) != e.Name {
				t.Fatalf("entry %d: (%d,%s) want (%d,%s)", i, seg.ID(i), seg.Name(i), e.ID, e.Name)
			}
			if !seg.FP(i).Equal(e.FP) {
				t.Fatalf("entry %d: fingerprint diverged", i)
			}
		}
		// Verdicts: a noisy same-device query must hit the right entry with
		// the exact distance the scalar path computes.
		thr := fingerprint.DefaultThreshold
		for i := 0; i < n; i += 7 {
			q := noisy(entries[i].FP, uint64(i), 2)
			v := seg.decideRaw(q, thr, true)
			if !v.OK() || v.Index != entries[i].ID || v.Name != entries[i].Name {
				t.Fatalf("probes=%v plain decide for entry %d = %+v", probes, i, v)
			}
			if got := fingerprint.Distance(q, entries[i].FP); v.Distance != got {
				t.Fatalf("distance %v != scalar %v", v.Distance, got)
			}
			if name, id, ok := seg.firstMatch(q, thr, false); !ok || id != entries[i].ID || name != entries[i].Name {
				t.Fatalf("probes=%v firstMatch for entry %d = (%s,%d,%v)", probes, i, name, id, ok)
			}
		}
		// Name lookup and tombstones.
		if pos, ok := seg.findName("dev007"); !ok || pos != 7 {
			t.Fatalf("findName(dev007) = (%d,%v)", pos, ok)
		}
		seg.kill(7)
		if _, ok := seg.findName("dev007"); ok {
			t.Fatal("tombstoned name still found")
		}
		if v := seg.decideRaw(noisy(entries[7].FP, 7, 2), thr, true); v.OK() && v.Index == entries[7].ID {
			t.Fatalf("tombstoned entry still matches: %+v", v)
		}
		if seg.Live() != n-1 {
			t.Fatalf("Live = %d, want %d", seg.Live(), n-1)
		}
		if err := seg.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSegmentVerify: a clean file verifies; flipped bytes anywhere in the
// committed region are caught.
func TestSegmentVerify(t *testing.T) {
	entries := testEntries(30, 1024)
	path := writeTestSegment(t, entries, false)
	if err := VerifySegment(path); err != nil {
		t.Fatalf("clean segment failed verify: %v", err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the entry log: interior corruption, refused with
	// a CorruptError carrying the record offset.
	corrupt := append([]byte(nil), blob...)
	corrupt[headerSize+20] ^= 0xFF
	bad := filepath.Join(t.TempDir(), "seg-000001.pcseg")
	if err := os.WriteFile(bad, corrupt, 0o666); err != nil {
		t.Fatal(err)
	}
	_, err = LoadSegment(bad)
	var ce *CorruptError
	if !asCorrupt(err, &ce) {
		t.Fatalf("interior log corruption: got %v, want CorruptError", err)
	}
	if ce.Offset < headerSize || ce.Offset >= int64(len(blob)) {
		t.Fatalf("corruption offset %d out of file range", ce.Offset)
	}
}

func asCorrupt(err error, ce **CorruptError) bool {
	if err == nil {
		return false
	}
	c, ok := err.(*CorruptError)
	if ok {
		*ce = c
	}
	return ok
}

// TestSegmentTornTail: truncating a segment (losing the footer) salvages the
// longest valid prefix of the entry log instead of failing.
func TestSegmentTornTail(t *testing.T) {
	entries := testEntries(20, 1024)
	path := writeTestSegment(t, entries, false)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []int{4, 2, 3} {
		cut := headerSize + (len(blob)-headerSize)*(frac-1)/frac
		torn := filepath.Join(t.TempDir(), "seg-000002.pcseg")
		if err := os.WriteFile(torn, blob[:cut], 0o666); err != nil {
			t.Fatal(err)
		}
		seg, err := LoadSegment(torn)
		if err != nil {
			t.Fatalf("torn at %d: %v", cut, err)
		}
		if !seg.Salvaged() {
			t.Fatalf("torn at %d: not reported salvaged", cut)
		}
		// Whatever survived must be an exact prefix.
		for i := 0; i < seg.Len(); i++ {
			if seg.ID(i) != entries[i].ID || seg.Name(i) != entries[i].Name || !seg.FP(i).Equal(entries[i].FP) {
				t.Fatalf("torn at %d: salvaged entry %d diverges", cut, i)
			}
		}
		// And a salvaged file must fail strict verification.
		if err := VerifySegment(torn); err == nil {
			t.Fatal("salvaged segment passed strict verify")
		}
		seg.Close()
	}
}

// TestSegmentRejectsEmpty: segments hold at least one entry by contract.
func TestSegmentRejectsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg-000000.pcseg")
	if err := WriteSegment(path, nil, minhash.DefaultScheme, false, 8); err == nil {
		t.Fatal("empty segment accepted")
	}
}
