//go:build unix

// mmap_unix.go: read-only whole-file views as real private mmaps, so
// segment bytes page in on demand and stay off the Go heap.
package store

import (
	"fmt"
	"os"
	"syscall"
)

// mapping is a read-only view of a whole file. On unix it is a real
// private mmap, so the kernel pages segment bytes in on demand and the Go
// heap never holds the flushed fingerprints; mmap_other.go substitutes a
// read-into-memory fallback with the same surface.
type mapping struct {
	data   []byte
	mapped bool
}

// mapFile maps path read-only. Empty files yield an empty, unmapped view
// (mmap of length 0 is an error on most unixes).
func mapFile(path string) (*mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() == 0 {
		return &mapping{}, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	return &mapping{data: data, mapped: true}, nil
}

// Close releases the mapping. The data slice must not be used afterwards.
func (m *mapping) Close() error {
	if !m.mapped || m.data == nil {
		m.data = nil
		return nil
	}
	data := m.data
	m.data, m.mapped = nil, false
	return syscall.Munmap(data)
}
