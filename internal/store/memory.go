// memory.go: the in-RAM storage backend — the fingerprint.ShardedDB the
// serving layer has always used, satisfying Backend with a no-op Close.
package store

import "probablecause/internal/fingerprint"

// Memory is the in-RAM backend: the fingerprint.ShardedDB the serving layer
// has always used, unchanged, satisfying Backend with a no-op Close.
type Memory struct {
	*fingerprint.ShardedDB
}

// OpenMemory builds an empty in-memory backend.
func OpenMemory(dbCfg DBConfig) (*Memory, error) {
	db, err := dbCfg.newShardedDB()
	if err != nil {
		return nil, err
	}
	return &Memory{ShardedDB: db}, nil
}

// Close releases nothing; the database is garbage-collected.
func (m *Memory) Close() error { return nil }

var _ Backend = (*Memory)(nil)
