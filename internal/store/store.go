// Package store puts a pluggable storage backend behind the serving layer's
// fingerprint database. Two backends share one query/mutation surface and one
// verdict contract:
//
//   - Memory: the existing in-RAM fingerprint.ShardedDB, unchanged — every
//     entry lives in heap, snapshots are monolithic (the pre-PR 9 behavior).
//   - Tiered: an LSM-shaped engine. Fresh enrollments land in an in-RAM
//     memtable (a ShardedDB); at each checkpoint the memtable flushes to an
//     immutable, mmap'd segment file (format PCSEG01, segment.go) carrying
//     the per-entry error bitsets in the PR 8 band-major sliced layout, the
//     cached cardinalities, and the serialized LSH band index. Queries merge
//     the memtable's verdict with per-segment verdicts streamed straight off
//     the mappings through the SlicedBlock kernel, so the hot path never
//     materializes flushed fingerprints in heap. Segments accumulate until a
//     compaction merges them (dropping tombstones); a JSON manifest committed
//     by atomic rename is the engine's commit point.
//
// Determinism contract: a Tiered backend built by any interleaving of the
// same Add/Remove sequence — under any flush or compaction timing — answers
// Identify/Decide with the same (distance, id)-lexicographic winner and the
// same stable add-order ids as the Memory backend built from that sequence.
// With DBConfig.Plain the full Verdict (including the Matches count) is
// byte-identical; on indexed configurations the per-tier candidate sets
// differ from the per-shard ones, so only the (Name, Index, Distance, OK)
// answer is pinned, exactly as IndexedDB documents for its candidates-only
// Matches count. The property suite in property_test.go holds the engine to
// this under randomized interleavings and -race.
package store

import (
	"context"
	"fmt"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
)

// Backend is the storage seam behind server.Service: the full mutation and
// identification surface of fingerprint.ShardedDB plus lifecycle.
type Backend interface {
	// Add registers a fingerprint and returns its stable add-order id.
	Add(name string, fp *bitset.Set) int
	// Remove deletes the earliest-added live entry under name.
	Remove(name string) bool
	// Get returns the earliest-added live fingerprint under name.
	Get(name string) (*bitset.Set, bool)
	// Len counts live entries.
	Len() int
	// Generation counts logical mutations (Adds and Removes) for the verdict
	// cache's generational invalidation. Flush and compaction do not change
	// logical content and do not advance it.
	Generation() int64
	// Stats describes the backend for /v1/db.
	Stats() fingerprint.ShardStats
	// Export reassembles a plain DB of the live entries in add order.
	Export() *fingerprint.DB
	// ExportIDs returns the live entries with their add-order ids.
	ExportIDs() []fingerprint.IDEntry

	Identify(errorString *bitset.Set) (name string, index int, ok bool)
	IdentifyBest(errorString *bitset.Set) (name string, index int, dist float64)
	Decide(errorString *bitset.Set) fingerprint.Verdict
	DecideCtx(ctx context.Context, errorString *bitset.Set) fingerprint.Verdict
	ParallelIdentify(errorStrings []*bitset.Set, workers int) []fingerprint.Match
	ParallelDecide(errorStrings []*bitset.Set, workers int) []fingerprint.Verdict
	ParallelDecideCtx(ctxs []context.Context, errorStrings []*bitset.Set, workers int) []fingerprint.Verdict

	// Close releases the backend's resources (mappings, file handles).
	Close() error
}

// DurableBackend is the extra surface a disk-backed backend exposes so the
// serving layer can couple flushes to its WAL checkpoint watermark.
type DurableBackend interface {
	Backend
	// Watermark returns the WAL sequence recovered from the manifest: the
	// first record NOT reflected in the flushed segments.
	Watermark() uint64
	// Checkpoint flushes the memtable to a new segment, commits the manifest
	// with the given watermark, and compacts when the segment count crosses
	// the configured threshold. The serving layer calls it with the WAL
	// watermark captured under its enrollment lock, so a crash on either side
	// of the commit never double-enrolls.
	Checkpoint(watermark uint64) error
	// NeedsFlush reports whether the memtable has grown past the configured
	// flush threshold (the serving layer's cue to schedule a checkpoint).
	NeedsFlush() bool
	// TryStartFlush and EndFlush guard background checkpoint scheduling:
	// TryStartFlush returns true for exactly one caller until EndFlush, so
	// concurrent enrollments do not pile up duplicate flush goroutines.
	TryStartFlush() bool
	EndFlush()
}

// SegmentSnapshotter is the segment-shipping bootstrap surface: a backend
// whose committed state can be streamed as immutable files instead of a
// monolithic database export. SnapshotFiles pins the current committed
// segment set (refcounted against compaction sweeps), returning the manifest
// bytes that name them, their paths, and the manifest's WAL watermark;
// release must be called when streaming completes.
type SegmentSnapshotter interface {
	SnapshotFiles() (manifest []byte, paths []string, watermark uint64, release func(), err error)
}

// DBConfig parameterizes the in-memory database both backends build (the
// whole DB for Memory, the memtable for Tiered) — the knobs server.Config
// already exposes.
type DBConfig struct {
	Threshold    float64
	Shards       int
	Plain        bool
	Sliced       bool
	Probes       bool
	Workers      int
	BlockEntries int
}

func (c DBConfig) newShardedDB() (*fingerprint.ShardedDB, error) {
	scfg := fingerprint.ShardedConfig{
		Shards: c.Shards, Plain: c.Plain, Sliced: c.Sliced, BlockEntries: c.BlockEntries,
	}
	scfg.Index.Workers = c.Workers
	scfg.Index.Probes = c.Probes
	return fingerprint.NewShardedDB(c.Threshold, scfg)
}

// Config selects and parameterizes a backend.
type Config struct {
	// Backend is "memory" (default) or "tiered".
	Backend string
	// Dir is the tiered engine's directory (segment files + manifest).
	Dir string
	// FlushEntries is the memtable size at which NeedsFlush reports true;
	// 0 selects DefaultFlushEntries.
	FlushEntries int
	// CompactSegments is the segment count above which Checkpoint compacts;
	// 0 selects DefaultCompactSegments.
	CompactSegments int
	// CrashPoint, when non-empty, names a flush/compaction step at which the
	// engine hard-exits the process (os.Exit) — the storage chaos hook the
	// crash-recovery matrix drives via the PCSTORE_CRASH environment
	// variable. Recognized points: flush-before-commit, flush-after-commit,
	// compact-before-commit, compact-after-commit.
	CrashPoint string
}

// Defaults for the zero Config.
const (
	DefaultFlushEntries    = 1 << 16
	DefaultCompactSegments = 8
)

// Backend names.
const (
	BackendMemory = "memory"
	BackendTiered = "tiered"
)

// Open builds the configured backend. The memory backend ignores everything
// but dbCfg; the tiered backend recovers its state from cfg.Dir.
func Open(cfg Config, dbCfg DBConfig) (Backend, error) {
	switch cfg.Backend {
	case "", BackendMemory:
		return OpenMemory(dbCfg)
	case BackendTiered:
		return OpenTiered(cfg, dbCfg)
	default:
		return nil, fmt.Errorf("store: unknown backend %q (want %q or %q)", cfg.Backend, BackendMemory, BackendTiered)
	}
}
