// manifest.go: the tiered engine's commit point — the atomically
// rewritten JSON manifest naming the committed segments, tombstones, WAL
// watermark, and next add-order id.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"probablecause/internal/samplefile"
)

// ManifestFile is the tiered engine's commit point: a JSON document listing
// the committed segment files (in ascending id order), the persisted
// tombstones, the WAL watermark the flushed state reflects, and the next
// add-order id. It is rewritten atomically (temp-fsync-rename + directory
// sync) on every flush and compaction; a crash on either side of the rename
// leaves a fully consistent previous state, with any freshly written but
// uncommitted segment file swept as an orphan on the next open.
const ManifestFile = "MANIFEST"

type manifest struct {
	Version int `json:"version"`
	// Watermark is the WAL sequence of the first record NOT reflected in the
	// flushed segments — replay resumes there.
	Watermark uint64 `json:"wal_watermark"`
	// NextID is the add-order id the next enrollment receives (the memtable
	// base after recovery).
	NextID int `json:"next_id"`
	// Segments lists committed segment filenames in ascending id order.
	Segments []string `json:"segments"`
	// Tombstones lists add-order ids removed from flushed segments.
	Tombstones []int `json:"tombstones"`
}

const manifestVersion = 1

func loadManifest(dir string) (manifest, bool, error) {
	blob, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if errors.Is(err, os.ErrNotExist) {
		return manifest{Version: manifestVersion}, false, nil
	}
	if err != nil {
		return manifest{}, false, fmt.Errorf("store: reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return manifest{}, false, fmt.Errorf("store: decoding manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return manifest{}, false, fmt.Errorf("store: manifest version %d unsupported", m.Version)
	}
	for _, name := range m.Segments {
		if name == "" || name != filepath.Base(name) {
			return manifest{}, false, fmt.Errorf("store: manifest names invalid segment file %q", name)
		}
	}
	return m, true, nil
}

func commitManifest(dir string, m manifest) error {
	blob, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("store: encoding manifest: %w", err)
	}
	if err := samplefile.WriteFileAtomic(filepath.Join(dir, ManifestFile), append(blob, '\n')); err != nil {
		return fmt.Errorf("store: committing manifest: %w", err)
	}
	return samplefile.SyncDir(dir)
}
