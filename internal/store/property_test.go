package store

import (
	"fmt"
	"sync"
	"testing"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
	"probablecause/internal/prng"
)

// TestTieredScanEquivalence is the storage engine's ground truth: for
// randomized interleavings of add / remove / flush / compact / identify /
// decide, the tiered backend must answer exactly like an in-memory Memory
// backend fed the same Add/Remove sequence — flush and compaction timing can
// never change an answer or an id.
//
// Equality scoping follows the package contract: with DBConfig.Plain the full
// Verdict (including Matches) is byte-identical; on indexed and probed
// configurations per-tier candidate sets legitimately differ from per-shard
// ones, so (Name, Index, Distance, OK) is pinned. Reads run from a pool of
// goroutines at each checkpoint so the suite exercises concurrent access
// under -race.
func TestTieredScanEquivalence(t *testing.T) {
	const nbits = 1024
	configs := []struct {
		name string
		db   DBConfig
		full bool // full Verdict equality (Matches included)
	}{
		{"plain", DBConfig{Threshold: fingerprint.DefaultThreshold, Shards: 2, Plain: true, BlockEntries: 8}, true},
		{"indexed", DBConfig{Threshold: fingerprint.DefaultThreshold, Shards: 2, BlockEntries: 8}, false},
		{"sliced-probes", DBConfig{Threshold: fingerprint.DefaultThreshold, Shards: 2, Sliced: true, Probes: true, BlockEntries: 8}, false},
	}
	for _, cfg := range configs {
		for _, workers := range []int{1, 4} {
			cfg, workers := cfg, workers
			t.Run(fmt.Sprintf("%s/w%d", cfg.name, workers), func(t *testing.T) {
				t.Parallel()
				runScanEquivalence(t, cfg.db, cfg.full, workers, nbits)
			})
		}
	}
}

func runScanEquivalence(t *testing.T, dbCfg DBConfig, full bool, workers, nbits int) {
	src := prng.New(uint64(0xE0_0001 + workers + len(fmt.Sprint(dbCfg))))
	tiered, err := OpenTiered(Config{Dir: t.TempDir(), FlushEntries: 1 << 20, CompactSegments: 3}, dbCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tiered.Close()
	oracle, err := OpenMemory(dbCfg)
	if err != nil {
		t.Fatal(err)
	}

	// The op tape: a fingerprint pool with same-device noisy queries so
	// identifications actually hit, plus names that get re-enrolled after
	// removal (exercising earliest-added-wins across the tier boundary).
	type device struct {
		name string
		fp   *bitset.Set
	}
	pool := make([]device, 40)
	for i := range pool {
		pool[i] = device{fmt.Sprintf("dev%02d", i%25), testFP(uint64(i)+0xACE, nbits, 40)}
	}
	var queries []*bitset.Set

	check := func(step int) {
		t.Helper()
		if tiered.Len() != oracle.Len() {
			t.Fatalf("step %d: Len %d != oracle %d", step, tiered.Len(), oracle.Len())
		}
		// Concurrent readers: each worker sweeps a slice of the query set.
		var wg sync.WaitGroup
		errs := make(chan string, len(queries))
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for qi := w; qi < len(queries); qi += workers {
					q := queries[qi]
					gv, wv := tiered.Decide(q), oracle.Decide(q)
					if full {
						if gv != wv {
							errs <- fmt.Sprintf("step %d query %d: Decide %+v != oracle %+v", step, qi, gv, wv)
							return
						}
					} else if gv.Name != wv.Name || gv.Index != wv.Index || gv.Distance != wv.Distance || gv.OK() != wv.OK() {
						errs <- fmt.Sprintf("step %d query %d: Decide (%s,%d,%v,%v) != oracle (%s,%d,%v,%v)",
							step, qi, gv.Name, gv.Index, gv.Distance, gv.OK(), wv.Name, wv.Index, wv.Distance, wv.OK())
						return
					}
					gn, gi, gok := tiered.Identify(q)
					wn, wi, wok := oracle.Identify(q)
					if gn != wn || gi != wi || gok != wok {
						errs <- fmt.Sprintf("step %d query %d: Identify (%s,%d,%v) != oracle (%s,%d,%v)", step, qi, gn, gi, gok, wn, wi, wok)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		if msg, open := <-errs; open {
			t.Fatal(msg)
		}
		// The batch paths agree with themselves and the oracle.
		if len(queries) > 0 {
			gvs := tiered.ParallelDecide(queries, workers)
			wvs := oracle.ParallelDecide(queries, workers)
			for i := range gvs {
				if gvs[i].Index != wvs[i].Index || gvs[i].Distance != wvs[i].Distance {
					t.Fatalf("step %d: ParallelDecide[%d] (%d,%v) != oracle (%d,%v)",
						step, i, gvs[i].Index, gvs[i].Distance, wvs[i].Index, wvs[i].Distance)
				}
			}
		}
	}

	const steps = 400
	for step := 0; step < steps; step++ {
		switch op := src.Intn(100); {
		case op < 45: // add
			d := pool[src.Intn(len(pool))]
			gid := tiered.Add(d.name, d.fp)
			wid := oracle.Add(d.name, d.fp)
			if gid != wid {
				t.Fatalf("step %d: Add(%s) id %d != oracle %d", step, d.name, gid, wid)
			}
			if len(queries) < 60 {
				queries = append(queries, noisy(d.fp, uint64(step), 2))
			}
		case op < 60: // remove
			d := pool[src.Intn(len(pool))]
			if got, want := tiered.Remove(d.name), oracle.Remove(d.name); got != want {
				t.Fatalf("step %d: Remove(%s) %v != oracle %v", step, d.name, got, want)
			}
		case op < 72: // flush (tiered only — the oracle has no tiers)
			if err := tiered.Flush(); err != nil {
				t.Fatalf("step %d: flush: %v", step, err)
			}
		case op < 78: // checkpoint with compaction pressure
			if err := tiered.Checkpoint(uint64(step)); err != nil {
				t.Fatalf("step %d: checkpoint: %v", step, err)
			}
		case op < 90: // point reads
			d := pool[src.Intn(len(pool))]
			gfp, gok := tiered.Get(d.name)
			wfp, wok := oracle.Get(d.name)
			if gok != wok || (gok && !gfp.Equal(wfp)) {
				t.Fatalf("step %d: Get(%s) diverged (ok %v/%v)", step, d.name, gok, wok)
			}
		default: // full sweep
			check(step)
		}
	}
	check(steps)

	// Export equivalence: live entries with identical ids in identical order.
	ge, we := tiered.ExportIDs(), oracle.ExportIDs()
	if len(ge) != len(we) {
		t.Fatalf("ExportIDs %d entries != oracle %d", len(ge), len(we))
	}
	for i := range ge {
		if ge[i].ID != we[i].ID || ge[i].Name != we[i].Name || !ge[i].FP.Equal(we[i].FP) {
			t.Fatalf("ExportIDs[%d] (%d,%s) != oracle (%d,%s)", i, ge[i].ID, ge[i].Name, we[i].ID, we[i].Name)
		}
	}
	if tiered.SegmentCount() == 0 {
		t.Fatal("interleaving never produced a flushed segment — the test lost its teeth")
	}
}
