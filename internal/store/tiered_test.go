package store

import (
	"os"
	"path/filepath"
	"testing"

	"probablecause/internal/fingerprint"
)

func openTestTiered(t *testing.T, dir string, compact int) *Tiered {
	t.Helper()
	tb, err := OpenTiered(
		Config{Dir: dir, FlushEntries: 8, CompactSegments: compact},
		DBConfig{Threshold: fingerprint.DefaultThreshold, Shards: 1, BlockEntries: 8},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// TestTieredFlushRecover: enroll → flush → reopen recovers ids, names,
// watermark, and verdicts across the memtable/segment boundary.
func TestTieredFlushRecover(t *testing.T) {
	dir := t.TempDir()
	tb := openTestTiered(t, dir, 8)
	const n, nbits = 20, 1024
	entries := testEntries(n, nbits)
	for i, e := range entries {
		if id := tb.Add(e.Name, e.FP); id != i {
			t.Fatalf("Add %d returned id %d", i, id)
		}
	}
	if err := tb.Checkpoint(42); err != nil {
		t.Fatal(err)
	}
	if tb.SegmentCount() != 1 {
		t.Fatalf("SegmentCount = %d after flush", tb.SegmentCount())
	}
	// Post-flush adds land above the flushed range.
	extraFP := testFP(0x777, nbits, 40)
	if id := tb.Add("extra", extraFP); id != n {
		t.Fatalf("post-flush Add returned id %d, want %d", id, n)
	}
	// Flushed entries still answer identically.
	for i := 0; i < n; i += 5 {
		q := noisy(entries[i].FP, uint64(i), 2)
		if name, id, ok := tb.Identify(q); !ok || id != i || name != entries[i].Name {
			t.Fatalf("post-flush Identify(%d) = (%s,%d,%v)", i, name, id, ok)
		}
	}
	tb.Close()

	// Reopen: manifest restores watermark, next id, and the flushed segment;
	// the unflushed "extra" entry is gone (it was never checkpointed — the
	// serving layer replays it from the WAL).
	tb = openTestTiered(t, dir, 8)
	defer tb.Close()
	if tb.Watermark() != 42 {
		t.Fatalf("recovered watermark = %d", tb.Watermark())
	}
	if tb.Len() != n {
		t.Fatalf("recovered Len = %d, want %d", tb.Len(), n)
	}
	if _, ok := tb.Get("extra"); ok {
		t.Fatal("unflushed entry survived reopen without WAL replay")
	}
	// Re-adding it (as WAL replay would) reassigns the same id.
	if id := tb.Add("extra", extraFP); id != n {
		t.Fatalf("replayed Add returned id %d, want %d", id, n)
	}
	for i := 0; i < n; i += 5 {
		q := noisy(entries[i].FP, uint64(i), 2)
		if name, id, ok := tb.Identify(q); !ok || id != i || name != entries[i].Name {
			t.Fatalf("recovered Identify(%d) = (%s,%d,%v)", i, name, id, ok)
		}
	}
	if err := VerifyDir(dir); err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
}

// TestTieredTombstonePersistence: removes against flushed segments survive the
// next checkpoint + reopen; removes against the memtable never hit disk.
func TestTieredTombstonePersistence(t *testing.T) {
	dir := t.TempDir()
	tb := openTestTiered(t, dir, 8)
	entries := testEntries(12, 1024)
	for _, e := range entries {
		tb.Add(e.Name, e.FP)
	}
	if err := tb.Flush(); err != nil {
		t.Fatal(err)
	}
	// Tombstone a flushed entry and a fresh memtable entry.
	tb.Add("young", testFP(0x51, 1024, 40))
	if !tb.Remove(entries[3].Name) || !tb.Remove("young") {
		t.Fatal("Remove failed")
	}
	if tb.Len() != 11 {
		t.Fatalf("Len = %d after removes", tb.Len())
	}
	if err := tb.Flush(); err != nil { // persists the segment tombstone
		t.Fatal(err)
	}
	tb.Close()

	tb = openTestTiered(t, dir, 8)
	defer tb.Close()
	if tb.Len() != 11 {
		t.Fatalf("recovered Len = %d, want 11", tb.Len())
	}
	if _, ok := tb.Get(entries[3].Name); ok {
		t.Fatal("tombstoned segment entry resurrected on reopen")
	}
	if _, ok := tb.Get("young"); ok {
		t.Fatal("removed memtable entry resurrected")
	}
	// The survivor next to the tombstone keeps its id.
	if name, id, ok := tb.Identify(noisy(entries[4].FP, 4, 2)); !ok || id != 4 || name != entries[4].Name {
		t.Fatalf("Identify(4) = (%s,%d,%v)", name, id, ok)
	}
}

// TestTieredCompaction: pushing past CompactSegments merges adjacent segments,
// drops tombstones physically, and preserves every verdict and id.
func TestTieredCompaction(t *testing.T) {
	dir := t.TempDir()
	tb := openTestTiered(t, dir, 2)
	defer tb.Close()
	const batches, per, nbits = 5, 6, 1024
	entries := testEntries(batches*per, nbits)
	for b := 0; b < batches; b++ {
		for _, e := range entries[b*per : (b+1)*per] {
			tb.Add(e.Name, e.FP)
		}
		if b == 2 {
			// Tombstone an already-flushed entry mid-sequence.
			if !tb.Remove(entries[1].Name) {
				t.Fatal("Remove failed")
			}
		}
		if err := tb.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if got := tb.SegmentCount(); got > 2 {
		t.Fatalf("SegmentCount = %d after compaction (cap 2)", got)
	}
	if tb.Len() != batches*per-1 {
		t.Fatalf("Len = %d", tb.Len())
	}
	for i, e := range entries {
		q := noisy(e.FP, uint64(i), 2)
		name, id, ok := tb.Identify(q)
		if i == 1 {
			if ok && id == 1 {
				t.Fatal("tombstoned entry matched after compaction")
			}
			continue
		}
		if !ok || id != i || name != e.Name {
			t.Fatalf("post-compaction Identify(%d) = (%s,%d,%v)", i, name, id, ok)
		}
	}
	// Compaction dropped the merged tombstone from the persisted set.
	man, ok, err := loadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("manifest: %v %v", ok, err)
	}
	for _, id := range man.Tombstones {
		if id == 1 {
			t.Fatal("physically dropped tombstone still persisted")
		}
	}
	if err := VerifyDir(dir); err != nil {
		t.Fatalf("VerifyDir: %v", err)
	}
}

// TestTieredOrphanSweep: a segment file not named by the manifest — a flush
// that crashed before commit — is deleted at open.
func TestTieredOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	tb := openTestTiered(t, dir, 8)
	entries := testEntries(10, 1024)
	for _, e := range entries {
		tb.Add(e.Name, e.FP)
	}
	if err := tb.Flush(); err != nil {
		t.Fatal(err)
	}
	tb.Close()
	// Plant an orphan: valid segment bytes under an uncommitted name.
	committed := filepath.Join(dir, segmentName(0))
	blob, err := os.ReadFile(committed)
	if err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, segmentName(9))
	if err := os.WriteFile(orphan, blob, 0o666); err != nil {
		t.Fatal(err)
	}
	tb = openTestTiered(t, dir, 8)
	defer tb.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan not swept: %v", err)
	}
	if tb.Len() != 10 {
		t.Fatalf("Len = %d after sweep", tb.Len())
	}
	// The orphan's sequence number must not be reused blindly below committed
	// ones — next flush still lands on a fresh name and the store verifies.
	tb.Add("late", testFP(0x99, 1024, 40))
	if err := tb.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := VerifyDir(dir); err != nil {
		t.Fatalf("VerifyDir after sweep+flush: %v", err)
	}
}

// TestTieredRefusesTornCommitted: a committed segment that lost its footer
// (classified torn) must refuse to open, pointing at triage — never silently
// serve a prefix.
func TestTieredRefusesTornCommitted(t *testing.T) {
	dir := t.TempDir()
	tb := openTestTiered(t, dir, 8)
	for _, e := range testEntries(10, 1024) {
		tb.Add(e.Name, e.FP)
	}
	if err := tb.Flush(); err != nil {
		t.Fatal(err)
	}
	tb.Close()
	path := filepath.Join(dir, segmentName(0))
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob[:len(blob)*2/3], 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTiered(Config{Dir: dir}, DBConfig{Threshold: fingerprint.DefaultThreshold, Shards: 1}); err == nil {
		t.Fatal("torn committed segment opened without error")
	}
	if err := VerifyDir(dir); err == nil {
		t.Fatal("VerifyDir passed a torn committed segment")
	}
}

// TestTieredEmptyFlush: checkpointing an empty memtable just advances the
// watermark — no empty segment files.
func TestTieredEmptyFlush(t *testing.T) {
	dir := t.TempDir()
	tb := openTestTiered(t, dir, 8)
	defer tb.Close()
	if err := tb.Checkpoint(7); err != nil {
		t.Fatal(err)
	}
	if tb.SegmentCount() != 0 {
		t.Fatalf("empty flush created %d segments", tb.SegmentCount())
	}
	if tb.Watermark() != 7 {
		t.Fatalf("watermark = %d", tb.Watermark())
	}
	matches, _ := filepath.Glob(filepath.Join(dir, segmentPattern))
	if len(matches) != 0 {
		t.Fatalf("segment files on disk: %v", matches)
	}
}

// TestTieredGenerationStability: flush and compaction must not advance the
// generation (cached verdicts stay valid); Add/Remove must.
func TestTieredGenerationStability(t *testing.T) {
	dir := t.TempDir()
	tb := openTestTiered(t, dir, 1)
	defer tb.Close()
	for _, e := range testEntries(10, 1024) {
		tb.Add(e.Name, e.FP)
	}
	gen := tb.Generation()
	if gen != 10 {
		t.Fatalf("generation = %d after 10 adds", gen)
	}
	if err := tb.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, e := range testEntries(10, 1024)[:5] {
		tb.Add(e.Name+"-b", e.FP)
	}
	if err := tb.Flush(); err != nil { // triggers compaction (cap 1)
		t.Fatal(err)
	}
	if got := tb.Generation(); got != gen+5 {
		t.Fatalf("generation moved by flush/compact: %d, want %d", got, gen+5)
	}
	if !tb.Remove("dev003") {
		t.Fatal("Remove failed")
	}
	if got := tb.Generation(); got != gen+6 {
		t.Fatalf("generation = %d after remove, want %d", got, gen+6)
	}
}
