package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"probablecause/internal/fingerprint"
	"probablecause/internal/minhash"
)

// FuzzSegmentLoad mirrors the WAL's fuzz contract on PCSEG01 files: for a
// valid segment arbitrarily truncated and byte-flipped, LoadSegment must
// never panic, never serve wrong entries, and must classify damage exactly:
//
//   - pure truncation (footer lost) salvages a strict prefix of the entry
//     log — every recovered entry byte-identical to the original;
//   - interior corruption under an intact footer is refused with a
//     CorruptError carrying an in-range offset;
//   - a pristine file loads all entries with no salvage flag.
func FuzzSegmentLoad(f *testing.F) {
	const n, nbits = 12, 512
	entries := testEntries(n, nbits)
	dir := f.TempDir()
	clean := filepath.Join(dir, "seg-000000.pcseg")
	if err := WriteSegment(clean, entries, minhash.DefaultScheme, false, 4); err != nil {
		f.Fatal(err)
	}
	blob, err := os.ReadFile(clean)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(len(blob), -1, byte(0))           // pristine
	f.Add(len(blob)/2, -1, byte(0))         // torn mid-log
	f.Add(headerSize+3, -1, byte(0))        // torn inside first record
	f.Add(len(blob), headerSize+9, byte(1)) // interior log flip
	f.Add(len(blob), 5, byte(0x80))         // header flip
	f.Add(len(blob), len(blob)-10, byte(4)) // footer flip

	f.Fuzz(func(t *testing.T, cut int, flip int, xor byte) {
		if cut < 0 {
			cut = 0
		}
		if cut > len(blob) {
			cut = len(blob)
		}
		mut := append([]byte(nil), blob[:cut]...)
		flipped := false
		if flip >= 0 && flip < len(mut) && xor != 0 {
			mut[flip] ^= xor
			flipped = true
		}
		path := filepath.Join(t.TempDir(), "seg-000001.pcseg")
		if err := os.WriteFile(path, mut, 0o666); err != nil {
			t.Fatal(err)
		}
		seg, err := LoadSegment(path)
		if err != nil {
			// Refusals must be classified, and interior refusals must carry
			// an offset inside the file.
			if ce, ok := err.(*CorruptError); ok {
				if ce.Offset < 0 || ce.Offset > int64(len(mut)) {
					t.Fatalf("corruption offset %d outside [0,%d]", ce.Offset, len(mut))
				}
			}
			return
		}
		defer seg.Close()
		// Whatever loaded must be internally consistent and, where it maps
		// onto the original, identical to it. A salvage yields a prefix; a
		// committed load yields everything (unless a flip landed in a
		// columnar byte that was reconstructed — only possible via salvage).
		if !flipped {
			if cut == len(blob) {
				if seg.Salvaged() || seg.Len() != n {
					t.Fatalf("pristine file: salvaged=%v len=%d", seg.Salvaged(), seg.Len())
				}
			} else if !seg.Salvaged() {
				t.Fatalf("truncated to %d bytes but not salvaged", cut)
			}
			if seg.Len() > n {
				t.Fatalf("recovered %d entries from a %d-entry file", seg.Len(), n)
			}
			for i := 0; i < seg.Len(); i++ {
				if seg.ID(i) != entries[i].ID || seg.Name(i) != entries[i].Name || !seg.FP(i).Equal(entries[i].FP) {
					t.Fatalf("recovered entry %d diverges from original", i)
				}
			}
			return
		}
		// Byte-flipped and still loaded: the load path that accepted it must
		// have verified checksums over what it serves, so any served entry
		// whose record survives in the original must match it. CRC32 can in
		// principle collide, but not from a single-byte flip.
		for i := 0; i < seg.Len() && i < n; i++ {
			if seg.ID(i) == entries[i].ID && seg.Name(i) == entries[i].Name {
				continue
			}
			// The flip may legitimately have landed in this record only if
			// the file was then refused — it wasn't — or salvage cut before
			// it. A diverging served entry is a contract violation.
			t.Fatalf("served entry %d diverges after byte flip at %d", i, flip)
		}
	})
}

// TestFuzzSegmentLoadSmoke replays the seed corpus without the fuzzing
// engine — the CI storage job's cheap standing guard.
func TestFuzzSegmentLoadSmoke(t *testing.T) {
	const n, nbits = 12, 512
	entries := testEntries(n, nbits)
	dir := t.TempDir()
	clean := filepath.Join(dir, "seg-000000.pcseg")
	if err := WriteSegment(clean, entries, minhash.DefaultScheme, false, 4); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation point: salvage must always yield an exact prefix.
	for cut := 0; cut <= len(blob); cut += 13 {
		path := filepath.Join(dir, "seg-000001.pcseg")
		if err := os.WriteFile(path, blob[:cut], 0o666); err != nil {
			t.Fatal(err)
		}
		seg, err := LoadSegment(path)
		if err != nil {
			continue // refused (e.g. inside the header) — acceptable
		}
		for i := 0; i < seg.Len(); i++ {
			if seg.ID(i) != entries[i].ID || !seg.FP(i).Equal(entries[i].FP) {
				t.Fatalf("cut %d: salvaged entry %d diverges", cut, i)
			}
		}
		seg.Close()
	}
	// Every record header flipped: must refuse (intact footer) — never serve
	// the damaged record.
	for off := headerSize; off < int(len(blob)/3); off += 7 {
		mut := append([]byte(nil), blob...)
		mut[off] ^= 0x40
		path := filepath.Join(dir, "seg-000002.pcseg")
		if err := os.WriteFile(path, mut, 0o666); err != nil {
			t.Fatal(err)
		}
		seg, err := LoadSegment(path)
		if err == nil {
			// Loads are only acceptable if the flip changed nothing served.
			same := seg.Len() == n
			for i := 0; same && i < n; i++ {
				same = seg.ID(i) == entries[i].ID && seg.FP(i).Equal(entries[i].FP)
			}
			seg.Close()
			if !same {
				t.Fatalf("flip at %d served diverging data", off)
			}
			if !bytes.Equal(mut, blob) {
				t.Fatalf("flip at %d accepted without refusal", off)
			}
		}
	}
	_ = fingerprint.DefaultThreshold
}
