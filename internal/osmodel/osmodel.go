// Package osmodel models how a commodity operating system places application
// data in physical memory — the part of the end-to-end experiment the paper
// measured with Valgrind on an Ubuntu VM (§7.6).
//
// The paper's observations, which this model encodes:
//
//   - an output buffer occupies *consecutive* physical pages ("data is
//     stored in consecutive physical pages in main memory");
//   - the base of the buffer differs from run to run ("the operating
//     system's memory mapping causes the edge-detection program to store its
//     results in different memory pages during different runs") — this is
//     what makes stitching possible;
//   - pages are not remapped within a run.
//
// The package also implements the page-level-ASLR defense of §8.2.3, which
// scatters the buffer's pages so no two outputs ever share a *contiguous*
// overlap for the stitcher to align on.
package osmodel

import (
	"fmt"

	"probablecause/internal/prng"
)

// Memory models the physical memory of one victim system.
type Memory struct {
	pages int
	rng   *prng.Source
}

// NewMemory returns a memory of the given number of physical pages whose
// placement decisions derive from seed.
func NewMemory(pages int, seed uint64) (*Memory, error) {
	if pages <= 0 {
		return nil, fmt.Errorf("osmodel: non-positive page count %d", pages)
	}
	return &Memory{pages: pages, rng: prng.New(prng.Hash(seed, 0x05))}, nil
}

// Pages returns the size of physical memory in pages.
func (m *Memory) Pages() int { return m.pages }

// Placement records which physical pages hold one output buffer, in buffer
// order.
type Placement struct {
	// Phys[i] is the physical page holding the i-th page of the buffer.
	Phys []int
	// Contiguous reports whether the placement is one consecutive run (the
	// commodity default) or scattered (the page-ASLR defense).
	Contiguous bool
}

// Place allocates an n-page output buffer at a uniformly random contiguous
// physical range — one program run on the commodity system.
func (m *Memory) Place(n int) (Placement, error) {
	if n <= 0 || n > m.pages {
		return Placement{}, fmt.Errorf("osmodel: cannot place %d pages in %d-page memory", n, m.pages)
	}
	start := m.rng.Intn(m.pages - n + 1)
	phys := make([]int, n)
	for i := range phys {
		phys[i] = start + i
	}
	return Placement{Phys: phys, Contiguous: true}, nil
}

// PlaceScattered allocates an n-page buffer at n distinct, randomly chosen,
// non-consecutive-by-design physical pages — the page-level ASLR defense of
// §8.2.3. The buffer's logical adjacency carries no information about
// physical adjacency.
func (m *Memory) PlaceScattered(n int) (Placement, error) {
	if n <= 0 || n > m.pages {
		return Placement{}, fmt.Errorf("osmodel: cannot place %d pages in %d-page memory", n, m.pages)
	}
	// Partial Fisher–Yates over the page space via a sparse swap map keeps
	// the cost O(n) even for very large memories.
	swaps := make(map[int]int, n)
	phys := make([]int, n)
	for i := 0; i < n; i++ {
		j := i + m.rng.Intn(m.pages-i)
		vi, ok := swaps[i]
		if !ok {
			vi = i
		}
		vj, ok := swaps[j]
		if !ok {
			vj = j
		}
		phys[i] = vj
		swaps[j] = vi
		swaps[i] = vj // keep map consistent if j == i or later reads
	}
	return Placement{Phys: phys, Contiguous: false}, nil
}
