package osmodel

import (
	"fmt"
	"math/bits"
	"sort"

	"probablecause/internal/prng"
)

// Placer abstracts "where does the OS put an n-page output buffer": the
// uniform model (Memory), the page-ASLR defense (Scattered), and the
// allocator-backed model (System) all satisfy it.
type Placer interface {
	// Place returns the physical pages holding an n-page output buffer.
	Place(n int) (Placement, error)
	// Pages returns the size of physical memory in pages.
	Pages() int
}

var (
	_ Placer = (*Memory)(nil)
	_ Placer = (*Scattered)(nil)
	_ Placer = (*System)(nil)
)

// Scattered adapts a Memory to place buffers with page-level ASLR
// (§8.2.3) — the defense configuration of the end-to-end experiment.
type Scattered struct {
	*Memory
}

// Place scatters the buffer across random distinct pages.
func (s Scattered) Place(n int) (Placement, error) {
	return s.PlaceScattered(n)
}

// Buddy is a binary buddy allocator over a power-of-two number of physical
// pages — the same discipline the Linux physical page allocator uses, and
// the mechanism behind the paper's Valgrind observation that an output
// buffer is physically contiguous but lands at a different base every run.
type Buddy struct {
	pages    int
	maxOrder int
	// free[k] holds the start pages of free blocks of 2^k pages, sorted.
	free [][]int
}

// NewBuddy returns an allocator over pages physical pages (a power of two).
func NewBuddy(pages int) (*Buddy, error) {
	if pages <= 0 || pages&(pages-1) != 0 {
		return nil, fmt.Errorf("osmodel: buddy size %d is not a positive power of two", pages)
	}
	maxOrder := bits.TrailingZeros(uint(pages))
	b := &Buddy{pages: pages, maxOrder: maxOrder, free: make([][]int, maxOrder+1)}
	b.free[maxOrder] = []int{0}
	return b, nil
}

// Pages returns the managed memory size.
func (b *Buddy) Pages() int { return b.pages }

// orderFor returns the smallest order whose block fits n pages.
func orderFor(n int) int {
	o := 0
	for 1<<o < n {
		o++
	}
	return o
}

// Alloc returns the start page of a block holding n pages, splitting larger
// blocks as needed (first-fit on the lowest adequate order).
func (b *Buddy) Alloc(n int) (int, error) {
	if n <= 0 || n > b.pages {
		return 0, fmt.Errorf("osmodel: cannot allocate %d pages from %d", n, b.pages)
	}
	want := orderFor(n)
	k := want
	for k <= b.maxOrder && len(b.free[k]) == 0 {
		k++
	}
	if k > b.maxOrder {
		return 0, fmt.Errorf("osmodel: out of memory allocating %d pages", n)
	}
	start := b.free[k][0]
	b.free[k] = b.free[k][1:]
	// Split down to the wanted order, returning the upper halves to the
	// free lists.
	for k > want {
		k--
		b.insertFree(k, start+1<<k)
	}
	return start, nil
}

// AllocRandomFreePage allocates one page chosen uniformly over all free
// pages (rank selects the rank-th free page in address order). This models
// a mapping starting wherever the system's free memory happens to be — the
// source of the run-to-run base variation the paper observed.
func (b *Buddy) AllocRandomFreePage(rank int) (int, error) {
	total := b.FreePages()
	if total == 0 {
		return 0, fmt.Errorf("osmodel: out of memory")
	}
	if rank < 0 || rank >= total {
		rank %= total
		if rank < 0 {
			rank += total
		}
	}
	for o, blocks := range b.free {
		size := 1 << o
		for _, start := range blocks {
			if rank < size {
				pg := start + rank
				if !b.AllocAt(pg) {
					return 0, fmt.Errorf("osmodel: internal: free page %d not allocatable", pg)
				}
				return pg, nil
			}
			rank -= size
		}
	}
	return 0, fmt.Errorf("osmodel: internal: rank walk fell off the free lists")
}

// AllocAt allocates the single page pg if it is currently free, splitting
// whatever free block contains it. It returns false if the page is in use.
// This models the kernel's preference for extending an anonymous mapping
// with the physically next page (per-CPU page lists / sequential carving),
// which is what makes output buffers come out contiguous in practice.
func (b *Buddy) AllocAt(pg int) bool {
	if pg < 0 || pg >= b.pages {
		return false
	}
	// Find the free block containing pg.
	for o := 0; o <= b.maxOrder; o++ {
		blockStart := pg &^ (1<<o - 1)
		idx := sort.SearchInts(b.free[o], blockStart)
		if idx >= len(b.free[o]) || b.free[o][idx] != blockStart {
			continue
		}
		// Remove it and split down, keeping pg and freeing the rest.
		b.free[o] = append(b.free[o][:idx], b.free[o][idx+1:]...)
		for k := o - 1; k >= 0; k-- {
			half := blockStart + 1<<k
			if pg < half {
				b.insertFree(k, half)
			} else {
				b.insertFree(k, blockStart)
				blockStart = half
			}
		}
		return true
	}
	return false
}

// Free returns the n-page block at start to the allocator, coalescing
// buddies upward.
func (b *Buddy) Free(start, n int) error {
	o := orderFor(n)
	size := 1 << o
	if start < 0 || start%size != 0 || start+size > b.pages {
		return fmt.Errorf("osmodel: bad free of %d pages at %d", n, start)
	}
	for o < b.maxOrder {
		buddy := start ^ (1 << o)
		idx := sort.SearchInts(b.free[o], buddy)
		if idx >= len(b.free[o]) || b.free[o][idx] != buddy {
			break
		}
		// Coalesce with the buddy.
		b.free[o] = append(b.free[o][:idx], b.free[o][idx+1:]...)
		if buddy < start {
			start = buddy
		}
		o++
	}
	b.insertFree(o, start)
	return nil
}

func (b *Buddy) insertFree(order, start int) {
	idx := sort.SearchInts(b.free[order], start)
	b.free[order] = append(b.free[order], 0)
	copy(b.free[order][idx+1:], b.free[order][idx:])
	b.free[order][idx] = start
}

// FreePages returns the total number of free pages (for invariant checks).
func (b *Buddy) FreePages() int {
	total := 0
	for o, blocks := range b.free {
		total += len(blocks) << o
	}
	return total
}

// System models the victim machine at the allocator level: every Place call
// is one program run that churns the physical allocator (scratch
// allocations of random sizes, partially freed in random order) before
// allocating the output buffer. The buffer is physically contiguous (a
// buddy block) and its base varies run to run — the two properties the
// paper established with Valgrind (§7.6) — but here they *emerge* from
// allocator behaviour instead of being postulated.
type System struct {
	buddy *Buddy
	rng   *prng.Source
	// held are long-lived allocations surviving across runs (cached pages,
	// daemons), bounding how much of memory the output can land in.
	held [][2]int // (start, pages)
	// prevPages is the previous run's output buffer, freed on the next run.
	prevPages []int
	hasPrev   bool
	// ChurnAllocs bounds the per-run scratch allocation count.
	ChurnAllocs int
	// ChurnMaxPages bounds each scratch allocation's size.
	ChurnMaxPages int
	// HoldProb is the probability a scratch allocation survives the run.
	HoldProb float64
}

// NewSystem returns an allocator-backed placement model over a power-of-two
// page count.
func NewSystem(pages int, seed uint64) (*System, error) {
	b, err := NewBuddy(pages)
	if err != nil {
		return nil, err
	}
	return &System{
		buddy:         b,
		rng:           prng.New(prng.Hash(seed, 0x5157)),
		ChurnAllocs:   16,
		ChurnMaxPages: 8,
		HoldProb:      0.1,
	}, nil
}

// Pages returns the physical memory size.
func (s *System) Pages() int { return s.buddy.pages }

// Place simulates one program run and returns the output buffer placement.
func (s *System) Place(n int) (Placement, error) {
	if n <= 0 || n > s.buddy.pages {
		return Placement{}, fmt.Errorf("osmodel: cannot place %d pages in %d-page system", n, s.buddy.pages)
	}
	// The previous run's output is long gone by the time a new run starts.
	if s.hasPrev {
		for _, pg := range s.prevPages {
			if err := s.buddy.Free(pg, 1); err != nil {
				return Placement{}, err
			}
		}
		s.hasPrev = false
	}
	// Occasionally release old long-lived allocations so memory never
	// fills up.
	keep := s.held[:0]
	for _, h := range s.held {
		if s.rng.Float64() < 0.25 {
			if err := s.buddy.Free(h[0], h[1]); err != nil {
				return Placement{}, err
			}
		} else {
			keep = append(keep, h)
		}
	}
	s.held = keep

	// Scratch churn: allocate, mostly free, sometimes hold.
	type alloc struct{ start, pages int }
	var scratch []alloc
	for i := 0; i < s.ChurnAllocs; i++ {
		sz := 1 + s.rng.Intn(s.ChurnMaxPages)
		start, err := s.buddy.Alloc(sz)
		if err != nil {
			break // fragmented/full: a real kernel would reclaim; we just stop churning
		}
		scratch = append(scratch, alloc{start, sz})
	}
	s.rng.Shuffle(len(scratch), func(i, j int) { scratch[i], scratch[j] = scratch[j], scratch[i] })
	for _, a := range scratch {
		if s.rng.Float64() < s.HoldProb {
			s.held = append(s.held, [2]int{a.start, a.pages})
			continue
		}
		if err := s.buddy.Free(a.start, a.pages); err != nil {
			return Placement{}, err
		}
	}

	// The output buffer is faulted in page by page, the way an anonymous
	// mapping really grows. A buddy allocator with address-ordered free
	// lists hands out *consecutive* pages while carving a large block, so
	// the buffer comes out physically contiguous at an arbitrary,
	// unaligned base — exactly the paper's Valgrind observation. Heavy
	// fragmentation can introduce a jump mid-buffer; the placement then
	// reports Contiguous=false, as a real trace would.
	phys := make([]int, n)
	for i := range phys {
		// Prefer extending the mapping with the physically next page; fall
		// back to whatever the allocator hands out.
		if i > 0 && s.buddy.AllocAt(phys[i-1]+1) {
			phys[i] = phys[i-1] + 1
			continue
		}
		// (Re)start the run at a uniformly random free page: bases vary
		// run to run, and large coalesced regions keep the continuation
		// contiguous.
		pg, err := s.buddy.AllocRandomFreePage(s.rng.Intn(s.buddy.FreePages()))
		if err != nil {
			// Roll back what we took so the system stays consistent.
			for j := 0; j < i; j++ {
				_ = s.buddy.Free(phys[j], 1)
			}
			return Placement{}, fmt.Errorf("osmodel: output buffer page %d: %w", i, err)
		}
		phys[i] = pg
	}
	s.prevPages, s.hasPrev = phys, true
	contiguous := true
	for i := 1; i < n; i++ {
		if phys[i] != phys[i-1]+1 {
			contiguous = false
			break
		}
	}
	return Placement{Phys: phys, Contiguous: contiguous}, nil
}
