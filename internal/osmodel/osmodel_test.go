package osmodel

import (
	"testing"
)

func TestNewMemoryValidation(t *testing.T) {
	if _, err := NewMemory(0, 1); err == nil {
		t.Error("0 pages accepted")
	}
	if _, err := NewMemory(-5, 1); err == nil {
		t.Error("negative pages accepted")
	}
	m, err := NewMemory(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Pages() != 100 {
		t.Fatalf("Pages = %d", m.Pages())
	}
}

func TestPlaceContiguousInRange(t *testing.T) {
	m, _ := NewMemory(1000, 2)
	for i := 0; i < 100; i++ {
		p, err := m.Place(10)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Contiguous || len(p.Phys) != 10 {
			t.Fatalf("placement = %+v", p)
		}
		for j, pg := range p.Phys {
			if pg < 0 || pg >= 1000 {
				t.Fatalf("page %d out of range", pg)
			}
			if j > 0 && pg != p.Phys[j-1]+1 {
				t.Fatalf("non-consecutive placement: %v", p.Phys)
			}
		}
	}
}

func TestPlaceVariesAcrossRuns(t *testing.T) {
	m, _ := NewMemory(10000, 3)
	starts := map[int]bool{}
	for i := 0; i < 50; i++ {
		p, err := m.Place(10)
		if err != nil {
			t.Fatal(err)
		}
		starts[p.Phys[0]] = true
	}
	if len(starts) < 40 {
		t.Fatalf("only %d distinct starts in 50 runs — placement not randomized", len(starts))
	}
}

func TestPlaceCoversFullRange(t *testing.T) {
	m, _ := NewMemory(20, 4)
	seenFirst, seenLast := false, false
	for i := 0; i < 500; i++ {
		p, err := m.Place(5)
		if err != nil {
			t.Fatal(err)
		}
		if p.Phys[0] == 0 {
			seenFirst = true
		}
		if p.Phys[4] == 19 {
			seenLast = true
		}
	}
	if !seenFirst || !seenLast {
		t.Fatalf("placement never reached boundaries: first=%v last=%v", seenFirst, seenLast)
	}
}

func TestPlaceValidation(t *testing.T) {
	m, _ := NewMemory(10, 5)
	if _, err := m.Place(0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := m.Place(11); err == nil {
		t.Error("n > memory accepted")
	}
	if _, err := m.Place(10); err != nil {
		t.Errorf("exact-fit placement rejected: %v", err)
	}
	if _, err := m.PlaceScattered(0); err == nil {
		t.Error("scattered n=0 accepted")
	}
	if _, err := m.PlaceScattered(11); err == nil {
		t.Error("scattered n > memory accepted")
	}
}

func TestPlaceScatteredDistinctPages(t *testing.T) {
	m, _ := NewMemory(1000, 6)
	for i := 0; i < 50; i++ {
		p, err := m.PlaceScattered(100)
		if err != nil {
			t.Fatal(err)
		}
		if p.Contiguous {
			t.Fatal("scattered placement marked contiguous")
		}
		seen := map[int]bool{}
		for _, pg := range p.Phys {
			if pg < 0 || pg >= 1000 {
				t.Fatalf("page %d out of range", pg)
			}
			if seen[pg] {
				t.Fatalf("duplicate physical page %d", pg)
			}
			seen[pg] = true
		}
	}
}

func TestPlaceScatteredBreaksAdjacency(t *testing.T) {
	m, _ := NewMemory(100000, 7)
	p, err := m.PlaceScattered(1000)
	if err != nil {
		t.Fatal(err)
	}
	adjacent := 0
	for i := 1; i < len(p.Phys); i++ {
		if p.Phys[i] == p.Phys[i-1]+1 {
			adjacent++
		}
	}
	// Random pages are adjacent with probability ~1/100: expect ~10 pairs,
	// never the ~999 a contiguous run would have.
	if adjacent > 100 {
		t.Fatalf("%d adjacent pairs — scattering is not scattering", adjacent)
	}
}

func TestPlaceScatteredExactFit(t *testing.T) {
	m, _ := NewMemory(16, 8)
	p, err := m.PlaceScattered(16)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, pg := range p.Phys {
		seen[pg] = true
	}
	if len(seen) != 16 {
		t.Fatalf("exact-fit scatter is not a permutation: %v", p.Phys)
	}
}
