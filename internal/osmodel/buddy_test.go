package osmodel

import (
	"testing"
	"testing/quick"
)

func TestNewBuddyValidation(t *testing.T) {
	for _, n := range []int{0, -4, 3, 100} {
		if _, err := NewBuddy(n); err == nil {
			t.Errorf("size %d accepted", n)
		}
	}
	b, err := NewBuddy(64)
	if err != nil {
		t.Fatal(err)
	}
	if b.Pages() != 64 || b.FreePages() != 64 {
		t.Fatalf("Pages=%d FreePages=%d", b.Pages(), b.FreePages())
	}
}

func TestBuddyAllocFreeRoundTrip(t *testing.T) {
	b, _ := NewBuddy(64)
	start, err := b.Alloc(5) // rounds to an 8-page block
	if err != nil {
		t.Fatal(err)
	}
	if start%8 != 0 {
		t.Fatalf("5-page alloc at %d not aligned to its 8-page block", start)
	}
	if b.FreePages() != 56 {
		t.Fatalf("FreePages = %d, want 56", b.FreePages())
	}
	if err := b.Free(start, 5); err != nil {
		t.Fatal(err)
	}
	if b.FreePages() != 64 {
		t.Fatalf("FreePages after free = %d, want 64 (coalesced)", b.FreePages())
	}
	// Fully coalesced: a whole-memory allocation must succeed again.
	if _, err := b.Alloc(64); err != nil {
		t.Fatalf("full coalescing failed: %v", err)
	}
}

func TestBuddyExhaustion(t *testing.T) {
	b, _ := NewBuddy(16)
	for i := 0; i < 4; i++ {
		if _, err := b.Alloc(4); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Alloc(1); err == nil {
		t.Fatal("allocation from exhausted memory succeeded")
	}
	if _, err := b.Alloc(0); err == nil {
		t.Fatal("zero-page allocation accepted")
	}
	if _, err := b.Alloc(32); err == nil {
		t.Fatal("oversized allocation accepted")
	}
}

func TestBuddyFreeValidation(t *testing.T) {
	b, _ := NewBuddy(16)
	if err := b.Free(3, 4); err == nil {
		t.Error("misaligned free accepted")
	}
	if err := b.Free(-4, 4); err == nil {
		t.Error("negative free accepted")
	}
	if err := b.Free(16, 4); err == nil {
		t.Error("out-of-range free accepted")
	}
}

func TestBuddyNoOverlappingAllocations(t *testing.T) {
	b, _ := NewBuddy(256)
	used := map[int]bool{}
	type alloc struct{ start, n int }
	var allocs []alloc
	for i := 0; i < 40; i++ {
		n := 1 + i%7
		start, err := b.Alloc(n)
		if err != nil {
			break
		}
		size := 1
		for size < n {
			size *= 2
		}
		for p := start; p < start+size; p++ {
			if used[p] {
				t.Fatalf("page %d double-allocated", p)
			}
			used[p] = true
		}
		allocs = append(allocs, alloc{start, n})
	}
	for _, a := range allocs {
		if err := b.Free(a.start, a.n); err != nil {
			t.Fatal(err)
		}
	}
	if b.FreePages() != 256 {
		t.Fatalf("FreePages = %d after freeing everything", b.FreePages())
	}
}

// Property: random alloc/free sequences conserve pages and never corrupt
// the free lists (free-page accounting always consistent).
func TestQuickBuddyConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		b, err := NewBuddy(128)
		if err != nil {
			return false
		}
		type alloc struct{ start, n int }
		var live []alloc
		allocated := 0
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 {
				n := int(op/2)%8 + 1
				start, err := b.Alloc(n)
				if err != nil {
					continue
				}
				size := 1
				for size < n {
					size *= 2
				}
				live = append(live, alloc{start, n})
				allocated += size
			} else {
				i := int(op/2) % len(live)
				a := live[i]
				live = append(live[:i], live[i+1:]...)
				if err := b.Free(a.start, a.n); err != nil {
					return false
				}
				size := 1
				for size < a.n {
					size *= 2
				}
				allocated -= size
			}
			if b.FreePages()+allocated != 128 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSystemPlacementsVaryAndMostlyContiguous(t *testing.T) {
	s, err := NewSystem(1024, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Pages() != 1024 {
		t.Fatalf("Pages = %d", s.Pages())
	}
	starts := map[int]bool{}
	contiguous := 0
	for i := 0; i < 100; i++ {
		pl, err := s.Place(8)
		if err != nil {
			t.Fatal(err)
		}
		if len(pl.Phys) != 8 {
			t.Fatalf("placement %+v", pl)
		}
		if pl.Contiguous {
			contiguous++
			for j := 1; j < len(pl.Phys); j++ {
				if pl.Phys[j] != pl.Phys[j-1]+1 {
					t.Fatalf("flagged contiguous but isn't: %v", pl.Phys)
				}
			}
		}
		starts[pl.Phys[0]] = true
	}
	// The Valgrind observations: buffers are (almost always) physically
	// contiguous, and different runs use different pages. Fragmentation may
	// split the occasional buffer.
	if contiguous < 80 {
		t.Fatalf("only %d/100 contiguous placements", contiguous)
	}
	// Distinct bases: the property that makes stitching possible.
	if len(starts) < 10 {
		t.Fatalf("only %d distinct bases over 100 runs — allocator churn ineffective", len(starts))
	}
}

func TestSystemValidation(t *testing.T) {
	if _, err := NewSystem(100, 1); err == nil {
		t.Error("non-power-of-two accepted")
	}
	s, err := NewSystem(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place(0); err == nil {
		t.Error("0-page placement accepted")
	}
	if _, err := s.Place(128); err == nil {
		t.Error("oversized placement accepted")
	}
}

func TestSystemSurvivesManyRuns(t *testing.T) {
	// Long-lived holds must not leak memory to exhaustion.
	s, err := NewSystem(256, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := s.Place(4); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}

func TestScatteredAdapter(t *testing.T) {
	m, err := NewMemory(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	var p Placer = Scattered{m}
	pl, err := p.Place(10)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Contiguous {
		t.Fatal("scattered adapter produced contiguous placement")
	}
	if p.Pages() != 100 {
		t.Fatalf("Pages = %d", p.Pages())
	}
}

func TestAllocAt(t *testing.T) {
	b, _ := NewBuddy(16)
	if !b.AllocAt(5) {
		t.Fatal("AllocAt on free page failed")
	}
	if b.FreePages() != 15 {
		t.Fatalf("FreePages = %d, want 15", b.FreePages())
	}
	if b.AllocAt(5) {
		t.Fatal("AllocAt on allocated page succeeded")
	}
	if b.AllocAt(-1) || b.AllocAt(16) {
		t.Fatal("AllocAt out of range succeeded")
	}
	if err := b.Free(5, 1); err != nil {
		t.Fatal(err)
	}
	if b.FreePages() != 16 {
		t.Fatalf("FreePages after free = %d (coalescing broken)", b.FreePages())
	}
	if _, err := b.Alloc(16); err != nil {
		t.Fatalf("full block unavailable after AllocAt round trip: %v", err)
	}
}

func TestAllocAtEveryPage(t *testing.T) {
	b, _ := NewBuddy(32)
	for pg := 0; pg < 32; pg++ {
		if !b.AllocAt(pg) {
			t.Fatalf("AllocAt(%d) failed", pg)
		}
	}
	if b.FreePages() != 0 {
		t.Fatalf("FreePages = %d after allocating all", b.FreePages())
	}
	for pg := 0; pg < 32; pg++ {
		if err := b.Free(pg, 1); err != nil {
			t.Fatal(err)
		}
	}
	if b.FreePages() != 32 {
		t.Fatalf("FreePages = %d, want 32", b.FreePages())
	}
}

func TestAllocRandomFreePageEdges(t *testing.T) {
	b, _ := NewBuddy(16)
	// Negative and oversized ranks wrap rather than fail.
	if _, err := b.AllocRandomFreePage(-3); err != nil {
		t.Fatalf("negative rank: %v", err)
	}
	if _, err := b.AllocRandomFreePage(1000); err != nil {
		t.Fatalf("oversized rank: %v", err)
	}
	// Exhaust memory: must error rather than loop.
	for b.FreePages() > 0 {
		if _, err := b.AllocRandomFreePage(0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.AllocRandomFreePage(0); err == nil {
		t.Fatal("allocation from empty memory succeeded")
	}
}

func TestAllocRandomFreePageRankIsAddressOrdered(t *testing.T) {
	b, _ := NewBuddy(16)
	// Rank k must return the k-th free page in address order on a fresh
	// allocator.
	for want := 0; want < 4; want++ {
		pg, err := b.AllocRandomFreePage(0)
		if err != nil {
			t.Fatal(err)
		}
		if pg != want {
			t.Fatalf("rank-0 allocation = %d, want %d", pg, want)
		}
	}
}
