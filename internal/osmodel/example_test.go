package osmodel_test

import (
	"fmt"

	"probablecause/internal/osmodel"
)

// Example shows the commodity-OS placement model: contiguous buffers at
// run-varying bases (the §7.6 Valgrind observations).
func Example() {
	mem, err := osmodel.NewMemory(1024, 42)
	if err != nil {
		panic(err)
	}
	a, _ := mem.Place(8)
	b, _ := mem.Place(8)
	fmt.Println("contiguous:", a.Contiguous && b.Contiguous)
	fmt.Println("bases differ:", a.Phys[0] != b.Phys[0])
	// Output:
	// contiguous: true
	// bases differ: true
}

// ExampleBuddy exercises the buddy allocator directly.
func ExampleBuddy() {
	b, err := osmodel.NewBuddy(64)
	if err != nil {
		panic(err)
	}
	start, _ := b.Alloc(5) // rounds up to an 8-page block
	fmt.Println("aligned:", start%8 == 0)
	fmt.Println("free pages:", b.FreePages())
	_ = b.Free(start, 5)
	fmt.Println("after free:", b.FreePages())
	// Output:
	// aligned: true
	// free pages: 56
	// after free: 64
}
