package analysis

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("stddev = %v", s.Stddev)
	}
}

func TestSummarizeEvenMedian(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Median != 2.5 {
		t.Fatalf("median = %v, want 2.5", s.Median)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Stddev != 0 || s.Mean != 7 || s.Median != 7 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty sample")
		}
	}()
	Summarize(nil)
}

func TestSummaryString(t *testing.T) {
	if got := Summarize([]float64{1, 2}).String(); !strings.Contains(got, "n=2") {
		t.Fatalf("String = %q", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	h.AddAll([]float64{0.05, 0.05, 0.95, 0.5})
	if h.Counts[0] != 2 || h.Counts[9] != 1 || h.Counts[5] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.N() != 4 {
		t.Fatalf("N = %d", h.N())
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(99)
	h.Add(1.0) // exactly Hi clamps to last bucket
	if h.Counts[0] != 1 || h.Counts[3] != 2 {
		t.Fatalf("counts = %v", h.Counts)
	}
}

func TestHistogramBucketCenter(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	if c := h.BucketCenter(0); c != 0.5 {
		t.Fatalf("center(0) = %v", c)
	}
	if c := h.BucketCenter(9); c != 9.5 {
		t.Fatalf("center(9) = %v", c)
	}
}

func TestHistogramCSV(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.3)
	got := h.CSV()
	if !strings.HasPrefix(got, "bucket_center,count\n") || !strings.Contains(got, "0.5,1") {
		t.Fatalf("CSV = %q", got)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	if got := h.Render(40); got != "(empty histogram)\n" {
		t.Fatalf("empty render = %q", got)
	}
	h.AddAll([]float64{0.15, 0.15, 0.85})
	got := h.Render(40)
	if !strings.Contains(got, "#") {
		t.Fatalf("render lacks bars: %q", got)
	}
	// Leading empty buckets skipped: first rendered line is bucket 1.
	if strings.Contains(strings.SplitN(got, "\n", 2)[0], "0.05") {
		t.Fatalf("render did not skip empty leading bucket: %q", got)
	}
}

func TestHistogramBadParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad histogram params")
		}
	}()
	NewHistogram(1, 0, 5)
}
