// Package analysis implements the paper's analytical model of fingerprint
// uniqueness (§7.1, Equations 1–4, Tables 1–2) and the descriptive statistics
// used to render the evaluation figures.
//
// All combinatorial quantities are computed exactly with math/big — the
// numbers involved (e.g. C(32768, 328) ≈ 8.7·10⁷⁹⁵) are far outside float64
// range, and the point of Tables 1–2 is their astronomically small mismatch
// probabilities.
package analysis

import (
	"fmt"
	"math"
	"math/big"
)

// Binomial returns C(n, k) exactly. k outside [0, n] yields 0, matching the
// combinatorial convention.
func Binomial(n, k int) *big.Int {
	if k < 0 || k > n {
		return big.NewInt(0)
	}
	if k > n-k {
		k = n - k
	}
	// Multiplicative formula with exact division at every step:
	// C(n, i) = C(n, i-1) * (n - i + 1) / i.
	r := big.NewInt(1)
	for i := 1; i <= k; i++ {
		r.Mul(r, big.NewInt(int64(n-i+1)))
		r.Div(r, big.NewInt(int64(i)))
	}
	return r
}

// BinomialSum returns Σ_{i=lo}^{hi} C(n, i) exactly.
func BinomialSum(n, lo, hi int) *big.Int {
	sum := big.NewInt(0)
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if lo > hi {
		return sum
	}
	// Walk the row incrementally: far cheaper than independent binomials.
	term := Binomial(n, lo)
	sum.Add(sum, term)
	for i := lo + 1; i <= hi; i++ {
		term = new(big.Int).Set(term)
		term.Mul(term, big.NewInt(int64(n-i+1)))
		term.Div(term, big.NewInt(int64(i)))
		sum.Add(sum, term)
	}
	return sum
}

// Log2 returns log₂(x) for a positive big integer as a float64.
func Log2(x *big.Int) float64 {
	if x.Sign() <= 0 {
		panic("analysis: Log2 of non-positive value")
	}
	// x = mantissa * 2^(bitlen - 53) approximately.
	bits := x.BitLen()
	if bits <= 53 {
		return math.Log2(float64(x.Int64()))
	}
	shifted := new(big.Int).Rsh(x, uint(bits-53))
	return math.Log2(float64(shifted.Int64())) + float64(bits-53)
}

// Log10Big returns log₁₀(x) for a positive big integer.
func Log10Big(x *big.Int) float64 {
	return Log2(x) * math.Log10(2)
}

// Log10Float returns log₁₀(x) for a positive big float.
func Log10Float(x *big.Float) float64 {
	if x.Sign() <= 0 {
		panic("analysis: Log10Float of non-positive value")
	}
	mant := new(big.Float)
	exp2 := x.MantExp(mant) // x = mant · 2^exp2, mant in [0.5, 1)
	mf, _ := mant.Float64()
	return (math.Log2(mf) + float64(exp2)) * math.Log10(2)
}

// Sci formats a positive big integer in scientific notation with the given
// number of mantissa decimals, e.g. Sci(C(32768,328), 2) = "8.70e+795".
func Sci(x *big.Int, decimals int) string {
	f := new(big.Float).SetPrec(uint(x.BitLen()) + 64).SetInt(x)
	return f.Text('e', decimals)
}

// SciRatio formats num/den in scientific notation, handling magnitudes far
// outside float64 range (Table 1 reports probabilities near 10⁻⁵⁹¹).
func SciRatio(num, den *big.Int, decimals int) string {
	if den.Sign() == 0 {
		return "NaN"
	}
	prec := uint(num.BitLen()+den.BitLen()) + 64
	fn := new(big.Float).SetPrec(prec).SetInt(num)
	fd := new(big.Float).SetPrec(prec).SetInt(den)
	q := new(big.Float).SetPrec(prec).Quo(fn, fd)
	return q.Text('e', decimals)
}

// FingerprintSpace captures the paper's analytical model of one fingerprinted
// memory region (§7.1): M bits of memory, A tolerated error bits, and a
// matching threshold of T bits of noise.
type FingerprintSpace struct {
	M int // memory size in bits (a page: 32768)
	A int // error bits tolerated (1% of M at 99% accuracy)
	T int // noise threshold in bits (10% of A in the paper)
}

// NewFingerprintSpace validates and returns the model for a region of m bits
// with error fraction errRate and threshold fraction thresholdOfA (fraction
// of A, the paper uses 0.10).
func NewFingerprintSpace(m int, errRate, thresholdOfA float64) (FingerprintSpace, error) {
	if m <= 0 || errRate <= 0 || errRate >= 1 || thresholdOfA < 0 || thresholdOfA >= 1 {
		return FingerprintSpace{}, fmt.Errorf("analysis: bad parameters m=%d err=%v t=%v", m, errRate, thresholdOfA)
	}
	a := int(float64(m)*errRate + 0.5)
	t := int(float64(a)*thresholdOfA + 0.5)
	if a <= t {
		return FingerprintSpace{}, fmt.Errorf("analysis: A=%d must exceed T=%d", a, t)
	}
	return FingerprintSpace{M: m, A: a, T: t}, nil
}

// MaxUnique returns the total number of unique fingerprints, Equation 1:
// C(M, A).
func (s FingerprintSpace) MaxUnique() *big.Int {
	return Binomial(s.M, s.A)
}

// DistinguishableBounds returns the Hamming-bound range for the number of
// distinguishable fingerprints, Equation 2:
//
//	C(M,A) / Σ_{i=0}^{2T} C(M,i)  ≤  distinguishable  ≤  C(M,A) / Σ_{i=0}^{T} C(M,i)
//
// Both bounds are returned as arbitrary-precision floats.
func (s FingerprintSpace) DistinguishableBounds() (lower, upper *big.Float) {
	num := s.MaxUnique()
	denLo := BinomialSum(s.M, 0, 2*s.T)
	denHi := BinomialSum(s.M, 0, s.T)
	prec := uint(num.BitLen()) + 64
	mk := func(den *big.Int) *big.Float {
		fn := new(big.Float).SetPrec(prec).SetInt(num)
		fd := new(big.Float).SetPrec(prec).SetInt(den)
		return new(big.Float).SetPrec(prec).Quo(fn, fd)
	}
	return mk(denLo), mk(denHi)
}

// MismatchBounds returns the probability range for two fingerprints being
// mistakenly matched, Equation 3:
//
//	Σ_{i=1}^{T} C(M,i) / C(M,A)  ≤  P(mismatch)  ≤  Σ_{i=1}^{2T} C(M,i) / C(M,A)
func (s FingerprintSpace) MismatchBounds() (lower, upper *big.Float) {
	den := s.MaxUnique()
	numLo := BinomialSum(s.M, 1, s.T)
	numHi := BinomialSum(s.M, 1, 2*s.T)
	prec := uint(den.BitLen()) + 64
	mk := func(num *big.Int) *big.Float {
		fn := new(big.Float).SetPrec(prec).SetInt(num)
		fd := new(big.Float).SetPrec(prec).SetInt(den)
		return new(big.Float).SetPrec(prec).Quo(fn, fd)
	}
	return mk(numLo), mk(numHi)
}

// TotalEntropyBits returns the entropy of the fingerprint in bits, the
// numerator of Equation 4's final bound: log₂ C(M, A−T).
func (s FingerprintSpace) TotalEntropyBits() float64 {
	return Log2(Binomial(s.M, s.A-s.T))
}

// EntropyPerBit returns Equation 4's per-memory-bit entropy bound:
// log₂(C(M, A−T)) / M.
func (s FingerprintSpace) EntropyPerBit() float64 {
	return s.TotalEntropyBits() / float64(s.M)
}
