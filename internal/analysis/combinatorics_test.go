package analysis

import (
	"math"
	"math/big"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinomialSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{52, 5, 2598960}, {5, 6, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got.Cmp(big.NewInt(c.want)) != 0 {
			t.Errorf("C(%d,%d) = %v, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialSymmetry(t *testing.T) {
	for n := 0; n <= 30; n++ {
		for k := 0; k <= n; k++ {
			if Binomial(n, k).Cmp(Binomial(n, n-k)) != 0 {
				t.Fatalf("C(%d,%d) != C(%d,%d)", n, k, n, n-k)
			}
		}
	}
}

func TestBinomialSumRowTotal(t *testing.T) {
	// Σ_{i=0}^{n} C(n,i) = 2^n.
	for _, n := range []int{1, 10, 64, 100} {
		want := new(big.Int).Lsh(big.NewInt(1), uint(n))
		if got := BinomialSum(n, 0, n); got.Cmp(want) != 0 {
			t.Errorf("row sum n=%d = %v, want 2^%d", n, got, n)
		}
	}
}

func TestBinomialSumPartial(t *testing.T) {
	// Σ_{i=1}^{3} C(5,i) = 5 + 10 + 10 = 25.
	if got := BinomialSum(5, 1, 3); got.Cmp(big.NewInt(25)) != 0 {
		t.Fatalf("partial sum = %v, want 25", got)
	}
	// Degenerate ranges.
	if got := BinomialSum(5, 4, 2); got.Sign() != 0 {
		t.Fatalf("empty range sum = %v, want 0", got)
	}
	if got := BinomialSum(5, -3, 0); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("clamped-lo sum = %v, want 1", got)
	}
	if got := BinomialSum(3, 0, 99); got.Cmp(big.NewInt(8)) != 0 {
		t.Fatalf("clamped-hi sum = %v, want 8", got)
	}
}

func TestLog2(t *testing.T) {
	if got := Log2(big.NewInt(1024)); math.Abs(got-10) > 1e-12 {
		t.Fatalf("Log2(1024) = %v", got)
	}
	huge := new(big.Int).Lsh(big.NewInt(1), 10000)
	if got := Log2(huge); math.Abs(got-10000) > 1e-9 {
		t.Fatalf("Log2(2^10000) = %v", got)
	}
}

func TestSciFormats(t *testing.T) {
	if got := Sci(big.NewInt(87000), 2); got != "8.70e+04" {
		t.Fatalf("Sci = %q", got)
	}
	if got := SciRatio(big.NewInt(1), big.NewInt(8), 2); got != "1.25e-01" {
		t.Fatalf("SciRatio = %q", got)
	}
	if got := SciRatio(big.NewInt(1), big.NewInt(0), 2); got != "NaN" {
		t.Fatalf("SciRatio /0 = %q", got)
	}
}

func TestNewFingerprintSpaceValidation(t *testing.T) {
	if _, err := NewFingerprintSpace(0, 0.01, 0.1); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewFingerprintSpace(100, 0, 0.1); err == nil {
		t.Error("err=0 accepted")
	}
	if _, err := NewFingerprintSpace(100, 0.01, 1.5); err == nil {
		t.Error("threshold 1.5 accepted")
	}
	s, err := NewFingerprintSpace(32768, 0.01, 0.1)
	if err != nil {
		t.Fatalf("paper parameters rejected: %v", err)
	}
	if s.A != 328 || s.T != 33 {
		// 1% of 32768 = 327.68 → 328; 10% of 328 = 32.8 → 33. The paper
		// quotes T = 32; Table1 in the experiment package pins T explicitly.
		t.Fatalf("A=%d T=%d", s.A, s.T)
	}
}

// TestTable1PaperValues verifies the combinatorics of Table 1 (M=32768,
// A=328, T=32). The paper's printed values are internally inconsistent
// (its entropy row implies A−T = 295, i.e. T = 33, while its header says
// T = 32), so we assert our exact values and check agreement with the
// paper's magnitudes: identical within a few units of log10, which is what
// Table 1 is demonstrating (fingerprint space astronomically larger than the
// device population).
func TestTable1PaperValues(t *testing.T) {
	s := FingerprintSpace{M: 32768, A: 328, T: 32}

	// Exact value; the paper rounds the same quantity to 8.70e795.
	if got := Sci(s.MaxUnique(), 2); !strings.HasPrefix(got, "8.69e+795") {
		t.Errorf("max unique fingerprints = %s, want exact 8.69e+795 (paper prints 8.70e795)", got)
	}
	if got := Log10Big(s.MaxUnique()); math.Abs(got-795.94) > 0.05 {
		t.Errorf("log10(max unique) = %v, want ~795.94", got)
	}

	lower, _ := s.DistinguishableBounds()
	// Exact: 1.20e596. Paper prints ≥1.07e590 — within 7 of 796 decades.
	if got := Log10Float(lower); math.Abs(got-596.08) > 0.05 || math.Abs(got-590.03) > 8 {
		t.Errorf("log10(distinguishable lower) = %v, want ~596.08 (paper ~590.03)", got)
	}

	_, upper := s.MismatchBounds()
	// Exact: 8.32e-597. Paper prints ≤9.29e-591.
	if got := Log10Float(upper); math.Abs(got-(-596.08)) > 0.05 || math.Abs(got-(-590.03)) > 8 {
		t.Errorf("log10(mismatch upper) = %v, want ~-596.08 (paper ~-590.03)", got)
	}

	// Entropy with T=32 is 2429.7 bits; the paper's printed 2423 corresponds
	// to T=33 (= ceil(10%·328)). Check both so the discrepancy stays pinned.
	if got := s.TotalEntropyBits(); math.Abs(got-2429.7) > 0.1 {
		t.Errorf("total entropy (T=32) = %v bits, want 2429.7", got)
	}
	s33 := FingerprintSpace{M: 32768, A: 328, T: 33}
	if got := s33.TotalEntropyBits(); math.Abs(got-2423) > 0.5 {
		t.Errorf("total entropy (T=33) = %v bits, want ~2423 (the paper's printed value)", got)
	}
}

// TestTable2PaperValues verifies the mismatch bounds for Table 2's accuracy
// sweep (99%, 95%, 90% with T = 10%·A). Exact exponents land within a few
// decades of the paper's printed values and must decrease steeply with
// accuracy — the table's claim.
func TestTable2PaperValues(t *testing.T) {
	cases := []struct {
		acc      float64
		paperLog float64 // log10 of the paper's printed bound
	}{
		{0.99, -590.03},
		{0.95, -2027.06},
		{0.90, -3231.32},
	}
	prev := 0.0
	for _, c := range cases {
		a := int(32768*(1-c.acc) + 0.5)
		s := FingerprintSpace{M: 32768, A: a, T: a / 10}
		_, upper := s.MismatchBounds()
		got := Log10Float(upper)
		if math.Abs(got-c.paperLog) > 8 {
			t.Errorf("accuracy %v: log10(mismatch) = %v, paper %v", c.acc, got, c.paperLog)
		}
		if got >= prev {
			t.Errorf("mismatch chance must shrink with accuracy: %v at %v", got, c.acc)
		}
		prev = got
	}
}

func TestEntropyPerBit(t *testing.T) {
	s := FingerprintSpace{M: 32768, A: 328, T: 32}
	got := s.EntropyPerBit()
	if math.Abs(got-s.TotalEntropyBits()/32768) > 1e-12 {
		t.Fatalf("EntropyPerBit inconsistent: %v", got)
	}
	if got <= 0 || got >= 1 {
		t.Fatalf("EntropyPerBit = %v outside (0,1)", got)
	}
}

func TestDistinguishableOrdering(t *testing.T) {
	s := FingerprintSpace{M: 4096, A: 41, T: 4}
	lo, hi := s.DistinguishableBounds()
	if lo.Cmp(hi) > 0 {
		t.Fatal("lower bound exceeds upper bound")
	}
	mlo, mhi := s.MismatchBounds()
	if mlo.Cmp(mhi) > 0 {
		t.Fatal("mismatch lower bound exceeds upper bound")
	}
}

// Property: Pascal's identity C(n,k) = C(n-1,k-1) + C(n-1,k).
func TestQuickPascal(t *testing.T) {
	f := func(n8, k8 uint8) bool {
		n := int(n8%60) + 1
		k := int(k8) % (n + 1)
		want := new(big.Int).Add(Binomial(n-1, k-1), Binomial(n-1, k))
		return Binomial(n, k).Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
