package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N            int
	Min, Max     float64
	Mean, Stddev float64
	Median       float64
}

// Summarize computes descriptive statistics. It panics on an empty sample —
// every caller controls its own sample sizes.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("analysis: Summarize of empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g max=%.4g mean=%.4g median=%.4g stddev=%.4g",
		s.N, s.Min, s.Max, s.Mean, s.Median, s.Stddev)
}

// Histogram is a fixed-bucket histogram over [Lo, Hi); values outside the
// range clamp to the first/last bucket, matching how the paper's histograms
// render tail mass.
type Histogram struct {
	Lo, Hi  float64
	Counts  []int
	samples int
}

// NewHistogram returns a histogram with n buckets over [lo, hi). It panics
// on a degenerate range or bucket count, which indicate caller bugs.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic(fmt.Sprintf("analysis: bad histogram [%v,%v)/%d", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records one value.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.samples++
}

// AddAll records every value of xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// N returns the number of recorded samples.
func (h *Histogram) N() int { return h.samples }

// BucketCenter returns the midpoint of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// CSV renders the histogram as "bucket_center,count" lines.
func (h *Histogram) CSV() string {
	var b strings.Builder
	b.WriteString("bucket_center,count\n")
	for i, c := range h.Counts {
		fmt.Fprintf(&b, "%.6g,%d\n", h.BucketCenter(i), c)
	}
	return b.String()
}

// Render draws an ASCII bar chart of the histogram, width chars wide,
// skipping empty leading/trailing buckets for readability.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 50
	}
	max := 0
	first, last := -1, -1
	for i, c := range h.Counts {
		if c > 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
		if c > max {
			max = c
		}
	}
	if first < 0 {
		return "(empty histogram)\n"
	}
	var b strings.Builder
	for i := first; i <= last; i++ {
		n := h.Counts[i] * width / max
		fmt.Fprintf(&b, "%10.4g | %-*s %d\n", h.BucketCenter(i), width, strings.Repeat("#", n), h.Counts[i])
	}
	return b.String()
}
