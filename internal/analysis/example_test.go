package analysis_test

import (
	"fmt"

	"probablecause/internal/analysis"
)

// ExampleFingerprintSpace evaluates the paper's Table 1 parameters exactly.
func ExampleFingerprintSpace() {
	s := analysis.FingerprintSpace{M: 32768, A: 328, T: 32}
	fmt.Println("max unique fingerprints:", analysis.Sci(s.MaxUnique(), 2))
	_, mismatch := s.MismatchBounds()
	fmt.Println("chance of mismatching ≤", mismatch.Text('e', 2))
	fmt.Printf("total entropy: %.1f bits\n", s.TotalEntropyBits())
	// Output:
	// max unique fingerprints: 8.69e+795
	// chance of mismatching ≤ 8.32e-597
	// total entropy: 2429.7 bits
}

// ExampleBinomial computes an exact binomial coefficient far beyond float64
// range.
func ExampleBinomial() {
	fmt.Println(analysis.Binomial(52, 5))
	fmt.Println(analysis.Sci(analysis.Binomial(32768, 64), 3))
	// Output:
	// 2598960
	// 7.222e+199
}

// ExampleHistogram renders the distance histogram the uniqueness experiment
// reports.
func ExampleHistogram() {
	h := analysis.NewHistogram(0, 1, 4)
	h.AddAll([]float64{0.1, 0.15, 0.9, 0.95, 0.92})
	fmt.Print(h.CSV())
	// Output:
	// bucket_center,count
	// 0.125,2
	// 0.375,0
	// 0.625,0
	// 0.875,3
}
