// Package defense implements the countermeasures discussed in §8.2 and the
// primitives used to evaluate them:
//
//   - noise addition (§8.2.2): flip random output bits to drown the
//     fingerprint, paying output quality for privacy — the paper argues this
//     only slows the attacker down;
//   - data segregation (§8.2.1): route sensitive outputs through exact
//     memory so they carry no fingerprint at all, at the cost of user
//     intervention and resource partitioning;
//   - data scrambling (§8.2.3): page-level ASLR is implemented by
//     osmodel.PlaceScattered; this package only measures its effect.
package defense

import (
	"fmt"
	"math"

	"probablecause/internal/bitset"
	"probablecause/internal/prng"
)

// FlipNoise returns a copy of data with each bit independently flipped with
// probability rate — the noise-addition defense applied to one output.
func FlipNoise(data []byte, rate float64, rng *prng.Source) ([]byte, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("defense: flip rate %v outside [0,1]", rate)
	}
	out := make([]byte, len(data))
	copy(out, data)
	if rate == 0 {
		return out, nil
	}
	for i := range out {
		for b := 0; b < 8; b++ {
			if rng.Float64() < rate {
				out[i] ^= 1 << uint(b)
			}
		}
	}
	return out, nil
}

// FlipNoiseSparse applies the same defense directly to an observed error-
// position set over a universe of n bits: true error bits are dropped from
// the attacker's view with probability rate (the noise flipped them back)
// and non-error bits appear as spurious errors with probability rate.
func FlipNoiseSparse(errors bitset.Sparse, n int, rate float64, rng *prng.Source) (bitset.Sparse, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("defense: flip rate %v outside [0,1]", rate)
	}
	if n <= 0 {
		return nil, fmt.Errorf("defense: non-positive universe %d", n)
	}
	out := make([]uint32, 0, len(errors))
	for _, p := range errors {
		if rng.Float64() >= rate {
			out = append(out, p)
		}
	}
	// Spurious errors: expected rate·(n−|errors|) of them; sample the count
	// then positions, to stay O(added) rather than O(n).
	expected := rate * float64(n-len(errors))
	added := poissonish(expected, rng)
	for i := 0; i < added; i++ {
		out = append(out, uint32(rng.Intn(n)))
	}
	return bitset.NewSparse(out), nil
}

// poissonish draws an approximately Poisson-distributed count with the given
// mean using a normal approximation for large means and Knuth's method for
// small ones.
func poissonish(mean float64, rng *prng.Source) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := int(rng.Normal(mean, math.Sqrt(mean)) + 0.5)
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Segregation models the data-segregation defense: a fraction of the
// victim's outputs are declared sensitive and computed in exact memory.
type Segregation struct {
	// SensitiveFraction is the probability a given output is protected.
	SensitiveFraction float64
}

// Exposed reports whether one output goes through approximate memory (and
// is therefore fingerprintable).
func (s Segregation) Exposed(rng *prng.Source) bool {
	return rng.Float64() >= s.SensitiveFraction
}

// Validate checks the policy parameters.
func (s Segregation) Validate() error {
	if s.SensitiveFraction < 0 || s.SensitiveFraction > 1 {
		return fmt.Errorf("defense: sensitive fraction %v outside [0,1]", s.SensitiveFraction)
	}
	return nil
}
