package defense_test

import (
	"fmt"

	"probablecause/internal/bitset"
	"probablecause/internal/defense"
	"probablecause/internal/prng"
)

// ExampleFlipNoiseSparse shows the noise-addition defense (§8.2.2) applied
// to an attacker-observed error set: true errors drop out and spurious ones
// appear, both at the configured rate.
func ExampleFlipNoiseSparse() {
	rng := prng.New(1)
	truth := bitset.NewSparse([]uint32{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	noisy, err := defense.FlipNoiseSparse(truth, 1<<15, 0.2, rng)
	if err != nil {
		panic(err)
	}
	kept := noisy.IntersectCount(truth)
	fmt.Printf("true errors kept: %d of %d\n", kept, truth.Card())
	fmt.Printf("spurious errors added: %v\n", noisy.Card()-kept > 0)
	// Output:
	// true errors kept: 9 of 10
	// spurious errors added: true
}

// ExampleSegregation shows the data-segregation policy (§8.2.1).
func ExampleSegregation() {
	pol := defense.Segregation{SensitiveFraction: 1}
	fmt.Println("fully segregated output exposed:", pol.Exposed(prng.New(2)))
	// Output:
	// fully segregated output exposed: false
}
