package defense

import (
	"testing"

	"probablecause/internal/approx"
	"probablecause/internal/bitset"
	"probablecause/internal/dram"
	"probablecause/internal/fingerprint"
)

func scrambleMem(t *testing.T, seed uint64) *approx.Memory {
	t.Helper()
	cfg := dram.KM41464A(seed)
	cfg.Geometry = dram.Geometry{Rows: 64, Cols: 256, BitsPerWord: 4, DefaultStripe: 2}
	chip, err := dram.NewChip(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := approx.New(chip, 0.97)
	if err != nil {
		t.Fatal(err)
	}
	return mem
}

func TestScramblerRejectsEmptyOutput(t *testing.T) {
	mem := scrambleMem(t, 1)
	if _, err := NewScrambler(1).Roundtrip(mem, 0, nil); err == nil {
		t.Fatal("empty output accepted")
	}
}

func TestScramblerPreservesDataSemantics(t *testing.T) {
	// The output must be the stored data with the usual error budget — the
	// scrambling is transparent to the application.
	mem := scrambleMem(t, 2)
	sc := NewScrambler(0xABCD)
	data := mem.Chip().WorstCaseData()[:4096]
	out, err := sc.Roundtrip(mem, 0, data)
	if err != nil {
		t.Fatal(err)
	}
	errs := bitset.FromBytes(out).XorCount(bitset.FromBytes(data))
	rate := float64(errs) / float64(len(data)*8)
	if rate == 0 {
		t.Fatal("no approximation errors at all")
	}
	if rate > 0.09 {
		t.Fatalf("error rate %v far above the 3%% target", rate)
	}
	if sc.Outputs() != 1 {
		t.Fatalf("Outputs = %d", sc.Outputs())
	}
}

func TestScramblerUnlinksOutputs(t *testing.T) {
	// Without scrambling, two outputs share ≥90% of their error positions.
	// With scrambling, the shared fraction collapses to chance level.
	mem := scrambleMem(t, 3)
	data := mem.Chip().WorstCaseData()[:4096]

	plainES := func() *bitset.Set {
		out, err := mem.Roundtrip(0, data)
		if err != nil {
			t.Fatal(err)
		}
		return bitset.FromBytes(out).Xor(bitset.FromBytes(data))
	}
	p1, p2 := plainES(), plainES()
	plainOverlap := float64(p1.AndCount(p2)) / float64(min(p1.Count(), p2.Count()))
	if plainOverlap < 0.9 {
		t.Fatalf("premise broken: plain overlap %v", plainOverlap)
	}

	sc := NewScrambler(0x5EC4E7)
	scrambledES := func() *bitset.Set {
		out, err := sc.Roundtrip(mem, 0, data)
		if err != nil {
			t.Fatal(err)
		}
		return bitset.FromBytes(out).Xor(bitset.FromBytes(data))
	}
	s1, s2 := scrambledES(), scrambledES()
	if s1.Count() == 0 || s2.Count() == 0 {
		t.Fatal("premise broken: no errors under scrambling")
	}
	scrambledOverlap := float64(s1.AndCount(s2)) / float64(min(s1.Count(), s2.Count()))
	if scrambledOverlap > 0.1 {
		t.Fatalf("scrambled outputs still share %v of error positions", scrambledOverlap)
	}
}

func TestScramblerDefeatsIdentification(t *testing.T) {
	// Attacker characterized the chip before the defense was deployed; the
	// scrambled outputs must no longer match.
	mem := scrambleMem(t, 4)
	data := mem.Chip().WorstCaseData()[:4096]
	o1, err := mem.Roundtrip(0, data)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := mem.Roundtrip(0, data)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := fingerprint.Characterize(data, o1, o2)
	if err != nil {
		t.Fatal(err)
	}
	db := fingerprint.NewDB(fingerprint.DefaultThreshold)
	db.Add("victim", fp)

	sc := NewScrambler(0xD3F3)
	out, err := sc.Roundtrip(mem, 0, data)
	if err != nil {
		t.Fatal(err)
	}
	es, err := fingerprint.ErrorString(out, data)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := db.Identify(es); ok {
		t.Fatal("scrambled output identified — defense failed")
	}
}

func TestPermuteBitsRoundTrip(t *testing.T) {
	data := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x80}
	sc := NewScrambler(9)
	perm := sc.permutation(7, len(data)*8)
	scrambled := permuteBits(data, perm)
	back := permuteBits(scrambled, invertPerm(perm))
	for i := range data {
		if back[i] != data[i] {
			t.Fatalf("byte %d: %#x != %#x", i, back[i], data[i])
		}
	}
	// The permutation must actually move bits.
	same := true
	for i := range data {
		if scrambled[i] != data[i] {
			same = false
		}
	}
	if same {
		t.Fatal("permutation left the data unchanged")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
