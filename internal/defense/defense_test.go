package defense

import (
	"math"
	"testing"

	"probablecause/internal/bitset"
	"probablecause/internal/prng"
)

func TestFlipNoiseValidation(t *testing.T) {
	rng := prng.New(1)
	if _, err := FlipNoise([]byte{1}, -0.1, rng); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := FlipNoise([]byte{1}, 1.1, rng); err == nil {
		t.Error("rate > 1 accepted")
	}
}

func TestFlipNoiseZeroRateIsCopy(t *testing.T) {
	rng := prng.New(2)
	in := []byte{1, 2, 3}
	out, err := FlipNoise(in, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	out[0] = 99
	if in[0] != 1 {
		t.Fatal("FlipNoise aliased its input")
	}
}

func TestFlipNoiseRate(t *testing.T) {
	rng := prng.New(3)
	in := make([]byte, 10000)
	out, err := FlipNoise(in, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	flips := 0
	for i := range out {
		b := out[i] ^ in[i]
		for ; b != 0; b &= b - 1 {
			flips++
		}
	}
	got := float64(flips) / float64(len(in)*8)
	if math.Abs(got-0.05) > 0.005 {
		t.Fatalf("flip rate = %v, want ~0.05", got)
	}
}

func TestFlipNoiseSparseValidation(t *testing.T) {
	rng := prng.New(4)
	if _, err := FlipNoiseSparse(nil, 0, 0.1, rng); err == nil {
		t.Error("universe 0 accepted")
	}
	if _, err := FlipNoiseSparse(nil, 10, 2, rng); err == nil {
		t.Error("rate 2 accepted")
	}
}

func TestFlipNoiseSparseDropsAndAdds(t *testing.T) {
	rng := prng.New(5)
	truth := make([]uint32, 1000)
	for i := range truth {
		truth[i] = uint32(i)
	}
	errors := bitset.NewSparse(truth)
	const n = 1 << 20
	out, err := FlipNoiseSparse(errors, n, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	kept := out.IntersectCount(errors)
	if math.Abs(float64(kept)-900) > 60 {
		t.Fatalf("kept %d of 1000 true errors, want ~900", kept)
	}
	added := out.Card() - kept
	// Expected spurious draws: 0.1 · (2^20 − 1000) ≈ 104757; as a *set* the
	// expected distinct count is M(1−(1−1/M)^n) ≈ 99500 after collisions.
	if math.Abs(float64(added)-99500) > 4000 {
		t.Fatalf("added %d distinct spurious errors, want ~99500", added)
	}
}

func TestFlipNoiseSparseZeroRate(t *testing.T) {
	rng := prng.New(6)
	errors := bitset.NewSparse([]uint32{5, 10, 20})
	out, err := FlipNoiseSparse(errors, 100, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(errors) {
		t.Fatalf("zero-rate output %v != input %v", out, errors)
	}
}

func TestSegregation(t *testing.T) {
	if err := (Segregation{SensitiveFraction: -0.5}).Validate(); err == nil {
		t.Error("negative fraction accepted")
	}
	if err := (Segregation{SensitiveFraction: 0.3}).Validate(); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
	rng := prng.New(7)
	s := Segregation{SensitiveFraction: 0.3}
	exposed := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if s.Exposed(rng) {
			exposed++
		}
	}
	if got := float64(exposed) / trials; math.Abs(got-0.7) > 0.02 {
		t.Fatalf("exposed fraction = %v, want ~0.7", got)
	}
	// Degenerate policies.
	all := Segregation{SensitiveFraction: 0}
	if !all.Exposed(rng) {
		t.Fatal("fraction 0 must always expose")
	}
	none := Segregation{SensitiveFraction: 1}
	if none.Exposed(rng) {
		t.Fatal("fraction 1 must never expose")
	}
}

func TestPoissonishMoments(t *testing.T) {
	rng := prng.New(8)
	for _, mean := range []float64{0.5, 5, 100} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(poissonish(mean, rng))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("poissonish mean %v: got %v", mean, got)
		}
	}
	if poissonish(0, rng) != 0 || poissonish(-1, rng) != 0 {
		t.Error("non-positive mean must return 0")
	}
}
