package defense

import (
	"fmt"

	"probablecause/internal/approx"
	"probablecause/internal/bitset"
	"probablecause/internal/prng"
)

// Scrambler implements the anonymity-preserving approximation technique the
// paper's conclusion calls for ("future research must design anonymity
// preserving hardware approximation techniques").
//
// The controller draws a fresh secret permutation of bit positions for every
// output, stores the permuted data, and inverts the permutation on read.
// Decay still happens at fixed physical cells, but after inversion each
// physical error lands at a different *logical* position in every output, so
// error patterns no longer correlate across outputs:
//
//   - the user's data semantics are unchanged — the output has exactly the
//     usual number of errors, just at unlinkable positions;
//   - characterization (Algorithm 1) intersects to nothing, identification
//     (Algorithm 2) finds nothing, and stitching never aligns;
//   - unlike noise addition (§8.2.2) there is no accuracy cost, and unlike
//     page-level ASLR (§8.2.3) no memory-management overhead — the cost is a
//     per-output key and two bit-permutation passes in the controller.
type Scrambler struct {
	seed    uint64
	counter uint64
}

// NewScrambler returns a scrambling controller with the given secret seed.
func NewScrambler(seed uint64) *Scrambler {
	return &Scrambler{seed: seed}
}

// permutation returns the bit permutation for output k over n bits.
func (s *Scrambler) permutation(k uint64, n int) []int {
	return prng.New(prng.Hash(s.seed, k, 0x5C4A)).Perm(n)
}

// permuteBits maps bit i of data to bit perm[i] of the result.
func permuteBits(data []byte, perm []int) []byte {
	in := bitset.FromBytes(data)
	out := bitset.New(in.Len())
	in.ForEach(func(i int) bool {
		out.Set(perm[i])
		return true
	})
	return out.Bytes()
}

// invertPerm returns the inverse permutation.
func invertPerm(perm []int) []int {
	inv := make([]int, len(perm))
	for i, p := range perm {
		inv[p] = i
	}
	return inv
}

// Roundtrip stores data through the approximate memory under a fresh
// per-output permutation and returns the de-scrambled approximate output.
func (s *Scrambler) Roundtrip(mem *approx.Memory, addr int, data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("defense: empty output")
	}
	s.counter++
	perm := s.permutation(s.counter, len(data)*8)
	scrambled := permuteBits(data, perm)
	out, err := mem.Roundtrip(addr, scrambled)
	if err != nil {
		return nil, err
	}
	return permuteBits(out, invertPerm(perm)), nil
}

// Outputs returns how many outputs have been produced (the key counter).
func (s *Scrambler) Outputs() uint64 { return s.counter }
