package server

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
	"probablecause/internal/prng"
)

// propQuery pairs a query with the offline dense-scan verdict it must earn.
type propQuery struct {
	es   *bitset.Set
	want fingerprint.Verdict
}

// propQueries builds a randomized query mix over the DB: noisy hits on every
// device, twin-ambiguous probes, and pure misses.
func propQueries(db *fingerprint.DB, seed uint64) []propQuery {
	var qs []propQuery
	for i, e := range db.Entries() {
		qs = append(qs, propQuery{es: noisyQuery(e.FP, seed+uint64(i), int(prng.Hash(seed, uint64(i))%200))})
	}
	for j := 0; j < 10; j++ {
		qs = append(qs, propQuery{es: testSet(prng.Hash(seed, 0xA1, uint64(j)), 64)})
	}
	// Duplicates exercise the cache without changing any verdict.
	qs = append(qs, qs[0], qs[len(qs)/2])
	for i := range qs {
		qs[i].want = db.Decide(qs[i].es)
	}
	return qs
}

// checkVerdict holds a served verdict to the offline dense-scan one. Matches
// is exact on plain shards; on LSH-indexed shards it is the documented
// candidates-only count, so only the matched/ambiguous-capable floor is
// checked.
func checkVerdict(t *testing.T, label string, got, want fingerprint.Verdict, plain bool) {
	t.Helper()
	if got.Name != want.Name || got.Index != want.Index || got.Distance != want.Distance || got.OK() != want.OK() {
		t.Errorf("%s: served %+v, offline %+v", label, got, want)
		return
	}
	if plain && got.Matches != want.Matches {
		t.Errorf("%s: served Matches=%d, offline %d (plain shards must agree exactly)", label, got.Matches, want.Matches)
	}
	if !plain && want.OK() && got.Matches < 1 {
		t.Errorf("%s: served Matches=%d for a matching query", label, got.Matches)
	}
}

// TestServeInvariance is the serving-path determinism property: for any shard
// count, any batch window, cache on or off, plain or indexed shards, every
// verdict the batched+sharded+cached service returns equals the direct
// fingerprint.DB.Decide dense scan — concurrency moves wall-clock only.
func TestServeInvariance(t *testing.T) {
	type combo struct {
		shards int
		window time.Duration
		cache  int
		plain  bool
		sliced bool
		probes bool
	}
	combos := []combo{
		{shards: 1, window: 0, cache: 0, plain: false},
		{shards: 3, window: 0, cache: 128, plain: false},
		{shards: 8, window: 2 * time.Millisecond, cache: 0, plain: true},
		{shards: 5, window: 1 * time.Millisecond, cache: 64, plain: true},
		{shards: 2, window: 500 * time.Microsecond, cache: 16, plain: false},
		{shards: 3, window: 0, cache: 0, sliced: true},
		{shards: 2, window: 1 * time.Millisecond, cache: 32, sliced: true, probes: true},
	}
	for ci, cb := range combos {
		cb := cb
		t.Run(fmt.Sprintf("shards=%d_window=%s_cache=%d_plain=%v_sliced=%v", cb.shards, cb.window, cb.cache, cb.plain, cb.sliced), func(t *testing.T) {
			t.Parallel()
			seed := uint64(0x5EED0 + ci)
			db := fixtureDB(24)
			// A twin pair makes ambiguity part of the property.
			twin := testSet(prng.Hash(seed, 0x77), 64)
			db.Add("twinA", twin)
			db.Add("twinB", twin.Clone())
			qs := propQueries(db, seed)

			s, err := New(db, Config{
				Shards:      cb.shards,
				Plain:       cb.plain,
				Sliced:      cb.sliced,
				Probes:      cb.probes,
				Workers:     2,
				BatchWindow: cb.window,
				MaxBatch:    7, // forces multi-dispatch splits
				CacheSize:   cb.cache,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			// Fire every query concurrently so the dispatcher actually
			// coalesces, twice so the cache (when on) serves repeats.
			for round := 0; round < 2; round++ {
				var wg sync.WaitGroup
				for qi := range qs {
					wg.Add(1)
					go func(qi int) {
						defer wg.Done()
						v, _, err := s.Identify(context.Background(), qs[qi].es)
						if err != nil {
							t.Errorf("query %d: %v", qi, err)
							return
						}
						checkVerdict(t, fmt.Sprintf("round %d query %d", round, qi), v, qs[qi].want, cb.plain)
					}(qi)
				}
				wg.Wait()
			}

			// The batch entry point must agree with the per-query one.
			ess := make([]*bitset.Set, len(qs))
			for i := range qs {
				ess[i] = qs[i].es
			}
			verdicts, _, err := s.IdentifyBatch(context.Background(), ess)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range verdicts {
				checkVerdict(t, fmt.Sprintf("batch query %d", i), v, qs[i].want, cb.plain)
			}
		})
	}
}

// TestServeInvarianceUnderMutation holds the property across DB mutations:
// after every add or remove, served verdicts track an offline DB mutated the
// same way — the generation-guarded cache never resurrects a pre-mutation
// answer.
func TestServeInvarianceUnderMutation(t *testing.T) {
	offline := fixtureDB(10)
	s, err := New(fixtureDB(10), Config{Shards: 3, CacheSize: 64, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// ShardedDB ids are stable add-order ids that survive Removes, while the
	// plain DB compacts indexes on Remove — so after a removal only the
	// name/distance/verdict half of the property holds, not the raw index.
	check := func(step string, compareIndex bool) {
		t.Helper()
		for i, e := range offline.Entries() {
			q := noisyQuery(e.FP, uint64(i)*13+1, 60)
			want := offline.Decide(q)
			v, _, err := s.Identify(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			if compareIndex {
				checkVerdict(t, fmt.Sprintf("%s entry %d", step, i), v, want, false)
			} else if v.Name != want.Name || v.Distance != want.Distance || v.OK() != want.OK() {
				t.Errorf("%s entry %d: served %+v, offline %+v", step, i, v, want)
			}
		}
	}

	check("initial", true)
	check("cached", true) // second pass mostly cache-served; same verdicts

	fp := testSet(0xADD1, 64)
	offline.Add("late", fp)
	s.Add("late", fp.Clone())
	check("after add", true)

	if !offline.Remove("dev004") || !s.Remove("dev004") {
		t.Fatal("remove failed")
	}
	check("after remove", false)

	if q := noisyQuery(fp, 0x99, 50); true {
		v, _, err := s.Identify(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !v.OK() || v.Name != "late" {
			t.Fatalf("late-added device not served: %+v", v)
		}
	}
}
