package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLoadShedding saturates the bounded identify queue with real HTTP
// clients and checks the backpressure contract: admitted requests answer 200,
// overflow is shed with 429 + Retry-After (never dropped or hung), Close
// drains cleanly, post-drain requests get 503, and the whole episode leaks no
// goroutines.
func TestLoadShedding(t *testing.T) {
	before := settledGoroutines()

	s, err := New(fixtureDB(8), Config{
		Shards:      2,
		Workers:     1,
		QueueDepth:  4,
		MaxBatch:    2,
		BatchWindow: 10 * time.Millisecond, // slow dispatch so the queue actually fills
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())

	const clients = 40
	var ok, shed, other atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(reqFor(testSet(uint64(i)+1, 64)))
			resp, err := http.Post(srv.URL+"/v1/identify", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					t.Errorf("client %d: 429 without Retry-After", i)
				}
				shed.Add(1)
			default:
				other.Add(1)
				t.Errorf("client %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()

	if got := ok.Load() + shed.Load() + other.Load(); got != clients {
		t.Fatalf("accounted for %d of %d clients", got, clients)
	}
	if ok.Load() == 0 {
		t.Fatal("every request was shed; the queue admitted nothing")
	}
	if shed.Load() == 0 {
		t.Fatalf("no request was shed (ok=%d): queue depth 4 cannot absorb %d concurrent clients", ok.Load(), clients)
	}
	t.Logf("load shed: %d ok, %d shed of %d clients", ok.Load(), shed.Load(), clients)

	// Graceful drain: Close returns only after every admitted query got its
	// verdict; afterwards the service answers 503, not a hang or a panic.
	s.Close()
	body, _ := json.Marshal(reqFor(testSet(0xFF, 64)))
	resp, err := http.Post(srv.URL+"/v1/identify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: %d, want 503", resp.StatusCode)
	}

	srv.Close()
	http.DefaultClient.CloseIdleConnections()

	// No goroutine may outlive the episode (dispatcher, per-request
	// timeouts, shed requests included).
	deadline := time.Now().Add(5 * time.Second)
	for {
		after := settledGoroutines()
		if after <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, after, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// settledGoroutines samples the goroutine count after a short settle loop so
// runtime bookkeeping goroutines don't flake the comparison.
func settledGoroutines() int {
	n := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		time.Sleep(10 * time.Millisecond)
		if m := runtime.NumGoroutine(); m < n {
			n = m
		}
	}
	return n
}

// TestBatchAdmissionAtomic pins all-or-nothing batch admission: a batch
// larger than the remaining queue space is shed whole, never half-enqueued.
func TestBatchAdmissionAtomic(t *testing.T) {
	s, err := New(fixtureDB(4), Config{
		Shards:      1,
		Workers:     1,
		QueueDepth:  3,
		MaxBatch:    2,
		BatchWindow: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()

	queries := make([]errStringJSON, 8) // 8 > queue depth 3
	for i := range queries {
		queries[i] = reqFor(testSet(uint64(i)+1, 64))
	}
	code, body := postJSON(t, h, "POST", "/v1/identify-batch", batchRequestJSON{Queries: queries})
	if code != http.StatusTooManyRequests {
		t.Fatalf("oversized batch: %d (%s), want 429", code, body)
	}

	// The queue must be untouched: a fitting batch goes straight through.
	code, body = postJSON(t, h, "POST", "/v1/identify-batch", batchRequestJSON{Queries: queries[:3]})
	if code != http.StatusOK {
		t.Fatalf("follow-up batch: %d (%s), want 200", code, body)
	}
	var resp BatchResponseJSON
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("follow-up batch returned %d results, want 3", len(resp.Results))
	}
}

// TestCloseIdempotent guards double-Close (service owner plus t.Cleanup is an
// easy double call).
func TestCloseIdempotent(t *testing.T) {
	s, err := New(fixtureDB(2), Config{Shards: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close()
	if _, _, err := s.Identify(context.Background(), testSet(1, 64)); err == nil {
		t.Fatal("Identify after Close returned no error")
	}
}
