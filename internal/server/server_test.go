package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"probablecause/internal/bitset"
	"probablecause/internal/faults"
	"probablecause/internal/fingerprint"
	"probablecause/internal/prng"
)

// fixtureLen is the error-string bit-length shared by every test fixture.
const fixtureLen = 4096

// testSet builds a deterministic pseudo-random fingerprint of about k bits.
func testSet(seed uint64, k int) *bitset.Set {
	s := bitset.New(fixtureLen)
	for j := 0; j < k; j++ {
		s.Set(int(prng.Hash(seed, uint64(j)) % fixtureLen))
	}
	return s
}

// noisyQuery derives an error string matching fp: a superset, so the
// modified Jaccard distance is exactly 0.
func noisyQuery(fp *bitset.Set, seed uint64, extra int) *bitset.Set {
	es := fp.Clone()
	for j := 0; j < extra; j++ {
		es.Set(int(prng.Hash(seed, 0xE5, uint64(j)) % fixtureLen))
	}
	return es
}

// fixtureDB builds the standard n-device seed database.
func fixtureDB(n int) *fingerprint.DB {
	db := fingerprint.NewDB(fingerprint.DefaultThreshold)
	for i := 0; i < n; i++ {
		db.Add(fmt.Sprintf("dev%03d", i), testSet(uint64(i)*0x9E37+1, 64))
	}
	return db
}

// newTestService builds a Service over the fixture and registers cleanup.
func newTestService(t *testing.T, n int, cfg Config) *Service {
	t.Helper()
	s, err := New(fixtureDB(n), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// postJSON performs one request against the handler and returns the
// response.
func postJSON(t *testing.T, h http.Handler, method, path string, body any) (int, []byte) {
	t.Helper()
	var rd *bytes.Reader
	switch b := body.(type) {
	case nil:
		rd = bytes.NewReader(nil)
	case string:
		rd = bytes.NewReader([]byte(b))
	default:
		blob, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(blob)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, bytes.TrimRight(rec.Body.Bytes(), "\n")
}

func reqFor(es *bitset.Set) errStringJSON {
	return errStringJSON{Len: es.Len(), Positions: es.Positions()}
}

// TestServeIdentify covers the identify endpoint end to end: hit, miss,
// cache service, and agreement with the offline dense-scan Decide.
func TestServeIdentify(t *testing.T) {
	const n = 12
	s := newTestService(t, n, Config{Shards: 4, CacheSize: 32, Workers: 1})
	h := s.Handler()
	offline := fixtureDB(n)

	fp, _ := offline.Get("dev003")
	q := noisyQuery(fp, 99, 150)

	code, body := postJSON(t, h, "POST", "/v1/identify", reqFor(q))
	if code != http.StatusOK {
		t.Fatalf("identify: %d %s", code, body)
	}
	var got VerdictJSON
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	want := offline.Decide(q)
	if !got.Match || got.Name != "dev003" || got.Cached ||
		got.Name != want.Name || got.ID != want.Index || got.Distance != want.Distance || got.Matches != want.Matches {
		t.Fatalf("identify = %+v, offline verdict %+v", got, want)
	}

	// Same digest again: served from the cache, same verdict.
	code, body = postJSON(t, h, "POST", "/v1/identify", reqFor(q))
	if code != http.StatusOK {
		t.Fatalf("cached identify: %d %s", code, body)
	}
	var cached VerdictJSON
	if err := json.Unmarshal(body, &cached); err != nil {
		t.Fatal(err)
	}
	if !cached.Cached || cached.Name != got.Name || cached.Distance != got.Distance {
		t.Fatalf("cached = %+v, first = %+v", cached, got)
	}

	// A random error string misses.
	miss := testSet(0xF00D, 64)
	code, body = postJSON(t, h, "POST", "/v1/identify", reqFor(miss))
	if code != http.StatusOK {
		t.Fatalf("miss identify: %d %s", code, body)
	}
	var mv VerdictJSON
	if err := json.Unmarshal(body, &mv); err != nil {
		t.Fatal(err)
	}
	if mv.Match || mv.Matches != 0 {
		t.Fatalf("miss = %+v", mv)
	}

	st := s.Stats()
	if st.Entries != n || st.Cache.Hits != 1 || st.Cache.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestServeValidation pins the decoder guards: bad JSON, length mismatch,
// out-of-range positions, oversized bodies, wrong method.
func TestServeValidation(t *testing.T) {
	s := newTestService(t, 4, Config{Shards: 2, MaxBodyBytes: 512, Workers: 1})
	h := s.Handler()
	cases := []struct {
		name string
		body string
		want int
	}{
		{"garbage", `{]`, http.StatusBadRequest},
		{"unknown field", `{"len":4096,"positions":[],"zzz":1}`, http.StatusBadRequest},
		{"zero len", `{"len":0,"positions":[]}`, http.StatusBadRequest},
		{"negative len", `{"len":-4,"positions":[]}`, http.StatusBadRequest},
		{"len mismatch", `{"len":128,"positions":[1]}`, http.StatusBadRequest},
		{"position out of range", `{"len":4096,"positions":[4096]}`, http.StatusBadRequest},
		{"oversized body", `{"len":4096,"positions":[` + strings.Repeat("1,", 400) + `1]}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postJSON(t, h, "POST", "/v1/identify", tc.body)
			if code != tc.want {
				t.Fatalf("got %d (%s), want %d", code, body, tc.want)
			}
		})
	}
	if code, _ := postJSON(t, h, "GET", "/v1/identify", nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET identify: %d, want 405", code)
	}
}

// TestServeDBEndpoints exercises stats, add, remove, characterize, and cache
// invalidation on mutation.
func TestServeDBEndpoints(t *testing.T) {
	s := newTestService(t, 4, Config{Shards: 2, CacheSize: 16, Workers: 1})
	h := s.Handler()

	newFP := testSet(0xAB, 64)
	q := noisyQuery(newFP, 5, 100)

	// Unknown before registration.
	code, body := postJSON(t, h, "POST", "/v1/identify", reqFor(q))
	var v VerdictJSON
	if err := json.Unmarshal(body, &v); err != nil || code != 200 {
		t.Fatalf("pre-add identify: %d %s (%v)", code, body, err)
	}
	if v.Match {
		t.Fatalf("pre-add identify matched: %+v", v)
	}

	// Register via characterize (two noisy outputs intersect back to ~fp).
	o1 := noisyQuery(newFP, 21, 40)
	o2 := noisyQuery(newFP, 22, 40)
	code, body = postJSON(t, h, "POST", "/v1/characterize", characterizeRequestJSON{
		Name: "newdev", Len: fixtureLen,
		Outputs: [][]uint32{o1.Positions(), o2.Positions()},
	})
	if code != http.StatusOK {
		t.Fatalf("characterize: %d %s", code, body)
	}
	var ch characterizeResponseJSON
	if err := json.Unmarshal(body, &ch); err != nil {
		t.Fatal(err)
	}
	if !ch.Added || ch.Entries != 5 || ch.Bits < newFP.Count() {
		t.Fatalf("characterize = %+v (fp bits %d)", ch, newFP.Count())
	}

	// The cache was purged on mutation: the same query now matches.
	code, body = postJSON(t, h, "POST", "/v1/identify", reqFor(q))
	if err := json.Unmarshal(body, &v); err != nil || code != 200 {
		t.Fatalf("post-add identify: %d %s (%v)", code, body, err)
	}
	if !v.Match || v.Name != "newdev" || v.Cached {
		t.Fatalf("post-add identify = %+v", v)
	}

	// Raw add + remove round trip.
	code, body = postJSON(t, h, "POST", "/v1/db", addRequestJSON{Name: "raw", Len: fixtureLen, Positions: testSet(0xCD, 64).Positions()})
	if code != http.StatusOK {
		t.Fatalf("db add: %d %s", code, body)
	}
	code, body = postJSON(t, h, "DELETE", "/v1/db?name=raw", nil)
	var mr mutateResponseJSON
	if err := json.Unmarshal(body, &mr); err != nil || code != 200 || !mr.Removed || mr.Entries != 5 {
		t.Fatalf("db remove: %d %s (%v)", code, body, err)
	}
	if code, _ = postJSON(t, h, "DELETE", "/v1/db?name=raw", nil); code != http.StatusNotFound {
		t.Fatalf("double remove: %d, want 404", code)
	}

	var st Stats
	code, body = postJSON(t, h, "GET", "/v1/db", nil)
	if err := json.Unmarshal(body, &st); err != nil || code != 200 {
		t.Fatalf("db stats: %d %s (%v)", code, body, err)
	}
	if st.Entries != 5 || st.Shards.Entries != 5 || len(st.Shards.PerShard) != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestServeChaosFaults drives the handler under an active fault plan:
// injected ingest faults surface as 503s classified transient, and the
// requests that dodge the injector still answer correctly.
func TestServeChaosFaults(t *testing.T) {
	const n = 8
	s := newTestService(t, n, Config{
		Shards:    2,
		Workers:   1,
		FaultPlan: faults.Plan{Seed: 0xC4A05, ReadErr: 0.4, Latency: 100 * time.Microsecond},
	})
	h := s.Handler()
	offline := fixtureDB(n)

	ok, shed := 0, 0
	for i := 0; i < 40; i++ {
		fp, _ := offline.Get(fmt.Sprintf("dev%03d", i%n))
		q := noisyQuery(fp, uint64(i), 80)
		code, body := postJSON(t, h, "POST", "/v1/identify", reqFor(q))
		switch code {
		case http.StatusOK:
			ok++
			var v VerdictJSON
			if err := json.Unmarshal(body, &v); err != nil {
				t.Fatal(err)
			}
			if want := offline.Decide(q); !v.Match || v.Name != want.Name {
				t.Fatalf("request %d: verdict %+v, offline %+v", i, v, want)
			}
		case http.StatusServiceUnavailable:
			shed++
			if !bytes.Contains(body, []byte("transient")) {
				t.Fatalf("503 without transient classification: %s", body)
			}
		default:
			t.Fatalf("request %d: unexpected status %d (%s)", i, code, body)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("chaos run not mixed: ok=%d shed=%d", ok, shed)
	}
}

// TestServeRequestTimeout pins the per-request timeout path: a coalescing
// window longer than the request budget turns into a 503, not a hang.
func TestServeRequestTimeout(t *testing.T) {
	s := newTestService(t, 4, Config{
		Shards:         2,
		Workers:        1,
		BatchWindow:    200 * time.Millisecond,
		RequestTimeout: 5 * time.Millisecond,
	})
	code, body := postJSON(t, s.Handler(), "POST", "/v1/identify", reqFor(testSet(1, 64)))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("timeout request: %d %s", code, body)
	}
}

// TestServiceDirectContext covers the service API against an
// already-cancelled context.
func TestServiceDirectContext(t *testing.T) {
	s := newTestService(t, 4, Config{Shards: 2, Workers: 1, BatchWindow: 50 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.Identify(ctx, testSet(1, 64)); err == nil {
		t.Fatal("cancelled Identify returned no error")
	}
}
