package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"probablecause/internal/obs"
)

// doTraced sends one request through the handler and returns the status,
// body, and the X-PC-Trace response header.
func doTraced(t *testing.T, h http.Handler, method, path, body, traceHeader string) (int, []byte, string) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if traceHeader != "" {
		req.Header.Set(obs.TraceHeader, traceHeader)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w.Code, bytes.TrimSuffix(w.Body.Bytes(), []byte("\n")), w.Header().Get(obs.TraceHeader)
}

// stageCount tallies span names across one tree.
func stageCount(tree *obs.SpanTree) map[string]int {
	counts := map[string]int{}
	tree.Walk(func(n *obs.SpanTree) { counts[n.Name]++ })
	return counts
}

// TestTracePropagation is the serving-path tracing contract, meant to run
// under -race: concurrent identify requests — per-request and batched
// dispatch — each end with a trace ID in the response header that appears
// in exactly one retained span tree, and every tree decomposes into the
// queue.wait → batch → shard.identify → decide stages.
func TestTracePropagation(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	const (
		shards   = 4
		singles  = 16
		batches  = 4
		perBatch = 3
	)
	s := newTestService(t, 8, Config{
		Shards:       shards,
		Workers:      2,
		BatchWindow:  200 * time.Microsecond,
		SlowRequests: 128, // retain everything: the ring is the trace sink
	})
	h := s.Handler()

	var mu sync.Mutex
	traceOf := map[string]string{} // trace id → request kind
	var wg sync.WaitGroup
	for i := 0; i < singles; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(reqFor(testSet(uint64(i)*31+7, 64)))
			code, resp, th := doTraced(t, h, "POST", "/v1/identify", string(body), "")
			if code != http.StatusOK {
				t.Errorf("identify %d: status %d (%s)", i, code, resp)
				return
			}
			tid, _, ok := obs.ParseTraceHeader(th)
			if !ok {
				t.Errorf("identify %d: bad trace header %q", i, th)
				return
			}
			mu.Lock()
			traceOf[fmt.Sprintf("%016x", tid)] = "identify"
			mu.Unlock()
		}(i)
	}
	for i := 0; i < batches; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var breq batchRequestJSON
			for j := 0; j < perBatch; j++ {
				breq.Queries = append(breq.Queries, reqFor(testSet(uint64(1000+i*10+j), 64)))
			}
			body, _ := json.Marshal(breq)
			code, resp, th := doTraced(t, h, "POST", "/v1/identify-batch", string(body), "")
			if code != http.StatusOK {
				t.Errorf("batch %d: status %d (%s)", i, code, resp)
				return
			}
			tid, _, ok := obs.ParseTraceHeader(th)
			if !ok {
				t.Errorf("batch %d: bad trace header %q", i, th)
				return
			}
			mu.Lock()
			traceOf[fmt.Sprintf("%016x", tid)] = "identify_batch"
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	if len(traceOf) != singles+batches {
		t.Fatalf("collected %d distinct trace ids, want %d", len(traceOf), singles+batches)
	}
	trees := map[string]*obs.SpanTree{}
	for _, e := range s.SlowRing().Snapshot() {
		if trees[e.Trace] != nil {
			t.Fatalf("trace %s appears in more than one span tree", e.Trace)
		}
		trees[e.Trace] = e.Spans
	}
	for tid, kind := range traceOf {
		tree := trees[tid]
		if tree == nil {
			t.Errorf("trace %s (%s) has no span tree", tid, kind)
			continue
		}
		if tree.Name != kind {
			t.Errorf("trace %s: root span %q, want %q", tid, tree.Name, kind)
		}
		counts := stageCount(tree)
		wantQueue := 1
		if kind == "identify_batch" {
			wantQueue = perBatch
		}
		if counts["queue.wait"] != wantQueue {
			t.Errorf("trace %s (%s): %d queue.wait spans, want %d", tid, kind, counts["queue.wait"], wantQueue)
		}
		if counts["batch"] != wantQueue {
			t.Errorf("trace %s (%s): %d batch spans, want %d", tid, kind, counts["batch"], wantQueue)
		}
		if counts["shard.identify"] != wantQueue*shards {
			t.Errorf("trace %s (%s): %d shard.identify spans, want %d", tid, kind, counts["shard.identify"], wantQueue*shards)
		}
		if counts["decide"] != wantQueue {
			t.Errorf("trace %s (%s): %d decide spans, want %d", tid, kind, counts["decide"], wantQueue)
		}
		if counts["cache.get"] != 1 {
			t.Errorf("trace %s (%s): %d cache.get spans, want 1", tid, kind, counts["cache.get"])
		}
		// Stage accounting: queue.wait and batch partition each query's
		// time inside the handler, so their sums cannot exceed the root
		// (per query; for a batch root the max per-query chain applies).
		var qsum, bsum int64
		tree.Walk(func(n *obs.SpanTree) {
			switch n.Name {
			case "queue.wait":
				qsum += n.DurNS
			case "batch":
				bsum += n.DurNS
			}
		})
		slack := int64(2 * time.Millisecond)
		if kind == "identify" && qsum+bsum > tree.DurNS+slack {
			t.Errorf("trace %s: stages (queue %d + batch %d) exceed root %d", tid, qsum, bsum, tree.DurNS)
		}
		if tree.DurNS <= 0 {
			t.Errorf("trace %s: root has no duration", tid)
		}
	}
}

// TestTraceHeaderAdoption: an inbound X-PC-Trace names the server-side
// tree, so a caller can stitch its own telemetry to /debug/slowest.
func TestTraceHeaderAdoption(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	s := newTestService(t, 4, Config{Shards: 2, Workers: 1, SlowRequests: 8})
	body, _ := json.Marshal(reqFor(testSet(0xAB, 64)))
	inbound := obs.FormatTraceHeader(0xFEEDFACE, 0x1234)
	code, _, th := doTraced(t, s.Handler(), "POST", "/v1/identify", string(body), inbound)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	tid, _, ok := obs.ParseTraceHeader(th)
	if !ok || tid != 0xFEEDFACE {
		t.Fatalf("response header %q did not adopt the inbound trace id", th)
	}
	found := false
	for _, e := range s.SlowRing().Snapshot() {
		if e.Trace == fmt.Sprintf("%016x", uint64(0xFEEDFACE)) {
			found = true
			if e.Spans.Attrs["remote_parent"] == nil {
				t.Error("adopted trace lost its remote parent attribute")
			}
		}
	}
	if !found {
		t.Fatal("adopted trace id not retained in the slow ring")
	}
}

// TestSLOServing covers the /slo endpoint and /healthz degradation: an
// impossible latency objective must burn critical and flip healthz to
// degraded, while the JSON and Prometheus forms both render.
func TestSLOServing(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	s := newTestService(t, 4, Config{
		Shards:  2,
		Workers: 1,
		SLO: obs.SLOConfig{Objectives: []obs.Objective{
			{Name: "identify-p99", Endpoint: "identify", Latency: 1, Target: 0.99}, // 1ns: everything is bad
		}},
	})
	h := s.Handler()
	body, _ := json.Marshal(reqFor(testSet(0xC0, 64)))
	for i := 0; i < 20; i++ {
		if code, resp, _ := doTraced(t, h, "POST", "/v1/identify", string(body), ""); code != http.StatusOK {
			t.Fatalf("identify: status %d (%s)", code, resp)
		}
	}

	code, resp, _ := doTraced(t, h, "GET", "/slo", "", "")
	if code != http.StatusOK {
		t.Fatalf("/slo status %d", code)
	}
	var rep obs.SLOReport
	if err := json.Unmarshal(resp, &rep); err != nil {
		t.Fatalf("decoding /slo: %v (%s)", err, resp)
	}
	if rep.Status != "critical" || len(rep.Objectives) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if w := rep.Objectives[0].Windows[0]; w.Total == 0 || w.BurnRate < obs.BurnCritical {
		t.Errorf("window = %+v, want hot burn", w)
	}

	code, promBody, _ := doTraced(t, h, "GET", "/slo?format=prom", "", "")
	if code != http.StatusOK || !strings.Contains(string(promBody), "pc_slo_burn_rate") {
		t.Errorf("/slo?format=prom → %d: %s", code, promBody)
	}

	code, hb, _ := doTraced(t, h, "GET", "/healthz", "", "")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	var health struct {
		Status string `json:"status"`
		SLO    string `json:"slo"`
	}
	if err := json.Unmarshal(hb, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || health.SLO != "critical" {
		t.Errorf("healthz = %+v, want degraded/critical", health)
	}
}

// TestHealthzBytesWithoutSLO pins the no-objective /healthz body to the
// pre-SLO wire format, byte for byte.
func TestHealthzBytesWithoutSLO(t *testing.T) {
	s := newTestService(t, 2, Config{Shards: 2, Workers: 1})
	_, body, _ := doTraced(t, s.Handler(), "GET", "/healthz", "", "")
	if string(body) != `{"status":"ok"}` {
		t.Fatalf("healthz body %q drifted", body)
	}
}

// TestSlowestEndpoint: /debug/slowest serves the retained span trees.
func TestSlowestEndpoint(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	s := newTestService(t, 4, Config{Shards: 2, Workers: 1, SlowRequests: 4})
	h := s.Handler()
	for i := 0; i < 6; i++ {
		body, _ := json.Marshal(reqFor(testSet(uint64(i)+1, 64)))
		doTraced(t, h, "POST", "/v1/identify", string(body), "")
	}
	code, resp, _ := doTraced(t, h, "GET", "/debug/slowest", "", "")
	if code != http.StatusOK {
		t.Fatalf("/debug/slowest status %d", code)
	}
	var out struct {
		Capacity int             `json:"capacity"`
		Slowest  []obs.SlowEntry `json:"slowest"`
	}
	if err := json.Unmarshal(resp, &out); err != nil {
		t.Fatalf("decoding: %v (%s)", err, resp)
	}
	if out.Capacity != 4 || len(out.Slowest) != 4 {
		t.Fatalf("capacity %d, %d entries; want 4/4", out.Capacity, len(out.Slowest))
	}
	for i := 1; i < len(out.Slowest); i++ {
		if out.Slowest[i].DurNS > out.Slowest[i-1].DurNS {
			t.Fatal("entries not sorted slowest-first")
		}
	}
	if cs := stageCount(out.Slowest[0].Spans); cs["queue.wait"] == 0 || cs["shard.identify"] == 0 {
		t.Errorf("slowest entry lacks stage spans: %v", cs)
	}
}

// TestEnrollRecoveryBytesWithTracing runs the same crash-recovery cycle
// twice — instrumentation off, then fully on with span filing — and
// byte-compares the recovered databases: tracing must not perturb the
// WAL contents, replay order, or fold results.
func TestEnrollRecoveryBytesWithTracing(t *testing.T) {
	const n = 256
	run := func(ctx context.Context) []byte {
		dir := t.TempDir()
		s := enrollService(t, dir)
		for i := 0; i < 3; i++ {
			for trial := 0; trial < 5; trial++ {
				if _, err := s.Enroll(ctx, fmt.Sprintf("sess-%d", i), fmt.Sprintf("dev-%d", i), deviceObs(n, i, trial)); err != nil {
					t.Fatal(err)
				}
			}
		}
		s.Close() // crash: no checkpoint, recovery is pure WAL replay
		r := enrollService(t, dir)
		defer r.Close()
		return dbBytes(t, r.DB().Export())
	}

	plain := run(context.Background())

	obs.Enable()
	obs.EnableTracing()
	defer func() {
		obs.ResetTracing()
		obs.Disable()
	}()
	tctx, root := obs.StartRequest(context.Background(), "enroll", "")
	traced := run(tctx)
	root.End()

	if !bytes.Equal(plain, traced) {
		t.Fatal("recovered database bytes diverged with tracing enabled")
	}
	// The traced run must actually have produced wal.append and fold spans
	// (otherwise this test silently compares two untraced runs).
	counts := stageCount(root.Trace().Tree())
	if counts["wal.append"] == 0 || counts["fold.apply"] == 0 {
		t.Fatalf("traced enrollment recorded no WAL/fold spans: %v", counts)
	}
}

// TestMetricsEndpoint: the service mux serves the obs registry directly,
// including per-endpoint RED series and the WAL gauges when enrollment
// ran (here just the serving counters).
func TestMetricsEndpoint(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	s := newTestService(t, 4, Config{Shards: 2, Workers: 1})
	h := s.Handler()
	body, _ := json.Marshal(reqFor(testSet(0xE0, 64)))
	doTraced(t, h, "POST", "/v1/identify", string(body), "")
	code, resp, _ := doTraced(t, h, "GET", "/metrics?format=json", "", "")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(resp, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["server.http.identify.requests"] == 0 {
		t.Errorf("RED request counter missing from /metrics: %v", snap.Counters)
	}
	if _, ok := snap.Histograms["server.http.identify.nanos"]; !ok {
		t.Error("RED duration histogram missing from /metrics")
	}
}
