package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
	"probablecause/internal/obs"
)

// Batching metrics: dispatch count and the realized batch-size distribution
// (the whole point of the micro-batcher — under load the p50 batch size
// should sit well above 1), plus the queue depth the 429 backpressure
// guards.
var (
	cDispatches = obs.C("server.batch.dispatches")
	hBatchSize  = obs.H("server.batch.size")
	gQueueDepth = obs.G("server.queue.depth")
)

// ErrOverloaded is returned by submit when the bounded queue cannot take the
// request; the HTTP layer maps it to 429 Too Many Requests.
var ErrOverloaded = errors.New("server: identify queue full")

// ErrDraining is returned by submit once the batcher is closing; the HTTP
// layer maps it to 503 Service Unavailable.
var ErrDraining = errors.New("server: draining")

// pending is one enqueued identify query. The result channel is buffered so
// the dispatcher can always deliver, even when the requester timed out and
// walked away — nothing leaks, the verdict is simply dropped with the
// channel. ctx carries the originating request's trace span across the
// coalescing boundary; qspan times the queue wait (admission → dispatch).
type pending struct {
	ctx   context.Context
	qspan *obs.RSpan
	es    *bitset.Set
	out   chan fingerprint.Verdict
}

// batcher is the micro-batching dispatcher on the identify path. Requests
// land in a bounded queue; a single dispatcher goroutine coalesces whatever
// arrived within the window (up to maxBatch) into one batch and runs it
// through the sharded database's ParallelDecide, amortizing dispatch
// overhead across concurrent requests. Results are per-query and
// order-independent, so coalescing never changes any verdict — only the
// wall-clock (see the invariance tests).
type batcher struct {
	run      func([]context.Context, []*bitset.Set) []fingerprint.Verdict
	window   time.Duration
	maxBatch int
	capacity int

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*pending
	closed bool
	done   chan struct{}
}

// newBatcher starts the dispatcher goroutine. close() stops it.
func newBatcher(capacity, maxBatch int, window time.Duration, run func([]context.Context, []*bitset.Set) []fingerprint.Verdict) *batcher {
	b := &batcher{run: run, window: window, maxBatch: maxBatch, capacity: capacity, done: make(chan struct{})}
	b.cond = sync.NewCond(&b.mu)
	go b.loop()
	return b
}

// submit enqueues the queries atomically: either every query gets a slot or
// none does, so a batch request can never be half-admitted. The returned
// pendings receive their verdicts on their out channels. When ctx carries a
// request span, each query opens a queue.wait child the dispatcher closes
// at dispatch — the admission-to-dispatch latency, per query.
func (b *batcher) submit(ctx context.Context, queries []*bitset.Set) ([]*pending, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrDraining
	}
	if len(b.queue)+len(queries) > b.capacity {
		return nil, ErrOverloaded
	}
	span := obs.SpanFrom(ctx)
	ps := make([]*pending, len(queries))
	for i, es := range queries {
		ps[i] = &pending{ctx: ctx, qspan: span.Child("queue.wait"), es: es, out: make(chan fingerprint.Verdict, 1)}
	}
	b.queue = append(b.queue, ps...)
	if obs.On() {
		gQueueDepth.Set(int64(len(b.queue)))
	}
	b.cond.Signal()
	return ps, nil
}

// loop is the dispatcher: wait for work, give the coalescing window a chance
// to fill the batch, run, deliver, repeat. On close it drains the queue
// before exiting — enqueued requests always get their verdicts.
func (b *batcher) loop() {
	defer close(b.done)
	for {
		b.mu.Lock()
		for len(b.queue) == 0 && !b.closed {
			b.cond.Wait()
		}
		if len(b.queue) == 0 {
			b.mu.Unlock()
			return
		}
		if b.window > 0 && len(b.queue) < b.maxBatch && !b.closed {
			b.mu.Unlock()
			time.Sleep(b.window)
			b.mu.Lock()
		}
		n := len(b.queue)
		if n > b.maxBatch {
			n = b.maxBatch
		}
		batch := b.queue[:n:n]
		b.queue = append(make([]*pending, 0, len(b.queue)-n), b.queue[n:]...)
		if obs.On() {
			gQueueDepth.Set(int64(len(b.queue)))
		}
		b.mu.Unlock()

		// Dispatch: close each query's queue.wait span and open its batch
		// span, re-parenting the query's context under it so the shard
		// fan-out nests inside — one coalesced execution, N request-scoped
		// span trees.
		ess := make([]*bitset.Set, len(batch))
		ctxs := make([]context.Context, len(batch))
		bspans := make([]*obs.RSpan, len(batch))
		for i, p := range batch {
			ess[i] = p.es
			ctxs[i] = p.ctx
			p.qspan.End()
			if span := obs.SpanFrom(p.ctx); span != nil {
				bspans[i] = span.Child("batch")
				bspans[i].SetAttr("batch_size", len(batch))
				ctxs[i] = obs.ContextWithSpan(p.ctx, bspans[i])
			}
		}
		verdicts := b.run(ctxs, ess)
		for i, p := range batch {
			bspans[i].End()
			p.out <- verdicts[i]
		}
		if obs.On() {
			cDispatches.Inc()
			hBatchSize.Observe(int64(len(batch)))
		}
	}
}

// close marks the batcher draining, waits for the dispatcher to finish every
// enqueued query, and returns. Subsequent submits fail with ErrDraining.
func (b *batcher) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
	<-b.done
}
