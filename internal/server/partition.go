package server

import (
	"errors"
	"net/http"

	"probablecause/internal/fingerprint"
)

// PartitionConfig scopes a service to one partition of a partitioned
// cluster (CLUSTER.md). The zero value means unpartitioned: the service
// owns every name and reports raw local ids, preserving single-node
// behavior byte-for-byte.
type PartitionConfig struct {
	// Name labels the partition (e.g. "p0") in /v1/repl/status — the
	// router's topology handshake refuses a backend whose claimed
	// partition does not match the partition map.
	Name string
	// NS maps this partition's local, dense entry ids into the
	// cluster-wide global id space (partition ordinal and count; see
	// fingerprint.IDNamespace). Applied only at the reporting boundary —
	// verdict JSON and enrollment EntryIDs — never to stored state, so
	// WAL records, segments, and replication stay partition-local.
	NS fingerprint.IDNamespace
	// Owns reports whether a device name belongs to this partition
	// (derived from the shared partition map). nil owns everything.
	Owns func(name string) bool
}

// ErrWrongPartition rejects a mutation for a name this partition does not
// own. Mapped to HTTP 421 (Misdirected Request): the client — normally
// the scatter router — addressed the wrong backend, and retrying here
// can never succeed.
var ErrWrongPartition = errors.New("server: name not owned by this partition")

// partitionOwns reports whether this service may mutate entries under name.
func (s *Service) partitionOwns(name string) bool {
	if s.cfg.Partition.Owns == nil {
		return true
	}
	return s.cfg.Partition.Owns(name)
}

// checkPartition writes the 421 refusal when name is misdirected and
// reports whether the handler may proceed.
func (s *Service) checkPartition(w http.ResponseWriter, name string) bool {
	if s.partitionOwns(name) {
		return true
	}
	httpError(w, http.StatusMisdirectedRequest,
		ErrWrongPartition.Error()+": "+name+" (partition "+s.cfg.Partition.Name+")")
	return false
}

// renumberEnroll maps an EnrollState's entry id into the global id space
// at the reporting boundary. The stored session state keeps local ids.
func (s *Service) renumberEnroll(st EnrollState) EnrollState {
	st.EntryID = s.cfg.Partition.NS.Global(st.EntryID)
	return st
}
