// Package server is the network face of the identification engine: an
// HTTP/JSON service over the fingerprint database that answers the paper's
// attack queries (§5) at fleet scale — which registered device produced this
// approximate output?
//
// The serving path is layered for throughput on top of the PR 3 parallel
// engine:
//
//   - an N-way sharded database (fingerprint.ShardedDB): adds and lookups
//     take per-shard RW locks, so registration traffic does not serialize
//     identification traffic;
//   - a micro-batching dispatcher (batcher): concurrent identify requests
//     coalesce over a short window into one ParallelDecide batch, amortizing
//     dispatch overhead;
//   - an LRU result cache (verdictCache) keyed by the error string's SHA-256
//     digest and invalidated generationally on every DB mutation;
//   - production guards: bounded queue with 429 backpressure, per-request
//     timeouts, a request body cap, and graceful drain on shutdown;
//   - chaos hooks: an internal/faults plan injects transient ingest faults
//     and latency so the serving path is testable under the same fault
//     matrix as the offline pipeline.
//
// Determinism contract: batching, sharding, and caching change wall-clock
// behavior only. Every identify answer equals what a serial
// fingerprint.DB.Decide scan over the same entries returns (on indexed
// shards, modulo IndexedDB's documented candidates-only Matches count); the
// golden and invariance tests in this package hold the service to that.
package server

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"probablecause/internal/bitset"
	"probablecause/internal/faults"
	"probablecause/internal/fingerprint"
	"probablecause/internal/obs"
	"probablecause/internal/store"
)

// Service-level metrics (the HTTP layer adds per-endpoint latency).
var (
	cTimeouts = obs.C("server.identify.timeouts")
)

// Config parameterizes a Service. The zero value serves with sane defaults.
type Config struct {
	// Threshold is the identification threshold; 0 selects the seed DB's
	// threshold (or fingerprint.DefaultThreshold with no seed).
	Threshold float64
	// Shards is the database shard count; 0 selects fingerprint.DefaultShards.
	Shards int
	// Plain disables the per-shard LSH indexes (dense-scan shards).
	Plain bool
	// Sliced puts the bit-sliced verification backend on every shard
	// (band-major block kernel with cardinality-bound pruning on the
	// fallback scan); mutually exclusive with Plain.
	Sliced bool
	// Probes enables multi-probe LSH candidate expansion on the per-shard
	// indexes (leave-one-out near-miss buckets).
	Probes bool
	// Workers bounds the pool a dispatched batch fans across; 0 means one
	// worker per CPU.
	Workers int
	// BatchWindow is how long the dispatcher waits for concurrent requests
	// to coalesce once one is pending. 0 dispatches immediately (coalescing
	// still happens under load — whatever queued during the previous batch
	// joins the next).
	BatchWindow time.Duration
	// MaxBatch caps identify queries per dispatch; 0 selects 64.
	MaxBatch int
	// QueueDepth bounds the identify queue; submissions beyond it are shed
	// with 429. 0 selects 1024.
	QueueDepth int
	// CacheSize is the LRU verdict cache capacity; 0 disables caching.
	CacheSize int
	// RequestTimeout bounds how long one request waits for its verdict;
	// 0 selects 5s.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies; 0 selects 8 MiB.
	MaxBodyBytes int64
	// MaxLenBits caps the declared error-string length, bounding the
	// allocation a single request can demand; 0 selects 1<<26.
	MaxLenBits int
	// FaultPlan, when active, wraps request bodies in transient fault and
	// latency injection (chaos testing the serving path).
	FaultPlan faults.Plan
	// SLO configures the rolling-window SLO engine behind /slo and
	// /healthz degradation. No objectives disables the engine.
	SLO obs.SLOConfig
	// SlowRequests caps the /debug/slowest retention ring; 0 selects
	// obs.DefaultSlowRing, negative disables retention.
	SlowRequests int
	// Store selects and parameterizes the storage backend: the zero value is
	// the in-memory ShardedDB (the pre-tiering behavior); "tiered" puts the
	// database behind mmap'd immutable segment files in Store.Dir.
	Store store.Config
	// BlockEntries sizes the bit-sliced blocks on sliced shards and in tiered
	// segment files; 0 selects the fingerprint package default.
	BlockEntries int
	// Partition scopes the service to one partition of a partitioned
	// cluster (partition.go); the zero value is unpartitioned.
	Partition PartitionConfig
}

// Defaults for the zero Config.
const (
	DefaultMaxBatch       = 64
	DefaultQueueDepth     = 1024
	DefaultRequestTimeout = 5 * time.Second
	DefaultMaxBodyBytes   = 8 << 20
	DefaultMaxLenBits     = 1 << 26
)

func (c Config) withDefaults(seed *fingerprint.DB) Config {
	if c.Threshold == 0 {
		if seed != nil {
			c.Threshold = seed.Threshold()
		} else {
			c.Threshold = fingerprint.DefaultThreshold
		}
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.MaxLenBits <= 0 {
		c.MaxLenBits = DefaultMaxLenBits
	}
	return c
}

// Service is the identification service: the sharded database plus the
// batching, caching, and guard layers. Create with New, serve its Handler,
// and Close to drain.
type Service struct {
	cfg    Config
	db     store.Backend
	cache  *verdictCache
	batch  *batcher
	inj    *faults.Injector // nil when the fault plan is inactive
	enroll *enroller        // nil until EnableEnrollment
	slo    *obs.SLOEngine   // nil without objectives
	slow   *obs.SlowRing    // nil when retention is disabled

	// fpLen pins the error-string length (bits) every query and registered
	// fingerprint must share — Distance is only defined over equal-length
	// sets, and an unchecked mismatch would panic the distance kernel.
	// 0 until the first entry fixes it.
	fpLen atomic.Int64

	// Cluster-role state (repl.go): both false — primary and ready — for a
	// standalone service, so single-node behavior is unchanged.
	notPrimary atomic.Bool
	notReady   atomic.Bool
	commitGate atomic.Pointer[commitGateBox]
}

// New builds a Service over the seed database (nil for an empty start). With
// a tiered store backend the on-disk state recovers first; a seed is then
// only accepted into an empty store (BootDurable manages the combination).
func New(seed *fingerprint.DB, cfg Config) (*Service, error) {
	cfg = cfg.withDefaults(seed)
	db, err := store.Open(cfg.Store, store.DBConfig{
		Threshold: cfg.Threshold, Shards: cfg.Shards,
		Plain: cfg.Plain, Sliced: cfg.Sliced, Probes: cfg.Probes,
		Workers: cfg.Workers, BlockEntries: cfg.BlockEntries,
	})
	if err != nil {
		return nil, err
	}
	if seed != nil {
		if db.Len() > 0 {
			db.Close()
			return nil, fmt.Errorf("server: tiered store %s recovered %d entries; refusing to also seed (boot without a seed, or empty the store)", cfg.Store.Dir, db.Len())
		}
		for _, e := range seed.Entries() {
			db.Add(e.Name, e.FP)
		}
	}
	s := &Service{cfg: cfg, db: db, cache: newVerdictCache(cfg.CacheSize)}
	// Seeding advanced the DB generation; align the cache's accepted
	// generation so post-startup Puts are not dropped as stale.
	s.cache.Purge(db.Generation())
	if seed != nil && seed.Len() > 0 {
		s.fpLen.Store(int64(seed.Entries()[0].FP.Len()))
	} else if b, ok := db.(interface{ FPBits() int }); ok {
		// A recovered tiered store pins the query-length check without
		// materializing any entry.
		s.fpLen.Store(int64(b.FPBits()))
	}
	if cfg.FaultPlan.Active() {
		s.inj = faults.NewInjector(cfg.FaultPlan)
	}
	s.slo, err = obs.NewSLOEngine(cfg.SLO)
	if err != nil {
		return nil, err
	}
	slowK := cfg.SlowRequests
	if slowK == 0 {
		slowK = obs.DefaultSlowRing
	}
	s.slow = obs.NewSlowRing(slowK)
	s.batch = newBatcher(cfg.QueueDepth, cfg.MaxBatch, cfg.BatchWindow, func(ctxs []context.Context, ess []*bitset.Set) []fingerprint.Verdict {
		return db.ParallelDecideCtx(ctxs, ess, cfg.Workers)
	})
	return s, nil
}

// SLO exposes the service's SLO engine (nil without objectives).
func (s *Service) SLO() *obs.SLOEngine { return s.slo }

// SlowRing exposes the slow-request retention ring (nil when disabled).
func (s *Service) SlowRing() *obs.SlowRing { return s.slow }

// DB exposes the storage backend (snapshot export, tests).
func (s *Service) DB() store.Backend { return s.db }

// Config returns the resolved configuration.
func (s *Service) Config() Config { return s.cfg }

// Close drains the identify queue, stops the dispatcher, closes the
// enrollment write-ahead log when one is attached, and releases the storage
// backend (segment mappings). In-flight requests complete; later submissions
// fail with ErrDraining. Close does not flush — pcserved checkpoints
// explicitly on drain; an unflushed memtable is recovered from the WAL.
func (s *Service) Close() {
	s.batch.close()
	if s.enroll != nil {
		s.enroll.log.Close()
	}
	s.db.Close()
}

// checkLen validates a declared error-string length against the pinned
// fingerprint length and the configured ceiling.
func (s *Service) checkLen(n int) error {
	if n <= 0 {
		return fmt.Errorf("len must be positive, got %d", n)
	}
	if n > s.cfg.MaxLenBits {
		return fmt.Errorf("len %d exceeds the %d-bit limit", n, s.cfg.MaxLenBits)
	}
	if want := s.fpLen.Load(); want != 0 && int64(n) != want {
		return fmt.Errorf("len %d does not match the database fingerprint length %d", n, want)
	}
	return nil
}

// Identify answers one identify query through the cache and the batching
// dispatcher. The bool reports whether the verdict came from the cache.
func (s *Service) Identify(ctx context.Context, es *bitset.Set) (fingerprint.Verdict, bool, error) {
	key := keyOf(es)
	csp := obs.SpanFrom(ctx).Child("cache.get")
	v, ok := s.cache.Get(key)
	csp.SetAttr("hit", ok)
	csp.End()
	if ok {
		return v, true, nil
	}
	gen := s.db.Generation()
	ps, err := s.batch.submit(ctx, []*bitset.Set{es})
	if err != nil {
		return fingerprint.Verdict{}, false, err
	}
	select {
	case v := <-ps[0].out:
		s.cache.Put(gen, key, v)
		return v, false, nil
	case <-ctx.Done():
		if obs.On() {
			cTimeouts.Inc()
		}
		return fingerprint.Verdict{}, false, ctx.Err()
	}
}

// IdentifyBatch answers a batch of queries, consulting the cache per query
// and submitting the misses as one atomic unit. cached[i] reports per-query
// cache service.
func (s *Service) IdentifyBatch(ctx context.Context, ess []*bitset.Set) (verdicts []fingerprint.Verdict, cached []bool, err error) {
	verdicts = make([]fingerprint.Verdict, len(ess))
	cached = make([]bool, len(ess))
	keys := make([]cacheKey, len(ess))
	csp := obs.SpanFrom(ctx).Child("cache.get")
	var misses []int
	for i, es := range ess {
		keys[i] = keyOf(es)
		if v, ok := s.cache.Get(keys[i]); ok {
			verdicts[i], cached[i] = v, true
			continue
		}
		misses = append(misses, i)
	}
	csp.SetAttr("queries", len(ess))
	csp.SetAttr("hits", len(ess)-len(misses))
	csp.End()
	if len(misses) == 0 {
		return verdicts, cached, nil
	}
	queries := make([]*bitset.Set, len(misses))
	for j, i := range misses {
		queries[j] = ess[i]
	}
	gen := s.db.Generation()
	ps, err := s.batch.submit(ctx, queries)
	if err != nil {
		return nil, nil, err
	}
	for j, p := range ps {
		select {
		case v := <-p.out:
			i := misses[j]
			verdicts[i] = v
			s.cache.Put(gen, keys[i], v)
		case <-ctx.Done():
			if obs.On() {
				cTimeouts.Inc()
			}
			return nil, nil, ctx.Err()
		}
	}
	return verdicts, cached, nil
}

// Characterize intersects the submitted error strings (Algorithm 1 over
// pre-extracted error patterns) and, when name is non-empty, registers the
// resulting fingerprint.
func (s *Service) Characterize(name string, ess []*bitset.Set) (*bitset.Set, bool, error) {
	if len(ess) == 0 {
		return nil, false, fmt.Errorf("characterize needs at least one error string")
	}
	fp := ess[0].Clone()
	for _, es := range ess[1:] {
		fp.And(es)
	}
	added := false
	if name != "" {
		s.Add(name, fp)
		added = true
	}
	return fp, added, nil
}

// Add registers a fingerprint, purging the verdict cache, and returns
// the entry's stable add-order id. The first entry pins the service's
// fingerprint length.
func (s *Service) Add(name string, fp *bitset.Set) int {
	s.fpLen.CompareAndSwap(0, int64(fp.Len()))
	id := s.db.Add(name, fp)
	s.cache.Purge(s.db.Generation())
	return id
}

// Remove deletes the earliest-added entry under name, purging the verdict
// cache when something was removed.
func (s *Service) Remove(name string) bool {
	if !s.db.Remove(name) {
		return false
	}
	s.cache.Purge(s.db.Generation())
	return true
}

// Stats describes the serving state for /v1/db.
type Stats struct {
	Entries    int                    `json:"entries"`
	Threshold  float64                `json:"threshold"`
	Shards     fingerprint.ShardStats `json:"shards"`
	Generation int64                  `json:"generation"`
	QueueCap   int                    `json:"queue_capacity"`
	Cache      CacheStats             `json:"cache"`
	// Store describes the tiered backend; zero-valued on the memory backend.
	Store StoreStats `json:"store"`
	// Partition names the partition this node serves; omitted when
	// unpartitioned, keeping the body byte-identical to pre-cluster
	// deployments.
	Partition string `json:"partition,omitempty"`
}

// StoreStats is the tiered-backend corner of Stats.
type StoreStats struct {
	Backend   string `json:"backend"`
	Segments  int    `json:"segments"`
	Watermark uint64 `json:"watermark"`
}

// CacheStats is the verdict-cache corner of Stats.
type CacheStats struct {
	Capacity int   `json:"capacity"`
	Size     int   `json:"size"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
}

// Stats snapshots the service.
func (s *Service) Stats() Stats {
	hits, misses := s.cache.Counts()
	st := Stats{
		Entries:    s.db.Len(),
		Threshold:  s.cfg.Threshold,
		Shards:     s.db.Stats(),
		Generation: s.db.Generation(),
		QueueCap:   s.cfg.QueueDepth,
		Cache:      CacheStats{Capacity: s.cfg.CacheSize, Size: s.cache.Len(), Hits: hits, Misses: misses},
		Store:      StoreStats{Backend: store.BackendMemory},
		Partition:  s.cfg.Partition.Name,
	}
	if d, ok := s.db.(store.DurableBackend); ok {
		st.Store = StoreStats{Backend: s.cfg.Store.Backend, Watermark: d.Watermark()}
		if sc, ok := s.db.(interface{ SegmentCount() int }); ok {
			st.Store.Segments = sc.SegmentCount()
		}
	}
	return st
}
