package server

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
	"probablecause/internal/obs"
)

// Cache metrics: the hit ratio is the headline number for the serving path —
// repeated outputs from the same device digest identically, so a warm cache
// answers them without touching a single shard.
var (
	cCacheHits   = obs.C("server.cache.hits")
	cCacheMisses = obs.C("server.cache.misses")
	cCachePurges = obs.C("server.cache.purges")
)

// cacheKey is the SHA-256 digest of an error string's stable binary
// encoding. A full-width cryptographic digest (not a 64-bit hash) keys the
// cache because a collision would silently serve one device's verdict for
// another's output — the exact failure mode the service exists to avoid.
type cacheKey [sha256.Size]byte

// keyOf digests an error string. MarshalBinary on an in-memory set cannot
// fail; a panic here means the bitset contract broke.
func keyOf(es *bitset.Set) cacheKey {
	blob, err := es.MarshalBinary()
	if err != nil {
		panic("server: error string digest: " + err.Error())
	}
	return sha256.Sum256(blob)
}

// verdictCache is a generation-guarded LRU over identification verdicts.
// The generation ties entries to the database state they were computed
// against: every DB mutation purges the cache and advances the accepted
// generation, and a Put whose verdict was computed before the purge (the
// lookup raced the mutation) is dropped instead of resurrecting a stale
// answer. A nil *verdictCache is valid and caches nothing.
type verdictCache struct {
	mu           sync.Mutex
	cap          int
	gen          int64
	ll           *list.List
	m            map[cacheKey]*list.Element
	hits, misses int64
}

type cacheEntry struct {
	key cacheKey
	v   fingerprint.Verdict
}

// newVerdictCache returns a cache holding up to capacity verdicts, or nil
// (caching off) when capacity <= 0.
func newVerdictCache(capacity int) *verdictCache {
	if capacity <= 0 {
		return nil
	}
	return &verdictCache{cap: capacity, ll: list.New(), m: make(map[cacheKey]*list.Element)}
}

// Get returns the cached verdict for the key, refreshing its recency.
func (c *verdictCache) Get(k cacheKey) (fingerprint.Verdict, bool) {
	if c == nil {
		return fingerprint.Verdict{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		c.misses++
		if obs.On() {
			cCacheMisses.Inc()
		}
		return fingerprint.Verdict{}, false
	}
	c.hits++
	if obs.On() {
		cCacheHits.Inc()
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).v, true
}

// Put stores a verdict computed at database generation gen, evicting the
// least-recently-used entry at capacity. Writes from a stale generation are
// dropped.
func (c *verdictCache) Put(gen int64, k cacheKey, v fingerprint.Verdict) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		return
	}
	if el, ok := c.m[k]; ok {
		el.Value.(*cacheEntry).v = v
		c.ll.MoveToFront(el)
		return
	}
	c.m[k] = c.ll.PushFront(&cacheEntry{key: k, v: v})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

// Purge empties the cache and advances the accepted generation; call with
// the database generation observed after the mutation.
func (c *verdictCache) Purge(gen int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen = gen
	c.ll.Init()
	c.m = make(map[cacheKey]*list.Element)
	if obs.On() {
		cCachePurges.Inc()
	}
}

// Len returns the number of cached verdicts.
func (c *verdictCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Counts returns the lifetime hit/miss totals (cache-local, independent of
// the obs registry, so the /v1/db stats stay meaningful with obs off).
func (c *verdictCache) Counts() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
