package server

// Replication hooks: the surface internal/cluster drives to turn one
// durable Service into a primary (export the WAL stream, gate acks on
// follower acknowledgement) or a follower (apply replicated records
// through the same deterministic fold, refuse local mutations). The
// contract is the WAL's: a follower that applies the identical record
// sequence holds a byte-identical database, so identify verdicts never
// diverge across the fleet.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"probablecause/internal/fingerprint"
	"probablecause/internal/obs"
	"probablecause/internal/store"
	"probablecause/internal/wal"
)

var (
	cReplApplied    = obs.C("server.repl.applied_records")
	cReplDuplicates = obs.C("server.repl.duplicate_records")
)

// ErrNotPrimary reports a mutation sent to a follower: enrollment and
// database writes are accepted only by the primary (the router's job is
// to send them there). The HTTP layer maps it to 503 so a router retry
// after failover succeeds.
var ErrNotPrimary = errors.New("server: not the primary; mutations must go to the primary")

// ErrReplicationGap reports a replicated record whose sequence number
// skips past the follower's next expected sequence; the puller must
// re-request from the gap instead of applying out of order.
var ErrReplicationGap = errors.New("server: replicated record leaves a sequence gap")

// SetPrimary flips the service between primary (mutations accepted) and
// follower (mutations refused with ErrNotPrimary) roles. Services start
// as primaries; cluster followers demote themselves before serving and
// promote on failover.
func (s *Service) SetPrimary(primary bool) { s.notPrimary.Store(!primary) }

// IsPrimary reports whether the service accepts mutations.
func (s *Service) IsPrimary() bool { return !s.notPrimary.Load() }

// SetReady flips the /readyz readiness gate. Services start ready;
// cluster followers hold not-ready until snapshot bootstrap and WAL
// catch-up complete, so routers and orchestrators keep traffic off
// warming nodes. Liveness (/healthz) is independent and unchanged.
func (s *Service) SetReady(ready bool) { s.notReady.Store(!ready) }

// Ready reports whether the service wants traffic.
func (s *Service) Ready() bool { return !s.notReady.Load() }

// CommitGate delays an enrollment ack until seq is replicated to the
// cluster's satisfaction (or ctx dies). The record is already durable
// locally and folded when the gate runs; a gate error turns into a 503
// whose retry is safe in the at-least-once sense.
type CommitGate func(ctx context.Context, seq uint64) error

// SetCommitGate installs the replication ack gate. A nil gate (the
// default) acks on local durability alone — the single-node behavior.
func (s *Service) SetCommitGate(gate CommitGate) {
	if gate == nil {
		s.commitGate.Store((*commitGateBox)(nil))
		return
	}
	s.commitGate.Store(&commitGateBox{gate: gate})
}

// commitGateBox wraps the func so atomic.Pointer has a concrete type.
type commitGateBox struct{ gate CommitGate }

func (s *Service) gateCommit(ctx context.Context, seq uint64) error {
	box := s.commitGate.Load()
	if box == nil || box.gate == nil {
		return nil
	}
	return box.gate(ctx, seq)
}

// WAL exposes the enrollment write-ahead log (nil when enrollment is
// disabled) — the replication stream reads it, ReadRange-style.
func (s *Service) WAL() *wal.Log {
	if s.enroll == nil {
		return nil
	}
	return s.enroll.log
}

// AppliedSeq returns the highest WAL sequence folded into the database
// (0 when enrollment is disabled). Failover picks the follower where
// this is highest.
func (s *Service) AppliedSeq() uint64 {
	if s.enroll == nil {
		return 0
	}
	s.enroll.mu.Lock()
	defer s.enroll.mu.Unlock()
	return s.enroll.appliedSeq
}

// ApplyReplicated folds one replicated WAL record: append it to the
// local log (which must assign exactly seq — followers apply in strict
// sequence order) and run the same deterministic fold the primary ran.
// A record below the local position is a retransmitted duplicate and is
// skipped (applied=false, nil error); a record above it is a gap and is
// refused with ErrReplicationGap so the puller re-requests the range.
func (s *Service) ApplyReplicated(seq uint64, payload []byte) (applied bool, err error) {
	e := s.enroll
	if e == nil {
		return false, ErrEnrollmentDisabled
	}
	next := e.log.NextSeq()
	if seq < next {
		if obs.On() {
			cReplDuplicates.Inc()
		}
		return false, nil
	}
	if seq > next {
		return false, fmt.Errorf("%w: got seq %d, want %d", ErrReplicationGap, seq, next)
	}
	var rec walObs
	if derr := json.Unmarshal(payload, &rec); derr != nil {
		return false, fmt.Errorf("server: replicated record %d undecodable: %w", seq, derr)
	}
	got, err := e.log.Append(payload)
	if err != nil {
		return false, fmt.Errorf("server: replication log: %w", err)
	}
	if got != seq {
		return false, fmt.Errorf("server: replication log assigned seq %d, want %d", got, seq)
	}
	e.mu.Lock()
	e.applyLocked(s, seq, &rec)
	e.appliedSeq = seq
	if obs.On() {
		gEnrollApplied.Set(int64(seq))
		cReplApplied.Inc()
	}
	e.applyCond.Broadcast()
	e.mu.Unlock()
	return true, nil
}

// ReplicationSnapshot captures a consistent bootstrap image for a new
// follower: the database export, the watermark (first WAL sequence NOT
// reflected in the export), and the replay floor — the first sequence a
// follower must pull so unconverged sessions rebuild their accumulators
// (floor ≤ watermark; sessions still converging depend on records below
// the watermark).
func (s *Service) ReplicationSnapshot() (db *fingerprint.DB, watermark, floor uint64, err error) {
	e := s.enroll
	if e == nil {
		return nil, 0, 0, ErrEnrollmentDisabled
	}
	e.mu.Lock()
	watermark = e.appliedSeq + 1
	db = s.db.Export()
	floor = watermark
	for _, sess := range e.sessions {
		if !sess.promoted && sess.firstSeq < floor {
			floor = sess.firstSeq
		}
	}
	e.mu.Unlock()
	if first := e.log.FirstSeq(); floor < first {
		// The needed history was compacted away locally; that cannot happen
		// for unconverged sessions (Checkpoint keeps their segments), so
		// this is a belt-and-braces guard for an empty log.
		floor = first
	}
	return db, watermark, floor, nil
}

// StoreSnapshot captures a segment-shipping bootstrap image from a tiered
// primary: a checkpoint first drains the memtable so the committed segments
// plus manifest hold the complete fold prefix, then the files are refcount
// pinned for streaming — no monolithic database export on either side. The
// returned manifest bytes name exactly the returned paths; watermark and
// floor carry the same meaning as ReplicationSnapshot's. Callers must call
// release when streaming completes.
func (s *Service) StoreSnapshot() (manifest []byte, paths []string, watermark, floor uint64, release func(), err error) {
	e := s.enroll
	if e == nil {
		return nil, nil, 0, 0, nil, ErrEnrollmentDisabled
	}
	snap, ok := s.db.(store.SegmentSnapshotter)
	if !ok {
		return nil, nil, 0, 0, nil, fmt.Errorf("server: %q backend has no segments; bootstrap from /v1/repl/snapshot", s.cfg.Store.Backend)
	}
	if _, err := s.Checkpoint(); err != nil {
		return nil, nil, 0, 0, nil, err
	}
	manifest, paths, watermark, release, err = snap.SnapshotFiles()
	if err != nil {
		return nil, nil, 0, 0, nil, err
	}
	e.mu.Lock()
	floor = watermark
	for _, sess := range e.sessions {
		if !sess.promoted && sess.firstSeq < floor {
			floor = sess.firstSeq
		}
	}
	e.mu.Unlock()
	if first := e.log.FirstSeq(); floor < first {
		floor = first
	}
	return manifest, paths, watermark, floor, release, nil
}
