package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// fuzzService is shared across fuzz iterations: a small DB with a tight
// MaxLenBits so a fuzzed "len" cannot demand a giant allocation, window 0 so
// every request resolves immediately.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Service
)

func fuzzHandler(f *testing.F) http.Handler {
	fuzzOnce.Do(func() {
		s, err := New(fixtureDB(4), Config{Shards: 2, Workers: 1, CacheSize: 8, MaxLenBits: 1 << 16, MaxBodyBytes: 1 << 16})
		if err != nil {
			f.Fatal(err)
		}
		fuzzSrv = s
	})
	return fuzzSrv.Handler()
}

// FuzzIdentifyRequest drives the identify decoder with arbitrary bodies. The
// invariants: no panic anywhere in decode/validate/identify, and the status
// is one of 200 (valid query), 400 (rejected), or 413 (too large). Anything
// else means a guard is missing — most dangerously, a body that reaches the
// distance kernel with a mismatched or out-of-range bit position.
func FuzzIdentifyRequest(f *testing.F) {
	f.Add([]byte(`{"len":4096,"positions":[1,2,3]}`))
	f.Add([]byte(`{"len":4096,"positions":[]}`))
	f.Add([]byte(`{"len":0,"positions":[0]}`))
	f.Add([]byte(`{"len":-1,"positions":[]}`))
	f.Add([]byte(`{"len":65536,"positions":[65535]}`))
	f.Add([]byte(`{"len":65537,"positions":[]}`))
	f.Add([]byte(`{"len":4096,"positions":[4096]}`))
	f.Add([]byte(`{"len":4096,"positions":[4294967295]}`))
	f.Add([]byte(`{"len":4096,"positions":[3,3,3,3]}`))
	f.Add([]byte(`{"len":4096,"positions":[2,1]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`{"len":4096,"positions":[1],"extra":true}`))
	f.Add([]byte(`[{"len":4096}]`))

	h := fuzzHandler(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/identify", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge:
		default:
			t.Fatalf("body %q: unexpected status %d (%s)", body, rec.Code, rec.Body.String())
		}
	})
}

// FuzzIdentifyBatchRequest gives the batch decoder the same treatment; its
// extra surface is the per-query validation loop and the batch-size guard.
func FuzzIdentifyBatchRequest(f *testing.F) {
	f.Add([]byte(`{"queries":[{"len":4096,"positions":[1]}]}`))
	f.Add([]byte(`{"queries":[]}`))
	f.Add([]byte(`{"queries":[{"len":4096,"positions":[1]},{"len":64,"positions":[]}]}`))
	f.Add([]byte(`{"queries":null}`))
	f.Add([]byte(`{"queries":[null]}`))

	h := fuzzHandler(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/identify-batch", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusRequestEntityTooLarge:
		default:
			t.Fatalf("body %q: unexpected status %d (%s)", body, rec.Code, rec.Body.String())
		}
	})
}
