package server

// Durable streaming enrollment: the /v1/enroll path appends every
// observation to a write-ahead log before acknowledging it, folds the
// record through a per-session fingerprint.Accumulator, and promotes the
// fingerprint into the sharded database once it converges. The database
// state is, by construction, a deterministic function of the WAL record
// sequence — crash recovery replays the log over the last checkpoint
// snapshot and arrives at the same state, byte for byte.
//
// Ordering under concurrency: group commit acks appends out of order
// relative to their fold, so each enroll request waits its turn on a
// condition-variable chain keyed by appliedSeq — record seq folds only
// after seq-1 has. The WAL guarantees acked appends form a contiguous
// sequence prefix (write and fsync failures are sticky), so the chain
// cannot stall on a hole.
//
// Determinism under replay: every decision the fold makes — session
// creation, the session-cap rejection, name and length mismatches,
// post-promotion drops, convergence — depends only on the record
// sequence, never on wall clock or request interleaving. The HTTP layer
// pre-checks the friendly failures (409/429) before appending, but the
// fold re-decides them deterministically for records that raced in.
//
// Replay suppression: a session whose accumulator converges at a
// sequence below the checkpoint watermark was already promoted into the
// snapshot — replay marks it promoted without re-adding, which is the
// double-apply bug the snapshot-then-replay regression test pins.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
	"probablecause/internal/obs"
	"probablecause/internal/samplefile"
	"probablecause/internal/store"
	"probablecause/internal/wal"
)

// Enrollment metrics: observation volume, promotion outcomes, fold-chain
// wait time, and replay progress.
var (
	cEnrollObs        = obs.C("server.enroll.observations")
	cEnrollPromotions = obs.C("server.enroll.promotions")
	cEnrollSuppressed = obs.C("server.enroll.replay_suppressed")
	cEnrollIgnored    = obs.C("server.enroll.ignored_records")
	cEnrollConverged  = obs.C("server.enroll.converged")
	gEnrollSessions   = obs.G("server.enroll.sessions")
	gEnrollApplied    = obs.G("server.enroll.applied_seq")
	hEnrollFoldNanos  = obs.H("server.enroll.fold.nanos")
)

// Enrollment sentinel errors; the HTTP layer maps them onto statuses.
var (
	// ErrEnrollmentDisabled: the service was built without EnableEnrollment.
	ErrEnrollmentDisabled = errors.New("server: enrollment not enabled")
	// ErrSessionLimit: creating this session would exceed MaxSessions.
	ErrSessionLimit = errors.New("server: enrollment session limit reached")
	// ErrSessionName: the session is already enrolling under another name.
	ErrSessionName = errors.New("server: session already enrolling under a different name")
)

// DefaultMaxSessions bounds concurrent enrollment sessions when
// EnrollConfig.MaxSessions is zero.
const DefaultMaxSessions = 1024

// EnrollConfig parameterizes durable enrollment.
type EnrollConfig struct {
	// Dir is the durable directory: WAL segments, checkpoint snapshots,
	// and the CHECKPOINT marker all live here. Required.
	Dir string
	// WAL configures the write-ahead log (segment size, fsync policy,
	// fault plan).
	WAL wal.Options
	// Accumulator configures per-session characterization (quota,
	// convergence thresholds). The zero value is the paper-faithful
	// intersection fold.
	Accumulator fingerprint.AccumulatorConfig
	// MaxSessions bounds live enrollment sessions; 0 selects
	// DefaultMaxSessions.
	MaxSessions int
}

func (c EnrollConfig) withDefaults() EnrollConfig {
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	return c
}

// walObs is the WAL record payload: one observation of one enrollment
// session, in the same sparse error-string convention as the HTTP API.
type walObs struct {
	Op        string   `json:"op"`
	Session   string   `json:"session"`
	Name      string   `json:"name"`
	Len       int      `json:"len"`
	Positions []uint32 `json:"positions"`
}

const opObs = "obs"

// enrollSession is the in-memory fold state of one enrollment stream.
type enrollSession struct {
	name     string
	acc      *fingerprint.Accumulator
	firstSeq uint64 // earliest WAL record this session still depends on
	lastSeq  uint64 // latest record folded (or ignored) for this session
	promoted bool
	entryID  int // add-order id in the DB; -1 when recovered from a snapshot
}

func (sess *enrollSession) state(id string) EnrollState {
	return EnrollState{
		Session:      id,
		Name:         sess.name,
		Seq:          sess.lastSeq,
		Observations: sess.acc.Observations(),
		Weight:       sess.acc.Weight(),
		StableFor:    sess.acc.StableFor(),
		Converged:    sess.acc.Converged(),
		ConvergedAt:  sess.acc.ConvergedAt(),
		Promoted:     sess.promoted,
		EntryID:      sess.entryID,
	}
}

// EnrollState is the wire form of a session's progress, returned by both
// the enroll ack and the status endpoint.
type EnrollState struct {
	Session      string `json:"session"`
	Name         string `json:"name"`
	Seq          uint64 `json:"seq"`
	Observations int    `json:"observations"`
	Weight       int    `json:"weight"`
	StableFor    int    `json:"stable_for"`
	Converged    bool   `json:"converged"`
	ConvergedAt  int    `json:"converged_at"`
	Promoted     bool   `json:"promoted"`
	EntryID      int    `json:"entry_id"`
}

// enroller holds the durable-enrollment machinery attached to a Service.
type enroller struct {
	cfg EnrollConfig
	log *wal.Log

	mu         sync.Mutex // guards sessions and the fold chain
	applyCond  *sync.Cond // signals appliedSeq advances
	sessions   map[string]*enrollSession
	appliedSeq uint64 // highest WAL seq folded into the database
	watermark  uint64 // checkpoint watermark; promotions below it are replay-suppressed
}

// EnableEnrollment opens (or creates) the WAL in cfg.Dir and replays it
// over the service's current database. watermark is the checkpoint
// watermark the database was loaded at — the first WAL sequence NOT
// reflected in it (0 for a fresh or non-checkpoint seed; see
// BootDurable). Must be called before the service starts taking
// traffic; replay is not concurrent-safe with serving.
func (s *Service) EnableEnrollment(cfg EnrollConfig, watermark uint64) error {
	if s.enroll != nil {
		return errors.New("server: enrollment already enabled")
	}
	if cfg.Dir == "" {
		return errors.New("server: enrollment needs a durable directory")
	}
	cfg = cfg.withDefaults()
	log, err := wal.Open(cfg.Dir, cfg.WAL)
	if err != nil {
		return err
	}
	e := &enroller{
		cfg:       cfg,
		log:       log,
		sessions:  make(map[string]*enrollSession),
		watermark: watermark,
	}
	e.applyCond = sync.NewCond(&e.mu)
	_, span := obs.Start(context.Background(), "server.enroll.replay")
	err = log.Replay(0, func(seq uint64, payload []byte) error {
		var rec walObs
		if derr := json.Unmarshal(payload, &rec); derr != nil {
			// An acked record the fold cannot read breaks the determinism
			// contract; refusing to boot beats silently diverging.
			return fmt.Errorf("server: WAL record %d undecodable: %w", seq, derr)
		}
		e.applyLocked(s, seq, &rec)
		e.appliedSeq = seq
		return nil
	})
	span.End()
	if err != nil {
		log.Close()
		return err
	}
	e.appliedSeq = log.NextSeq() - 1
	if obs.On() {
		gEnrollApplied.Set(int64(e.appliedSeq))
		gEnrollSessions.Set(int64(len(e.sessions)))
	}
	s.enroll = e
	return nil
}

// BootDurable builds a durably-enrolled service: the committed checkpoint
// overrides seed and sets the replay watermark, then the WAL replays on top.
// The result is the deterministic fold of every acked enrollment, whatever
// mix of snapshots and crashes preceded it.
//
// On the memory backend the checkpoint is the monolithic samplefile snapshot
// in ecfg.Dir, as before. On the tiered backend the store's own manifest is
// the checkpoint — segments recover mmap'd and the manifest watermark wins.
// An EMPTY tiered store falls back to a monolithic checkpoint in ecfg.Dir
// when one exists (a follower bootstrapped by snapshot, or a migration from
// the memory backend): its entries are ingested and flushed to segments at
// the checkpoint's watermark before replay, so the fold timeline is
// preserved exactly.
func BootDurable(seed *fingerprint.DB, cfg Config, ecfg EnrollConfig) (*Service, error) {
	if cfg.Store.Backend == store.BackendTiered {
		s, err := New(nil, cfg)
		if err != nil {
			return nil, err
		}
		d := s.db.(store.DurableBackend)
		watermark := d.Watermark()
		if seed != nil && (watermark != 0 || s.db.Len() != 0) {
			s.Close()
			return nil, fmt.Errorf("server: tiered store %s already holds committed state; refusing to also seed", cfg.Store.Dir)
		}
		if watermark == 0 && s.db.Len() == 0 {
			db, meta, ok, err := samplefile.LoadCheckpoint(ecfg.Dir)
			if err != nil {
				s.Close()
				return nil, err
			}
			if ok {
				seed = db
				watermark = meta.Watermark
			}
			if seed != nil {
				for _, e := range seed.Entries() {
					s.Add(e.Name, e.FP)
				}
				if err := d.Checkpoint(watermark); err != nil {
					s.Close()
					return nil, err
				}
			}
		}
		if err := s.EnableEnrollment(ecfg, watermark); err != nil {
			s.Close()
			return nil, err
		}
		return s, nil
	}
	db, meta, ok, err := samplefile.LoadCheckpoint(ecfg.Dir)
	if err != nil {
		return nil, err
	}
	watermark := uint64(0)
	if ok {
		seed = db
		watermark = meta.Watermark
	}
	s, err := New(seed, cfg)
	if err != nil {
		return nil, err
	}
	if err := s.EnableEnrollment(ecfg, watermark); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// Enroll folds one observation into session's fingerprint, appending it
// to the WAL before acknowledging: when Enroll returns nil, the
// observation is durable and will survive any crash. The returned state
// reflects the session immediately after this observation's fold.
func (s *Service) Enroll(ctx context.Context, session, name string, es *bitset.Set) (EnrollState, error) {
	e := s.enroll
	if e == nil {
		return EnrollState{}, ErrEnrollmentDisabled
	}
	if !s.IsPrimary() {
		return EnrollState{}, ErrNotPrimary
	}
	if session == "" {
		return EnrollState{}, fmt.Errorf("server: enroll needs a session id")
	}
	if name == "" {
		return EnrollState{}, fmt.Errorf("server: enroll needs a device name")
	}
	if err := ctx.Err(); err != nil {
		return EnrollState{}, err
	}
	// Friendly pre-checks. The fold re-decides these deterministically —
	// two racing creators can both pass here, and the loser's record is
	// then ignored by the fold, exactly as it will be on replay.
	e.mu.Lock()
	if sess := e.sessions[session]; sess != nil {
		if sess.name != name {
			e.mu.Unlock()
			return EnrollState{}, fmt.Errorf("%w: session %q is %q", ErrSessionName, session, sess.name)
		}
		if sess.acc.Len() != es.Len() {
			e.mu.Unlock()
			return EnrollState{}, fmt.Errorf("server: session %q observations are %d bits, got %d", session, sess.acc.Len(), es.Len())
		}
	} else if len(e.sessions) >= e.cfg.MaxSessions {
		e.mu.Unlock()
		return EnrollState{}, fmt.Errorf("%w (%d)", ErrSessionLimit, e.cfg.MaxSessions)
	}
	e.mu.Unlock()

	rec := walObs{Op: opObs, Session: session, Name: name, Len: es.Len(), Positions: es.Positions()}
	payload, err := json.Marshal(rec)
	if err != nil {
		return EnrollState{}, fmt.Errorf("server: encoding enrollment record: %w", err)
	}
	seq, err := e.log.AppendCtx(ctx, payload)
	if err != nil {
		return EnrollState{}, fmt.Errorf("server: enrollment log: %w", err)
	}

	// The record is durable; fold it in sequence order. The fold is not
	// cancelable — skipping it would stall every later record's wait. The
	// request span splits the fold into its two costs: fold.wait (the
	// cond-chain turn for seq-1) and fold.apply (this record's own fold).
	rspan := obs.SpanFrom(ctx)
	wspan := rspan.Child("fold.wait")
	e.mu.Lock()
	for e.appliedSeq+1 != seq {
		e.applyCond.Wait()
	}
	wspan.End()
	aspan := rspan.Child("fold.apply")
	aspan.SetAttr("seq", seq)
	st := e.applyLocked(s, seq, &rec)
	e.appliedSeq = seq
	if obs.On() {
		gEnrollApplied.Set(int64(seq))
	}
	e.applyCond.Broadcast()
	e.mu.Unlock()
	aspan.End()
	// Cluster commit gate: hold the ack until the record is replicated to
	// the configured number of followers. The record is already durable
	// and folded locally, so a gate failure is retry-safe at-least-once —
	// the retried append is a new record that folds to the same state.
	if err := s.gateCommit(ctx, seq); err != nil {
		return st, fmt.Errorf("server: enrollment replication: %w", err)
	}
	// Tiered backend: once the memtable crosses the flush threshold, one
	// background checkpoint drains it to a segment and compacts the WAL.
	s.maybeAutoFlush()
	return st, nil
}

// applyLocked folds one WAL record into the session map and, through
// promotion, the database. Caller holds e.mu (or is the single-threaded
// boot replay). Everything here must be a pure function of the record
// sequence: no clocks, no randomness, no request-local state.
func (e *enroller) applyLocked(s *Service, seq uint64, rec *walObs) EnrollState {
	if obs.On() {
		defer hEnrollFoldNanos.Time()()
	}
	sess := e.sessions[rec.Session]
	if sess == nil {
		if rec.Op != opObs || rec.Session == "" || len(e.sessions) >= e.cfg.MaxSessions {
			if obs.On() {
				cEnrollIgnored.Inc()
			}
			return EnrollState{Session: rec.Session, Name: rec.Name, Seq: seq, EntryID: -1}
		}
		acc, err := fingerprint.NewAccumulator(rec.Len, e.cfg.Accumulator)
		if err != nil {
			if obs.On() {
				cEnrollIgnored.Inc()
			}
			return EnrollState{Session: rec.Session, Name: rec.Name, Seq: seq, EntryID: -1}
		}
		sess = &enrollSession{name: rec.Name, acc: acc, firstSeq: seq, entryID: -1}
		e.sessions[rec.Session] = sess
		if obs.On() {
			gEnrollSessions.Set(int64(len(e.sessions)))
		}
	}
	sess.lastSeq = seq
	// Records that cannot fold are dropped deterministically: a replayed
	// log makes the identical decision at the identical sequence.
	if sess.promoted || rec.Name != sess.name || rec.Len != sess.acc.Len() {
		if obs.On() {
			cEnrollIgnored.Inc()
		}
		return sess.state(rec.Session)
	}
	if err := sess.acc.Add(bitset.FromPositions(rec.Len, rec.Positions)); err != nil {
		if obs.On() {
			cEnrollIgnored.Inc()
		}
		return sess.state(rec.Session)
	}
	if obs.On() {
		cEnrollObs.Inc()
	}
	if sess.acc.Converged() && !sess.promoted {
		sess.promoted = true
		if obs.On() {
			cEnrollConverged.Inc()
		}
		if seq < e.watermark {
			// The checkpoint this database booted from already holds this
			// promotion; re-adding would double-apply it.
			if obs.On() {
				cEnrollSuppressed.Inc()
			}
		} else {
			sess.entryID = s.Add(sess.name, sess.acc.Fingerprint())
			if obs.On() {
				cEnrollPromotions.Inc()
			}
		}
	}
	return sess.state(rec.Session)
}

// EnrollStatus reports a session's progress. ok is false when the
// session is unknown — never started, or promoted and compacted away
// before a restart.
func (s *Service) EnrollStatus(session string) (EnrollState, bool, error) {
	e := s.enroll
	if e == nil {
		return EnrollState{}, false, ErrEnrollmentDisabled
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	sess := e.sessions[session]
	if sess == nil {
		return EnrollState{}, false, nil
	}
	return sess.state(session), true, nil
}

// Checkpoint persists the database at its WAL watermark, then compacts WAL
// segments no live session depends on. On the memory backend this is the
// monolithic samplefile snapshot, written outside the fold lock. On the
// tiered backend it is the store's own Checkpoint — memtable flush to a new
// segment plus manifest commit — which runs UNDER the fold lock so the
// flushed state and the watermark agree exactly (the flush cost is one
// memtable, not the whole database, so the stall is bounded by the flush
// threshold). Identify traffic continues either way.
func (s *Service) Checkpoint() (samplefile.CheckpointMeta, error) {
	e := s.enroll
	if e == nil {
		return samplefile.CheckpointMeta{}, ErrEnrollmentDisabled
	}
	_, span := obs.Start(context.Background(), "server.enroll.checkpoint")
	defer span.End()
	e.mu.Lock()
	watermark := e.appliedSeq + 1
	// Compaction floor: records below the watermark are reflected in the
	// snapshot, but an unconverged session still needs its history to
	// rebuild its accumulator on replay.
	keep := watermark
	for _, sess := range e.sessions {
		if !sess.promoted && sess.firstSeq < keep {
			keep = sess.firstSeq
		}
	}
	if d, ok := s.db.(store.DurableBackend); ok {
		err := d.Checkpoint(watermark)
		entries := s.db.Len()
		e.mu.Unlock()
		if err != nil {
			return samplefile.CheckpointMeta{}, err
		}
		if _, err := e.log.TruncateBelow(keep); err != nil {
			return samplefile.CheckpointMeta{}, err
		}
		return samplefile.CheckpointMeta{Watermark: watermark, Entries: entries}, nil
	}
	db := s.db.Export()
	e.mu.Unlock()
	if err := samplefile.SaveCheckpoint(e.cfg.Dir, db, watermark); err != nil {
		return samplefile.CheckpointMeta{}, err
	}
	if _, err := e.log.TruncateBelow(keep); err != nil {
		return samplefile.CheckpointMeta{}, err
	}
	return samplefile.CheckpointMeta{
		DBFile:    fmt.Sprintf("checkpoint-%020d.pcdb", watermark),
		Watermark: watermark,
		Entries:   db.Len(),
	}, nil
}

// maybeAutoFlush schedules a background Checkpoint when the tiered
// memtable has crossed its flush threshold. The TryStartFlush CAS admits
// exactly one scheduler; the flush itself serializes with enrollment on
// e.mu inside Checkpoint.
func (s *Service) maybeAutoFlush() {
	d, ok := s.db.(store.DurableBackend)
	if !ok || s.enroll == nil || !d.NeedsFlush() || !d.TryStartFlush() {
		return
	}
	go func() {
		defer d.EndFlush()
		if _, err := s.Checkpoint(); err != nil {
			obs.Errorf("store auto-flush", "err", err)
		}
	}()
}

// EnrollStats summarizes enrollment for /v1/db consumers and tests.
type EnrollStats struct {
	Enabled    bool   `json:"enabled"`
	Sessions   int    `json:"sessions"`
	AppliedSeq uint64 `json:"applied_seq"`
	SyncedSeq  uint64 `json:"synced_seq"`
	Segments   int    `json:"segments"`
}

// EnrollStats snapshots the enrollment side of the service.
func (s *Service) EnrollStats() EnrollStats {
	e := s.enroll
	if e == nil {
		return EnrollStats{}
	}
	e.mu.Lock()
	sessions := len(e.sessions)
	applied := e.appliedSeq
	e.mu.Unlock()
	return EnrollStats{
		Enabled:    true,
		Sessions:   sessions,
		AppliedSeq: applied,
		SyncedSeq:  e.log.SyncedSeq(),
		Segments:   e.log.Segments(),
	}
}
