package server

// Partition-scoping tests: a partition-configured service refuses
// mutations for names it does not own with 421 Misdirected Request, and
// renumbers entry ids into the cluster-global namespace at the HTTP
// boundary while keeping local ids internally.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"probablecause/internal/fingerprint"
)

// partitionService boots a durable primary scoped to a fake partition
// "p1" of 2 that owns only names carrying an "owned-" prefix.
func partitionService(t *testing.T) *Service {
	t.Helper()
	s, err := BootDurable(nil, Config{
		Partition: PartitionConfig{
			Name: "p1",
			NS:   fingerprint.IDNamespace{Base: 1, Stride: 2},
			Owns: func(name string) bool { return strings.HasPrefix(name, "owned-") },
		},
	}, EnrollConfig{Dir: t.TempDir(), Accumulator: fastAcc})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPartitionRefusesForeignNames(t *testing.T) {
	s := partitionService(t)
	h := s.Handler()
	es := deviceObs(512, 1, 0)

	checks := []struct {
		what, method, path string
		body               any
	}{
		{"enroll", "POST", "/v1/enroll", map[string]any{
			"session": "s1", "name": "foreign-dev", "len": es.Len(), "positions": es.Positions(),
		}},
		{"db add", "POST", "/v1/db", map[string]any{
			"name": "foreign-dev", "len": es.Len(), "positions": es.Positions(),
		}},
		{"db remove", "DELETE", "/v1/db?name=foreign-dev", nil},
		{"characterize", "POST", "/v1/characterize", map[string]any{
			"name": "foreign-dev", "len": es.Len(),
			"outputs": [][]uint32{es.Positions(), es.Positions()},
		}},
	}
	for _, c := range checks {
		code, body := postJSON(t, h, c.method, c.path, c.body)
		if code != http.StatusMisdirectedRequest {
			t.Errorf("%s with foreign name: status %d body %s, want 421", c.what, code, body)
		}
		var e errorJSON
		if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "p1") {
			t.Errorf("%s 421 body should name the partition: %s", c.what, body)
		}
	}

	// Anonymous characterize (no name) is a read and must stay open.
	code, body := postJSON(t, h, "POST", "/v1/characterize", map[string]any{
		"len": es.Len(), "outputs": [][]uint32{es.Positions(), es.Positions()},
	})
	if code != http.StatusOK {
		t.Fatalf("anonymous characterize: %d %s", code, body)
	}
}

func TestPartitionRenumbersIDs(t *testing.T) {
	s := partitionService(t)
	h := s.Handler()
	ns := fingerprint.IDNamespace{Base: 1, Stride: 2}

	// Enroll two owned devices to promotion; the acked EntryID must be in
	// the global namespace (odd ids for partition 1 of 2).
	for i := 0; i < 2; i++ {
		var last EnrollState
		for trial := 0; trial < 4; trial++ {
			es := deviceObs(512, i, trial)
			code, body := postJSON(t, h, "POST", "/v1/enroll", map[string]any{
				"session": fmt.Sprintf("sess-%d", i), "name": fmt.Sprintf("owned-%d", i),
				"len": es.Len(), "positions": es.Positions(),
			})
			if code != http.StatusOK {
				t.Fatalf("enroll owned-%d trial %d: %d %s", i, trial, code, body)
			}
			if err := json.Unmarshal(body, &last); err != nil {
				t.Fatal(err)
			}
		}
		if !last.Promoted {
			t.Fatalf("owned-%d not promoted: %+v", i, last)
		}
		if want := ns.Global(i); last.EntryID != want {
			t.Fatalf("owned-%d acked EntryID %d, want global %d", i, last.EntryID, want)
		}

		// The status endpoint renumbers the same way.
		code, body := postJSON(t, h, "GET", fmt.Sprintf("/v1/enroll/sess-%d/status", i), nil)
		if code != http.StatusOK {
			t.Fatalf("enroll status: %d %s", code, body)
		}
		var st EnrollState
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.EntryID != ns.Global(i) {
			t.Fatalf("status EntryID %d, want %d", st.EntryID, ns.Global(i))
		}
	}

	// Identify returns the renumbered id but the untouched name/distance.
	es := deviceObs(512, 1, 9)
	code, body := postJSON(t, h, "POST", "/v1/identify", map[string]any{
		"len": es.Len(), "positions": es.Positions(),
	})
	if code != http.StatusOK {
		t.Fatalf("identify: %d %s", code, body)
	}
	var v VerdictJSON
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	local := s.DB().Decide(es)
	if !v.Match || v.Name != "owned-1" || v.ID != ns.Global(local.Index) || v.Distance != local.Distance {
		t.Fatalf("identify verdict %+v (local %+v)", v, local)
	}

	// A miss still carries the nearest entry, renumbered like a hit — the
	// id stays inside this partition's (odd) namespace.
	miss := deviceObs(512, 40, 0)
	_, body = postJSON(t, h, "POST", "/v1/identify", map[string]any{
		"len": miss.Len(), "positions": miss.Positions(),
	})
	var mv VerdictJSON
	if err := json.Unmarshal(body, &mv); err != nil {
		t.Fatal(err)
	}
	if mv.Match {
		t.Fatalf("miss verdict %+v, want no match", mv)
	}
	if _, ok := ns.Local(mv.ID); !ok {
		t.Fatalf("miss verdict id %d outside partition namespace", mv.ID)
	}

	// Stats reports the partition name for the topology handshake.
	if st := s.Stats(); st.Partition != "p1" {
		t.Fatalf("Stats().Partition = %q, want p1", st.Partition)
	}
}
