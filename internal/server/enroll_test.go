package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
)

// fastAcc keeps enrollment streams short in tests: converge after 2
// unchanged observations with at least 3 total.
var fastAcc = fingerprint.AccumulatorConfig{MinObservations: 3, StablePatience: 2}

// enrollService builds a Service with durable enrollment in dir.
func enrollService(t *testing.T, dir string) *Service {
	t.Helper()
	s, err := BootDurable(nil, Config{}, EnrollConfig{Dir: dir, Accumulator: fastAcc})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// deviceObs is trial's observation for synthetic device i: a stable core
// plus one per-trial noise cell, so the intersection converges onto the
// core after the second observation.
func deviceObs(n, i, trial int) *bitset.Set {
	es := bitset.New(n)
	for j := 0; j < 6; j++ {
		es.Set(10*i + j)
	}
	es.Set(100 + (i*31+trial*7)%(n-100-1))
	return es
}

func mustEnroll(t *testing.T, s *Service, session, name string, es *bitset.Set) EnrollState {
	t.Helper()
	st, err := s.Enroll(context.Background(), session, name, es)
	if err != nil {
		t.Fatalf("enroll %s: %v", session, err)
	}
	return st
}

func dbBytes(t *testing.T, db *fingerprint.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEnrollPromoteIdentify(t *testing.T) {
	const n = 256
	s := enrollService(t, t.TempDir())
	defer s.Close()
	var st EnrollState
	for trial := 0; trial < 8 && !st.Promoted; trial++ {
		st = mustEnroll(t, s, "sess-0", "device-0", deviceObs(n, 0, trial))
	}
	if !st.Converged || !st.Promoted {
		t.Fatalf("no promotion after 8 observations: %+v", st)
	}
	if st.EntryID < 0 {
		t.Fatalf("promoted without an entry id: %+v", st)
	}
	// The converged fingerprint identifies a later output of the device.
	v, _, err := s.Identify(context.Background(), deviceObs(n, 0, 99))
	if err != nil || !v.OK() || v.Name != "device-0" {
		t.Fatalf("identify after promotion: v=%+v err=%v", v, err)
	}
	// Post-promotion observations are dropped deterministically.
	before := s.DB().Len()
	st2 := mustEnroll(t, s, "sess-0", "device-0", deviceObs(n, 0, 100))
	if !st2.Promoted || s.DB().Len() != before {
		t.Fatalf("post-promotion observation changed the database: %+v", st2)
	}
	got, ok, err := s.EnrollStatus("sess-0")
	if err != nil || !ok || !got.Promoted || got.Name != "device-0" {
		t.Fatalf("status: %+v ok=%v err=%v", got, ok, err)
	}
	if _, ok, _ := s.EnrollStatus("nope"); ok {
		t.Fatal("unknown session reported ok")
	}
}

// ackedObs is one acknowledged enrollment: the test-side record of what
// the service promised to make durable.
type ackedObs struct {
	seq       uint64
	session   string
	name      string
	n         int
	positions []uint32
}

// serialFold is an independent reimplementation of the enrollment fold:
// the sequence-ordered acked records applied one at a time through a
// fresh accumulator per session, promoting on convergence. Recovery and
// the live service must both equal this, byte for byte.
func serialFold(t *testing.T, acked []ackedObs, acfg fingerprint.AccumulatorConfig, maxSessions int) *fingerprint.DB {
	t.Helper()
	sort.Slice(acked, func(i, j int) bool { return acked[i].seq < acked[j].seq })
	db := fingerprint.NewDB(fingerprint.DefaultThreshold)
	type foldSession struct {
		name     string
		acc      *fingerprint.Accumulator
		promoted bool
	}
	sessions := map[string]*foldSession{}
	for _, r := range acked {
		fs := sessions[r.session]
		if fs == nil {
			if len(sessions) >= maxSessions {
				continue
			}
			acc, err := fingerprint.NewAccumulator(r.n, acfg)
			if err != nil {
				continue
			}
			fs = &foldSession{name: r.name, acc: acc}
			sessions[r.session] = fs
		}
		if fs.promoted || r.name != fs.name || r.n != fs.acc.Len() {
			continue
		}
		if err := fs.acc.Add(bitset.FromPositions(r.n, r.positions)); err != nil {
			continue
		}
		if fs.acc.Converged() {
			fs.promoted = true
			db.Add(fs.name, fs.acc.Fingerprint())
		}
	}
	return db
}

// TestEnrollConcurrentEqualsSerialFold is the core durability property:
// whatever interleaving concurrent enrollment takes, the live database,
// the crash-recovered database, and the serial fold of the acked records
// are all byte-identical.
func TestEnrollConcurrentEqualsSerialFold(t *testing.T) {
	const (
		n        = 256
		devices  = 6
		perTrial = 12
	)
	dir := t.TempDir()
	s := enrollService(t, dir)
	var (
		mu    sync.Mutex
		acked []ackedObs
		wg    sync.WaitGroup
	)
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			session := fmt.Sprintf("sess-%d", i)
			name := fmt.Sprintf("device-%d", i)
			for trial := 0; trial < perTrial; trial++ {
				es := deviceObs(n, i, trial)
				st, err := s.Enroll(context.Background(), session, name, es)
				if err != nil {
					t.Errorf("enroll %s trial %d: %v", session, trial, err)
					return
				}
				mu.Lock()
				acked = append(acked, ackedObs{seq: st.Seq, session: session, name: name, n: n, positions: es.Positions()})
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	live := dbBytes(t, s.DB().Export())
	s.Close() // crash: no checkpoint taken, recovery is pure WAL replay

	want := dbBytes(t, serialFold(t, acked, fastAcc, DefaultMaxSessions))
	if !bytes.Equal(live, want) {
		t.Fatal("live database diverged from the serial fold of acked enrollments")
	}
	r := enrollService(t, dir)
	defer r.Close()
	if got := dbBytes(t, r.DB().Export()); !bytes.Equal(got, want) {
		t.Fatal("recovered database diverged from the serial fold of acked enrollments")
	}
	if r.DB().Len() != devices {
		t.Fatalf("recovered %d entries, want %d", r.DB().Len(), devices)
	}
}

// TestSnapshotThenReplayIdempotence pins the double-apply bug: an
// enrollment promoted before the checkpoint watermark must not be
// re-added when the surviving WAL records replay over the snapshot.
func TestSnapshotThenReplayIdempotence(t *testing.T) {
	const n = 256
	dir := t.TempDir()
	s := enrollService(t, dir)

	// Promote dev-a, checkpoint, then leave dev-b mid-flight.
	var st EnrollState
	for trial := 0; trial < 8 && !st.Promoted; trial++ {
		st = mustEnroll(t, s, "sess-a", "dev-a", deviceObs(n, 0, trial))
	}
	if !st.Promoted {
		t.Fatalf("dev-a not promoted: %+v", st)
	}
	meta, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if meta.Entries != 1 || meta.Watermark != st.Seq+1 {
		t.Fatalf("checkpoint meta %+v (last acked seq %d)", meta, st.Seq)
	}
	bst := mustEnroll(t, s, "sess-b", "dev-b", deviceObs(n, 1, 0))
	bst = mustEnroll(t, s, "sess-b", "dev-b", deviceObs(n, 1, 1))
	s.Close() // crash after the checkpoint, with dev-b unconverged

	r := enrollService(t, dir)
	count := func(svc *Service, name string) int {
		c := 0
		for _, e := range svc.DB().Export().Entries() {
			if e.Name == name {
				c++
			}
		}
		return c
	}
	// dev-a's records replay (the single active segment survives
	// compaction), its accumulator re-converges below the watermark, and
	// the promotion must be suppressed — exactly one entry.
	if got := count(r, "dev-a"); got != 1 {
		t.Fatalf("dev-a enrolled %d times after snapshot-then-replay, want exactly 1", got)
	}
	ast, ok, err := r.EnrollStatus("sess-a")
	if err != nil || !ok || !ast.Promoted {
		t.Fatalf("dev-a session after recovery: %+v ok=%v err=%v", ast, ok, err)
	}
	rb, ok, err := r.EnrollStatus("sess-b")
	if err != nil || !ok {
		t.Fatalf("dev-b session lost: ok=%v err=%v", ok, err)
	}
	if rb.Observations != bst.Observations || rb.Promoted {
		t.Fatalf("dev-b session after recovery: %+v, want %d observations unpromoted", rb, bst.Observations)
	}
	// Finish dev-b: it converges above the watermark and promotes once.
	for trial := 2; trial < 10 && !rb.Promoted; trial++ {
		rb = mustEnroll(t, r, "sess-b", "dev-b", deviceObs(n, 1, trial))
	}
	if !rb.Promoted || count(r, "dev-b") != 1 || r.DB().Len() != 2 {
		t.Fatalf("dev-b after completion: %+v, %d entries", rb, r.DB().Len())
	}
	r.Close()

	// A second crash-recovery cycle stays idempotent.
	r2 := enrollService(t, dir)
	defer r2.Close()
	if count(r2, "dev-a") != 1 || count(r2, "dev-b") != 1 || r2.DB().Len() != 2 {
		t.Fatalf("second recovery diverged: %d entries", r2.DB().Len())
	}
}

func TestEnrollValidation(t *testing.T) {
	const n = 64
	plain, err := New(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := plain.Enroll(context.Background(), "s", "d", bitset.New(n)); err != ErrEnrollmentDisabled {
		t.Fatalf("enroll on plain service: %v", err)
	}
	if _, err := plain.Checkpoint(); err != ErrEnrollmentDisabled {
		t.Fatalf("checkpoint on plain service: %v", err)
	}

	s, err := BootDurable(nil, Config{}, EnrollConfig{Dir: t.TempDir(), Accumulator: fastAcc, MaxSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Enroll(context.Background(), "", "d", bitset.New(n)); err == nil {
		t.Fatal("empty session accepted")
	}
	if _, err := s.Enroll(context.Background(), "s", "", bitset.New(n)); err == nil {
		t.Fatal("empty name accepted")
	}
	mustEnroll(t, s, "s1", "dev-1", bitset.New(n))
	if _, err := s.Enroll(context.Background(), "s1", "dev-2", bitset.New(n)); !strings.Contains(fmt.Sprint(err), ErrSessionName.Error()) {
		t.Fatalf("name conflict: %v", err)
	}
	if _, err := s.Enroll(context.Background(), "s1", "dev-1", bitset.New(n/2)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := s.Enroll(context.Background(), "s2", "dev-2", bitset.New(n)); !strings.Contains(fmt.Sprint(err), ErrSessionLimit.Error()) {
		t.Fatalf("session limit: %v", err)
	}
	stats := s.EnrollStats()
	if !stats.Enabled || stats.Sessions != 1 || stats.AppliedSeq == 0 {
		t.Fatalf("enroll stats %+v", stats)
	}
}

func TestEnrollHTTP(t *testing.T) {
	const n = 256
	s := enrollService(t, t.TempDir())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path, body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	var st EnrollState
	for trial := 0; trial < 8 && !st.Promoted; trial++ {
		es := deviceObs(n, 0, trial)
		body, _ := json.Marshal(enrollRequestJSON{Session: "web-1", Name: "dev-web", Len: n, Positions: es.Positions()})
		code, blob := post("/v1/enroll", string(body))
		if code != http.StatusOK {
			t.Fatalf("enroll trial %d: %d %s", trial, code, blob)
		}
		if err := json.Unmarshal(blob, &st); err != nil {
			t.Fatal(err)
		}
	}
	if !st.Promoted {
		t.Fatalf("no promotion over HTTP: %+v", st)
	}

	resp, err := http.Get(ts.URL + "/v1/enroll/web-1/status")
	if err != nil {
		t.Fatal(err)
	}
	var got EnrollState
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !got.Promoted || got.Name != "dev-web" {
		t.Fatalf("status over HTTP: %d %+v", resp.StatusCode, got)
	}
	if resp, err := http.Get(ts.URL + "/v1/enroll/missing/status"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing session: %v %d", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	if code, blob := post("/v1/enroll", `{"session":"web-1","name":"other","len":256,"positions":[]}`); code != http.StatusConflict {
		t.Fatalf("name conflict over HTTP: %d %s", code, blob)
	}
	code, blob := post("/v1/snapshot", "")
	if code != http.StatusOK {
		t.Fatalf("snapshot: %d %s", code, blob)
	}
	var meta struct {
		Watermark uint64 `json:"wal_watermark"`
		Entries   int    `json:"entries"`
	}
	if err := json.Unmarshal(blob, &meta); err != nil || meta.Entries != 1 || meta.Watermark == 0 {
		t.Fatalf("snapshot meta %s: %v", blob, err)
	}

	// Enrollment endpoints without the subsystem → 503.
	plain, err := New(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	tp := httptest.NewServer(plain.Handler())
	defer tp.Close()
	resp, err = http.Post(tp.URL+"/v1/enroll", "application/json", strings.NewReader(`{"session":"x","name":"y","len":8,"positions":[]}`))
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("enroll without subsystem: %v %d", err, resp.StatusCode)
	}
	resp.Body.Close()
}
