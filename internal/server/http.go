package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"probablecause/internal/bitset"
	"probablecause/internal/faults"
	"probablecause/internal/fingerprint"
	"probablecause/internal/obs"
)

// Serving metrics: request counts by outcome class. Per-endpoint RED
// triples (server.http.<endpoint>.{requests,errors,nanos}) register in
// route, one per mounted endpoint.
var (
	cRequests    = obs.C("server.http.requests")
	cShed        = obs.C("server.http.shed_429")
	cUnavailable = obs.C("server.http.unavailable_503")
	cBadRequest  = obs.C("server.http.bad_request_400")
	cInjected    = obs.C("server.http.faults_injected")
)

// maxBatchQueries caps queries per identify-batch request, independent of
// the queue bound — one request must not monopolize the whole queue.
const maxBatchQueries = 1024

// errStringJSON is the wire form of an error string: the bit-length of the
// underlying data and the ascending error positions — the same sparse
// convention as the samplefile format.
type errStringJSON struct {
	Len       int      `json:"len"`
	Positions []uint32 `json:"positions"`
}

// toSet validates and materializes the error string. Every guard here is
// load-bearing: Len bounds the allocation, and the position check keeps the
// distance kernel's equal-length precondition (an out-of-range position
// would panic bitset.Set).
func (s *Service) toSet(e errStringJSON) (*bitset.Set, error) {
	if err := s.checkLen(e.Len); err != nil {
		return nil, err
	}
	if len(e.Positions) > e.Len {
		return nil, fmt.Errorf("%d positions exceed the declared %d-bit length", len(e.Positions), e.Len)
	}
	for _, p := range e.Positions {
		if int64(p) >= int64(e.Len) {
			return nil, fmt.Errorf("position %d out of range for len %d", p, e.Len)
		}
	}
	return bitset.FromPositions(e.Len, e.Positions), nil
}

// VerdictJSON is the wire form of a fingerprint.Verdict. Exported so the
// cluster's scatter-gather router can decode per-partition verdicts and
// re-encode the merged verdict byte-identically to a single node's
// response (the field order here is the contract the golden tests pin).
type VerdictJSON struct {
	Match     bool    `json:"match"`
	Ambiguous bool    `json:"ambiguous"`
	Matches   int     `json:"matches"`
	Name      string  `json:"name"`
	ID        int     `json:"id"`
	Distance  float64 `json:"distance"`
	Cached    bool    `json:"cached"`
}

// WireVerdict converts a verdict to its wire form. Match and Ambiguous
// derive from Matches, so a verdict reassembled with Verdict() and
// re-wired round-trips exactly.
func WireVerdict(v fingerprint.Verdict, cached bool) VerdictJSON {
	return VerdictJSON{
		Match:     v.OK(),
		Ambiguous: v.Ambiguous(),
		Matches:   v.Matches,
		Name:      v.Name,
		ID:        v.Index,
		Distance:  v.Distance,
		Cached:    cached,
	}
}

// Verdict reassembles the fingerprint.Verdict a wire verdict encodes —
// the decode half of the scatter-gather merge (ID carries the global,
// namespace-mapped index; fingerprint.MergeVerdict orders on it).
func (j VerdictJSON) Verdict() fingerprint.Verdict {
	return fingerprint.Verdict{Name: j.Name, Index: j.ID, Distance: j.Distance, Matches: j.Matches}
}

// wireVerdict is WireVerdict through this service's partition namespace:
// entry ids leave the process already mapped into the global id space.
func (s *Service) wireVerdict(v fingerprint.Verdict, cached bool) VerdictJSON {
	return WireVerdict(s.cfg.Partition.NS.Renumber(v), cached)
}

type batchRequestJSON struct {
	Queries []errStringJSON `json:"queries"`
}

// BatchResponseJSON is the wire form of /v1/identify-batch responses,
// exported for the same scatter-gather reason as VerdictJSON.
type BatchResponseJSON struct {
	Results []VerdictJSON `json:"results"`
}

type characterizeRequestJSON struct {
	// Name, when non-empty, registers the characterized fingerprint.
	Name string `json:"name,omitempty"`
	Len  int    `json:"len"`
	// Outputs are the error strings of the captured approximate outputs;
	// the fingerprint is their intersection (Algorithm 1).
	Outputs [][]uint32 `json:"outputs"`
}

type characterizeResponseJSON struct {
	Bits      int      `json:"bits"`
	Positions []uint32 `json:"positions"`
	Added     bool     `json:"added"`
	Entries   int      `json:"entries"`
}

type addRequestJSON struct {
	Name      string   `json:"name"`
	Len       int      `json:"len"`
	Positions []uint32 `json:"positions"`
}

type mutateResponseJSON struct {
	Added   bool   `json:"added,omitempty"`
	Removed bool   `json:"removed,omitempty"`
	Name    string `json:"name"`
	Entries int    `json:"entries"`
}

type errorJSON struct {
	Error string `json:"error"`
}

// writeJSON emits a compact single-line JSON body — the stable encoding the
// golden tests byte-compare.
func writeJSON(w http.ResponseWriter, code int, v any) {
	blob, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(blob, '\n'))
}

func httpError(w http.ResponseWriter, code int, msg string) {
	switch {
	case code == http.StatusTooManyRequests:
		w.Header().Set("Retry-After", "1")
		if obs.On() {
			cShed.Inc()
		}
	case code == http.StatusServiceUnavailable:
		if obs.On() {
			cUnavailable.Inc()
		}
	case code >= 400 && code < 500:
		if obs.On() {
			cBadRequest.Inc()
		}
	}
	writeJSON(w, code, errorJSON{Error: msg})
}

// decode reads one JSON request body through the size cap and, when a fault
// plan is active, the transient-fault/latency injector. The error is
// pre-classified into an HTTP status.
func (s *Service) decode(w http.ResponseWriter, r *http.Request, into any) (int, error) {
	var rd io.Reader = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if s.inj != nil {
		rd = s.inj.Reader(rd)
	}
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		switch {
		case faults.IsTransient(err):
			if obs.On() {
				cInjected.Inc()
			}
			return http.StatusServiceUnavailable, fmt.Errorf("transient ingest fault, retry: %w", err)
		case errors.As(err, new(*http.MaxBytesError)):
			return http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", s.cfg.MaxBodyBytes)
		default:
			return http.StatusBadRequest, fmt.Errorf("decoding request: %w", err)
		}
	}
	return 0, nil
}

// submitStatus maps batcher admission errors to HTTP statuses.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// statusWriter captures the response status so the middleware can
// classify errors (RED, SLO) and log the outcome after the handler runs.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// route wraps an endpoint handler with the request-scoped observability
// stack: a trace rooted at the endpoint name (adopting an inbound
// X-PC-Trace and echoing the root span back in the response header), the
// endpoint's RED triple, the SLO engine feed, the structured access log,
// and slow-request retention. With instrumentation off the request runs
// bare — one atomic-bool branch of overhead.
func (s *Service) route(endpoint string, fn http.HandlerFunc) http.HandlerFunc {
	red := obs.NewRED(obs.Default, "server.http."+endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		if !obs.On() {
			fn(w, r)
			return
		}
		cRequests.Inc()
		ctx, root := obs.StartRequest(r.Context(), endpoint, r.Header.Get(obs.TraceHeader))
		if h := root.Header(); h != "" {
			w.Header().Set(obs.TraceHeader, h)
		}
		sw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		fn(sw, r.WithContext(ctx))
		dur := time.Since(t0).Nanoseconds()
		root.End()
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		isErr := code >= 500
		red.Observe(dur, isErr)
		s.slo.Observe(endpoint, dur, isErr)
		trace := ""
		if t := root.Trace(); t != nil {
			trace = t.ID()
			s.slow.Offer(t)
		}
		obs.Infof("http request",
			"endpoint", endpoint, "method", r.Method, "path", r.URL.Path,
			"status", code, "dur", time.Duration(dur), "trace", trace)
	}
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/identify           one error string → verdict
//	POST   /v1/identify-batch     many error strings → verdicts, one admission
//	POST   /v1/characterize       intersect error strings; optionally register
//	POST   /v1/enroll             durably fold one observation into a session
//	GET    /v1/enroll/{id}/status enrollment session progress
//	POST   /v1/snapshot           checkpoint the database + compact the WAL
//	GET    /v1/db                 serving stats
//	POST   /v1/db                 register a fingerprint
//	DELETE /v1/db?name=N          remove a fingerprint
//	GET    /healthz               liveness (degraded on critical SLO burn)
//	GET    /readyz                readiness (503 until replay/bootstrap done)
//	GET    /metrics               obs registry (Prometheus; ?format=json)
//	GET    /slo                   SLO burn-rate report (?format=prom)
//	GET    /debug/slowest         span trees of the K slowest requests
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/identify", s.route("identify", s.handleIdentify))
	mux.HandleFunc("POST /v1/identify-batch", s.route("identify_batch", s.handleIdentifyBatch))
	mux.HandleFunc("POST /v1/characterize", s.route("characterize", s.handleCharacterize))
	mux.HandleFunc("POST /v1/enroll", s.route("enroll", s.handleEnroll))
	mux.HandleFunc("GET /v1/enroll/{id}/status", s.route("enroll_status", s.handleEnrollStatus))
	mux.HandleFunc("POST /v1/snapshot", s.route("snapshot", s.handleSnapshot))
	mux.HandleFunc("GET /v1/db", s.route("db", s.handleDBStats))
	mux.HandleFunc("POST /v1/db", s.route("db_add", s.handleDBAdd))
	mux.HandleFunc("DELETE /v1/db", s.route("db_remove", s.handleDBRemove))
	mux.Handle("GET /metrics", obs.MetricsHandler())
	mux.HandleFunc("GET /slo", s.handleSLO)
	mux.HandleFunc("GET /debug/slowest", s.handleSlowest)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// healthJSON is the /healthz body. SLO is omitted when no objectives are
// configured, keeping the body byte-identical to pre-SLO deployments.
type healthJSON struct {
	Status string `json:"status"`
	SLO    string `json:"slo,omitempty"`
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := healthJSON{Status: "ok"}
	if s.slo != nil {
		h.SLO = s.slo.Status()
		if h.SLO == "critical" {
			h.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, h)
}

// readyJSON is the /readyz body. Unlike /healthz (liveness: "is the
// process up"), readiness answers "should a router send traffic here" —
// false while a node is replaying its WAL or bootstrapping from a
// snapshot, so orchestrators stop routing to warming nodes.
type readyJSON struct {
	Ready      bool   `json:"ready"`
	Role       string `json:"role"`
	AppliedSeq uint64 `json:"applied_seq"`
}

func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	role := "primary"
	if !s.IsPrimary() {
		role = "follower"
	}
	body := readyJSON{Ready: s.Ready(), Role: role, AppliedSeq: s.AppliedSeq()}
	code := http.StatusOK
	if !body.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func (s *Service) handleSLO(w http.ResponseWriter, r *http.Request) {
	rep := s.slo.Report()
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		rep.WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// slowestJSON is the /debug/slowest body.
type slowestJSON struct {
	Capacity int             `json:"capacity"`
	Slowest  []obs.SlowEntry `json:"slowest"`
}

func (s *Service) handleSlowest(w http.ResponseWriter, r *http.Request) {
	resp := slowestJSON{Slowest: s.slow.Snapshot()}
	if resp.Slowest == nil {
		resp.Slowest = []obs.SlowEntry{}
	}
	if s.slow != nil {
		resp.Capacity = s.cfg.SlowRequests
		if resp.Capacity <= 0 {
			resp.Capacity = obs.DefaultSlowRing
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleIdentify(w http.ResponseWriter, r *http.Request) {
	var req errStringJSON
	if code, err := s.decode(w, r, &req); err != nil {
		httpError(w, code, err.Error())
		return
	}
	es, err := s.toSet(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	v, cached, err := s.Identify(ctx, es)
	if err != nil {
		httpError(w, submitStatus(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, s.wireVerdict(v, cached))
}

func (s *Service) handleIdentifyBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequestJSON
	if code, err := s.decode(w, r, &req); err != nil {
		httpError(w, code, err.Error())
		return
	}
	if len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, "batch has no queries")
		return
	}
	if len(req.Queries) > maxBatchQueries {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds the %d-query limit", len(req.Queries), maxBatchQueries))
		return
	}
	ess := make([]*bitset.Set, len(req.Queries))
	for i, q := range req.Queries {
		es, err := s.toSet(q)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("query %d: %v", i, err))
			return
		}
		ess[i] = es
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	verdicts, cached, err := s.IdentifyBatch(ctx, ess)
	if err != nil {
		httpError(w, submitStatus(err), err.Error())
		return
	}
	resp := BatchResponseJSON{Results: make([]VerdictJSON, len(verdicts))}
	for i, v := range verdicts {
		resp.Results[i] = s.wireVerdict(v, cached[i])
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleCharacterize(w http.ResponseWriter, r *http.Request) {
	var req characterizeRequestJSON
	if code, err := s.decode(w, r, &req); err != nil {
		httpError(w, code, err.Error())
		return
	}
	if len(req.Outputs) == 0 {
		httpError(w, http.StatusBadRequest, "characterize needs at least one output")
		return
	}
	if req.Name != "" && !s.IsPrimary() {
		// Pure characterization is a read; registration is a mutation.
		httpError(w, http.StatusServiceUnavailable, ErrNotPrimary.Error())
		return
	}
	if req.Name != "" && !s.checkPartition(w, req.Name) {
		return
	}
	ess := make([]*bitset.Set, len(req.Outputs))
	for i, positions := range req.Outputs {
		es, err := s.toSet(errStringJSON{Len: req.Len, Positions: positions})
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("output %d: %v", i, err))
			return
		}
		ess[i] = es
	}
	fp, added, err := s.Characterize(req.Name, ess)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, characterizeResponseJSON{
		Bits:      fp.Count(),
		Positions: fp.Positions(),
		Added:     added,
		Entries:   s.db.Len(),
	})
}

type enrollRequestJSON struct {
	Session   string   `json:"session"`
	Name      string   `json:"name"`
	Len       int      `json:"len"`
	Positions []uint32 `json:"positions"`
}

// enrollStatus maps enrollment errors to HTTP statuses: 503 when the
// subsystem is off or its log failed, 429 on the session cap, 409 on a
// session/name conflict, 400 otherwise.
func enrollStatus(err error) int {
	switch {
	case errors.Is(err, ErrEnrollmentDisabled), errors.Is(err, ErrNotPrimary):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrSessionLimit):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrSessionName):
		return http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case strings.Contains(err.Error(), "enrollment log"),
		strings.Contains(err.Error(), "enrollment replication"):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func (s *Service) handleEnroll(w http.ResponseWriter, r *http.Request) {
	var req enrollRequestJSON
	if code, err := s.decode(w, r, &req); err != nil {
		httpError(w, code, err.Error())
		return
	}
	es, err := s.toSet(errStringJSON{Len: req.Len, Positions: req.Positions})
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if !s.checkPartition(w, req.Name) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	st, err := s.Enroll(ctx, req.Session, req.Name, es)
	if err != nil {
		httpError(w, enrollStatus(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, s.renumberEnroll(st))
}

func (s *Service) handleEnrollStatus(w http.ResponseWriter, r *http.Request) {
	st, ok, err := s.EnrollStatus(r.PathValue("id"))
	if err != nil {
		httpError(w, enrollStatus(err), err.Error())
		return
	}
	if !ok {
		httpError(w, http.StatusNotFound, "unknown enrollment session")
		return
	}
	writeJSON(w, http.StatusOK, s.renumberEnroll(st))
}

func (s *Service) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	meta, err := s.Checkpoint()
	if err != nil {
		httpError(w, enrollStatus(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, meta)
}

func (s *Service) handleDBStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleDBAdd(w http.ResponseWriter, r *http.Request) {
	var req addRequestJSON
	if code, err := s.decode(w, r, &req); err != nil {
		httpError(w, code, err.Error())
		return
	}
	if req.Name == "" {
		httpError(w, http.StatusBadRequest, "add needs a name")
		return
	}
	if !s.IsPrimary() {
		httpError(w, http.StatusServiceUnavailable, ErrNotPrimary.Error())
		return
	}
	if !s.checkPartition(w, req.Name) {
		return
	}
	fp, err := s.toSet(errStringJSON{Len: req.Len, Positions: req.Positions})
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.Add(req.Name, fp)
	writeJSON(w, http.StatusOK, mutateResponseJSON{Added: true, Name: req.Name, Entries: s.db.Len()})
}

func (s *Service) handleDBRemove(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		httpError(w, http.StatusBadRequest, "remove needs ?name=")
		return
	}
	if !s.IsPrimary() {
		httpError(w, http.StatusServiceUnavailable, ErrNotPrimary.Error())
		return
	}
	if !s.checkPartition(w, name) {
		return
	}
	removed := s.Remove(name)
	code := http.StatusOK
	if !removed {
		code = http.StatusNotFound
	}
	writeJSON(w, code, mutateResponseJSON{Removed: removed, Name: name, Entries: s.db.Len()})
}
