package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"probablecause/internal/fingerprint"
	"probablecause/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the golden serving fixtures")

// goldenConfig is the frozen serving configuration the golden transcript was
// recorded under. Batching window 0 and one worker make the serial replay
// fully deterministic; the cache stays on so cached-hit responses are part of
// the recorded contract.
func goldenConfig() Config {
	return Config{Shards: 4, Workers: 1, CacheSize: 64}
}

// goldenSeedDB builds the fixture database deterministically: eight devices
// plus a twin pair (identical fingerprints under two names) so the transcript
// records an ambiguous verdict.
func goldenSeedDB() *fingerprint.DB {
	db := fixtureDB(8)
	twin := testSet(0x7717, 64)
	db.Add("twinA", twin)
	db.Add("twinB", twin.Clone())
	return db
}

// goldenCase is one recorded request/response exchange.
type goldenCase struct {
	Name       string          `json:"name"`
	Method     string          `json:"method"`
	Path       string          `json:"path"`
	Body       json.RawMessage `json:"body,omitempty"`
	WantStatus int             `json:"want_status"`
	WantBody   json.RawMessage `json:"want_body"`
}

// goldenRequests is the request half of the transcript, in replay order
// (order matters: the cache warms across cases).
func goldenRequests(t *testing.T) []goldenCase {
	t.Helper()
	mustJSON := func(v any) json.RawMessage {
		blob, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	db := goldenSeedDB()
	dev5, _ := db.Get("dev005")
	twin, _ := db.Get("twinA")
	hit := reqFor(noisyQuery(dev5, 0x60, 120))
	return []goldenCase{
		{Name: "identify-hit", Method: "POST", Path: "/v1/identify", Body: mustJSON(hit), WantStatus: http.StatusOK},
		{Name: "identify-cached", Method: "POST", Path: "/v1/identify", Body: mustJSON(hit), WantStatus: http.StatusOK},
		{Name: "identify-miss", Method: "POST", Path: "/v1/identify", Body: mustJSON(reqFor(testSet(0xBEEF, 64))), WantStatus: http.StatusOK},
		{Name: "identify-ambiguous", Method: "POST", Path: "/v1/identify", Body: mustJSON(reqFor(noisyQuery(twin, 0x61, 90))), WantStatus: http.StatusOK},
		{Name: "identify-batch", Method: "POST", Path: "/v1/identify-batch", Body: mustJSON(batchRequestJSON{Queries: []errStringJSON{
			reqFor(noisyQuery(dev5, 0x62, 50)),
			hit, // cache hit inside a batch
			reqFor(testSet(0xDEAD, 64)),
		}}), WantStatus: http.StatusOK},
		{Name: "identify-bad-length", Method: "POST", Path: "/v1/identify", Body: mustJSON(errStringJSON{Len: 64, Positions: []uint32{1}}), WantStatus: http.StatusBadRequest},
		{Name: "db-stats", Method: "GET", Path: "/v1/db", WantStatus: http.StatusOK},
	}
}

const (
	goldenDBPath    = "testdata/golden.pcdb"
	goldenCasesPath = "testdata/golden_cases.json"
)

// compactJSON normalizes away the transcript file's indentation (the cases
// file is stored pretty-printed for reviewable diffs; the wire format is
// compact).
func compactJSON(t *testing.T, raw []byte) []byte {
	t.Helper()
	if len(raw) == 0 {
		return nil
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatalf("compacting %q: %v", raw, err)
	}
	return buf.Bytes()
}

// TestGoldenServe replays the recorded transcript against a service loaded
// from the on-disk fixture DB and byte-compares every response, holding the
// serving path bit-identical to the recorded contract (and, for identify
// responses, to the offline dense-scan Decide). Refresh with
//
//	go test ./internal/server -run Golden -update
func TestGoldenServe(t *testing.T) {
	if *update {
		writeGoldenFixtures(t)
	}
	runGoldenReplay(t)
}

// TestGoldenServeTraced replays the same transcript with request-scoped
// instrumentation and span filing fully on: tracing must be invisible on
// the wire — every response byte-identical to the recorded contract.
func TestGoldenServeTraced(t *testing.T) {
	obs.Enable()
	obs.EnableTracing()
	defer func() {
		obs.ResetTracing()
		obs.Disable()
	}()
	runGoldenReplay(t)
}

func runGoldenReplay(t *testing.T) {
	t.Helper()
	raw, err := os.ReadFile(goldenDBPath)
	if err != nil {
		t.Fatalf("reading fixture DB (run with -update to regenerate): %v", err)
	}
	seed, err := fingerprint.ReadDB(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(goldenCasesPath)
	if err != nil {
		t.Fatalf("reading golden cases (run with -update to regenerate): %v", err)
	}
	var cases []goldenCase
	if err := json.Unmarshal(blob, &cases); err != nil {
		t.Fatal(err)
	}

	s, err := New(seed, goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()

	for _, tc := range cases {
		code, body := postJSON(t, h, tc.Method, tc.Path, string(tc.Body))
		if code != tc.WantStatus {
			t.Fatalf("%s: status %d (%s), want %d", tc.Name, code, body, tc.WantStatus)
		}
		if !bytes.Equal(body, compactJSON(t, tc.WantBody)) {
			t.Errorf("%s: response drifted from the golden transcript\n got: %s\nwant: %s", tc.Name, body, tc.WantBody)
		}
		// Parity: every recorded identify verdict must equal the offline
		// dense scan over the same DB file.
		if tc.Path == "/v1/identify" && code == http.StatusOK {
			var req errStringJSON
			if err := json.Unmarshal(tc.Body, &req); err != nil {
				t.Fatal(err)
			}
			es, err := s.toSet(req)
			if err != nil {
				t.Fatal(err)
			}
			want := WireVerdict(seed.Decide(es), false)
			var got VerdictJSON
			if err := json.Unmarshal(body, &got); err != nil {
				t.Fatal(err)
			}
			got.Cached = false
			if got != want {
				t.Errorf("%s: served verdict %+v, offline %+v", tc.Name, got, want)
			}
		}
	}
}

// writeGoldenFixtures records the fixture DB and the transcript by replaying
// the request list against a freshly built service.
func writeGoldenFixtures(t *testing.T) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(goldenDBPath), 0o755); err != nil {
		t.Fatal(err)
	}
	seed := goldenSeedDB()
	var buf bytes.Buffer
	if _, err := seed.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenDBPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// Record against the round-tripped DB, exactly what replay loads (the
	// file format narrows the threshold to float32).
	seed, err := fingerprint.ReadDB(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(seed, goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()
	cases := goldenRequests(t)
	for i := range cases {
		code, body := postJSON(t, h, cases[i].Method, cases[i].Path, string(cases[i].Body))
		if code != cases[i].WantStatus {
			t.Fatalf("recording %s: status %d (%s), want %d", cases[i].Name, code, body, cases[i].WantStatus)
		}
		cases[i].WantBody = json.RawMessage(body)
	}
	blob, err := json.MarshalIndent(cases, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenCasesPath, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("recorded %d golden cases over a %d-entry fixture DB", len(cases), seed.Len())
}

// TestGoldenFixturesFresh guards against editing goldenSeedDB or
// goldenRequests without re-recording: the on-disk DB must equal the
// in-code builder byte for byte.
func TestGoldenFixturesFresh(t *testing.T) {
	raw, err := os.ReadFile(goldenDBPath)
	if err != nil {
		t.Fatalf("reading fixture DB (run with -update to regenerate): %v", err)
	}
	var buf bytes.Buffer
	if _, err := goldenSeedDB().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf.Bytes()) {
		t.Fatal("testdata/golden.pcdb is stale; run: go test ./internal/server -run Golden -update")
	}
	var cases []goldenCase
	blob, err := os.ReadFile(goldenCasesPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(blob, &cases); err != nil {
		t.Fatal(err)
	}
	want := goldenRequests(t)
	if len(cases) != len(want) {
		t.Fatalf("golden transcript has %d cases, code builds %d; re-record with -update", len(cases), len(want))
	}
	for i, tc := range cases {
		w := want[i]
		if tc.Name != w.Name || tc.Method != w.Method || tc.Path != w.Path ||
			!bytes.Equal(compactJSON(t, tc.Body), compactJSON(t, w.Body)) {
			t.Fatalf("case %d (%s) request drifted from code; re-record with -update", i, tc.Name)
		}
	}
}
