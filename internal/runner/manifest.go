package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// ManifestName is the checkpoint file the runner maintains in the output
// directory. It records, per experiment, whether the experiment completed
// and which artifacts it produced, so an interrupted suite can be resumed
// with only the incomplete experiments rerun.
const ManifestName = "manifest.json"

// manifestVersion gates the on-disk format; a version bump invalidates old
// checkpoints rather than misreading them.
const manifestVersion = 1

// Manifest is the suite checkpoint. The Meta block pins the configuration
// the checkpoint was taken under (scale, selection, fault plan …): resuming
// under a different configuration would silently mix artifacts from two
// different suites, so the runner refuses it.
type Manifest struct {
	Version     int                       `json:"version"`
	UpdatedAt   string                    `json:"updated_at"`
	Meta        map[string]string         `json:"meta,omitempty"`
	Experiments map[string]*ManifestEntry `json:"experiments"`
}

// ManifestEntry is one experiment's checkpoint state.
type ManifestEntry struct {
	// Status is "done" or "failed". Anything else (including a missing
	// entry) means the experiment has not completed and must (re)run.
	Status    string   `json:"status"`
	Attempts  int      `json:"attempts"`
	WallMS    int64    `json:"wall_ms"`
	Error     string   `json:"error,omitempty"`
	Artifacts []string `json:"artifacts,omitempty"`
}

func newManifest(meta map[string]string) *Manifest {
	return &Manifest{
		Version:     manifestVersion,
		Meta:        meta,
		Experiments: make(map[string]*ManifestEntry),
	}
}

// LoadManifest reads a checkpoint from dir. A missing file returns (nil,
// nil): no checkpoint is not an error, it just means nothing to resume.
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("runner: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("runner: manifest %s is corrupt: %w", filepath.Join(dir, ManifestName), err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("runner: manifest version %d (want %d); delete %s to start fresh",
			m.Version, manifestVersion, filepath.Join(dir, ManifestName))
	}
	if m.Experiments == nil {
		m.Experiments = make(map[string]*ManifestEntry)
	}
	return &m, nil
}

// save writes the checkpoint atomically (temp file + rename), so a crash
// mid-save leaves the previous checkpoint intact rather than a torn one.
func (m *Manifest) save(dir string) error {
	m.UpdatedAt = time.Now().UTC().Format(time.RFC3339)
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("runner: encoding manifest: %w", err)
	}
	return atomicWrite(filepath.Join(dir, ManifestName), append(data, '\n'))
}

// metaMatches reports whether the checkpoint was taken under the given
// configuration.
func (m *Manifest) metaMatches(meta map[string]string) bool {
	if len(m.Meta) != len(meta) {
		return false
	}
	for k, v := range meta {
		if m.Meta[k] != v {
			return false
		}
	}
	return true
}

// atomicWrite writes data to path via a temp file in the same directory
// plus rename, the crash-consistency idiom every checkpoint and artifact
// write in the runner goes through.
func atomicWrite(path string, data []byte) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
