// Package runner executes experiment suites resiliently. The pcexperiments
// binary used to be a straight-line script: one panic, one transient I/O
// hiccup, or one ^C destroyed an entire run with every completed
// experiment's work lost. The runner turns a suite into a supervised,
// checkpointed pipeline:
//
//   - each experiment runs under the suite context with an optional
//     per-experiment timeout;
//   - a panic inside an experiment is recovered and converted into that
//     experiment's error — the suite, and the process, keep going;
//   - failures classified transient (retry.Transient) are retried with
//     the shared internal/retry policy: exponential backoff plus
//     deterministic jitter;
//   - after every experiment the runner checkpoints a manifest into the
//     output directory, and with Resume set it skips experiments the
//     manifest already records as done — an interrupted suite reruns only
//     incomplete work and, because experiments are seeded, reproduces
//     byte-identical artifacts;
//   - one experiment failing permanently does not abort the suite: the
//     runner records the failure and moves on, reporting the aggregate at
//     the end (a suite is a batch job, not a transaction).
//
// Artifacts are written through the RunContext so the manifest can record
// them; artifact writes are atomic (temp + rename), so a kill mid-write
// never leaves a torn CSV next to a manifest claiming success.
package runner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"probablecause/internal/obs"
	"probablecause/internal/prng"
	"probablecause/internal/retry"
)

// Runner metrics: the retry/panic/timeout counters are the chaos suite's
// assertion surface ("faults fired and were absorbed, not ignored").
var (
	cRuns     = obs.C("runner.experiments")
	cDone     = obs.C("runner.completed")
	cFailed   = obs.C("runner.failed")
	cRetries  = obs.C("runner.retries")
	cPanics   = obs.C("runner.panics")
	cTimeouts = obs.C("runner.timeouts")
	cSkipped  = obs.C("runner.resume_skips")
)

// Spec is one experiment: a stable name (the manifest key) and a body. The
// body receives the experiment context — cancelled on suite shutdown or
// per-experiment timeout — and the RunContext through which it reports
// sections and writes artifacts. Bodies must be idempotent and
// deterministic for checkpoint/resume to reproduce identical artifacts;
// every experiment in this repository is seeded, so they are.
type Spec struct {
	Name string
	Run  func(ctx context.Context, rc *RunContext) error
}

// Config parameterizes a suite run.
type Config struct {
	// OutDir receives artifacts and the checkpoint manifest. Created if
	// missing.
	OutDir string
	// Timeout bounds each experiment attempt; 0 means unbounded. On
	// timeout the attempt's context is cancelled and the attempt fails
	// with context.DeadlineExceeded (not retried: rerunning a too-slow
	// experiment doubles the damage instead of fixing it).
	Timeout time.Duration
	// Retries is the number of additional attempts allowed when an attempt
	// fails with a transient error (retry.Transient).
	Retries int
	// BackoffBase is the first retry delay; each further retry doubles it,
	// capped at BackoffMax, per the shared internal/retry policy.
	// Defaults: 100ms base, 5s cap.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Resume loads the manifest from OutDir and skips experiments it
	// records as done. The manifest's Meta must match this run's Meta.
	Resume bool
	// Meta pins the suite configuration inside the checkpoint so a resume
	// under different flags is refused instead of mixing suites.
	Meta map[string]string
	// Out receives experiment section output; defaults to os.Stdout.
	Out io.Writer
	// Seed drives retry jitter; jitter is deterministic so chaos runs
	// reproduce exactly.
	Seed uint64
	// sleep is swapped out by tests.
	sleep func(ctx context.Context, d time.Duration) error
}

func (c Config) withDefaults() Config {
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.Out == nil {
		c.Out = os.Stdout
	}
	if c.sleep == nil {
		c.sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	return c
}

// Status is an experiment's outcome within one suite run.
type Status string

const (
	// StatusDone: the experiment completed and its artifacts are on disk.
	StatusDone Status = "done"
	// StatusFailed: the experiment failed permanently (after any retries).
	StatusFailed Status = "failed"
	// StatusSkipped: the checkpoint already records the experiment as done;
	// it was not rerun.
	StatusSkipped Status = "skipped"
)

// Result is one experiment's outcome.
type Result struct {
	Name      string
	Status    Status
	Attempts  int
	Wall      time.Duration
	Err       error
	Artifacts []string
}

// Summary aggregates a suite run.
type Summary struct {
	Results []Result
}

// Counts returns (done, failed, skipped).
func (s *Summary) Counts() (done, failed, skipped int) {
	for _, r := range s.Results {
		switch r.Status {
		case StatusDone:
			done++
		case StatusFailed:
			failed++
		case StatusSkipped:
			skipped++
		}
	}
	return
}

// Failed returns the results that failed permanently.
func (s *Summary) Failed() []Result {
	var out []Result
	for _, r := range s.Results {
		if r.Status == StatusFailed {
			out = append(out, r)
		}
	}
	return out
}

// String renders the one-screen suite report.
func (s *Summary) String() string {
	done, failed, skipped := s.Counts()
	var b strings.Builder
	fmt.Fprintf(&b, "suite: %d done, %d failed, %d skipped (resume)\n", done, failed, skipped)
	for _, r := range s.Results {
		switch r.Status {
		case StatusFailed:
			fmt.Fprintf(&b, "  FAIL %-16s attempts=%d wall=%v err=%v\n",
				r.Name, r.Attempts, r.Wall.Round(time.Millisecond), r.Err)
		case StatusDone:
			if r.Attempts > 1 {
				fmt.Fprintf(&b, "  ok   %-16s attempts=%d (recovered) wall=%v\n",
					r.Name, r.Attempts, r.Wall.Round(time.Millisecond))
			}
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// Run executes the suite. It returns a non-nil Summary covering every spec
// reached, and an error only when the suite as a whole could not proceed
// (bad configuration, unusable output directory, context cancelled).
// Individual experiment failures live in the Summary, not the error: the
// caller decides whether a partially-failed suite is fatal.
func Run(ctx context.Context, cfg Config, specs []Spec) (*Summary, error) {
	cfg = cfg.withDefaults()
	if err := validateSpecs(specs); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: output dir: %w", err)
	}

	manifest := newManifest(cfg.Meta)
	if cfg.Resume {
		prev, err := LoadManifest(cfg.OutDir)
		if err != nil {
			return nil, err
		}
		if prev != nil {
			if !prev.metaMatches(cfg.Meta) {
				return nil, fmt.Errorf("runner: manifest in %s was written under a different configuration (%v, now %v); run without -resume or use a fresh output dir",
					cfg.OutDir, renderMeta(prev.Meta), renderMeta(cfg.Meta))
			}
			manifest = prev
		}
	}

	summary := &Summary{}
	jitter := prng.New(prng.Hash(cfg.Seed, 0x5EEB))
	for _, spec := range specs {
		if err := ctx.Err(); err != nil {
			// Suite shutdown: checkpoint state is already on disk; report
			// what was reached and surface the cancellation.
			return summary, fmt.Errorf("runner: suite interrupted: %w", err)
		}
		if cfg.Resume {
			if e := manifest.Experiments[spec.Name]; e != nil && e.Status == string(StatusDone) {
				if obs.On() {
					cSkipped.Inc()
				}
				fmt.Fprintf(cfg.Out, "-- %s: done in checkpoint, skipping (artifacts: %s)\n",
					spec.Name, strings.Join(e.Artifacts, ", "))
				summary.Results = append(summary.Results, Result{
					Name: spec.Name, Status: StatusSkipped, Artifacts: e.Artifacts,
				})
				continue
			}
		}
		res := runExperiment(ctx, cfg, spec, jitter)
		summary.Results = append(summary.Results, res)
		entry := &ManifestEntry{
			Status:    string(res.Status),
			Attempts:  res.Attempts,
			WallMS:    res.Wall.Milliseconds(),
			Artifacts: res.Artifacts,
		}
		if res.Err != nil {
			entry.Error = res.Err.Error()
		}
		manifest.Experiments[spec.Name] = entry
		if err := manifest.save(cfg.OutDir); err != nil {
			return summary, fmt.Errorf("runner: checkpointing after %s: %w", spec.Name, err)
		}
	}
	return summary, nil
}

func validateSpecs(specs []Spec) error {
	if len(specs) == 0 {
		return errors.New("runner: empty suite")
	}
	seen := make(map[string]bool, len(specs))
	for _, s := range specs {
		if s.Name == "" || s.Run == nil {
			return fmt.Errorf("runner: spec %+v missing name or body", s)
		}
		if seen[s.Name] {
			return fmt.Errorf("runner: duplicate experiment name %q", s.Name)
		}
		seen[s.Name] = true
	}
	return nil
}

// runExperiment supervises one experiment: attempts, retries, timeout,
// panic recovery.
func runExperiment(ctx context.Context, cfg Config, spec Spec, jitter *prng.Source) Result {
	if obs.On() {
		cRuns.Inc()
	}
	start := time.Now()
	res := Result{Name: spec.Name}
	for attempt := 1; ; attempt++ {
		res.Attempts = attempt
		rc := newRunContext(cfg.OutDir, cfg.Out, spec.Name)
		err := runOnce(ctx, cfg.Timeout, spec, rc)
		rc.seal()
		if err == nil {
			res.Status = StatusDone
			res.Artifacts = rc.artifacts()
			res.Wall = time.Since(start)
			if obs.On() {
				cDone.Inc()
			}
			return res
		}
		if retry.Transient(err) && attempt <= cfg.Retries && ctx.Err() == nil {
			delay := cfg.retryPolicy().Delay(attempt, jitter)
			if obs.On() {
				cRetries.Inc()
			}
			obs.Warnf("experiment retrying", "name", spec.Name, "attempt", attempt, "delay", delay, "err", err)
			fmt.Fprintf(cfg.Out, "-- %s: transient failure (attempt %d/%d), retrying in %v: %v\n",
				spec.Name, attempt, cfg.Retries+1, delay.Round(time.Millisecond), err)
			if cfg.sleep(ctx, delay) != nil {
				// Suite shutdown during backoff: record the original error.
				res.Status, res.Err, res.Wall = StatusFailed, err, time.Since(start)
				if obs.On() {
					cFailed.Inc()
				}
				return res
			}
			continue
		}
		res.Status, res.Err, res.Wall = StatusFailed, err, time.Since(start)
		if obs.On() {
			cFailed.Inc()
		}
		return res
	}
}

// retryPolicy maps the suite configuration onto the shared retry policy:
// doubling backoff from BackoffBase to BackoffMax with up to 50%
// deterministic jitter — byte-identical delays to the runner's original
// inline backoff, now defined once in internal/retry.
func (c Config) retryPolicy() retry.Policy {
	return retry.Policy{
		MaxAttempts: c.Retries + 1,
		BaseDelay:   c.BackoffBase,
		MaxDelay:    c.BackoffMax,
	}
}

// runOnce executes one attempt in its own goroutine so a hung experiment
// cannot wedge the suite past its timeout, with panics recovered into
// errors. On timeout the attempt's context is cancelled and the goroutine
// is abandoned (its RunContext is sealed, so late writes are discarded);
// experiments that honour ctx exit promptly, and ones that do not can at
// worst leak one goroutine, not crash or stall the suite.
func runOnce(parent context.Context, timeout time.Duration, spec Spec, rc *RunContext) error {
	ctx, cancel := parent, func() {}
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(parent, timeout)
	}
	defer cancel()
	done := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if obs.On() {
					cPanics.Inc()
				}
				done <- fmt.Errorf("runner: experiment %s panicked: %v\n%s", spec.Name, r, debug.Stack())
			}
		}()
		done <- spec.Run(ctx, rc)
	}()
	select {
	case err := <-done:
		if err != nil && errors.Is(err, context.DeadlineExceeded) && obs.On() {
			cTimeouts.Inc()
		}
		return err
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			if obs.On() {
				cTimeouts.Inc()
			}
			return fmt.Errorf("runner: experiment %s exceeded its %v timeout: %w", spec.Name, timeout, ctx.Err())
		}
		return fmt.Errorf("runner: experiment %s cancelled: %w", spec.Name, ctx.Err())
	}
}

// RunContext is the surface an experiment body reports through. It is
// sealed when the attempt ends, so an abandoned (timed-out) attempt's late
// output and artifacts are dropped instead of interleaving with the next
// experiment.
type RunContext struct {
	outDir string
	name   string

	mu     sync.Mutex
	out    io.Writer
	sealed bool
	arts   []string
}

func newRunContext(outDir string, out io.Writer, name string) *RunContext {
	return &RunContext{outDir: outDir, out: out, name: name}
}

// Name returns the experiment's name.
func (rc *RunContext) Name() string { return rc.name }

// Section prints a delimited report section, matching the pcexperiments
// output format.
func (rc *RunContext) Section(s string) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.sealed {
		return
	}
	fmt.Fprintln(rc.out, strings.Repeat("=", 78))
	fmt.Fprintln(rc.out, s)
}

// Printf prints to the suite output stream.
func (rc *RunContext) Printf(format string, args ...any) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.sealed {
		return
	}
	fmt.Fprintf(rc.out, format, args...)
}

// WriteArtifact atomically writes an output file into the suite's output
// directory and records it in the checkpoint manifest.
func (rc *RunContext) WriteArtifact(name string, data []byte) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.sealed {
		return fmt.Errorf("runner: %s: attempt already ended; artifact %s dropped", rc.name, name)
	}
	path := filepath.Join(rc.outDir, name)
	if dir := filepath.Dir(path); dir != rc.outDir {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := atomicWrite(path, data); err != nil {
		return fmt.Errorf("runner: artifact %s: %w", name, err)
	}
	rc.arts = append(rc.arts, name)
	fmt.Fprintf(rc.out, "wrote %s (%d bytes)\n", path, len(data))
	return nil
}

// seal ends the attempt: subsequent writes are no-ops/errors.
func (rc *RunContext) seal() {
	rc.mu.Lock()
	rc.sealed = true
	rc.mu.Unlock()
}

// artifacts returns the recorded artifact names, sorted for stable
// manifests.
func (rc *RunContext) artifacts() []string {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := append([]string(nil), rc.arts...)
	sort.Strings(out)
	return out
}

func renderMeta(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+m[k])
	}
	return strings.Join(parts, " ")
}
