package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"probablecause/internal/faults"
)

// fastConfig returns a config whose backoff never actually sleeps.
func fastConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		OutDir:      t.TempDir(),
		Retries:     2,
		BackoffBase: time.Millisecond,
		Out:         &bytes.Buffer{},
		sleep:       func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	}
}

func okSpec(name string, calls *int) Spec {
	return Spec{Name: name, Run: func(ctx context.Context, rc *RunContext) error {
		*calls++
		return rc.WriteArtifact(name+".csv", []byte(name+",1\n"))
	}}
}

func TestRunHappyPathWritesManifestAndArtifacts(t *testing.T) {
	cfg := fastConfig(t)
	var a, b int
	sum, err := Run(context.Background(), cfg, []Spec{okSpec("alpha", &a), okSpec("beta", &b)})
	if err != nil {
		t.Fatal(err)
	}
	done, failed, skipped := sum.Counts()
	if done != 2 || failed != 0 || skipped != 0 {
		t.Fatalf("counts = %d/%d/%d", done, failed, skipped)
	}
	if a != 1 || b != 1 {
		t.Fatalf("bodies ran %d/%d times", a, b)
	}
	m, err := LoadManifest(cfg.OutDir)
	if err != nil || m == nil {
		t.Fatalf("manifest: %v, %v", m, err)
	}
	e := m.Experiments["alpha"]
	if e == nil || e.Status != "done" || len(e.Artifacts) != 1 || e.Artifacts[0] != "alpha.csv" {
		t.Fatalf("manifest entry %+v", e)
	}
	if _, err := os.Stat(filepath.Join(cfg.OutDir, "alpha.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestRunRetriesTransientFailures(t *testing.T) {
	cfg := fastConfig(t)
	calls := 0
	spec := Spec{Name: "flaky", Run: func(ctx context.Context, rc *RunContext) error {
		calls++
		if calls < 3 {
			return faults.Transient(errors.New("blip"))
		}
		return nil
	}}
	sum, err := Run(context.Background(), cfg, []Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	r := sum.Results[0]
	if r.Status != StatusDone || r.Attempts != 3 || calls != 3 {
		t.Fatalf("result %+v, calls %d", r, calls)
	}
}

func TestRunDoesNotRetryPermanentFailuresOrPanics(t *testing.T) {
	cfg := fastConfig(t)
	permCalls, panicCalls, after := 0, 0, 0
	specs := []Spec{
		{Name: "perm", Run: func(ctx context.Context, rc *RunContext) error {
			permCalls++
			return errors.New("bad parameters")
		}},
		{Name: "boom", Run: func(ctx context.Context, rc *RunContext) error {
			panicCalls++
			panic("index out of range")
		}},
		okSpec("after", &after),
	}
	sum, err := Run(context.Background(), cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if permCalls != 1 || panicCalls != 1 {
		t.Fatalf("permanent failure retried: %d/%d calls", permCalls, panicCalls)
	}
	if sum.Results[0].Status != StatusFailed || sum.Results[1].Status != StatusFailed {
		t.Fatalf("statuses %+v", sum.Results)
	}
	if !strings.Contains(sum.Results[1].Err.Error(), "panicked") {
		t.Fatalf("panic not converted to error: %v", sum.Results[1].Err)
	}
	// The suite carried on past both failures.
	if after != 1 || sum.Results[2].Status != StatusDone {
		t.Fatal("suite did not continue past failures")
	}
	m, _ := LoadManifest(cfg.OutDir)
	if m.Experiments["boom"].Error == "" {
		t.Fatal("manifest lost the failure reason")
	}
}

func TestRunTimeoutFailsAttemptWithoutRetry(t *testing.T) {
	cfg := fastConfig(t)
	cfg.Timeout = 20 * time.Millisecond
	// Atomic: the runner abandons a timed-out attempt without joining its
	// goroutine, so this write can overlap the read after Run returns.
	var calls atomic.Int32
	specs := []Spec{
		{Name: "slow", Run: func(ctx context.Context, rc *RunContext) error {
			calls.Add(1)
			<-ctx.Done() // well-behaved: observes cancellation
			return ctx.Err()
		}},
	}
	sum, err := Run(context.Background(), cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	r := sum.Results[0]
	if r.Status != StatusFailed || calls.Load() != 1 {
		t.Fatalf("result %+v calls %d", r, calls.Load())
	}
	if !errors.Is(r.Err, context.DeadlineExceeded) {
		t.Fatalf("error %v is not a deadline", r.Err)
	}
}

func TestRunTimeoutAbandonsHungExperiment(t *testing.T) {
	cfg := fastConfig(t)
	cfg.Timeout = 20 * time.Millisecond
	release := make(chan struct{})
	var after int
	specs := []Spec{
		{Name: "hung", Run: func(ctx context.Context, rc *RunContext) error {
			<-release // ignores ctx entirely
			rc.Section("late output that must be dropped")
			return rc.WriteArtifact("late.csv", []byte("x"))
		}},
		okSpec("after", &after),
	}
	sum, err := Run(context.Background(), cfg, specs)
	close(release)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Results[0].Status != StatusFailed || after != 1 {
		t.Fatalf("hung experiment did not time out cleanly: %+v", sum.Results)
	}
	time.Sleep(10 * time.Millisecond) // let the abandoned goroutine run its late writes
	if _, err := os.Stat(filepath.Join(cfg.OutDir, "late.csv")); !os.IsNotExist(err) {
		t.Fatal("sealed RunContext allowed a late artifact write")
	}
}

func TestRunResumeSkipsCompletedAndRefusesMetaMismatch(t *testing.T) {
	cfg := fastConfig(t)
	cfg.Meta = map[string]string{"scale": "small"}
	var a, b int
	fail := true
	specs := []Spec{
		okSpec("alpha", &a),
		{Name: "beta", Run: func(ctx context.Context, rc *RunContext) error {
			b++
			if fail {
				return errors.New("first run fails")
			}
			return rc.WriteArtifact("beta.csv", []byte("beta\n"))
		}},
	}
	if _, err := Run(context.Background(), cfg, specs); err != nil {
		t.Fatal(err)
	}
	alphaBytes, err := os.ReadFile(filepath.Join(cfg.OutDir, "alpha.csv"))
	if err != nil {
		t.Fatal(err)
	}

	// Resume: alpha must be skipped (not rerun), beta rerun and now succeed.
	fail = false
	cfg.Resume = true
	sum, err := Run(context.Background(), cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if a != 1 || b != 2 {
		t.Fatalf("resume reran completed work: alpha %d, beta %d calls", a, b)
	}
	if sum.Results[0].Status != StatusSkipped || sum.Results[1].Status != StatusDone {
		t.Fatalf("resume statuses %+v", sum.Results)
	}
	got, _ := os.ReadFile(filepath.Join(cfg.OutDir, "alpha.csv"))
	if !bytes.Equal(got, alphaBytes) {
		t.Fatal("resume disturbed a completed artifact")
	}

	// A resume under different configuration must be refused.
	cfg.Meta = map[string]string{"scale": "paper"}
	if _, err := Run(context.Background(), cfg, specs); err == nil {
		t.Fatal("meta mismatch accepted")
	}
}

func TestRunSuiteCancellationCheckpointsProgress(t *testing.T) {
	cfg := fastConfig(t)
	ctx, cancel := context.WithCancel(context.Background())
	var a, c int
	specs := []Spec{
		okSpec("alpha", &a),
		{Name: "beta", Run: func(ctx context.Context, rc *RunContext) error {
			cancel() // the suite is killed while beta runs
			return ctx.Err()
		}},
		okSpec("gamma", &c),
	}
	sum, err := Run(ctx, cfg, specs)
	if err == nil {
		t.Fatal("cancelled suite must surface the interruption")
	}
	if a != 1 || c != 0 {
		t.Fatalf("ran alpha %d, gamma %d times", a, c)
	}
	if len(sum.Results) != 2 {
		t.Fatalf("summary has %d results", len(sum.Results))
	}
	// The checkpoint reflects completed work, so a resume reruns only
	// beta and gamma.
	m, err := LoadManifest(cfg.OutDir)
	if err != nil || m == nil {
		t.Fatalf("manifest after cancel: %v %v", m, err)
	}
	if m.Experiments["alpha"].Status != "done" {
		t.Fatal("completed experiment not checkpointed")
	}
	cfg.Resume = true
	sum2, err := Run(context.Background(), cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if a != 1 || c != 1 || sum2.Results[0].Status != StatusSkipped {
		t.Fatalf("resume after kill: alpha %d gamma %d results %+v", a, c, sum2.Results)
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	cfg := Config{}.withDefaults()
	var delays []time.Duration
	cfg.sleep = func(ctx context.Context, d time.Duration) error {
		delays = append(delays, d)
		return nil
	}
	cfg.OutDir = t.TempDir()
	cfg.Retries = 6
	cfg.BackoffBase = 10 * time.Millisecond
	cfg.BackoffMax = 80 * time.Millisecond
	cfg.Out = &bytes.Buffer{}
	spec := Spec{Name: "alwaysflaky", Run: func(ctx context.Context, rc *RunContext) error {
		return faults.Transient(errors.New("blip"))
	}}
	if _, err := Run(context.Background(), cfg, []Spec{spec}); err != nil {
		t.Fatal(err)
	}
	if len(delays) != 6 {
		t.Fatalf("%d retries, want 6", len(delays))
	}
	for i, d := range delays {
		base := time.Duration(10<<uint(i)) * time.Millisecond
		if base > 80*time.Millisecond {
			base = 80 * time.Millisecond
		}
		if d < base || d > base+base/2 {
			t.Fatalf("delay %d = %v outside [%v, %v]", i, d, base, base+base/2)
		}
	}
}

func TestValidateSpecs(t *testing.T) {
	none := func(ctx context.Context, rc *RunContext) error { return nil }
	cases := [][]Spec{
		nil,
		{{Name: "", Run: none}},
		{{Name: "x", Run: nil}},
		{{Name: "x", Run: none}, {Name: "x", Run: none}},
	}
	for i, specs := range cases {
		if _, err := Run(context.Background(), Config{OutDir: t.TempDir(), Out: &bytes.Buffer{}}, specs); err == nil {
			t.Errorf("case %d: invalid suite accepted", i)
		}
	}
}

func TestManifestCorruptAndVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(dir); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName),
		[]byte(fmt.Sprintf(`{"version":%d,"experiments":{}}`, manifestVersion+1)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(dir); err == nil {
		t.Fatal("future manifest version accepted")
	}
}
