// Chaos suite: drives every fault kind the substrate can inject through the
// full pipeline — generate → corrupt → ingest → stitch, all under the
// resilient runner — and asserts the hardening invariants: nothing panics,
// accuracy degrades boundedly, transient faults are retried away, and a
// killed run resumes to byte-identical artifacts. Every seed is fixed, so
// each run replays the exact same fault sequence.
package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"probablecause/internal/dram"
	"probablecause/internal/drammodel"
	"probablecause/internal/faults"
	"probablecause/internal/obs"
	"probablecause/internal/osmodel"
	"probablecause/internal/samplefile"
	"probablecause/internal/stitch"
	"probablecause/internal/workload"
)

// chaosMatrix is the documented fault matrix: one configured rate per fault
// kind. The data-corruption rates (bitflip, drop, dup, line) are high enough
// that a brittle pipeline dies on a 200-sample corpus; the transient rates
// (readerr, dram) are high enough that a run without retries cannot finish.
var chaosMatrix = faults.Plan{
	Seed:     0xC4A05,
	BitFlip:  0.03, // pages with flipped/invented fingerprint bits
	DropPage: 0.01, // pages silently missing from a sample
	DupPage:  0.01, // pages duplicated from their neighbor
	Line:     0.05, // JSON lines truncated or filled with garbage
	ReadErr:  0.20, // transient I/O faults per read call
	DRAM:     0.10, // transient silicon faults per chip access
}

// chaosCorpus publishes n deterministic victim outputs: 8-page samples from
// a 512-page memory at 1% approximation error.
func chaosCorpus(t *testing.T, n int) []stitch.Sample {
	t.Helper()
	mem, err := osmodel.NewMemory(512, 0xA11)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewSampleSource(drammodel.New(0x5EED), mem, 0.01, 8)
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]stitch.Sample, 0, n)
	for i := 0; i < n; i++ {
		s, _, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, s)
	}
	return samples
}

// TestChaosLenientIngestionRecoversWellFormedLines corrupts the encoded
// corpus at the matrix line rate and asserts lenient ingestion recovers
// exactly the well-formed remainder, with the skips visible through obs.
func TestChaosLenientIngestionRecoversWellFormedLines(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	skippedBefore := obs.C("samplefile.lines.skipped").Value()

	samples := chaosCorpus(t, 200)
	var buf bytes.Buffer
	if err := samplefile.Write(&buf, samples); err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(chaosMatrix)
	doc, mangled := inj.CorruptJSONLines(buf.Bytes())
	if mangled == 0 {
		t.Fatal("fault matrix mangled no lines; the chaos run is vacuous")
	}

	recovered, skipped, err := samplefile.ReadAllLenient(bytes.NewReader(doc))
	if err != nil {
		t.Fatalf("lenient ingestion failed outright: %v", err)
	}
	if skipped != mangled {
		t.Fatalf("skipped %d lines, injector mangled %d", skipped, mangled)
	}
	if len(recovered) != len(samples)-mangled {
		t.Fatalf("recovered %d samples, want %d", len(recovered), len(samples)-mangled)
	}
	if got := obs.C("samplefile.lines.skipped").Value() - skippedBefore; got != int64(mangled) {
		t.Fatalf("obs counted %d skips, want %d", got, mangled)
	}
}

// TestChaosBoundedStitchDegradation runs the stitching attack over a corpus
// corrupted at the matrix page rates and asserts the sanitizers keep the
// damage bounded: nearly every sample is still absorbed and the cluster
// count does not explode relative to the clean run.
func TestChaosBoundedStitchDegradation(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	flipsBefore := obs.C("faults.injected.bitflip").Value()

	samples := chaosCorpus(t, 150)
	clean, err := stitch.New(stitch.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if _, err := clean.Add(s); err != nil {
			t.Fatalf("clean corpus rejected: %v", err)
		}
	}

	inj := faults.NewInjector(chaosMatrix)
	hard, err := stitch.New(stitch.Config{MaxBitPos: dram.PageBits, OutlierFactor: 8})
	if err != nil {
		t.Fatal(err)
	}
	corruptPages, rejectedSamples := 0, 0
	for _, s := range samples {
		cs, n := inj.CorruptSample(s, dram.PageBits)
		corruptPages += n
		if _, err := hard.Add(cs); err != nil {
			if errors.Is(err, stitch.ErrSampleRejected) {
				rejectedSamples++
				continue
			}
			t.Fatalf("non-rejection error from hardened stitcher: %v", err)
		}
	}
	if corruptPages == 0 {
		t.Fatal("fault matrix corrupted no pages; the chaos run is vacuous")
	}
	if obs.C("faults.injected.bitflip").Value() == flipsBefore {
		t.Fatal("bitflip injections not counted through obs")
	}

	// Bounded degradation: ≥90% of samples absorbed, and fragmentation from
	// lost overlaps stays within 2× the clean cluster count (plus slack for
	// the handful of fully-rejected samples).
	absorbed := len(samples) - rejectedSamples
	if absorbed < len(samples)*9/10 {
		t.Fatalf("only %d/%d corrupted samples absorbed", absorbed, len(samples))
	}
	if hard.Count() > 2*clean.Count()+5 {
		t.Fatalf("degradation unbounded: %d clusters vs %d clean", hard.Count(), clean.Count())
	}
	t.Logf("clean=%d clusters; faulted=%d clusters, %d pages corrupted, %d pages rejected, %d samples rejected",
		clean.Count(), hard.Count(), corruptPages, hard.RejectedPages(), rejectedSamples)
}

// TestChaosRunnerAbsorbsTransientFaults runs a suite whose experiments hit
// transient I/O and DRAM faults at the matrix rates and asserts the runner's
// retry loop absorbs every one of them.
func TestChaosRunnerAbsorbsTransientFaults(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	retriesBefore := obs.C("runner.retries").Value()

	samples := chaosCorpus(t, 40)
	var doc bytes.Buffer
	if err := samplefile.Write(&doc, samples); err != nil {
		t.Fatal(err)
	}

	// Each injector lives outside its spec body, so retries advance the
	// fault sequence instead of replaying the same failure forever.
	ioInj := faults.NewInjector(faults.Plan{Seed: chaosMatrix.Seed, ReadErr: chaosMatrix.ReadErr})
	dramInj := faults.NewInjector(faults.Plan{Seed: chaosMatrix.Seed ^ 1, DRAM: chaosMatrix.DRAM})
	chip, err := dram.NewChip(dram.KM41464A(0xFA057))
	if err != nil {
		t.Fatal(err)
	}
	chip.SetFaultHook(dramInj.ChipHook())

	specs := []Spec{
		{Name: "flaky-ingest", Run: func(ctx context.Context, rc *RunContext) error {
			got, err := samplefile.ReadAll(ioInj.Reader(bytes.NewReader(doc.Bytes())))
			if err != nil {
				return err
			}
			rc.Printf("read %d samples", len(got))
			return nil
		}},
		{Name: "flaky-chip", Run: func(ctx context.Context, rc *RunContext) error {
			for addr := 0; addr < 64; addr += 16 {
				if _, err := chip.Read(addr, 16); err != nil {
					return err
				}
			}
			return nil
		}},
	}
	cfg := fastConfig(t)
	cfg.Retries = 25
	sum, err := Run(context.Background(), cfg, specs)
	if err != nil {
		t.Fatalf("suite failed under transient faults: %v", err)
	}
	done, failed, _ := sum.Counts()
	if done != len(specs) || failed != 0 {
		t.Fatalf("done=%d failed=%d, want all %d done", done, failed, len(specs))
	}
	attempts := 0
	for _, r := range sum.Results {
		attempts += r.Attempts
	}
	if attempts <= len(specs) {
		t.Fatal("no retries happened; the transient rates did not bite")
	}
	if obs.C("runner.retries").Value() == retriesBefore {
		t.Fatal("retries not counted through obs")
	}
}

// chaosSpecs builds the resumable workload: each experiment stitches its own
// slice of the corpus and writes the cluster report as an artifact. The
// artifact bytes are a pure function of the (fixed-seed) corpus, so any two
// completions of the same experiment must agree byte-for-byte.
func chaosSpecs(t *testing.T, samples []stitch.Sample, names []string, after func(name string)) []Spec {
	t.Helper()
	per := len(samples) / len(names)
	specs := make([]Spec, len(names))
	for i, name := range names {
		i, name := i, name
		specs[i] = Spec{Name: name, Run: func(ctx context.Context, rc *RunContext) error {
			st, err := stitch.New(stitch.Config{MaxBitPos: dram.PageBits, OutlierFactor: 8})
			if err != nil {
				return err
			}
			for _, s := range samples[i*per : (i+1)*per] {
				if _, err := st.Add(s); err != nil && !errors.Is(err, stitch.ErrSampleRejected) {
					return err
				}
			}
			report := fmt.Sprintf("experiment,%s\nclusters,%d\npages,%d\n", name, st.Count(), st.CoveredPages())
			if err := rc.WriteArtifact(name+".csv", []byte(report)); err != nil {
				return err
			}
			if after != nil {
				after(name)
			}
			return nil
		}}
	}
	return specs
}

// TestChaosKillResumeProducesIdenticalArtifacts kills a suite mid-run, then
// resumes it, asserting the resume executes only the incomplete experiments
// and that every artifact is byte-identical to an uninterrupted run.
func TestChaosKillResumeProducesIdenticalArtifacts(t *testing.T) {
	samples := chaosCorpus(t, 120)
	names := []string{"alpha", "bravo", "charlie", "delta"}

	// Reference: an uninterrupted run.
	refCfg := fastConfig(t)
	if _, err := Run(context.Background(), refCfg, chaosSpecs(t, samples, names, nil)); err != nil {
		t.Fatal(err)
	}

	// Chaos run: the plug is pulled while "charlie" is executing, so alpha
	// and bravo are checkpointed, charlie dies mid-flight, delta never runs.
	cfg := fastConfig(t)
	cfg.Resume = true
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killed := chaosSpecs(t, samples, names, nil)
	killed[2].Run = func(ctx context.Context, rc *RunContext) error {
		cancel()
		<-ctx.Done()
		return ctx.Err()
	}
	sum, err := Run(ctx, cfg, killed)
	if err == nil {
		t.Fatal("killed run reported success")
	}
	if done, _, _ := sum.Counts(); done != 2 {
		t.Fatalf("killed run completed %d experiments, want 2", done)
	}

	// Resume: only charlie and delta may execute.
	var executed []string
	sum, err = Run(context.Background(), cfg, chaosSpecs(t, samples, names, func(name string) {
		executed = append(executed, name)
	}))
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if got := strings.Join(executed, ","); got != "charlie,delta" {
		t.Fatalf("resume executed %q, want only the incomplete experiments", got)
	}
	done, failed, skipped := sum.Counts()
	if done != 2 || failed != 0 || skipped != 2 {
		t.Fatalf("resume counts done=%d failed=%d skipped=%d", done, failed, skipped)
	}

	// Every artifact must match the uninterrupted reference byte-for-byte.
	for _, name := range names {
		want := readArtifact(t, refCfg.OutDir, name+".csv")
		got := readArtifact(t, cfg.OutDir, name+".csv")
		if !bytes.Equal(want, got) {
			t.Fatalf("%s.csv diverged after kill+resume:\nref: %q\ngot: %q", name, want, got)
		}
	}
}

// readArtifact loads one artifact from a run's output directory.
func readArtifact(t *testing.T, dir, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestChaosPanicsStayContained injects a panicking experiment between
// healthy ones and asserts the suite neither dies nor loses the rest.
func TestChaosPanicsStayContained(t *testing.T) {
	samples := chaosCorpus(t, 60)
	names := []string{"before", "after"}
	specs := chaosSpecs(t, samples, names, nil)
	bomb := Spec{Name: "bomb", Run: func(ctx context.Context, rc *RunContext) error {
		var s *stitch.Stitcher
		_ = s.Count() // nil-pointer dereference, as a corrupted input might cause
		return nil
	}}
	specs = append(specs[:1], append([]Spec{bomb}, specs[1:]...)...)

	cfg := fastConfig(t)
	sum, err := Run(context.Background(), cfg, specs)
	if err != nil {
		t.Fatalf("the panic escaped the suite: %v", err)
	}
	done, failed, _ := sum.Counts()
	if done != 2 || failed != 1 {
		t.Fatalf("done=%d failed=%d, want the healthy experiments to survive", done, failed)
	}
	for _, r := range sum.Failed() {
		if r.Name != "bomb" {
			t.Fatalf("healthy experiment %s failed: %v", r.Name, r.Err)
		}
		if !strings.Contains(r.Err.Error(), "panicked") {
			t.Fatalf("panic not surfaced as an error: %v", r.Err)
		}
	}
}
