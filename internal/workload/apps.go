package workload

import (
	"encoding/binary"
	"fmt"
	"math"

	"probablecause/internal/approx"
	"probablecause/internal/prng"
)

// The paper's introduction motivates approximate computing with "computer
// vision, machine learning, and sensor networks" — applications that
// tolerate error. ImageJob covers vision; KMeansJob and SensorJob cover the
// other two. All three store their results in approximate memory, and all
// three leak the same memory-level fingerprint: the attack is application
// independent.

// KMeansJob is a small machine-learning workload: k-means over 2-D points,
// with the resulting centroids and assignments stored in approximate memory.
type KMeansJob struct {
	Points [][2]float32
	K      int
	// Exact is the serialized exact result (centroids then assignments).
	Exact []byte
}

// NewKMeansJob generates a clustered synthetic dataset and solves it.
func NewKMeansJob(points, k int, seed uint64) (*KMeansJob, error) {
	if k <= 0 || points < k {
		return nil, fmt.Errorf("workload: %d points for k=%d", points, k)
	}
	rng := prng.New(prng.Hash(seed, 0x6B6D))
	j := &KMeansJob{K: k}
	// Points drawn around k true centers.
	centers := make([][2]float32, k)
	for i := range centers {
		centers[i] = [2]float32{float32(rng.Float64() * 100), float32(rng.Float64() * 100)}
	}
	for p := 0; p < points; p++ {
		c := centers[p%k]
		j.Points = append(j.Points, [2]float32{
			c[0] + float32(rng.Normal(0, 3)),
			c[1] + float32(rng.Normal(0, 3)),
		})
	}
	centroids, assign := kmeans(j.Points, k, 20)
	j.Exact = encodeKMeans(centroids, assign)
	return j, nil
}

// kmeans is a plain Lloyd's-iterations solver with deterministic
// first-k-points initialization.
func kmeans(points [][2]float32, k, iters int) ([][2]float32, []uint8) {
	centroids := make([][2]float32, k)
	copy(centroids, points[:k])
	assign := make([]uint8, len(points))
	for it := 0; it < iters; it++ {
		for p, pt := range points {
			best, bestD := 0, math.MaxFloat64
			for c, ct := range centroids {
				dx := float64(pt[0] - ct[0])
				dy := float64(pt[1] - ct[1])
				if d := dx*dx + dy*dy; d < bestD {
					best, bestD = c, d
				}
			}
			assign[p] = uint8(best)
		}
		var sum [][3]float64 = make([][3]float64, k)
		for p, pt := range points {
			a := assign[p]
			sum[a][0] += float64(pt[0])
			sum[a][1] += float64(pt[1])
			sum[a][2]++
		}
		for c := range centroids {
			if sum[c][2] > 0 {
				centroids[c] = [2]float32{
					float32(sum[c][0] / sum[c][2]),
					float32(sum[c][1] / sum[c][2]),
				}
			}
		}
	}
	return centroids, assign
}

func encodeKMeans(centroids [][2]float32, assign []uint8) []byte {
	out := make([]byte, 0, len(centroids)*8+len(assign))
	var b [4]byte
	for _, c := range centroids {
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(c[0]))
		out = append(out, b[:]...)
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(c[1]))
		out = append(out, b[:]...)
	}
	return append(out, assign...)
}

// RunApprox stores the exact k-means result in approximate memory and
// returns the approximate bytes the application would publish.
func (j *KMeansJob) RunApprox(mem *approx.Memory, addr int) ([]byte, error) {
	return mem.Roundtrip(addr, j.Exact)
}

// SensorJob is a sensor-network workload: a day of noisy temperature
// readings aggregated into per-window means, stored in approximate memory.
type SensorJob struct {
	Readings []float32
	// Exact is the serialized exact aggregate (float32 window means).
	Exact []byte
}

// NewSensorJob synthesizes a diurnal temperature trace and aggregates it
// into the given number of windows.
func NewSensorJob(readings, windows int, seed uint64) (*SensorJob, error) {
	if windows <= 0 || readings < windows {
		return nil, fmt.Errorf("workload: %d readings for %d windows", readings, windows)
	}
	rng := prng.New(prng.Hash(seed, 0x53E2))
	j := &SensorJob{}
	for i := 0; i < readings; i++ {
		phase := 2 * math.Pi * float64(i) / float64(readings)
		j.Readings = append(j.Readings,
			float32(20+8*math.Sin(phase)+rng.Normal(0, 0.5)))
	}
	per := readings / windows
	out := make([]byte, 0, windows*4)
	var b [4]byte
	for w := 0; w < windows; w++ {
		var sum float64
		for i := w * per; i < (w+1)*per; i++ {
			sum += float64(j.Readings[i])
		}
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(float32(sum/float64(per))))
		out = append(out, b[:]...)
	}
	j.Exact = out
	return j, nil
}

// RunApprox stores the exact aggregate in approximate memory and returns the
// approximate bytes.
func (j *SensorJob) RunApprox(mem *approx.Memory, addr int) ([]byte, error) {
	return mem.Roundtrip(addr, j.Exact)
}
