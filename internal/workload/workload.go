// Package workload generates the data and program runs that exercise the
// approximate memory: worst-case characterization patterns, random data, the
// edge-detection image job of the end-to-end experiment (§7.6, Figure 12),
// and the model-level sample stream that feeds the stitching attack
// (Figure 13).
package workload

import (
	"fmt"

	"probablecause/internal/approx"
	"probablecause/internal/bitset"
	"probablecause/internal/drammodel"
	"probablecause/internal/imaging"
	"probablecause/internal/osmodel"
	"probablecause/internal/prng"
	"probablecause/internal/stitch"
)

// Random returns n pseudo-random bytes derived from seed.
func Random(seed uint64, n int) []byte {
	buf := make([]byte, n)
	prng.New(prng.Hash(seed, 0xDA7A)).Fill(buf)
	return buf
}

// Constant returns n copies of b.
func Constant(b byte, n int) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

// ImageJob is one run of the victim's image-manipulation program: a source
// photo, the exact edge-detection result, and the machinery to pass the
// result through approximate memory.
type ImageJob struct {
	Input *imaging.Image
	Exact *imaging.Image // edge-detection output before approximation
}

// NewImageJob builds a job over a deterministic synthetic photo.
func NewImageJob(w, h int, seed uint64) *ImageJob {
	in := imaging.Synthetic(w, h, seed)
	return &ImageJob{Input: in, Exact: imaging.SobelEdges(in)}
}

// NewBinaryImageJob builds a job whose output is thresholded black/white, as
// in Figure 5.
func NewBinaryImageJob(w, h int, seed uint64, level uint8) *ImageJob {
	in := imaging.Synthetic(w, h, seed)
	return &ImageJob{Input: in, Exact: imaging.SobelEdges(in).Threshold(level)}
}

// RunApprox stores the exact output in the approximate memory at addr and
// returns the approximate output the victim would publish.
func (j *ImageJob) RunApprox(mem *approx.Memory, addr int) (*imaging.Image, error) {
	out, err := mem.Roundtrip(addr, j.Exact.Bytes())
	if err != nil {
		return nil, fmt.Errorf("workload: image roundtrip: %w", err)
	}
	return imaging.FromBytes(j.Exact.W, j.Exact.H, out)
}

// SampleSource produces the stream of published approximate outputs the
// eavesdropping attacker observes: each call models one victim program run
// whose output buffer the OS places somewhere in physical memory. The
// placement policy is pluggable: osmodel.Memory (uniform contiguous),
// osmodel.Scattered (the page-ASLR defense), or osmodel.System (buddy-
// allocator-backed).
type SampleSource struct {
	Model       *drammodel.Model
	Placer      osmodel.Placer
	ErrRate     float64
	SamplePages int

	trial uint64
}

// NewSampleSource builds a source over the given device model and placement
// policy.
func NewSampleSource(model *drammodel.Model, placer osmodel.Placer, errRate float64, samplePages int) (*SampleSource, error) {
	if samplePages <= 0 || samplePages > placer.Pages() {
		return nil, fmt.Errorf("workload: sample of %d pages in %d-page memory", samplePages, placer.Pages())
	}
	if errRate <= 0 || errRate > 1 {
		return nil, fmt.Errorf("workload: error rate %v outside (0,1]", errRate)
	}
	return &SampleSource{Model: model, Placer: placer, ErrRate: errRate, SamplePages: samplePages}, nil
}

// Next returns the next published output as a stitchable sample plus the
// (hidden-from-the-attacker) physical placement, for ground-truth checks.
func (s *SampleSource) Next() (stitch.Sample, osmodel.Placement, error) {
	s.trial++
	pl, err := s.Placer.Place(s.SamplePages)
	if err != nil {
		return stitch.Sample{}, osmodel.Placement{}, err
	}
	pages := make([]bitset.Sparse, len(pl.Phys))
	for i, phys := range pl.Phys {
		fp, err := s.Model.PageErrors(uint64(phys), s.ErrRate, s.trial)
		if err != nil {
			return stitch.Sample{}, osmodel.Placement{}, err
		}
		pages[i] = fp
	}
	return stitch.Sample{Pages: pages}, pl, nil
}

// Trials returns how many samples have been produced.
func (s *SampleSource) Trials() uint64 { return s.trial }
