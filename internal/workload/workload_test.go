package workload

import (
	"testing"

	"probablecause/internal/approx"
	"probablecause/internal/dram"
	"probablecause/internal/drammodel"
	"probablecause/internal/osmodel"
)

func TestRandomDeterministicAndFull(t *testing.T) {
	a := Random(1, 100)
	b := Random(1, 100)
	c := Random(2, 100)
	same := true
	diff := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("Random not deterministic")
	}
	if !diff {
		t.Fatal("different seeds identical")
	}
}

func TestConstant(t *testing.T) {
	c := Constant(0xAB, 5)
	if len(c) != 5 {
		t.Fatalf("len = %d", len(c))
	}
	for _, b := range c {
		if b != 0xAB {
			t.Fatalf("byte = %#x", b)
		}
	}
}

func TestImageJobExactIsDeterministic(t *testing.T) {
	a := NewImageJob(64, 48, 9)
	b := NewImageJob(64, 48, 9)
	if d, _ := a.Exact.DiffCount(b.Exact); d != 0 {
		t.Fatal("image job not deterministic")
	}
}

func TestBinaryImageJobIsBinary(t *testing.T) {
	j := NewBinaryImageJob(64, 48, 9, 64)
	for _, p := range j.Exact.Pix {
		if p != 0 && p != 255 {
			t.Fatalf("non-binary pixel %d", p)
		}
	}
}

func TestRunApproxImprintsErrors(t *testing.T) {
	cfg := dram.KM41464A(42)
	cfg.Geometry = dram.Geometry{Rows: 64, Cols: 256, BitsPerWord: 4, DefaultStripe: 2}
	chip, err := dram.NewChip(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := approx.New(chip, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	j := NewBinaryImageJob(80, 80, 3, 64)
	out, err := j.RunApprox(mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := out.DiffCount(j.Exact)
	if err != nil {
		t.Fatal(err)
	}
	if d == 0 {
		t.Fatal("approximate output identical to exact — no imprint")
	}
	if d > len(j.Exact.Pix)/2 {
		t.Fatalf("%d of %d pixels corrupted — far beyond 5%% error", d, len(j.Exact.Pix))
	}
}

func TestSampleSourceValidation(t *testing.T) {
	mem, _ := osmodel.NewMemory(100, 1)
	m := drammodel.New(1)
	if _, err := NewSampleSource(m, mem, 0.01, 0); err == nil {
		t.Error("0-page sample accepted")
	}
	if _, err := NewSampleSource(m, mem, 0.01, 101); err == nil {
		t.Error("oversized sample accepted")
	}
	if _, err := NewSampleSource(m, mem, 0, 10); err == nil {
		t.Error("0 error rate accepted")
	}
}

func TestSampleSourceProducesPlacedSamples(t *testing.T) {
	mem, _ := osmodel.NewMemory(100, 2)
	m := drammodel.New(2)
	src, err := NewSampleSource(m, mem, 0.01, 10)
	if err != nil {
		t.Fatal(err)
	}
	s, pl, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Pages) != 10 || len(pl.Phys) != 10 {
		t.Fatalf("sample %d pages, placement %d pages", len(s.Pages), len(pl.Phys))
	}
	if !pl.Contiguous {
		t.Fatal("default placement should be contiguous")
	}
	// Fingerprints correspond to the placed physical pages.
	want, err := m.PageErrors(uint64(pl.Phys[3]), 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Pages[3].Equal(want) {
		t.Fatal("sample fingerprint does not match placed physical page")
	}
	if src.Trials() != 1 {
		t.Fatalf("Trials = %d", src.Trials())
	}
}

func TestSampleSourceScattered(t *testing.T) {
	mem, _ := osmodel.NewMemory(1000, 3)
	m := drammodel.New(3)
	src, err := NewSampleSource(m, osmodel.Scattered{Memory: mem}, 0.01, 10)
	if err != nil {
		t.Fatal(err)
	}
	_, pl, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if pl.Contiguous {
		t.Fatal("scattered source produced contiguous placement")
	}
}

func TestSampleSourceBuddySystem(t *testing.T) {
	sys, err := osmodel.NewSystem(1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSampleSource(drammodel.New(4), sys, 0.01, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, pl, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Contiguous || len(s.Pages) != 8 {
		t.Fatalf("buddy placement %+v with %d pages", pl, len(s.Pages))
	}
}
