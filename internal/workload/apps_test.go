package workload

import (
	"math"
	"testing"

	"probablecause/internal/approx"
	"probablecause/internal/bitset"
	"probablecause/internal/dram"
)

func appsMem(t *testing.T, seed uint64) *approx.Memory {
	t.Helper()
	cfg := dram.KM41464A(seed)
	cfg.Geometry = dram.Geometry{Rows: 64, Cols: 256, BitsPerWord: 4, DefaultStripe: 2}
	chip, err := dram.NewChip(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := approx.New(chip, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	return mem
}

func TestKMeansJobValidation(t *testing.T) {
	if _, err := NewKMeansJob(2, 3, 1); err == nil {
		t.Error("fewer points than clusters accepted")
	}
	if _, err := NewKMeansJob(10, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestKMeansJobClustersSensibly(t *testing.T) {
	j, err := NewKMeansJob(300, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Points) != 300 {
		t.Fatalf("%d points", len(j.Points))
	}
	if len(j.Exact) != 3*8+300 {
		t.Fatalf("exact result %d bytes", len(j.Exact))
	}
	// Assignments must use every cluster (the data is built around k
	// separated centers).
	seen := map[uint8]bool{}
	for _, a := range j.Exact[24:] {
		seen[a] = true
	}
	if len(seen) != 3 {
		t.Fatalf("assignments used %d clusters", len(seen))
	}
}

func TestKMeansDeterministic(t *testing.T) {
	a, err := NewKMeansJob(100, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewKMeansJob(100, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Exact {
		if a.Exact[i] != b.Exact[i] {
			t.Fatal("k-means job not deterministic")
		}
	}
}

func TestSensorJobValidation(t *testing.T) {
	if _, err := NewSensorJob(5, 10, 1); err == nil {
		t.Error("fewer readings than windows accepted")
	}
	if _, err := NewSensorJob(10, 0, 1); err == nil {
		t.Error("0 windows accepted")
	}
}

func TestSensorJobAggregates(t *testing.T) {
	j, err := NewSensorJob(2400, 24, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Exact) != 24*4 {
		t.Fatalf("aggregate %d bytes", len(j.Exact))
	}
	// Window means must stay inside the diurnal range 20±8 plus noise.
	for w := 0; w < 24; w++ {
		bits := uint32(j.Exact[w*4]) | uint32(j.Exact[w*4+1])<<8 |
			uint32(j.Exact[w*4+2])<<16 | uint32(j.Exact[w*4+3])<<24
		v := math.Float32frombits(bits)
		if v < 10 || v > 30 {
			t.Fatalf("window %d mean %v out of range", w, v)
		}
	}
}

func TestAppsRunApproxImprintErrors(t *testing.T) {
	mem := appsMem(t, 11)
	km, err := NewKMeansJob(2000, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	out, err := km.RunApprox(mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bitset.FromBytes(out).XorCount(bitset.FromBytes(km.Exact)) == 0 {
		t.Fatal("k-means output carried no errors")
	}

	sj, err := NewSensorJob(40000, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	sOut, err := sj.RunApprox(mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bitset.FromBytes(sOut).XorCount(bitset.FromBytes(sj.Exact)) == 0 {
		t.Fatal("sensor output carried no errors")
	}
}
