package approx

import (
	"testing"

	"probablecause/internal/bitset"
)

func TestPartitionedValidation(t *testing.T) {
	chip := testChip(t, 40)
	if _, err := NewPartitioned(chip, 0.99, -1); err == nil {
		t.Error("negative exact zone accepted")
	}
	if _, err := NewPartitioned(chip, 0.99, chip.Geometry().Bytes()); err == nil {
		t.Error("whole-chip exact zone accepted")
	}
	if _, err := NewPartitioned(chip, 0, 0); err == nil {
		t.Error("bad accuracy accepted")
	}
}

func TestPartitionedExactZoneIsExact(t *testing.T) {
	chip := testChip(t, 41)
	const exactBytes = 2048
	p, err := NewPartitioned(chip, 0.95, exactBytes)
	if err != nil {
		t.Fatal(err)
	}
	if p.SafeInterval() <= 0 {
		t.Fatalf("safe interval = %v", p.SafeInterval())
	}

	// Sensitive data in the exact zone: must come back bit-perfect even
	// though a full approximate interval elapses.
	sensitive := chip.WorstCaseData()[:exactBytes]
	got, err := p.Roundtrip(0, sensitive)
	if err != nil {
		t.Fatal(err)
	}
	if n := bitset.FromBytes(got).XorCount(bitset.FromBytes(sensitive)); n != 0 {
		t.Fatalf("%d errors in the exact zone", n)
	}
}

func TestPartitionedApproxZoneStillErrs(t *testing.T) {
	chip := testChip(t, 42)
	const exactBytes = 2048
	p, err := NewPartitioned(chip, 0.95, exactBytes)
	if err != nil {
		t.Fatal(err)
	}
	approxZone := chip.Geometry().Bytes() - exactBytes
	data := chip.WorstCaseData()[exactBytes:]
	got, err := p.Roundtrip(exactBytes, data)
	if err != nil {
		t.Fatal(err)
	}
	errs := bitset.FromBytes(got).XorCount(bitset.FromBytes(data))
	rate := float64(errs) / float64(approxZone*8)
	if rate < 0.01 || rate > 0.15 {
		t.Fatalf("approximate-zone error rate = %v, want ~0.05", rate)
	}
	if p.ExactBytes() != exactBytes {
		t.Fatalf("ExactBytes = %d", p.ExactBytes())
	}
	if p.Memory().Accuracy() != 0.95 {
		t.Fatalf("Accuracy = %v", p.Memory().Accuracy())
	}
}

func TestRowAwareValidation(t *testing.T) {
	chip := testChip(t, 43)
	if _, err := NewRowAware(chip, 0); err == nil {
		t.Error("zero slack accepted")
	}
	ra, err := NewRowAware(chip, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ra.Roundtrip(0, []byte{1}, 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestRowAwareProfilesRows(t *testing.T) {
	chip := testChip(t, 44)
	ra, err := NewRowAware(chip, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rows := chip.Geometry().Rows
	distinct := map[float64]bool{}
	for r := 0; r < rows; r++ {
		iv := ra.RowInterval(r)
		if iv <= 0 {
			t.Fatalf("row %d interval %v", r, iv)
		}
		distinct[iv] = true
	}
	// Process variation makes row lifetimes differ (RAIDR's premise).
	if len(distinct) < rows/2 {
		t.Fatalf("only %d distinct row lifetimes across %d rows", len(distinct), rows)
	}
}

func TestRowAwareExactWhenSlackBelowOne(t *testing.T) {
	chip := testChip(t, 45)
	ra, err := NewRowAware(chip, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	data := chip.WorstCaseData()
	got, err := ra.Roundtrip(0, data, 20.0)
	if err != nil {
		t.Fatal(err)
	}
	if n := bitset.FromBytes(got).XorCount(bitset.FromBytes(data)); n != 0 {
		t.Fatalf("%d errors under conservative row-aware refresh", n)
	}
}

func TestRowAwareErrorsRemainChipSpecificUnderSlack(t *testing.T) {
	// With slack > 1 every row errs in its relatively weakest cells; the
	// resulting pattern is still repeatable and chip-specific — the privacy
	// point of the RAIDR ablation.
	run := func(seed uint64) (*bitset.Set, *bitset.Set) {
		chip := testChip(t, seed)
		ra, err := NewRowAware(chip, 1.6)
		if err != nil {
			t.Fatal(err)
		}
		data := chip.WorstCaseData()
		out := func() *bitset.Set {
			got, err := ra.Roundtrip(0, data, 25.0)
			if err != nil {
				t.Fatal(err)
			}
			return bitset.FromBytes(got).Xor(bitset.FromBytes(data))
		}
		return out(), out()
	}
	a1, a2 := run(46)
	b1, _ := run(47)
	if a1.Count() == 0 || b1.Count() == 0 {
		t.Fatal("premise broken: no errors under slack 1.6")
	}
	// Repeatable within a chip...
	selfOverlap := float64(a1.AndCount(a2)) / float64(minInt(a1.Count(), a2.Count()))
	if selfOverlap < 0.9 {
		t.Fatalf("same-chip RAIDR overlap = %v", selfOverlap)
	}
	// ...and distinct across chips.
	crossOverlap := float64(a1.AndCount(b1)) / float64(minInt(a1.Count(), b1.Count()))
	if crossOverlap > 0.3 {
		t.Fatalf("cross-chip RAIDR overlap = %v", crossOverlap)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
