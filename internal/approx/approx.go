// Package approx implements the approximate-memory controller that sits on
// top of the DRAM simulator — the role the MSP430 firmware plays on the
// paper's platform (§6).
//
// Approximate DRAM saves energy by refreshing less often than the worst-case
// JEDEC rate, accepting that the most volatile cells lose their value between
// refreshes. The controller here exposes the level of approximation as a
// target *accuracy*: an accuracy of 0.99 means the refresh interval is tuned
// so that 1 % of cells decay with worst-case data (the paper's convention,
// §5: "refreshed at a rate that yields 1% error with worst-case data").
//
// Like the paper's platform (§7.3), the controller re-calibrates its refresh
// interval whenever the temperature changes, maintaining the desired accuracy
// rather than a fixed interval — this is what makes the fingerprint robust to
// temperature: the *set* of failing cells is pinned to a quantile of the
// decay ordering, not to a wall-clock interval.
package approx

import (
	"fmt"

	"probablecause/internal/dram"
)

// Memory is an approximate memory: a DRAM chip plus a refresh policy
// calibrated to a target accuracy.
type Memory struct {
	chip     *dram.Chip
	accuracy float64
	interval float64 // calibrated refresh interval, seconds
}

// New wraps chip as an approximate memory with the given target accuracy
// (fraction of worst-case bits that survive a refresh interval, in (0.5, 1)).
// The controller calibrates immediately.
func New(chip *dram.Chip, accuracy float64) (*Memory, error) {
	m := &Memory{chip: chip}
	if err := m.SetAccuracy(accuracy); err != nil {
		return nil, err
	}
	return m, nil
}

// Chip returns the underlying device.
func (m *Memory) Chip() *dram.Chip { return m.chip }

// Accuracy returns the calibrated target accuracy.
func (m *Memory) Accuracy() float64 { return m.accuracy }

// RefreshInterval returns the calibrated refresh interval in seconds.
func (m *Memory) RefreshInterval() float64 { return m.interval }

// SetAccuracy changes the target accuracy and re-calibrates.
func (m *Memory) SetAccuracy(accuracy float64) error {
	if accuracy <= 0.5 || accuracy >= 1 {
		return fmt.Errorf("approx: accuracy %v outside (0.5, 1)", accuracy)
	}
	m.accuracy = accuracy
	return m.Calibrate()
}

// SetTemperature moves the chip to a new operating temperature and
// re-calibrates the refresh interval to keep the same accuracy, mirroring
// the adaptive refresh of the paper's platform.
func (m *Memory) SetTemperature(tempC float64) error {
	m.chip.SetTemperature(tempC)
	return m.Calibrate()
}

// Calibrate measures the chip's decay curve with a worst-case pattern and
// sets the refresh interval so that the expected worst-case error rate is
// 1 − accuracy. It leaves the chip filled with the worst-case pattern.
func (m *Memory) Calibrate() error {
	bits := m.chip.Geometry().Bits()
	target := int(float64(bits)*(1-m.accuracy) + 0.5)
	if target < 1 {
		target = 1
	}
	if err := m.chip.Write(0, m.chip.WorstCaseData()); err != nil {
		return fmt.Errorf("approx: calibration write: %w", err)
	}

	// Bracket: grow hi until at least target cells decay within hi.
	lo, hi := 0.0, 1.0
	for m.chip.DecayCountWithin(hi) < target {
		hi *= 2
		if hi > 1e9 {
			return fmt.Errorf("approx: decay target %d unreachable", target)
		}
	}
	// Bisect to the smallest interval reaching the target count.
	for i := 0; i < 60 && hi-lo > 1e-9*hi; i++ {
		mid := (lo + hi) / 2
		if m.chip.DecayCountWithin(mid) >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	m.interval = hi
	return nil
}

// Store writes exact data into the approximate memory at byte address addr.
func (m *Memory) Store(addr int, data []byte) error {
	return m.chip.Write(addr, data)
}

// ReadApprox reads n bytes at addr after letting one full refresh interval
// elapse — the approximate output the application observes.
func (m *Memory) ReadApprox(addr, n int) ([]byte, error) {
	m.chip.Elapse(m.interval)
	return m.chip.Read(addr, n)
}

// Roundtrip stores data at addr, waits one refresh interval, and returns the
// approximate result. This is the basic unit of every experiment: one
// approximate output of the system.
func (m *Memory) Roundtrip(addr int, data []byte) ([]byte, error) {
	if err := m.Store(addr, data); err != nil {
		return nil, err
	}
	return m.ReadApprox(addr, len(data))
}

// WorstCaseOutput produces one whole-chip approximate output of the
// worst-case pattern together with the exact pattern. Characterization in
// the supply-chain attack uses this (§5.1, path 1: the attacker controls the
// inputs).
func (m *Memory) WorstCaseOutput() (approx, exact []byte, err error) {
	exact = m.chip.WorstCaseData()
	approx, err = m.Roundtrip(0, exact)
	return approx, exact, err
}

// CalibrateVoltage switches the controller to voltage-scaling approximation
// (§2's other knob): the refresh interval is pinned to fixedInterval and the
// supply voltage is lowered until the worst-case error rate reaches
// 1 − accuracy. Because voltage scaling and refresh-rate scaling both expose
// the same per-cell decay ordering, fingerprints transfer between the two
// mechanisms — see the cross-mechanism experiment.
func (m *Memory) CalibrateVoltage(fixedInterval float64) error {
	if fixedInterval <= 0 {
		return fmt.Errorf("approx: non-positive refresh interval %v", fixedInterval)
	}
	cfg := m.chip.Config()
	if cfg.NominalVolts == 0 {
		return fmt.Errorf("approx: chip does not model supply voltage")
	}
	bits := m.chip.Geometry().Bits()
	target := int(float64(bits)*(1-m.accuracy) + 0.5)
	if target < 1 {
		target = 1
	}
	if err := m.chip.Write(0, m.chip.WorstCaseData()); err != nil {
		return fmt.Errorf("approx: voltage calibration write: %w", err)
	}
	// Lower voltage monotonically shortens retention, so the decay count at
	// the fixed interval grows as volts drop: bisect on voltage.
	lo, hi := cfg.MinVolts+1e-6, cfg.NominalVolts
	countAt := func(v float64) (int, error) {
		if err := m.chip.SetVolts(v); err != nil {
			return 0, err
		}
		return m.chip.DecayCountWithin(fixedInterval), nil
	}
	n, err := countAt(lo)
	if err != nil {
		return err
	}
	if n < target {
		return fmt.Errorf("approx: error target %d unreachable even at %.3gV", target, lo)
	}
	for i := 0; i < 60 && hi-lo > 1e-9; i++ {
		mid := (lo + hi) / 2
		n, err := countAt(mid)
		if err != nil {
			return err
		}
		if n >= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	// Land on the highest voltage still reaching the target (lo side).
	if err := m.chip.SetVolts(lo); err != nil {
		return err
	}
	m.interval = fixedInterval
	return nil
}
