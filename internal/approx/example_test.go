package approx_test

import (
	"fmt"

	"probablecause/internal/approx"
	"probablecause/internal/bitset"
	"probablecause/internal/dram"
)

// Example shows the basic approximate-memory flow: calibrate to a target
// accuracy, store data, read back the approximate result.
func Example() {
	cfg := dram.KM41464A(0xE6)
	cfg.Geometry = dram.Geometry{Rows: 64, Cols: 256, BitsPerWord: 4, DefaultStripe: 2}
	chip, err := dram.NewChip(cfg)
	if err != nil {
		panic(err)
	}
	mem, err := approx.New(chip, 0.99)
	if err != nil {
		panic(err)
	}

	approxOut, exact, err := mem.WorstCaseOutput()
	if err != nil {
		panic(err)
	}
	errs := bitset.FromBytes(approxOut).XorCount(bitset.FromBytes(exact))
	rate := float64(errs) / float64(chip.Geometry().Bits())
	fmt.Printf("error rate within [0.005, 0.02]: %v\n", rate > 0.005 && rate < 0.02)
	fmt.Printf("interval positive: %v\n", mem.RefreshInterval() > 0)
	// Output:
	// error rate within [0.005, 0.02]: true
	// interval positive: true
}
