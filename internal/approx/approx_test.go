package approx

import (
	"math"
	"testing"

	"probablecause/internal/bitset"
	"probablecause/internal/dram"
)

// testChip builds a moderately sized chip: 64 rows × 256 cols × 4 bits =
// 65536 bits = 8 KB (2 pages), fast but statistically meaningful.
func testChip(t *testing.T, seed uint64) *dram.Chip {
	t.Helper()
	cfg := dram.KM41464A(seed)
	cfg.Geometry = dram.Geometry{Rows: 64, Cols: 256, BitsPerWord: 4, DefaultStripe: 2}
	c, err := dram.NewChip(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func errorRate(t *testing.T, m *Memory) float64 {
	t.Helper()
	approx, exact, err := m.WorstCaseOutput()
	if err != nil {
		t.Fatal(err)
	}
	errs := bitset.FromBytes(approx).Xor(bitset.FromBytes(exact)).Count()
	return float64(errs) / float64(m.Chip().Geometry().Bits())
}

func TestAccuracyValidation(t *testing.T) {
	c := testChip(t, 1)
	for _, a := range []float64{0, 0.5, 1, 1.5, -1} {
		if _, err := New(c, a); err == nil {
			t.Errorf("accuracy %v accepted", a)
		}
	}
	if _, err := New(c, 0.99); err != nil {
		t.Errorf("accuracy 0.99 rejected: %v", err)
	}
}

func TestCalibrationHitsTargetErrorRate(t *testing.T) {
	for _, acc := range []float64{0.99, 0.95, 0.90} {
		m, err := New(testChip(t, 2), acc)
		if err != nil {
			t.Fatal(err)
		}
		got := errorRate(t, m)
		want := 1 - acc
		// Per-trial noise moves the measured rate slightly around the target.
		if math.Abs(got-want) > 0.2*want+0.001 {
			t.Errorf("accuracy %v: error rate %v, want ~%v", acc, got, want)
		}
	}
}

func TestCalibrationTracksTemperature(t *testing.T) {
	m, err := New(testChip(t, 3), 0.99)
	if err != nil {
		t.Fatal(err)
	}
	i40 := m.RefreshInterval()
	if err := m.SetTemperature(60); err != nil {
		t.Fatal(err)
	}
	i60 := m.RefreshInterval()
	// Retention quarters from 40→60 °C, so the calibrated interval must too.
	if ratio := i60 / i40; math.Abs(ratio-0.25) > 0.05 {
		t.Fatalf("interval ratio 60C/40C = %v, want ~0.25", ratio)
	}
	// And the error rate is still on target after the move.
	if got := errorRate(t, m); math.Abs(got-0.01) > 0.005 {
		t.Fatalf("error rate at 60C = %v, want ~0.01", got)
	}
}

func TestLowerAccuracyLongerInterval(t *testing.T) {
	m, err := New(testChip(t, 4), 0.99)
	if err != nil {
		t.Fatal(err)
	}
	i99 := m.RefreshInterval()
	if err := m.SetAccuracy(0.90); err != nil {
		t.Fatal(err)
	}
	i90 := m.RefreshInterval()
	if i90 <= i99 {
		t.Fatalf("interval at 90%% (%v) not longer than at 99%% (%v)", i90, i99)
	}
}

func TestRoundtripPreservesMostData(t *testing.T) {
	m, err := New(testChip(t, 5), 0.99)
	if err != nil {
		t.Fatal(err)
	}
	exact := m.Chip().WorstCaseData()[:dram.PageBytes]
	approx, err := m.Roundtrip(0, exact)
	if err != nil {
		t.Fatal(err)
	}
	errs := bitset.FromBytes(approx).Xor(bitset.FromBytes(exact)).Count()
	rate := float64(errs) / float64(dram.PageBits)
	if rate == 0 {
		t.Fatal("no errors at all — approximation not happening")
	}
	if rate > 0.05 {
		t.Fatalf("error rate %v too high for 99%% accuracy", rate)
	}
}

func TestRepeatabilityOfErrorLocations(t *testing.T) {
	m, err := New(testChip(t, 6), 0.99)
	if err != nil {
		t.Fatal(err)
	}
	exact := m.Chip().WorstCaseData()
	var sets []*bitset.Set
	for i := 0; i < 5; i++ {
		approx, err := m.Roundtrip(0, exact)
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, bitset.FromBytes(approx).Xor(bitset.FromBytes(exact)))
	}
	inter := sets[0].Clone()
	union := sets[0].Clone()
	for _, s := range sets[1:] {
		inter.And(s)
		union.Or(s)
	}
	stability := float64(inter.Count()) / float64(union.Count())
	// §7.2: 98% of failing bits repeat across 21 trials. Across 5 trials the
	// intersection/union ratio should be at least 90%.
	if stability < 0.90 {
		t.Fatalf("error-location stability = %v, want ≥ 0.90", stability)
	}
}

func TestStoreReadApproxSeparateCalls(t *testing.T) {
	m, err := New(testChip(t, 7), 0.95)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	if err := m.Store(100, data); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadApprox(100, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) {
		t.Fatalf("read %d bytes, want %d", len(got), len(data))
	}
}

func TestStoreErrorPropagates(t *testing.T) {
	m, err := New(testChip(t, 8), 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Store(-1, []byte{0}); err == nil {
		t.Fatal("negative address accepted")
	}
	if _, err := m.Roundtrip(1<<30, []byte{0}); err == nil {
		t.Fatal("out-of-range roundtrip accepted")
	}
}

func TestCalibrateVoltageHitsTarget(t *testing.T) {
	m, err := New(testChip(t, 20), 0.99)
	if err != nil {
		t.Fatal(err)
	}
	const interval = 1.0 // far below any cell's nominal-voltage retention
	if err := m.CalibrateVoltage(interval); err != nil {
		t.Fatal(err)
	}
	if v := m.Chip().Volts(); v >= 5.0 || v <= 2.0 {
		t.Fatalf("calibrated voltage %v outside the scaling range", v)
	}
	got := errorRate(t, m)
	if math.Abs(got-0.01) > 0.005 {
		t.Fatalf("voltage-mode error rate %v, want ~0.01", got)
	}
}

func TestCalibrateVoltageValidation(t *testing.T) {
	m, err := New(testChip(t, 21), 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CalibrateVoltage(0); err == nil {
		t.Error("zero interval accepted")
	}
	if err := m.CalibrateVoltage(-1); err == nil {
		t.Error("negative interval accepted")
	}
}

func TestVoltageAndRefreshModesShareFingerprint(t *testing.T) {
	// The deanonymization transfers across approximation mechanisms: both
	// knobs expose the same decay ordering, so an output produced under
	// voltage scaling matches a fingerprint characterized under
	// refresh-rate scaling.
	m, err := New(testChip(t, 22), 0.99)
	if err != nil {
		t.Fatal(err)
	}
	refA, exact, err := m.WorstCaseOutput()
	if err != nil {
		t.Fatal(err)
	}
	esRef := bitset.FromBytes(refA).Xor(bitset.FromBytes(exact))

	if err := m.CalibrateVoltage(1.0); err != nil {
		t.Fatal(err)
	}
	voltA, _, err := m.WorstCaseOutput()
	if err != nil {
		t.Fatal(err)
	}
	esVolt := bitset.FromBytes(voltA).Xor(bitset.FromBytes(exact))

	inter := esRef.AndCount(esVolt)
	if esRef.Count() == 0 || esVolt.Count() == 0 {
		t.Fatal("premise broken: no errors in one mode")
	}
	overlap := float64(inter) / float64(min(esRef.Count(), esVolt.Count()))
	if overlap < 0.9 {
		t.Fatalf("cross-mechanism error overlap = %v, want ≥0.9", overlap)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
