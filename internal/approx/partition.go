package approx

import (
	"fmt"

	"probablecause/internal/dram"
)

// Partitioned is a Flikker-style split memory (§9.2, [18]): a leading exact
// zone refreshed fast enough that no cell ever decays, and a trailing
// approximate zone run at the controller's target accuracy. It is the
// controller-level realization of the data-segregation defense (§8.2.1):
// outputs placed in the exact zone carry no fingerprint at all.
type Partitioned struct {
	mem        *Memory
	exactBytes int
	// safeInterval is the refresh period of the exact zone: comfortably
	// shorter than the chip's fastest-decaying cell.
	safeInterval float64
	exactRows    int
}

// NewPartitioned wraps chip with the first exactBytes bytes operated
// exactly and the remainder at the target accuracy. exactBytes is rounded up
// to a whole number of rows (refresh granularity).
func NewPartitioned(chip *dram.Chip, accuracy float64, exactBytes int) (*Partitioned, error) {
	if exactBytes < 0 || exactBytes >= chip.Geometry().Bytes() {
		return nil, fmt.Errorf("approx: exact zone of %d bytes outside chip of %d bytes",
			exactBytes, chip.Geometry().Bytes())
	}
	mem, err := New(chip, accuracy)
	if err != nil {
		return nil, err
	}
	p := &Partitioned{mem: mem, exactBytes: exactBytes}
	rowBytes := chip.Geometry().RowBits() / 8
	p.exactRows = (exactBytes + rowBytes - 1) / rowBytes

	// Safe refresh period: half the time to the very first worst-case
	// failure anywhere on the chip (measured, like everything the
	// controller does).
	if err := chip.Write(0, chip.WorstCaseData()); err != nil {
		return nil, err
	}
	lo, hi := 0.0, 1.0
	for chip.DecayCountWithin(hi) < 1 {
		hi *= 2
		if hi > 1e9 {
			return nil, fmt.Errorf("approx: chip never decays; cannot size safe interval")
		}
	}
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		if chip.DecayCountWithin(mid) >= 1 {
			hi = mid
		} else {
			lo = mid
		}
	}
	p.safeInterval = hi / 2
	return p, nil
}

// Memory returns the underlying approximate controller (for the approximate
// zone's calibration state).
func (p *Partitioned) Memory() *Memory { return p.mem }

// ExactBytes returns the size of the exact zone.
func (p *Partitioned) ExactBytes() int { return p.exactBytes }

// SafeInterval returns the exact zone's refresh period.
func (p *Partitioned) SafeInterval() float64 { return p.safeInterval }

// Roundtrip stores data at addr and reads it back after one approximate
// refresh interval, refreshing the exact zone's rows every safe interval in
// between. Data in the exact zone therefore survives unchanged while the
// approximate zone accumulates its usual error pattern.
func (p *Partitioned) Roundtrip(addr int, data []byte) ([]byte, error) {
	if err := p.mem.Store(addr, data); err != nil {
		return nil, err
	}
	chip := p.mem.Chip()
	remaining := p.mem.RefreshInterval()
	for remaining > 0 {
		step := p.safeInterval
		if step > remaining {
			step = remaining
		}
		chip.Elapse(step)
		remaining -= step
		for r := 0; r < p.exactRows; r++ {
			if err := chip.RefreshRow(r); err != nil {
				return nil, err
			}
		}
	}
	return chip.Read(addr, len(data))
}

// RowAware is a RAIDR-style retention-aware refresher (§9.2, [17]): rows are
// profiled and each row gets its own refresh interval — a multiple of its
// weakest cell's measured lifetime. With slack ≤ 1 operation is exact at a
// fraction of the worst-case refresh power; with slack > 1 each row
// contributes errors from its relatively weakest cells.
//
// The privacy consequence this package exists to demonstrate: however the
// refresh budget is distributed, the residual error positions are still
// decided by the chip's decay ordering — retention-aware refresh changes
// *which* quantile band of cells errs, not *whose* cells they are.
type RowAware struct {
	chip        *dram.Chip
	rowLifetime []float64 // measured time of first worst-case failure per row
	slack       float64
}

// NewRowAware profiles every row of the chip (worst-case pattern, bisected
// first-failure time) and returns a refresher with the given slack factor.
func NewRowAware(chip *dram.Chip, slack float64) (*RowAware, error) {
	if slack <= 0 {
		return nil, fmt.Errorf("approx: non-positive slack %v", slack)
	}
	if err := chip.Write(0, chip.WorstCaseData()); err != nil {
		return nil, err
	}
	ra := &RowAware{chip: chip, slack: slack}
	rows := chip.Geometry().Rows
	ra.rowLifetime = make([]float64, rows)
	for r := 0; r < rows; r++ {
		lo, hi := 0.0, 1.0
		for {
			n, err := chip.RowDecayCountWithin(r, hi)
			if err != nil {
				return nil, err
			}
			if n >= 1 {
				break
			}
			hi *= 2
			if hi > 1e9 {
				return nil, fmt.Errorf("approx: row %d never decays", r)
			}
		}
		for i := 0; i < 40; i++ {
			mid := (lo + hi) / 2
			n, err := chip.RowDecayCountWithin(r, mid)
			if err != nil {
				return nil, err
			}
			if n >= 1 {
				hi = mid
			} else {
				lo = mid
			}
		}
		ra.rowLifetime[r] = hi
	}
	return ra, nil
}

// RowInterval returns row r's refresh interval (lifetime × slack).
func (ra *RowAware) RowInterval(r int) float64 { return ra.rowLifetime[r] * ra.slack }

// Roundtrip stores data, runs the per-row refresh schedule for the given
// observation window, and reads the result.
func (ra *RowAware) Roundtrip(addr int, data []byte, window float64) ([]byte, error) {
	if window <= 0 {
		return nil, fmt.Errorf("approx: non-positive window %v", window)
	}
	if err := ra.chip.Write(addr, data); err != nil {
		return nil, err
	}
	rows := ra.chip.Geometry().Rows
	next := make([]float64, rows)
	start := ra.chip.Now()
	for r := range next {
		next[r] = start + ra.RowInterval(r)
	}
	for {
		// Advance to the earliest refresh due within the window.
		earliest, row := start+window, -1
		for r, t := range next {
			if t < earliest {
				earliest, row = t, r
			}
		}
		if row < 0 {
			break
		}
		ra.chip.Elapse(earliest - ra.chip.Now())
		if err := ra.chip.RefreshRow(row); err != nil {
			return nil, err
		}
		next[row] = earliest + ra.RowInterval(row)
	}
	if end := start + window; end > ra.chip.Now() {
		ra.chip.Elapse(end - ra.chip.Now())
	}
	return ra.chip.Read(addr, len(data))
}
