package retry

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	b := NewBreaker(threshold, cooldown)
	c := &fakeClock{t: time.Unix(0, 0)}
	b.SetClock(c.now)
	return b, c
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Report(false)
	}
	if b.State() != BreakerClosed {
		t.Fatal("breaker opened before the threshold")
	}
	b.Allow()
	b.Report(false) // third consecutive failure
	if b.State() != BreakerOpen {
		t.Fatalf("breaker state %v after threshold failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	if b.Opens() != 1 {
		t.Fatalf("Opens = %d, want 1", b.Opens())
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 10; i++ {
		b.Allow()
		b.Report(false)
		b.Allow()
		b.Report(true) // success clears the streak
	}
	if b.State() != BreakerClosed {
		t.Fatal("alternating failures opened the breaker despite successes between them")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Allow()
	b.Report(false)
	if b.State() != BreakerOpen {
		t.Fatal("threshold-1 breaker did not open")
	}
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the half-open probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v during probe, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second request admitted while the probe is in flight")
	}
	b.Report(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after successful probe, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused traffic after recovery")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Allow()
	b.Report(false)
	clk.advance(2 * time.Second)
	b.Allow()       // probe
	b.Report(false) // probe fails
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after failed probe, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted traffic before a fresh cooldown")
	}
	if b.Opens() != 2 {
		t.Fatalf("Opens = %d, want 2", b.Opens())
	}
}
