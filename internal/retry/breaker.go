package retry

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: requests flow; failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are refused until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe request is in flight; its outcome
	// closes or re-opens the breaker.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a per-backend circuit breaker: Threshold consecutive
// failures open it, opening refuses traffic for Cooldown, then a single
// half-open probe decides whether the backend has recovered. The router
// keeps one Breaker per backend so a dead replica sheds its traffic to
// healthy ones instead of burning a timeout per request.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for deterministic tests

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	opens    int64
}

// NewBreaker returns a closed breaker that opens after threshold
// consecutive failures (<=0 selects 5) and re-probes after cooldown
// (<=0 selects 1s).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// SetClock replaces the breaker's clock (tests).
func (b *Breaker) SetClock(now func() time.Time) { b.now = now }

// Allow reports whether a request may proceed. In the open state it
// flips to half-open once the cooldown has elapsed and admits exactly
// one probe; concurrent callers are refused until the probe reports.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Report records the outcome of an admitted request. A success closes
// the breaker and clears the failure count; a failure in half-open
// re-opens immediately, and the Threshold-th consecutive closed-state
// failure opens it.
func (b *Breaker) Report(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.state = BreakerClosed
		b.failures = 0
		b.probing = false
		return
	}
	switch b.state {
	case BreakerHalfOpen:
		b.open()
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.open()
		}
	case BreakerOpen:
		// Late failure from a request admitted before opening; nothing to do.
	}
}

// open transitions to the open state. Caller holds b.mu.
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.failures = 0
	b.probing = false
	b.opens++
}

// State returns the breaker's current position (refreshing open →
// half-open eligibility is left to Allow).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the breaker has opened.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
