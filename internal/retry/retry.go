// Package retry defines the repository's one retry policy: exponential
// backoff with deterministic jitter, an error classifier that decides
// what is worth retrying, and a token budget that bounds how much retry
// traffic a component may add on top of its first attempts.
//
// The policy/classifier/budget split mirrors how production retry layers
// are tuned independently:
//
//   - Policy is per-operation shape: how many attempts, how the delay
//     grows, how much jitter decorrelates concurrent retriers. Jitter is
//     driven by a caller-owned prng.Source, so chaos runs reproduce their
//     exact retry schedule from a seed.
//   - Classifier is per-failure-domain semantics: transient faults
//     (faults.IsTransient) are retryable, context cancellation and logic
//     errors never are. Callers compose their own classifiers for their
//     transport (an HTTP 503 is retryable, a 400 is not).
//   - Budget is per-component safety: every first attempt earns a
//     fraction of a retry token, every retry spends one. When upstream is
//     down and every request fails, retries are capped at roughly
//     Ratio × offered load instead of multiplying it — the difference
//     between a brownout and a retry storm.
//
// The experiment runner (internal/runner), the replication puller, and
// the cluster router (internal/cluster) all consume this package, so
// "how does this system retry" has exactly one answer.
package retry

import (
	"context"
	"errors"
	"sync"
	"time"

	"probablecause/internal/faults"
	"probablecause/internal/obs"
)

// Retry metrics: attempts vs retries actually performed, and budget
// decisions, so a chaos run can assert retries stayed inside the budget.
var (
	cAttempts     = obs.C("retry.attempts")
	cRetries      = obs.C("retry.retries")
	cBudgetDenied = obs.C("retry.budget_denied")
)

// ErrBudgetExhausted reports that a retry was warranted by the
// classifier but denied by the budget; the last operation error is
// wrapped alongside it.
var ErrBudgetExhausted = errors.New("retry: budget exhausted")

// Policy is the shape of one operation's retry schedule. The zero value
// performs a single attempt (no retries); withDefaults fills delay
// parameters when MaxAttempts allows retrying.
type Policy struct {
	// MaxAttempts is the total number of attempts, first try included.
	// 0 and 1 both mean "no retries".
	MaxAttempts int
	// BaseDelay is the delay before the first retry; each further retry
	// doubles it (geometrically by Multiplier), capped at MaxDelay.
	// Default 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the grown delay. Default 5s.
	MaxDelay time.Duration
	// Multiplier grows the delay between consecutive retries. Default 2.
	Multiplier float64
	// JitterFrac adds up to this fraction of the grown delay as
	// deterministic jitter (0.5 adds up to +50%). Negative disables
	// jitter; 0 selects the 0.5 default.
	JitterFrac float64
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.JitterFrac == 0 {
		p.JitterFrac = 0.5
	} else if p.JitterFrac < 0 {
		p.JitterFrac = 0
	}
	return p
}

// jitterSource is the slice of prng.Source the policy needs; taking the
// interface keeps jitter deterministic and caller-seeded without binding
// the signature to one generator type.
type jitterSource interface{ Float64() float64 }

// Delay returns the backoff before retry number attempt (attempt 1 is
// the first retry, i.e. before the second overall try): BaseDelay grown
// geometrically, capped at MaxDelay, plus up to JitterFrac of itself in
// deterministic jitter drawn from src. A nil src skips jitter.
func (p Policy) Delay(attempt int, src jitterSource) time.Duration {
	p = p.withDefaults()
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d = time.Duration(float64(d) * p.Multiplier)
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if src != nil && p.JitterFrac > 0 {
		d += time.Duration(src.Float64() * p.JitterFrac * float64(d))
	}
	return d
}

// Classifier decides whether an error is worth retrying. Classifiers
// must return false for nil.
type Classifier func(error) bool

// Transient is the default classifier: retry exactly the failures the
// fault layer marked transient (injected chaos, flaky I/O, busy
// devices), and never a cancelled or deadline-exceeded context — the
// caller has already given up, retrying would outlive the request.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return faults.IsTransient(err)
}

// Budget bounds retry volume: each first attempt earns Ratio of a retry
// token (up to Burst), each retry spends a whole one. With Ratio 0.1 a
// component in steady failure adds at most ~10% retry traffic on top of
// its offered load, instead of multiplying the outage by MaxAttempts.
// A nil *Budget allows every retry (unbounded).
type Budget struct {
	mu     sync.Mutex
	tokens float64
	ratio  float64
	burst  float64

	allowed int64
	denied  int64
}

// NewBudget returns a budget earning ratio tokens per first attempt,
// holding at most burst. It starts full, so short failure bursts retry
// freely; only sustained failure hits the cap. ratio<=0 selects 0.1,
// burst<=0 selects 10.
func NewBudget(ratio float64, burst int) *Budget {
	if ratio <= 0 {
		ratio = 0.1
	}
	if burst <= 0 {
		burst = 10
	}
	return &Budget{tokens: float64(burst), ratio: ratio, burst: float64(burst)}
}

// Observe credits the budget for one first attempt.
func (b *Budget) Observe() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// Allow consumes one retry token, reporting whether the retry may
// proceed. A denied retry consumes nothing.
func (b *Budget) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens >= 1 {
		b.tokens--
		b.allowed++
		return true
	}
	b.denied++
	return false
}

// Counts returns how many retries the budget allowed and denied.
func (b *Budget) Counts() (allowed, denied int64) {
	if b == nil {
		return 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.allowed, b.denied
}

// Options bundles the cross-cutting retry dependencies for Do.
type Options struct {
	// Classify decides retryability; nil selects Transient.
	Classify Classifier
	// Budget bounds retry volume; nil is unbounded.
	Budget *Budget
	// Jitter drives deterministic backoff jitter; nil skips jitter.
	Jitter jitterSource
	// Sleep replaces the context-aware backoff sleep (tests). nil selects
	// a timer-based sleep that aborts on ctx cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry, when non-nil, observes every retry decision before its
	// backoff sleep (logging, metrics).
	OnRetry func(attempt int, delay time.Duration, err error)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs op under the policy: first attempt plus classifier-approved,
// budget-funded retries with backoff. It returns nil on the first
// success, the last error when attempts or classification run out, and
// wraps ErrBudgetExhausted alongside the last error when the budget —
// not the policy — stopped the retrying. ctx cancellation stops retries
// immediately (the in-flight attempt sees ctx itself).
func Do(ctx context.Context, p Policy, opts Options, op func(ctx context.Context) error) error {
	p = p.withDefaults()
	classify := opts.Classify
	if classify == nil {
		classify = Transient
	}
	sleep := opts.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	opts.Budget.Observe()
	var err error
	for attempt := 1; ; attempt++ {
		if obs.On() {
			cAttempts.Inc()
		}
		err = op(ctx)
		if err == nil {
			return nil
		}
		if attempt >= p.MaxAttempts || !classify(err) || ctx.Err() != nil {
			return err
		}
		if !opts.Budget.Allow() {
			if obs.On() {
				cBudgetDenied.Inc()
			}
			return errors.Join(ErrBudgetExhausted, err)
		}
		delay := p.Delay(attempt, opts.Jitter)
		if opts.OnRetry != nil {
			opts.OnRetry(attempt, delay, err)
		}
		if obs.On() {
			cRetries.Inc()
		}
		if sleep(ctx, delay) != nil {
			return err
		}
	}
}
