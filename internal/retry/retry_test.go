package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"probablecause/internal/faults"
	"probablecause/internal/prng"
)

func TestPolicyDelayGrowth(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second, JitterFrac: -1}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		3200 * time.Millisecond,
		5 * time.Second, // capped
		5 * time.Second,
	}
	for i, w := range want {
		if got := p.Delay(i+1, nil); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

// TestPolicyDelayMatchesRunnerBackoff pins the extracted policy to the
// runner's original inline backoff formula: base·2^(attempt-1) capped,
// plus jitter·0.5·delay — the same deterministic schedule for the same
// seed.
func TestPolicyDelayMatchesRunnerBackoff(t *testing.T) {
	base, max := 100*time.Millisecond, 5*time.Second
	orig := func(attempt int, j *prng.Source) time.Duration {
		d := base
		for i := 1; i < attempt && d < max; i++ {
			d *= 2
		}
		if d > max {
			d = max
		}
		return d + time.Duration(j.Float64()*0.5*float64(d))
	}
	p := Policy{BaseDelay: base, MaxDelay: max}
	for seed := uint64(1); seed <= 3; seed++ {
		j1 := prng.New(seed)
		j2 := prng.New(seed)
		for attempt := 1; attempt <= 10; attempt++ {
			want := orig(attempt, j1)
			got := p.Delay(attempt, j2)
			if got != want {
				t.Fatalf("seed %d attempt %d: Delay=%v, original backoff=%v", seed, attempt, got, want)
			}
		}
	}
}

func TestPolicyDelayDeterministic(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second}
	a := prng.New(42)
	b := prng.New(42)
	for i := 1; i <= 8; i++ {
		if da, db := p.Delay(i, a), p.Delay(i, b); da != db {
			t.Fatalf("attempt %d: same seed gave %v and %v", i, da, db)
		}
	}
}

func TestTransientClassifier(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("plain"), false},
		{faults.Transient(errors.New("flaky")), true},
		{fmt.Errorf("wrapped: %w", faults.Transient(errors.New("flaky"))), true},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{faults.Transient(context.DeadlineExceeded), false}, // deadline wins
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Errorf("Transient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestBudgetEarnsAndSpends(t *testing.T) {
	b := NewBudget(0.5, 4) // starts with 4 tokens
	for i := 0; i < 4; i++ {
		if !b.Allow() {
			t.Fatalf("burst token %d denied", i)
		}
	}
	if b.Allow() {
		t.Fatal("empty budget allowed a retry")
	}
	// Two first attempts earn one token at ratio 0.5.
	b.Observe()
	b.Observe()
	if !b.Allow() {
		t.Fatal("earned token denied")
	}
	if b.Allow() {
		t.Fatal("budget over-credited")
	}
	allowed, denied := b.Counts()
	if allowed != 5 || denied != 2 {
		t.Fatalf("Counts = (%d, %d), want (5, 2)", allowed, denied)
	}
}

func TestBudgetBurstCap(t *testing.T) {
	b := NewBudget(1, 2)
	for i := 0; i < 100; i++ {
		b.Observe() // earns 1 per observe, capped at 2
	}
	got := 0
	for b.Allow() {
		got++
	}
	if got != 2 {
		t.Fatalf("burst cap leaked: %d tokens, want 2", got)
	}
}

func noSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

func TestDoRetriesTransient(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 4}, Options{Sleep: noSleep}, func(context.Context) error {
		calls++
		if calls < 3 {
			return faults.Transient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want nil after 3", err, calls)
	}
}

func TestDoStopsOnPermanentError(t *testing.T) {
	perm := errors.New("permanent")
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 5}, Options{Sleep: noSleep}, func(context.Context) error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("Do = %v after %d calls, want the permanent error after 1", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	flaky := faults.Transient(errors.New("flaky"))
	err := Do(context.Background(), Policy{MaxAttempts: 3}, Options{Sleep: noSleep}, func(context.Context) error {
		calls++
		return flaky
	})
	if !errors.Is(err, flaky) || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want the transient error after 3", err, calls)
	}
}

func TestDoHonoursBudget(t *testing.T) {
	b := NewBudget(0.1, 1) // one retry token, then dry
	flaky := faults.Transient(errors.New("flaky"))
	calls := 0
	err := Do(context.Background(), Policy{MaxAttempts: 10}, Options{Budget: b, Sleep: noSleep}, func(context.Context) error {
		calls++
		return flaky
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("Do = %v, want ErrBudgetExhausted", err)
	}
	if !errors.Is(err, flaky) {
		t.Fatalf("budget error %v does not carry the last attempt error", err)
	}
	if calls != 2 { // first attempt + the one budgeted retry
		t.Fatalf("made %d calls, want 2", calls)
	}
}

func TestDoStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	flaky := faults.Transient(errors.New("flaky"))
	calls := 0
	err := Do(ctx, Policy{MaxAttempts: 10}, Options{Sleep: noSleep}, func(context.Context) error {
		calls++
		cancel()
		return flaky
	})
	if !errors.Is(err, flaky) || calls != 1 {
		t.Fatalf("Do = %v after %d calls, want no retries after cancellation", err, calls)
	}
}

func TestDoObservesRetries(t *testing.T) {
	var seen []int
	flaky := faults.Transient(errors.New("flaky"))
	Do(context.Background(), Policy{MaxAttempts: 3}, Options{
		Sleep:   noSleep,
		OnRetry: func(attempt int, d time.Duration, err error) { seen = append(seen, attempt) },
	}, func(context.Context) error { return flaky })
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("OnRetry saw attempts %v, want [1 2]", seen)
	}
}
