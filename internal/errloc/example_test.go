package errloc_test

import (
	"fmt"

	"probablecause/internal/errloc"
	"probablecause/internal/imaging"
)

// Example recovers error positions from an approximate image without the
// exact copy, using the median-filter noise detector (§8.3 approach 2).
func Example() {
	exact := imaging.Synthetic(32, 32, 1).Threshold(128)
	approx := exact.Clone()
	approx.Pix[100] ^= 0x80 // one decayed bit

	estimate := errloc.MedianEstimate(approx)
	es, err := errloc.EstimateErrors(approx, estimate)
	if err != nil {
		panic(err)
	}
	truth, _ := errloc.EstimateErrors(approx, exact)
	q := errloc.Evaluate(es, truth)
	fmt.Println("true error recovered:", q.Recall == 1)
	// Output:
	// true error recovered: true
}
