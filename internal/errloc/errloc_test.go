package errloc

import (
	"testing"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
	"probablecause/internal/imaging"
	"probablecause/internal/prng"
)

func TestRecomputeExactMatchesPipeline(t *testing.T) {
	in := imaging.Synthetic(64, 48, 1)
	want := imaging.SobelEdges(in)
	got := RecomputeExact(in)
	if d, _ := got.DiffCount(want); d != 0 {
		t.Fatal("RecomputeExact differs from the victim pipeline")
	}
}

func TestMedian9(t *testing.T) {
	if m := median9([9]uint8{9, 1, 8, 2, 7, 3, 6, 4, 5}); m != 5 {
		t.Fatalf("median = %d, want 5", m)
	}
	if m := median9([9]uint8{0, 0, 0, 0, 0, 0, 0, 0, 255}); m != 0 {
		t.Fatalf("median = %d, want 0", m)
	}
}

func TestMedianEstimateRemovesSaltPepper(t *testing.T) {
	// Flat image with isolated corrupted pixels: the median estimate must
	// recover the flat value everywhere.
	im := imaging.New(32, 32)
	for i := range im.Pix {
		im.Pix[i] = 128
	}
	corrupted := im.Clone()
	rng := prng.New(2)
	for i := 0; i < 20; i++ {
		corrupted.Set(rng.Intn(32), rng.Intn(32), uint8(rng.Intn(256)))
	}
	est := MedianEstimate(corrupted)
	wrong := 0
	for _, p := range est.Pix {
		if p != 128 {
			wrong++
		}
	}
	// A couple of adjacent corruptions can survive; isolated ones cannot.
	if wrong > 4 {
		t.Fatalf("%d pixels wrong after median filtering", wrong)
	}
}

func TestEstimateErrorsSizeMismatch(t *testing.T) {
	if _, err := EstimateErrors(imaging.New(4, 4), imaging.New(5, 4)); err != nil {
		// expected
	} else {
		t.Fatal("size mismatch accepted")
	}
}

func TestEstimateErrorsFindsInjectedBits(t *testing.T) {
	exact := imaging.Synthetic(32, 32, 3)
	approx := exact.Clone()
	// Flip bit 0 of pixel 100 and bit 7 of pixel 200.
	approx.Pix[100] ^= 0x01
	approx.Pix[200] ^= 0x80
	es, err := EstimateErrors(approx, exact)
	if err != nil {
		t.Fatal(err)
	}
	pos := es.Positions()
	if len(pos) != 2 || pos[0] != 100*8 || pos[1] != 200*8+7 {
		t.Fatalf("positions = %v", pos)
	}
}

func TestEvaluatePerfectEstimate(t *testing.T) {
	truth := bitset.FromPositions(100, []uint32{1, 5, 9})
	q := Evaluate(truth.Clone(), truth)
	if q.Precision != 1 || q.Recall != 1 || q.TruePos != 3 || q.FalsePos != 0 || q.FalseNeg != 0 {
		t.Fatalf("quality = %+v", q)
	}
}

func TestEvaluatePartialEstimate(t *testing.T) {
	truth := bitset.FromPositions(100, []uint32{1, 5, 9, 20})
	est := bitset.FromPositions(100, []uint32{1, 5, 50})
	q := Evaluate(est, truth)
	if q.TruePos != 2 || q.FalsePos != 1 || q.FalseNeg != 2 {
		t.Fatalf("quality = %+v", q)
	}
	if q.Precision != 2.0/3 || q.Recall != 0.5 {
		t.Fatalf("precision/recall = %v/%v", q.Precision, q.Recall)
	}
}

func TestEvaluateEmptyEstimate(t *testing.T) {
	truth := bitset.FromPositions(100, []uint32{1})
	q := Evaluate(bitset.New(100), truth)
	if q.Precision != 0 || q.Recall != 0 {
		t.Fatalf("quality = %+v", q)
	}
}

func TestSpeculativeIdentify(t *testing.T) {
	db := fingerprint.NewDB(fingerprint.DefaultThreshold)
	mk := func(lo uint32) *bitset.Set {
		s := bitset.New(1000)
		for i := lo; i < lo+20; i++ {
			s.Set(int(i))
		}
		return s
	}
	db.Add("victim", mk(100))
	// First candidate hypothesis is junk, second matches.
	junk := mk(500)
	good := mk(100)
	good.Set(999) // a little estimation noise
	name, idx, ok := SpeculativeIdentify(db, []*bitset.Set{junk, good})
	if !ok || name != "victim" || idx != 0 {
		t.Fatalf("SpeculativeIdentify = (%q, %d, %v)", name, idx, ok)
	}
	if _, _, ok := SpeculativeIdentify(db, []*bitset.Set{junk}); ok {
		t.Fatal("junk candidate identified")
	}
	if _, _, ok := SpeculativeIdentify(db, nil); ok {
		t.Fatal("no candidates identified")
	}
}

// End-to-end: noise-detection localization on a black/white image recovers
// most true error positions with high precision.
func TestMedianLocalizationEndToEnd(t *testing.T) {
	exact := imaging.Synthetic(64, 64, 7).Threshold(128)
	approx := exact.Clone()
	rng := prng.New(8)
	truthPos := []uint32{}
	for i := 0; i < 40; i++ {
		p := rng.Intn(len(approx.Pix))
		b := rng.Intn(8)
		approx.Pix[p] ^= 1 << uint(b)
		truthPos = append(truthPos, uint32(p*8+b))
	}
	truth := bitset.FromPositions(len(exact.Pix)*8, truthPos)

	est := MedianEstimate(approx)
	es, err := EstimateErrors(approx, est)
	if err != nil {
		t.Fatal(err)
	}
	q := Evaluate(es, truth)
	if q.Recall < 0.5 {
		t.Fatalf("recall = %v, want ≥ 0.5 (quality = %+v)", q.Recall, q)
	}
}
