// Package errloc implements the error-localization techniques of §8.3: how
// an attacker estimates the *exact* output — and therefore the error
// positions — from an approximate output alone.
//
// Three approaches, mirroring the paper:
//
//  1. Known-input recomputation: when the output is a deterministic function
//     of public inputs (the edge-detection case), recompute it.
//  2. Noise detection: approximate-DRAM errors look like white noise on the
//     output (§8.3); a median filter estimates the noise-free image, and
//     pixels disagreeing with the estimate mark suspected error locations.
//  3. Speculative matching: try candidate error strings against a
//     fingerprint database and keep whichever lands under the threshold.
package errloc

import (
	"fmt"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
	"probablecause/internal/imaging"
)

// RecomputeExact implements approach (1) for the edge-detection workload:
// given the public input image, reproduce the exact output.
func RecomputeExact(input *imaging.Image) *imaging.Image {
	return imaging.SobelEdges(input)
}

// MedianEstimate implements approach (2): it returns the 3×3 median-filtered
// image, the best noise-free estimate of the exact output.
func MedianEstimate(approx *imaging.Image) *imaging.Image {
	out := imaging.New(approx.W, approx.H)
	var window [9]uint8
	for y := 0; y < approx.H; y++ {
		for x := 0; x < approx.W; x++ {
			k := 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					window[k] = approx.At(x+dx, y+dy)
					k++
				}
			}
			out.Set(x, y, median9(window))
		}
	}
	return out
}

// median9 returns the median of 9 values by insertion sort — fixed-size and
// allocation free, this is the hot loop of the estimator.
func median9(w [9]uint8) uint8 {
	for i := 1; i < 9; i++ {
		v := w[i]
		j := i - 1
		for j >= 0 && w[j] > v {
			w[j+1] = w[j]
			j--
		}
		w[j+1] = v
	}
	return w[4]
}

// EstimateErrors derives a suspected error string by diffing the approximate
// output against an estimated exact output (from either approach).
func EstimateErrors(approx, estimatedExact *imaging.Image) (*bitset.Set, error) {
	if approx.W != estimatedExact.W || approx.H != estimatedExact.H {
		return nil, fmt.Errorf("errloc: size mismatch %dx%d vs %dx%d",
			approx.W, approx.H, estimatedExact.W, estimatedExact.H)
	}
	return fingerprint.ErrorString(approx.Bytes(), estimatedExact.Bytes())
}

// Quality measures an estimated error string against ground truth.
type Quality struct {
	TruePos, FalsePos, FalseNeg int
	Precision, Recall           float64
}

// Evaluate compares an estimated error string with the true one.
func Evaluate(estimated, truth *bitset.Set) Quality {
	q := Quality{
		TruePos:  estimated.AndCount(truth),
		FalsePos: estimated.AndNotCount(truth),
		FalseNeg: truth.AndNotCount(estimated),
	}
	if q.TruePos+q.FalsePos > 0 {
		q.Precision = float64(q.TruePos) / float64(q.TruePos+q.FalsePos)
	}
	if q.TruePos+q.FalseNeg > 0 {
		q.Recall = float64(q.TruePos) / float64(q.TruePos+q.FalseNeg)
	}
	return q
}

// SpeculativeIdentify implements approach (3): each candidate error string
// (from different exact-output hypotheses) is tried against the fingerprint
// database; the first hit wins.
func SpeculativeIdentify(db *fingerprint.DB, candidates []*bitset.Set) (name string, index int, ok bool) {
	for _, c := range candidates {
		if n, i, hit := db.Identify(c); hit {
			return n, i, true
		}
	}
	return "", -1, false
}
