// Package puf implements a DRAM decay PUF — the *intentional* use of the
// physics Probable Cause exploits. §9.1 contrasts the two: "the underlying
// physical mechanism used in a DRAM PUF [Rosenblatt et al.] and Probable
// Cause are the same", but a PUF deliberately characterizes the device for
// attestation while approximate memory leaks the same identity by accident.
//
// The PUF here is a weak PUF (device-bound key storage and attestation):
//
//   - Enroll measures a memory region several times at a fixed decay
//     interval and stores the intersected error pattern (exactly Algorithm 1)
//     as the reference response;
//   - Authenticate takes a fresh measurement and accepts iff its distance to
//     the reference is below the threshold — the same modified-Jaccard
//     decision as the attack;
//   - Key derives a device-bound key from the reference response. The fresh
//     measurement only gates access; the key material is the enrolled
//     response itself, so the key is bit-stable across re-measurement noise.
package puf

import (
	"fmt"

	"probablecause/internal/approx"
	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
	"probablecause/internal/prng"
)

// Region selects the memory window the PUF operates on.
type Region struct {
	Addr, Len int // bytes
}

func (r Region) validate(chipBytes int) error {
	if r.Addr < 0 || r.Len <= 0 || r.Addr+r.Len > chipBytes {
		return fmt.Errorf("puf: region [%d,%d) outside chip of %d bytes", r.Addr, r.Addr+r.Len, chipBytes)
	}
	return nil
}

// Enrollment is the stored reference for one device region.
type Enrollment struct {
	Region    Region
	Reference *bitset.Set // intersected decay pattern
	Threshold float64
}

// Enroll measures the region trials times through the approximate memory and
// stores the intersected error pattern. At least two trials are required so
// single-trial noise cannot enter the reference.
func Enroll(mem *approx.Memory, region Region, trials int) (*Enrollment, error) {
	if trials < 2 {
		return nil, fmt.Errorf("puf: need ≥2 enrollment trials, have %d", trials)
	}
	if err := region.validate(mem.Chip().Geometry().Bytes()); err != nil {
		return nil, err
	}
	exact := mem.Chip().WorstCaseData()[region.Addr : region.Addr+region.Len]
	var outs [][]byte
	for i := 0; i < trials; i++ {
		out, err := mem.Roundtrip(region.Addr, exact)
		if err != nil {
			return nil, err
		}
		outs = append(outs, out)
	}
	ref, err := fingerprint.Characterize(exact, outs...)
	if err != nil {
		return nil, err
	}
	if ref.Count() == 0 {
		return nil, fmt.Errorf("puf: region produced no stable decay pattern; lower the accuracy or enlarge the region")
	}
	return &Enrollment{Region: region, Reference: ref, Threshold: fingerprint.DefaultThreshold}, nil
}

// Authenticate measures the region once and reports whether the device is
// the enrolled one, along with the measured distance.
func (e *Enrollment) Authenticate(mem *approx.Memory) (bool, float64, error) {
	if err := e.Region.validate(mem.Chip().Geometry().Bytes()); err != nil {
		return false, 1, err
	}
	exact := mem.Chip().WorstCaseData()[e.Region.Addr : e.Region.Addr+e.Region.Len]
	out, err := mem.Roundtrip(e.Region.Addr, exact)
	if err != nil {
		return false, 1, err
	}
	es, err := fingerprint.ErrorString(out, exact)
	if err != nil {
		return false, 1, err
	}
	d := fingerprint.Distance(es, e.Reference)
	return d < e.Threshold, d, nil
}

// Key derives n bytes of device-bound key material from the enrolled
// reference response. The derivation is deterministic in the reference, so
// the key survives measurement noise (the fresh measurement only gates via
// Authenticate).
func (e *Enrollment) Key(n int) []byte {
	if n <= 0 {
		return nil
	}
	// Sponge-style extraction over the sorted error positions.
	h := prng.Hash(0x90F5, uint64(e.Region.Addr), uint64(e.Region.Len))
	e.Reference.ForEach(func(i int) bool {
		h = prng.Mix64(h ^ uint64(i))
		return true
	})
	out := make([]byte, n)
	state := h
	prng.New(state).Fill(out)
	return out
}
