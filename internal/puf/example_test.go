package puf_test

import (
	"fmt"

	"probablecause/internal/approx"
	"probablecause/internal/dram"
	"probablecause/internal/puf"
)

// Example enrolls a device region as a PUF, authenticates the device, and
// derives a device-bound key — the intentional twin of the Probable Cause
// attack (§9.1).
func Example() {
	cfg := dram.KM41464A(0x9F9F)
	cfg.Geometry = dram.Geometry{Rows: 64, Cols: 256, BitsPerWord: 4, DefaultStripe: 2}
	chip, err := dram.NewChip(cfg)
	if err != nil {
		panic(err)
	}
	mem, err := approx.New(chip, 0.97)
	if err != nil {
		panic(err)
	}

	e, err := puf.Enroll(mem, puf.Region{Addr: 0, Len: 4096}, 3)
	if err != nil {
		panic(err)
	}
	ok, _, err := e.Authenticate(mem)
	if err != nil {
		panic(err)
	}
	fmt.Println("authenticated:", ok)
	fmt.Println("key bytes:", len(e.Key(32)))
	// Output:
	// authenticated: true
	// key bytes: 32
}
