package puf

import (
	"bytes"
	"testing"

	"probablecause/internal/approx"
	"probablecause/internal/dram"
)

func testMem(t *testing.T, seed uint64) *approx.Memory {
	t.Helper()
	cfg := dram.KM41464A(seed)
	cfg.Geometry = dram.Geometry{Rows: 64, Cols: 256, BitsPerWord: 4, DefaultStripe: 2}
	chip, err := dram.NewChip(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := approx.New(chip, 0.97)
	if err != nil {
		t.Fatal(err)
	}
	return mem
}

var region = Region{Addr: 0, Len: 4096}

func TestEnrollValidation(t *testing.T) {
	mem := testMem(t, 1)
	if _, err := Enroll(mem, region, 1); err == nil {
		t.Error("single-trial enrollment accepted")
	}
	if _, err := Enroll(mem, Region{Addr: -1, Len: 10}, 3); err == nil {
		t.Error("negative region accepted")
	}
	if _, err := Enroll(mem, Region{Addr: 0, Len: 1 << 30}, 3); err == nil {
		t.Error("oversized region accepted")
	}
}

func TestAuthenticateOwnDevice(t *testing.T) {
	mem := testMem(t, 2)
	e, err := Enroll(mem, region, 3)
	if err != nil {
		t.Fatal(err)
	}
	ok, d, err := e.Authenticate(mem)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || d > 0.05 {
		t.Fatalf("own device rejected: ok=%v distance=%v", ok, d)
	}
}

func TestAuthenticateAcrossTemperature(t *testing.T) {
	mem := testMem(t, 3)
	e, err := Enroll(mem, region, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.SetTemperature(60); err != nil {
		t.Fatal(err)
	}
	ok, d, err := e.Authenticate(mem)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("own device rejected at 60°C (distance %v)", d)
	}
}

func TestRejectOtherDevice(t *testing.T) {
	a := testMem(t, 4)
	b := testMem(t, 5)
	e, err := Enroll(a, region, 3)
	if err != nil {
		t.Fatal(err)
	}
	ok, d, err := e.Authenticate(b)
	if err != nil {
		t.Fatal(err)
	}
	if ok || d < 0.5 {
		t.Fatalf("impostor accepted: ok=%v distance=%v", ok, d)
	}
}

func TestKeyStableAndDeviceBound(t *testing.T) {
	mem := testMem(t, 6)
	e, err := Enroll(mem, region, 3)
	if err != nil {
		t.Fatal(err)
	}
	k1 := e.Key(32)
	k2 := e.Key(32)
	if !bytes.Equal(k1, k2) {
		t.Fatal("key not deterministic")
	}
	if len(k1) != 32 {
		t.Fatalf("key length %d", len(k1))
	}
	other, err := Enroll(testMem(t, 7), region, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(k1, other.Key(32)) {
		t.Fatal("two devices derived the same key")
	}
	if e.Key(0) != nil {
		t.Fatal("zero-length key should be nil")
	}
}

func TestKeyDependsOnRegion(t *testing.T) {
	mem := testMem(t, 8)
	e1, err := Enroll(mem, Region{Addr: 0, Len: 2048}, 3)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Enroll(mem, Region{Addr: 2048, Len: 2048}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(e1.Key(16), e2.Key(16)) {
		t.Fatal("different regions derived the same key")
	}
}

func TestAuthenticateRegionOutsideSmallerChip(t *testing.T) {
	mem := testMem(t, 9)
	e, err := Enroll(mem, region, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A chip too small for the enrolled region must error, not panic.
	cfg := dram.KM41464A(10)
	cfg.Geometry = dram.Geometry{Rows: 4, Cols: 32, BitsPerWord: 4, DefaultStripe: 2}
	small, err := dram.NewChip(cfg)
	if err != nil {
		t.Fatal(err)
	}
	smallMem, err := approx.New(small, 0.97)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Authenticate(smallMem); err == nil {
		t.Fatal("oversized region accepted on small chip")
	}
}
