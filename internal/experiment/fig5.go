package experiment

import (
	"fmt"
	"strings"

	"probablecause/internal/approx"
	"probablecause/internal/bitset"
	"probablecause/internal/dram"
	"probablecause/internal/fingerprint"
	"probablecause/internal/imaging"
	"probablecause/internal/workload"
)

// Fig5Params parameterizes the visual-comparison experiment: one image
// stored on the same chip at two temperatures and on a second chip.
type Fig5Params struct {
	Geometry dram.Geometry
	W, H     int
	Accuracy float64
	TempA1   float64 // first output of chip A
	TempA2   float64 // second output of chip A
	TempB    float64 // output of chip B
	SeedA    uint64
	SeedB    uint64
	ImgSeed  uint64
}

// DefaultFig5Params matches the paper: a 200×154 black-and-white image at a
// refresh rate yielding 1 % worst-case error, two temperatures for chip A.
func DefaultFig5Params() Fig5Params {
	return Fig5Params{
		Geometry: dram.KM41464A(0).Geometry,
		W:        200, H: 154,
		Accuracy: 0.99,
		TempA1:   40, TempA2: 60, TempB: 40,
		SeedA: 0x515A, SeedB: 0x515B, ImgSeed: 0x1516,
	}
}

// SmallFig5Params returns a reduced setup for tests.
func SmallFig5Params() Fig5Params {
	p := DefaultFig5Params()
	p.Geometry = dram.Geometry{Rows: 128, Cols: 256, BitsPerWord: 4, DefaultStripe: 2}
	p.W, p.H = 100, 77
	return p
}

// Fig5Result holds the three approximate images and their pairwise error-
// pattern distances: visually, (a) and (b) share error structure while (c)
// does not.
type Fig5Result struct {
	Params             Fig5Params
	Exact              *imaging.Image
	OutA1, OutA2, OutB *imaging.Image
	PixelErrs          [3]int // corrupted pixels per output
	DistA1A2           float64
	DistA1B, DistA2B   float64
}

// RunFig5 stores the image on both chips and collects the outputs.
func RunFig5(p Fig5Params) (*Fig5Result, error) {
	if p.W*p.H > p.Geometry.Bytes() {
		return nil, fmt.Errorf("experiment: %dx%d image exceeds %d-byte chip", p.W, p.H, p.Geometry.Bytes())
	}
	done := track("fig5")
	defer func() { done(3) }() // three captured outputs: A1, A2, B
	job := workload.NewBinaryImageJob(p.W, p.H, p.ImgSeed, 64)

	mkMem := func(seed uint64) (*approx.Memory, error) {
		cfg := dram.KM41464A(seed)
		cfg.Geometry = p.Geometry
		chip, err := dram.NewChip(cfg)
		if err != nil {
			return nil, err
		}
		return approx.New(chip, p.Accuracy)
	}
	memA, err := mkMem(p.SeedA)
	if err != nil {
		return nil, err
	}
	memB, err := mkMem(p.SeedB)
	if err != nil {
		return nil, err
	}

	capture := func(mem *approx.Memory, temp float64) (*imaging.Image, error) {
		if err := mem.SetTemperature(temp); err != nil {
			return nil, err
		}
		return job.RunApprox(mem, 0)
	}
	r := &Fig5Result{Params: p, Exact: job.Exact}
	if r.OutA1, err = capture(memA, p.TempA1); err != nil {
		return nil, err
	}
	if r.OutA2, err = capture(memA, p.TempA2); err != nil {
		return nil, err
	}
	if r.OutB, err = capture(memB, p.TempB); err != nil {
		return nil, err
	}
	for i, out := range []*imaging.Image{r.OutA1, r.OutA2, r.OutB} {
		d, err := out.DiffCount(job.Exact)
		if err != nil {
			return nil, err
		}
		r.PixelErrs[i] = d
	}

	es := func(out *imaging.Image) (*bitset.Set, error) {
		return fingerprint.ErrorString(out.Bytes(), job.Exact.Bytes())
	}
	a1, err := es(r.OutA1)
	if err != nil {
		return nil, err
	}
	a2, err := es(r.OutA2)
	if err != nil {
		return nil, err
	}
	bOut, err := es(r.OutB)
	if err != nil {
		return nil, err
	}
	r.DistA1A2 = fingerprint.Distance(a1, a2)
	r.DistA1B = fingerprint.Distance(a1, bOut)
	r.DistA2B = fingerprint.Distance(a2, bOut)
	return r, nil
}

// Render prints the pairwise distances; PGMs lets callers write the images.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5 — one image, two chips, visual error patterns\n\n")
	fmt.Fprintf(&b, "image: %dx%d B/W at %.0f%% accuracy\n", r.Params.W, r.Params.H, r.Params.Accuracy*100)
	fmt.Fprintf(&b, "(a) chip A @ %.0f°C: %d corrupted pixels\n", r.Params.TempA1, r.PixelErrs[0])
	fmt.Fprintf(&b, "(b) chip A @ %.0f°C: %d corrupted pixels\n", r.Params.TempA2, r.PixelErrs[1])
	fmt.Fprintf(&b, "(c) chip B @ %.0f°C: %d corrupted pixels\n", r.Params.TempB, r.PixelErrs[2])
	fmt.Fprintf(&b, "\ndistance (a)↔(b) same chip:      %.4f\n", r.DistA1A2)
	fmt.Fprintf(&b, "distance (a)↔(c) different chip: %.4f\n", r.DistA1B)
	fmt.Fprintf(&b, "distance (b)↔(c) different chip: %.4f\n", r.DistA2B)
	b.WriteString("(paper: same-chip outputs share visible error structure; the other chip shares none)\n")
	return b.String()
}

// PGMs returns the three outputs plus the exact image as named PGM files.
func (r *Fig5Result) PGMs() map[string][]byte {
	return map[string][]byte{
		"fig5_exact.pgm":       r.Exact.EncodePGM(),
		"fig5_a_chipA_40C.pgm": r.OutA1.EncodePGM(),
		"fig5_b_chipA_60C.pgm": r.OutA2.EncodePGM(),
		"fig5_c_chipB.pgm":     r.OutB.EncodePGM(),
	}
}
