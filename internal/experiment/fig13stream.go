package experiment

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"probablecause/internal/bitset"
	"probablecause/internal/drammodel"
	"probablecause/internal/fingerprint"
)

// Fig13StreamParams parameterizes the streaming-enrollment analogue of
// Figure 13: instead of stitching published samples into page clusters,
// the observer folds each device's approximate outputs one at a time
// through a fingerprint.Accumulator — the online Algorithm 1 behind the
// /v1/enroll endpoint — and the experiment measures how many outputs it
// takes for the fingerprint estimate to stabilize (the paper reports
// convergence beginning after ~90 outputs, §7.6).
type Fig13StreamParams struct {
	// Devices is how many independent simulated chips enroll.
	Devices int
	// ErrRate is the per-cell decay probability of each approximate output.
	ErrRate float64
	// MaxObservations caps each device's stream.
	MaxObservations int
	// Quota, MinObservations, StablePatience parameterize the accumulator;
	// zero values select the paper-faithful intersection fold with
	// fingerprint.DefaultMinObservations/DefaultStablePatience.
	Quota           float64
	MinObservations int
	StablePatience  int
	Seed            uint64
	// Workers bounds the device-level fan-out; 0 runs serially. The curve
	// is identical for any worker count — devices are independent.
	Workers int
}

// DefaultFig13StreamParams enrolls 24 devices at the paper's 1 % error
// rate with the paper-faithful accumulator.
func DefaultFig13StreamParams() Fig13StreamParams {
	return Fig13StreamParams{
		Devices:         24,
		ErrRate:         0.01,
		MaxObservations: 200,
		Seed:            0xF13A,
	}
}

// SmallFig13StreamParams is a fast configuration for tests.
func SmallFig13StreamParams() Fig13StreamParams {
	p := DefaultFig13StreamParams()
	p.Devices = 6
	p.MaxObservations = 120
	return p
}

func (p Fig13StreamParams) validate() error {
	if p.Devices <= 0 || p.MaxObservations <= 0 {
		return fmt.Errorf("experiment: bad fig13stream params %+v", p)
	}
	if p.ErrRate <= 0 || p.ErrRate >= 1 {
		return fmt.Errorf("experiment: fig13stream error rate %g out of (0,1)", p.ErrRate)
	}
	return nil
}

// Fig13StreamResult is the online convergence picture: per-device
// convergence points, their cumulative curve, and the identification
// quality of the converged fingerprints.
type Fig13StreamResult struct {
	Params Fig13StreamParams
	// ConvergedAt[i] is device i's convergence observation (1-based), 0 if
	// it never stabilized within MaxObservations.
	ConvergedAt []int
	// Curve[k] is how many devices had converged within k+1 observations.
	Curve []int
	// Converged counts devices that stabilized.
	Converged int
	// MedianConverge and MeanConverge summarize the converged devices'
	// convergence points (the number the paper gives as ~90).
	MedianConverge int
	MeanConverge   float64
	// MeanWeight is the average bit count of the converged fingerprints.
	MeanWeight float64
	// SelfMatches counts converged devices whose fingerprint identifies a
	// fresh output of the same device; Misidentified counts any output
	// (converged or not) that matched the wrong device — both measure the
	// promoted database's quality.
	SelfMatches   int
	Misidentified int
}

// RunFig13Streaming measures online enrollment convergence: each device's
// outputs stream through an accumulator until the fingerprint stabilizes,
// then the converged fingerprints are registered and challenged with
// fresh outputs.
func RunFig13Streaming(p Fig13StreamParams) (*Fig13StreamResult, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	done := track("fig13stream")
	totalObs := 0
	defer func() { done(totalObs) }()
	acfg := fingerprint.AccumulatorConfig{
		Quota:           p.Quota,
		MinObservations: p.MinObservations,
		StablePatience:  p.StablePatience,
	}

	type deviceResult struct {
		convergedAt int
		obs         int
		fp          *bitset.Set
		err         error
	}
	results := make([]deviceResult, p.Devices)
	models := make([]*drammodel.Model, p.Devices)
	workers := p.Workers
	if workers <= 0 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < p.Devices; i++ {
		models[i] = drammodel.New(p.Seed + uint64(i)*0x9E3779B9)
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { wg.Done(); <-sem }()
			m := models[i]
			acc, err := fingerprint.NewAccumulator(m.PageBits, acfg)
			if err != nil {
				results[i].err = err
				return
			}
			for trial := 0; trial < p.MaxObservations && !acc.Converged(); trial++ {
				sp, err := m.PageErrors(0, p.ErrRate, uint64(trial))
				if err != nil {
					results[i].err = err
					return
				}
				if err := acc.Add(bitset.FromPositions(m.PageBits, sp)); err != nil {
					results[i].err = err
					return
				}
				results[i].obs++
			}
			results[i].convergedAt = acc.ConvergedAt()
			if acc.Converged() {
				results[i].fp = acc.Fingerprint()
			}
		}(i)
	}
	wg.Wait()

	r := &Fig13StreamResult{
		Params:      p,
		ConvergedAt: make([]int, p.Devices),
		Curve:       make([]int, p.MaxObservations),
	}
	db := fingerprint.NewDB(fingerprint.DefaultThreshold)
	var sumConv, sumWeight int
	var converged []int
	for i, dr := range results {
		if dr.err != nil {
			return nil, dr.err
		}
		totalObs += dr.obs
		r.ConvergedAt[i] = dr.convergedAt
		if dr.convergedAt > 0 {
			r.Converged++
			sumConv += dr.convergedAt
			sumWeight += dr.fp.Count()
			converged = append(converged, dr.convergedAt)
			db.Add(fmt.Sprintf("device-%d", i), dr.fp)
		}
	}
	for k := 0; k < p.MaxObservations; k++ {
		n := 0
		for _, at := range r.ConvergedAt {
			if at > 0 && at <= k+1 {
				n++
			}
		}
		r.Curve[k] = n
	}
	if r.Converged > 0 {
		sort.Ints(converged)
		r.MedianConverge = converged[len(converged)/2]
		r.MeanConverge = float64(sumConv) / float64(r.Converged)
		r.MeanWeight = float64(sumWeight) / float64(r.Converged)
	}

	// Challenge the promoted database with fresh outputs of every device.
	// A converged device must identify as itself; nobody may identify as
	// somebody else.
	challenge := uint64(p.MaxObservations) + 1
	for i := range results {
		sp, err := models[i].PageErrors(0, p.ErrRate, challenge)
		if err != nil {
			return nil, err
		}
		v := db.Decide(bitset.FromPositions(models[i].PageBits, sp))
		want := fmt.Sprintf("device-%d", i)
		switch {
		case v.OK() && v.Name == want:
			r.SelfMatches++
		case v.OK():
			r.Misidentified++
		}
	}
	return r, nil
}

// CSV renders the cumulative convergence curve as
// "observations,devices_converged".
func (r *Fig13StreamResult) CSV() string {
	var b strings.Builder
	b.WriteString("observations,devices_converged\n")
	for k, n := range r.Curve {
		fmt.Fprintf(&b, "%d,%d\n", k+1, n)
	}
	return b.String()
}

// Render prints the convergence curve and headline numbers.
func (r *Fig13StreamResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 13 (streaming) — devices converged vs outputs observed (online enrollment)\n\n")
	fmt.Fprintf(&b, "%d devices, error rate %.3f, cap %d observations\n",
		r.Params.Devices, r.Params.ErrRate, r.Params.MaxObservations)
	step := len(r.Curve) / 25
	if step < 1 {
		step = 1
	}
	for k := step - 1; k < len(r.Curve); k += step {
		bar := 0
		if r.Params.Devices > 0 {
			bar = r.Curve[k] * 50 / r.Params.Devices
		}
		fmt.Fprintf(&b, "%6d | %-50s %d\n", k+1, strings.Repeat("#", bar), r.Curve[k])
	}
	fmt.Fprintf(&b, "\n%d/%d devices converged; median %d observations (mean %.1f), mean fingerprint weight %.0f bits\n",
		r.Converged, r.Params.Devices, r.MedianConverge, r.MeanConverge, r.MeanWeight)
	fmt.Fprintf(&b, "identification: %d/%d self-matches, %d misidentified\n",
		r.SelfMatches, r.Converged, r.Misidentified)
	b.WriteString("(paper: an observer's estimate stabilizes after ~90 outputs, §7.6)\n")
	return b.String()
}
