package experiment

import (
	"context"
	"time"

	"probablecause/internal/obs"
)

// track instruments one experiment run: call it at the top of a Run*
// function and invoke the returned func when done, passing the number of
// samples (trials, outputs, chips — whatever the experiment's unit of work
// is). It records per-experiment wall time, run and sample counters, and a
// span, all keyed by the experiment's name:
//
//	done := track("fig13")
//	defer func() { done(p.Samples) }()
//
// When observability is off the returned func is a no-op and nothing is
// measured.
func track(name string) func(samples int) {
	if !obs.On() {
		return func(int) {}
	}
	t0 := time.Now()
	_, sp := obs.Start(context.Background(), "experiment."+name)
	return func(samples int) {
		elapsed := time.Since(t0)
		obs.C("experiment."+name+".runs").Inc()
		obs.C("experiment."+name+".samples").Add(int64(samples))
		obs.H("experiment."+name+".nanos").Observe(elapsed.Nanoseconds())
		sp.SetAttr("samples", samples)
		sp.End()
		obs.Debugf("experiment finished", "name", name, "samples", samples, "wall", elapsed)
	}
}
