package experiment

import (
	"bytes"
	"strings"
	"testing"
)

// TestScaleAgreesAndIsDeterministic: the small-scale run must report zero
// cross-path mismatches, classify hits and misses as constructed, and emit a
// byte-identical CSV artifact on a rerun.
func TestScaleAgreesAndIsDeterministic(t *testing.T) {
	p := SmallScaleParams()
	r1, err := RunScale(p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Mismatches != 0 {
		t.Fatalf("mismatches = %d", r1.Mismatches)
	}
	if r1.Hits != p.HitQueries || r1.Misses != p.MissQueries {
		t.Fatalf("hits/misses = %d/%d, want %d/%d", r1.Hits, r1.Misses, p.HitQueries, p.MissQueries)
	}
	// Workers must not change any verdict — only the build wall-clock.
	p.Workers = 4
	r2, err := RunScale(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1.CSV(), r2.CSV()) {
		t.Fatal("CSV artifact not deterministic across runs/worker counts")
	}
	if !strings.Contains(r1.Render(), "verdict agreement") {
		t.Fatal("render missing agreement line")
	}
}

func TestScaleRejectsBadParams(t *testing.T) {
	p := SmallScaleParams()
	p.MaxCard = p.MinCard - 1
	if _, err := RunScale(p); err == nil {
		t.Fatal("inverted card bounds accepted")
	}
}
