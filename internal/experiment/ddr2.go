package experiment

import (
	"fmt"
	"strings"

	"probablecause/internal/approx"
	"probablecause/internal/dram"
	"probablecause/internal/fingerprint"
)

// DDR2Params parameterizes the §8.1 replication: the same campaign on the
// DDR2/FPGA platform, whose volatility distribution is skewed toward higher
// volatility.
type DDR2Params struct {
	Chips    int
	Geometry dram.Geometry
	Temps    []float64
	Accs     []float64
	Seed     uint64
}

// DefaultDDR2Params uses a 64-page window of the Micron DDR2 part (the full
// 256 MB device is unnecessary: every analysis operates on page-sized
// regions).
func DefaultDDR2Params() DDR2Params {
	return DDR2Params{
		Chips:    4,
		Geometry: dram.DDR2(0).Geometry,
		Temps:    []float64{40, 50, 60},
		Accs:     []float64{0.99, 0.95, 0.90},
		Seed:     0xDD42,
	}
}

// SmallDDR2Params returns a reduced window for tests.
func SmallDDR2Params() DDR2Params {
	p := DefaultDDR2Params()
	p.Chips = 3
	p.Geometry = dram.Geometry{Rows: 128, Cols: 512, BitsPerWord: 1, DefaultStripe: 4}
	return p
}

// DDR2Result reproduces the §8.1 findings: classification works unchanged on
// DDR2, and the volatility distribution is skewed.
type DDR2Result struct {
	Params DDR2Params
	// Identification outcome across the condition grid.
	IdentifyCorrect, IdentifyTotal int
	WithinMax, BetweenMin          float64
	// BowleySkew is the quartile skewness (Q90 + Q10 − 2·Q50)/(Q90 − Q10) of
	// the observed cell failure times. Negative values mean failure times
	// bunch high with a long tail toward zero — i.e. the volatility
	// distribution is skewed toward higher volatility, the §8.1 finding.
	BowleySkew float64
	// KMBowleySkew is the same statistic for a KM41464A reference chip,
	// which the paper reports as having "no skew".
	KMBowleySkew float64
}

// RunDDR2 runs a compact uniqueness campaign on DDR2-configured chips and
// measures the retention skew.
func RunDDR2(p DDR2Params) (*DDR2Result, error) {
	if p.Chips < 2 {
		return nil, fmt.Errorf("experiment: need ≥2 DDR2 chips")
	}
	done := track("ddr2")
	defer func() { done(p.Chips) }()
	r := &DDR2Result{Params: p, WithinMax: 0, BetweenMin: 1}
	db := fingerprint.NewDB(fingerprint.DefaultThreshold)
	var fps []*fpOut
	for i := 0; i < p.Chips; i++ {
		cfg := dram.DDR2(p.Seed + uint64(i)*0x1234)
		cfg.Geometry = p.Geometry
		chip, err := dram.NewChip(cfg)
		if err != nil {
			return nil, err
		}
		mem, err := approx.New(chip, 0.99)
		if err != nil {
			return nil, err
		}
		a, e, err := mem.WorstCaseOutput()
		if err != nil {
			return nil, err
		}
		a2, _, err := mem.WorstCaseOutput()
		if err != nil {
			return nil, err
		}
		fp, err := fingerprint.Characterize(e, a, a2)
		if err != nil {
			return nil, err
		}
		db.Add(fmt.Sprintf("ddr2-%02d", i), fp)
		fps = append(fps, &fpOut{chip: i, mem: mem})
	}
	for _, f := range fps {
		for _, temp := range p.Temps {
			for _, acc := range p.Accs {
				f.mem.Chip().SetTemperature(temp)
				if err := f.mem.SetAccuracy(acc); err != nil {
					return nil, err
				}
				a, e, err := f.mem.WorstCaseOutput()
				if err != nil {
					return nil, err
				}
				es, err := fingerprint.ErrorString(a, e)
				if err != nil {
					return nil, err
				}
				for j, entry := range db.Entries() {
					d := fingerprint.Distance(es, entry.FP)
					if j == f.chip && d > r.WithinMax {
						r.WithinMax = d
					}
					if j != f.chip && d < r.BetweenMin {
						r.BetweenMin = d
					}
				}
				if _, idx, ok := db.Identify(es); ok && idx == f.chip {
					r.IdentifyCorrect++
				}
				r.IdentifyTotal++
			}
		}
	}

	// Skew of the failure-time distribution, measured the way the platform
	// would: write worst-case data once and probe the decay curve.
	skewCfg := dram.DDR2(p.Seed)
	skewCfg.Geometry = p.Geometry
	skewChip, err := dram.NewChip(skewCfg)
	if err != nil {
		return nil, err
	}
	r.BowleySkew, err = bowleySkew(skewChip)
	if err != nil {
		return nil, err
	}
	kmCfg := dram.KM41464A(p.Seed)
	kmCfg.Geometry = dram.Geometry{Rows: 64, Cols: 256, BitsPerWord: 4, DefaultStripe: 2}
	kmChip, err := dram.NewChip(kmCfg)
	if err != nil {
		return nil, err
	}
	r.KMBowleySkew, err = bowleySkew(kmChip)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// bowleySkew returns the quartile skewness of the chip's cell failure times
// at the 10/50/90 % quantiles.
func bowleySkew(chip *dram.Chip) (float64, error) {
	if err := chip.Write(0, chip.WorstCaseData()); err != nil {
		return 0, err
	}
	bits := chip.Geometry().Bits()
	q10 := bisectTime(chip, bits/10)
	q50 := bisectTime(chip, bits/2)
	q90 := bisectTime(chip, bits*9/10)
	if q90 == q10 {
		return 0, fmt.Errorf("experiment: degenerate failure-time quantiles")
	}
	return (q90 + q10 - 2*q50) / (q90 - q10), nil
}

type fpOut struct {
	chip int
	mem  *approx.Memory
}

// bisectTime finds the smallest interval at which at least target charged
// cells have decayed.
func bisectTime(chip *dram.Chip, target int) float64 {
	lo, hi := 0.0, 1.0
	for chip.DecayCountWithin(hi) < target {
		hi *= 2
		if hi > 1e9 {
			return hi
		}
	}
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		if chip.DecayCountWithin(mid) >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// Render prints the §8.1 replication summary.
func (r *DDR2Result) Render() string {
	var b strings.Builder
	b.WriteString("§8.1 — DDR2 platform replication\n\n")
	fmt.Fprintf(&b, "identification: %d/%d correct (paper: unchanged from the older DRAM)\n",
		r.IdentifyCorrect, r.IdentifyTotal)
	fmt.Fprintf(&b, "max within-class distance: %.4g\n", r.WithinMax)
	fmt.Fprintf(&b, "min between-class distance: %.4g\n", r.BetweenMin)
	fmt.Fprintf(&b, "failure-time Bowley skewness: DDR2 %.3f vs KM41464A %.3f\n", r.BowleySkew, r.KMBowleySkew)
	b.WriteString("(paper: DDR2 volatility skewed toward higher volatility — negative skew — while the\n")
	b.WriteString(" older DRAM had no skew; classification and clustering are unaffected)\n")
	return b.String()
}
