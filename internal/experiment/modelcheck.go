package experiment

import (
	"fmt"
	"strings"

	"probablecause/internal/approx"
	"probablecause/internal/bitset"
	"probablecause/internal/dram"
	"probablecause/internal/drammodel"
	"probablecause/internal/fingerprint"
)

// ModelCheckParams parameterizes the model-validation experiment: the paper
// derives its mathematical model (§7.6) from platform measurements; here we
// verify that our two DRAM layers — the cell-level simulator and the
// stateless mathematical model — exhibit the same statistical signatures.
type ModelCheckParams struct {
	Geometry dram.Geometry
	Trials   int
	Seed     uint64
}

// DefaultModelCheckParams compares the layers on one 8 KB device each.
func DefaultModelCheckParams() ModelCheckParams {
	return ModelCheckParams{
		Geometry: dram.Geometry{Rows: 64, Cols: 256, BitsPerWord: 4, DefaultStripe: 2},
		Trials:   10,
		Seed:     0x30DE,
	}
}

// ModelCheckResult holds the per-layer statistics side by side.
type ModelCheckResult struct {
	Params ModelCheckParams
	// Repeatability: fraction of ever-failing bits failing in every trial.
	SimRepeatability, ModelRepeatability float64
	// SubsetFraction: order-of-failure subset fraction from 1 % to 5 % error.
	SimSubsetFraction, ModelSubsetFraction float64
	// CrossOverlap: |errors(deviceA) ∩ errors(deviceB)| / |errors| between
	// two distinct devices at 1 % error.
	SimCrossOverlap, ModelCrossOverlap float64
}

// RunModelCheck measures both layers.
func RunModelCheck(p ModelCheckParams) (*ModelCheckResult, error) {
	if p.Trials < 2 {
		return nil, fmt.Errorf("experiment: need ≥2 trials")
	}
	r := &ModelCheckResult{Params: p}

	// --- Cell-level simulator ---
	simErrors := func(seed uint64, accuracy float64, trials int) ([]*bitset.Set, error) {
		cfg := dram.KM41464A(seed)
		cfg.Geometry = p.Geometry
		chip, err := dram.NewChip(cfg)
		if err != nil {
			return nil, err
		}
		mem, err := approx.New(chip, accuracy)
		if err != nil {
			return nil, err
		}
		out := make([]*bitset.Set, trials)
		for t := range out {
			a, e, err := mem.WorstCaseOutput()
			if err != nil {
				return nil, err
			}
			if out[t], err = fingerprint.ErrorString(a, e); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	simA99, err := simErrors(p.Seed, 0.99, p.Trials)
	if err != nil {
		return nil, err
	}
	r.SimRepeatability = repeatabilityDense(simA99)
	simA95, err := simErrors(p.Seed, 0.95, 1)
	if err != nil {
		return nil, err
	}
	r.SimSubsetFraction = 1 - float64(simA99[0].AndNotCount(simA95[0]))/float64(simA99[0].Count())
	simB99, err := simErrors(p.Seed+1, 0.99, 1)
	if err != nil {
		return nil, err
	}
	r.SimCrossOverlap = float64(simA99[0].AndCount(simB99[0])) / float64(simA99[0].Count())

	// --- Mathematical model (same page size as the simulated chip) ---
	mA := drammodel.New(p.Seed)
	mA.PageBits = p.Geometry.Bits()
	mB := drammodel.New(p.Seed + 1)
	mB.PageBits = p.Geometry.Bits()
	modelTrials := make([]bitset.Sparse, p.Trials)
	for t := range modelTrials {
		es, err := mA.PageErrors(0, 0.01, uint64(t))
		if err != nil {
			return nil, err
		}
		modelTrials[t] = es
	}
	r.ModelRepeatability = repeatabilitySparse(modelTrials)
	m95, err := mA.PageErrors(0, 0.05, 0)
	if err != nil {
		return nil, err
	}
	r.ModelSubsetFraction = 1 - float64(modelTrials[0].DiffCount(m95))/float64(modelTrials[0].Card())
	b99, err := mB.PageErrors(0, 0.01, 0)
	if err != nil {
		return nil, err
	}
	r.ModelCrossOverlap = float64(modelTrials[0].IntersectCount(b99)) / float64(modelTrials[0].Card())
	return r, nil
}

func repeatabilityDense(sets []*bitset.Set) float64 {
	inter := sets[0].Clone()
	union := sets[0].Clone()
	for _, s := range sets[1:] {
		inter.And(s)
		union.Or(s)
	}
	if union.Count() == 0 {
		return 0
	}
	return float64(inter.Count()) / float64(union.Count())
}

func repeatabilitySparse(sets []bitset.Sparse) float64 {
	inter, union := sets[0], sets[0]
	for _, s := range sets[1:] {
		inter = inter.Intersect(s)
		union = union.Union(s)
	}
	if union.Card() == 0 {
		return 0
	}
	return float64(inter.Card()) / float64(union.Card())
}

// Render prints the layer comparison.
func (r *ModelCheckResult) Render() string {
	var b strings.Builder
	b.WriteString("Model validation — cell-level simulator vs mathematical model\n\n")
	fmt.Fprintf(&b, "%-36s %-14s %-14s\n", "statistic", "simulator", "model")
	fmt.Fprintf(&b, "%-36s %-14.4f %-14.4f\n", "repeatability (∩/∪ over trials)", r.SimRepeatability, r.ModelRepeatability)
	fmt.Fprintf(&b, "%-36s %-14.4f %-14.4f\n", "subset fraction 1%→5% error", r.SimSubsetFraction, r.ModelSubsetFraction)
	fmt.Fprintf(&b, "%-36s %-14.4f %-14.4f\n", "cross-device error overlap", r.SimCrossOverlap, r.ModelCrossOverlap)
	b.WriteString("\n(the paper distills platform measurements into its model the same way;\n")
	b.WriteString(" both layers must agree on the signatures the attack relies on)\n")
	return b.String()
}
