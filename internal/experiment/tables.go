package experiment

import (
	"fmt"
	"strings"

	"probablecause/internal/analysis"
	"probablecause/internal/dram"
)

// Table1Params pins the analytical model's parameters: one page of memory at
// 99 % accuracy with a 10 % noise threshold.
type Table1Params struct {
	M int // page size in bits
	A int // tolerated error bits
	T int // matching threshold in bits
}

// DefaultTable1Params returns the paper's header values: M = 32768, A = 1 %
// of M = 328, T = 10 % of A = 32.
func DefaultTable1Params() Table1Params {
	return Table1Params{M: dram.PageBits, A: 328, T: 32}
}

// Table1Result holds the rows of Table 1 alongside the paper's printed
// values. Our numbers are exact big-integer computations; the paper's
// entropy row corresponds to T = 33 (see AltEntropyBits), so we report both.
type Table1Result struct {
	Params Table1Params

	MaxUnique          string // C(M, A), paper "Max possible fingerprints"
	DistinguishableLow string // Eq. 2 lower bound, paper "Max unique fingerprints ≥"
	MismatchHigh       string // Eq. 3 upper bound, paper "Chance of mismatching ≤"
	EntropyBits        float64
	AltEntropyBits     float64 // with T = ceil(10%·A) = 33, the paper's printed 2423

	PaperMaxUnique    string
	PaperDistLow      string
	PaperMismatchHigh string
	PaperEntropyBits  float64
}

// RunTable1 evaluates Equations 1–4 at the Table 1 parameters.
func RunTable1(p Table1Params) (*Table1Result, error) {
	if p.M <= 0 || p.A <= p.T || p.T < 0 {
		return nil, fmt.Errorf("experiment: bad table-1 parameters %+v", p)
	}
	done := track("table1")
	defer func() { done(1) }()
	s := analysis.FingerprintSpace{M: p.M, A: p.A, T: p.T}
	lower, _ := s.DistinguishableBounds()
	_, upper := s.MismatchBounds()
	alt := analysis.FingerprintSpace{M: p.M, A: p.A, T: p.T + 1}
	return &Table1Result{
		Params:             p,
		MaxUnique:          analysis.Sci(s.MaxUnique(), 2),
		DistinguishableLow: lower.Text('e', 2),
		MismatchHigh:       upper.Text('e', 2),
		EntropyBits:        s.TotalEntropyBits(),
		AltEntropyBits:     alt.TotalEntropyBits(),
		PaperMaxUnique:     "8.70e+795",
		PaperDistLow:       "1.07e+590",
		PaperMismatchHigh:  "9.29e-591",
		PaperEntropyBits:   2423,
	}, nil
}

// Render prints Table 1 with a paper-vs-exact comparison column.
func (r *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 1 — fingerprint space for one page of memory\n")
	fmt.Fprintf(&b, "M = %d bits, A = %d error bits (1%%), T = %d bits (10%% of A)\n\n", r.Params.M, r.Params.A, r.Params.T)
	fmt.Fprintf(&b, "%-32s %-14s %-14s\n", "quantity", "exact (ours)", "paper")
	fmt.Fprintf(&b, "%-32s %-14s %-14s\n", "max possible fingerprints", r.MaxUnique, r.PaperMaxUnique)
	fmt.Fprintf(&b, "%-32s %-14s %-14s\n", "max unique fingerprints ≥", r.DistinguishableLow, r.PaperDistLow)
	fmt.Fprintf(&b, "%-32s %-14s %-14s\n", "chance of mismatching ≤", r.MismatchHigh, r.PaperMismatchHigh)
	fmt.Fprintf(&b, "%-32s %-14.1f %-14.0f\n", "total entropy (bits)", r.EntropyBits, r.PaperEntropyBits)
	fmt.Fprintf(&b, "\n(with T = %d, entropy is %.1f bits — the paper's printed 2423 matches T = ceil(10%%·A);\n",
		r.Params.T+1, r.AltEntropyBits)
	b.WriteString(" exponents agree with the paper within a few decades; the conclusion —\n")
	b.WriteString(" a fingerprint space astronomically larger than any device population — is unchanged)\n")
	return b.String()
}

// Table2Params sweeps the accuracy levels of Table 2.
type Table2Params struct {
	M          int
	Accuracies []float64
}

// DefaultTable2Params returns the paper's sweep.
func DefaultTable2Params() Table2Params {
	return Table2Params{M: dram.PageBits, Accuracies: []float64{0.99, 0.95, 0.90}}
}

// Table2Row is one accuracy level's mismatch bound.
type Table2Row struct {
	Accuracy     float64
	A, T         int
	MismatchHigh string
	Log10        float64
}

// Table2Result holds the sweep with the paper's printed bounds.
type Table2Result struct {
	Params Table2Params
	Rows   []Table2Row
	Paper  []string
}

// RunTable2 evaluates the mismatch bound at every accuracy level.
func RunTable2(p Table2Params) (*Table2Result, error) {
	if p.M <= 0 || len(p.Accuracies) == 0 {
		return nil, fmt.Errorf("experiment: bad table-2 parameters %+v", p)
	}
	done := track("table2")
	defer func() { done(len(p.Accuracies)) }()
	r := &Table2Result{Params: p, Paper: []string{"9.29e-591", "8.78e-2028", "4.76e-3232"}}
	for _, acc := range p.Accuracies {
		a := int(float64(p.M)*(1-acc) + 0.5)
		t := a / 10
		s := analysis.FingerprintSpace{M: p.M, A: a, T: t}
		_, upper := s.MismatchBounds()
		r.Rows = append(r.Rows, Table2Row{
			Accuracy:     acc,
			A:            a,
			T:            t,
			MismatchHigh: upper.Text('e', 2),
			Log10:        analysis.Log10Float(upper),
		})
	}
	return r, nil
}

// Render prints Table 2 with the paper comparison.
func (r *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 2 — chance of mismatching two pages vs accuracy\n\n")
	fmt.Fprintf(&b, "%-10s %-8s %-6s %-14s %-14s\n", "accuracy", "A", "T", "exact ≤", "paper ≤")
	for i, row := range r.Rows {
		paper := ""
		if i < len(r.Paper) {
			paper = r.Paper[i]
		}
		fmt.Fprintf(&b, "%-10.0f%% %-7d %-6d %-14s %-14s\n", row.Accuracy*100, row.A, row.T, row.MismatchHigh, paper)
	}
	b.WriteString("\n(decreasing accuracy causes an exponential increase in fingerprint state space)\n")
	return b.String()
}
