package experiment

import (
	"reflect"
	"strings"
	"testing"
)

func TestFig13StreamingConvergence(t *testing.T) {
	p := SmallFig13StreamParams()
	p.Workers = 4
	r, err := RunFig13Streaming(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Converged != p.Devices {
		t.Fatalf("%d/%d devices converged within %d observations", r.Converged, p.Devices, p.MaxObservations)
	}
	if r.MedianConverge <= 0 || r.MedianConverge > p.MaxObservations {
		t.Fatalf("median convergence %d out of range", r.MedianConverge)
	}
	// Every converged fingerprint must identify its own fresh output and
	// nobody else's — the enrollment database is useless otherwise.
	if r.SelfMatches != r.Converged || r.Misidentified != 0 {
		t.Fatalf("identification degraded: %d/%d self-matches, %d misidentified",
			r.SelfMatches, r.Converged, r.Misidentified)
	}
	// The cumulative curve is monotone and ends at the converged count.
	for k := 1; k < len(r.Curve); k++ {
		if r.Curve[k] < r.Curve[k-1] {
			t.Fatalf("curve not monotone at %d: %d < %d", k, r.Curve[k], r.Curve[k-1])
		}
	}
	if r.Curve[len(r.Curve)-1] != r.Converged {
		t.Fatalf("curve ends at %d, converged %d", r.Curve[len(r.Curve)-1], r.Converged)
	}
	if !strings.Contains(r.CSV(), "observations,devices_converged") || r.Render() == "" {
		t.Fatal("CSV/Render output malformed")
	}
}

// TestFig13StreamingDeterministic: the curve is a pure function of the
// parameters, whatever the worker count — the property the enrollment
// pipeline's crash recovery leans on.
func TestFig13StreamingDeterministic(t *testing.T) {
	p := SmallFig13StreamParams()
	p.Devices = 3
	a, err := RunFig13Streaming(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Workers = 8
	b, err := RunFig13Streaming(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.ConvergedAt, b.ConvergedAt) || !reflect.DeepEqual(a.Curve, b.Curve) {
		t.Fatalf("worker count changed the curve: %v vs %v", a.ConvergedAt, b.ConvergedAt)
	}
}
