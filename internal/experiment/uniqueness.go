package experiment

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"probablecause/internal/analysis"
	"probablecause/internal/fingerprint"
	"probablecause/internal/pool"
)

// Fig7Result reproduces Figure 7: the histogram of within-class (same chip)
// and between-class (other chips) fingerprint distances over every
// (output, fingerprint) pairing, plus the identification outcome.
type Fig7Result struct {
	Within, Between []float64
	WithinSummary   analysis.Summary
	BetweenSummary  analysis.Summary
	// Separation is min(between) / max(within) — the paper reports two
	// orders of magnitude. +Inf when every within-class distance is 0.
	Separation float64
	// IdentifyCorrect / IdentifyTotal summarize Algorithm 2 over all
	// outputs against the fingerprint database (the paper reports 100 %).
	IdentifyCorrect, IdentifyTotal int
}

// RunFig7 computes distances and identification results over a corpus.
// Outputs fan across a bounded worker pool (workers ≤ 1 runs inline); every
// worker writes to its output's own slot and the fold below runs serially in
// output order, so the result is identical for any worker count.
func RunFig7(c *Corpus, workers int) *Fig7Result {
	done := track("fig7")
	r := &Fig7Result{}
	defer func() { done(r.IdentifyTotal) }()
	db := fingerprint.NewDB(fingerprint.DefaultThreshold)
	for i, fp := range c.Fingerprints {
		db.Add(fmt.Sprintf("chip%02d", i), fp)
	}
	type outcome struct {
		within, between []float64
		correct         bool
	}
	slots := make([]outcome, len(c.Outputs))
	pool.Map(workers, len(c.Outputs), func(k int) {
		out := c.Outputs[k]
		o := &slots[k]
		for i, fp := range c.Fingerprints {
			d := fingerprint.Distance(out.Errors, fp)
			if i == out.Chip {
				o.within = append(o.within, d)
			} else {
				o.between = append(o.between, d)
			}
		}
		_, idx, ok := db.Identify(out.Errors)
		o.correct = ok && idx == out.Chip
	})
	for _, o := range slots {
		r.Within = append(r.Within, o.within...)
		r.Between = append(r.Between, o.between...)
		if o.correct {
			r.IdentifyCorrect++
		}
		r.IdentifyTotal++
	}
	r.WithinSummary = analysis.Summarize(r.Within)
	r.BetweenSummary = analysis.Summarize(r.Between)
	if r.WithinSummary.Max > 0 {
		r.Separation = r.BetweenSummary.Min / r.WithinSummary.Max
	} else {
		r.Separation = inf()
	}
	return r
}

func inf() float64 { return math.Inf(1) }

// Render prints the Figure 7 histogram and summary rows.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7 — within-class vs between-class fingerprint distance\n\n")
	fmt.Fprintf(&b, "within-class  (%s)\n", r.WithinSummary)
	hw := analysis.NewHistogram(0, 0.01, 20)
	hw.AddAll(r.Within)
	b.WriteString(hw.Render(50))
	fmt.Fprintf(&b, "\nbetween-class (%s)\n", r.BetweenSummary)
	hb := analysis.NewHistogram(0, 1, 50)
	hb.AddAll(r.Between)
	b.WriteString(hb.Render(50))
	fmt.Fprintf(&b, "\nseparation min(between)/max(within) = %.3g (paper: ~2 orders of magnitude)\n", r.Separation)
	fmt.Fprintf(&b, "identification: %d/%d correct (paper: 100%%)\n", r.IdentifyCorrect, r.IdentifyTotal)
	return b.String()
}

// GroupedDistances holds between-class distances partitioned by a condition
// value, as Figures 9 and 11 plot.
type GroupedDistances struct {
	Label     string
	Keys      []float64
	Groups    map[float64][]float64
	Summaries map[float64]analysis.Summary
}

// Fig9Result reproduces Figure 9: between-class distance grouped by
// temperature — the paper's claim is that temperature has no noticeable
// effect.
type Fig9Result struct {
	GroupedDistances
	// MeanSpread is (max group mean − min group mean) / overall mean; the
	// temperature-insensitivity claim is that this is small.
	MeanSpread float64
}

// RunFig9 groups the corpus's between-class distances by temperature.
func RunFig9(c *Corpus, workers int) *Fig9Result {
	done := track("fig9")
	r := &Fig9Result{GroupedDistances: groupBetween(c, "temperature", func(o Output) float64 { return o.TempC }, workers)}
	r.MeanSpread = meanSpread(r.GroupedDistances)
	done(len(c.Outputs))
	return r
}

// Fig11Result reproduces Figure 11: between-class distance grouped by
// accuracy. Lower accuracy means more error bits, more accidental overlap,
// and smaller between-class distances — but still far above within-class.
type Fig11Result struct {
	GroupedDistances
	// MeansByAccuracy lists (accuracy, mean distance) with accuracy
	// ascending; the mean must increase with accuracy.
	MeansMonotone bool
	// MinBetween is the smallest between-class distance across all groups.
	MinBetween float64
}

// RunFig11 groups the corpus's between-class distances by accuracy level.
func RunFig11(c *Corpus, workers int) *Fig11Result {
	done := track("fig11")
	defer func() { done(len(c.Outputs)) }()
	r := &Fig11Result{GroupedDistances: groupBetween(c, "accuracy", func(o Output) float64 { return o.Accuracy }, workers)}
	r.MeansMonotone = true
	r.MinBetween = inf()
	prev := -1.0
	for _, k := range r.Keys {
		s := r.Summaries[k]
		if s.Mean < prev {
			r.MeansMonotone = false
		}
		prev = s.Mean
		if s.Min < r.MinBetween {
			r.MinBetween = s.Min
		}
	}
	return r
}

func groupBetween(c *Corpus, label string, key func(Output) float64, workers int) GroupedDistances {
	g := GroupedDistances{Label: label, Groups: map[float64][]float64{}, Summaries: map[float64]analysis.Summary{}}
	// Distance rows compute in parallel into per-output slots; grouping then
	// folds them serially in output order, matching the serial loop exactly.
	rows := make([][]float64, len(c.Outputs))
	pool.Map(workers, len(c.Outputs), func(j int) {
		out := c.Outputs[j]
		row := make([]float64, 0, len(c.Fingerprints)-1)
		for i, fp := range c.Fingerprints {
			if i == out.Chip {
				continue
			}
			row = append(row, fingerprint.Distance(out.Errors, fp))
		}
		rows[j] = row
	})
	for j, out := range c.Outputs {
		k := key(out)
		g.Groups[k] = append(g.Groups[k], rows[j]...)
	}
	for k := range g.Groups {
		g.Keys = append(g.Keys, k)
		g.Summaries[k] = analysis.Summarize(g.Groups[k])
	}
	sort.Float64s(g.Keys)
	return g
}

func meanSpread(g GroupedDistances) float64 {
	var means []float64
	for _, k := range g.Keys {
		means = append(means, g.Summaries[k].Mean)
	}
	s := analysis.Summarize(means)
	if s.Mean == 0 {
		return 0
	}
	return (s.Max - s.Min) / s.Mean
}

func renderGroups(b *strings.Builder, g GroupedDistances) {
	for _, k := range g.Keys {
		fmt.Fprintf(b, "%s = %g: %s\n", g.Label, k, g.Summaries[k])
		h := analysis.NewHistogram(0.5, 1, 25)
		h.AddAll(g.Groups[k])
		b.WriteString(h.Render(40))
		b.WriteString("\n")
	}
}

// Render prints the Figure 9 grouped histograms.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9 — between-class distance grouped by temperature\n\n")
	renderGroups(&b, r.GroupedDistances)
	fmt.Fprintf(&b, "relative spread of group means = %.3g (paper: no noticeable effect)\n", r.MeanSpread)
	return b.String()
}

// Render prints the Figure 11 grouped histograms.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 11 — between-class distance grouped by accuracy\n\n")
	renderGroups(&b, r.GroupedDistances)
	fmt.Fprintf(&b, "mean distance increases with accuracy: %v (paper: yes)\n", r.MeansMonotone)
	fmt.Fprintf(&b, "min between-class distance = %.3g (paper: still two orders above within-class)\n", r.MinBetween)
	return b.String()
}

// CSV renders the Figure 7 distance distributions as
// "class,distance" rows suitable for external plotting.
func (r *Fig7Result) CSV() string {
	var b strings.Builder
	b.WriteString("class,distance\n")
	for _, d := range r.Within {
		fmt.Fprintf(&b, "within,%.6g\n", d)
	}
	for _, d := range r.Between {
		fmt.Fprintf(&b, "between,%.6g\n", d)
	}
	return b.String()
}

// CSV renders grouped distances as "group,distance" rows.
func (g GroupedDistances) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s,distance\n", g.Label)
	for _, k := range g.Keys {
		for _, d := range g.Groups[k] {
			fmt.Fprintf(&b, "%g,%.6g\n", k, d)
		}
	}
	return b.String()
}
