package experiment

import (
	"fmt"
	"strings"

	"probablecause/internal/approx"
	"probablecause/internal/dram"
	"probablecause/internal/fingerprint"
	"probablecause/internal/workload"
)

// AppsParams parameterizes the application-independence experiment: the
// paper's intro motivates approximation with vision, machine learning, and
// sensor workloads; this run shows one memory fingerprint deanonymizes
// outputs from all three application classes.
type AppsParams struct {
	Chips    int
	Geometry dram.Geometry
	Accuracy float64
	Seed     uint64
}

// DefaultAppsParams runs the three application classes over a fleet.
func DefaultAppsParams() AppsParams {
	return AppsParams{
		Chips:    4,
		Geometry: dram.KM41464A(0).Geometry,
		Accuracy: 0.95,
		Seed:     0xAB05,
	}
}

// SmallAppsParams returns a reduced fleet for tests.
func SmallAppsParams() AppsParams {
	p := DefaultAppsParams()
	p.Chips = 3
	p.Geometry = dram.Geometry{Rows: 64, Cols: 256, BitsPerWord: 4, DefaultStripe: 2}
	return p
}

// AppsResult holds per-application identification outcomes.
type AppsResult struct {
	Params AppsParams
	// Identified[app] over Total outputs per application class.
	VisionIdentified, MLIdentified, SensorIdentified, Total int
}

// RunApps characterizes each chip once, then identifies one output per
// application class per chip.
func RunApps(p AppsParams) (*AppsResult, error) {
	if p.Chips < 2 {
		return nil, fmt.Errorf("experiment: need ≥2 chips")
	}
	r := &AppsResult{Params: p}
	db := fingerprint.NewDB(fingerprint.DefaultThreshold)
	var mems []*approx.Memory
	for i := 0; i < p.Chips; i++ {
		cfg := dram.KM41464A(p.Seed + uint64(i)*0x57)
		cfg.Geometry = p.Geometry
		chip, err := dram.NewChip(cfg)
		if err != nil {
			return nil, err
		}
		mem, err := approx.New(chip, p.Accuracy)
		if err != nil {
			return nil, err
		}
		a1, exact, err := mem.WorstCaseOutput()
		if err != nil {
			return nil, err
		}
		a2, _, err := mem.WorstCaseOutput()
		if err != nil {
			return nil, err
		}
		fp, err := fingerprint.Characterize(exact, a1, a2)
		if err != nil {
			return nil, err
		}
		db.Add(fmt.Sprintf("chip%02d", i), fp)
		mems = append(mems, mem)
	}

	// App outputs are smaller than the chip; they live at address 0, so pad
	// both sides to chip size to compare against the whole-chip fingerprint
	// (the padding XORs to zero and adds no error bits).
	chipBytes := p.Geometry.Bytes()
	identify := func(i int, out, exact []byte) (bool, error) {
		pad := func(d []byte) []byte {
			full := make([]byte, chipBytes)
			copy(full, d)
			return full
		}
		es, err := fingerprint.ErrorString(pad(out), pad(exact))
		if err != nil {
			return false, err
		}
		_, idx, ok := db.Identify(es)
		return ok && idx == i, nil
	}

	for i, mem := range mems {
		r.Total++

		// Vision: edge detection.
		img := workload.NewBinaryImageJob(80, 80, p.Seed+uint64(i), 64)
		imgOut, err := img.RunApprox(mem, 0)
		if err != nil {
			return nil, err
		}
		if ok, err := identify(i, imgOut.Bytes(), img.Exact.Bytes()); err != nil {
			return nil, err
		} else if ok {
			r.VisionIdentified++
		}

		// Machine learning: k-means.
		km, err := workload.NewKMeansJob(4000, 4, p.Seed+uint64(i))
		if err != nil {
			return nil, err
		}
		kmOut, err := km.RunApprox(mem, 0)
		if err != nil {
			return nil, err
		}
		if ok, err := identify(i, kmOut, km.Exact); err != nil {
			return nil, err
		} else if ok {
			r.MLIdentified++
		}

		// Sensor network: windowed aggregation.
		sj, err := workload.NewSensorJob(48000, 1200, p.Seed+uint64(i))
		if err != nil {
			return nil, err
		}
		sOut, err := sj.RunApprox(mem, 0)
		if err != nil {
			return nil, err
		}
		if ok, err := identify(i, sOut, sj.Exact); err != nil {
			return nil, err
		} else if ok {
			r.SensorIdentified++
		}
	}
	return r, nil
}

// Render prints the per-application identification table.
func (r *AppsResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension — fingerprinting is application independent\n\n")
	fmt.Fprintf(&b, "one worst-case fingerprint per chip; one output per application class\n\n")
	fmt.Fprintf(&b, "%-28s %s\n", "application class", "identified")
	fmt.Fprintf(&b, "%-28s %d/%d\n", "vision (edge detection)", r.VisionIdentified, r.Total)
	fmt.Fprintf(&b, "%-28s %d/%d\n", "machine learning (k-means)", r.MLIdentified, r.Total)
	fmt.Fprintf(&b, "%-28s %d/%d\n", "sensor aggregation", r.SensorIdentified, r.Total)
	b.WriteString("\n(the fingerprint lives in the memory, not the application: any workload whose\n")
	b.WriteString(" output transits approximate DRAM leaks the same identity — §9.1's point that\n")
	b.WriteString(" Probable Cause applies to \"any output stored in main memory\")\n")
	return b.String()
}
