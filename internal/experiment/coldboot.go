package experiment

import (
	"fmt"
	"strings"

	"probablecause/internal/bitset"
	"probablecause/internal/dram"
	"probablecause/internal/workload"
)

// ColdBootParams parameterizes the §9.1 related-work demonstration: the same
// decay physics behind Probable Cause powers the cold-boot attack (Halderman
// et al., cited as [9]) — cooling a powered-off DRAM stretches retention so
// secrets survive transport to the attacker's reader.
type ColdBootParams struct {
	Geometry dram.Geometry
	KeyBytes int
	// OffTimes are the unpowered intervals to evaluate (seconds).
	OffTimes []float64
	// Temps are the transport temperatures (°C); the attack sprays the
	// modules with coolant, hence the sub-zero entries.
	Temps []float64
	Seed  uint64
}

// DefaultColdBootParams sweeps transport temperatures from coolant-sprayed
// to warm.
func DefaultColdBootParams() ColdBootParams {
	return ColdBootParams{
		Geometry: dram.Geometry{Rows: 64, Cols: 256, BitsPerWord: 4, DefaultStripe: 2},
		KeyBytes: 4096,
		OffTimes: []float64{1, 10, 60, 300},
		Temps:    []float64{-20, 20, 40},
		Seed:     0xC01D,
	}
}

// ColdBootCell is the recovered fraction at one (temperature, off-time).
type ColdBootCell struct {
	TempC, OffTime float64
	// Recovered is the fraction of charged key bits that survived.
	Recovered float64
}

// ColdBootResult is the remanence grid.
type ColdBootResult struct {
	Params ColdBootParams
	Cells  []ColdBootCell
}

// RunColdBoot writes a key, cuts power (no refresh) for each off-time at
// each transport temperature, and measures how much of the key survives.
func RunColdBoot(p ColdBootParams) (*ColdBootResult, error) {
	if p.KeyBytes <= 0 || p.KeyBytes > p.Geometry.Bytes() {
		return nil, fmt.Errorf("experiment: key of %d bytes outside chip", p.KeyBytes)
	}
	if len(p.OffTimes) == 0 || len(p.Temps) == 0 {
		return nil, fmt.Errorf("experiment: empty sweep")
	}
	r := &ColdBootResult{Params: p}
	key := workload.Random(p.Seed, p.KeyBytes)
	for _, temp := range p.Temps {
		for _, off := range p.OffTimes {
			cfg := dram.KM41464A(p.Seed)
			cfg.Geometry = p.Geometry
			chip, err := dram.NewChip(cfg)
			if err != nil {
				return nil, err
			}
			chip.SetTemperature(temp)
			if err := chip.Write(0, key); err != nil {
				return nil, err
			}
			charged := chip.ChargedCount()
			chip.Elapse(off)
			got, err := chip.Read(0, p.KeyBytes)
			if err != nil {
				return nil, err
			}
			lost := bitset.FromBytes(got).XorCount(bitset.FromBytes(key))
			r.Cells = append(r.Cells, ColdBootCell{
				TempC:   temp,
				OffTime: off,
				// Only charged cells can decay; uncharged bits always
				// "survive" trivially.
				Recovered: 1 - float64(lost)/float64(charged),
			})
		}
	}
	return r, nil
}

// Render prints the remanence grid.
func (r *ColdBootResult) Render() string {
	var b strings.Builder
	b.WriteString("§9.1 related work — cold-boot remanence on the same physics\n\n")
	fmt.Fprintf(&b, "%-10s", "off-time")
	for _, t := range r.Params.Temps {
		fmt.Fprintf(&b, " %8.0f°C", t)
	}
	b.WriteString("\n")
	for i, off := range r.Params.OffTimes {
		fmt.Fprintf(&b, "%-10s", fmt.Sprintf("%gs", off))
		for j := range r.Params.Temps {
			cell := r.Cells[j*len(r.Params.OffTimes)+i]
			fmt.Fprintf(&b, " %9.1f%%", cell.Recovered*100)
		}
		b.WriteString("\n")
	}
	b.WriteString("\n(cooling the module stretches retention — the cold-boot attack [9] and\n")
	b.WriteString(" Probable Cause exploit the same charge-decay physics in opposite directions)\n")
	return b.String()
}
