package experiment

import (
	"fmt"
	"strings"

	"probablecause/internal/analysis"
	"probablecause/internal/bitset"
	"probablecause/internal/drammodel"
	"probablecause/internal/fingerprint"
	"probablecause/internal/pool"
)

// CollisionParams parameterizes the Monte-Carlo companion to §7.1: the
// analytical model says two independent page fingerprints mismatch with
// probability below 10⁻⁵⁹⁰; this experiment hammers the simulator for
// empirical evidence that the simulated fingerprint space behaves like the
// model (no collisions, and a pairwise-distance floor far above the
// threshold).
type CollisionParams struct {
	Fingerprints int
	PageBits     int
	ErrRate      float64
	Threshold    float64
	Seed         uint64
	// Workers bounds the pool used for fingerprint generation and the
	// pairwise-distance sweep; ≤ 1 runs inline. Any value produces the same
	// result: every trial seeds its own model, and the distance statistics
	// fold per-row partials serially in row order.
	Workers int
}

// DefaultCollisionParams samples 1000 independent page fingerprints —
// about half a million pairs.
func DefaultCollisionParams() CollisionParams {
	return CollisionParams{
		Fingerprints: 1000,
		PageBits:     32768,
		ErrRate:      0.01,
		Threshold:    fingerprint.DefaultThreshold,
		Seed:         0xC011,
	}
}

// SmallCollisionParams returns a faster configuration for tests.
func SmallCollisionParams() CollisionParams {
	p := DefaultCollisionParams()
	p.Fingerprints = 200
	return p
}

// CollisionResult reports the empirical fingerprint-space statistics.
type CollisionResult struct {
	Params CollisionParams
	Pairs  int
	// Collisions counts pairs under the matching threshold (expected: 0).
	Collisions int
	// MinDistance is the closest pair observed.
	MinDistance float64
	// MeanDistance across all pairs.
	MeanDistance float64
	// Clopper-style 95 % upper bound on the collision probability given the
	// observed zero (or few) collisions: ~3/Pairs for zero collisions.
	EmpiricalBound float64
	// AnalyticLog10 is the model's log₁₀ upper bound for comparison.
	AnalyticLog10 float64
}

// RunCollisions samples independent fingerprints and measures all pairwise
// distances.
func RunCollisions(p CollisionParams) (*CollisionResult, error) {
	if p.Fingerprints < 2 {
		return nil, fmt.Errorf("experiment: need ≥2 fingerprints")
	}
	// Each trial seeds a fresh model, so generation is embarrassingly
	// parallel — no shared memoization to race on.
	fps := make([]bitset.Sparse, p.Fingerprints)
	if err := pool.MapErr(p.Workers, len(fps), func(i int) error {
		m := drammodel.New(p.Seed + uint64(i)*0x9E37 + 1)
		m.PageBits = p.PageBits
		vs, err := m.VolatileSet(uint64(i), p.ErrRate)
		if err != nil {
			return err
		}
		fps[i] = vs
		return nil
	}); err != nil {
		return nil, err
	}
	r := &CollisionResult{Params: p, MinDistance: 1}
	// Pairwise sweep: row i covers pairs (i, j>i). Each row accumulates its
	// own partial — including its own float64 sum — and the partials fold
	// serially in row order, so the floating-point grouping is fixed and
	// workers=1 and workers=N produce bit-identical means.
	type partial struct {
		pairs, collisions int
		sum, min          float64
	}
	rows := make([]partial, len(fps))
	pool.Map(p.Workers, len(fps), func(i int) {
		pr := partial{min: 1}
		for j := i + 1; j < len(fps); j++ {
			d := fingerprint.SparseDistance(fps[i], fps[j])
			pr.pairs++
			pr.sum += d
			if d < pr.min {
				pr.min = d
			}
			if d < p.Threshold {
				pr.collisions++
			}
		}
		rows[i] = pr
	})
	var sum float64
	for _, pr := range rows {
		r.Pairs += pr.pairs
		r.Collisions += pr.collisions
		sum += pr.sum
		if pr.min < r.MinDistance {
			r.MinDistance = pr.min
		}
	}
	r.MeanDistance = sum / float64(r.Pairs)
	// Rule of three for zero observations; scaled for the general case.
	r.EmpiricalBound = (3 + float64(r.Collisions)) / float64(r.Pairs)

	a := int(float64(p.PageBits)*p.ErrRate + 0.5)
	s := analysis.FingerprintSpace{M: p.PageBits, A: a, T: int(float64(a)*p.Threshold + 0.5)}
	_, upper := s.MismatchBounds()
	r.AnalyticLog10 = analysis.Log10Float(upper)
	return r, nil
}

// Render prints the empirical-vs-analytical comparison.
func (r *CollisionResult) Render() string {
	var b strings.Builder
	b.WriteString("§7.1 companion — Monte-Carlo fingerprint collisions\n\n")
	fmt.Fprintf(&b, "%d independent page fingerprints (%d pairs) at %.0f%% error\n\n",
		r.Params.Fingerprints, r.Pairs, r.Params.ErrRate*100)
	fmt.Fprintf(&b, "collisions under threshold %.2g: %d\n", r.Params.Threshold, r.Collisions)
	fmt.Fprintf(&b, "minimum pairwise distance: %.4f (threshold %.2g)\n", r.MinDistance, r.Params.Threshold)
	fmt.Fprintf(&b, "mean pairwise distance:    %.4f\n", r.MeanDistance)
	fmt.Fprintf(&b, "empirical 95%% bound on P(mismatch): ≤ %.2g\n", r.EmpiricalBound)
	fmt.Fprintf(&b, "analytical bound (Eq. 3):            ≤ 10^%.0f\n", r.AnalyticLog10)
	b.WriteString("(the analytical bound is unfalsifiable by simulation — the point of this run is\n")
	b.WriteString(" that the simulator shows the same qualitative picture: a wide, empty margin)\n")
	return b.String()
}
