package experiment

import (
	"fmt"
	"strings"

	"probablecause/internal/approx"
	"probablecause/internal/bitset"
	"probablecause/internal/dram"
	"probablecause/internal/fingerprint"
)

// CrossMechParams parameterizes the cross-mechanism extension experiment:
// does a fingerprint taken under refresh-rate approximation deanonymize
// outputs produced under supply-voltage approximation?
//
// Both knobs (§2) expose the same manufacturing-time decay ordering, so the
// fingerprint should transfer — meaning a user cannot escape Probable Cause
// by switching approximation mechanisms.
type CrossMechParams struct {
	Chips    int
	Geometry dram.Geometry
	Accuracy float64
	// FixedInterval is the refresh interval pinned during voltage-scaling
	// operation.
	FixedInterval float64
	Seed          uint64
}

// DefaultCrossMechParams runs the extension at the platform's scale.
func DefaultCrossMechParams() CrossMechParams {
	return CrossMechParams{
		Chips:         6,
		Geometry:      dram.KM41464A(0).Geometry,
		Accuracy:      0.99,
		FixedInterval: 1.0,
		Seed:          0xC505,
	}
}

// SmallCrossMechParams returns a reduced setup for tests.
func SmallCrossMechParams() CrossMechParams {
	p := DefaultCrossMechParams()
	p.Chips = 3
	p.Geometry = dram.Geometry{Rows: 64, Cols: 256, BitsPerWord: 4, DefaultStripe: 2}
	return p
}

// CrossMechResult reports fingerprint transfer between mechanisms.
type CrossMechResult struct {
	Params CrossMechParams
	// Identification of voltage-mode outputs against refresh-mode
	// fingerprints, and vice versa.
	VoltOnRefreshFP, RefreshOnVoltFP, Total int
	// MeanWithin distances for the two directions.
	MeanWithinVR, MeanWithinRV float64
}

// RunCrossMechanism characterizes every chip under both mechanisms and
// cross-identifies.
func RunCrossMechanism(p CrossMechParams) (*CrossMechResult, error) {
	if p.Chips < 2 {
		return nil, fmt.Errorf("experiment: need ≥2 chips")
	}
	r := &CrossMechResult{Params: p}
	dbRefresh := fingerprint.NewDB(fingerprint.DefaultThreshold)
	dbVolt := fingerprint.NewDB(fingerprint.DefaultThreshold)
	type outputs struct{ volt, refresh *outES }
	var all []outputs

	for i := 0; i < p.Chips; i++ {
		cfg := dram.KM41464A(p.Seed + uint64(i)*0x101)
		cfg.Geometry = p.Geometry
		chip, err := dram.NewChip(cfg)
		if err != nil {
			return nil, err
		}
		mem, err := approx.New(chip, p.Accuracy)
		if err != nil {
			return nil, err
		}
		// Refresh-mode characterization and a fresh test output.
		a1, exact, err := mem.WorstCaseOutput()
		if err != nil {
			return nil, err
		}
		a2, _, err := mem.WorstCaseOutput()
		if err != nil {
			return nil, err
		}
		fpR, err := fingerprint.Characterize(exact, a1, a2)
		if err != nil {
			return nil, err
		}
		dbRefresh.Add(fmt.Sprintf("chip%02d", i), fpR)
		ar, _, err := mem.WorstCaseOutput()
		if err != nil {
			return nil, err
		}
		esR, err := fingerprint.ErrorString(ar, exact)
		if err != nil {
			return nil, err
		}

		// Voltage-mode characterization and test output.
		if err := mem.CalibrateVoltage(p.FixedInterval); err != nil {
			return nil, err
		}
		v1, _, err := mem.WorstCaseOutput()
		if err != nil {
			return nil, err
		}
		v2, _, err := mem.WorstCaseOutput()
		if err != nil {
			return nil, err
		}
		fpV, err := fingerprint.Characterize(exact, v1, v2)
		if err != nil {
			return nil, err
		}
		dbVolt.Add(fmt.Sprintf("chip%02d", i), fpV)
		av, _, err := mem.WorstCaseOutput()
		if err != nil {
			return nil, err
		}
		esV, err := fingerprint.ErrorString(av, exact)
		if err != nil {
			return nil, err
		}
		all = append(all, outputs{volt: &outES{chip: i, es: esV}, refresh: &outES{chip: i, es: esR}})
	}

	for _, o := range all {
		r.Total++
		if _, idx, ok := dbRefresh.Identify(o.volt.es); ok && idx == o.volt.chip {
			r.VoltOnRefreshFP++
		}
		if _, idx, ok := dbVolt.Identify(o.refresh.es); ok && idx == o.refresh.chip {
			r.RefreshOnVoltFP++
		}
		r.MeanWithinVR += fingerprint.Distance(o.volt.es, dbRefresh.Entries()[o.volt.chip].FP)
		r.MeanWithinRV += fingerprint.Distance(o.refresh.es, dbVolt.Entries()[o.refresh.chip].FP)
	}
	r.MeanWithinVR /= float64(r.Total)
	r.MeanWithinRV /= float64(r.Total)
	return r, nil
}

type outES struct {
	chip int
	es   *bitset.Set
}

// Render prints the cross-mechanism transfer table.
func (r *CrossMechResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension — fingerprint transfer across approximation mechanisms\n\n")
	fmt.Fprintf(&b, "%d chips at %.0f%% accuracy; refresh-rate vs supply-voltage scaling\n\n",
		r.Params.Chips, r.Params.Accuracy*100)
	fmt.Fprintf(&b, "voltage-mode output vs refresh-mode fingerprint: %d/%d identified (mean distance %.4f)\n",
		r.VoltOnRefreshFP, r.Total, r.MeanWithinVR)
	fmt.Fprintf(&b, "refresh-mode output vs voltage-mode fingerprint: %d/%d identified (mean distance %.4f)\n",
		r.RefreshOnVoltFP, r.Total, r.MeanWithinRV)
	b.WriteString("(both knobs expose the same decay ordering: switching mechanisms does not restore anonymity)\n")
	return b.String()
}
