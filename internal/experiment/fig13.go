package experiment

import (
	"fmt"
	"strings"

	"probablecause/internal/drammodel"
	"probablecause/internal/osmodel"
	"probablecause/internal/stitch"
	"probablecause/internal/workload"
)

// Fig13Params parameterizes the end-to-end eavesdropping experiment (§7.6):
// a commodity system publishing approximate outputs that the attacker
// stitches into a system-level fingerprint.
type Fig13Params struct {
	// MemoryPages is the victim's physical memory in 4 KB pages.
	MemoryPages int
	// SamplePages is the size of each published output in pages (a 10 MB
	// photo = 2560 pages in the paper).
	SamplePages int
	Samples     int
	ErrRate     float64
	// Scattered enables the page-ASLR defense placement.
	Scattered bool
	// MinOverlap is the stitcher's alignment requirement.
	MinOverlap int
	// Victims is the number of distinct machines whose outputs are
	// interleaved in the observed stream (the paper uses one; with more,
	// the curve must converge to exactly that many clusters).
	Victims int
	Seed    uint64
	// Workers is passed to the stitcher (stitch.Config.Workers): page
	// signing, candidate lookup, and alignment verification fan out while
	// cluster mutation stays serial, so the curve is identical for any
	// worker count.
	Workers int
}

// DefaultFig13Params runs the paper's geometry scaled down 16× (64 MB memory,
// 0.625 MB samples). The memory:sample ratio — which determines the shape of
// the convergence curve — is the paper's 102.4:1. Use PaperScaleFig13Params
// for the full 1 GB run.
func DefaultFig13Params() Fig13Params {
	return Fig13Params{
		MemoryPages: 16384, // 64 MB
		SamplePages: 160,   // keeps the paper's 102.4:1 ratio
		Samples:     1000,
		ErrRate:     0.01,
		MinOverlap:  1,
		Seed:        0xF163,
	}
}

// PaperScaleFig13Params is the paper's full configuration: 1 GB memory,
// 10 MB samples, 1000 samples.
func PaperScaleFig13Params() Fig13Params {
	p := DefaultFig13Params()
	p.MemoryPages = 262144 // 1 GB
	p.SamplePages = 2560   // 10 MB
	return p
}

// SmallFig13Params returns a fast configuration for tests. The memory:sample
// ratio is reduced to 32:1 so the curve converges within 300 samples
// (uniform-interval coverage gives E[clusters] ≈ n·e^(−n·ℓ/L); convergence
// needs n ≈ 10·L/ℓ samples, which at the paper's 102:1 ratio means the full
// 1000-sample run).
func SmallFig13Params() Fig13Params {
	p := DefaultFig13Params()
	p.MemoryPages = 256
	p.SamplePages = 8
	p.Samples = 300
	return p
}

func (p Fig13Params) validate() error {
	if p.MemoryPages <= 0 || p.SamplePages <= 0 || p.SamplePages > p.MemoryPages {
		return fmt.Errorf("experiment: bad fig13 geometry %+v", p)
	}
	if p.Samples <= 0 {
		return fmt.Errorf("experiment: no samples requested")
	}
	return nil
}

// Fig13Result is the convergence curve of Figure 13: suspected distinct
// chips as a function of samples observed.
type Fig13Result struct {
	Params Fig13Params
	// Clusters[i] is the cluster count after sample i+1.
	Clusters []int
	Peak     int
	// PeakAt is the sample index (1-based) where the count first reached
	// its maximum — where convergence begins (the paper reports ~90).
	PeakAt int
	// Final is the cluster count after all samples (the paper's curve
	// approaches 1).
	Final int
	// CoveredPages is the attacker database size at the end.
	CoveredPages int
}

// RunFig13 streams samples from the victim model into the stitcher.
func RunFig13(p Fig13Params) (*Fig13Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	done := track("fig13")
	defer func() { done(p.Samples) }()
	victims := p.Victims
	if victims < 1 {
		victims = 1
	}
	srcs := make([]*workload.SampleSource, victims)
	for v := range srcs {
		model := drammodel.New(p.Seed + uint64(v)*0xD1CE)
		mem, err := osmodel.NewMemory(p.MemoryPages, p.Seed^0x9E3779B9^uint64(v))
		if err != nil {
			return nil, err
		}
		var placer osmodel.Placer = mem
		if p.Scattered {
			placer = osmodel.Scattered{Memory: mem}
		}
		src, err := workload.NewSampleSource(model, placer, p.ErrRate, p.SamplePages)
		if err != nil {
			return nil, err
		}
		srcs[v] = src
	}
	st, err := stitch.New(stitch.Config{MinOverlap: p.MinOverlap, Workers: p.Workers})
	if err != nil {
		return nil, err
	}
	r := &Fig13Result{Params: p}
	for i := 0; i < p.Samples; i++ {
		sample, _, err := srcs[i%victims].Next()
		if err != nil {
			return nil, err
		}
		if _, err := st.Add(sample); err != nil {
			return nil, err
		}
		count := st.Count()
		r.Clusters = append(r.Clusters, count)
		if count > r.Peak {
			r.Peak = count
			r.PeakAt = i + 1
		}
	}
	r.Final = st.Count()
	r.CoveredPages = st.CoveredPages()
	return r, nil
}

// Series returns (samples, clusters) pairs subsampled to at most n points,
// the data behind the Figure 13 curve.
func (r *Fig13Result) Series(n int) [][2]int {
	if n <= 0 || n > len(r.Clusters) {
		n = len(r.Clusters)
	}
	out := make([][2]int, 0, n)
	step := float64(len(r.Clusters)) / float64(n)
	for i := 0; i < n; i++ {
		idx := int(float64(i)*step + step - 1)
		if idx >= len(r.Clusters) {
			idx = len(r.Clusters) - 1
		}
		out = append(out, [2]int{idx + 1, r.Clusters[idx]})
	}
	return out
}

// CSV renders the full curve as "samples,suspected_chips".
func (r *Fig13Result) CSV() string {
	var b strings.Builder
	b.WriteString("samples,suspected_chips\n")
	for i, c := range r.Clusters {
		fmt.Fprintf(&b, "%d,%d\n", i+1, c)
	}
	return b.String()
}

// Render prints the curve as an ASCII chart plus the headline numbers.
func (r *Fig13Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 13 — suspected chips vs samples collected (stitching convergence)\n\n")
	fmt.Fprintf(&b, "memory %d pages (%.0f MB), samples of %d pages (%.2f MB), ratio %.1f:1\n",
		r.Params.MemoryPages, float64(r.Params.MemoryPages)/256,
		r.Params.SamplePages, float64(r.Params.SamplePages)/256,
		float64(r.Params.MemoryPages)/float64(r.Params.SamplePages))
	points := r.Series(25)
	max := 1
	for _, p := range points {
		if p[1] > max {
			max = p[1]
		}
	}
	for _, p := range points {
		bar := p[1] * 50 / max
		fmt.Fprintf(&b, "%6d | %-50s %d\n", p[0], strings.Repeat("#", bar), p[1])
	}
	fmt.Fprintf(&b, "\npeak %d clusters at sample %d; final %d cluster(s); database %d pages\n",
		r.Peak, r.PeakAt, r.Final, r.CoveredPages)
	b.WriteString("(paper: convergence begins after ~90 samples and approaches a single fingerprint)\n")
	return b.String()
}
