package experiment

import (
	"fmt"
	"strings"

	"probablecause/internal/bitset"
	"probablecause/internal/defense"
	"probablecause/internal/drammodel"
	"probablecause/internal/fingerprint"
	"probablecause/internal/prng"
)

// DefensesParams parameterizes the §8.2 defense evaluation.
type DefensesParams struct {
	Chips      int
	ErrRate    float64
	NoiseRates []float64 // noise-addition sweep
	Outputs    int       // outputs per chip per noise rate
	PageBits   int
	Seed       uint64
}

// DefaultDefensesParams evaluates noise addition over a wide sweep.
func DefaultDefensesParams() DefensesParams {
	return DefensesParams{
		Chips:      8,
		ErrRate:    0.01,
		NoiseRates: []float64{0, 0.0001, 0.001, 0.005, 0.01, 0.05},
		Outputs:    10,
		PageBits:   32768,
		Seed:       0xDEF5,
	}
}

// SmallDefensesParams returns a reduced sweep for tests.
func SmallDefensesParams() DefensesParams {
	p := DefaultDefensesParams()
	p.Chips = 4
	p.Outputs = 4
	p.NoiseRates = []float64{0, 0.001, 0.05}
	return p
}

// NoiseRow is the attack outcome at one noise level.
type NoiseRow struct {
	Rate            float64
	IdentifyCorrect int
	IdentifyTotal   int
	MeanWithin      float64
	// QualityLoss is the added error as a multiple of the approximation's
	// own error rate — the price the defender pays.
	QualityLoss float64
}

// DefensesResult evaluates the noise-addition defense (§8.2.2): how much
// output quality must be sacrificed before identification starts failing.
type DefensesResult struct {
	Params DefensesParams
	Noise  []NoiseRow
}

// RunDefenses characterizes chips cleanly, then identifies noisy outputs.
func RunDefenses(p DefensesParams) (*DefensesResult, error) {
	if p.Chips < 2 || p.Outputs < 1 {
		return nil, fmt.Errorf("experiment: bad defense params %+v", p)
	}
	done := track("defenses")
	defer func() { done(p.Chips * p.Outputs) }()
	// Characterize each chip from clean observations (the attacker moved
	// first; the defense protects only future outputs).
	models := make([]*drammodel.Model, p.Chips)
	db := fingerprint.NewDB(fingerprint.DefaultThreshold)
	for i := range models {
		models[i] = drammodel.New(p.Seed + uint64(i)*0x77)
		models[i].PageBits = p.PageBits
		vs, err := models[i].VolatileSet(0, p.ErrRate)
		if err != nil {
			return nil, err
		}
		db.Add(fmt.Sprintf("chip%02d", i), vs.Dense(p.PageBits))
	}
	rng := prng.New(p.Seed ^ 0xA0A0)
	r := &DefensesResult{Params: p}
	for _, rate := range p.NoiseRates {
		row := NoiseRow{Rate: rate}
		var withinSum float64
		for i, m := range models {
			for o := 0; o < p.Outputs; o++ {
				errs, err := m.PageErrors(0, p.ErrRate, uint64(1000+o))
				if err != nil {
					return nil, err
				}
				noisy, err := defense.FlipNoiseSparse(errs, p.PageBits, rate, rng)
				if err != nil {
					return nil, err
				}
				es := noisy.Dense(p.PageBits)
				if _, idx, ok := db.Identify(es); ok && idx == i {
					row.IdentifyCorrect++
				}
				row.IdentifyTotal++
				withinSum += fingerprint.Distance(es, db.Entries()[i].FP)
			}
		}
		row.MeanWithin = withinSum / float64(row.IdentifyTotal)
		row.QualityLoss = rate / p.ErrRate
		r.Noise = append(r.Noise, row)
	}
	return r, nil
}

// Render prints the defense sweep table.
func (r *DefensesResult) Render() string {
	var b strings.Builder
	b.WriteString("§8.2 — defenses against Probable Cause\n\n")
	b.WriteString("noise addition (§8.2.2): identification vs noise rate\n")
	fmt.Fprintf(&b, "%-12s %-14s %-14s %-12s\n", "noise rate", "identified", "mean within-d", "quality loss")
	for _, row := range r.Noise {
		fmt.Fprintf(&b, "%-12g %3d/%-10d %-14.4f %.1f×\n",
			row.Rate, row.IdentifyCorrect, row.IdentifyTotal, row.MeanWithin, row.QualityLoss)
	}
	b.WriteString("\n(paper: noise only slows the attacker; heavy noise destroys output quality first.\n")
	b.WriteString(" data segregation (§8.2.1) removes outputs from the attacker entirely;\n")
	b.WriteString(" page-level ASLR (§8.2.3) defeats stitching — see the fig13 --scattered run)\n")
	return b.String()
}

// AblationHammingResult reproduces the §5.2 design argument. With outputs
// at *mixed* approximation levels, Algorithm 2 needs one fixed threshold
// that accepts every same-chip output and rejects every other-chip output.
// Under the modified Jaccard metric such a threshold exists (within- and
// between-class distances do not overlap); under Hamming distance a
// same-chip output at a different error level is *farther* than an
// other-chip output at the fingerprint's level, so the classes overlap and
// no threshold works — exactly the failure §5.2 describes.
type AblationHammingResult struct {
	// Worst within-class and best between-class distance for each metric
	// over the mixed-accuracy output set.
	JaccardWithinMax, JaccardBetweenMin float64
	HammingWithinMax, HammingBetweenMin float64
	// Separable reports whether within < between holds (a threshold exists).
	JaccardSeparable, HammingSeparable bool
	Outputs                            int
}

// RunAblationHamming compares the two metrics under mismatched accuracy:
// fingerprints at 99 % accuracy, outputs at both 99 % and 90 %.
func RunAblationHamming(chips, pageBits int, seed uint64) (*AblationHammingResult, error) {
	if chips < 2 {
		return nil, fmt.Errorf("experiment: need ≥2 chips")
	}
	r := &AblationHammingResult{JaccardBetweenMin: 2, HammingBetweenMin: 2}
	fps := make([]*bitset.Set, chips)
	models := make([]*drammodel.Model, chips)
	for i := range fps {
		models[i] = drammodel.New(seed + uint64(i)*0x33)
		models[i].PageBits = pageBits
		vs, err := models[i].VolatileSet(0, 0.01) // characterized at 99 %
		if err != nil {
			return nil, err
		}
		fps[i] = vs.Dense(pageBits)
	}
	for i, m := range models {
		for _, errRate := range []float64{0.01, 0.10} {
			out, err := m.PageErrors(0, errRate, 7)
			if err != nil {
				return nil, err
			}
			es := out.Dense(pageBits)
			r.Outputs++
			for j, fp := range fps {
				dj := fingerprint.Distance(es, fp)
				dh := fingerprint.HammingDistance(es, fp)
				if j == i {
					if dj > r.JaccardWithinMax {
						r.JaccardWithinMax = dj
					}
					if dh > r.HammingWithinMax {
						r.HammingWithinMax = dh
					}
				} else {
					if dj < r.JaccardBetweenMin {
						r.JaccardBetweenMin = dj
					}
					if dh < r.HammingBetweenMin {
						r.HammingBetweenMin = dh
					}
				}
			}
		}
	}
	r.JaccardSeparable = r.JaccardWithinMax < r.JaccardBetweenMin
	r.HammingSeparable = r.HammingWithinMax < r.HammingBetweenMin
	return r, nil
}

// Render prints the metric-ablation comparison.
func (r *AblationHammingResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation — modified Jaccard vs Hamming under mismatched approximation\n\n")
	fmt.Fprintf(&b, "fingerprints at 99%% accuracy; %d outputs at 99%% and 90%%\n\n", r.Outputs)
	fmt.Fprintf(&b, "%-18s %-18s %-18s %-10s\n", "metric", "max within-class", "min between-class", "separable")
	fmt.Fprintf(&b, "%-18s %-18.4f %-18.4f %-10v\n", "modified Jaccard", r.JaccardWithinMax, r.JaccardBetweenMin, r.JaccardSeparable)
	fmt.Fprintf(&b, "%-18s %-18.4f %-18.4f %-10v\n", "Hamming", r.HammingWithinMax, r.HammingBetweenMin, r.HammingSeparable)
	b.WriteString("(paper §5.2: under Hamming, a same-chip output at a different error level looks\n")
	b.WriteString(" farther away than an other-chip output — no identification threshold exists)\n")
	return b.String()
}

// AblationIntersectResult evaluates fingerprint construction: intersection
// (Algorithm 1) vs union of error strings.
type AblationIntersectResult struct {
	Trials int
	// NoiseBitsIntersect / NoiseBitsUnion count fingerprint bits outside the
	// true volatile core under each construction.
	NoiseBitsIntersect, NoiseBitsUnion int
	CoreSize                           int
}

// RunAblationIntersect builds both fingerprints from the same observations.
func RunAblationIntersect(trials, pageBits int, seed uint64) (*AblationIntersectResult, error) {
	if trials < 2 {
		return nil, fmt.Errorf("experiment: need ≥2 trials")
	}
	m := drammodel.New(seed)
	m.PageBits = pageBits
	truth, err := m.VolatileSet(0, 0.01)
	if err != nil {
		return nil, err
	}
	var inter, union bitset.Sparse
	for t := 0; t < trials; t++ {
		es, err := m.PageErrors(0, 0.01, uint64(t))
		if err != nil {
			return nil, err
		}
		if t == 0 {
			inter, union = es, es
			continue
		}
		inter = inter.Intersect(es)
		union = union.Union(es)
	}
	return &AblationIntersectResult{
		Trials:             trials,
		NoiseBitsIntersect: inter.DiffCount(truth),
		NoiseBitsUnion:     union.DiffCount(truth),
		CoreSize:           truth.Card(),
	}, nil
}

// Render prints the construction-ablation comparison.
func (r *AblationIntersectResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation — fingerprint = intersection vs union of error strings\n\n")
	fmt.Fprintf(&b, "%d observations of a page with a %d-bit volatile core\n", r.Trials, r.CoreSize)
	fmt.Fprintf(&b, "noise bits kept by intersection (Algorithm 1): %d\n", r.NoiseBitsIntersect)
	fmt.Fprintf(&b, "noise bits kept by union:                      %d\n", r.NoiseBitsUnion)
	b.WriteString("(intersection keeps only the most volatile bits, minimizing the effect of noise — §5.1)\n")
	return b.String()
}
