package experiment

import (
	"encoding/binary"
	"fmt"
	"strings"

	"probablecause/internal/approx"
	"probablecause/internal/bitset"
	"probablecause/internal/dram"
	"probablecause/internal/ecc"
	"probablecause/internal/fingerprint"
)

// ECCParams parameterizes the ECC-defense experiment: the victim's memory is
// an ECC DIMM — every 64-bit word carries SEC-DED check bits, themselves
// stored in the same approximate DRAM — and software only ever sees the
// scrubbed data. Does the fingerprint survive?
type ECCParams struct {
	Geometry dram.Geometry
	Chips    int
	Accuracy float64
	Words    int // 64-bit words per output
	Seed     uint64
}

// DefaultECCParams runs the question at 99 % accuracy on the full chip.
func DefaultECCParams() ECCParams {
	return ECCParams{
		Geometry: dram.KM41464A(0).Geometry,
		Chips:    3,
		Accuracy: 0.99,
		Words:    3000,
		Seed:     0xECC0,
	}
}

// SmallECCParams returns a reduced setup for tests.
func SmallECCParams() ECCParams {
	p := DefaultECCParams()
	p.Geometry = dram.Geometry{Rows: 64, Cols: 256, BitsPerWord: 4, DefaultStripe: 2}
	p.Chips = 2
	p.Words = 700
	return p
}

// ECCResult compares the attack with and without ECC scrubbing.
type ECCResult struct {
	Params ECCParams
	// RawErrRate and VisibleErrRate are bit-error rates before and after
	// scrubbing.
	RawErrRate, VisibleErrRate float64
	// CorrectedWords and UncorrectableWords per output (averaged).
	CorrectedWords, UncorrectableWords float64
	// Identification of scrubbed outputs against scrubbed-output
	// fingerprints.
	Identified, Total int
}

// eccRoundtrip stores the encoded buffer (data words then check bytes) in
// the approximate memory and returns the scrubbed, software-visible data.
func eccRoundtrip(mem *approx.Memory, data []uint64) ([]uint64, []ecc.Result, error) {
	buf := make([]byte, len(data)*8+len(data))
	for i, d := range data {
		binary.LittleEndian.PutUint64(buf[i*8:], d)
		buf[len(data)*8+i] = ecc.Encode(d).Check
	}
	out, err := mem.Roundtrip(0, buf)
	if err != nil {
		return nil, nil, err
	}
	words := make([]uint64, len(data))
	checks := make([]uint8, len(data))
	for i := range data {
		words[i] = binary.LittleEndian.Uint64(out[i*8:])
		checks[i] = out[len(data)*8+i]
	}
	return scrubAll(words, checks)
}

func scrubAll(words []uint64, checks []uint8) ([]uint64, []ecc.Result, error) {
	return ecc.Scrub(words, checks)
}

// RunECCDefense measures the attack through an ECC memory.
func RunECCDefense(p ECCParams) (*ECCResult, error) {
	if p.Chips < 2 || p.Words < 1 {
		return nil, fmt.Errorf("experiment: bad ECC params %+v", p)
	}
	if p.Words*9 > p.Geometry.Bytes() {
		return nil, fmt.Errorf("experiment: %d words exceed chip capacity", p.Words)
	}
	r := &ECCResult{Params: p}
	db := fingerprint.NewDB(fingerprint.DefaultThreshold)

	// Worst-case-like data for the encoded region: complement of defaults
	// over the data area so cells are maximally charged.
	type victim struct {
		mem  *approx.Memory
		data []uint64
	}
	var victims []victim
	toBytes := func(words []uint64) []byte {
		out := make([]byte, len(words)*8)
		for i, w := range words {
			binary.LittleEndian.PutUint64(out[i*8:], w)
		}
		return out
	}
	for i := 0; i < p.Chips; i++ {
		cfg := dram.KM41464A(p.Seed + uint64(i)*0xEC)
		cfg.Geometry = p.Geometry
		chip, err := dram.NewChip(cfg)
		if err != nil {
			return nil, err
		}
		mem, err := approx.New(chip, p.Accuracy)
		if err != nil {
			return nil, err
		}
		wc := chip.WorstCaseData()
		data := make([]uint64, p.Words)
		for w := range data {
			data[w] = binary.LittleEndian.Uint64(wc[w*8:])
		}
		// Characterize from the intersection of two scrubbed outputs.
		var strs []*bitset.Set
		for t := 0; t < 2; t++ {
			vis, _, err := eccRoundtrip(mem, data)
			if err != nil {
				return nil, err
			}
			es, err := fingerprint.ErrorString(toBytes(vis), toBytes(data))
			if err != nil {
				return nil, err
			}
			strs = append(strs, es)
		}
		fp := strs[0].Clone().And(strs[1])
		db.Add(fmt.Sprintf("chip%02d", i), fp)
		victims = append(victims, victim{mem: mem, data: data})
	}

	dataBits := p.Words * 64
	for i, v := range victims {
		r.Total++
		vis, results, err := eccRoundtrip(v.mem, v.data)
		if err != nil {
			return nil, err
		}
		es, err := fingerprint.ErrorString(toBytes(vis), toBytes(v.data))
		if err != nil {
			return nil, err
		}
		r.VisibleErrRate += float64(es.Count()) / float64(dataBits)
		for _, res := range results {
			switch res {
			case ecc.Corrected:
				r.CorrectedWords++
			case ecc.Uncorrectable:
				r.UncorrectableWords++
			}
		}
		if _, idx, ok := db.Identify(es); ok && idx == i {
			r.Identified++
		}

		// Raw error rate for comparison: same data without scrubbing.
		rawOut, err := v.mem.Roundtrip(0, toBytes(v.data))
		if err != nil {
			return nil, err
		}
		rawES, err := fingerprint.ErrorString(rawOut, toBytes(v.data))
		if err != nil {
			return nil, err
		}
		r.RawErrRate += float64(rawES.Count()) / float64(dataBits)
	}
	n := float64(r.Total)
	r.RawErrRate /= n
	r.VisibleErrRate /= n
	r.CorrectedWords /= n
	r.UncorrectableWords /= n
	return r, nil
}

// Render prints the ECC comparison.
func (r *ECCResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension — the attack through SEC-DED ECC memory\n\n")
	fmt.Fprintf(&b, "%d words per output at %.0f%% accuracy; check bits share the approximate DRAM\n\n",
		r.Params.Words, r.Params.Accuracy*100)
	fmt.Fprintf(&b, "raw bit-error rate:              %.4f\n", r.RawErrRate)
	fmt.Fprintf(&b, "software-visible error rate:     %.4f\n", r.VisibleErrRate)
	fmt.Fprintf(&b, "corrected words per output:      %.0f\n", r.CorrectedWords)
	fmt.Fprintf(&b, "uncorrectable words per output:  %.0f\n", r.UncorrectableWords)
	fmt.Fprintf(&b, "identification of scrubbed outputs: %d/%d\n", r.Identified, r.Total)
	b.WriteString("\n(ECC halves the visible errors but uncorrectable multi-bit words — pairs of\n")
	b.WriteString(" volatile cells — are just as manufacturing-determined: the fingerprint survives)\n")
	return b.String()
}
