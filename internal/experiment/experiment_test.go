package experiment

import (
	"fmt"
	"strings"
	"testing"

	"probablecause/internal/approx"
	"probablecause/internal/bitset"
	"probablecause/internal/dram"
	"probablecause/internal/fingerprint"
)

// The corpus is expensive to build; share it across the figure tests.
var sharedCorpus *Corpus

func corpus(t *testing.T) *Corpus {
	t.Helper()
	if sharedCorpus == nil {
		c, err := BuildCorpus(SmallCorpusParams())
		if err != nil {
			t.Fatalf("BuildCorpus: %v", err)
		}
		sharedCorpus = c
	}
	return sharedCorpus
}

func TestCorpusParamsValidation(t *testing.T) {
	p := SmallCorpusParams()
	p.Chips = 1
	if _, err := BuildCorpus(p); err == nil {
		t.Error("1-chip corpus accepted")
	}
	p = SmallCorpusParams()
	p.Temps = nil
	if _, err := BuildCorpus(p); err == nil {
		t.Error("empty temperature sweep accepted")
	}
	p = SmallCorpusParams()
	p.FPOutputs = 0
	if _, err := BuildCorpus(p); err == nil {
		t.Error("0 fingerprint outputs accepted")
	}
}

func TestCorpusShape(t *testing.T) {
	c := corpus(t)
	p := c.Params
	if len(c.Fingerprints) != p.Chips {
		t.Fatalf("%d fingerprints for %d chips", len(c.Fingerprints), p.Chips)
	}
	want := p.Chips * len(p.Temps) * len(p.Accuracies)
	if len(c.Outputs) != want {
		t.Fatalf("%d outputs, want %d", len(c.Outputs), want)
	}
	for i, fp := range c.Fingerprints {
		if fp.Count() == 0 {
			t.Fatalf("chip %d has an empty fingerprint", i)
		}
	}
}

func TestFig7SeparationAndIdentification(t *testing.T) {
	r := RunFig7(corpus(t), 1)
	// The paper's headline: within-class and between-class distances are
	// separated by roughly two orders of magnitude, and identification is
	// 100% correct.
	if r.IdentifyCorrect != r.IdentifyTotal {
		t.Fatalf("identification %d/%d, want all", r.IdentifyCorrect, r.IdentifyTotal)
	}
	if r.Separation < 50 {
		t.Fatalf("separation = %v, want ≥50 (paper: ~100×)", r.Separation)
	}
	if r.BetweenSummary.Min < 0.5 {
		t.Fatalf("min between-class distance = %v — chips too similar", r.BetweenSummary.Min)
	}
	if r.WithinSummary.Max > 0.2 {
		t.Fatalf("max within-class distance = %v — outputs not matching their chip", r.WithinSummary.Max)
	}
	if !strings.Contains(r.Render(), "Figure 7") {
		t.Fatal("Render missing title")
	}
}

func TestFig9TemperatureInsensitive(t *testing.T) {
	r := RunFig9(corpus(t), 1)
	if len(r.Keys) != len(corpus(t).Params.Temps) {
		t.Fatalf("groups = %v", r.Keys)
	}
	if r.MeanSpread > 0.05 {
		t.Fatalf("temperature spread of between-class means = %v, want < 0.05", r.MeanSpread)
	}
	if !strings.Contains(r.Render(), "Figure 9") {
		t.Fatal("Render missing title")
	}
}

func TestFig11DistanceShrinksWithError(t *testing.T) {
	r := RunFig11(corpus(t), 1)
	if !r.MeansMonotone {
		t.Fatal("between-class mean distance not increasing with accuracy")
	}
	if r.MinBetween < 0.5 {
		t.Fatalf("min between-class distance = %v", r.MinBetween)
	}
	if !strings.Contains(r.Render(), "Figure 11") {
		t.Fatal("Render missing title")
	}
}

func TestFig8Repeatability(t *testing.T) {
	r, err := RunFig8(SmallFig8Params())
	if err != nil {
		t.Fatal(err)
	}
	if r.Repeatability < 0.95 {
		t.Fatalf("repeatability = %v, want ≥0.95 (paper: ≥0.98)", r.Repeatability)
	}
	if r.EverFailed == 0 {
		t.Fatal("no failures at all")
	}
	out := r.Render()
	if !strings.Contains(out, "Figure 8") || !strings.Contains(out, "repeatability") {
		t.Fatal("Render incomplete")
	}
	hm := r.Heatmap(8, 32)
	if len(strings.Split(strings.TrimRight(hm, "\n"), "\n")) != 8 {
		t.Fatalf("heatmap rows wrong:\n%s", hm)
	}
}

func TestFig10SubsetOrdering(t *testing.T) {
	r, err := RunFig10(SmallFig10Params())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Counts) != 3 || len(r.Exceptions) != 2 {
		t.Fatalf("result shape: %+v", r)
	}
	if !(r.Counts[0] < r.Counts[1] && r.Counts[1] < r.Counts[2]) {
		t.Fatalf("error counts not increasing: %v", r.Counts)
	}
	// The paper sees a near-perfect subset relation: 1 exception out of ~2.6k
	// errors, then 32 out of ~13k. Demand ≥99% subset fraction.
	for i, f := range r.SubsetFraction {
		if f < 0.99 {
			t.Fatalf("subset fraction %d = %v, want ≥0.99", i, f)
		}
	}
	if !strings.Contains(r.Render(), "Figure 10") {
		t.Fatal("Render missing title")
	}
}

func TestFig5VisualDistances(t *testing.T) {
	r, err := RunFig5(SmallFig5Params())
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range r.PixelErrs {
		if e == 0 {
			t.Fatalf("output %d has no errors", i)
		}
	}
	if r.DistA1A2 > 0.2 {
		t.Fatalf("same-chip distance = %v, want small", r.DistA1A2)
	}
	if r.DistA1B < 0.5 || r.DistA2B < 0.5 {
		t.Fatalf("cross-chip distances = %v, %v, want large", r.DistA1B, r.DistA2B)
	}
	pgms := r.PGMs()
	if len(pgms) != 4 {
		t.Fatalf("%d PGMs", len(pgms))
	}
	for name, data := range pgms {
		if !strings.HasPrefix(string(data), "P5\n") {
			t.Fatalf("%s is not a PGM", name)
		}
	}
	if !strings.Contains(r.Render(), "Figure 5") {
		t.Fatal("Render missing title")
	}
}

func TestFig5ImageTooLarge(t *testing.T) {
	p := SmallFig5Params()
	p.W, p.H = 4096, 4096
	if _, err := RunFig5(p); err == nil {
		t.Fatal("oversized image accepted")
	}
}

func TestTable1(t *testing.T) {
	r, err := RunTable1(DefaultTable1Params())
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxUnique != "8.69e+795" {
		t.Fatalf("MaxUnique = %s", r.MaxUnique)
	}
	if r.MismatchHigh != "8.32e-597" {
		t.Fatalf("MismatchHigh = %s", r.MismatchHigh)
	}
	if r.AltEntropyBits < 2422 || r.AltEntropyBits > 2424 {
		t.Fatalf("AltEntropyBits = %v, want ~2423 (paper)", r.AltEntropyBits)
	}
	out := r.Render()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "8.70e+795") {
		t.Fatal("Render missing paper comparison")
	}
	if _, err := RunTable1(Table1Params{M: 0}); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestTable2(t *testing.T) {
	r, err := RunTable2(DefaultTable2Params())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Log10 >= r.Rows[i-1].Log10 {
			t.Fatalf("mismatch bound not shrinking: %+v", r.Rows)
		}
	}
	if !strings.Contains(r.Render(), "Table 2") {
		t.Fatal("Render missing title")
	}
	if _, err := RunTable2(Table2Params{}); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestFig13Convergence(t *testing.T) {
	r, err := RunFig13(SmallFig13Params())
	if err != nil {
		t.Fatal(err)
	}
	if r.Final != 1 {
		t.Fatalf("final clusters = %d, want 1", r.Final)
	}
	if r.Peak < 3 {
		t.Fatalf("peak = %d — curve degenerate", r.Peak)
	}
	// Peak must occur in the first half (rise then converge).
	if r.PeakAt > r.Params.Samples/2 {
		t.Fatalf("peak at sample %d of %d — no convergence phase", r.PeakAt, r.Params.Samples)
	}
	if r.CoveredPages > r.Params.MemoryPages {
		t.Fatalf("database %d pages exceeds memory %d", r.CoveredPages, r.Params.MemoryPages)
	}
	if got := r.Series(10); len(got) != 10 {
		t.Fatalf("Series = %d points", len(got))
	}
	if !strings.HasPrefix(r.CSV(), "samples,suspected_chips\n") {
		t.Fatal("CSV header wrong")
	}
	if !strings.Contains(r.Render(), "Figure 13") {
		t.Fatal("Render missing title")
	}
}

func TestFig13ScatteredPreventsConvergence(t *testing.T) {
	p := SmallFig13Params()
	p.Samples = 60
	p.Scattered = true
	p.MinOverlap = 2
	r, err := RunFig13(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Final < p.Samples*9/10 {
		t.Fatalf("final clusters = %d of %d samples — ASLR defense failed", r.Final, p.Samples)
	}
}

func TestFig13Validation(t *testing.T) {
	p := SmallFig13Params()
	p.SamplePages = p.MemoryPages + 1
	if _, err := RunFig13(p); err == nil {
		t.Fatal("oversized sample accepted")
	}
	p = SmallFig13Params()
	p.Samples = 0
	if _, err := RunFig13(p); err == nil {
		t.Fatal("0 samples accepted")
	}
}

func TestDDR2(t *testing.T) {
	r, err := RunDDR2(SmallDDR2Params())
	if err != nil {
		t.Fatal(err)
	}
	if r.IdentifyCorrect != r.IdentifyTotal {
		t.Fatalf("identification %d/%d", r.IdentifyCorrect, r.IdentifyTotal)
	}
	if r.BowleySkew >= -0.05 {
		t.Fatalf("DDR2 Bowley skew = %v, want clearly negative (volatile-heavy)", r.BowleySkew)
	}
	if r.KMBowleySkew < -0.05 || r.KMBowleySkew > 0.05 {
		t.Fatalf("KM41464A Bowley skew = %v, want ~0 (no skew)", r.KMBowleySkew)
	}
	if !strings.Contains(r.Render(), "DDR2") {
		t.Fatal("Render missing title")
	}
	if _, err := RunDDR2(DDR2Params{Chips: 1}); err == nil {
		t.Fatal("1-chip DDR2 accepted")
	}
}

func TestDefensesNoiseSweep(t *testing.T) {
	r, err := RunDefenses(SmallDefensesParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Noise) != 3 {
		t.Fatalf("%d rows", len(r.Noise))
	}
	clean := r.Noise[0]
	if clean.IdentifyCorrect != clean.IdentifyTotal {
		t.Fatalf("clean identification %d/%d", clean.IdentifyCorrect, clean.IdentifyTotal)
	}
	// Mean within-class distance grows with noise.
	for i := 1; i < len(r.Noise); i++ {
		if r.Noise[i].MeanWithin < r.Noise[i-1].MeanWithin {
			t.Fatalf("within distance not increasing with noise: %+v", r.Noise)
		}
	}
	if !strings.Contains(r.Render(), "defenses") {
		t.Fatal("Render missing title")
	}
	if _, err := RunDefenses(DefensesParams{Chips: 1, Outputs: 1}); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestAblationHamming(t *testing.T) {
	r, err := RunAblationHamming(6, 32768, 0xAB1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.JaccardSeparable {
		t.Fatalf("modified Jaccard not separable: within %v vs between %v",
			r.JaccardWithinMax, r.JaccardBetweenMin)
	}
	if r.HammingSeparable {
		t.Fatalf("Hamming unexpectedly separable (within %v < between %v) — the §5.2 failure mode did not reproduce",
			r.HammingWithinMax, r.HammingBetweenMin)
	}
	if !strings.Contains(r.Render(), "Jaccard") {
		t.Fatal("Render missing title")
	}
	if _, err := RunAblationHamming(1, 32768, 1); err == nil {
		t.Fatal("1-chip ablation accepted")
	}
}

func TestAblationIntersect(t *testing.T) {
	r, err := RunAblationIntersect(8, 32768, 0xAB2)
	if err != nil {
		t.Fatal(err)
	}
	if r.NoiseBitsIntersect > r.NoiseBitsUnion {
		t.Fatalf("intersection kept more noise (%d) than union (%d)",
			r.NoiseBitsIntersect, r.NoiseBitsUnion)
	}
	if r.NoiseBitsUnion == 0 {
		t.Fatal("union kept no noise — noise model inert")
	}
	if !strings.Contains(r.Render(), "intersection") {
		t.Fatal("Render missing title")
	}
	if _, err := RunAblationIntersect(1, 32768, 1); err == nil {
		t.Fatal("1-trial ablation accepted")
	}
}

func TestErrLoc(t *testing.T) {
	r, err := RunErrLoc(SmallErrLocParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.RecomputeIdentified != r.Total {
		t.Fatalf("recompute identified %d/%d", r.RecomputeIdentified, r.Total)
	}
	if r.SpeculativeIdentified != r.Total {
		t.Fatalf("speculative identified %d/%d", r.SpeculativeIdentified, r.Total)
	}
	if r.MedianRecall < 0.3 {
		t.Fatalf("median recall = %v — estimator useless", r.MedianRecall)
	}
	if !strings.Contains(r.Render(), "error localization") {
		t.Fatal("Render missing title")
	}
	if _, err := RunErrLoc(ErrLocParams{Chips: 1}); err == nil {
		t.Fatal("1-chip errloc accepted")
	}
	p := SmallErrLocParams()
	p.W, p.H = 4096, 4096
	if _, err := RunErrLoc(p); err == nil {
		t.Fatal("oversized image accepted")
	}
}

func TestCrossMechanism(t *testing.T) {
	r, err := RunCrossMechanism(SmallCrossMechParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.VoltOnRefreshFP != r.Total || r.RefreshOnVoltFP != r.Total {
		t.Fatalf("cross-mechanism identification %d/%d and %d/%d, want all",
			r.VoltOnRefreshFP, r.Total, r.RefreshOnVoltFP, r.Total)
	}
	if r.MeanWithinVR > 0.05 || r.MeanWithinRV > 0.05 {
		t.Fatalf("cross-mechanism distances %v / %v too large", r.MeanWithinVR, r.MeanWithinRV)
	}
	if !strings.Contains(r.Render(), "mechanisms") {
		t.Fatal("Render missing title")
	}
	if _, err := RunCrossMechanism(CrossMechParams{Chips: 1}); err == nil {
		t.Fatal("1-chip cross-mechanism accepted")
	}
}

func TestScrambling(t *testing.T) {
	r, err := RunScrambling(SmallScrambleParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.PlainIdentified != r.Total {
		t.Fatalf("plain identification %d/%d", r.PlainIdentified, r.Total)
	}
	if r.ScrambledIdentified != 0 {
		t.Fatalf("scrambled outputs identified %d times — defense failed", r.ScrambledIdentified)
	}
	if r.ScrambledClusters != r.Params.Outputs {
		t.Fatalf("scrambled clusters = %d, want %d (each output unlinkable)",
			r.ScrambledClusters, r.Params.Outputs)
	}
	// Quality unchanged within noise (both paths store half-charged data).
	if diff := r.ScrambledErrRate - r.PlainErrRate; diff < -0.005 || diff > 0.005 {
		t.Fatalf("scrambling changed the error rate: %v vs %v", r.PlainErrRate, r.ScrambledErrRate)
	}
	if !strings.Contains(r.Render(), "anonymity") {
		t.Fatal("Render missing title")
	}
	if _, err := RunScrambling(ScrambleParams{Chips: 1, Outputs: 1}); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestRefreshSchemes(t *testing.T) {
	r, err := RunRefreshSchemes(DefaultRefreshSchemesParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.PlainOverlap < 0.9 || r.PartitionedApproxOverlap < 0.9 || r.RowAwareOverlap < 0.9 {
		t.Fatalf("overlaps %v / %v / %v — fingerprint should persist under every scheme",
			r.PlainOverlap, r.PartitionedApproxOverlap, r.RowAwareOverlap)
	}
	if r.ExactZoneErrors != 0 {
		t.Fatalf("Flikker exact zone produced %d errors", r.ExactZoneErrors)
	}
	if !strings.Contains(r.Render(), "refresh architectures") {
		t.Fatal("Render missing title")
	}
	p := DefaultRefreshSchemesParams()
	p.ExactBytes = 0
	if _, err := RunRefreshSchemes(p); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestAllocatorComparison(t *testing.T) {
	r, err := RunAllocatorComparison(SmallAllocatorParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.UniformFinal != 1 {
		t.Fatalf("uniform model did not converge: %d clusters", r.UniformFinal)
	}
	if r.SystemFinal < r.UniformFinal {
		t.Fatalf("allocator realism cannot beat the uniform model: %d vs %d",
			r.SystemFinal, r.UniformFinal)
	}
	if r.SystemFinal > r.Params.Samples/5 {
		t.Fatalf("system model barely stitched: %d clusters of %d samples",
			r.SystemFinal, r.Params.Samples)
	}
	if !strings.Contains(r.Render(), "allocator realism") {
		t.Fatal("Render missing title")
	}
	if _, err := RunAllocatorComparison(AllocatorParams{}); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestCollisions(t *testing.T) {
	r, err := RunCollisions(SmallCollisionParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Collisions != 0 {
		t.Fatalf("%d collisions among independent fingerprints", r.Collisions)
	}
	if r.MinDistance < 0.5 {
		t.Fatalf("min pairwise distance = %v — fingerprint space too small", r.MinDistance)
	}
	if r.Pairs != 200*199/2 {
		t.Fatalf("pairs = %d", r.Pairs)
	}
	if r.AnalyticLog10 > -100 {
		t.Fatalf("analytic bound log10 = %v — not astronomically small", r.AnalyticLog10)
	}
	if !strings.Contains(r.Render(), "Monte-Carlo") {
		t.Fatal("Render missing title")
	}
	if _, err := RunCollisions(CollisionParams{Fingerprints: 1}); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestThresholdSweep(t *testing.T) {
	r, err := RunThresholdSweep(corpus(t), DefaultThresholdSweep(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.PlateauLo < 0 {
		t.Fatal("no zero-error plateau — separation collapsed")
	}
	if !(r.ChosenThreshold >= r.PlateauLo && r.ChosenThreshold <= r.PlateauHi) {
		t.Fatalf("default threshold %v outside plateau [%v, %v]",
			r.ChosenThreshold, r.PlateauLo, r.PlateauHi)
	}
	// The plateau must span at least an order of magnitude.
	if r.PlateauHi/r.PlateauLo < 10 {
		t.Fatalf("plateau [%v, %v] narrower than one order of magnitude",
			r.PlateauLo, r.PlateauHi)
	}
	if !strings.Contains(r.Render(), "plateau") {
		t.Fatal("Render missing plateau")
	}
	if _, err := RunThresholdSweep(corpus(t), nil, 1); err == nil {
		t.Fatal("empty sweep accepted")
	}
}

func TestFig13MultiVictim(t *testing.T) {
	p := SmallFig13Params()
	p.Victims = 3
	p.Samples = 1500 // 500 per victim, enough for each to converge
	r, err := RunFig13(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Final != 3 {
		t.Fatalf("final clusters = %d, want exactly 3 (one per machine)", r.Final)
	}
}

func TestUniquenessCSVs(t *testing.T) {
	r7 := RunFig7(corpus(t), 1)
	csv := r7.CSV()
	if !strings.HasPrefix(csv, "class,distance\n") || !strings.Contains(csv, "within,") || !strings.Contains(csv, "between,") {
		t.Fatalf("fig7 CSV malformed: %.80s", csv)
	}
	r9 := RunFig9(corpus(t), 1)
	if !strings.HasPrefix(r9.GroupedDistances.CSV(), "temperature,distance\n") {
		t.Fatal("fig9 CSV header wrong")
	}
	r11 := RunFig11(corpus(t), 1)
	if !strings.HasPrefix(r11.GroupedDistances.CSV(), "accuracy,distance\n") {
		t.Fatal("fig11 CSV header wrong")
	}
}

func TestModelCheck(t *testing.T) {
	r, err := RunModelCheck(DefaultModelCheckParams())
	if err != nil {
		t.Fatal(err)
	}
	// Both layers must show high repeatability, near-perfect subset
	// ordering, and tiny cross-device overlap — and agree with each other.
	if r.SimRepeatability < 0.95 || r.ModelRepeatability < 0.95 {
		t.Fatalf("repeatability sim %v model %v", r.SimRepeatability, r.ModelRepeatability)
	}
	if r.SimSubsetFraction < 0.99 || r.ModelSubsetFraction < 0.99 {
		t.Fatalf("subset fraction sim %v model %v", r.SimSubsetFraction, r.ModelSubsetFraction)
	}
	if r.SimCrossOverlap > 0.1 || r.ModelCrossOverlap > 0.1 {
		t.Fatalf("cross overlap sim %v model %v", r.SimCrossOverlap, r.ModelCrossOverlap)
	}
	if diff := r.SimRepeatability - r.ModelRepeatability; diff < -0.05 || diff > 0.05 {
		t.Fatalf("layers disagree on repeatability: %v vs %v", r.SimRepeatability, r.ModelRepeatability)
	}
	if !strings.Contains(r.Render(), "Model validation") {
		t.Fatal("Render missing title")
	}
	if _, err := RunModelCheck(ModelCheckParams{Trials: 1}); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestEnergyPrivacy(t *testing.T) {
	r, err := RunEnergyPrivacy(SmallEnergyParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.ExactInterval <= 0 {
		t.Fatalf("exact interval = %v", r.ExactInterval)
	}
	prevRatio := 1.0
	for _, row := range r.Rows {
		// Lower accuracy → longer interval → less refresh energy.
		if row.EnergyRatio >= prevRatio {
			t.Fatalf("energy ratio not decreasing: %+v", r.Rows)
		}
		prevRatio = row.EnergyRatio
		if row.EnergyRatio >= 1 {
			t.Fatalf("approximate operation costs more than exact: %+v", row)
		}
		if row.Identified != row.Total {
			t.Fatalf("accuracy %v: only %d/%d identified", row.Accuracy, row.Identified, row.Total)
		}
	}
	if !strings.Contains(r.Render(), "refresh energy") {
		t.Fatal("Render missing title")
	}
	if _, err := RunEnergyPrivacy(EnergyParams{Chips: 1}); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestApps(t *testing.T) {
	r, err := RunApps(SmallAppsParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.VisionIdentified != r.Total || r.MLIdentified != r.Total || r.SensorIdentified != r.Total {
		t.Fatalf("identification vision %d, ml %d, sensor %d of %d",
			r.VisionIdentified, r.MLIdentified, r.SensorIdentified, r.Total)
	}
	if !strings.Contains(r.Render(), "application independent") {
		t.Fatal("Render missing title")
	}
	if _, err := RunApps(AppsParams{Chips: 1}); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestFig8CSV(t *testing.T) {
	r, err := RunFig8(SmallFig8Params())
	if err != nil {
		t.Fatal(err)
	}
	csv := r.CSV()
	if !strings.HasPrefix(csv, "bit,failures\n") || len(strings.Split(csv, "\n")) < 10 {
		t.Fatalf("fig8 CSV malformed: %.60s", csv)
	}
}

// TestIdentificationAcrossJEDECRange pushes temperature robustness beyond
// the paper's 40–60 °C chamber sweep to the full JEDEC commercial range:
// the adaptive controller retargets accuracy at every temperature, so the
// failing-cell *set* — and therefore identification — is stable from 0 to
// 85 °C.
func TestIdentificationAcrossJEDECRange(t *testing.T) {
	c := corpus(t)
	db := newDBFromCorpus(c)
	cfg := dramConfigForCorpus(c.Params, 0)
	chip, err := newChipFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := newMemory(chip, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	for _, temp := range []float64{0, 20, 40, 60, 85} {
		if err := mem.SetTemperature(temp); err != nil {
			t.Fatal(err)
		}
		a, e, err := mem.WorstCaseOutput()
		if err != nil {
			t.Fatal(err)
		}
		es, err := errorStringOf(a, e)
		if err != nil {
			t.Fatal(err)
		}
		if _, idx, ok := db.Identify(es); !ok || idx != 0 {
			t.Fatalf("chip 0 not identified at %v°C (idx=%d ok=%v)", temp, idx, ok)
		}
	}
}

// Helpers for the JEDEC-range test, kept local to the test file.
func newDBFromCorpus(c *Corpus) *fingerprint.DB {
	db := fingerprint.NewDB(fingerprint.DefaultThreshold)
	for i, fp := range c.Fingerprints {
		db.Add(fmt.Sprintf("chip%02d", i), fp)
	}
	return db
}

func dramConfigForCorpus(p CorpusParams, i int) dram.Config {
	cfg := dram.KM41464A(p.Seed + uint64(i)*0x9E37)
	cfg.Geometry = p.Geometry
	return cfg
}

func newChipFromConfig(cfg dram.Config) (*dram.Chip, error) { return dram.NewChip(cfg) }

func newMemory(chip *dram.Chip, acc float64) (*approx.Memory, error) {
	return approx.New(chip, acc)
}

func errorStringOf(a, e []byte) (*bitset.Set, error) { return fingerprint.ErrorString(a, e) }

func TestECCDefense(t *testing.T) {
	r, err := RunECCDefense(SmallECCParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.VisibleErrRate >= r.RawErrRate {
		t.Fatalf("ECC did not reduce the error rate: %v vs %v", r.VisibleErrRate, r.RawErrRate)
	}
	if r.VisibleErrRate == 0 {
		t.Fatal("ECC removed all errors — multi-bit words should survive at 1% raw error")
	}
	if r.Identified != r.Total {
		t.Fatalf("identification through ECC %d/%d", r.Identified, r.Total)
	}
	if r.UncorrectableWords == 0 {
		t.Fatal("no uncorrectable words")
	}
	if !strings.Contains(r.Render(), "SEC-DED") {
		t.Fatal("Render missing title")
	}
	if _, err := RunECCDefense(ECCParams{Chips: 1, Words: 1}); err == nil {
		t.Fatal("bad params accepted")
	}
	p := SmallECCParams()
	p.Words = 1 << 20
	if _, err := RunECCDefense(p); err == nil {
		t.Fatal("oversized words accepted")
	}
}

func TestColdBoot(t *testing.T) {
	r, err := RunColdBoot(DefaultColdBootParams())
	if err != nil {
		t.Fatal(err)
	}
	byTempOff := map[[2]float64]float64{}
	for _, c := range r.Cells {
		if c.Recovered < 0 || c.Recovered > 1 {
			t.Fatalf("recovered fraction %v", c.Recovered)
		}
		byTempOff[[2]float64{c.TempC, c.OffTime}] = c.Recovered
	}
	// Colder transport preserves more at every off-time.
	for _, off := range r.Params.OffTimes {
		cold := byTempOff[[2]float64{-20, off}]
		warm := byTempOff[[2]float64{40, off}]
		if cold < warm {
			t.Fatalf("cold (%v) recovered less than warm (%v) at %vs", cold, warm, off)
		}
	}
	// At -20°C even 60s off keeps essentially the whole key; at 40°C it is
	// badly damaged.
	if byTempOff[[2]float64{-20, 60}] < 0.99 {
		t.Fatalf("cold transport lost too much: %v", byTempOff[[2]float64{-20, 60}])
	}
	if byTempOff[[2]float64{40, 60}] > 0.5 {
		t.Fatalf("warm transport preserved too much: %v", byTempOff[[2]float64{40, 60}])
	}
	if !strings.Contains(r.Render(), "cold-boot") {
		t.Fatal("Render missing title")
	}
	if _, err := RunColdBoot(ColdBootParams{}); err == nil {
		t.Fatal("bad params accepted")
	}
}
