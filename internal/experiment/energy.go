package experiment

import (
	"fmt"
	"strings"

	"probablecause/internal/approx"
	"probablecause/internal/dram"
	"probablecause/internal/fingerprint"
)

// EnergyParams parameterizes the motivation experiment: approximate DRAM
// exists to save refresh energy (§1–§2); this run quantifies the refresh-
// energy saving at each accuracy level *and* whether outputs at that level
// are identifiable — the trade the paper says designers are making without
// knowing it.
type EnergyParams struct {
	Geometry   dram.Geometry
	Accuracies []float64
	Chips      int
	Seed       uint64
}

// DefaultEnergyParams sweeps the paper's accuracy levels plus a lighter one.
func DefaultEnergyParams() EnergyParams {
	return EnergyParams{
		Geometry:   dram.KM41464A(0).Geometry,
		Accuracies: []float64{0.999, 0.99, 0.95, 0.90},
		Chips:      3,
		Seed:       0xE4E6,
	}
}

// SmallEnergyParams returns a reduced setup for tests.
func SmallEnergyParams() EnergyParams {
	p := DefaultEnergyParams()
	p.Geometry = dram.Geometry{Rows: 64, Cols: 256, BitsPerWord: 4, DefaultStripe: 2}
	p.Chips = 2
	return p
}

// EnergyRow is one accuracy level's numbers.
type EnergyRow struct {
	Accuracy float64
	// Interval is the calibrated refresh interval in seconds.
	Interval float64
	// EnergyRatio is refresh energy relative to exact operation (refresh
	// power scales with refresh frequency, so the ratio is
	// exactInterval / approxInterval).
	EnergyRatio float64
	// Identified reports whether every output at this level matched its
	// chip's fingerprint.
	Identified, Total int
}

// EnergyResult is the accuracy / energy / privacy table.
type EnergyResult struct {
	Params EnergyParams
	// ExactInterval is the refresh period of exact operation: half the time
	// to the first worst-case failure (the guard-banded rate approximate
	// computing relaxes).
	ExactInterval float64
	Rows          []EnergyRow
}

// RunEnergyPrivacy sweeps accuracy levels, measuring refresh-energy savings
// and identifiability together.
func RunEnergyPrivacy(p EnergyParams) (*EnergyResult, error) {
	if p.Chips < 2 || len(p.Accuracies) == 0 {
		return nil, fmt.Errorf("experiment: bad energy params %+v", p)
	}
	r := &EnergyResult{Params: p}

	// Build chips and their fingerprints at the tightest accuracy.
	type victim struct {
		mem *approx.Memory
	}
	db := fingerprint.NewDB(fingerprint.DefaultThreshold)
	var victims []victim
	for i := 0; i < p.Chips; i++ {
		cfg := dram.KM41464A(p.Seed + uint64(i)*0x45)
		cfg.Geometry = p.Geometry
		chip, err := dram.NewChip(cfg)
		if err != nil {
			return nil, err
		}
		mem, err := approx.New(chip, p.Accuracies[len(p.Accuracies)-1])
		if err != nil {
			return nil, err
		}
		a1, exact, err := mem.WorstCaseOutput()
		if err != nil {
			return nil, err
		}
		a2, _, err := mem.WorstCaseOutput()
		if err != nil {
			return nil, err
		}
		fp, err := fingerprint.Characterize(exact, a1, a2)
		if err != nil {
			return nil, err
		}
		db.Add(fmt.Sprintf("chip%02d", i), fp)
		victims = append(victims, victim{mem: mem})
		if i == 0 {
			// Exact-operation refresh period: half the first failure time.
			if err := chip.Write(0, chip.WorstCaseData()); err != nil {
				return nil, err
			}
			r.ExactInterval = bisectTime(chip, 1) / 2
		}
	}

	for _, acc := range p.Accuracies {
		row := EnergyRow{Accuracy: acc}
		var intervalSum float64
		for i, v := range victims {
			if err := v.mem.SetAccuracy(acc); err != nil {
				return nil, err
			}
			intervalSum += v.mem.RefreshInterval()
			a, exact, err := v.mem.WorstCaseOutput()
			if err != nil {
				return nil, err
			}
			es, err := fingerprint.ErrorString(a, exact)
			if err != nil {
				return nil, err
			}
			if _, idx, ok := db.Identify(es); ok && idx == i {
				row.Identified++
			}
			row.Total++
		}
		row.Interval = intervalSum / float64(len(victims))
		row.EnergyRatio = r.ExactInterval / row.Interval
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}

// Render prints the accuracy / energy / privacy table.
func (r *EnergyResult) Render() string {
	var b strings.Builder
	b.WriteString("Motivation — refresh energy vs accuracy vs privacy\n\n")
	fmt.Fprintf(&b, "exact-operation refresh period: %.3fs (guard-banded to the weakest cell)\n\n", r.ExactInterval)
	fmt.Fprintf(&b, "%-10s %-14s %-22s %-14s\n", "accuracy", "interval (s)", "refresh energy (×exact)", "identified")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %-14.3f %-22.4f %d/%d\n",
			fmt.Sprintf("%.1f%%", row.Accuracy*100), row.Interval, row.EnergyRatio, row.Identified, row.Total)
	}
	b.WriteString("\n(every row that saves energy is fully identifiable: the energy saving and the\n")
	b.WriteString(" privacy loss are the same physical phenomenon — the paper's core trade-off)\n")
	return b.String()
}
