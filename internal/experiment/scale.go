package experiment

import (
	"fmt"
	"strings"
	"time"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
	"probablecause/internal/prng"
)

// ScaleParams parameterizes the identification-at-scale experiment: a
// synthetic corpus far beyond the paper's 10-chip population (ROADMAP item
// 1's regime), used to compare the dense scan, the LSH-indexed path, and the
// bit-sliced path on identical queries. The corpus is synthetic on purpose —
// drammodel realism adds nothing to a layout benchmark, and direct
// pseudo-random fingerprints are what lets the experiment reach 100k entries
// in seconds.
type ScaleParams struct {
	Entries int
	Bits    int
	// MinCard/MaxCard bound the per-entry fingerprint weight (uniformly
	// seeded in between), so sliced blocks mix cardinality orientations.
	MinCard, MaxCard int
	// HitQueries are perturbed copies of registered fingerprints (one bit
	// dropped — trial flicker); MissQueries are fresh random sets that match
	// nothing and drive every path through its fallback scan.
	HitQueries, MissQueries int
	Threshold               float64
	Seed                    uint64
	// Workers bounds the index-build signing pool; identification itself is
	// timed serially so the three paths compare like for like.
	Workers int
	// Probes enables multi-probe candidate expansion on the indexed and
	// sliced paths.
	Probes bool
	// BlockEntries is the sliced block width; 0 selects the default.
	BlockEntries int
}

// DefaultScaleParams is the 100k-entry configuration the PR-8 acceptance
// criteria name.
func DefaultScaleParams() ScaleParams {
	return ScaleParams{
		Entries:     100_000,
		Bits:        4096,
		MinCard:     40,
		MaxCard:     80,
		HitQueries:  100,
		MissQueries: 100,
		Threshold:   fingerprint.DefaultThreshold,
		Seed:        0x5CA1E,
		Probes:      true,
	}
}

// SmallScaleParams returns a faster configuration for tests.
func SmallScaleParams() ScaleParams {
	p := DefaultScaleParams()
	p.Entries = 3000
	p.HitQueries = 25
	p.MissQueries = 25
	return p
}

// ScaleResult reports the agreement check and the per-path timings.
type ScaleResult struct {
	Params  ScaleParams
	Queries int
	Hits    int
	Misses  int
	// Mismatches counts queries where the indexed or sliced verdict differed
	// from the dense scan — the invariance the sliced engine promises, so
	// RunScale fails loudly when it is nonzero.
	Mismatches int
	// Per-query mean identify latency per path (wall clock, serial).
	ScanPerQuery, IndexedPerQuery, SlicedPerQuery time.Duration
	// Speedups versus the dense scan and versus the indexed path.
	IndexedSpeedup, SlicedSpeedup, SlicedVsIndexed float64

	verdicts []fingerprint.Verdict
	kinds    []string
}

// scaleFP builds one ~card-bit fingerprint over nbits positions as a pure
// function of seed.
func scaleFP(nbits, card int, seed uint64) *bitset.Set {
	s := bitset.New(nbits)
	for k := 0; s.Count() < card; k++ {
		s.Set(int(prng.Hash(seed, uint64(k)) % uint64(nbits)))
	}
	return s
}

// RunScale builds the corpus once, stands up all three identification paths
// over the same shared DB, checks verdict agreement on every query, and
// times serial Identify sweeps per path.
func RunScale(p ScaleParams) (*ScaleResult, error) {
	if p.Entries < 1 || p.Bits < 1 || p.MinCard < 1 || p.MaxCard < p.MinCard {
		return nil, fmt.Errorf("experiment: bad scale params %+v", p)
	}
	db := fingerprint.NewDB(p.Threshold)
	for i := 0; i < p.Entries; i++ {
		card := p.MinCard + int(prng.Hash(p.Seed, uint64(i))%uint64(p.MaxCard-p.MinCard+1))
		db.Add(fmt.Sprintf("dev%07d", i), scaleFP(p.Bits, card, p.Seed^uint64(i)))
	}
	icfg := fingerprint.IndexedConfig{Workers: p.Workers, Probes: p.Probes}
	ix, err := fingerprint.IndexDB(db, icfg)
	if err != nil {
		return nil, err
	}
	sx, err := fingerprint.SliceDB(db, fingerprint.SlicedConfig{Index: icfg, BlockEntries: p.BlockEntries})
	if err != nil {
		return nil, err
	}

	var queries []*bitset.Set
	var kinds []string
	for k := 0; k < p.HitQueries; k++ {
		i := int(prng.Hash(p.Seed, 0x417, uint64(k)) % uint64(p.Entries))
		q := db.Entries()[i].FP.Clone()
		pos := q.Positions()
		q.Clear(int(pos[prng.Hash(p.Seed, 0x418, uint64(k))%uint64(len(pos))]))
		queries = append(queries, q)
		kinds = append(kinds, "hit")
	}
	for k := 0; k < p.MissQueries; k++ {
		queries = append(queries, scaleFP(p.Bits, p.MinCard, 0xA15500^prng.Hash(p.Seed, uint64(k))))
		kinds = append(kinds, "miss")
	}

	r := &ScaleResult{Params: p, Queries: len(queries), kinds: kinds}
	// Agreement first (untimed): the three paths must return the identical
	// identify triple on every query.
	r.verdicts = make([]fingerprint.Verdict, len(queries))
	for qi, q := range queries {
		sn, si, sok := db.Identify(q)
		r.verdicts[qi] = db.Decide(q)
		if sok {
			r.Hits++
		} else {
			r.Misses++
		}
		in, ii, iok := ix.Identify(q)
		xn, xi, xok := sx.Identify(q)
		if sn != in || si != ii || sok != iok || sn != xn || si != xi || sok != xok {
			r.Mismatches++
		}
	}
	if r.Mismatches > 0 {
		return nil, fmt.Errorf("experiment: %d/%d queries diverged across scan/indexed/sliced", r.Mismatches, r.Queries)
	}

	timeSweep := func(ident fingerprint.Identifier) time.Duration {
		t0 := time.Now()
		for _, q := range queries {
			ident.Identify(q)
		}
		return time.Since(t0) / time.Duration(len(queries))
	}
	// The agreement pass above already touched every fingerprint once, so no
	// path inherits a cold cache from running first.
	r.SlicedPerQuery = timeSweep(sx)
	r.IndexedPerQuery = timeSweep(ix)
	r.ScanPerQuery = timeSweep(db)
	r.IndexedSpeedup = float64(r.ScanPerQuery) / float64(r.IndexedPerQuery)
	r.SlicedSpeedup = float64(r.ScanPerQuery) / float64(r.SlicedPerQuery)
	r.SlicedVsIndexed = float64(r.IndexedPerQuery) / float64(r.SlicedPerQuery)
	return r, nil
}

// CSV renders the per-query scan verdicts — a pure function of the seed, so
// the artifact is byte-identical across runs and machines (timings stay in
// the Section text, where machine dependence belongs).
func (r *ScaleResult) CSV() []byte {
	var b strings.Builder
	b.WriteString("query,kind,name,index,distance,matches\n")
	for qi, v := range r.verdicts {
		fmt.Fprintf(&b, "%d,%s,%s,%d,%.6f,%d\n", qi, r.kinds[qi], v.Name, v.Index, v.Distance, v.Matches)
	}
	return []byte(b.String())
}

// Render prints the agreement summary and the timing comparison.
func (r *ScaleResult) Render() string {
	var b strings.Builder
	b.WriteString("identification at scale — scan vs indexed vs bit-sliced\n\n")
	fmt.Fprintf(&b, "corpus: %d entries × %d bits (cards %d–%d), %d queries (%d hit / %d miss)\n\n",
		r.Params.Entries, r.Params.Bits, r.Params.MinCard, r.Params.MaxCard, r.Queries, r.Hits, r.Misses)
	fmt.Fprintf(&b, "verdict agreement: %d/%d queries identical across all three paths\n\n",
		r.Queries-r.Mismatches, r.Queries)
	fmt.Fprintf(&b, "%-10s %14s %10s\n", "path", "per query", "vs scan")
	fmt.Fprintf(&b, "%-10s %14s %10s\n", "scan", r.ScanPerQuery.Round(time.Microsecond), "1.0×")
	fmt.Fprintf(&b, "%-10s %14s %9.1f×\n", "indexed", r.IndexedPerQuery.Round(time.Microsecond), r.IndexedSpeedup)
	fmt.Fprintf(&b, "%-10s %14s %9.1f×\n", "sliced", r.SlicedPerQuery.Round(time.Microsecond), r.SlicedSpeedup)
	fmt.Fprintf(&b, "\nsliced vs indexed: %.1f× (the miss path: pruned block sweep vs scalar fallback scan)\n", r.SlicedVsIndexed)
	return b.String()
}
