// Package experiment contains one driver per table and figure of the paper's
// evaluation (§7–§8). Each driver takes a Params struct (with paper-scale
// defaults and scaled-down variants for tests), runs the experiment on the
// simulated platform, and returns a Result that renders the same rows or
// series the paper reports.
package experiment

import (
	"fmt"
	"sync"

	"probablecause/internal/approx"
	"probablecause/internal/bitset"
	"probablecause/internal/dram"
	"probablecause/internal/fingerprint"
)

// CorpusParams describes the §7.1 measurement campaign: a population of
// chips, a set of operating temperatures and accuracy levels, and the number
// of outputs used to characterize each chip.
type CorpusParams struct {
	Chips      int
	Geometry   dram.Geometry
	Temps      []float64 // °C
	Accuracies []float64 // fraction correct with worst-case data
	// FPOutputs is the number of outputs intersected into each chip's
	// fingerprint ("three outputs created at 1% error and different
	// temperatures").
	FPOutputs  int
	FPAccuracy float64
	Seed       uint64
}

// DefaultCorpusParams returns the paper's campaign: 10 KM41464A chips, 3
// fingerprinting outputs at 99 % accuracy, and 9 test outputs per chip over
// {40, 50, 60} °C × {99, 95, 90} %.
func DefaultCorpusParams() CorpusParams {
	return CorpusParams{
		Chips:      10,
		Geometry:   dram.KM41464A(0).Geometry,
		Temps:      []float64{40, 50, 60},
		Accuracies: []float64{0.99, 0.95, 0.90},
		FPOutputs:  3,
		FPAccuracy: 0.99,
		Seed:       0xF00D,
	}
}

// SmallCorpusParams returns a 16×-smaller campaign for tests: same structure,
// 8 KB chips.
func SmallCorpusParams() CorpusParams {
	p := DefaultCorpusParams()
	p.Chips = 4
	p.Geometry = dram.Geometry{Rows: 64, Cols: 256, BitsPerWord: 4, DefaultStripe: 2}
	return p
}

func (p CorpusParams) validate() error {
	if p.Chips < 2 {
		return fmt.Errorf("experiment: need ≥2 chips, have %d", p.Chips)
	}
	if len(p.Temps) == 0 || len(p.Accuracies) == 0 {
		return fmt.Errorf("experiment: empty temperature or accuracy sweep")
	}
	if p.FPOutputs < 1 {
		return fmt.Errorf("experiment: need ≥1 fingerprinting output")
	}
	return nil
}

// Output is one approximate result captured from a chip under one operating
// condition, reduced to its error string.
type Output struct {
	Chip     int
	TempC    float64
	Accuracy float64
	Errors   *bitset.Set
}

// Corpus is the full measurement campaign: per-chip fingerprints plus every
// test output.
type Corpus struct {
	Params       CorpusParams
	Fingerprints []*bitset.Set
	Outputs      []Output
}

// BuildCorpus runs the campaign on freshly manufactured simulated chips.
// Chips are measured concurrently — each chip is a fully independent
// deterministic unit, so the corpus is identical regardless of scheduling.
func BuildCorpus(p CorpusParams) (*Corpus, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	done := track("corpus")
	defer func() { done(p.Chips) }()
	c := &Corpus{
		Params:       p,
		Fingerprints: make([]*bitset.Set, p.Chips),
	}
	perChip := make([][]Output, p.Chips)
	errs := make([]error, p.Chips)
	var wg sync.WaitGroup
	for i := 0; i < p.Chips; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.Fingerprints[i], perChip[i], errs[i] = measureChip(p, i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiment: chip %d: %w", i, err)
		}
		c.Outputs = append(c.Outputs, perChip[i]...)
	}
	return c, nil
}

// measureChip characterizes one chip and collects its condition-grid
// outputs.
func measureChip(p CorpusParams, i int) (*bitset.Set, []Output, error) {
	cfg := dram.KM41464A(p.Seed + uint64(i)*0x9E37)
	cfg.Geometry = p.Geometry
	chip, err := dram.NewChip(cfg)
	if err != nil {
		return nil, nil, err
	}
	mem, err := approx.New(chip, p.FPAccuracy)
	if err != nil {
		return nil, nil, fmt.Errorf("controller: %w", err)
	}

	// Characterization: FPOutputs worst-case outputs cycling through the
	// temperature sweep, intersected per Algorithm 1.
	var approxes [][]byte
	var exact []byte
	for k := 0; k < p.FPOutputs; k++ {
		if err := mem.SetTemperature(p.Temps[k%len(p.Temps)]); err != nil {
			return nil, nil, err
		}
		a, e, err := mem.WorstCaseOutput()
		if err != nil {
			return nil, nil, err
		}
		approxes, exact = append(approxes, a), e
	}
	fp, err := fingerprint.Characterize(exact, approxes...)
	if err != nil {
		return nil, nil, err
	}

	// Test outputs: the full condition grid.
	var outputs []Output
	for _, temp := range p.Temps {
		for _, acc := range p.Accuracies {
			chip.SetTemperature(temp)
			if err := mem.SetAccuracy(acc); err != nil {
				return nil, nil, err
			}
			a, e, err := mem.WorstCaseOutput()
			if err != nil {
				return nil, nil, err
			}
			es, err := fingerprint.ErrorString(a, e)
			if err != nil {
				return nil, nil, err
			}
			outputs = append(outputs, Output{Chip: i, TempC: temp, Accuracy: acc, Errors: es})
		}
	}
	return fp, outputs, nil
}
