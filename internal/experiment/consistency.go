package experiment

import (
	"fmt"
	"sort"
	"strings"

	"probablecause/internal/approx"
	"probablecause/internal/bitset"
	"probablecause/internal/dram"
	"probablecause/internal/fingerprint"
)

// Fig8Params parameterizes the consistency experiment (§7.2): repeated
// worst-case outputs from one chip under fixed conditions.
type Fig8Params struct {
	Geometry dram.Geometry
	Trials   int
	Accuracy float64
	TempC    float64
	Seed     uint64
}

// DefaultFig8Params returns the paper's setup: 21 trials at 99 % accuracy
// and 40 °C on a KM41464A.
func DefaultFig8Params() Fig8Params {
	return Fig8Params{
		Geometry: dram.KM41464A(0).Geometry,
		Trials:   21,
		Accuracy: 0.99,
		TempC:    40,
		Seed:     0xC0451,
	}
}

// SmallFig8Params returns a reduced setup for tests.
func SmallFig8Params() Fig8Params {
	p := DefaultFig8Params()
	p.Geometry = dram.Geometry{Rows: 64, Cols: 256, BitsPerWord: 4, DefaultStripe: 2}
	p.Trials = 9
	return p
}

// Fig8Result reproduces Figure 8 (the unpredictability heatmap) and the
// §7.2 repeatability number: the fraction of ever-failing bits that fail in
// every trial (the paper reports ≥98 %).
type Fig8Result struct {
	Params Fig8Params
	// FailCounts[i] is how many of the Trials runs bit i failed in, for
	// bits that failed at least once.
	FailCounts map[int]int
	// EverFailed and AlwaysFailed count the union and intersection of the
	// per-trial error sets.
	EverFailed, AlwaysFailed int
	// Repeatability = AlwaysFailed / EverFailed.
	Repeatability float64
}

// RunFig8 performs the repeated-trial campaign.
func RunFig8(p Fig8Params) (*Fig8Result, error) {
	done := track("fig8")
	defer func() { done(p.Trials) }()
	cfg := dram.KM41464A(p.Seed)
	cfg.Geometry = p.Geometry
	chip, err := dram.NewChip(cfg)
	if err != nil {
		return nil, err
	}
	chip.SetTemperature(p.TempC)
	mem, err := approx.New(chip, p.Accuracy)
	if err != nil {
		return nil, err
	}
	counts := make(map[int]int)
	var inter, union *bitset.Set
	for t := 0; t < p.Trials; t++ {
		a, e, err := mem.WorstCaseOutput()
		if err != nil {
			return nil, err
		}
		es, err := fingerprint.ErrorString(a, e)
		if err != nil {
			return nil, err
		}
		es.ForEach(func(i int) bool {
			counts[i]++
			return true
		})
		if inter == nil {
			inter, union = es.Clone(), es.Clone()
		} else {
			inter.And(es)
			union.Or(es)
		}
	}
	r := &Fig8Result{
		Params:       p,
		FailCounts:   counts,
		EverFailed:   union.Count(),
		AlwaysFailed: inter.Count(),
	}
	if r.EverFailed > 0 {
		r.Repeatability = float64(r.AlwaysFailed) / float64(r.EverFailed)
	}
	return r, nil
}

// Heatmap renders the Figure 8 grid: the chip's cells downsampled into a
// rows×cols character matrix where darker characters mark cells whose
// failure behaviour is unpredictable (failed in some trials but not all).
func (r *Fig8Result) Heatmap(rows, cols int) string {
	shades := []byte(" .:-=+*#%@")
	bits := r.Params.Geometry.Bits()
	grid := make([]int, rows*cols)
	cell := func(i int) int {
		return (i / (bits/(rows*cols) + 1))
	}
	for i, c := range r.FailCounts {
		if c == r.Params.Trials {
			continue // perfectly repeatable: not noise
		}
		g := cell(i)
		if g < len(grid) {
			grid[g]++
		}
	}
	max := 1
	for _, v := range grid {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			v := grid[y*cols+x]
			b.WriteByte(shades[v*(len(shades)-1)/max])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Render prints the repeatability statistics and heatmap.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8 — consistency of error locations across trials\n\n")
	fmt.Fprintf(&b, "trials: %d @ accuracy %.0f%%, %.0f°C\n", r.Params.Trials, r.Params.Accuracy*100, r.Params.TempC)
	fmt.Fprintf(&b, "bits failing at least once: %d\n", r.EverFailed)
	fmt.Fprintf(&b, "bits failing in every trial: %d\n", r.AlwaysFailed)
	fmt.Fprintf(&b, "repeatability = %.4f (paper: ≥0.98)\n\n", r.Repeatability)
	b.WriteString("unpredictability heatmap (darker = noisier):\n")
	b.WriteString(r.Heatmap(16, 64))
	return b.String()
}

// Fig10Params parameterizes the order-of-failure experiment (§7.4).
type Fig10Params struct {
	Geometry   dram.Geometry
	Accuracies []float64 // descending accuracy (ascending error)
	TempC      float64
	Seed       uint64
}

// DefaultFig10Params returns the paper's setup: one chip at 99/95/90 %.
func DefaultFig10Params() Fig10Params {
	return Fig10Params{
		Geometry:   dram.KM41464A(0).Geometry,
		Accuracies: []float64{0.99, 0.95, 0.90},
		TempC:      40,
		Seed:       0xFA11,
	}
}

// SmallFig10Params returns a reduced setup for tests.
func SmallFig10Params() Fig10Params {
	p := DefaultFig10Params()
	p.Geometry = dram.Geometry{Rows: 64, Cols: 256, BitsPerWord: 4, DefaultStripe: 2}
	return p
}

// Fig10Result reproduces Figure 10's Venn-diagram counts: the error sets at
// each accuracy and how far each is from being a subset of the next.
type Fig10Result struct {
	Params Fig10Params
	// Counts[i] is the error count at Accuracies[i].
	Counts []int
	// Exceptions[i] is |errors(acc[i]) \ errors(acc[i+1])| — bits failing at
	// the higher accuracy but not the lower one. The paper sees 1 then 32.
	Exceptions []int
	// SubsetFraction[i] = 1 − Exceptions[i]/Counts[i].
	SubsetFraction []float64
}

// RunFig10 captures one output per accuracy level and measures the subset
// relation.
func RunFig10(p Fig10Params) (*Fig10Result, error) {
	done := track("fig10")
	defer func() { done(len(p.Accuracies)) }()
	cfg := dram.KM41464A(p.Seed)
	cfg.Geometry = p.Geometry
	chip, err := dram.NewChip(cfg)
	if err != nil {
		return nil, err
	}
	chip.SetTemperature(p.TempC)
	var sets []*bitset.Set
	for _, acc := range p.Accuracies {
		mem, err := approx.New(chip, acc)
		if err != nil {
			return nil, err
		}
		a, e, err := mem.WorstCaseOutput()
		if err != nil {
			return nil, err
		}
		es, err := fingerprint.ErrorString(a, e)
		if err != nil {
			return nil, err
		}
		sets = append(sets, es)
	}
	r := &Fig10Result{Params: p}
	for _, s := range sets {
		r.Counts = append(r.Counts, s.Count())
	}
	for i := 0; i+1 < len(sets); i++ {
		ex := sets[i].AndNotCount(sets[i+1])
		r.Exceptions = append(r.Exceptions, ex)
		frac := 0.0
		if r.Counts[i] > 0 {
			frac = 1 - float64(ex)/float64(r.Counts[i])
		}
		r.SubsetFraction = append(r.SubsetFraction, frac)
	}
	return r, nil
}

// Render prints the Figure 10 subset-relation rows.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 10 — order of failures across approximation levels\n\n")
	for i, acc := range r.Params.Accuracies {
		fmt.Fprintf(&b, "errors at %.0f%% accuracy: %d\n", acc*100, r.Counts[i])
	}
	b.WriteString("\n")
	for i := range r.Exceptions {
		fmt.Fprintf(&b, "bits failing at %.0f%% but not at %.0f%%: %d (subset fraction %.5f)\n",
			r.Params.Accuracies[i]*100, r.Params.Accuracies[i+1]*100, r.Exceptions[i], r.SubsetFraction[i])
	}
	b.WriteString("(paper: 1 outlier for 99%→95%, 32 for 95%→90%)\n")
	return b.String()
}

// CSV renders the per-bit failure counts as "bit,failures" rows (the data
// behind the Figure 8 heatmap).
func (r *Fig8Result) CSV() string {
	var b strings.Builder
	b.WriteString("bit,failures\n")
	// Deterministic order.
	bits := make([]int, 0, len(r.FailCounts))
	for i := range r.FailCounts {
		bits = append(bits, i)
	}
	sort.Ints(bits)
	for _, i := range bits {
		fmt.Fprintf(&b, "%d,%d\n", i, r.FailCounts[i])
	}
	return b.String()
}
