package experiment

import (
	"fmt"
	"strings"

	"probablecause/internal/approx"
	"probablecause/internal/bitset"
	"probablecause/internal/dram"
	"probablecause/internal/errloc"
	"probablecause/internal/fingerprint"
	"probablecause/internal/workload"
)

// ErrLocParams parameterizes the §8.3 error-localization evaluation: the
// attacker receives an approximate *image* with no exact copy and must
// estimate the error positions before identification.
type ErrLocParams struct {
	Geometry dram.Geometry
	W, H     int
	Chips    int
	Accuracy float64
	Seed     uint64
}

// DefaultErrLocParams uses the Figure 12-style edge-detection workload on
// page-sized images.
func DefaultErrLocParams() ErrLocParams {
	return ErrLocParams{
		Geometry: dram.KM41464A(0).Geometry,
		W:        200, H: 154,
		Chips:    4,
		Accuracy: 0.99,
		Seed:     0xE110,
	}
}

// SmallErrLocParams returns a reduced setup for tests.
func SmallErrLocParams() ErrLocParams {
	p := DefaultErrLocParams()
	p.Geometry = dram.Geometry{Rows: 128, Cols: 256, BitsPerWord: 4, DefaultStripe: 2}
	p.W, p.H = 100, 77
	p.Chips = 3
	return p
}

// ErrLocResult evaluates the three §8.3 estimation approaches.
type ErrLocResult struct {
	Params ErrLocParams
	// Recompute: exact recomputation from the public input — perfect
	// localization by construction; identification success recorded.
	RecomputeIdentified, Total int
	// Median: noise-filter estimation quality and identification outcome.
	MedianPrecision, MedianRecall float64
	MedianIdentified              int
	// Speculative: candidates tried against the database until one lands
	// under the threshold.
	SpeculativeIdentified int
}

// RunErrLoc characterizes each chip with known inputs, then identifies
// image outputs whose exact version the attacker must estimate.
func RunErrLoc(p ErrLocParams) (*ErrLocResult, error) {
	if p.Chips < 2 {
		return nil, fmt.Errorf("experiment: need ≥2 chips")
	}
	if p.W*p.H > p.Geometry.Bytes() {
		return nil, fmt.Errorf("experiment: image exceeds chip capacity")
	}
	done := track("errloc")
	defer func() { done(p.Chips) }()
	r := &ErrLocResult{Params: p}
	db := fingerprint.NewDB(fingerprint.DefaultThreshold)

	type victim struct {
		mem *approx.Memory
		job *workload.ImageJob
	}
	var victims []victim
	for i := 0; i < p.Chips; i++ {
		cfg := dram.KM41464A(p.Seed + uint64(i)*0x91)
		cfg.Geometry = p.Geometry
		chip, err := dram.NewChip(cfg)
		if err != nil {
			return nil, err
		}
		mem, err := approx.New(chip, p.Accuracy)
		if err != nil {
			return nil, err
		}
		// Supply-chain-style characterization with chosen inputs. The
		// fingerprint is restricted to the image region so image outputs
		// can be matched against it.
		a1, exact, err := mem.WorstCaseOutput()
		if err != nil {
			return nil, err
		}
		a2, _, err := mem.WorstCaseOutput()
		if err != nil {
			return nil, err
		}
		n := p.W * p.H
		fp, err := fingerprint.Characterize(exact[:n], a1[:n], a2[:n])
		if err != nil {
			return nil, err
		}
		db.Add(fmt.Sprintf("chip%02d", i), fp)
		victims = append(victims, victim{
			mem: mem,
			job: workload.NewBinaryImageJob(p.W, p.H, p.Seed+uint64(i), 64),
		})
	}

	var precSum, recSum float64
	for i, v := range victims {
		out, err := v.job.RunApprox(v.mem, 0)
		if err != nil {
			return nil, err
		}
		truth, err := fingerprint.ErrorString(out.Bytes(), v.job.Exact.Bytes())
		if err != nil {
			return nil, err
		}
		r.Total++

		// (1) Known-input recomputation.
		recomputed := errloc.RecomputeExact(v.job.Input).Threshold(64)
		es1, err := errloc.EstimateErrors(out, recomputed)
		if err != nil {
			return nil, err
		}
		if _, idx, ok := db.Identify(es1); ok && idx == i {
			r.RecomputeIdentified++
		}

		// (2) Median-filter noise detection.
		est := errloc.MedianEstimate(out)
		es2, err := errloc.EstimateErrors(out, est)
		if err != nil {
			return nil, err
		}
		q := errloc.Evaluate(es2, truth)
		precSum += q.Precision
		recSum += q.Recall
		if _, idx, ok := db.Identify(es2); ok && idx == i {
			r.MedianIdentified++
		}

		// (3) Speculative matching over both hypotheses.
		if name, _, ok := errloc.SpeculativeIdentify(db, []*bitset.Set{es2, es1}); ok && name == fmt.Sprintf("chip%02d", i) {
			r.SpeculativeIdentified++
		}
	}
	r.MedianPrecision = precSum / float64(r.Total)
	r.MedianRecall = recSum / float64(r.Total)
	return r, nil
}

// Render prints the §8.3 evaluation rows.
func (r *ErrLocResult) Render() string {
	var b strings.Builder
	b.WriteString("§8.3 — error localization without the exact output\n\n")
	fmt.Fprintf(&b, "%d chips, %dx%d edge-detection outputs at %.0f%% accuracy\n\n",
		r.Params.Chips, r.Params.W, r.Params.H, r.Params.Accuracy*100)
	fmt.Fprintf(&b, "known-input recomputation: %d/%d identified\n", r.RecomputeIdentified, r.Total)
	fmt.Fprintf(&b, "median-filter estimation:  %d/%d identified (precision %.3f, recall %.3f)\n",
		r.MedianIdentified, r.Total, r.MedianPrecision, r.MedianRecall)
	fmt.Fprintf(&b, "speculative matching:      %d/%d identified\n", r.SpeculativeIdentified, r.Total)
	b.WriteString("(paper: any of the three approaches lets the attacker reconstruct error patterns)\n")
	return b.String()
}
