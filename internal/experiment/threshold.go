package experiment

import (
	"fmt"
	"sort"
	"strings"

	"probablecause/internal/fingerprint"
	"probablecause/internal/pool"
)

// ThresholdRow is the attack's error profile at one candidate threshold.
type ThresholdRow struct {
	Threshold float64
	// FalseRejects: same-chip outputs whose distance exceeded the threshold.
	FalseRejects int
	// FalseAccepts: other-chip outputs under the threshold.
	FalseAccepts int
}

// ThresholdResult reproduces the paper's experimental threshold
// determination (§5.2 defers to §7): sweeping the identification threshold
// over the uniqueness corpus and reporting false-accept / false-reject
// counts. The two-orders-of-magnitude separation shows up as a wide plateau
// of thresholds with zero errors of either kind.
type ThresholdResult struct {
	Rows []ThresholdRow
	// PlateauLo and PlateauHi bound the zero-error threshold region.
	PlateauLo, PlateauHi float64
	// ChosenThreshold is the library default, which must sit inside the
	// plateau.
	ChosenThreshold float64
	WithinTotal     int
	BetweenTotal    int
}

// RunThresholdSweep evaluates candidate thresholds against a corpus. The
// distance matrix and the per-threshold error counts both fan across the
// pool; all writes go to index-owned slots and the folds run serially in
// index order, so every worker count produces the same table.
func RunThresholdSweep(c *Corpus, thresholds []float64, workers int) (*ThresholdResult, error) {
	if len(thresholds) == 0 {
		return nil, fmt.Errorf("experiment: empty threshold sweep")
	}
	done := track("threshold")
	defer func() { done(len(c.Outputs)) }()
	ts := append([]float64(nil), thresholds...)
	sort.Float64s(ts)

	type pair struct{ within, between []float64 }
	slots := make([]pair, len(c.Outputs))
	pool.Map(workers, len(c.Outputs), func(j int) {
		out := c.Outputs[j]
		p := &slots[j]
		for i, fp := range c.Fingerprints {
			d := fingerprint.Distance(out.Errors, fp)
			if i == out.Chip {
				p.within = append(p.within, d)
			} else {
				p.between = append(p.between, d)
			}
		}
	})
	var within, between []float64
	for _, p := range slots {
		within = append(within, p.within...)
		between = append(between, p.between...)
	}
	r := &ThresholdResult{
		ChosenThreshold: fingerprint.DefaultThreshold,
		WithinTotal:     len(within),
		BetweenTotal:    len(between),
		PlateauLo:       -1,
		PlateauHi:       -1,
	}
	r.Rows = make([]ThresholdRow, len(ts))
	pool.Map(workers, len(ts), func(k int) {
		row := ThresholdRow{Threshold: ts[k]}
		for _, d := range within {
			if d >= ts[k] {
				row.FalseRejects++
			}
		}
		for _, d := range between {
			if d < ts[k] {
				row.FalseAccepts++
			}
		}
		r.Rows[k] = row
	})
	for _, row := range r.Rows {
		if row.FalseRejects == 0 && row.FalseAccepts == 0 {
			if r.PlateauLo < 0 {
				r.PlateauLo = row.Threshold
			}
			r.PlateauHi = row.Threshold
		}
	}
	return r, nil
}

// DefaultThresholdSweep is a log-ish sweep from well below the within-class
// cloud to well inside the between-class cloud.
func DefaultThresholdSweep() []float64 {
	return []float64{0.001, 0.003, 0.01, 0.03, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95}
}

// Render prints the sweep table.
func (r *ThresholdResult) Render() string {
	var b strings.Builder
	b.WriteString("§7 — experimental determination of the identification threshold\n\n")
	fmt.Fprintf(&b, "%-12s %-20s %-20s\n", "threshold", "false rejects", "false accepts")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12g %4d/%-15d %4d/%-15d\n",
			row.Threshold, row.FalseRejects, r.WithinTotal, row.FalseAccepts, r.BetweenTotal)
	}
	if r.PlateauLo >= 0 {
		fmt.Fprintf(&b, "\nzero-error plateau: [%g, %g]; library default %g sits inside: %v\n",
			r.PlateauLo, r.PlateauHi, r.ChosenThreshold,
			r.ChosenThreshold >= r.PlateauLo && r.ChosenThreshold <= r.PlateauHi)
	} else {
		b.WriteString("\nno zero-error threshold exists for this corpus\n")
	}
	b.WriteString("(the wide plateau is the two-orders-of-magnitude separation of Figure 7:\n")
	b.WriteString(" any threshold in the gap works, so the choice is uncritical)\n")
	return b.String()
}
