package experiment

import (
	"fmt"
	"strings"

	"probablecause/internal/approx"
	"probablecause/internal/bitset"
	"probablecause/internal/defense"
	"probablecause/internal/dram"
	"probablecause/internal/drammodel"
	"probablecause/internal/fingerprint"
	"probablecause/internal/osmodel"
	"probablecause/internal/stitch"
	"probablecause/internal/workload"
)

// ScrambleParams parameterizes the anonymity-preserving-approximation
// extension: the per-output bit-permutation controller (defense.Scrambler)
// evaluated against the full attack.
type ScrambleParams struct {
	Chips    int
	Geometry dram.Geometry
	Accuracy float64
	Outputs  int
	Seed     uint64
}

// DefaultScrambleParams evaluates the defense at the platform's scale.
func DefaultScrambleParams() ScrambleParams {
	return ScrambleParams{
		Chips:    4,
		Geometry: dram.KM41464A(0).Geometry,
		Accuracy: 0.97,
		Outputs:  6,
		Seed:     0x5C2A,
	}
}

// SmallScrambleParams returns a reduced setup for tests.
func SmallScrambleParams() ScrambleParams {
	p := DefaultScrambleParams()
	p.Chips = 3
	p.Outputs = 4
	p.Geometry = dram.Geometry{Rows: 64, Cols: 256, BitsPerWord: 4, DefaultStripe: 2}
	return p
}

// ScrambleResult compares attack success with and without the scrambling
// controller, at identical output quality.
type ScrambleResult struct {
	Params ScrambleParams
	// Identification of plain vs scrambled outputs against pre-deployment
	// fingerprints.
	PlainIdentified, ScrambledIdentified, Total int
	// Clusters formed from the scrambled outputs of ONE chip: with the
	// defense working, every output looks like a new device.
	ScrambledClusters int
	// Error rates: the defense must not change output quality.
	PlainErrRate, ScrambledErrRate float64
}

// RunScrambling characterizes each chip, then attacks plain and scrambled
// outputs.
func RunScrambling(p ScrambleParams) (*ScrambleResult, error) {
	if p.Chips < 2 || p.Outputs < 1 {
		return nil, fmt.Errorf("experiment: bad scramble params %+v", p)
	}
	r := &ScrambleResult{Params: p}
	db := fingerprint.NewDB(fingerprint.DefaultThreshold)
	var mems []*approx.Memory
	var exacts [][]byte
	for i := 0; i < p.Chips; i++ {
		cfg := dram.KM41464A(p.Seed + uint64(i)*0x71)
		cfg.Geometry = p.Geometry
		chip, err := dram.NewChip(cfg)
		if err != nil {
			return nil, err
		}
		mem, err := approx.New(chip, p.Accuracy)
		if err != nil {
			return nil, err
		}
		a1, exact, err := mem.WorstCaseOutput()
		if err != nil {
			return nil, err
		}
		a2, _, err := mem.WorstCaseOutput()
		if err != nil {
			return nil, err
		}
		fp, err := fingerprint.Characterize(exact, a1, a2)
		if err != nil {
			return nil, err
		}
		db.Add(fmt.Sprintf("chip%02d", i), fp)
		mems = append(mems, mem)
		exacts = append(exacts, exact)
	}

	cl := fingerprint.NewClusterer(fingerprint.DefaultThreshold)
	var plainErrs, scramErrs, totalBits int
	for i, mem := range mems {
		sc := defense.NewScrambler(p.Seed ^ uint64(i*13+7))
		for o := 0; o < p.Outputs; o++ {
			r.Total++
			// The victim publishes ordinary application data (≈half the
			// cells charged) — using the worst-case pattern here would
			// unfairly favor the plain path, since permutation de-charges
			// part of a worst-case pattern.
			data := workload.Random(p.Seed^uint64(i*1009+o), len(exacts[i]))

			// Plain output.
			plain, err := mem.Roundtrip(0, data)
			if err != nil {
				return nil, err
			}
			esP, err := fingerprint.ErrorString(plain, data)
			if err != nil {
				return nil, err
			}
			if _, idx, ok := db.Identify(esP); ok && idx == i {
				r.PlainIdentified++
			}
			plainErrs += esP.Count()

			// Scrambled output of the same data.
			scrambled, err := sc.Roundtrip(mem, 0, data)
			if err != nil {
				return nil, err
			}
			esS, err := fingerprint.ErrorString(scrambled, data)
			if err != nil {
				return nil, err
			}
			if _, idx, ok := db.Identify(esS); ok && idx == i {
				r.ScrambledIdentified++
			}
			scramErrs += esS.Count()
			totalBits += len(data) * 8
			if i == 0 {
				cl.Add(esS)
			}
		}
	}
	r.ScrambledClusters = cl.Count()
	r.PlainErrRate = float64(plainErrs) / float64(totalBits)
	r.ScrambledErrRate = float64(scramErrs) / float64(totalBits)
	return r, nil
}

// Render prints the scrambling-defense evaluation.
func (r *ScrambleResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension — anonymity-preserving approximation (per-output bit permutation)\n\n")
	fmt.Fprintf(&b, "identification of plain outputs:     %d/%d\n", r.PlainIdentified, r.Total)
	fmt.Fprintf(&b, "identification of scrambled outputs: %d/%d\n", r.ScrambledIdentified, r.Total)
	fmt.Fprintf(&b, "clusters from one chip's %d scrambled outputs: %d (each output looks like a new device)\n",
		r.Params.Outputs, r.ScrambledClusters)
	fmt.Fprintf(&b, "error rate plain %.4f vs scrambled %.4f (quality unchanged)\n",
		r.PlainErrRate, r.ScrambledErrRate)
	b.WriteString("(the paper's conclusion asks for exactly this: approximation without attestation)\n")
	return b.String()
}

// RefreshSchemesParams parameterizes the refresh-architecture comparison:
// does a smarter refresh scheme (Flikker partitioning, RAIDR row-aware
// refresh — the §9.2 systems) change the privacy picture?
type RefreshSchemesParams struct {
	Geometry   dram.Geometry
	Accuracy   float64
	ExactBytes int
	Slack      float64
	Window     float64
	Seed       uint64
}

// DefaultRefreshSchemesParams compares the schemes on the 8 KB test
// geometry (row profiling on the full chip is expensive and adds nothing).
func DefaultRefreshSchemesParams() RefreshSchemesParams {
	return RefreshSchemesParams{
		Geometry:   dram.Geometry{Rows: 64, Cols: 256, BitsPerWord: 4, DefaultStripe: 2},
		Accuracy:   0.95,
		ExactBytes: 2048,
		Slack:      1.6,
		Window:     25,
		Seed:       0x4EF4,
	}
}

// RefreshSchemesResult reports identifiability under each refresh scheme.
type RefreshSchemesResult struct {
	Params RefreshSchemesParams
	// Same-chip error-pattern overlap across two outputs per scheme: high
	// overlap means the scheme still imprints a stable fingerprint.
	PlainOverlap, PartitionedApproxOverlap, RowAwareOverlap float64
	// ExactZoneErrors confirms the Flikker exact zone carries nothing.
	ExactZoneErrors int
}

// RunRefreshSchemes measures fingerprint stability under each scheme.
func RunRefreshSchemes(p RefreshSchemesParams) (*RefreshSchemesResult, error) {
	if p.ExactBytes <= 0 || p.ExactBytes >= p.Geometry.Bytes() {
		return nil, fmt.Errorf("experiment: exact zone %d outside chip", p.ExactBytes)
	}
	r := &RefreshSchemesResult{Params: p}
	overlap := func(a, b *bitset.Set) float64 {
		if a.Count() == 0 || b.Count() == 0 {
			return 0
		}
		m := a.Count()
		if bc := b.Count(); bc < m {
			m = bc
		}
		return float64(a.AndCount(b)) / float64(m)
	}

	// Plain approximate memory.
	chip, err := newChip(p.Geometry, p.Seed)
	if err != nil {
		return nil, err
	}
	mem, err := approx.New(chip, p.Accuracy)
	if err != nil {
		return nil, err
	}
	a1, exact, err := mem.WorstCaseOutput()
	if err != nil {
		return nil, err
	}
	a2, _, err := mem.WorstCaseOutput()
	if err != nil {
		return nil, err
	}
	e1, err := fingerprint.ErrorString(a1, exact)
	if err != nil {
		return nil, err
	}
	e2, err := fingerprint.ErrorString(a2, exact)
	if err != nil {
		return nil, err
	}
	r.PlainOverlap = overlap(e1, e2)

	// Flikker-style partitioned memory.
	chipP, err := newChip(p.Geometry, p.Seed+1)
	if err != nil {
		return nil, err
	}
	part, err := approx.NewPartitioned(chipP, p.Accuracy, p.ExactBytes)
	if err != nil {
		return nil, err
	}
	wc := chipP.WorstCaseData()
	exactOut, err := part.Roundtrip(0, wc[:p.ExactBytes])
	if err != nil {
		return nil, err
	}
	ez, err := fingerprint.ErrorString(exactOut, wc[:p.ExactBytes])
	if err != nil {
		return nil, err
	}
	r.ExactZoneErrors = ez.Count()
	approxData := wc[p.ExactBytes:]
	p1, err := part.Roundtrip(p.ExactBytes, approxData)
	if err != nil {
		return nil, err
	}
	p2, err := part.Roundtrip(p.ExactBytes, approxData)
	if err != nil {
		return nil, err
	}
	pe1, err := fingerprint.ErrorString(p1, approxData)
	if err != nil {
		return nil, err
	}
	pe2, err := fingerprint.ErrorString(p2, approxData)
	if err != nil {
		return nil, err
	}
	r.PartitionedApproxOverlap = overlap(pe1, pe2)

	// RAIDR-style row-aware refresh.
	chipR, err := newChip(p.Geometry, p.Seed+2)
	if err != nil {
		return nil, err
	}
	ra, err := approx.NewRowAware(chipR, p.Slack)
	if err != nil {
		return nil, err
	}
	wcR := chipR.WorstCaseData()
	r1, err := ra.Roundtrip(0, wcR, p.Window)
	if err != nil {
		return nil, err
	}
	r2, err := ra.Roundtrip(0, wcR, p.Window)
	if err != nil {
		return nil, err
	}
	re1, err := fingerprint.ErrorString(r1, wcR)
	if err != nil {
		return nil, err
	}
	re2, err := fingerprint.ErrorString(r2, wcR)
	if err != nil {
		return nil, err
	}
	r.RowAwareOverlap = overlap(re1, re2)
	return r, nil
}

func newChip(g dram.Geometry, seed uint64) (*dram.Chip, error) {
	cfg := dram.KM41464A(seed)
	cfg.Geometry = g
	return dram.NewChip(cfg)
}

// Render prints the refresh-scheme comparison.
func (r *RefreshSchemesResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension — fingerprinting under §9.2 refresh architectures\n\n")
	fmt.Fprintf(&b, "%-42s %s\n", "scheme", "same-chip error overlap (2 outputs)")
	fmt.Fprintf(&b, "%-42s %.3f\n", "plain approximate refresh", r.PlainOverlap)
	fmt.Fprintf(&b, "%-42s %.3f\n", "Flikker partition, approximate zone", r.PartitionedApproxOverlap)
	fmt.Fprintf(&b, "%-42s %.3f\n", "RAIDR row-aware refresh (slack > 1)", r.RowAwareOverlap)
	fmt.Fprintf(&b, "\nFlikker exact zone errors: %d (nothing to fingerprint)\n", r.ExactZoneErrors)
	b.WriteString("(smarter refresh redistributes the error budget but the residual errors\n")
	b.WriteString(" remain decay-ordered and chip-specific — only the exact zone is safe)\n")
	return b.String()
}

// AllocatorParams parameterizes the allocator-realism extension: how does
// stitching convergence change when placements come from a churning buddy
// allocator (osmodel.System) instead of the paper's uniform model?
type AllocatorParams struct {
	MemoryPages int
	SamplePages int
	Samples     int
	ErrRate     float64
	Seed        uint64
}

// DefaultAllocatorParams compares the models at a scale where the uniform
// model fully converges.
func DefaultAllocatorParams() AllocatorParams {
	return AllocatorParams{
		MemoryPages: 1024,
		SamplePages: 10,
		Samples:     1500,
		ErrRate:     0.01,
		Seed:        0xA110C,
	}
}

// SmallAllocatorParams returns a faster configuration for tests.
func SmallAllocatorParams() AllocatorParams {
	p := DefaultAllocatorParams()
	p.MemoryPages = 256
	p.SamplePages = 8
	p.Samples = 400
	return p
}

// AllocatorResult compares the two placement models.
type AllocatorResult struct {
	Params AllocatorParams
	// Final cluster counts and database coverage under each model.
	UniformFinal, SystemFinal     int
	UniformCovered, SystemCovered int
	// SystemNonContiguous counts samples the allocator split mid-buffer.
	SystemNonContiguous int
}

// RunAllocatorComparison streams the same victim through both placement
// models.
func RunAllocatorComparison(p AllocatorParams) (*AllocatorResult, error) {
	if p.Samples <= 0 || p.SamplePages <= 0 {
		return nil, fmt.Errorf("experiment: bad allocator params %+v", p)
	}
	r := &AllocatorResult{Params: p}

	run := func(placer osmodel.Placer, nonContig *int) (int, int, error) {
		model := drammodel.New(p.Seed)
		src, err := workload.NewSampleSource(model, placer, p.ErrRate, p.SamplePages)
		if err != nil {
			return 0, 0, err
		}
		st, err := stitch.New(stitch.Config{})
		if err != nil {
			return 0, 0, err
		}
		for i := 0; i < p.Samples; i++ {
			sample, pl, err := src.Next()
			if err != nil {
				return 0, 0, err
			}
			if nonContig != nil && !pl.Contiguous {
				*nonContig++
			}
			if _, err := st.Add(sample); err != nil {
				return 0, 0, err
			}
		}
		return st.Count(), st.CoveredPages(), nil
	}

	mem, err := osmodel.NewMemory(p.MemoryPages, p.Seed^0x11)
	if err != nil {
		return nil, err
	}
	if r.UniformFinal, r.UniformCovered, err = run(mem, nil); err != nil {
		return nil, err
	}
	sys, err := osmodel.NewSystem(p.MemoryPages, p.Seed^0x22)
	if err != nil {
		return nil, err
	}
	if r.SystemFinal, r.SystemCovered, err = run(sys, &r.SystemNonContiguous); err != nil {
		return nil, err
	}
	return r, nil
}

// Render prints the placement-model comparison.
func (r *AllocatorResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension — stitching under allocator realism (buddy system vs uniform)\n\n")
	fmt.Fprintf(&b, "%d samples of %d pages over %d pages of memory\n\n",
		r.Params.Samples, r.Params.SamplePages, r.Params.MemoryPages)
	fmt.Fprintf(&b, "%-34s %-16s %-16s\n", "placement model", "final clusters", "pages covered")
	fmt.Fprintf(&b, "%-34s %-16d %-16d\n", "uniform contiguous (paper §7.6)", r.UniformFinal, r.UniformCovered)
	fmt.Fprintf(&b, "%-34s %-16d %-16d\n", "buddy allocator with churn", r.SystemFinal, r.SystemCovered)
	fmt.Fprintf(&b, "\nallocator split %d of %d buffers mid-run (non-contiguous placements)\n",
		r.SystemNonContiguous, r.Params.Samples)
	b.WriteString("(long-lived allocations act as walls the stitcher cannot bridge: realism slows\n")
	b.WriteString(" convergence but per-region attribution — same machine, same cluster — still holds)\n")
	return b.String()
}
