package experiment

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
	"probablecause/internal/prng"
	"probablecause/internal/store"
)

// Scale1MParams parameterizes the tiered-storage scale experiment: a
// synthetic corpus enrolled straight into the tiered engine (memtable →
// mmap'd segments, flushing as it grows), then served interactively off the
// mappings. Where RunScale compares identification layouts over one in-heap
// database, RunScale1M proves the storage claim of the tiered engine: a
// corpus far larger than the paper's population can be enrolled and queried
// with resident heap bounded well below the corpus size, because flushed
// fingerprints live only in the page cache.
type Scale1MParams struct {
	Entries int
	Bits    int
	// MinCard/MaxCard bound per-entry fingerprint weight, as in ScaleParams.
	MinCard, MaxCard int
	// FlushEntries is the memtable size at which the driver checkpoints —
	// small relative to Entries so the corpus actually lives in segments.
	FlushEntries int
	// CompactSegments bounds segment accumulation during enrollment.
	CompactSegments int
	// Queries is the interactive identify sweep length (alternating
	// perturbed-hit and random-miss queries) used for the latency quantiles.
	Queries   int
	Threshold float64
	Seed      uint64
	// Dir is the engine directory; empty selects a removed-on-return temp dir.
	Dir string
	// Workers bounds index-build signing; Probes/BlockEntries tune the
	// sliced query path exactly as in ScaleParams.
	Workers      int
	Probes       bool
	BlockEntries int
	// MaxHeapFrac fails the run when post-flush resident heap exceeds this
	// fraction of the corpus bytes; 0 selects 1.0 (heap strictly below the
	// corpus — the "bounded below corpus size" acceptance floor).
	MaxHeapFrac float64
}

// DefaultScale1MParams is the 1M-device configuration the PR-9 acceptance
// criteria name: one million synthetic enrollments over 2048-bit
// fingerprints (a 256 MB fingerprint corpus) flushed into segments of at
// most 2^17 entries.
func DefaultScale1MParams() Scale1MParams {
	return Scale1MParams{
		Entries:         1_000_000,
		Bits:            2048,
		MinCard:         40,
		MaxCard:         80,
		FlushEntries:    1 << 17,
		CompactSegments: 12,
		Queries:         200,
		Threshold:       fingerprint.DefaultThreshold,
		Seed:            0x5CA1E13,
		Probes:          true,
	}
}

// SmallScale1MParams returns a CI-sized configuration: the same shape
// (many segments, memtable a small fraction of the corpus) at 20k entries.
func SmallScale1MParams() Scale1MParams {
	p := DefaultScale1MParams()
	p.Entries = 20_000
	p.FlushEntries = 1 << 12
	p.Queries = 60
	return p
}

// Scale1MResult reports corpus placement (segments vs heap) and the
// interactive identify latency quantiles.
type Scale1MResult struct {
	Params   Scale1MParams
	Segments int
	// EnrollTotal covers Add plus every mid-stream checkpoint; PerEnroll is
	// the amortized per-device cost.
	EnrollTotal time.Duration
	PerEnroll   time.Duration
	// CorpusBytes is the raw fingerprint payload (Entries × Bits/8);
	// HeapBytes is post-flush HeapAlloc growth over the pre-open baseline
	// after a forced GC. HeapFrac = HeapBytes/CorpusBytes.
	CorpusBytes uint64
	HeapBytes   uint64
	HeapFrac    float64
	// Hits/Misses split the query sweep by verdict; WrongHits counts
	// perturbed-hit queries that resolved to a different device (must be 0).
	Hits, Misses, WrongHits int
	// Identify latency quantiles over the serial sweep.
	P50, P90, P99, Max time.Duration
}

// RunScale1M enrolls the synthetic corpus into a tiered engine, flushing as
// the memtable fills, then measures resident heap against the corpus size
// and runs the interactive identify sweep off the mmap'd segments.
func RunScale1M(p Scale1MParams) (*Scale1MResult, error) {
	if p.Entries < 1 || p.Bits < 1 || p.MinCard < 1 || p.MaxCard < p.MinCard ||
		p.FlushEntries < 1 || p.Queries < 1 {
		return nil, fmt.Errorf("experiment: bad scale1m params %+v", p)
	}
	dir := p.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "scale1m")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	// Heap baseline before the engine exists, so HeapBytes charges the
	// engine (memtable, indexes, mappings' heap side) and nothing else.
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)

	b, err := store.Open(
		store.Config{
			Backend:         store.BackendTiered,
			Dir:             dir,
			FlushEntries:    p.FlushEntries,
			CompactSegments: p.CompactSegments,
		},
		store.DBConfig{
			Threshold: p.Threshold, Sliced: true, Probes: p.Probes,
			Workers: p.Workers, BlockEntries: p.BlockEntries,
		})
	if err != nil {
		return nil, err
	}
	defer b.Close()
	d := b.(store.DurableBackend)

	r := &Scale1MResult{Params: p, CorpusBytes: uint64(p.Entries) * uint64(p.Bits) / 8}
	entryCard := func(i int) int {
		return p.MinCard + int(prng.Hash(p.Seed, uint64(i))%uint64(p.MaxCard-p.MinCard+1))
	}
	t0 := time.Now()
	var watermark uint64
	for i := 0; i < p.Entries; i++ {
		// scaleFP is a pure function of the seed, so hit queries below can
		// reconstruct any enrolled fingerprint without the driver retaining
		// the corpus in heap (which would defeat the memory measurement).
		b.Add(fmt.Sprintf("dev%07d", i), scaleFP(p.Bits, entryCard(i), p.Seed^uint64(i)))
		watermark++
		if d.NeedsFlush() {
			if err := d.Checkpoint(watermark); err != nil {
				return nil, err
			}
		}
	}
	// Final flush: the whole corpus now lives in committed segments and the
	// memtable is empty — resident heap measures engine overhead, not data.
	if err := d.Checkpoint(watermark); err != nil {
		return nil, err
	}
	r.EnrollTotal = time.Since(t0)
	r.PerEnroll = r.EnrollTotal / time.Duration(p.Entries)
	if sc, ok := b.(interface{ SegmentCount() int }); ok {
		r.Segments = sc.SegmentCount()
	}
	if got := b.Len(); got != p.Entries {
		return nil, fmt.Errorf("experiment: enrolled %d, Len reports %d", p.Entries, got)
	}

	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	if m1.HeapAlloc > m0.HeapAlloc {
		r.HeapBytes = m1.HeapAlloc - m0.HeapAlloc
	}
	r.HeapFrac = float64(r.HeapBytes) / float64(r.CorpusBytes)
	maxFrac := p.MaxHeapFrac
	if maxFrac == 0 {
		maxFrac = 1.0
	}
	if r.HeapFrac >= maxFrac {
		return nil, fmt.Errorf("experiment: resident heap %d bytes is %.2f of the %d-byte corpus (limit %.2f) — segments are not keeping data off the heap",
			r.HeapBytes, r.HeapFrac, r.CorpusBytes, maxFrac)
	}

	// Interactive sweep: serial Identify calls, alternating a perturbed copy
	// of a registered fingerprint (one bit dropped) with a fresh random set.
	lat := make([]time.Duration, 0, p.Queries)
	for k := 0; k < p.Queries; k++ {
		query, want := scale1MQuery(p, k, entryCard)
		qt := time.Now()
		name, _, ok := b.Identify(query)
		lat = append(lat, time.Since(qt))
		if ok {
			r.Hits++
			if want != "" && name != want {
				r.WrongHits++
			}
		} else {
			r.Misses++
		}
	}
	if r.WrongHits > 0 {
		return nil, fmt.Errorf("experiment: %d/%d hit queries resolved to the wrong device", r.WrongHits, r.Hits)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(f float64) time.Duration {
		i := int(f * float64(len(lat)))
		if i >= len(lat) {
			i = len(lat) - 1
		}
		return lat[i]
	}
	r.P50, r.P90, r.P99, r.Max = q(0.50), q(0.90), q(0.99), lat[len(lat)-1]
	return r, nil
}

// scale1MQuery builds sweep query k: even k rebuilds enrolled device i's
// fingerprint (scaleFP is pure in the seed) and drops one bit — a perturbed
// hit whose expected winner is that device — odd k draws a fresh random set
// that should match nothing.
func scale1MQuery(p Scale1MParams, k int, entryCard func(int) int) (q *bitset.Set, want string) {
	if k%2 == 0 {
		i := int(prng.Hash(p.Seed, 0x1417, uint64(k)) % uint64(p.Entries))
		q = scaleFP(p.Bits, entryCard(i), p.Seed^uint64(i))
		pos := q.Positions()
		q.Clear(int(pos[prng.Hash(p.Seed, 0x1418, uint64(k))%uint64(len(pos))]))
		return q, fmt.Sprintf("dev%07d", i)
	}
	return scaleFP(p.Bits, p.MinCard, 0x1A15500^prng.Hash(p.Seed, uint64(k))), ""
}

// Render prints the placement and latency summary.
func (r *Scale1MResult) Render() string {
	var b strings.Builder
	b.WriteString("tiered storage at scale — mmap'd segments serving interactive identify\n\n")
	fmt.Fprintf(&b, "corpus: %d devices × %d bits (%.1f MB fingerprint payload), %d segments after final flush\n",
		r.Params.Entries, r.Params.Bits, float64(r.CorpusBytes)/(1<<20), r.Segments)
	fmt.Fprintf(&b, "enroll: %s total, %s/device amortized (includes every mid-stream flush)\n\n",
		r.EnrollTotal.Round(time.Millisecond), r.PerEnroll.Round(time.Nanosecond))
	fmt.Fprintf(&b, "resident heap after flush+GC: %.1f MB = %.1f%% of corpus (engine overhead only;\nflushed fingerprints are served from the page cache, not the heap)\n\n",
		float64(r.HeapBytes)/(1<<20), 100*r.HeapFrac)
	fmt.Fprintf(&b, "identify sweep: %d queries (%d hit / %d miss), serial\n", r.Hits+r.Misses, r.Hits, r.Misses)
	fmt.Fprintf(&b, "%-6s %12s\n", "p50", r.P50.Round(time.Microsecond))
	fmt.Fprintf(&b, "%-6s %12s\n", "p90", r.P90.Round(time.Microsecond))
	fmt.Fprintf(&b, "%-6s %12s\n", "p99", r.P99.Round(time.Microsecond))
	fmt.Fprintf(&b, "%-6s %12s\n", "max", r.Max.Round(time.Microsecond))
	return b.String()
}
