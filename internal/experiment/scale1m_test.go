package experiment

import (
	"strings"
	"testing"
)

// TestScale1MSmall: the CI-sized tiered run must place the corpus in
// segments (several of them, memtable drained), keep resident heap below the
// corpus size, classify every even query as a correct hit, and produce
// populated latency quantiles.
func TestScale1MSmall(t *testing.T) {
	p := SmallScale1MParams()
	p.Dir = t.TempDir()
	r, err := RunScale1M(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Segments < 2 {
		t.Fatalf("segments = %d; corpus did not tier out of the memtable", r.Segments)
	}
	if r.WrongHits != 0 {
		t.Fatalf("wrong hits = %d", r.WrongHits)
	}
	if r.Hits != (p.Queries+1)/2 {
		t.Fatalf("hits = %d, want %d (every perturbed query must identify)", r.Hits, (p.Queries+1)/2)
	}
	if r.HeapFrac >= 1.0 {
		t.Fatalf("heap fraction %.2f not below corpus size", r.HeapFrac)
	}
	if r.P99 <= 0 || r.P99 < r.P50 {
		t.Fatalf("degenerate quantiles p50=%v p99=%v", r.P50, r.P99)
	}
	if !strings.Contains(r.Render(), "resident heap") {
		t.Fatal("render missing heap line")
	}
}

func TestScale1MRejectsBadParams(t *testing.T) {
	p := SmallScale1MParams()
	p.FlushEntries = 0
	if _, err := RunScale1M(p); err == nil {
		t.Fatal("zero flush threshold accepted")
	}
}
