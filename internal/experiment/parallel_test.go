package experiment

import (
	"reflect"
	"testing"
)

// The experiment drivers promise bit-identical results for every worker
// count: all parallel writes land in index-owned slots, reductions fold
// serially in index order, and per-trial state (models, PRNG streams) is
// never shared. reflect.DeepEqual over the full result structs — float64
// slices included — is therefore the right check: not "close", equal.

func TestFig7WorkerInvariance(t *testing.T) {
	c := corpus(t)
	serial := RunFig7(c, 1)
	for _, workers := range []int{2, 8} {
		if got := RunFig7(c, workers); !reflect.DeepEqual(got, serial) {
			t.Fatalf("RunFig7 with %d workers diverged from serial", workers)
		}
	}
}

func TestGroupedWorkerInvariance(t *testing.T) {
	c := corpus(t)
	s9, s11 := RunFig9(c, 1), RunFig11(c, 1)
	if got := RunFig9(c, 4); !reflect.DeepEqual(got, s9) {
		t.Fatal("RunFig9 with 4 workers diverged from serial")
	}
	if got := RunFig11(c, 4); !reflect.DeepEqual(got, s11) {
		t.Fatal("RunFig11 with 4 workers diverged from serial")
	}
}

func TestThresholdSweepWorkerInvariance(t *testing.T) {
	c := corpus(t)
	serial, err := RunThresholdSweep(c, DefaultThresholdSweep(), 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunThresholdSweep(c, DefaultThresholdSweep(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, serial) {
		t.Fatal("RunThresholdSweep with 6 workers diverged from serial")
	}
}

func TestCollisionsWorkerInvariance(t *testing.T) {
	p := SmallCollisionParams()
	p.Fingerprints = 40 // enough pairs to exercise the fold, fast enough to run twice
	serial, err := RunCollisions(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Workers = 4
	par, err := RunCollisions(p)
	if err != nil {
		t.Fatal(err)
	}
	// Params differ by construction (Workers is recorded); everything
	// derived must be bit-identical, including the float64 mean.
	par.Params.Workers = serial.Params.Workers
	if !reflect.DeepEqual(par, serial) {
		t.Fatalf("RunCollisions with 4 workers diverged from serial:\n%+v\n%+v", par, serial)
	}
}

func TestFig13WorkerInvariance(t *testing.T) {
	p := SmallFig13Params()
	p.Samples = 80
	serial, err := RunFig13(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Workers = 4
	par, err := RunFig13(p)
	if err != nil {
		t.Fatal(err)
	}
	par.Params.Workers = serial.Params.Workers
	if !reflect.DeepEqual(par, serial) {
		t.Fatal("RunFig13 with 4 workers diverged from serial")
	}
}
