package wal

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// appendN appends payloads p(first)..p(first+n-1) and returns the
// assigned sequence numbers.
func appendN(t *testing.T, l *Log, n int) []uint64 {
	t.Helper()
	seqs := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		seq, err := l.Append([]byte(fmt.Sprintf("record-%d", i)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		seqs = append(seqs, seq)
	}
	return seqs
}

// TestReadRangeMidSegment pins the replication stream's start-at-seq
// path: a read starting in the middle of a segment (and in the middle of
// the log) yields exactly [from, upTo] in order, none of the records
// before it.
func TestReadRangeMidSegment(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentBytes: 200}) // force several segments
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 40
	appendN(t, l, n)
	if l.Segments() < 3 {
		t.Fatalf("want ≥3 segments for a mid-segment start, got %d", l.Segments())
	}
	for _, from := range []uint64{1, 2, 7, 15, n - 1, n} {
		for _, upTo := range []uint64{from, from + 3, n} {
			if upTo > n {
				continue
			}
			var got []uint64
			err := l.ReadRange(from, upTo, func(seq uint64, payload []byte) error {
				got = append(got, seq)
				want := fmt.Sprintf("record-%d", seq-1)
				if string(payload) != want {
					return fmt.Errorf("seq %d payload %q, want %q", seq, payload, want)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("ReadRange(%d, %d): %v", from, upTo, err)
			}
			if len(got) != int(upTo-from+1) {
				t.Fatalf("ReadRange(%d, %d) yielded %d records, want %d", from, upTo, len(got), upTo-from+1)
			}
			for i, seq := range got {
				if seq != from+uint64(i) {
					t.Fatalf("ReadRange(%d, %d) record %d has seq %d", from, upTo, i, seq)
				}
			}
		}
	}
}

func TestReadRangeClampsToDurable(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 5)
	var got []uint64
	if err := l.ReadRange(1, 1_000_000, func(seq uint64, _ []byte) error {
		got = append(got, seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("read %d records, want the 5 durable ones", len(got))
	}
}

func TestReadRangeCompacted(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 40)
	if _, err := l.TruncateBelow(20); err != nil {
		t.Fatal(err)
	}
	first := l.FirstSeq()
	if first == 1 {
		t.Fatal("compaction removed nothing; test needs a raised floor")
	}
	err = l.ReadRange(1, 40, func(uint64, []byte) error { return nil })
	if !errors.Is(err, ErrCompacted) {
		t.Fatalf("ReadRange below the floor = %v, want ErrCompacted", err)
	}
	// From the floor itself the read succeeds.
	var got int
	if err := l.ReadRange(first, 40, func(uint64, []byte) error { got++; return nil }); err != nil {
		t.Fatal(err)
	}
	if got != int(40-first+1) {
		t.Fatalf("read %d records from the floor, want %d", got, 40-first+1)
	}
}

// TestTruncateBelowRacesAppendsAndReads is the satellite race test:
// TruncateBelow, Append, and ReadRange run concurrently. Under -race
// this must be clean, every read must either deliver a contiguous run or
// fail with ErrCompacted (never a gap, never corruption), and the log
// must stay intact end to end.
func TestTruncateBelowRacesAppendsAndReads(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentBytes: 256, Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const total = 600
	var (
		wg      sync.WaitGroup
		stop    atomic.Bool
		highest atomic.Uint64
	)

	// Appender: drives the log forward.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			seq, err := l.Append([]byte(fmt.Sprintf("r-%d", i)))
			if err != nil {
				t.Errorf("append: %v", err)
				break
			}
			l.Sync()
			highest.Store(seq)
		}
		stop.Store(true)
	}()

	// Compactor: repeatedly raises the floor to chase the appender.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if h := highest.Load(); h > 50 {
				if _, err := l.TruncateBelow(h - 50); err != nil {
					t.Errorf("truncate: %v", err)
					return
				}
			}
		}
	}()

	// Readers: replication-style catch-up reads racing both.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				from := l.FirstSeq()
				upTo := highest.Load()
				if upTo < from {
					continue
				}
				want := from
				err := l.ReadRange(from, upTo, func(seq uint64, _ []byte) error {
					if seq != want {
						return fmt.Errorf("gap: got seq %d, want %d", seq, want)
					}
					want++
					return nil
				})
				if err != nil && !errors.Is(err, ErrCompacted) {
					t.Errorf("racing ReadRange: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// The surviving suffix must still verify clean.
	rep, err := Verify(l.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.TornTail {
		t.Fatalf("log damaged after the race: %s", rep)
	}
	if rep.LastSeq != total {
		t.Fatalf("last seq %d after race, want %d", rep.LastSeq, total)
	}
}

func TestOpenStartSeq(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{StartSeq: 500})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.NextSeq(); got != 500 {
		t.Fatalf("NextSeq = %d, want 500", got)
	}
	if got := l.SyncedSeq(); got != 499 {
		t.Fatalf("SyncedSeq = %d, want 499", got)
	}
	seqs := appendN(t, l, 3)
	if seqs[0] != 500 || seqs[2] != 502 {
		t.Fatalf("appended seqs %v, want 500..502", seqs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: StartSeq is ignored once segments exist; position persists.
	l2, err := Open(dir, Options{StartSeq: 9999})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.NextSeq(); got != 503 {
		t.Fatalf("NextSeq after reopen = %d, want 503", got)
	}
	var got []uint64
	if err := l2.Replay(0, func(seq uint64, _ []byte) error {
		got = append(got, seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 500 {
		t.Fatalf("replayed %v, want [500 501 502]", got)
	}
}
