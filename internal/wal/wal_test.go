package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"probablecause/internal/faults"
)

func collect(t *testing.T, l *Log, from uint64) map[uint64][]byte {
	t.Helper()
	got := map[uint64][]byte{}
	if err := l.Replay(from, func(seq uint64, payload []byte) error {
		got[seq] = append([]byte(nil), payload...)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestWALAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64][]byte{}
	for i := 0; i < 100; i++ {
		payload := []byte(fmt.Sprintf("record-%d", i))
		seq, err := l.Append(payload)
		if err != nil {
			t.Fatal(err)
		}
		if wantSeq := uint64(i + 1); seq != wantSeq {
			t.Fatalf("append %d got seq %d, want %d", i, seq, wantSeq)
		}
		want[seq] = payload
	}
	got := collect(t, l, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for seq, payload := range want {
		if !bytes.Equal(got[seq], payload) {
			t.Fatalf("seq %d: got %q want %q", seq, got[seq], payload)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: same records, appends continue the sequence.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2, 0); len(got) != 100 {
		t.Fatalf("reopen replayed %d records, want 100", len(got))
	}
	seq, err := l2.Append([]byte("after-reopen"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 101 {
		t.Fatalf("post-reopen seq %d, want 101", seq)
	}
}

func TestWALReplayFrom(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, l, 7)
	if len(got) != 4 { // seqs 7..10
		t.Fatalf("replay from 7 yielded %d records, want 4", len(got))
	}
	for seq := uint64(7); seq <= 10; seq++ {
		if _, ok := got[seq]; !ok {
			t.Fatalf("replay from 7 missing seq %d", seq)
		}
	}
}

func TestWALRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record rotates.
	l, err := Open(dir, Options{SegmentBytes: 64, Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 48)
	for i := 0; i < 10; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if segs := l.Segments(); segs < 5 {
		t.Fatalf("expected rotation to create several segments, got %d", segs)
	}
	removed, err := l.TruncateBelow(6)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("truncate removed nothing")
	}
	// Seqs >= 6 must survive; earlier ones may be gone.
	got := collect(t, l, 0)
	for seq := uint64(6); seq <= 10; seq++ {
		if _, ok := got[seq]; !ok {
			t.Fatalf("seq %d lost by truncation", seq)
		}
	}
	if first := l.FirstSeq(); first > 6 {
		t.Fatalf("FirstSeq %d, want <= 6", first)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen after truncation: replay starts at the retained boundary.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.NextSeq() != 11 {
		t.Fatalf("reopen NextSeq %d, want 11", l2.NextSeq())
	}
}

// TestWALTornTailRecovery simulates a crash mid-record: the tail of the
// last segment is cut at every possible byte boundary and reopening must
// recover exactly the intact prefix, never panic, never lose an earlier
// record.
func TestWALTornTailRecovery(t *testing.T) {
	build := func(t *testing.T, dir string, n int) {
		l, err := Open(dir, Options{Fsync: FsyncNone})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if _, err := l.Append([]byte(fmt.Sprintf("payload-%02d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	ref := t.TempDir()
	build(t, ref, 5)
	segs, err := listSegments(ref)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one segment, got %d (%v)", len(segs), err)
	}
	whole, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	recBytes := len(whole) / 5

	for cut := 0; cut <= len(whole); cut++ {
		dir := t.TempDir()
		path := segmentPath(dir, 1)
		if err := os.WriteFile(path, whole[:cut], 0o666); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		got := collect(t, l, 0)
		wantRecords := cut / recBytes // only fully written records survive
		if len(got) != wantRecords {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), wantRecords)
		}
		// The log must accept appends at the right sequence after recovery.
		seq, err := l.Append([]byte("resumed"))
		if err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if seq != uint64(wantRecords+1) {
			t.Fatalf("cut %d: resumed at seq %d, want %d", cut, seq, wantRecords+1)
		}
		l.Close()
	}
}

// TestWALInteriorCorruptionRefused flips a byte in the middle of a fully
// valid segment that is followed by another segment: Open must fail with
// ErrCorrupt rather than silently dropping the tail of the fold.
func TestWALInteriorCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64, Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("y"), 48)
	for i := 0; i < 4; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 2 {
		t.Fatal("need at least two segments")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	blob[headerSize+4] ^= 0xFF
	if err := os.WriteFile(segs[0].path, blob, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("open accepted interior corruption")
	}
}

// TestWALConcurrentGroupCommit hammers Append from many goroutines under
// group commit and checks that every acked record replays and sequence
// numbers are dense.
func TestWALConcurrentGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 50
	var mu sync.Mutex
	acked := map[uint64][]byte{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				payload := make([]byte, 12)
				binary.LittleEndian.PutUint32(payload[0:4], uint32(w))
				binary.LittleEndian.PutUint64(payload[4:12], uint64(i))
				seq, err := l.Append(payload)
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				mu.Lock()
				acked[seq] = payload
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if len(acked) != workers*per {
		t.Fatalf("%d acks, want %d", len(acked), workers*per)
	}
	if synced := l.SyncedSeq(); synced != uint64(workers*per) {
		t.Fatalf("SyncedSeq %d, want %d", synced, workers*per)
	}
	got := collect(t, l, 0)
	for seq, payload := range acked {
		if !bytes.Equal(got[seq], payload) {
			t.Fatalf("seq %d: replay mismatch", seq)
		}
	}
	l.Close()
}

// TestWALWriterFaultCrash reuses the internal/faults writer faults as a
// crash simulation: appends fail at a random-but-seeded point, the log
// goes sticky-failed (no record after the torn one), and reopening
// recovers exactly the acked prefix.
func TestWALWriterFaultCrash(t *testing.T) {
	for _, seed := range []uint64{1, 0xFA17, 0xDEAD} {
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("s%x", seed))
		plan := faults.Plan{WriteErr: 0.05, Seed: seed}
		l, err := Open(dir, Options{Fsync: FsyncNone, FaultPlan: plan})
		if err != nil {
			t.Fatal(err)
		}
		var acked []uint64
		for i := 0; i < 500; i++ {
			seq, err := l.Append([]byte(fmt.Sprintf("r%d", i)))
			if err != nil {
				break // injected crash
			}
			acked = append(acked, seq)
		}
		// Sticky: all further appends must fail.
		if _, err := l.Append([]byte("after-failure")); err == nil && len(acked) < 500 {
			t.Fatal("append succeeded after a write fault")
		}
		l.Close()

		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("seed %x: reopen: %v", seed, err)
		}
		got := collect(t, l2, 0)
		if len(got) != len(acked) {
			t.Fatalf("seed %x: recovered %d records, want the %d acked", seed, len(got), len(acked))
		}
		for _, seq := range acked {
			if _, ok := got[seq]; !ok {
				t.Fatalf("seed %x: acked seq %d lost", seed, seq)
			}
		}
		l2.Close()
	}
}

func TestParseFsyncMode(t *testing.T) {
	for in, want := range map[string]FsyncMode{"": FsyncBatch, "batch": FsyncBatch, "always": FsyncAlways, "off": FsyncNone, "none": FsyncNone} {
		got, err := ParseFsyncMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFsyncMode("bogus"); err == nil {
		t.Fatal("bogus mode accepted")
	}
}
