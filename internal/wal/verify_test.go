package wal

import (
	"os"
	"strings"
	"testing"
)

func buildLog(t *testing.T, segmentBytes int64, records int) string {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: segmentBytes})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, records)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestVerifyCleanLog(t *testing.T) {
	dir := buildLog(t, 200, 30)
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.TornTail {
		t.Fatalf("clean log reported damaged: %s", rep)
	}
	if rep.Records != 30 || rep.FirstSeq != 1 || rep.LastSeq != 30 {
		t.Fatalf("report %d records seq %d..%d, want 30 records 1..30", rep.Records, rep.FirstSeq, rep.LastSeq)
	}
	if len(rep.Segments) < 2 {
		t.Fatalf("want a multi-segment report, got %d segments", len(rep.Segments))
	}
	if !strings.Contains(rep.String(), "ok:") {
		t.Fatalf("report rendering lacks the ok line:\n%s", rep)
	}
}

func TestVerifyEmptyDir(t *testing.T) {
	rep, err := Verify(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Records != 0 || len(rep.Segments) != 0 {
		t.Fatalf("empty dir report: %s", rep)
	}
}

// lastSegment returns the path of the highest-seq segment in dir.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listing segments: %v (%d)", err, len(segs))
	}
	return segs[len(segs)-1].path
}

func TestVerifyTornTail(t *testing.T) {
	dir := buildLog(t, 200, 30)
	last := lastSegment(t, dir)
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-record: leave a partial final record.
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("torn tail misclassified as corruption: %s", rep)
	}
	if !rep.TornTail {
		t.Fatalf("torn tail not reported: %s", rep)
	}
	if !strings.Contains(rep.String(), "torn tail") {
		t.Fatalf("report rendering lacks the torn-tail line:\n%s", rep)
	}
}

func TestVerifyInteriorCorruption(t *testing.T) {
	dir := buildLog(t, 200, 30)
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want ≥2 segments: %v (%d)", err, len(segs))
	}
	// Flip a payload byte in a non-final segment: checksum mismatch with
	// later segments present ⇒ fatal.
	first := segs[0].path
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+2] ^= 0xFF
	if err := os.WriteFile(first, data, 0o666); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatalf("interior corruption reported OK: %s", rep)
	}
	if rep.TornTail {
		t.Fatalf("interior corruption misreported as torn tail: %s", rep)
	}
	if !strings.Contains(rep.String(), "CORRUPT") {
		t.Fatalf("report rendering lacks the CORRUPT line:\n%s", rep)
	}
}

func TestVerifyMissingSegment(t *testing.T) {
	dir := buildLog(t, 200, 30)
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want ≥3 segments: %v (%d)", err, len(segs))
	}
	if err := os.Remove(segs[1].path); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatalf("sequence gap reported OK: %s", rep)
	}
	if !strings.Contains(rep.Detail, "missing or renamed") {
		t.Fatalf("gap detail %q", rep.Detail)
	}

}
