package wal

import (
	"fmt"
	"path/filepath"
	"strings"
)

// SegmentVerify is one segment's verification outcome.
type SegmentVerify struct {
	Name     string `json:"name"`
	FirstSeq uint64 `json:"first_seq"`
	Records  int    `json:"records"`
	LastSeq  uint64 `json:"last_seq"` // 0 when the segment holds no intact record
	GoodOff  int64  `json:"good_bytes"`
	Torn     bool   `json:"torn"` // scan stopped before the end of the file
}

// VerifyReport is the outcome of an offline log walk. The distinction it
// draws is the one the recovery contract draws: a torn tail (a partial
// final record in the final segment — the normal residue of a crash,
// truncated silently on the next Open) versus interior corruption (a bad
// record with intact records after it, which Open refuses to load
// because dropping it would unlink every later record from the fold).
type VerifyReport struct {
	Dir      string          `json:"dir"`
	Segments []SegmentVerify `json:"segments"`
	Records  int             `json:"records"`
	FirstSeq uint64          `json:"first_seq"` // 0 when the log is empty
	LastSeq  uint64          `json:"last_seq"`
	// TornTail: the final segment ends in a partial record. Recoverable —
	// Open truncates it and the acked prefix is intact.
	TornTail bool `json:"torn_tail"`
	// Corrupt: a bad record before the end of the log (interior
	// corruption or an inter-segment sequence gap). Open will refuse this
	// log; the fold it reproduces is unrecoverable past the bad record.
	Corrupt bool   `json:"corrupt"`
	Detail  string `json:"detail,omitempty"`
}

// OK reports whether Open would load this log without data loss beyond
// a silently truncated torn tail.
func (r *VerifyReport) OK() bool { return !r.Corrupt }

// String renders the one-screen report the -wal.verify CLI mode prints.
func (r *VerifyReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wal %s: %d segments, %d records", r.Dir, len(r.Segments), r.Records)
	if r.Records > 0 {
		fmt.Fprintf(&b, " (seq %d..%d)", r.FirstSeq, r.LastSeq)
	}
	b.WriteString("\n")
	for _, sg := range r.Segments {
		fmt.Fprintf(&b, "  %s: %d records", sg.Name, sg.Records)
		if sg.Records > 0 {
			fmt.Fprintf(&b, " (seq %d..%d)", sg.FirstSeq, sg.LastSeq)
		}
		if sg.Torn {
			fmt.Fprintf(&b, " TORN at offset %d", sg.GoodOff)
		}
		b.WriteString("\n")
	}
	switch {
	case r.Corrupt:
		fmt.Fprintf(&b, "CORRUPT: %s\n", r.Detail)
	case r.TornTail:
		fmt.Fprintf(&b, "torn tail: final record is partial; Open will truncate it (acked prefix intact)\n")
	default:
		fmt.Fprintf(&b, "ok: checksums and sequence continuity verified\n")
	}
	return strings.TrimRight(b.String(), "\n")
}

// Verify walks the segments in dir offline — without opening the log
// for appends, truncating anything, or starting a server — validating
// checksums and sequence continuity, and classifying any damage as a
// recoverable torn tail versus fatal interior corruption. The returned
// error reports only environmental problems (unreadable directory or
// segment file); corruption is reported in the VerifyReport, not the
// error, so operators get the full walk even of a damaged log.
func Verify(dir string) (*VerifyReport, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	rep := &VerifyReport{Dir: dir}
	expect := uint64(0)
	if len(segs) > 0 {
		expect = segs[0].firstSeq
		rep.FirstSeq = segs[0].firstSeq
	}
	for i, sg := range segs {
		if sg.firstSeq != expect {
			rep.Corrupt = true
			rep.Detail = fmt.Sprintf("segment %s starts at seq %d, want %d: a segment is missing or renamed",
				filepath.Base(sg.path), sg.firstSeq, expect)
			return rep, nil
		}
		// With a nil fn and firstSeq == expect pre-checked, scanSegment can
		// only fail on an unreadable file — environmental, not corruption.
		res, err := scanSegment(sg.path, sg.firstSeq, expect, nil)
		if err != nil {
			return nil, err
		}
		last := uint64(0)
		if res.records > 0 {
			last = res.nextSeq - 1
		}
		rep.Segments = append(rep.Segments, SegmentVerify{
			Name:     filepath.Base(sg.path),
			FirstSeq: sg.firstSeq,
			Records:  res.records,
			LastSeq:  last,
			GoodOff:  res.goodOff,
			Torn:     res.torn,
		})
		rep.Records += res.records
		if last > 0 {
			rep.LastSeq = last
		}
		if res.torn {
			if i == len(segs)-1 {
				rep.TornTail = true
			} else {
				rep.Corrupt = true
				rep.Detail = fmt.Sprintf("segment %s: bad record at offset %d with later segments present",
					filepath.Base(sg.path), res.goodOff)
			}
			return rep, nil
		}
		expect = res.nextSeq
	}
	return rep, nil
}
