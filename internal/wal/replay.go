package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"probablecause/internal/obs"
)

// scanResult summarizes one segment scan.
type scanResult struct {
	records int
	nextSeq uint64 // seq the record after the last good one would carry
	goodOff int64  // file offset just past the last intact record
	torn    bool   // the scan stopped at a bad or partial record
}

// scanSegment reads one segment sequentially, verifying framing, CRC,
// and sequence continuity. firstSeq is the sequence the filename
// promises; expect is the sequence the first record must actually carry
// (they differ only on corruption). A bad record stops the scan with
// torn=true and goodOff at the last intact boundary — never an error —
// so callers decide whether a tail is recoverable (last segment) or
// fatal (interior segment). fn, when non-nil, receives every intact
// record.
func scanSegment(path string, firstSeq, expect uint64, fn func(seq uint64, payload []byte) error) (scanResult, error) {
	if firstSeq != expect {
		// The filename and the log's running sequence disagree: a gap from
		// a lost or renamed segment. Nothing in this file is trustworthy.
		return scanResult{nextSeq: expect, torn: true}, fmt.Errorf("%w: segment %s starts at %d, want %d", ErrCorrupt, path, firstSeq, expect)
	}
	f, err := os.Open(path)
	if err != nil {
		return scanResult{}, fmt.Errorf("wal: opening segment: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	res := scanResult{nextSeq: expect}
	var hdr [headerSize]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return res, nil // clean end at a record boundary
			}
			res.torn = true // partial header
			return res, nil
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		seq := binary.LittleEndian.Uint64(hdr[8:16])
		if plen > maxPayload || seq != res.nextSeq {
			res.torn = true
			return res, nil
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			res.torn = true // partial payload
			return res, nil
		}
		sum := crc32.NewIEEE()
		sum.Write(hdr[8:16])
		sum.Write(payload)
		if sum.Sum32() != crc {
			res.torn = true
			return res, nil
		}
		if fn != nil {
			if err := fn(seq, payload); err != nil {
				return res, err
			}
		}
		res.records++
		res.nextSeq = seq + 1
		res.goodOff += int64(headerSize) + int64(plen)
	}
}

// Replay streams every intact record with sequence number >= from, in
// sequence order, to fn. It reads the segment files directly and must
// not run concurrently with Append; the boot sequence replays before
// serving starts. fn's error aborts the replay and is returned as-is.
//
// A torn tail in the final segment ends the replay cleanly (Open has
// usually already truncated it); interior corruption returns ErrCorrupt.
func (l *Log) Replay(from uint64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	segs := append([]segment(nil), l.segments...)
	l.mu.Unlock()
	var t0 time.Time
	tracing := obs.On()
	if tracing {
		t0 = time.Now()
	}
	total := 0
	expect := uint64(1)
	if len(segs) > 0 {
		expect = segs[0].firstSeq
	}
	for i, sg := range segs {
		res, err := scanSegment(sg.path, sg.firstSeq, expect, func(seq uint64, payload []byte) error {
			if seq < from {
				return nil
			}
			return fn(seq, payload)
		})
		if err != nil {
			return err
		}
		if res.torn && i != len(segs)-1 {
			return fmt.Errorf("%w: %s offset %d", ErrCorrupt, sg.path, res.goodOff)
		}
		total += res.records
		expect = res.nextSeq
	}
	if tracing {
		cReplayRecords.Add(int64(total))
		obs.H("wal.replay.nanos").Observe(time.Since(t0).Nanoseconds())
	}
	return nil
}
