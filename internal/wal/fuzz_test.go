package wal

import (
	"bytes"
	"os"
	"testing"
)

// FuzzSegmentRecovery feeds arbitrary bytes to the segment scanner as a
// single-segment log: recovery must never panic, must accept whatever
// intact prefix exists, and must be idempotent — opening the truncated
// log a second time finds a clean tail and the same records.
func FuzzSegmentRecovery(f *testing.F) {
	f.Add([]byte{})
	f.Add(encode(1, []byte("hello")))
	f.Add(append(encode(1, []byte("a")), encode(2, []byte("b"))...))
	f.Add(append(encode(1, []byte("a")), encode(2, []byte("b"))[:5]...)) // torn tail
	f.Add(append(encode(2, nil), 0xFF))                                  // wrong first seq
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(segmentPath(dir, 1), data, 0o666); err != nil {
			t.Skip()
		}
		l, err := Open(dir, Options{Fsync: FsyncNone})
		if err != nil {
			return // rejected outright is fine; panicking is not
		}
		var first []uint64
		if err := l.Replay(0, func(seq uint64, payload []byte) error {
			first = append(first, seq)
			return nil
		}); err != nil {
			t.Fatalf("replay after recovery: %v", err)
		}
		l.Close()

		l2, err := Open(dir, Options{Fsync: FsyncNone})
		if err != nil {
			t.Fatalf("second open after recovery: %v", err)
		}
		defer l2.Close()
		var second []uint64
		if err := l2.Replay(0, func(seq uint64, payload []byte) error {
			second = append(second, seq)
			return nil
		}); err != nil {
			t.Fatalf("second replay: %v", err)
		}
		if len(first) != len(second) {
			t.Fatalf("recovery not idempotent: %d then %d records", len(first), len(second))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("recovery not idempotent at %d: %d vs %d", i, first[i], second[i])
			}
		}
		// Sequences must be dense starting at 1.
		for i, seq := range first {
			if seq != uint64(i+1) {
				t.Fatalf("non-dense recovered sequence %v", first)
			}
		}
	})
}
