// Package wal implements the write-ahead log behind durable streaming
// enrollment: a checksummed, length-prefixed record log split into
// rotating segment files, with group-commit fsync batching on the append
// path and torn-write recovery on the replay path.
//
// # Format
//
// A segment file is named after the sequence number of its first record
// ("%020d.wal") and holds a dense run of records:
//
//	u32  payload length
//	u32  CRC-32 (IEEE) over seq ‖ payload
//	u64  seq — global record sequence number, contiguous across segments
//	...  payload (opaque to this package)
//
// Sequence numbers start at 1 and never repeat; the enrollment layer uses
// them as ack tokens and snapshot watermarks.
//
// # Durability contract
//
// Append returns only after the record is durable to the degree the
// configured FsyncMode promises: FsyncAlways syncs every record,
// FsyncBatch (the default) coalesces concurrent appenders behind one
// fsync (group commit — every appender still waits for a sync covering
// its record), FsyncNone trusts the OS page cache. Whatever the mode, a
// record whose Append returned nil is on disk in the eyes of this
// process; replay after a crash recovers every such record.
//
// # Recovery contract
//
// Open scans the existing segments, verifies checksums and sequence
// continuity, and truncates a torn tail — a partially written final
// record left by a crash — from the last segment. Corruption anywhere
// else (a bad record followed by good ones, or in a non-final segment)
// is not silently dropped: Open fails with ErrCorrupt, because dropping
// an interior record would silently unlink every record after it from
// the fold the log exists to reproduce.
package wal

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"probablecause/internal/faults"
	"probablecause/internal/obs"
)

// WAL metrics: append volume and latency, fsync batching efficiency, and
// recovery outcomes, all behind obs.On().
var (
	cAppends       = obs.C("wal.appends")
	cAppendBytes   = obs.C("wal.append.bytes")
	hAppendNanos   = obs.H("wal.append.nanos")
	cFsyncs        = obs.C("wal.fsyncs")
	hFsyncNanos    = obs.H("wal.fsync.nanos")
	hFsyncMS       = obs.H("wal.fsync_ms")
	hFsyncBatch    = obs.H("wal.fsync.batch_records")
	cRotations     = obs.C("wal.segment_rotations")
	cTornTruncated = obs.C("wal.recovery.torn_truncated")
	cReplayRecords = obs.C("wal.replay.records")
	gSegments      = obs.G("wal.segments")
	gAckedSeq      = obs.G("wal.acked_seq")
)

// ErrCorrupt reports unrecoverable log corruption: a bad record that is
// not part of the final segment's tail.
var ErrCorrupt = errors.New("wal: corrupt record before end of log")

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("wal: log closed")

// FsyncMode selects the durability policy of Append.
type FsyncMode int

const (
	// FsyncBatch groups concurrent appenders behind a single fsync: the
	// first waiter becomes the syncer, everyone whose record the sync
	// covered is released together. Latency of one fsync, throughput of
	// many appends per fsync.
	FsyncBatch FsyncMode = iota
	// FsyncAlways syncs after every record, serially. The strictest and
	// slowest mode.
	FsyncAlways
	// FsyncNone never syncs on the append path (Close still syncs). An
	// OS crash can lose acked records; a process crash cannot.
	FsyncNone
)

// ParseFsyncMode maps the -wal.fsync flag values onto FsyncMode.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "", "batch":
		return FsyncBatch, nil
	case "always":
		return FsyncAlways, nil
	case "off", "none":
		return FsyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync mode %q (want batch, always, or off)", s)
}

// Options parameterizes Open. The zero value is a sane production
// configuration.
type Options struct {
	// SegmentBytes rotates to a new segment file once the active one
	// exceeds this size; 0 selects 64 MiB.
	SegmentBytes int64
	// Fsync is the append durability policy; the zero value is FsyncBatch.
	Fsync FsyncMode
	// BatchWindow is an optional extra wait before a group-commit fsync,
	// letting more appenders pile onto the same sync. 0 (the default)
	// relies on natural batching: whatever queued during the previous
	// fsync joins the next one.
	BatchWindow time.Duration
	// FaultPlan, when active, wraps segment writes in transient fault and
	// latency injection (crash testing). A failed injected write fails the
	// log exactly like a real one.
	FaultPlan faults.Plan
	// StartSeq is the sequence number the first record of a brand-new log
	// takes; 0 selects 1. Replication bootstrap uses it: a follower that
	// seeded its database from a primary snapshot opens its local log at
	// the snapshot's replay floor, so locally appended replicated records
	// carry the primary's sequence numbers. Ignored when segments already
	// exist on disk.
	StartSeq uint64
}

const (
	defaultSegmentBytes = 64 << 20
	headerSize          = 16
	// maxPayload bounds a record's declared length during recovery, so a
	// garbage length prefix cannot demand an absurd allocation.
	maxPayload = 1 << 28
	suffix     = ".wal"
)

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	return o
}

// segment is one on-disk segment file.
type segment struct {
	path     string
	firstSeq uint64
}

// Log is an append-only write-ahead log. All methods are safe for
// concurrent use except Replay, which must complete before Append
// traffic starts (the boot sequence).
type Log struct {
	dir  string
	opts Options
	inj  *faults.Injector // nil when no fault plan

	mu       sync.Mutex // guards the fields below and all file writes
	segments []segment  // sorted by firstSeq; last is active
	f        *os.File   // active segment
	w        io.Writer  // f, possibly fault-wrapped
	size     int64      // bytes written to the active segment
	nextSeq  uint64     // seq the next Append will take
	failed   error      // sticky write failure; log refuses further appends

	syncMu    sync.Mutex
	syncCond  *sync.Cond
	syncedSeq uint64 // highest seq known durable
	syncing   bool   // a group-commit fsync is in flight
	syncErr   error  // sticky fsync failure
	closed    bool
}

// Open opens (or creates) the log in dir, scanning existing segments,
// verifying checksums and sequence continuity, and truncating a torn
// tail from the final segment. The returned log is positioned to append
// the next sequence number after the last intact record.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("wal: creating directory: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, segments: segs, nextSeq: 1}
	l.syncCond = sync.NewCond(&l.syncMu)
	if opts.FaultPlan.Active() {
		l.inj = faults.NewInjector(opts.FaultPlan)
	}
	if len(segs) == 0 {
		first := opts.StartSeq
		if first == 0 {
			first = 1
		}
		l.nextSeq = first
		if err := l.openSegmentLocked(first); err != nil {
			return nil, err
		}
		l.syncedSeq = first - 1
		return l, nil
	}
	// Verify every segment; only the last may carry a torn tail.
	expect := segs[0].firstSeq
	for i, sg := range segs {
		last := i == len(segs)-1
		res, err := scanSegment(sg.path, sg.firstSeq, expect, nil)
		if err != nil {
			return nil, err
		}
		if res.torn && !last {
			return nil, fmt.Errorf("%w: %s offset %d", ErrCorrupt, filepath.Base(sg.path), res.goodOff)
		}
		expect = res.nextSeq
		if last {
			if res.torn {
				if err := os.Truncate(sg.path, res.goodOff); err != nil {
					return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", filepath.Base(sg.path), err)
				}
				if obs.On() {
					cTornTruncated.Inc()
				}
			}
			f, err := os.OpenFile(sg.path, os.O_RDWR, 0o666)
			if err != nil {
				return nil, fmt.Errorf("wal: opening active segment: %w", err)
			}
			if _, err := f.Seek(res.goodOff, io.SeekStart); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: seeking active segment: %w", err)
			}
			l.f = f
			l.w = l.wrap(f)
			l.size = res.goodOff
		}
	}
	l.nextSeq = expect
	l.syncedSeq = expect - 1 // everything recovered from disk is durable
	if obs.On() {
		gSegments.Set(int64(len(l.segments)))
		gAckedSeq.Set(int64(l.syncedSeq))
	}
	return l, nil
}

func (l *Log) wrap(f *os.File) io.Writer {
	if l.inj != nil {
		return l.inj.Writer(f)
	}
	return f
}

// listSegments returns dir's segment files sorted by first sequence.
func listSegments(dir string) ([]segment, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	var segs []segment
	for _, de := range names {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, suffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, suffix), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: segment name %q is not a sequence number", name)
		}
		segs = append(segs, segment{path: filepath.Join(dir, name), firstSeq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

func segmentPath(dir string, firstSeq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%020d%s", firstSeq, suffix))
}

// openSegmentLocked creates and activates a fresh segment whose first
// record will carry firstSeq. Caller holds l.mu (or is Open, pre-share).
func (l *Log) openSegmentLocked(firstSeq uint64) error {
	path := segmentPath(l.dir, firstSeq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o666)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.segments = append(l.segments, segment{path: path, firstSeq: firstSeq})
	l.f = f
	l.w = l.wrap(f)
	l.size = 0
	if obs.On() {
		gSegments.Set(int64(len(l.segments)))
	}
	return nil
}

// syncDir fsyncs a directory so entry creation/removal survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening directory for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: syncing directory: %w", err)
	}
	return nil
}

// encode renders one record into a fresh buffer.
func encode(seq uint64, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[8:16], seq)
	copy(buf[headerSize:], payload)
	crc := crc32.ChecksumIEEE(buf[8 : headerSize+len(payload)])
	binary.LittleEndian.PutUint32(buf[4:8], crc)
	return buf
}

// Append writes one record and returns its sequence number once the
// record is durable under the configured fsync mode. Write and fsync
// errors are both sticky: the log refuses all further appends, so a
// torn record can never be followed by an intact one (recovery would
// otherwise have to drop the intact record as unreachable), and the
// successfully acked appends always form a contiguous sequence prefix —
// the invariant the enrollment fold chain orders itself by.
func (l *Log) Append(payload []byte) (uint64, error) {
	var t0 time.Time
	if obs.On() {
		t0 = time.Now()
	}
	if len(payload) > maxPayload {
		return 0, fmt.Errorf("wal: payload of %d bytes exceeds the %d-byte record limit", len(payload), maxPayload)
	}
	l.mu.Lock()
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return 0, err
	}
	seq := l.nextSeq
	buf := encode(seq, payload)
	if l.size > 0 && l.size+int64(len(buf)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(seq); err != nil {
			l.failed = err
			l.mu.Unlock()
			return 0, err
		}
	}
	n, err := l.w.Write(buf)
	if err == nil && n < len(buf) {
		err = io.ErrShortWrite
	}
	if err != nil {
		// The segment may now hold a partial record; stop the log so the
		// torn bytes stay the tail, which recovery knows how to truncate.
		l.failed = fmt.Errorf("wal: append failed (log disabled): %w", err)
		err = l.failed
		l.mu.Unlock()
		return 0, err
	}
	l.size += int64(n)
	l.nextSeq = seq + 1
	if l.opts.Fsync == FsyncAlways {
		var s0 time.Time
		if obs.On() {
			s0 = time.Now()
		}
		serr := l.f.Sync()
		if serr != nil {
			l.failed = fmt.Errorf("wal: fsync failed (log disabled): %w", serr)
			serr = l.failed
		}
		l.mu.Unlock()
		if serr != nil {
			return 0, serr
		}
		l.syncMu.Lock()
		l.setSyncedLocked(seq)
		l.syncMu.Unlock()
		if obs.On() {
			l.observeAppend(t0, len(buf))
			observeFsync(time.Since(s0), 1)
		}
		return seq, nil
	}
	l.mu.Unlock()
	if l.opts.Fsync == FsyncBatch {
		if err := l.waitDurable(seq); err != nil {
			return 0, err
		}
	}
	if obs.On() {
		l.observeAppend(t0, len(buf))
	}
	return seq, nil
}

func (l *Log) observeAppend(t0 time.Time, n int) {
	cAppends.Inc()
	cAppendBytes.Add(int64(n))
	hAppendNanos.Observe(time.Since(t0).Nanoseconds())
}

// AppendCtx is Append with request-scoped tracing: when ctx carries a
// request span (obs.StartRequest), a wal.append child span times the
// append — including any group-commit wait — and records the assigned
// sequence number.
func (l *Log) AppendCtx(ctx context.Context, payload []byte) (uint64, error) {
	sp := obs.SpanFrom(ctx).Child("wal.append")
	seq, err := l.Append(payload)
	if err == nil {
		sp.SetAttr("seq", seq)
	}
	sp.End()
	return seq, err
}

// setSyncedLocked advances the durable watermark (caller holds syncMu)
// and mirrors it into the wal.acked_seq gauge — the externally visible
// "everything at or below this sequence survives a crash" line.
func (l *Log) setSyncedLocked(seq uint64) {
	if seq > l.syncedSeq {
		l.syncedSeq = seq
	}
	if obs.On() {
		gAckedSeq.Set(int64(l.syncedSeq))
	}
}

// observeFsync records one fsync's latency (both resolutions) and the
// number of records it newly covered.
func observeFsync(d time.Duration, newRecords int64) {
	cFsyncs.Inc()
	hFsyncNanos.Observe(d.Nanoseconds())
	hFsyncMS.Observe(d.Milliseconds())
	if newRecords >= 0 {
		hFsyncBatch.Observe(newRecords)
	}
}

// rotateLocked syncs and retires the active segment and opens a fresh
// one whose first record will be seq. Caller holds l.mu.
func (l *Log) rotateLocked(seq uint64) error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing segment before rotation: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: closing segment: %w", err)
	}
	// Everything in the retired segment (seq-1 and below) is now durable.
	l.syncMu.Lock()
	l.setSyncedLocked(seq - 1)
	l.syncMu.Unlock()
	if obs.On() {
		cRotations.Inc()
	}
	return l.openSegmentLocked(seq)
}

// waitDurable blocks until seq is covered by a group-commit fsync,
// electing this goroutine as the syncer when none is in flight. The
// durability check comes before the sticky-error check: a record the
// log managed to sync is acked even if a later fsync failed, so the
// acked set is always a contiguous prefix.
func (l *Log) waitDurable(seq uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	for {
		if l.syncedSeq >= seq {
			return nil
		}
		if l.syncErr != nil {
			return l.syncErr
		}
		if l.closed {
			return ErrClosed
		}
		if l.syncing {
			l.syncCond.Wait()
			continue
		}
		l.syncing = true
		l.syncMu.Unlock()

		if l.opts.BatchWindow > 0 {
			time.Sleep(l.opts.BatchWindow)
		}
		var t0 time.Time
		if obs.On() {
			t0 = time.Now()
		}
		l.mu.Lock()
		durable := l.nextSeq - 1
		err := l.f.Sync()
		if err != nil {
			// Poison the log: the segment's durable state is unknown, and a
			// frozen syncedSeq keeps the acked set a contiguous prefix.
			l.failed = fmt.Errorf("wal: fsync failed (log disabled): %w", err)
		}
		l.mu.Unlock()

		l.syncMu.Lock()
		l.syncing = false
		if err != nil {
			l.syncErr = fmt.Errorf("wal: fsync: %w", err)
		} else {
			if obs.On() {
				observeFsync(time.Since(t0), int64(durable-l.syncedSeq))
			}
			l.setSyncedLocked(durable)
		}
		l.syncCond.Broadcast()
	}
}

// Sync forces an fsync of the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return ErrClosed
	}
	durable := l.nextSeq - 1
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.syncMu.Lock()
	l.setSyncedLocked(durable)
	l.syncMu.Unlock()
	return nil
}

// Close syncs and closes the active segment. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	serr := l.f.Sync()
	cerr := l.f.Close()
	l.f = nil
	l.failed = ErrClosed
	l.syncMu.Lock()
	l.closed = true
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	if serr != nil {
		return fmt.Errorf("wal: closing sync: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("wal: close: %w", cerr)
	}
	return nil
}

// NextSeq returns the sequence number the next Append will take.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// SyncedSeq returns the highest sequence number known durable.
func (l *Log) SyncedSeq() uint64 {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	return l.syncedSeq
}

// Segments returns the number of live segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segments)
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// FirstSeq returns the first sequence number still present in the log
// (the start of replay), or NextSeq when the log is empty.
func (l *Log) FirstSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segments) == 0 {
		return l.nextSeq
	}
	return l.segments[0].firstSeq
}

// TruncateBelow removes segment files every record of which has a
// sequence number strictly below keep, and returns how many were
// removed. The active segment is never removed. Compaction after a
// snapshot: keep is the smaller of the snapshot watermark and the first
// sequence any in-flight enrollment still needs.
func (l *Log) TruncateBelow(keep uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	for len(l.segments) >= 2 && l.segments[1].firstSeq <= keep {
		if err := os.Remove(l.segments[0].path); err != nil {
			return removed, fmt.Errorf("wal: removing segment: %w", err)
		}
		l.segments = l.segments[1:]
		removed++
	}
	if removed > 0 {
		if err := syncDir(l.dir); err != nil {
			return removed, err
		}
		if obs.On() {
			gSegments.Set(int64(len(l.segments)))
		}
	}
	return removed, nil
}
