package wal

import (
	"errors"
	"fmt"
	"os"
)

// ErrCompacted reports a read that starts below the log's first retained
// record: the requested prefix was removed by TruncateBelow. Replication
// followers treat it as "too far behind — re-bootstrap from a snapshot".
var ErrCompacted = errors.New("wal: requested records already compacted")

// errStopScan aborts a segment scan early once the requested range is
// exhausted; it never escapes this package.
var errStopScan = errors.New("wal: stop scan")

// ReadRange streams every record with from ≤ seq ≤ upTo, in sequence
// order, to fn. Unlike Replay it is safe to call concurrently with
// Append: it reads only the durable prefix (upTo is clamped to
// SyncedSeq), which is fully written and immutable on disk, and it
// tolerates a torn or in-progress record past that point. This is the
// replication export path — a primary serves follower catch-up reads
// from here while enroll traffic keeps appending.
//
// A start below the first retained record returns ErrCompacted (also
// when a concurrent TruncateBelow removes a segment mid-read): the
// caller is too far behind the compaction floor and must re-seed from a
// snapshot. fn's error aborts the read and is returned as-is.
func (l *Log) ReadRange(from, upTo uint64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	segs := append([]segment(nil), l.segments...)
	next := l.nextSeq
	l.mu.Unlock()
	if synced := l.SyncedSeq(); upTo > synced {
		upTo = synced
	}
	if from == 0 {
		from = 1
	}
	if from > upTo {
		return nil
	}
	firstAvail := next
	if len(segs) > 0 {
		firstAvail = segs[0].firstSeq
	}
	if from < firstAvail {
		return fmt.Errorf("%w: want seq %d, first retained is %d", ErrCompacted, from, firstAvail)
	}
	expect := from
	for i, sg := range segs {
		// Skip segments entirely below the requested range; a mid-segment
		// start scans its segment from the top (records are length-prefixed,
		// not indexed) and emits only from `from` on.
		if i+1 < len(segs) && segs[i+1].firstSeq <= from {
			continue
		}
		_, err := scanSegment(sg.path, sg.firstSeq, sg.firstSeq, func(seq uint64, payload []byte) error {
			if seq < from {
				return nil
			}
			if seq > upTo {
				return errStopScan
			}
			if seq != expect {
				return fmt.Errorf("%w: segment %s yielded seq %d, want %d", ErrCorrupt, sg.path, seq, expect)
			}
			expect = seq + 1
			return fn(seq, payload)
		})
		if err != nil {
			if errors.Is(err, errStopScan) {
				return nil
			}
			if errors.Is(err, os.ErrNotExist) {
				// TruncateBelow removed the segment between the snapshot and
				// the open: the range is gone, same contract as starting low.
				return fmt.Errorf("%w: segment %s removed mid-read", ErrCompacted, sg.path)
			}
			return err
		}
		if expect > upTo {
			return nil
		}
	}
	if expect <= upTo {
		return fmt.Errorf("%w: durable records %d..%d missing from segments", ErrCorrupt, expect, upTo)
	}
	return nil
}
