package ecc

import (
	"testing"
	"testing/quick"

	"probablecause/internal/prng"
)

func TestCleanWordDecodesOK(t *testing.T) {
	for _, d := range []uint64{0, 1, 0xFFFFFFFFFFFFFFFF, 0xDEADBEEFCAFEBABE} {
		w := Encode(d)
		got, res := Decode(w)
		if res != OK || got != d {
			t.Fatalf("clean decode of %#x = (%#x, %v)", d, got, res)
		}
	}
}

func TestSingleDataBitErrorCorrected(t *testing.T) {
	d := uint64(0x0123456789ABCDEF)
	w := Encode(d)
	for bit := 0; bit < 64; bit++ {
		corrupt := w
		corrupt.Data ^= 1 << uint(bit)
		got, res := Decode(corrupt)
		if res != Corrected || got != d {
			t.Fatalf("bit %d: decode = (%#x, %v), want corrected %#x", bit, got, res, d)
		}
	}
}

func TestSingleCheckBitErrorCorrected(t *testing.T) {
	d := uint64(0xA5A5A5A5A5A5A5A5)
	w := Encode(d)
	for bit := 0; bit < 8; bit++ {
		corrupt := w
		corrupt.Check ^= 1 << uint(bit)
		got, res := Decode(corrupt)
		if res != Corrected || got != d {
			t.Fatalf("check bit %d: decode = (%#x, %v)", bit, got, res)
		}
	}
}

func TestDoubleBitErrorDetected(t *testing.T) {
	d := uint64(0x1122334455667788)
	w := Encode(d)
	rng := prng.New(1)
	for trial := 0; trial < 200; trial++ {
		b1 := rng.Intn(64)
		b2 := rng.Intn(64)
		if b1 == b2 {
			continue
		}
		corrupt := w
		corrupt.Data ^= 1 << uint(b1)
		corrupt.Data ^= 1 << uint(b2)
		if _, res := Decode(corrupt); res != Uncorrectable {
			t.Fatalf("double error (%d, %d) decoded as %v", b1, b2, res)
		}
	}
}

func TestScrub(t *testing.T) {
	data := []uint64{1, 2, 3}
	checks := make([]uint8, 3)
	for i, d := range data {
		checks[i] = Encode(d).Check
	}
	data[1] ^= 1 << 7 // single-bit error in word 1
	out, res, err := Scrub(data, checks)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != OK || res[1] != Corrected || res[2] != OK {
		t.Fatalf("results = %v", res)
	}
	if out[1] != 2 {
		t.Fatalf("word 1 = %d, want 2", out[1])
	}
	if _, _, err := Scrub(data, checks[:2]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestResultString(t *testing.T) {
	if OK.String() != "ok" || Corrected.String() != "corrected" || Uncorrectable.String() != "uncorrectable" {
		t.Fatal("Result strings wrong")
	}
	if Result(9).String() == "" {
		t.Fatal("unknown result empty")
	}
}

// Property: every single-bit corruption of (data, check) decodes back to the
// original data.
func TestQuickSingleErrorAlwaysCorrected(t *testing.T) {
	f := func(d uint64, bit8 uint8) bool {
		w := Encode(d)
		bit := int(bit8) % 72
		if bit < 64 {
			w.Data ^= 1 << uint(bit)
		} else {
			w.Check ^= 1 << uint(bit-64)
		}
		got, res := Decode(w)
		return res == Corrected && got == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: encode/decode is the identity on clean words.
func TestQuickCleanIdentity(t *testing.T) {
	f := func(d uint64) bool {
		got, res := Decode(Encode(d))
		return res == OK && got == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
