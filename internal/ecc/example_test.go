package ecc_test

import (
	"fmt"

	"probablecause/internal/ecc"
)

// Example shows SEC-DED behaviour: single-bit errors are silently repaired,
// double-bit errors are detected but not correctable — and it is exactly
// those uncorrectable words that keep leaking the fingerprint.
func Example() {
	w := ecc.Encode(0xDEADBEEF)

	single := w
	single.Data ^= 1 << 7
	got, res := ecc.Decode(single)
	fmt.Printf("single flip: %v, data intact: %v\n", res, got == 0xDEADBEEF)

	double := w
	double.Data ^= 1<<7 | 1<<40
	_, res = ecc.Decode(double)
	fmt.Println("double flip:", res)
	// Output:
	// single flip: corrected, data intact: true
	// double flip: uncorrectable
}
