package ecc

import "testing"

// FuzzDecode: Decode must never panic, and correcting a reported single-bit
// error must yield a word whose re-encoding is self-consistent.
func FuzzDecode(f *testing.F) {
	f.Add(uint64(0), uint8(0))
	f.Add(uint64(0xDEADBEEFCAFEBABE), uint8(0xFF))
	f.Fuzz(func(t *testing.T, data uint64, check uint8) {
		got, res := Decode(Word{Data: data, Check: check})
		if res == Corrected || res == OK {
			// The decoded output must be a valid codeword.
			if _, r2 := Decode(Encode(got)); r2 != OK {
				t.Fatalf("decode output %#x is not a clean codeword", got)
			}
		}
	})
}
