// Package ecc implements the SEC-DED Hamming(72,64) code used on ECC DIMMs:
// 64 data bits protected by 8 check bits, correcting single-bit errors and
// detecting double-bit errors per word.
//
// ECC is the obvious "what about..." response to Probable Cause: real
// servers scrub single-bit errors before software ever sees them. The
// accompanying experiment answers it: ECC masks the *most common* error
// pattern (one volatile cell per word) but approximate refresh rates put
// multiple volatile cells in many words, and those uncorrectable pairs are
// just as manufacturing-determined as the single-bit errors were — the
// fingerprint survives, merely attenuated.
package ecc

import (
	"fmt"
	"math/bits"
)

// Word is a 64-bit data word plus its 8 check bits.
type Word struct {
	Data  uint64
	Check uint8
}

// Encode computes the check bits for a 64-bit data word using an extended
// Hamming code: check bit p covers the data bits whose (position+1) has bit
// p set in the codeword numbering, and the final check bit is overall
// parity.
func Encode(data uint64) Word {
	return Word{Data: data, Check: checkBits(data)}
}

// codewordBit returns bit i (1-indexed Hamming position, powers of two are
// check positions) of the expanded codeword for the given data.
//
// The layout places data bits at non-power-of-two positions 3,5,6,7,9,...
// up to position 71 (64 data bits need positions up to 71 with 7 check
// positions below plus the overall parity).
func checkBits(data uint64) uint8 {
	var c uint8
	// Compute the 7 Hamming parity bits.
	dataIdx := 0
	var parityAcc [7]uint
	for pos := 1; pos <= 71 && dataIdx < 64; pos++ {
		if pos&(pos-1) == 0 { // power of two: check position
			continue
		}
		bit := uint((data >> uint(dataIdx)) & 1)
		for p := 0; p < 7; p++ {
			if pos&(1<<p) != 0 {
				parityAcc[p] ^= bit
			}
		}
		dataIdx++
	}
	for p := 0; p < 7; p++ {
		c |= uint8(parityAcc[p]) << uint(p)
	}
	// Overall parity bit: chosen so the parity of the full 72-bit codeword
	// (data + all 8 check bits) is even.
	overall := (bits.OnesCount64(data) + bits.OnesCount8(c&0x7F)) & 1
	c |= uint8(overall) << 7
	return c
}

// Result classifies a decode.
type Result int

const (
	// OK means the word was clean.
	OK Result = iota
	// Corrected means a single-bit error was repaired.
	Corrected
	// Uncorrectable means a double-bit (or worse even-weight) error was
	// detected; Data is returned as stored.
	Uncorrectable
)

func (r Result) String() string {
	switch r {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Uncorrectable:
		return "uncorrectable"
	default:
		return fmt.Sprintf("Result(%d)", int(r))
	}
}

// Decode checks a stored word, correcting a single-bit data or check error
// in place when possible.
func Decode(w Word) (uint64, Result) {
	expect := checkBits(w.Data)
	// Syndrome: recomputed Hamming parities vs the stored ones.
	syndrome := (w.Check ^ expect) & 0x7F
	// Overall parity of the *received* 72-bit codeword. Encode sets the top
	// check bit so this is zero for a clean word; any single flip anywhere
	// (data, Hamming check, or the parity bit itself) makes it one.
	total := (bits.OnesCount64(w.Data) + bits.OnesCount8(w.Check)) & 1

	switch {
	case syndrome == 0 && total == 0:
		return w.Data, OK
	case syndrome == 0 && total == 1:
		// The overall parity bit itself flipped.
		return w.Data, Corrected
	case total == 1:
		// Odd number of errors with a syndrome: a single-bit error at the
		// Hamming position named by the syndrome.
		pos := int(syndrome)
		if pos&(pos-1) == 0 {
			// A Hamming check bit flipped; data is intact.
			return w.Data, Corrected
		}
		dataIdx := hammingPosToDataIdx(pos)
		if dataIdx < 0 {
			return w.Data, Uncorrectable
		}
		return w.Data ^ (1 << uint(dataIdx)), Corrected
	default:
		// Syndrome set but overall parity even: double-bit error.
		return w.Data, Uncorrectable
	}
}

// hammingPosToDataIdx converts a 1-indexed Hamming codeword position to the
// index of the data bit stored there, or -1 for invalid positions.
func hammingPosToDataIdx(pos int) int {
	if pos < 3 || pos > 71 || pos&(pos-1) == 0 {
		return -1
	}
	idx := 0
	for p := 3; p < pos; p++ {
		if p&(p-1) != 0 {
			idx++
		}
	}
	return idx
}

// Scrub runs a whole buffer through encode-at-write / decode-at-read
// semantics: words holds the data as stored (possibly corrupted), checks the
// check bits as stored (possibly corrupted). It returns the software-visible
// data plus per-word results.
func Scrub(words []uint64, checks []uint8) ([]uint64, []Result, error) {
	if len(words) != len(checks) {
		return nil, nil, fmt.Errorf("ecc: %d words but %d check bytes", len(words), len(checks))
	}
	out := make([]uint64, len(words))
	res := make([]Result, len(words))
	for i := range words {
		out[i], res[i] = Decode(Word{Data: words[i], Check: checks[i]})
	}
	return out, res, nil
}
