package cluster

// Chaos acceptance test for partitioned mode, run with -race in CI:
//
//   - TestScatterClusterFailoverLosesNoAckedEnrollment: 2 partitions ×
//     (primary + follower) behind a scatter-gather coordinator, with
//     every partition's replication transport under a fault plan
//     (injected RPC failures, dropped and duplicated frames). Both
//     primaries are SIGKILLed mid-traffic, staggered; after each
//     partition router promotes its follower, every enrollment the
//     coordinator ever acked must be present in its owner partition's
//     surviving WAL with the exact payload the client sent, each
//     surviving database must be byte-identical to a serial single-node
//     oracle folding that partition's record sequence, and scattered
//     identify plus keyed enrollment must work over the all-promoted
//     topology.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"probablecause/internal/faults"
	"probablecause/internal/retry"
	"probablecause/internal/server"
	"probablecause/internal/wal"
)

func TestScatterClusterFailoverLosesNoAckedEnrollment(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	pmap := mapFromSpec(t, "p0=http://placeholder,p1=http://placeholder")

	faultedPull := func(seed uint64) PullConfig {
		inj := faults.NewInjector(faults.Plan{Seed: seed, RPC: 0.05, FrameDrop: 0.05, FrameDup: 0.10})
		return PullConfig{
			Interval: 2 * time.Millisecond,
			Client:   &http.Client{Transport: inj.RoundTripper(nil), Timeout: 2 * time.Second},
			Injector: inj,
			Retry:    retry.Policy{BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
		}
	}

	// Each partition: a scoped primary (MinISR=1, so acks really mean
	// replicated) and a scoped follower pulling over the hostile
	// transport. Primaries get no deferred close — they die mid-test.
	primaries := make([]*testNode, pmap.Len())
	followers := make([]*testNode, pmap.Len())
	specs := make([]PartitionSpec, pmap.Len())
	for ord := 0; ord < pmap.Len(); ord++ {
		primaries[ord] = startPartitionPrimary(t, pmap, ord, 1)
		f := startNode(t, fmt.Sprintf("p%d-follower", ord), t.TempDir(), nodeOptions{
			pull: faultedPull(uint64(ord) + 1),
			cfg:  partitionScoped(pmap, ord),
		})
		if err := f.node.StartFollower(primaries[ord].url()); err != nil {
			t.Fatal(err)
		}
		defer f.close()
		followers[ord] = f
		specs[ord] = PartitionSpec{
			Name:     pmap.Partition(ord).Name,
			Backends: []string{primaries[ord].url(), f.url()},
		}
	}

	sr, surl, stop := startScatter(t, RouterConfig{
		ProbeInterval:  10 * time.Millisecond,
		RequestTimeout: time.Second,
		FailoverAfter:  3,
		Retry:          retry.Policy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
	}, specs)
	defer stop()
	client0 := &http.Client{Timeout: 5 * time.Second}
	waitScatterReady(t, client0, surl)

	// Concurrent clients enroll device streams through the coordinator,
	// at-least-once, recording every ack with its owning partition. The
	// device list interleaves names owned by each partition so the kill
	// matrix exercises both keyed paths.
	const clients = 3
	const devicesPerClient = 4
	half := clients * devicesPerClient / 2
	owned0, owned1 := devicesOwnedBy(pmap, 0, half), devicesOwnedBy(pmap, 1, half)
	deviceIDs := make([]int, 0, 2*half)
	for i := 0; i < half; i++ {
		deviceIDs = append(deviceIDs, owned0[i], owned1[i])
	}
	type scatterAck struct {
		ackedEnroll
		partition int
	}
	var (
		mu    sync.Mutex
		acked []scatterAck
	)
	var wg sync.WaitGroup
	killed := make(chan struct{})
	enrollOne := func(client *http.Client, dev, trial int) {
		session := fmt.Sprintf("sess-%d", dev)
		name := fmt.Sprintf("dev-%d", dev)
		es := deviceObs(obsBits, dev, trial)
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			st, code := enrollHTTP(t, client, surl, session, name, es)
			if code == http.StatusOK {
				mu.Lock()
				acked = append(acked, scatterAck{
					ackedEnroll: ackedEnroll{
						seq: st.Seq, session: session, name: name,
						length: es.Len(), positions: es.Positions(),
					},
					partition: pmap.Owner(name),
				})
				mu.Unlock()
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Errorf("dev-%d trial %d never acked", dev, trial)
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 2 * time.Second}
			for d := 0; d < devicesPerClient; d++ {
				dev := deviceIDs[c*devicesPerClient+d]
				for trial := 0; trial < 4; trial++ {
					enrollOne(client, dev, trial)
				}
				if d == devicesPerClient/2 {
					<-killed
				}
			}
		}(c)
	}

	// Kill both primaries, staggered, so the failovers overlap live
	// traffic differently per partition.
	time.Sleep(150 * time.Millisecond)
	primaries[0].kill()
	time.Sleep(100 * time.Millisecond)
	primaries[1].kill()
	preKillAcked := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(acked)
	}()
	close(killed)

	for ord := 0; ord < pmap.Len(); ord++ {
		ord := ord
		waitFor(t, 15*time.Second, fmt.Sprintf("p%d failover to follower", ord), func() bool {
			return sr.PartitionRouter(ord).Primary() == followers[ord].url()
		})
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if preKillAcked == 0 {
		t.Fatal("no traffic acked before the kills; test proved nothing")
	}
	perPart := make([]int, pmap.Len())
	for _, a := range acked {
		perPart[a.partition]++
	}
	t.Logf("acked %d observations before the kills, %d total (split %v)", preKillAcked, len(acked), perPart)
	for ord, n := range perPart {
		if n == 0 {
			t.Fatalf("partition %d received no acked traffic; the matrix needs both", ord)
		}
	}

	// Per partition: acked ⊆ surviving WAL with exact payloads, and the
	// promoted follower's database matches a serial oracle of its WAL.
	oracles := make([]*server.Service, pmap.Len())
	for ord := 0; ord < pmap.Len(); ord++ {
		np := followers[ord]
		applied := np.svc.AppliedSeq()
		walRecords := make(map[uint64][]byte)
		err := np.svc.WAL().ReadRange(np.svc.WAL().FirstSeq(), applied, func(seq uint64, payload []byte) error {
			walRecords[seq] = append([]byte(nil), payload...)
			return nil
		})
		if err != nil {
			t.Fatalf("reading p%d surviving WAL: %v", ord, err)
		}
		for _, a := range acked {
			if a.partition != ord {
				continue
			}
			if a.seq > applied {
				t.Fatalf("p%d acked seq %d (session %s) beyond applied %d — acked enrollment lost",
					ord, a.seq, a.session, applied)
			}
			payload, ok := walRecords[a.seq]
			if !ok {
				t.Fatalf("p%d acked seq %d missing from surviving WAL", ord, a.seq)
			}
			var rec struct {
				Session   string   `json:"session"`
				Name      string   `json:"name"`
				Len       int      `json:"len"`
				Positions []uint32 `json:"positions"`
			}
			if err := json.Unmarshal(payload, &rec); err != nil {
				t.Fatalf("p%d acked seq %d payload undecodable: %v", ord, a.seq, err)
			}
			if rec.Session != a.session || rec.Name != a.name || rec.Len != a.length ||
				fmt.Sprint(rec.Positions) != fmt.Sprint(a.positions) {
				t.Fatalf("p%d acked seq %d holds %+v, client sent %+v", ord, a.seq, rec, a)
			}
		}

		oracle, err := server.BootDurable(nil, server.Config{}, server.EnrollConfig{
			Dir:         t.TempDir(),
			Accumulator: fastAcc,
			WAL:         wal.Options{Fsync: wal.FsyncNone},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer oracle.Close()
		for seq := np.svc.WAL().FirstSeq(); seq <= applied; seq++ {
			payload, ok := walRecords[seq]
			if !ok {
				t.Fatalf("p%d surviving WAL has a hole at seq %d", ord, seq)
			}
			if _, err := oracle.ApplyReplicated(seq, payload); err != nil {
				t.Fatalf("p%d oracle apply seq %d: %v", ord, seq, err)
			}
		}
		if ob, nb := exportBytes(t, oracle), exportBytes(t, np.svc); !bytes.Equal(ob, nb) {
			t.Fatalf("p%d surviving database diverged from serial oracle (%d vs %d bytes)", ord, len(nb), len(ob))
		}
		oracles[ord] = oracle
	}

	// Scattered identify over the all-promoted topology matches the
	// owner partition's oracle on every enrolled device.
	{
		for _, dev := range deviceIDs {
			es := deviceObs(obsBits, dev, 9)
			ov := oracles[pmap.Owner(fmt.Sprintf("dev-%d", dev))].DB().Decide(es)
			code, name := identifyHTTP(t, client0, surl, es)
			if code != http.StatusOK {
				t.Fatalf("post-failover scattered identify dev-%d: status %d", dev, code)
			}
			if ov.OK() && name != ov.Name {
				t.Fatalf("dev-%d verdict diverged: scatter %q, oracle %q", dev, name, ov.Name)
			}
		}
	}

	// Keyed enrollment still flows to each promoted primary.
	for ord := 0; ord < pmap.Len(); ord++ {
		dev := 0
		for i := 400; ; i++ {
			if pmap.Owner(fmt.Sprintf("dev-%d", i)) == ord {
				dev = i
				break
			}
		}
		_, code := enrollHTTP(t, client0, surl, fmt.Sprintf("post-failover-%d", ord),
			fmt.Sprintf("dev-%d", dev), deviceObs(obsBits, dev%300, 0))
		if code != http.StatusOK {
			t.Fatalf("post-failover enroll to p%d: status %d", ord, code)
		}
	}
}
