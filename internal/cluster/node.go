// Package cluster turns single-node pcserved services into a replicated
// topology: a primary ships its enrollment WAL to followers over HTTP,
// each follower replays the identical record sequence through the same
// deterministic fold (so its database is byte-identical to the
// primary's), and a router spreads identify reads across healthy
// replicas while forwarding mutations to the primary and failing over
// to the most-caught-up follower when the primary dies.
//
// Replication is pull-based and semi-synchronous. Followers poll
// GET /v1/repl/stream from their next WAL sequence and piggyback their
// applied watermark on every pull; the primary's Tracker folds those
// acks into a commit sequence (the MinISR-th highest), and enrollment
// acks gate on it. Because WAL acks form a contiguous prefix, the
// follower with the highest applied sequence provably holds every
// record the commit gate ever released — promoting it loses nothing a
// client was told was durable.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"probablecause/internal/obs"
	"probablecause/internal/server"
	"probablecause/internal/store"
	"probablecause/internal/wal"
)

var (
	cStreamPulls   = obs.C("cluster.stream.pulls")
	cStreamRecords = obs.C("cluster.stream.records")
	cSnapshots     = obs.C("cluster.snapshots_served")
	cPromotions    = obs.C("cluster.promotions")
)

// DefaultStreamMax bounds records per stream response when
// NodeConfig.StreamMax is zero.
const DefaultStreamMax = 256

// NodeConfig parameterizes one cluster node.
type NodeConfig struct {
	// ID names this node in replication acks and status reports.
	ID string
	// MinISR is the number of follower acknowledgements an enrollment
	// needs before the primary acks the client. 0 means asynchronous
	// replication: acks gate on local durability alone.
	MinISR int
	// StreamMax caps records per stream response; 0 selects
	// DefaultStreamMax.
	StreamMax int
	// Pull configures the replication client used while following.
	Pull PullConfig
}

// Node wraps a server.Service with the replication control surface:
// the /v1/repl/* endpoints, and the primary/follower role machinery.
type Node struct {
	svc *server.Service
	cfg NodeConfig

	mu      sync.Mutex
	tracker *Tracker // non-nil while primary with MinISR > 0
	puller  *Puller  // non-nil while following
}

// NewNode wraps svc. The node starts roleless; call StartPrimary or
// StartFollower before serving.
func NewNode(svc *server.Service, cfg NodeConfig) *Node {
	if cfg.StreamMax <= 0 {
		cfg.StreamMax = DefaultStreamMax
	}
	return &Node{svc: svc, cfg: cfg}
}

// Service returns the wrapped service.
func (n *Node) Service() *server.Service { return n.svc }

// StartPrimary assumes the primary role: installs the commit tracker
// (when MinISR > 0) as the enrollment ack gate and opens for mutations.
func (n *Node) StartPrimary() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.becomePrimaryLocked()
}

func (n *Node) becomePrimaryLocked() {
	if n.puller != nil {
		n.puller.Stop()
		n.puller = nil
	}
	if n.cfg.MinISR > 0 {
		n.tracker = NewTracker(n.cfg.MinISR)
		n.svc.SetCommitGate(n.tracker.Gate())
	} else {
		n.tracker = nil
		n.svc.SetCommitGate(nil)
	}
	n.svc.SetPrimary(true)
	n.svc.SetReady(true)
}

// StartFollower assumes the follower role: refuses mutations, reports
// not-ready until the puller has caught up to the primary once, and
// starts pulling the primary's WAL stream.
func (n *Node) StartFollower(primary string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.svc.WAL() == nil {
		return server.ErrEnrollmentDisabled
	}
	if n.tracker != nil {
		n.tracker.Close()
		n.tracker = nil
		n.svc.SetCommitGate(nil)
	}
	n.svc.SetPrimary(false)
	n.svc.SetReady(false)
	cfg := n.cfg.Pull
	cfg.ID = n.cfg.ID
	cfg.Primary = primary
	if n.puller != nil {
		n.puller.Stop()
	}
	n.puller = StartPuller(n.svc, cfg)
	return nil
}

// Promote flips a follower to primary after failover: the puller stops,
// the commit tracker installs fresh (followers re-pointed here rebuild
// the quorum), and mutations open. The WAL continues from this node's
// applied position — by the contiguous-prefix argument, that position
// is at or past every client-acked record when the router promotes the
// most-caught-up follower.
func (n *Node) Promote() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.svc.IsPrimary() {
		return
	}
	if obs.On() {
		cPromotions.Inc()
	}
	n.becomePrimaryLocked()
}

// Follow re-points a follower at a new primary (post-failover) without
// rewinding: pulls resume from the local applied position.
func (n *Node) Follow(primary string) error {
	return n.StartFollower(primary)
}

// Tracker returns the commit tracker (nil unless primary with MinISR>0).
func (n *Node) Tracker() *Tracker {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tracker
}

// Puller returns the replication client (nil unless following).
func (n *Node) Puller() *Puller {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.puller
}

// Close stops role machinery (puller, tracker). The wrapped service is
// the caller's to close.
func (n *Node) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.puller != nil {
		n.puller.Stop()
		n.puller = nil
	}
	if n.tracker != nil {
		n.tracker.Close()
		n.tracker = nil
	}
}

// Handler returns the node's full HTTP surface: the replication
// endpoints layered over the service API.
//
//	GET  /v1/repl/status    role, readiness, WAL positions, quorum view
//	GET  /v1/repl/stream    WAL records from ?from= (follower pull + ack)
//	GET  /v1/repl/snapshot  bootstrap image: db export + watermark/floor
//	GET  /v1/repl/segments  bootstrap image: tiered segment files + manifest
//	POST /v1/repl/promote   follower → primary (failover)
//	POST /v1/repl/follow    re-point this follower at a new primary
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/repl/status", n.handleStatus)
	mux.HandleFunc("GET /v1/repl/stream", n.handleStream)
	mux.HandleFunc("GET /v1/repl/snapshot", n.handleSnapshot)
	mux.HandleFunc("GET /v1/repl/segments", n.handleSegments)
	mux.HandleFunc("POST /v1/repl/promote", n.handlePromote)
	mux.HandleFunc("POST /v1/repl/follow", n.handleFollow)
	mux.Handle("/", n.svc.Handler())
	return mux
}

// StatusJSON is the /v1/repl/status body — the router's failover input.
type StatusJSON struct {
	ID         string            `json:"id"`
	Role       string            `json:"role"`
	Ready      bool              `json:"ready"`
	AppliedSeq uint64            `json:"applied_seq"`
	SyncedSeq  uint64            `json:"synced_seq"`
	FirstSeq   uint64            `json:"first_seq"`
	NextSeq    uint64            `json:"next_seq"`
	CommitSeq  uint64            `json:"commit_seq,omitempty"`
	MinISR     int               `json:"min_isr,omitempty"`
	Followers  map[string]uint64 `json:"followers,omitempty"`
	// Partition is the partition this node serves (empty when
	// unpartitioned) — the scatter router's topology handshake input.
	Partition string `json:"partition,omitempty"`
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := StatusJSON{
		ID:         n.cfg.ID,
		Role:       "follower",
		Ready:      n.svc.Ready(),
		AppliedSeq: n.svc.AppliedSeq(),
		Partition:  n.svc.Config().Partition.Name,
	}
	if n.svc.IsPrimary() {
		st.Role = "primary"
	}
	if l := n.svc.WAL(); l != nil {
		st.SyncedSeq = l.SyncedSeq()
		st.FirstSeq = l.FirstSeq()
		st.NextSeq = l.NextSeq()
	}
	if t := n.Tracker(); t != nil {
		st.CommitSeq = t.CommitSeq()
		st.MinISR = t.MinISR()
		st.Followers = t.Progress()
	}
	writeJSON(w, http.StatusOK, st)
}

// Frame is one WAL record on the replication stream, NDJSON-encoded.
// Payload is the raw record bytes — already JSON, relayed verbatim so
// the follower appends and folds the identical bytes.
type Frame struct {
	Seq     uint64          `json:"seq"`
	Payload json.RawMessage `json:"payload"`
}

// Stream response headers: the primary's durable high-water mark (for
// follower lag accounting) and the first sequence still on disk (so a
// lagging follower learns it must re-bootstrap).
const (
	hdrSynced    = "X-PC-Repl-Synced"
	hdrFirst     = "X-PC-Repl-First"
	hdrWatermark = "X-PC-Snapshot-Watermark"
	hdrFloor     = "X-PC-Snapshot-Floor"
)

func (n *Node) handleStream(w http.ResponseWriter, r *http.Request) {
	l := n.svc.WAL()
	if l == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: server.ErrEnrollmentDisabled.Error()})
		return
	}
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil || from == 0 {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "stream needs ?from=<seq≥1>"})
		return
	}
	// Piggybacked progress report: fold the follower's applied watermark
	// into the commit quorum before serving more records.
	if id := q.Get("id"); id != "" {
		if ackStr := q.Get("acked"); ackStr != "" {
			if acked, aerr := strconv.ParseUint(ackStr, 10, 64); aerr == nil {
				if t := n.Tracker(); t != nil {
					t.Observe(id, acked)
				}
			}
		}
	}
	if obs.On() {
		cStreamPulls.Inc()
	}
	first := l.FirstSeq()
	w.Header().Set(hdrFirst, strconv.FormatUint(first, 10))
	w.Header().Set(hdrSynced, strconv.FormatUint(l.SyncedSeq(), 10))
	if from < first {
		// The requested history was compacted away; the follower must
		// re-bootstrap from a snapshot.
		writeJSON(w, http.StatusGone, errorJSON{Error: fmt.Sprintf("cluster: seq %d compacted (first available %d)", from, first)})
		return
	}
	upTo := l.SyncedSeq()
	if max := uint64(n.cfg.StreamMax); upTo >= from && upTo-from+1 > max {
		upTo = from + max - 1
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	if upTo < from {
		return // caught up; empty body
	}
	enc := json.NewEncoder(w)
	sent := 0
	err = l.ReadRange(from, upTo, func(seq uint64, payload []byte) error {
		sent++
		return enc.Encode(Frame{Seq: seq, Payload: json.RawMessage(payload)})
	})
	if obs.On() {
		cStreamRecords.Add(int64(sent))
	}
	if err != nil && !errors.Is(err, wal.ErrCompacted) {
		// Headers are gone; the follower sees a short body and re-pulls.
		obs.Errorf("repl stream read", "from", from, "upTo", upTo, "err", err)
	}
}

func (n *Node) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	db, watermark, floor, err := n.svc.ReplicationSnapshot()
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: err.Error()})
		return
	}
	if obs.On() {
		cSnapshots.Inc()
	}
	w.Header().Set(hdrWatermark, strconv.FormatUint(watermark, 10))
	w.Header().Set(hdrFloor, strconv.FormatUint(floor, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := db.WriteTo(w); err != nil {
		obs.Errorf("repl snapshot write", "err", err)
	}
}

// segmentFrame is the header line preceding each raw file on the
// /v1/repl/segments stream. Files arrive immutable-segments-first and
// manifest-last, so a torn download can never leave a manifest referencing
// files that were not fully received.
type segmentFrame struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// handleSegments streams a tiered primary's committed segment files plus the
// manifest naming them — the segment-shipping bootstrap path. The primary
// checkpoints first (draining its memtable into a segment), so the shipped
// files hold the complete fold prefix at the watermark header; neither side
// ever materializes the database in heap.
func (n *Node) handleSegments(w http.ResponseWriter, r *http.Request) {
	manifest, paths, watermark, floor, release, err := n.svc.StoreSnapshot()
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: err.Error()})
		return
	}
	defer release()
	if obs.On() {
		cSnapshots.Inc()
	}
	w.Header().Set(hdrWatermark, strconv.FormatUint(watermark, 10))
	w.Header().Set(hdrFloor, strconv.FormatUint(floor, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	enc := json.NewEncoder(w)
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			obs.Errorf("repl segments open", "path", p, "err", err)
			return // torn body; the follower retries
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			obs.Errorf("repl segments stat", "path", p, "err", err)
			return
		}
		if err := enc.Encode(segmentFrame{Name: filepath.Base(p), Size: st.Size()}); err != nil {
			f.Close()
			return
		}
		if _, err := io.Copy(w, f); err != nil {
			f.Close()
			return
		}
		f.Close()
	}
	if err := enc.Encode(segmentFrame{Name: store.ManifestFile, Size: int64(len(manifest))}); err != nil {
		return
	}
	w.Write(manifest)
}

func (n *Node) handlePromote(w http.ResponseWriter, r *http.Request) {
	n.Promote()
	n.handleStatus(w, r)
}

type followRequestJSON struct {
	Primary string `json:"primary"`
}

func (n *Node) handleFollow(w http.ResponseWriter, r *http.Request) {
	var req followRequestJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Primary == "" {
		writeJSON(w, http.StatusBadRequest, errorJSON{Error: "follow needs {\"primary\":\"<url>\"}"})
		return
	}
	if err := n.Follow(req.Primary); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorJSON{Error: err.Error()})
		return
	}
	n.handleStatus(w, r)
}

type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	blob, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(blob, '\n'))
}
