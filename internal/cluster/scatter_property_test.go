package cluster

// The partitioned cluster's core acceptance property: scatter-gather
// identify over a 2-partition cluster answers byte-identically to a
// single node scanning the union database serially. The oracle is a
// plain (dense-scan) ShardedDB rebuilt from the partitions' exports with
// cluster-global ids, encoded through the exact server wire path. Any
// divergence — distance, tie-break id, match count, field order, even a
// trailing byte — fails the comparison.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"probablecause/internal/bitset"
	"probablecause/internal/fingerprint"
	"probablecause/internal/prng"
	"probablecause/internal/server"
)

// sparseFP draws a random fingerprint with ~k set bits.
func sparseFP(src *prng.Source, bits, k int) *bitset.Set {
	fp := bitset.New(bits)
	for j := 0; j < k; j++ {
		fp.Set(int(src.Uint64() % uint64(bits)))
	}
	return fp
}

// postRaw posts body and returns the raw response bytes (newline and
// all) plus the status.
func postRaw(t *testing.T, client *http.Client, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// scatterOracle rebuilds the union database from the partition nodes'
// live exports: every entry re-inserted under its cluster-global id, in
// increasing id order so within-shard insertion order matches id order
// (the tie-break the merge contract relies on).
func scatterOracle(t *testing.T, pmap *PartitionMap, nodes []*testNode) *fingerprint.ShardedDB {
	t.Helper()
	oracle, err := fingerprint.NewShardedDB(fingerprint.DefaultThreshold, fingerprint.ShardedConfig{Plain: true})
	if err != nil {
		t.Fatal(err)
	}
	var all []fingerprint.IDEntry
	for ord, n := range nodes {
		ns := pmap.Namespace(ord)
		for _, e := range n.svc.DB().ExportIDs() {
			all = append(all, fingerprint.IDEntry{ID: ns.Global(e.ID), Name: e.Name, FP: e.FP})
		}
	}
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j].ID < all[j-1].ID; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	for _, e := range all {
		oracle.AddWithID(e.ID, e.Name, e.FP)
	}
	return oracle
}

// wireBytes encodes a verdict exactly as the server's identify handler
// does: compact JSON plus a trailing newline.
func wireBytes(t *testing.T, v any) []byte {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return append(blob, '\n')
}

func TestScatterIdentifyByteIdenticalToSerialOracle(t *testing.T) {
	for _, workers := range []int{1, 3, 0} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			pmap := mapFromSpec(t, "p0=http://placeholder,p1=http://placeholder")
			nodes := make([]*testNode, pmap.Len())
			specs := make([]PartitionSpec, pmap.Len())
			for ord := range nodes {
				ord := ord
				n := startNode(t, fmt.Sprintf("prop-p%d", ord), t.TempDir(), nodeOptions{cfg: func(c *server.Config) {
					partitionScoped(pmap, ord)(c)
					// Plain shards: full-scan verdicts whose Matches counts an
					// index would truncate to candidates. Workers varies the
					// dispatch parallelism the property must be invariant to.
					c.Plain = true
					c.Workers = workers
				}})
				n.node.StartPrimary()
				defer n.close()
				nodes[ord] = n
				specs[ord] = PartitionSpec{Name: pmap.Partition(ord).Name, Backends: []string{n.url()}}
			}
			_, url, stop := startScatter(t, scatterRouterConfig(), specs)
			defer stop()

			client := &http.Client{Timeout: 10 * time.Second}
			waitScatterReady(t, client, url)

			// Randomized corpus, keyed-routed through the coordinator.
			const bits, entries = 4096, 60
			src := prng.New(0x5CA77E4 + uint64(workers))
			fps := make([]*bitset.Set, entries)
			for i := range fps {
				fps[i] = sparseFP(src, bits, 80)
				body, _ := json.Marshal(map[string]any{
					"name": fmt.Sprintf("dev-%d", i), "len": bits, "positions": fps[i].Positions(),
				})
				if code, raw := postRaw(t, client, url+"/v1/db", body); code != http.StatusOK {
					t.Fatalf("db add dev-%d: %d %s", i, code, raw)
				}
			}
			if nodes[0].svc.DB().Len() == 0 || nodes[1].svc.DB().Len() == 0 {
				t.Fatalf("degenerate corpus split %d/%d — property needs both partitions populated",
					nodes[0].svc.DB().Len(), nodes[1].svc.DB().Len())
			}
			oracle := scatterOracle(t, pmap, nodes)
			if oracle.Len() != entries {
				t.Fatalf("oracle rebuilt %d entries, want %d", oracle.Len(), entries)
			}

			// Singles: near-duplicates of enrolled fingerprints (including
			// exact ties), then pure noise.
			queries := make([]*bitset.Set, 0, 2*entries)
			for q := 0; q < entries; q++ {
				es := fps[q].Clone()
				for j := 0; j < int(src.Uint64()%4); j++ {
					es.Set(int(src.Uint64() % uint64(bits)))
				}
				queries = append(queries, es)
			}
			for q := 0; q < entries; q++ {
				queries = append(queries, sparseFP(src, bits, 80))
			}
			for qi, es := range queries {
				body, _ := json.Marshal(map[string]any{"len": es.Len(), "positions": es.Positions()})
				code, raw := postRaw(t, client, url+"/v1/identify", body)
				if code != http.StatusOK {
					t.Fatalf("identify query %d: %d %s", qi, code, raw)
				}
				want := wireBytes(t, server.WireVerdict(oracle.Decide(es), false))
				if !bytes.Equal(raw, want) {
					t.Fatalf("query %d: scatter %q != oracle %q", qi, raw, want)
				}
			}

			// Batch: the same corpus in one shot, merged per query.
			type wireQuery struct {
				Len       int      `json:"len"`
				Positions []uint32 `json:"positions"`
			}
			req := struct {
				Queries []wireQuery `json:"queries"`
			}{}
			for _, es := range queries[:40] {
				req.Queries = append(req.Queries, wireQuery{Len: es.Len(), Positions: es.Positions()})
			}
			body, _ := json.Marshal(req)
			code, raw := postRaw(t, client, url+"/v1/identify-batch", body)
			if code != http.StatusOK {
				t.Fatalf("identify-batch: %d %s", code, raw)
			}
			wantBatch := server.BatchResponseJSON{}
			for _, es := range queries[:40] {
				wantBatch.Results = append(wantBatch.Results, server.WireVerdict(oracle.Decide(es), false))
			}
			if want := wireBytes(t, wantBatch); !bytes.Equal(raw, want) {
				t.Fatalf("batch: scatter %q != oracle %q", raw, want)
			}
		})
	}
}
