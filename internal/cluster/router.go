// router.go: the replicated group's front door — health/role probing
// with the partition handshake, primary failover, budgeted retries over
// per-backend circuit breakers, and the Forward primitive the
// scatter-gather coordinator (scatter.go) builds on.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"probablecause/internal/obs"
	"probablecause/internal/prng"
	"probablecause/internal/retry"
)

// Router metrics: one RED triple for the proxy path plus failover and
// retry accounting, so chaos tests can bound the client-visible error
// rate and count failovers from the registry.
var (
	redRouter     = obs.NewRED(obs.Default, "cluster.router")
	cRouterRetry  = obs.C("cluster.router.retries")
	cRouterNoBack = obs.C("cluster.router.no_backend_503")
	cFailovers    = obs.C("cluster.router.failovers")
	cProbes       = obs.C("cluster.router.probes")
	gHealthy      = obs.G("cluster.router.healthy_backends")
)

// Router defaults.
const (
	DefaultProbeInterval   = 100 * time.Millisecond
	DefaultRequestTimeout  = 5 * time.Second
	DefaultFailoverAfter   = 3
	DefaultMaxForwardBody  = 8 << 20
	DefaultReadAttempts    = 3
	DefaultWriteAttempts   = 2
	defaultBreakerFailures = 5
	defaultBreakerCooldown = 500 * time.Millisecond
)

// RouterConfig parameterizes the routing tier.
type RouterConfig struct {
	// Backends are the cluster nodes' base URLs (primary + followers).
	Backends []string
	// Client issues proxied requests and probes; nil selects
	// http.DefaultClient. Chaos tests wrap its transport with a
	// faults.Injector.
	Client *http.Client
	// ProbeInterval paces the health/role probe loop.
	ProbeInterval time.Duration
	// RequestTimeout bounds each proxied attempt.
	RequestTimeout time.Duration
	// Retry shapes backoff between proxy attempts. MaxAttempts defaults
	// to DefaultReadAttempts for reads, DefaultWriteAttempts for writes.
	Retry retry.Policy
	// Budget bounds retry volume across all proxied requests; nil
	// selects NewBudget(0.2, 20).
	Budget *retry.Budget
	// BreakerThreshold/BreakerCooldown shape each backend's circuit
	// breaker (defaults 5 failures, 500ms cooldown).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// FailoverAfter is how many consecutive failed primary probes
	// trigger promotion of the most-caught-up follower.
	FailoverAfter int
	// Seed drives deterministic retry jitter and backend choice.
	Seed uint64
	// Partition, when non-empty, is the topology handshake: a backend
	// whose /v1/repl/status claims a different partition is treated as
	// unhealthy (a misconfigured node must never serve or absorb this
	// partition's traffic).
	Partition string
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.Budget == nil {
		c.Budget = retry.NewBudget(0.2, 20)
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = defaultBreakerFailures
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = defaultBreakerCooldown
	}
	if c.FailoverAfter <= 0 {
		c.FailoverAfter = DefaultFailoverAfter
	}
	return c
}

// backend is the router's view of one cluster node.
type backend struct {
	url     string
	breaker *retry.Breaker

	mu       sync.Mutex
	healthy  bool
	ready    bool
	role     string
	applied  uint64
	downFor  int // consecutive failed probes
	lastSeen StatusJSON
}

func (b *backend) snapshot() (healthy, ready bool, role string, applied uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy, b.ready, b.role, b.applied
}

// Router spreads identify reads across healthy ready replicas, forwards
// mutations to the primary, and drives failover when the primary dies:
// after FailoverAfter consecutive failed primary probes it promotes the
// follower with the highest applied sequence and re-points the rest.
//
// Retry discipline: reads retry on transport errors and 5xx responses
// on a different backend (hedging across replicas); writes retry only
// on transport errors and not-primary rejections — failures where the
// request provably did not mutate state — so enrollment stays
// at-least-once without multiplying observations.
type Router struct {
	cfg      RouterConfig
	backends []*backend
	rr       atomic.Uint64

	jmu    sync.Mutex
	jitter *prng.Source

	cancel context.CancelFunc
	done   chan struct{}
}

// NewRouter builds the router and starts its probe loop.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one backend")
	}
	r := &Router{
		cfg:    cfg,
		jitter: prng.New(prng.Hash(cfg.Seed, 0x726f75746572)),
		done:   make(chan struct{}),
	}
	for _, u := range cfg.Backends {
		r.backends = append(r.backends, &backend{
			url:     strings.TrimRight(u, "/"),
			breaker: retry.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		})
	}
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	go r.probeLoop(ctx)
	return r, nil
}

// Close stops the probe loop.
func (r *Router) Close() {
	r.cancel()
	<-r.done
}

func (r *Router) drawJitter() float64 {
	r.jmu.Lock()
	defer r.jmu.Unlock()
	return r.jitter.Float64()
}

// routerJitter adapts drawJitter to the retry policy's jitter source.
type routerJitter struct{ r *Router }

func (j routerJitter) Float64() float64 { return j.r.drawJitter() }

// ---- probing and failover ----

func (r *Router) probeLoop(ctx context.Context) {
	defer close(r.done)
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		r.probeAll(ctx)
		r.maybeFailover(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

func (r *Router) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range r.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			r.probe(ctx, b)
		}(b)
	}
	wg.Wait()
	if obs.On() {
		n := 0
		for _, b := range r.backends {
			if h, rd, _, _ := b.snapshot(); h && rd {
				n++
			}
		}
		gHealthy.Set(int64(n))
	}
}

func (r *Router) probe(ctx context.Context, b *backend) {
	if obs.On() {
		cProbes.Inc()
	}
	pctx, cancel := context.WithTimeout(ctx, r.cfg.ProbeInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.url+"/v1/repl/status", nil)
	if err != nil {
		return
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		b.mu.Lock()
		b.healthy = false
		b.downFor++
		b.mu.Unlock()
		return
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	var st StatusJSON
	if resp.StatusCode != http.StatusOK || json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st) != nil {
		b.mu.Lock()
		b.healthy = false
		b.downFor++
		b.mu.Unlock()
		return
	}
	if r.cfg.Partition != "" && st.Partition != r.cfg.Partition {
		obs.Warnf("router partition mismatch", "backend", b.url, "want", r.cfg.Partition, "got", st.Partition)
		b.mu.Lock()
		b.healthy = false
		b.downFor++
		b.lastSeen = st
		b.mu.Unlock()
		return
	}
	b.mu.Lock()
	b.healthy = true
	b.downFor = 0
	b.ready = st.Ready
	b.role = st.Role
	b.applied = st.AppliedSeq
	b.lastSeen = st
	b.mu.Unlock()
}

// maybeFailover promotes the most-caught-up follower when the primary
// has been unreachable for FailoverAfter consecutive probes and no
// healthy backend claims the primary role.
func (r *Router) maybeFailover(ctx context.Context) {
	var deadPrimary *backend
	var candidate *backend
	var candidateApplied uint64
	for _, b := range r.backends {
		b.mu.Lock()
		healthy, role, applied, downFor := b.healthy, b.role, b.applied, b.downFor
		b.mu.Unlock()
		if healthy && role == "primary" {
			return // a live primary exists; nothing to do
		}
		if !healthy && role == "primary" && downFor >= r.cfg.FailoverAfter {
			deadPrimary = b
		}
		if healthy && role == "follower" && (candidate == nil || applied > candidateApplied) {
			candidate = b
			candidateApplied = applied
		}
	}
	if deadPrimary == nil || candidate == nil {
		return
	}
	obs.Warnf("router failover", "dead", deadPrimary.url, "promoting", candidate.url, "applied", candidateApplied)
	pctx, cancel := context.WithTimeout(ctx, r.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodPost, candidate.url+"/v1/repl/promote", nil)
	if err != nil {
		return
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		obs.Errorf("router promote failed", "backend", candidate.url, "err", err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		obs.Errorf("router promote refused", "backend", candidate.url, "status", resp.Status)
		return
	}
	if obs.On() {
		cFailovers.Inc()
	}
	// The dead primary's role record is stale now; forget it so a second
	// failover can trigger if the new primary also dies.
	deadPrimary.mu.Lock()
	deadPrimary.role = "dead"
	deadPrimary.mu.Unlock()
	candidate.mu.Lock()
	candidate.role = "primary"
	candidate.mu.Unlock()
	// Re-point the surviving followers at the new primary. Best-effort:
	// a follower that misses this keeps retrying its dead upstream until
	// the next probe cycle repeats the re-point.
	body, _ := json.Marshal(followRequestJSON{Primary: candidate.url})
	for _, b := range r.backends {
		if b == candidate || b == deadPrimary {
			continue
		}
		if healthy, _, role, _ := b.snapshot(); !healthy || role != "follower" {
			continue
		}
		fctx, fcancel := context.WithTimeout(ctx, r.cfg.RequestTimeout)
		freq, ferr := http.NewRequestWithContext(fctx, http.MethodPost, b.url+"/v1/repl/follow", bytes.NewReader(body))
		if ferr == nil {
			freq.Header.Set("Content-Type", "application/json")
			if fresp, derr := r.cfg.Client.Do(freq); derr == nil {
				io.Copy(io.Discard, fresp.Body)
				fresp.Body.Close()
			}
		}
		fcancel()
	}
}

// BackendStatus is the router's current view of one backend, exported
// for /v1/cluster/topology.
type BackendStatus struct {
	URL        string `json:"url"`
	Healthy    bool   `json:"healthy"`
	Ready      bool   `json:"ready"`
	Role       string `json:"role,omitempty"`
	AppliedSeq uint64 `json:"applied_seq"`
	Breaker    string `json:"breaker"`
	BreakerOps int64  `json:"breaker_opens"`
}

// Status snapshots every backend's probed state.
func (r *Router) Status() []BackendStatus {
	out := make([]BackendStatus, 0, len(r.backends))
	for _, b := range r.backends {
		b.mu.Lock()
		s := BackendStatus{
			URL: b.url, Healthy: b.healthy, Ready: b.ready,
			Role: b.role, AppliedSeq: b.applied,
		}
		b.mu.Unlock()
		s.Breaker = b.breaker.State().String()
		s.BreakerOps = b.breaker.Opens()
		out = append(out, s)
	}
	return out
}

// Primary returns the URL of the backend currently believed primary
// ("" when none).
func (r *Router) Primary() string {
	for _, b := range r.backends {
		if healthy, _, role, _ := b.snapshot(); healthy && role == "primary" {
			return b.url
		}
	}
	return ""
}

// ---- request proxying ----

// isMutation reports whether the request must go to the primary.
func isMutation(req *http.Request) bool {
	switch {
	case req.Method == http.MethodPost && req.URL.Path == "/v1/enroll",
		req.Method == http.MethodPost && req.URL.Path == "/v1/db",
		req.Method == http.MethodDelete && req.URL.Path == "/v1/db",
		req.Method == http.MethodPost && req.URL.Path == "/v1/snapshot",
		req.Method == http.MethodPost && req.URL.Path == "/v1/characterize":
		return true
	}
	return false
}

// Handler returns the router's proxy handler: mutations to the primary,
// reads spread across healthy ready replicas, with budgeted retries and
// per-backend circuit breaking.
func (r *Router) Handler() http.Handler {
	return http.HandlerFunc(r.serve)
}

func (r *Router) serve(w http.ResponseWriter, req *http.Request) {
	t0 := time.Now()
	code := r.proxy(w, req)
	if obs.On() {
		redRouter.Observe(time.Since(t0).Nanoseconds(), code >= 500)
	}
}

// pickRead returns the next healthy, ready backend whose breaker
// admits a request, round-robin; the primary serves reads too. Allow is
// consulted only for backends actually selected — a half-open breaker's
// single probe admission must not be burned on a backend we skip.
func (r *Router) pickRead() *backend {
	n := len(r.backends)
	start := int(r.rr.Add(1)) % n
	for i := 0; i < n; i++ {
		b := r.backends[(start+i)%n]
		if healthy, ready, _, _ := b.snapshot(); healthy && ready && b.breaker.Allow() {
			return b
		}
	}
	return nil
}

func (r *Router) primaryBackend() *backend {
	for _, b := range r.backends {
		if healthy, _, role, _ := b.snapshot(); healthy && role == "primary" {
			return b
		}
	}
	return nil
}

// proxy forwards the request, retrying per the routing discipline, and
// returns the status code written to the client.
func (r *Router) proxy(w http.ResponseWriter, req *http.Request) int {
	body, err := io.ReadAll(io.LimitReader(req.Body, DefaultMaxForwardBody+1))
	if err != nil {
		return fail(w, http.StatusBadRequest, "reading request body: "+err.Error())
	}
	if len(body) > DefaultMaxForwardBody {
		return fail(w, http.StatusRequestEntityTooLarge, "request body too large")
	}
	res, err := r.forward(req.Context(), req.Method, req.URL.RequestURI(), req.Header, body, isMutation(req))
	if err != nil {
		if res.Status != 0 {
			return fail(w, res.Status, "all backends failed")
		}
		if obs.On() {
			cRouterNoBack.Inc()
		}
		return fail(w, http.StatusServiceUnavailable, err.Error())
	}
	return respond(w, res.Status, res.Header, res.Body)
}

// ForwardResult is one definitive backend response relayed by Forward.
type ForwardResult struct {
	Status int
	Header http.Header
	Body   []byte
}

// Forward sends one request through the router's full routing discipline
// — backend selection, budgeted retries, per-backend breakers — without
// an http.ResponseWriter, so a scatter-gather coordinator can fan the
// same request across many partition routers and merge the bodies.
//
// A nil error means some backend produced a definitive response (any
// status, including 4xx/5xx relayed to the client). A non-nil error
// means no backend did: Status carries the last retryable 5xx seen
// (0 when every attempt failed in transport or no backend was eligible).
func (r *Router) Forward(ctx context.Context, method, uri string, header http.Header, body []byte, mutation bool) (ForwardResult, error) {
	return r.forward(ctx, method, uri, header, body, mutation)
}

func (r *Router) forward(ctx context.Context, method, uri string, header http.Header, body []byte, mutation bool) (ForwardResult, error) {
	maxAttempts := r.cfg.Retry.MaxAttempts
	if maxAttempts <= 0 {
		if mutation {
			maxAttempts = DefaultWriteAttempts
		} else {
			maxAttempts = DefaultReadAttempts
		}
	}
	r.cfg.Budget.Observe()

	var lastErr error
	lastStatus := 0
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		if attempt > 1 {
			if !r.cfg.Budget.Allow() {
				break
			}
			if obs.On() {
				cRouterRetry.Inc()
			}
			delay := r.cfg.Retry.Delay(attempt-1, routerJitter{r})
			select {
			case <-ctx.Done():
				return ForwardResult{}, fmt.Errorf("client gone")
			case <-time.After(delay):
			}
		}
		var b *backend
		if mutation {
			b = r.primaryBackend()
		} else {
			b = r.pickRead()
		}
		if b == nil {
			lastErr = fmt.Errorf("no eligible backend")
			continue
		}
		status, hdr, respBody, aerr := r.attempt(ctx, method, uri, header, b, body)
		switch {
		case aerr != nil:
			// Transport error: the request may not have reached the
			// backend. Reads always retry; mutations retry too — enrollment
			// is at-least-once safe and everything else is idempotent.
			b.breaker.Report(false)
			lastErr = aerr
			continue
		case status >= 500:
			b.breaker.Report(false)
			lastStatus, lastErr = status, nil
			// 503 from a follower that lost the primary (not-primary
			// rejection) or a warming node: try another backend / wait for
			// failover. Other 5xx retry on reads only.
			if mutation && status != http.StatusServiceUnavailable {
				return ForwardResult{Status: status, Header: hdr, Body: respBody}, nil
			}
			continue
		default:
			b.breaker.Report(true)
			return ForwardResult{Status: status, Header: hdr, Body: respBody}, nil
		}
	}
	if lastStatus != 0 {
		return ForwardResult{Status: lastStatus}, fmt.Errorf("all backends failed (last status %d)", lastStatus)
	}
	msg := "no backend available"
	if lastErr != nil {
		msg = "no backend available: " + lastErr.Error()
	}
	return ForwardResult{}, fmt.Errorf("%s", msg)
}

// attempt forwards one request to one backend.
func (r *Router) attempt(ctx context.Context, method, uri string, header http.Header, b *backend, body []byte) (int, http.Header, []byte, error) {
	actx, cancel := context.WithTimeout(ctx, r.cfg.RequestTimeout)
	defer cancel()
	out, err := http.NewRequestWithContext(actx, method, b.url+uri, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	out.Header = header.Clone()
	resp, err := r.cfg.Client.Do(out)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, DefaultMaxForwardBody))
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, respBody, nil
}

func respond(w http.ResponseWriter, status int, hdr http.Header, body []byte) int {
	for _, k := range []string{"Content-Type", "Retry-After"} {
		if v := hdr.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(status)
	w.Write(body)
	return status
}

func fail(w http.ResponseWriter, status int, msg string) int {
	blob, _ := json.Marshal(errorJSON{Error: msg})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(blob, '\n'))
	return status
}
