package cluster

// Scatter-gather coordinator tests: keyed routing, merge behavior over
// empty and degenerate topologies, partial-result refusal when a
// partition is down, failover inside one partition, the topology
// endpoint, and the partition handshake rejecting misconfigured nodes.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"probablecause/internal/server"
)

// jsonBody marshals v into a request-body reader.
func jsonBody(t *testing.T, v any) *bytes.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

// scatterRouterConfig is the per-partition router template used across
// these tests: fast probes, failover after 3 missed probes.
func scatterRouterConfig() RouterConfig {
	return RouterConfig{
		ProbeInterval:  10 * time.Millisecond,
		RequestTimeout: 2 * time.Second,
		FailoverAfter:  3,
	}
}

// partitionScoped returns a server-config hook scoping a node to
// partition ord of pmap.
func partitionScoped(pmap *PartitionMap, ord int) func(*server.Config) {
	return func(c *server.Config) {
		c.Partition = server.PartitionConfig{
			Name: pmap.Partition(ord).Name,
			NS:   pmap.Namespace(ord),
			Owns: pmap.OwnsFunc(ord),
		}
	}
}

// startScatter serves a ScatterRouter over the given partition specs.
func startScatter(t *testing.T, rc RouterConfig, specs []PartitionSpec) (*ScatterRouter, string, func()) {
	t.Helper()
	m, err := NewPartitionMap(specs)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := NewScatterRouter(ScatterConfig{Map: m, Router: rc})
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: sr.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return sr, "http://" + ln.Addr().String(), func() {
		srv.Close()
		sr.Close()
	}
}

// waitScatterReady blocks until the coordinator reports every partition
// servable.
func waitScatterReady(t *testing.T, client *http.Client, url string) {
	t.Helper()
	waitFor(t, 5*time.Second, "scatter readyz", func() bool {
		resp, err := client.Get(url + "/readyz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
}

// devicesOwnedBy picks the first n synthetic device indices whose names
// hash to partition want.
func devicesOwnedBy(pmap *PartitionMap, want, n int) []int {
	var out []int
	for i := 0; len(out) < n; i++ {
		if pmap.Owner(fmt.Sprintf("dev-%d", i)) == want {
			out = append(out, i)
		}
	}
	return out
}

// startPartitionPrimary boots a partition-scoped primary for pmap's
// partition ord.
func startPartitionPrimary(t *testing.T, pmap *PartitionMap, ord, minISR int) *testNode {
	t.Helper()
	name := pmap.Partition(ord).Name
	n := startNode(t, name+"-primary", t.TempDir(), nodeOptions{minISR: minISR, cfg: partitionScoped(pmap, ord)})
	n.node.StartPrimary()
	return n
}

// twoPartitionSpecs is the standard 2×1 topology: one scoped primary per
// partition.
func twoPartitionSpecs(t *testing.T) (*PartitionMap, []PartitionSpec, []*testNode) {
	t.Helper()
	pmap := mapFromSpec(t, "p0=http://placeholder,p1=http://placeholder")
	n0 := startPartitionPrimary(t, pmap, 0, 0)
	n1 := startPartitionPrimary(t, pmap, 1, 0)
	specs := []PartitionSpec{
		{Name: "p0", Backends: []string{n0.url()}},
		{Name: "p1", Backends: []string{n1.url()}},
	}
	return pmap, specs, []*testNode{n0, n1}
}

func TestScatterKeyedRoutingAndMergedIdentify(t *testing.T) {
	pmap, specs, nodes := twoPartitionSpecs(t)
	defer nodes[0].close()
	defer nodes[1].close()
	_, url, stop := startScatter(t, scatterRouterConfig(), specs)
	defer stop()

	client := &http.Client{Timeout: 5 * time.Second}
	waitScatterReady(t, client, url)

	// Enroll two devices per partition through the coordinator; each must
	// land on (exactly) its owning partition's primary.
	devs := append(devicesOwnedBy(pmap, 0, 2), devicesOwnedBy(pmap, 1, 2)...)
	for _, i := range devs {
		states := enrollDevice(t, client, url, i)
		last := states[len(states)-1]
		if !last.Promoted {
			t.Fatalf("dev-%d not promoted through scatter router", i)
		}
		owner := pmap.Owner(fmt.Sprintf("dev-%d", i))
		if want := pmap.Namespace(owner); last.EntryID%want.Stride != want.Base {
			t.Fatalf("dev-%d acked EntryID %d outside partition %d namespace", i, last.EntryID, owner)
		}
		// The enroll-status scatter finds the session wherever it lives.
		resp, err := client.Get(url + fmt.Sprintf("/v1/enroll/sess-%d/status", i))
		if err != nil {
			t.Fatal(err)
		}
		var st server.EnrollState
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("enroll status for sess-%d: %d", i, resp.StatusCode)
		}
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st.EntryID != last.EntryID {
			t.Fatalf("scattered status EntryID %d, acked %d", st.EntryID, last.EntryID)
		}
	}
	for _, i := range devs {
		owner := pmap.Owner(fmt.Sprintf("dev-%d", i))
		for ord, n := range nodes {
			_, present := n.svc.DB().Get(fmt.Sprintf("dev-%d", i))
			if present != (ord == owner) {
				t.Fatalf("dev-%d on partition %d: present=%v, owner=%d", i, ord, present, owner)
			}
		}
	}

	// Identify through the coordinator resolves devices from both
	// partitions, with globally-namespaced ids.
	for _, i := range devs {
		resp, err := client.Post(url+"/v1/identify", "application/json",
			jsonBody(t, map[string]any{"len": obsBits, "positions": deviceObs(obsBits, i, 9).Positions()}))
		if err != nil {
			t.Fatal(err)
		}
		var v server.VerdictJSON
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("identify dev-%d: %d", i, resp.StatusCode)
		}
		json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if !v.Match || v.Name != fmt.Sprintf("dev-%d", i) {
			t.Fatalf("identify dev-%d verdict %+v", i, v)
		}
		owner := pmap.Owner(v.Name)
		if ns := pmap.Namespace(owner); v.ID%ns.Stride != ns.Base {
			t.Fatalf("dev-%d merged id %d outside owner %d namespace", i, v.ID, owner)
		}
	}

	// Aggregated stats sum entries across partitions.
	resp, err := client.Get(url + "/v1/db")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Entries    int `json:"entries"`
		Partitions []struct {
			Name    string `json:"name"`
			Entries int    `json:"entries"`
		} `json:"partitions"`
	}
	json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if stats.Entries != len(devs) || len(stats.Partitions) != 2 {
		t.Fatalf("aggregated stats %+v, want %d entries over 2 partitions", stats, len(devs))
	}

	// Keyed delete lands on the owner too.
	victim := devs[0]
	req, _ := http.NewRequest(http.MethodDelete, url+fmt.Sprintf("/v1/db?name=dev-%d", victim), nil)
	dresp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("keyed delete: %d", dresp.StatusCode)
	}
	if _, present := nodes[pmap.Owner(fmt.Sprintf("dev-%d", victim))].svc.DB().Get(fmt.Sprintf("dev-%d", victim)); present {
		t.Fatalf("dev-%d still present after keyed delete", victim)
	}
}

// TestScatterEmptyPartitionMerges: a partition with an empty database
// contributes the empty-scan identity verdict and never corrupts the
// merge.
func TestScatterEmptyPartitionMerges(t *testing.T) {
	pmap, specs, nodes := twoPartitionSpecs(t)
	defer nodes[0].close()
	defer nodes[1].close()
	_, url, stop := startScatter(t, scatterRouterConfig(), specs)
	defer stop()

	client := &http.Client{Timeout: 5 * time.Second}
	waitScatterReady(t, client, url)

	// Fully empty cluster: identify answers no-match with the sentinel id.
	es := deviceObs(obsBits, 3, 0)
	resp, err := client.Post(url+"/v1/identify", "application/json",
		jsonBody(t, map[string]any{"len": es.Len(), "positions": es.Positions()}))
	if err != nil {
		t.Fatal(err)
	}
	var v server.VerdictJSON
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("identify on empty cluster: %d", resp.StatusCode)
	}
	json.NewDecoder(resp.Body).Decode(&v)
	resp.Body.Close()
	if v.Match || v.ID != -1 || v.Matches != 0 {
		t.Fatalf("empty-cluster verdict %+v, want no-match sentinel", v)
	}

	// Enroll only partition-0-owned devices, leaving partition 1 empty.
	for _, i := range devicesOwnedBy(pmap, 0, 3) {
		enrollDevice(t, client, url, i)
	}
	if n := nodes[1].svc.DB().Len(); n != 0 {
		t.Fatalf("partition 1 should be empty, has %d entries", n)
	}
	for _, i := range devicesOwnedBy(pmap, 0, 3) {
		es := deviceObs(obsBits, i, 9)
		resp, err := client.Post(url+"/v1/identify", "application/json",
			jsonBody(t, map[string]any{"len": es.Len(), "positions": es.Positions()}))
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if !v.Match || v.Name != fmt.Sprintf("dev-%d", i) {
			t.Fatalf("identify dev-%d with one empty partition: %+v", i, v)
		}
	}
}

// TestScatterSinglePartitionDegenerate: a 1-partition map is the
// identity topology — ids are unrenumbered and the coordinator adds no
// semantics over its one router.
func TestScatterSinglePartitionDegenerate(t *testing.T) {
	pmap := mapFromSpec(t, "solo=http://placeholder")
	if ns := pmap.Namespace(0); !ns.Identity() {
		t.Fatalf("single-partition namespace %+v is not identity", ns)
	}
	n := startPartitionPrimary(t, pmap, 0, 0)
	defer n.close()
	_, url, stop := startScatter(t, scatterRouterConfig(), []PartitionSpec{{Name: "solo", Backends: []string{n.url()}}})
	defer stop()

	client := &http.Client{Timeout: 5 * time.Second}
	waitScatterReady(t, client, url)
	for i := 0; i < 3; i++ {
		enrollDevice(t, client, url, i)
	}
	for i := 0; i < 3; i++ {
		es := deviceObs(obsBits, i, 9)
		resp, err := client.Post(url+"/v1/identify", "application/json",
			jsonBody(t, map[string]any{"len": es.Len(), "positions": es.Positions()}))
		if err != nil {
			t.Fatal(err)
		}
		var v server.VerdictJSON
		json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		want := n.svc.DB().Decide(es)
		if !v.Match || v.Name != want.Name || v.ID != want.Index || v.Distance != want.Distance {
			t.Fatalf("degenerate scatter verdict %+v diverged from node %+v", v, want)
		}
	}
}

// TestScatterRefusesPartialResults: with one partition dark the
// coordinator 503s identify (naming the partition) instead of serving a
// partial merge, turns unready, and keeps keyed traffic to the healthy
// partition flowing.
func TestScatterRefusesPartialResults(t *testing.T) {
	pmap, specs, nodes := twoPartitionSpecs(t)
	defer nodes[0].close()
	_, url, stop := startScatter(t, scatterRouterConfig(), specs)
	defer stop()

	client := &http.Client{Timeout: 10 * time.Second}
	waitScatterReady(t, client, url)
	for _, i := range devicesOwnedBy(pmap, 0, 2) {
		enrollDevice(t, client, url, i)
	}

	nodes[1].kill()
	// The probe loop needs a few intervals to mark p1 down.
	waitFor(t, 5*time.Second, "p1 marked unready", func() bool {
		resp, err := client.Get(url + "/readyz")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})

	es := deviceObs(obsBits, devicesOwnedBy(pmap, 0, 1)[0], 9)
	resp, err := client.Post(url+"/v1/identify", "application/json",
		jsonBody(t, map[string]any{"len": es.Len(), "positions": es.Positions()}))
	if err != nil {
		t.Fatal(err)
	}
	var e struct {
		Error string `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("identify with dark partition: %d, want 503", resp.StatusCode)
	}
	if e.Error == "" || !strings.Contains(e.Error, "p1") {
		t.Fatalf("refusal should name partition p1: %q", e.Error)
	}

	// Keyed enroll to the surviving partition still works.
	i := devicesOwnedBy(pmap, 0, 3)[2]
	states := enrollDevice(t, client, url, i)
	if !states[len(states)-1].Promoted {
		t.Fatalf("keyed enroll to healthy partition failed with p1 dark")
	}
}

// TestScatterFailoverWithinPartition: killing one partition's primary
// promotes its follower and the coordinator resumes both scattered reads
// and keyed writes to that partition.
func TestScatterFailoverWithinPartition(t *testing.T) {
	pmap := mapFromSpec(t, "p0=http://placeholder,p1=http://placeholder")
	p0 := startPartitionPrimary(t, pmap, 0, 1)
	f0 := startNode(t, "p0-follower", t.TempDir(), nodeOptions{
		pull: PullConfig{Interval: 5 * time.Millisecond},
		cfg:  partitionScoped(pmap, 0),
	})
	if err := f0.node.StartFollower(p0.url()); err != nil {
		t.Fatal(err)
	}
	defer f0.close()
	p1 := startPartitionPrimary(t, pmap, 1, 0)
	defer p1.close()

	sr, url, stop := startScatter(t, scatterRouterConfig(), []PartitionSpec{
		{Name: "p0", Backends: []string{p0.url(), f0.url()}},
		{Name: "p1", Backends: []string{p1.url()}},
	})
	defer stop()

	client := &http.Client{Timeout: 10 * time.Second}
	waitScatterReady(t, client, url)
	devs := append(devicesOwnedBy(pmap, 0, 2), devicesOwnedBy(pmap, 1, 1)...)
	for _, i := range devs {
		enrollDevice(t, client, url, i)
	}
	waitFor(t, 5*time.Second, "follower catch-up", func() bool {
		return f0.svc.AppliedSeq() >= p0.svc.AppliedSeq()
	})

	p0.kill()
	waitFor(t, 10*time.Second, "p0 failover to follower", func() bool {
		return sr.PartitionRouter(0).Primary() == f0.url()
	})

	// Scattered identify works again after the promotion.
	for _, i := range devs {
		es := deviceObs(obsBits, i, 9)
		resp, err := client.Post(url+"/v1/identify", "application/json",
			jsonBody(t, map[string]any{"len": es.Len(), "positions": es.Positions()}))
		if err != nil {
			t.Fatal(err)
		}
		var v server.VerdictJSON
		json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !v.Match || v.Name != fmt.Sprintf("dev-%d", i) {
			t.Fatalf("post-failover identify dev-%d: %d %+v", i, resp.StatusCode, v)
		}
	}

	// Keyed enroll to the promoted primary works.
	i := devicesOwnedBy(pmap, 0, 3)[2]
	states := enrollDevice(t, client, url, i)
	if !states[len(states)-1].Promoted {
		t.Fatal("post-failover keyed enroll did not promote")
	}
}

func TestScatterTopologyEndpoint(t *testing.T) {
	_, specs, nodes := twoPartitionSpecs(t)
	defer nodes[0].close()
	defer nodes[1].close()
	_, url, stop := startScatter(t, scatterRouterConfig(), specs)
	defer stop()

	client := &http.Client{Timeout: 5 * time.Second}
	waitScatterReady(t, client, url)
	resp, err := client.Get(url + "/v1/cluster/topology")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var topo struct {
		KeyHash    string `json:"key_hash"`
		VNodes     int    `json:"vnodes_per_partition"`
		Partitions []struct {
			Name     string `json:"name"`
			Ordinal  int    `json:"ordinal"`
			IDBase   int    `json:"id_base"`
			IDStride int    `json:"id_stride"`
			Primary  string `json:"primary"`
			Backends []struct {
				URL     string `json:"url"`
				Healthy bool   `json:"healthy"`
				Role    string `json:"role"`
				Breaker string `json:"breaker"`
			} `json:"backends"`
		} `json:"partitions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&topo); err != nil {
		t.Fatal(err)
	}
	if topo.KeyHash != "mix64(fnv1a-64(name))" || topo.VNodes != vnodesPerPartition || len(topo.Partitions) != 2 {
		t.Fatalf("topology header %+v", topo)
	}
	for ord, p := range topo.Partitions {
		if p.Ordinal != ord || p.IDBase != ord || p.IDStride != 2 {
			t.Fatalf("partition %d topology %+v", ord, p)
		}
		if p.Primary != nodes[ord].url() {
			t.Fatalf("partition %d primary %q, want %q", ord, p.Primary, nodes[ord].url())
		}
		if len(p.Backends) != 1 || !p.Backends[0].Healthy || p.Backends[0].Role != "primary" || p.Backends[0].Breaker == "" {
			t.Fatalf("partition %d backends %+v", ord, p.Backends)
		}
	}
}

// TestScatterPartitionHandshake: a node scoped to partition p1 but
// listed under p0 must be quarantined by the probe handshake — the
// coordinator stays unready for p0 rather than serving foreign ids.
func TestScatterPartitionHandshake(t *testing.T) {
	pmap := mapFromSpec(t, "p0=http://placeholder,p1=http://placeholder")
	wrong := startPartitionPrimary(t, pmap, 1, 0) // claims p1
	defer wrong.close()
	right := startPartitionPrimary(t, pmap, 1, 0)
	defer right.close()

	_, url, stop := startScatter(t, scatterRouterConfig(), []PartitionSpec{
		{Name: "p0", Backends: []string{wrong.url()}}, // misconfigured
		{Name: "p1", Backends: []string{right.url()}},
	})
	defer stop()

	client := &http.Client{Timeout: 5 * time.Second}
	// The handshake must keep p0 unready even though its backend is a
	// live, healthy primary — it belongs to the wrong partition.
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		resp, err := client.Get(url + "/readyz")
		if err == nil {
			var body struct {
				Ready      bool `json:"ready"`
				Partitions []struct {
					Name  string `json:"name"`
					Ready bool   `json:"ready"`
				} `json:"partitions"`
			}
			json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if body.Ready {
				t.Fatalf("coordinator became ready with a misdirected p0 backend: %+v", body)
			}
			for _, p := range body.Partitions {
				if p.Name == "p0" && p.Ready {
					t.Fatalf("p0 reported ready through a p1-scoped node")
				}
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
}
