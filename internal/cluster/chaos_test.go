package cluster

// Chaos acceptance tests for replicated mode, run with -race in CI:
//
//   - TestClusterFailoverLosesNoAckedEnrollment: 1 primary + 2 followers
//     (MinISR=1) + router, with the replication transport under a fault
//     plan (injected RPC failures, dropped and duplicated frames). The
//     primary is killed mid-traffic; after the router promotes the
//     most-caught-up follower, every enrollment the cluster ever acked
//     must be present in the new primary's WAL with the exact payload
//     the client sent, and the new primary's database must be
//     byte-identical to a serial single-node oracle folding the same
//     record sequence — so identify verdicts cannot diverge.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"probablecause/internal/faults"
	"probablecause/internal/retry"
	"probablecause/internal/server"
	"probablecause/internal/wal"
)

// ackedEnroll is one client-acknowledged observation: the WAL sequence
// the ack reported and the request that earned it.
type ackedEnroll struct {
	seq       uint64
	session   string
	name      string
	length    int
	positions []uint32
}

func TestClusterFailoverLosesNoAckedEnrollment(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	primary := startPrimary(t, 1)
	// No deferred close: the primary is killed mid-test.

	// Replication runs over a deliberately hostile transport: injected
	// RPC failures plus dropped and duplicated frames, deterministic in
	// the seed.
	followerPull := func(seed uint64) PullConfig {
		inj := faults.NewInjector(faults.Plan{Seed: seed, RPC: 0.05, FrameDrop: 0.05, FrameDup: 0.10})
		return PullConfig{
			Interval: 2 * time.Millisecond,
			Client:   &http.Client{Transport: inj.RoundTripper(nil), Timeout: 2 * time.Second},
			Injector: inj,
			Retry:    retry.Policy{BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
		}
	}
	f1 := startFollower(t, "f1", primary, followerPull(1))
	defer f1.close()
	f2 := startFollower(t, "f2", primary, followerPull(2))
	defer f2.close()

	router, rurl, stop := startRouter(t, RouterConfig{
		ProbeInterval:  10 * time.Millisecond,
		RequestTimeout: time.Second,
		FailoverAfter:  3,
		Retry:          retry.Policy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
		Budget:         retry.NewBudget(0.5, 50),
	}, primary, f1, f2)
	defer stop()
	waitFor(t, 5*time.Second, "router sees primary", func() bool { return router.Primary() == primary.url() })

	// Concurrent clients enroll device streams through the router,
	// recording every acked observation. Each observation retries until
	// acked — at-least-once, like a real client — so the ack set is
	// exactly what the cluster promised to keep.
	const clients = 3
	const devicesPerClient = 4
	var (
		mu    sync.Mutex
		acked []ackedEnroll
	)
	var wg sync.WaitGroup
	killed := make(chan struct{})
	enrollOne := func(client *http.Client, dev, trial int) {
		session := fmt.Sprintf("sess-%d", dev)
		name := fmt.Sprintf("dev-%d", dev)
		es := deviceObs(obsBits, dev, trial)
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			st, code := enrollHTTP(t, client, rurl, session, name, es)
			if code == http.StatusOK {
				mu.Lock()
				acked = append(acked, ackedEnroll{
					seq: st.Seq, session: session, name: name,
					length: es.Len(), positions: es.Positions(),
				})
				mu.Unlock()
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Errorf("dev-%d trial %d never acked", dev, trial)
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 2 * time.Second}
			for d := 0; d < devicesPerClient; d++ {
				dev := c*100 + d
				for trial := 0; trial < 4; trial++ {
					enrollOne(client, dev, trial)
				}
				if d == devicesPerClient/2 {
					// Half-way through, wait for the kill so every client
					// drives traffic across the failover.
					<-killed
				}
			}
		}(c)
	}

	// Let traffic build, then kill the primary abruptly: connections
	// die, no checkpoint, no goodbye.
	time.Sleep(150 * time.Millisecond)
	preKillAcked := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(acked)
	}()
	primary.kill()
	close(killed)

	waitFor(t, 10*time.Second, "failover to a follower", func() bool {
		p := router.Primary()
		return p == f1.url() || p == f2.url()
	})
	wg.Wait()
	if t.Failed() {
		return
	}

	var newPrimary, survivor *testNode
	if router.Primary() == f1.url() {
		newPrimary, survivor = f1, f2
	} else {
		newPrimary, survivor = f2, f1
	}
	t.Logf("acked %d observations before the kill, %d total; promoted %s",
		preKillAcked, len(acked), newPrimary.id)
	if preKillAcked == 0 {
		t.Fatal("no traffic acked before the kill; test proved nothing")
	}

	// Quiesce: the surviving follower catches up to the new primary.
	want := newPrimary.svc.AppliedSeq()
	waitFor(t, 10*time.Second, "survivor catch-up", func() bool {
		return survivor.svc.AppliedSeq() >= want
	})

	// (1) Acked ⊆ replayed: every acked observation is in the new
	// primary's WAL at its acked sequence, payload byte-for-byte what the
	// client sent.
	applied := newPrimary.svc.AppliedSeq()
	walRecords := make(map[uint64][]byte)
	err := newPrimary.svc.WAL().ReadRange(newPrimary.svc.WAL().FirstSeq(), applied, func(seq uint64, payload []byte) error {
		walRecords[seq] = append([]byte(nil), payload...)
		return nil
	})
	if err != nil {
		t.Fatalf("reading new primary WAL: %v", err)
	}
	for _, a := range acked {
		if a.seq > applied {
			t.Fatalf("acked seq %d (session %s) beyond new primary applied %d — acked enrollment lost",
				a.seq, a.session, applied)
		}
		payload, ok := walRecords[a.seq]
		if !ok {
			t.Fatalf("acked seq %d missing from new primary WAL", a.seq)
		}
		var rec struct {
			Session   string   `json:"session"`
			Name      string   `json:"name"`
			Len       int      `json:"len"`
			Positions []uint32 `json:"positions"`
		}
		if err := json.Unmarshal(payload, &rec); err != nil {
			t.Fatalf("acked seq %d payload undecodable: %v", a.seq, err)
		}
		if rec.Session != a.session || rec.Name != a.name || rec.Len != a.length ||
			fmt.Sprint(rec.Positions) != fmt.Sprint(a.positions) {
			t.Fatalf("acked seq %d holds %+v, client sent %+v", a.seq, rec, a)
		}
	}

	// (2) Byte-identical to the serial oracle: a fresh single-node
	// service folding the same record sequence arrives at the same
	// database, so identify verdicts cannot diverge.
	oracle, err := server.BootDurable(nil, server.Config{}, server.EnrollConfig{
		Dir:         t.TempDir(),
		Accumulator: fastAcc,
		WAL:         wal.Options{Fsync: wal.FsyncNone},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	for seq := newPrimary.svc.WAL().FirstSeq(); seq <= applied; seq++ {
		payload, ok := walRecords[seq]
		if !ok {
			t.Fatalf("new primary WAL has a hole at seq %d", seq)
		}
		if _, err := oracle.ApplyReplicated(seq, payload); err != nil {
			t.Fatalf("oracle apply seq %d: %v", seq, err)
		}
	}
	if ob, nb := exportBytes(t, oracle), exportBytes(t, newPrimary.svc); !bytes.Equal(ob, nb) {
		t.Fatalf("new primary database diverged from serial oracle (%d vs %d bytes)", len(nb), len(ob))
	}
	if sb := exportBytes(t, survivor.svc); !bytes.Equal(sb, exportBytes(t, newPrimary.svc)) {
		t.Fatal("survivor database diverged from new primary")
	}

	// (3) Verdicts through the router match the oracle's on every
	// enrolled device.
	client := &http.Client{Timeout: 5 * time.Second}
	for c := 0; c < clients; c++ {
		for d := 0; d < devicesPerClient; d++ {
			dev := c*100 + d
			es := deviceObs(obsBits, dev, 9)
			ov := oracle.DB().Decide(es)
			code, name := identifyHTTP(t, client, rurl, es)
			if code != http.StatusOK {
				t.Fatalf("post-failover identify dev-%d: status %d", dev, code)
			}
			if ov.OK() && name != ov.Name {
				t.Fatalf("dev-%d verdict diverged: router %q, oracle %q", dev, name, ov.Name)
			}
		}
	}

	// (4) The cluster still accepts (gated) enrollments after failover:
	// the survivor re-pointed to the new primary and acks its stream.
	st, code := enrollHTTP(t, client, rurl, "post-failover", "dev-post", deviceObs(obsBits, 300, 0))
	if code != http.StatusOK {
		t.Fatalf("post-failover enroll: status %d", code)
	}
	waitFor(t, 5*time.Second, "survivor applies post-failover enroll", func() bool {
		return survivor.svc.AppliedSeq() >= st.Seq
	})
}
