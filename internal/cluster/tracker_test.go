package cluster

import (
	"context"
	"testing"
	"time"
)

func TestTrackerCommitIsKthHighest(t *testing.T) {
	tr := NewTracker(2)
	if got := tr.CommitSeq(); got != 0 {
		t.Fatalf("fresh tracker commit = %d", got)
	}
	tr.Observe("a", 10)
	if got := tr.CommitSeq(); got != 0 {
		t.Fatalf("commit with 1/2 followers = %d, want 0", got)
	}
	tr.Observe("b", 7)
	if got := tr.CommitSeq(); got != 7 {
		t.Fatalf("commit = %d, want 7 (2nd highest of {10,7})", got)
	}
	tr.Observe("c", 9)
	if got := tr.CommitSeq(); got != 9 {
		t.Fatalf("commit = %d, want 9 (2nd highest of {10,9,7})", got)
	}
	// Stale (lower) reports are ignored; commit never regresses.
	tr.Observe("a", 3)
	if got := tr.CommitSeq(); got != 9 {
		t.Fatalf("commit after stale report = %d, want 9", got)
	}
}

func TestTrackerWaitCommitted(t *testing.T) {
	tr := NewTracker(1)
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- tr.WaitCommitted(ctx, 5)
	}()
	select {
	case err := <-done:
		t.Fatalf("wait returned %v before any follower ack", err)
	case <-time.After(20 * time.Millisecond):
	}
	tr.Observe("f1", 4)
	select {
	case err := <-done:
		t.Fatalf("wait returned %v at commit 4 < 5", err)
	case <-time.After(20 * time.Millisecond):
	}
	tr.Observe("f1", 6)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("wait at commit 6 ≥ 5: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("wait did not release after commit passed seq")
	}
	// Already-committed seqs return immediately.
	if err := tr.WaitCommitted(context.Background(), 6); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerWaitCancelAndClose(t *testing.T) {
	tr := NewTracker(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := tr.WaitCommitted(ctx, 1); err == nil {
		t.Fatal("wait survived a dead context")
	}

	done := make(chan error, 1)
	go func() { done <- tr.WaitCommitted(context.Background(), 99) }()
	time.Sleep(10 * time.Millisecond)
	tr.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("close released waiter with nil error")
		}
	case <-time.After(time.Second):
		t.Fatal("close did not release waiter")
	}
	if err := tr.WaitCommitted(context.Background(), 1); err == nil {
		t.Fatal("closed tracker accepted a wait")
	}
}

func TestTrackerAsyncModeNeverBlocks(t *testing.T) {
	tr := NewTracker(0)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := tr.WaitCommitted(ctx, 1<<40); err != nil {
		t.Fatalf("async tracker blocked: %v", err)
	}
}

func TestTrackerForget(t *testing.T) {
	tr := NewTracker(1)
	tr.Observe("a", 10)
	tr.Forget("a")
	if got := tr.CommitSeq(); got != 10 {
		t.Fatalf("commit regressed to %d after forget", got)
	}
	if p := tr.Progress(); len(p) != 0 {
		t.Fatalf("progress after forget: %v", p)
	}
}
