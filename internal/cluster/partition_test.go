package cluster

// Partition-map unit tests: spec parsing, deterministic ownership,
// coverage/balance over the ring, and the minimal-movement property that
// makes adding a partition an incremental migration.

import (
	"fmt"
	"testing"
)

func mapFromSpec(t *testing.T, spec string) *PartitionMap {
	t.Helper()
	m, err := ParsePartitions(spec)
	if err != nil {
		t.Fatalf("parsing %q: %v", spec, err)
	}
	return m
}

func TestParsePartitions(t *testing.T) {
	m := mapFromSpec(t, "p0=http://a:1|http://b:2, p1=http://c:3")
	if m.Len() != 2 {
		t.Fatalf("got %d partitions, want 2", m.Len())
	}
	if got := m.Partition(0); got.Name != "p0" || len(got.Backends) != 2 || got.Backends[1] != "http://b:2" {
		t.Fatalf("partition 0 = %+v", got)
	}
	if got := m.Partition(1); got.Name != "p1" || len(got.Backends) != 1 {
		t.Fatalf("partition 1 = %+v", got)
	}
	if m.Ordinal("p1") != 1 || m.Ordinal("nope") != -1 {
		t.Fatal("Ordinal lookup wrong")
	}
}

func TestParsePartitionsErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"p0",                          // no '='
		"p0=",                         // empty backend
		"=http://a:1",                 // empty name
		"p0=http://a:1,",              // trailing empty entry
		"p0=http://a:1,p0=http://b:2", // duplicate name
		"p0=http://a:1||http://b:2",   // empty backend between pipes
	}
	for _, spec := range bad {
		if _, err := ParsePartitions(spec); err == nil {
			t.Errorf("ParsePartitions(%q) accepted a bad spec", spec)
		}
	}
}

func TestPartitionMapDeterministicOwnership(t *testing.T) {
	a := mapFromSpec(t, "p0=http://a:1,p1=http://b:2,p2=http://c:3")
	b := mapFromSpec(t, "p0=http://x:9,p1=http://y:8,p2=http://z:7")
	// Ownership depends on partition names only, never on backends — a
	// router and a serving node configured with different URLs for the
	// same partitions must agree on every key.
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("dev-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owner %d vs %d", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestPartitionMapCoverageAndBalance(t *testing.T) {
	m := mapFromSpec(t, "p0=http://a:1,p1=http://b:2,p2=http://c:3,p3=http://d:4")
	counts := make([]int, m.Len())
	const keys = 20000
	for i := 0; i < keys; i++ {
		p := m.Owner(fmt.Sprintf("dev-%d", i))
		if p < 0 || p >= m.Len() {
			t.Fatalf("key %d owned by out-of-range partition %d", i, p)
		}
		counts[p]++
	}
	// With 64 vnodes per partition the imbalance stays modest; the bound
	// here is loose on purpose (it guards against a broken ring, not
	// statistical drift).
	for p, c := range counts {
		frac := float64(c) / keys
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("partition %d owns %.1f%% of keys: %v", p, 100*frac, counts)
		}
	}
}

// TestPartitionMapSiblingNameDispersion pins the hash finalizer: device
// names differing only in a trailing character must still spread across
// partitions. Bare FNV-1a fails this — its weak trailing-byte avalanche
// parks whole "device-1".."device-N" families in a single vnode gap,
// which in production is a hot partition the balance test's random-ish
// dev-%d keys never notice.
func TestPartitionMapSiblingNameDispersion(t *testing.T) {
	m := mapFromSpec(t, "p0=http://a:1,p1=http://b:2")
	for _, family := range []string{"device%c", "host-%c", "fleet.node.%c"} {
		counts := make([]int, m.Len())
		for c := 'a'; c <= 'z'; c++ {
			counts[m.Owner(fmt.Sprintf(family, c))]++
		}
		// 26 two-sided coin flips: each side owning at least 4 is a loose
		// bound (p < 1e-3 per side under fair hashing), but bare FNV puts
		// all 26 on one side — the failure mode this test exists for.
		for p, n := range counts {
			if n < 4 {
				t.Fatalf("family %q: partition %d owns only %d of 26 sibling names: %v",
					family, p, n, counts)
			}
		}
	}
}

// TestPartitionMapMinimalMovement: growing the cluster from 3 to 4
// partitions must move roughly 1/4 of the keys (the new partition's
// share) — never reshuffle keys between the surviving partitions.
func TestPartitionMapMinimalMovement(t *testing.T) {
	old := mapFromSpec(t, "p0=http://a:1,p1=http://b:2,p2=http://c:3")
	grown := mapFromSpec(t, "p0=http://a:1,p1=http://b:2,p2=http://c:3,p3=http://d:4")
	const keys = 20000
	moved, movedElsewhere := 0, 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("dev-%d", i)
		was, now := old.Owner(key), grown.Owner(key)
		if was != now {
			moved++
			if grown.Partition(now).Name != "p3" {
				movedElsewhere++
			}
		}
	}
	if movedElsewhere > 0 {
		t.Fatalf("%d keys moved between surviving partitions (consistent hashing broken)", movedElsewhere)
	}
	frac := float64(moved) / keys
	if frac < 0.10 || frac > 0.45 {
		t.Fatalf("adding a partition moved %.1f%% of keys, expected ≈25%%", 100*frac)
	}
}

func TestPartitionMapNamespaces(t *testing.T) {
	m := mapFromSpec(t, "p0=http://a:1,p1=http://b:2")
	ns0, ns1 := m.Namespace(0), m.Namespace(1)
	if ns0.Base != 0 || ns0.Stride != 2 || ns1.Base != 1 || ns1.Stride != 2 {
		t.Fatalf("namespaces %+v %+v", ns0, ns1)
	}
	owns0, owns1 := m.OwnsFunc(0), m.OwnsFunc(1)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("dev-%d", i)
		if owns0(key) == owns1(key) {
			t.Fatalf("key %q owned by both or neither partition", key)
		}
	}
}
