// partition.go: the static partition map for scale-out cluster mode — a
// consistent-hash ring assigning the device-name key space to N primary
// shards, the partition-spec parser behind pcserved's -partitions flag,
// and the per-partition id namespaces that keep merged verdicts in one
// global id space. CLUSTER.md documents the operator-facing contract.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"probablecause/internal/fingerprint"
	"probablecause/internal/prng"
)

// vnodesPerPartition is the virtual-node count each partition contributes
// to the ring. 64 points per partition keeps the expected key imbalance
// between partitions under a few percent while the ring stays tiny.
const vnodesPerPartition = 64

// PartitionSpec names one partition and its replicated group's backends
// (primary + followers, in any order — roles are probed, not declared).
type PartitionSpec struct {
	Name     string
	Backends []string
}

// PartitionMap is the cluster's static partition assignment: an ordered
// list of partitions plus the consistent-hash ring over their names. Every
// router and every partitioned node is configured from the same spec
// string, so all of them derive identical ownership and id namespaces.
//
// The ring hashes partition *names* only — backends are routing detail.
// Renaming or reordering partitions changes ownership; adding a partition
// moves only the keys whose ring arcs the new partition's virtual nodes
// capture (≈ 1/N of the space), which is the property that makes
// partition addition an incremental migration rather than a full
// reshuffle (OPERATIONS.md covers the procedure).
type PartitionMap struct {
	parts []PartitionSpec
	ring  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	part int // ordinal into parts
}

// NewPartitionMap builds the ring. Partition names must be non-empty,
// unique, and free of the spec separators; each partition needs at least
// one backend.
func NewPartitionMap(parts []PartitionSpec) (*PartitionMap, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("cluster: partition map needs at least one partition")
	}
	seen := make(map[string]bool, len(parts))
	m := &PartitionMap{parts: parts}
	for i, p := range parts {
		if p.Name == "" {
			return nil, fmt.Errorf("cluster: partition %d has no name", i)
		}
		if strings.ContainsAny(p.Name, "=,|") {
			return nil, fmt.Errorf("cluster: partition name %q contains a spec separator", p.Name)
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("cluster: duplicate partition name %q", p.Name)
		}
		seen[p.Name] = true
		if len(p.Backends) == 0 {
			return nil, fmt.Errorf("cluster: partition %q has no backends", p.Name)
		}
		for v := 0; v < vnodesPerPartition; v++ {
			m.ring = append(m.ring, ringPoint{hash: keyHash(fmt.Sprintf("%s#%d", p.Name, v)), part: i})
		}
	}
	sort.Slice(m.ring, func(a, b int) bool {
		if m.ring[a].hash != m.ring[b].hash {
			return m.ring[a].hash < m.ring[b].hash
		}
		// Hash ties (vanishingly rare) break by ordinal so every map built
		// from the same spec agrees.
		return m.ring[a].part < m.ring[b].part
	})
	return m, nil
}

// keyHash is FNV-1a 64 finalized through a SplitMix64 round — the
// partition-key hash. Stable across builds and architectures by
// construction; CLUSTER.md documents it as part of the cluster contract
// (a router and a node disagreeing on this hash would silently split
// ownership). The finalizer matters: bare FNV-1a has weak avalanche on
// trailing-byte differences, so sibling names ("deviceA".."deviceZ",
// "host-1".."host-9") land within ~2^44 of each other on the 2^64 ring
// and all fall into one vnode gap — a hot partition. Mix64 diffuses the
// last byte across the whole ring.
func keyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return prng.Mix64(h.Sum64())
}

// Owner returns the ordinal of the partition owning a device name: the
// first ring point clockwise of the key's hash.
func (m *PartitionMap) Owner(name string) int {
	h := keyHash(name)
	i := sort.Search(len(m.ring), func(i int) bool { return m.ring[i].hash >= h })
	if i == len(m.ring) {
		i = 0 // wrap: the lowest point owns the arc above the highest
	}
	return m.ring[i].part
}

// Len returns the partition count.
func (m *PartitionMap) Len() int { return len(m.parts) }

// Partition returns the spec at ordinal i.
func (m *PartitionMap) Partition(i int) PartitionSpec { return m.parts[i] }

// Namespace returns partition i's id namespace: global id =
// local·count + ordinal. Strictly monotone per partition, disjoint across
// partitions — the property DESIGN.md §14's merge argument rests on.
func (m *PartitionMap) Namespace(i int) fingerprint.IDNamespace {
	return fingerprint.IDNamespace{Base: i, Stride: len(m.parts)}
}

// OwnsFunc returns the ownership predicate for partition i — the
// server.PartitionConfig.Owns hook.
func (m *PartitionMap) OwnsFunc(i int) func(string) bool {
	return func(name string) bool { return m.Owner(name) == i }
}

// Ordinal returns the ordinal of the named partition, or -1.
func (m *PartitionMap) Ordinal(name string) int {
	for i, p := range m.parts {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// ParsePartitions parses pcserved's -partitions spec:
//
//	p0=http://h1:8080|http://h2:8080,p1=http://h3:8080|http://h4:8080
//
// Comma separates partitions, '=' binds a partition name to its backend
// list, '|' separates the backends of one replicated group. Ordinal
// order is spec order; every process in the cluster must be handed the
// same spec string.
func ParsePartitions(spec string) (*PartitionMap, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("cluster: empty -partitions spec")
	}
	var parts []PartitionSpec
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("cluster: empty partition entry in %q", spec)
		}
		name, rest, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("cluster: partition entry %q is not name=url|url", entry)
		}
		p := PartitionSpec{Name: strings.TrimSpace(name)}
		for _, u := range strings.Split(rest, "|") {
			u = strings.TrimSpace(u)
			if u == "" {
				return nil, fmt.Errorf("cluster: partition %q has an empty backend URL", p.Name)
			}
			p.Backends = append(p.Backends, strings.TrimRight(u, "/"))
		}
		parts = append(parts, p)
	}
	return NewPartitionMap(parts)
}
