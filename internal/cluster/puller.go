// puller.go: the follower side of WAL shipping — the incremental pull
// loop with retry/backoff and frame dedup, and the snapshot re-bootstrap
// path for followers whose position the primary compacted away.
package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"probablecause/internal/faults"
	"probablecause/internal/fingerprint"
	"probablecause/internal/obs"
	"probablecause/internal/prng"
	"probablecause/internal/retry"
	"probablecause/internal/samplefile"
	"probablecause/internal/server"
	"probablecause/internal/store"
)

// hashString folds a follower id into a prng seed.
func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a offset basis
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

var (
	cPullBatches  = obs.C("cluster.repl.pull_batches")
	cPullRecords  = obs.C("cluster.repl.pull_records")
	cPullErrors   = obs.C("cluster.repl.pull_errors")
	cFrameDropped = obs.C("cluster.repl.frames_dropped")
	cFrameDuped   = obs.C("cluster.repl.frames_duplicated")
	gReplLag      = obs.G("cluster.repl.lag")
)

// ErrNeedsBootstrap reports a follower whose WAL position was compacted
// away on the primary: incremental pull cannot proceed, the follower
// must re-seed from a snapshot (BootstrapFollower into a fresh dir).
var ErrNeedsBootstrap = errors.New("cluster: primary compacted past our position; snapshot bootstrap required")

// DefaultPullInterval paces the poll loop when the follower is caught
// up with the primary.
const DefaultPullInterval = 25 * time.Millisecond

// PullConfig parameterizes the follower's replication client.
type PullConfig struct {
	// ID identifies this follower in acks (set from NodeConfig.ID).
	ID string
	// Primary is the primary's base URL (set by StartFollower/Follow).
	Primary string
	// Client issues the pull requests; nil selects http.DefaultClient.
	// Chaos tests install a faults.Injector transport here.
	Client *http.Client
	// Interval paces polls when caught up; 0 selects DefaultPullInterval.
	Interval time.Duration
	// Retry shapes backoff between failed pulls.
	Retry retry.Policy
	// Injector, when non-nil, draws a fate for every received frame —
	// drop (re-pull) or duplicate (dedup exercise) — so replication is
	// chaos-testable without a lossy network.
	Injector *faults.Injector
}

func (c PullConfig) withDefaults() PullConfig {
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.Interval <= 0 {
		c.Interval = DefaultPullInterval
	}
	return c
}

// Puller is the follower's replication loop: poll the primary's WAL
// stream from the local next sequence, apply each frame through the
// deterministic fold, piggyback the applied watermark as an ack, and
// flip the service ready once caught up to the primary's durable edge.
type Puller struct {
	svc    *server.Service
	cfg    PullConfig
	cancel context.CancelFunc
	done   chan struct{}

	mu      sync.Mutex
	primary string
	err     error // terminal condition (ErrNeedsBootstrap), nil while running
}

// StartPuller begins pulling. Stop releases the loop.
func StartPuller(svc *server.Service, cfg PullConfig) *Puller {
	ctx, cancel := context.WithCancel(context.Background())
	p := &Puller{
		svc:     svc,
		cfg:     cfg.withDefaults(),
		cancel:  cancel,
		done:    make(chan struct{}),
		primary: cfg.Primary,
	}
	go p.run(ctx)
	return p
}

// Stop halts the loop and waits for it to exit.
func (p *Puller) Stop() {
	p.cancel()
	<-p.done
}

// Err reports the loop's terminal condition (e.g. ErrNeedsBootstrap);
// nil while the loop is healthy or merely retrying transients.
func (p *Puller) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

func (p *Puller) primaryURL() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.primary
}

func (p *Puller) run(ctx context.Context) {
	defer close(p.done)
	attempt := 0
	// Deterministic per-follower jitter: two followers pulling the same
	// dead primary decorrelate, and a seeded chaos run reproduces its
	// exact retry schedule.
	jitter := prng.New(prng.Hash(uint64(len(p.cfg.ID)), hashString(p.cfg.ID)))
	for ctx.Err() == nil {
		applied, caughtUp, err := p.pullOnce(ctx)
		switch {
		case err == nil:
			attempt = 0
			if caughtUp {
				if !p.svc.Ready() {
					p.svc.SetReady(true)
				}
				p.sleep(ctx, p.cfg.Interval)
			}
		case errors.Is(err, ErrNeedsBootstrap):
			p.mu.Lock()
			p.err = err
			p.mu.Unlock()
			obs.Errorf("repl pull needs bootstrap", "id", p.cfg.ID, "applied", applied)
			return
		case ctx.Err() != nil:
			return
		default:
			if obs.On() {
				cPullErrors.Inc()
			}
			attempt++
			delay := p.cfg.Retry.Delay(attempt, jitter)
			obs.Warnf("repl pull failed", "id", p.cfg.ID, "attempt", attempt, "delay", delay, "err", err)
			p.sleep(ctx, delay)
		}
	}
}

func (p *Puller) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// pullOnce issues one stream request and applies its frames. caughtUp
// reports whether the local applied position reached the primary's
// durable edge as of this pull.
func (p *Puller) pullOnce(ctx context.Context) (applied uint64, caughtUp bool, err error) {
	l := p.svc.WAL()
	if l == nil {
		return 0, false, server.ErrEnrollmentDisabled
	}
	from := l.NextSeq()
	applied = p.svc.AppliedSeq()
	url := fmt.Sprintf("%s/v1/repl/stream?from=%d&id=%s&acked=%d", p.primaryURL(), from, p.cfg.ID, applied)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return applied, false, err
	}
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		return applied, false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return applied, false, ErrNeedsBootstrap
	default:
		return applied, false, fmt.Errorf("cluster: stream returned %s", resp.Status)
	}
	synced, _ := strconv.ParseUint(resp.Header.Get(hdrSynced), 10, 64)
	if obs.On() {
		cPullBatches.Inc()
	}

	dec := json.NewDecoder(bufio.NewReader(resp.Body))
	records := 0
frames:
	for {
		var f Frame
		if derr := dec.Decode(&f); derr != nil {
			if errors.Is(derr, io.EOF) {
				break
			}
			// A torn response (primary died mid-write, injected fault):
			// apply what arrived, re-pull the rest.
			err = fmt.Errorf("cluster: stream decode: %w", derr)
			break
		}
		times := 1
		if p.cfg.Injector != nil {
			switch p.cfg.Injector.FrameFate() {
			case faults.FrameDrop:
				// Discard this frame and the rest of the batch — applying a
				// later frame after a dropped one would be a sequence gap.
				if obs.On() {
					cFrameDropped.Inc()
				}
				break frames
			case faults.FrameDup:
				if obs.On() {
					cFrameDuped.Inc()
				}
				times = 2
			}
		}
		for i := 0; i < times; i++ {
			if _, aerr := p.svc.ApplyReplicated(f.Seq, f.Payload); aerr != nil {
				if errors.Is(aerr, server.ErrReplicationGap) {
					// Shouldn't happen on an in-order stream; re-pull.
					err = aerr
					break frames
				}
				return p.svc.AppliedSeq(), false, aerr
			}
		}
		records++
	}
	applied = p.svc.AppliedSeq()
	if obs.On() {
		cPullRecords.Add(int64(records))
		if synced >= applied {
			gReplLag.Set(int64(synced - applied))
		}
	}
	return applied, err == nil && applied >= synced, err
}

// BootstrapMeta describes a fetched snapshot.
type BootstrapMeta struct {
	// Watermark is the first WAL sequence NOT reflected in the snapshot
	// database (the checkpoint watermark the follower boots at).
	Watermark uint64
	// Floor is the first sequence the follower must pull — the replay
	// floor covering unconverged sessions. Pass it as wal
	// Options.StartSeq so the local log starts at the primary's numbering.
	Floor uint64
	// Entries is the snapshot database size.
	Entries int
}

// BootstrapFollower seeds dir with a checkpoint fetched from the
// primary so a fresh follower can BootDurable into the primary's fold
// timeline: the snapshot database lands as a local checkpoint at the
// primary's watermark, and the returned Floor is the StartSeq for the
// local WAL. Call only on an empty durable dir; an established follower
// resumes from its own WAL instead.
func BootstrapFollower(ctx context.Context, dir, primary string, client *http.Client) (BootstrapMeta, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, primary+"/v1/repl/snapshot", nil)
	if err != nil {
		return BootstrapMeta{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return BootstrapMeta{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return BootstrapMeta{}, fmt.Errorf("cluster: snapshot returned %s", resp.Status)
	}
	watermark, err := strconv.ParseUint(resp.Header.Get(hdrWatermark), 10, 64)
	if err != nil {
		return BootstrapMeta{}, fmt.Errorf("cluster: snapshot missing %s header", hdrWatermark)
	}
	floor, err := strconv.ParseUint(resp.Header.Get(hdrFloor), 10, 64)
	if err != nil {
		return BootstrapMeta{}, fmt.Errorf("cluster: snapshot missing %s header", hdrFloor)
	}
	db, err := fingerprint.ReadDB(resp.Body)
	if err != nil {
		return BootstrapMeta{}, fmt.Errorf("cluster: snapshot body: %w", err)
	}
	if err := samplefile.SaveCheckpoint(dir, db, watermark); err != nil {
		return BootstrapMeta{}, err
	}
	return BootstrapMeta{Watermark: watermark, Floor: floor, Entries: db.Len()}, nil
}

// BootstrapFollowerSegments seeds storeDir with the primary's committed
// segment files fetched from /v1/repl/segments — the tiered-store bootstrap
// that never materializes the database in heap on either side. Files land
// under temporary names and the manifest (sent last) is committed by atomic
// rename only after every segment is fully on disk and fsynced, so a torn
// download leaves nothing a later BootDurable would trust. Call only on an
// empty store directory; an established follower recovers from its own
// manifest and WAL instead.
func BootstrapFollowerSegments(ctx context.Context, storeDir, primary string, client *http.Client) (BootstrapMeta, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, primary+"/v1/repl/segments", nil)
	if err != nil {
		return BootstrapMeta{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return BootstrapMeta{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return BootstrapMeta{}, fmt.Errorf("cluster: segment snapshot returned %s", resp.Status)
	}
	watermark, err := strconv.ParseUint(resp.Header.Get(hdrWatermark), 10, 64)
	if err != nil {
		return BootstrapMeta{}, fmt.Errorf("cluster: segment snapshot missing %s header", hdrWatermark)
	}
	floor, err := strconv.ParseUint(resp.Header.Get(hdrFloor), 10, 64)
	if err != nil {
		return BootstrapMeta{}, fmt.Errorf("cluster: segment snapshot missing %s header", hdrFloor)
	}
	if err := os.MkdirAll(storeDir, 0o777); err != nil {
		return BootstrapMeta{}, err
	}
	br := bufio.NewReader(resp.Body)
	var manifest []byte
	for {
		// Each frame is one newline-terminated JSON header followed by
		// exactly Size raw bytes; a clean EOF before a header ends the
		// stream. Reading the header line directly (rather than through a
		// json.Decoder) keeps the reader positioned at the blob's first byte.
		line, err := br.ReadBytes('\n')
		if err != nil {
			if errors.Is(err, io.EOF) && len(line) == 0 {
				break
			}
			return BootstrapMeta{}, fmt.Errorf("cluster: segment stream frame: %w", err)
		}
		var fr segmentFrame
		if err := json.Unmarshal(line, &fr); err != nil {
			return BootstrapMeta{}, fmt.Errorf("cluster: segment stream frame: %w", err)
		}
		if fr.Size < 0 {
			return BootstrapMeta{}, fmt.Errorf("cluster: segment stream frame for %s has negative size", fr.Name)
		}
		blob := make([]byte, fr.Size)
		if _, err := io.ReadFull(br, blob); err != nil {
			return BootstrapMeta{}, fmt.Errorf("cluster: segment stream body of %s: %w", fr.Name, err)
		}
		if fr.Name == store.ManifestFile {
			manifest = blob
			continue
		}
		if fr.Name != filepath.Base(fr.Name) || fr.Name == "" {
			return BootstrapMeta{}, fmt.Errorf("cluster: segment stream names invalid file %q", fr.Name)
		}
		if err := samplefile.WriteFileAtomic(filepath.Join(storeDir, fr.Name), blob); err != nil {
			return BootstrapMeta{}, err
		}
	}
	if manifest == nil {
		return BootstrapMeta{}, fmt.Errorf("cluster: segment stream ended without a manifest (torn download)")
	}
	if err := samplefile.WriteFileAtomic(filepath.Join(storeDir, store.ManifestFile), manifest); err != nil {
		return BootstrapMeta{}, err
	}
	if err := samplefile.SyncDir(storeDir); err != nil {
		return BootstrapMeta{}, err
	}
	// Count the shipped entries by reopening what landed — cheap (headers
	// only would suffice, but VerifyDir-grade load also catches transit
	// corruption before the follower trusts the files).
	if err := store.VerifyDir(storeDir); err != nil {
		return BootstrapMeta{}, fmt.Errorf("cluster: shipped segments failed verification: %w", err)
	}
	return BootstrapMeta{Watermark: watermark, Floor: floor}, nil
}
