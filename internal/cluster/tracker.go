// tracker.go: the primary's follower-progress tracker and the MinISR
// commit watermark that gates enrollment acks on real replication.
package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"probablecause/internal/obs"
	"probablecause/internal/server"
)

var (
	gCommitSeq  = obs.G("cluster.commit_seq")
	gFollowers  = obs.G("cluster.followers")
	cGateWaits  = obs.C("cluster.gate.waits")
	cGateErrors = obs.C("cluster.gate.errors")
)

// Tracker is the primary's view of follower replication progress and the
// source of the commit watermark. Each follower reports the highest WAL
// sequence it has applied (a contiguous prefix, by the WAL's ack
// contract); the commit sequence is the MinISR-th highest report, i.e.
// the largest seq held by at least MinISR followers. Enrollment acks
// gate on it: a record is committed once enough followers would survive
// the primary's disk melting.
//
// The contiguous-prefix property is what makes failover lossless: the
// follower with the highest applied seq holds a superset of every other
// follower's records, so promoting it retains everything any follower —
// and therefore everything the commit gate — ever acknowledged.
type Tracker struct {
	minISR int

	mu      sync.Mutex
	acked   map[string]uint64 // follower id → highest applied (contiguous) seq
	commit  uint64
	waiters map[uint64][]chan struct{} // seq → acks parked until commit ≥ seq
	closed  bool
}

// NewTracker builds a tracker requiring minISR follower acknowledgements
// per record. minISR ≤ 0 means asynchronous replication: the gate never
// blocks and the commit seq tracks the highest single follower.
func NewTracker(minISR int) *Tracker {
	return &Tracker{
		minISR:  minISR,
		acked:   make(map[string]uint64),
		waiters: make(map[uint64][]chan struct{}),
	}
}

// MinISR reports the configured acknowledgement quorum.
func (t *Tracker) MinISR() int { return t.minISR }

// Observe records follower id's progress report and releases any acks
// the new commit watermark satisfies. Reports are monotonic per
// follower; a stale (lower) report is ignored.
func (t *Tracker) Observe(id string, applied uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if applied < t.acked[id] {
		return
	}
	t.acked[id] = applied
	if obs.On() {
		gFollowers.Set(int64(len(t.acked)))
	}
	k := t.minISR
	if k <= 0 {
		k = 1
	}
	if len(t.acked) < k {
		return
	}
	seqs := make([]uint64, 0, len(t.acked))
	for _, s := range t.acked {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	commit := seqs[k-1]
	if commit <= t.commit {
		return
	}
	t.commit = commit
	if obs.On() {
		gCommitSeq.Set(int64(commit))
	}
	for seq, chans := range t.waiters {
		if seq <= commit {
			for _, ch := range chans {
				close(ch)
			}
			delete(t.waiters, seq)
		}
	}
}

// Forget drops a follower from the quorum (it was decommissioned or
// re-pointed elsewhere). The commit watermark never regresses — records
// already committed stay committed.
func (t *Tracker) Forget(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.acked, id)
	if obs.On() {
		gFollowers.Set(int64(len(t.acked)))
	}
}

// CommitSeq returns the current commit watermark.
func (t *Tracker) CommitSeq() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.commit
}

// Progress snapshots every follower's applied seq.
func (t *Tracker) Progress() map[string]uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]uint64, len(t.acked))
	for id, s := range t.acked {
		out[id] = s
	}
	return out
}

// WaitCommitted blocks until the commit watermark reaches seq, ctx
// dies, or the tracker closes. With minISR ≤ 0 it returns immediately.
func (t *Tracker) WaitCommitted(ctx context.Context, seq uint64) error {
	if t.minISR <= 0 {
		return nil
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("cluster: tracker closed")
	}
	if t.commit >= seq {
		t.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	t.waiters[seq] = append(t.waiters[seq], ch)
	t.mu.Unlock()
	if obs.On() {
		cGateWaits.Inc()
	}
	select {
	case <-ch:
		// Close() releases waiters too; distinguish commit from shutdown.
		t.mu.Lock()
		committed := t.commit >= seq
		t.mu.Unlock()
		if !committed {
			if obs.On() {
				cGateErrors.Inc()
			}
			return fmt.Errorf("cluster: tracker closed waiting for seq %d", seq)
		}
		return nil
	case <-ctx.Done():
		if obs.On() {
			cGateErrors.Inc()
		}
		return fmt.Errorf("cluster: waiting for %d follower ack(s) of seq %d: %w", t.minISR, seq, ctx.Err())
	}
}

// Gate adapts the tracker into the service's enrollment commit gate.
func (t *Tracker) Gate() server.CommitGate {
	return func(ctx context.Context, seq uint64) error {
		return t.WaitCommitted(ctx, seq)
	}
}

// Close releases every parked waiter with an error (the node is
// shutting down or demoting). Subsequent waits fail fast.
func (t *Tracker) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	for _, chans := range t.waiters {
		for _, ch := range chans {
			close(ch)
		}
	}
	t.waiters = make(map[uint64][]chan struct{})
}
